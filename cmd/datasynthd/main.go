// Command datasynthd serves dataset generation over HTTP: a caching
// daemon in front of the DataSynth engine.
//
//	datasynthd -listen :8080 -cache ./cache
//
//	# submit a schema (raw DSL body; format via query param)
//	curl -s -X POST --data-binary @social.dsl 'localhost:8080/v1/jobs?format=csv'
//
//	# poll (or long-poll) the job, then download a table
//	curl -s 'localhost:8080/v1/jobs/<id>?wait=30s'
//	curl -sO 'localhost:8080/v1/jobs/<id>/tables/nodes_Person.csv'
//
// Datasets are cached content-addressably under -cache: the key is the
// canonical schema hash (covering the seed and the generation-semantics
// version) plus the export format, so resubmitting the same schema —
// in any surface spelling — streams the committed bytes back without
// regenerating, and concurrent identical submissions collapse onto a
// single generation (singleflight). Both are sound because the engine
// guarantees byte-identical output for a fixed schema at any worker
// count; see docs/service.md.
//
// -cachemaxbytes bounds the cache with LRU eviction (entries under an
// open download stream are removed only after the last reader closes;
// an evicted schema regenerates byte-identically on resubmit), and
// GET /v1/metrics exposes Prometheus text-format counters, gauges, and
// per-phase latency histograms.
//
// The daemon fails jobs, not the process. Worker panics are recovered
// into job errors; a failed cache commit is retried (-storeretries,
// -storeretrybase) and, if the disk stays broken (e.g. ENOSPC), the
// job still completes and serves its tables cache-bypass from the
// staging directory, marked "degraded": true. GET /v1/readyz answers
// 503 while degraded or draining so an orchestrator can prefer a
// healthier replica — GET /v1/healthz stays 200 because the daemon is
// live and still producing correct bytes. Startup quarantines crash
// debris (torn cache entries, orphaned temp dirs) into
// <cache>/.quarantine/ and regenerates on demand; see docs/service.md
// "Failure modes".
//
// -scenariodir enables the scenario registry: named, versioned,
// validation-first dataset recipes. PUT /v1/scenarios/{name} appends
// an immutable version (invalid DSL gets a 422 and writes nothing);
// POST /v1/jobs accepts {"scenario": "name@version", "params": {...}}
// and resolves it to the same content-hash cache key an anonymous
// submit of the resolved text would get; POST /v1/sweeps expands a
// parameter grid (bounded by -maxsweeppoints) into one cached job per
// point. See docs/scenarios.md.
//
// SIGINT/SIGTERM drain gracefully: the listener stops, queued and
// running jobs finish (up to -draintimeout), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"datasynth/internal/service"
)

func main() {
	listen := flag.String("listen", ":8080", "address to serve HTTP on")
	cacheDir := flag.String("cache", "datasynthd-cache", "content-addressable dataset cache directory")
	cacheMaxBytes := flag.Int64("cachemaxbytes", 0, "cache size bound in bytes; storing past it evicts least recently used entries, streamed entries only after their last reader closes (0 = unbounded)")
	queueDepth := flag.Int("queue", 64, "job queue bound; a full queue rejects submissions with 503")
	jobWorkers := flag.Int("jobworkers", 2, "concurrent generation jobs")
	engineWorkers := flag.Int("workers", 0, "per-engine worker bound (0 = NumCPU); output is byte-identical at any count")
	maxNodes := flag.Int64("maxnodes", 0, "per-job node limit (0 = unlimited)")
	maxEdges := flag.Int64("maxedges", 0, "per-job edge limit (0 = unlimited)")
	jobTimeout := flag.Duration("jobtimeout", 10*time.Minute, "per-job generation timeout (0 = none)")
	maxJobs := flag.Int("maxjobs", 0, "in-memory job map bound, oldest finished jobs evicted first (0 = 4096, negative = unbounded)")
	jobRetention := flag.Duration("jobretention", 0, "evict finished jobs older than this from the job map (0 = no age bound)")
	storeRetries := flag.Int("storeretries", 0, "cache-commit attempts before a job goes degraded cache-bypass (0 = 3)")
	storeRetryBase := flag.Duration("storeretrybase", 0, "first cache-commit retry delay, doubling with jitter per attempt (0 = 25ms)")
	scenarioDir := flag.String("scenariodir", "datasynthd-scenarios", "scenario registry directory; empty disables /v1/scenarios and /v1/sweeps")
	maxSweepPoints := flag.Int("maxsweeppoints", 0, "largest grid a single sweep may expand to (0 = 256)")
	drainTimeout := flag.Duration("draintimeout", 30*time.Second, "how long shutdown waits for in-flight jobs")
	verbose := flag.Bool("v", false, "log job progress")
	flag.Parse()

	cfg := service.Config{
		CacheDir:       *cacheDir,
		CacheMaxBytes:  *cacheMaxBytes,
		QueueDepth:     *queueDepth,
		JobWorkers:     *jobWorkers,
		EngineWorkers:  *engineWorkers,
		MaxNodes:       *maxNodes,
		MaxEdges:       *maxEdges,
		JobTimeout:     *jobTimeout,
		MaxJobs:        *maxJobs,
		JobRetention:   *jobRetention,
		StoreAttempts:  *storeRetries,
		StoreRetryBase: *storeRetryBase,
		ScenarioDir:    *scenarioDir,
		MaxSweepPoints: *maxSweepPoints,
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "datasynthd: "+format+"\n", args...)
	}
	if *verbose {
		cfg.Logf = logf
	}
	svc, err := service.New(cfg)
	if err != nil {
		logf("%v", err)
		os.Exit(1)
	}

	server := &http.Server{
		Addr:              *listen,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	//lint:allow nakedgo body is a single channel send of ListenAndServe's return; a crash here should crash the daemon, not be recovered
	go func() { errc <- server.ListenAndServe() }()
	logf("listening on %s (cache %s, queue %d, %d job workers)",
		*listen, *cacheDir, *queueDepth, *jobWorkers)

	select {
	case err := <-errc:
		logf("serve: %v", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: start the service drain FIRST — it rejects new
	// submissions and wakes ?wait long-polls, so the HTTP shutdown
	// (which waits for active requests) isn't stuck behind a poller
	// burning the whole budget — then close the listener, then wait
	// for queued and running jobs so no accepted work is lost.
	logf("shutting down: draining jobs (up to %v)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drained := make(chan error, 1)
	//lint:allow nakedgo shutdown-path one-liner; Drain already isolates job panics, and recovering here would hide a drain crash behind a hung channel read
	go func() { drained <- svc.Drain(drainCtx) }()
	if err := server.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logf("http shutdown: %v", err)
	}
	if err := <-drained; err != nil {
		logf("%v", err)
		os.Exit(1)
	}
	logf("drained cleanly")
}
