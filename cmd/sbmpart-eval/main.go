// Command sbmpart-eval regenerates the paper's evaluation artifacts:
//
//	sbmpart-eval -figure 3            # Figure 3 panels (CDF TSVs + plots)
//	sbmpart-eval -figure 4            # Figure 4 panels
//	sbmpart-eval -table 1             # Table 1 (paper matrix + measured)
//	sbmpart-eval -timing              # SBM-Part timing vs RMAT scale
//	sbmpart-eval -figure 3 -full      # paper-scale sizes (LFR-1M, RMAT-22)
//	sbmpart-eval -all                 # everything at default scale
//
// CDF series are written as TSV files under -out (default ./results),
// one per panel, plus ASCII plots and a summary table on stdout.
//
// Figure panels and sweep points are independent, so they run on a
// worker pool (-panelworkers, default NumCPU) with results streamed in
// panel order; every emitted artifact is byte-identical to a serial
// run. The timing experiment (-timing) ignores the pool and stays a
// pinned single-thread, single-stream measurement.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"datasynth/internal/exp"
)

func main() {
	figure := flag.Int("figure", 0, "regenerate figure 3 or 4")
	tableNo := flag.Int("table", 0, "regenerate table 1 (capability matrix)")
	timing := flag.Bool("timing", false, "run the SBM-Part timing experiment")
	musweep := flag.Bool("musweep", false, "run the structure-sensitivity sweep (fidelity vs LFR mixing)")
	bipartite := flag.Bool("bipartite", false, "run the bipartite SBM-Part fidelity panels")
	passes := flag.Int("passes", 0, "re-streaming refinement passes for figure panels")
	window := flag.Int("window", 0, "SBM-Part stream window (0 = auto, negative = serial); output is byte-identical at any setting")
	refineWindow := flag.Int("refinewindow", 0, "stream window of the re-streaming refinement passes (0 = inherit -window, negative = serial); output is byte-identical at any setting")
	workers := flag.Int("workers", 0, "intra-task worker bound for LFR sharding and window scans (0 = NumCPU, 1 = serial)")
	panelWorkers := flag.Int("panelworkers", 0, "concurrent figure panels / sweep points (0 = NumCPU, 1 = serial); panel artifacts are byte-identical at any count — the timing experiment always runs serially")
	all := flag.Bool("all", false, "run every experiment")
	full := flag.Bool("full", false, "use the paper's full sizes (LFR-1M, RMAT-22); slow")
	out := flag.String("out", "results", "output directory for TSV series")
	capN := flag.Int64("capn", 20000, "graph size for the capability measurements")
	flag.Parse()

	tune := func(panels []exp.Panel) []exp.Panel {
		panels = withPasses(panels, *passes)
		for i := range panels {
			panels[i].Window = *window
			panels[i].RefineWindow = *refineWindow
			panels[i].Workers = *workers
		}
		return panels
	}

	ran := false
	if *all || *figure == 3 {
		ran = true
		if err := runFigure(3, tune(exp.Figure3Panels(*full)), *out, *panelWorkers); err != nil {
			fatal(err)
		}
	}
	if *all || *figure == 4 {
		ran = true
		if err := runFigure(4, tune(exp.Figure4Panels(*full)), *out, *panelWorkers); err != nil {
			fatal(err)
		}
	}
	if *all || *musweep {
		ran = true
		if err := runMuSweep(*out, *panelWorkers); err != nil {
			fatal(err)
		}
	}
	if *all || *bipartite {
		ran = true
		if err := runBipartite(*out, *window, *workers); err != nil {
			fatal(err)
		}
	}
	if *all || *tableNo == 1 {
		ran = true
		if err := runTable1(*capN, *out); err != nil {
			fatal(err)
		}
	}
	if *all || *timing {
		ran = true
		scales := []int64{12, 14, 16, 18}
		if *full {
			scales = append(scales, 20, 22)
		}
		if err := runTiming(scales, *out); err != nil {
			fatal(err)
		}
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func withPasses(panels []exp.Panel, passes int) []exp.Panel {
	for i := range panels {
		panels[i].Passes = passes
	}
	return panels
}

func runMuSweep(out string, workers int) error {
	fmt.Println("== Structure sensitivity: fidelity vs LFR mixing parameter ==")
	mus := []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5}
	pts, err := exp.RunMuSweep(20000, 16, mus, 7, workers)
	if err != nil {
		return err
	}
	if err := exp.WriteMuSweep(os.Stdout, pts); err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(out, "musweep.tsv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return exp.WriteMuSweep(f, pts)
}

// runBipartite measures the bipartite SBM-Part variation at a few
// sizes; -window and -workers flow through (output is byte-identical
// at every setting, only match_ms moves).
func runBipartite(out string, window, workers int) error {
	fmt.Println("== Bipartite SBM-Part: fidelity of the two-domain matching ==")
	panels := []exp.Panel{
		{Size: 10000, K: 8, Seed: 51, Window: window, Workers: workers},
		{Size: 20000, K: 16, Seed: 52, Window: window, Workers: workers},
		{Size: 40000, K: 16, Seed: 53, Window: window, Workers: workers},
	}
	rs := make([]*exp.BipartiteResult, 0, len(panels))
	for _, p := range panels {
		r, err := exp.RunBipartitePanel(p)
		if err != nil {
			return err
		}
		rs = append(rs, r)
	}
	if err := exp.WriteBipartite(os.Stdout, rs); err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(out, "bipartite.tsv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return exp.WriteBipartite(f, rs)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sbmpart-eval:", err)
	os.Exit(1)
}

// runFigure fans the figure's panels out onto a worker pool and
// streams each result's artifacts — summary row, CDF series file,
// terminal plot — in panel order as soon as the prefix completes. The
// emitted artifacts are byte-identical at every worker count; only the
// wall-clock timing columns reflect pool contention (the pinned timing
// experiment never goes through this path).
func runFigure(num int, panels []exp.Panel, out string, panelWorkers int) error {
	fmt.Printf("== Figure %d ==\n%s\n", num, exp.SummaryHeader)
	dir := filepath.Join(out, fmt.Sprintf("figure%d", num))
	return exp.RunPanels(panels, panelWorkers, func(r *exp.Result) error {
		if err := exp.WriteSummaryRow(os.Stdout, r); err != nil {
			return err
		}
		path, err := exp.SaveCDF(dir, r)
		if err != nil {
			return err
		}
		fmt.Printf("  series -> %s\n", path)
		return exp.ASCIICDF(os.Stdout, r, 64, 12)
	})
}

func runTable1(n int64, out string) error {
	fmt.Println("== Table 1: related-work matrix as printed in the paper ==")
	fmt.Println(exp.PaperTable1())
	fmt.Println()
	fmt.Printf("== Table 1 (measured): capabilities of this implementation at n=%d ==\n", n)
	caps, err := exp.MeasureCapabilities(n, 99)
	if err != nil {
		return err
	}
	if err := exp.WriteCapabilities(os.Stdout, caps); err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(out, "table1_measured.tsv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return exp.WriteCapabilities(f, caps)
}

func runTiming(scales []int64, out string) error {
	fmt.Println("== SBM-Part timing (single stream, k=64, RMAT) ==")
	fmt.Println("paper reference: RMAT-22 (67M edges), 64 values, 1 thread: ~1100 s on a Xeon E5-2630v3")
	pts, err := exp.RunTiming(scales, 64, 7)
	if err != nil {
		return err
	}
	if err := exp.WriteTiming(os.Stdout, pts); err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(out, "timing.tsv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return exp.WriteTiming(f, pts)
}
