// Command graphstats computes the structural characteristics the
// paper's Section 2 lists (degree distribution, clustering, connected
// components, diameter, assortativity) for an edge file produced by
// datasynth — the validation side of the generate-then-verify loop.
// Both the CSV and the binary columnar (.dsc) connector formats load
// directly, selected by file extension:
//
//	graphstats -edges dataset/edges_knows.csv
//	graphstats -edges dataset/edges_knows.dsc
//	graphstats -edges dataset/edges_knows.csv -labels dataset/nodes_Person.csv -labelcol country
//	graphstats -edges dataset/edges_knows.dsc -labels dataset/nodes_Person.dsc -labelcol country
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"datasynth/internal/graph"
	"datasynth/internal/stats"
	"datasynth/internal/table"
)

func main() {
	edgesPath := flag.String("edges", "", "edge CSV (id,tail,head,…)")
	labelsPath := flag.String("labels", "", "optional node CSV for label-based metrics")
	labelCol := flag.String("labelcol", "", "column of -labels holding the categorical label")
	sample := flag.Int64("sample", 5000, "node sample for clustering estimation (0 = exact)")
	flag.Parse()
	if *edgesPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	et, maxNode, err := readEdges(*edgesPath)
	if err != nil {
		fatal(err)
	}
	n := maxNode + 1
	g, err := graph.FromEdgeTable(et, n)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("nodes:                 %d\n", g.N())
	fmt.Printf("edges:                 %d\n", g.M())
	fmt.Printf("avg degree:            %.2f\n", g.AvgDegree())
	fmt.Printf("max degree:            %d\n", g.MaxDegree())
	fmt.Printf("degree Gini:           %.3f\n", g.GiniDegree())
	fmt.Printf("power-law alpha (MLE): %.2f\n", g.PowerLawAlphaMLE(2))
	fmt.Printf("avg clustering:        %.4f\n", g.AvgClustering(*sample, 1))
	_, comps := g.ConnectedComponents()
	fmt.Printf("connected components:  %d\n", comps)
	fmt.Printf("largest component:     %.1f%%\n", 100*g.LargestComponentFraction())
	fmt.Printf("approx diameter:       %d\n", g.ApproxDiameter(4, 1))
	fmt.Printf("degree assortativity:  %.3f\n", g.DegreeAssortativity())

	if *labelsPath != "" && *labelCol != "" {
		labels, k, err := readLabels(*labelsPath, *labelCol, n)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("label values:          %d\n", k)
		fmt.Printf("modularity:            %.3f\n", g.Modularity(labels))
		fmt.Printf("mixing fraction:       %.3f\n", g.MixingFraction(labels))
		joint, err := stats.EmpiricalJoint(et, labels, k)
		if err != nil {
			fatal(err)
		}
		var diag float64
		for a := 0; a < k; a++ {
			diag += joint.At(a, a)
		}
		fmt.Printf("same-label edge mass:  %.3f\n", diag)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphstats:", err)
	os.Exit(1)
}

// readEdges loads an edge file — columnar when the path ends in .dsc,
// CSV with header id,tail,head[,…] otherwise.
func readEdges(path string) (*table.EdgeTable, int64, error) {
	if strings.HasSuffix(path, table.ColumnarExt) {
		ct, err := table.ReadColumnarFile(path)
		if err != nil {
			return nil, 0, err
		}
		if ct.Edges == nil {
			return nil, 0, fmt.Errorf("%s holds a node table, not edges", path)
		}
		maxNode := ct.Edges.MaxNode() - 1
		if maxNode < 0 {
			return nil, 0, fmt.Errorf("no edges in %s", path)
		}
		return ct.Edges, maxNode, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.ReuseRecord = true
	if _, err := r.Read(); err != nil { // header
		return nil, 0, fmt.Errorf("reading header: %w", err)
	}
	et := table.NewEdgeTable("edges", 1024)
	var maxNode int64 = -1
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, 0, err
		}
		if len(rec) < 3 {
			return nil, 0, fmt.Errorf("edge row needs id,tail,head columns")
		}
		t, err := strconv.ParseInt(rec[1], 10, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("bad tail %q: %w", rec[1], err)
		}
		h, err := strconv.ParseInt(rec[2], 10, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("bad head %q: %w", rec[2], err)
		}
		et.Add(t, h)
		if t > maxNode {
			maxNode = t
		}
		if h > maxNode {
			maxNode = h
		}
	}
	if maxNode < 0 {
		return nil, 0, fmt.Errorf("no edges in %s", path)
	}
	return et, maxNode, nil
}

// readLabels loads a node file (columnar or CSV) and reduces one
// column to dense label indices over n nodes (missing ids default to a
// fresh "" label).
func readLabels(path, col string, n int64) ([]int64, int, error) {
	if strings.HasSuffix(path, table.ColumnarExt) {
		return readLabelsColumnar(path, col, n)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	header, err := r.Read()
	if err != nil {
		return nil, 0, fmt.Errorf("reading header: %w", err)
	}
	colIdx := -1
	for i, h := range header {
		if h == col {
			colIdx = i
		}
	}
	if colIdx == -1 {
		return nil, 0, fmt.Errorf("column %q not in %v", col, header)
	}
	labels := make([]int64, n)
	for i := range labels {
		labels[i] = -1
	}
	index := map[string]int64{}
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, 0, err
		}
		id, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil || id < 0 || id >= n {
			continue
		}
		v := rec[colIdx]
		k, ok := index[v]
		if !ok {
			k = int64(len(index))
			index[v] = k
		}
		labels[id] = k
	}
	labels, k := finalizeLabels(labels, len(index))
	return labels, k, nil
}

// finalizeLabels gives ids absent from the node file a catch-all label
// index of their own. The index is allocated past the real values, not
// through the value map, so it can never collide with a property that
// happens to spell the same as a sentinel string.
func finalizeLabels(labels []int64, k int) ([]int64, int) {
	missing := int64(-1)
	for i, l := range labels {
		if l == -1 {
			if missing == -1 {
				missing = int64(k)
				k++
			}
			labels[i] = missing
		}
	}
	return labels, k
}

// readLabelsColumnar reduces one property column of a columnar node
// file to dense label indices over n nodes; ids beyond the file's row
// count share a catch-all label.
func readLabelsColumnar(path, col string, n int64) ([]int64, int, error) {
	ct, err := table.ReadColumnarFile(path)
	if err != nil {
		return nil, 0, err
	}
	if ct.Edges != nil {
		return nil, 0, fmt.Errorf("%s holds an edge table, not nodes", path)
	}
	var pt *table.PropertyTable
	for _, p := range ct.Props {
		name := p.Name
		if i := strings.LastIndexByte(name, '.'); i >= 0 {
			name = name[i+1:]
		}
		if name == col {
			pt = p
			break
		}
	}
	if pt == nil {
		return nil, 0, fmt.Errorf("column %q not in %s", col, path)
	}
	labels := make([]int64, n)
	index := map[string]int64{}
	rows := pt.Len()
	for id := int64(0); id < n; id++ {
		if id >= rows {
			labels[id] = -1
			continue
		}
		v := pt.Format(id)
		k, ok := index[v]
		if !ok {
			k = int64(len(index))
			index[v] = k
		}
		labels[id] = k
	}
	labels, k := finalizeLabels(labels, len(index))
	return labels, k, nil
}
