// Command datasynth generates a property graph from a DSL schema:
//
//	datasynth -schema social.dsl -out ./dataset
//	datasynth -schema social.dsl -format columnar   # binary bulk-load files
//	datasynth -schema social.dsl -plan              # print the task plan only
//	datasynth -schema social.dsl -validate          # validate + canonical hash only
//	datasynth -scenario social.dsl -name figure3    # dry-run a scenario registration
//	datasynth -example                              # print a starter schema
//
// The output directory receives one file per node type and per edge
// type. -format selects the encoding: csv (default, the layout bulk
// loaders of property-graph databases expect), jsonl (one JSON object
// per row), or columnar (binary typed column blocks for fast bulk
// loads). Tables are written concurrently (-exportworkers) and the
// directory commits atomically — a failed export leaves no partial
// files. With -timings the report covers generation AND export, so the
// printed critical path is the true end-to-end pipeline floor.
package main

import (
	"flag"
	"fmt"
	"os"

	"datasynth/internal/core"
	"datasynth/internal/depgraph"
	"datasynth/internal/dsl"
	"datasynth/internal/scenario"
	"datasynth/internal/table"
)

// exampleSchema is the paper's Figure 1 running example.
const exampleSchema = `# DataSynth schema — the paper's running example (Figure 1).
graph social {
  seed = 42

  node Person {
    count = 10000
    property country : string = categorical(dict="countries")
    property sex     : string = categorical(values="M|F")
    property name    : string = dictionary() given (country, sex)
    property interest : string = zipf(dict="topics", theta="1.1")
    property creationDate : date = uniform-date(from="2010-01-01", to="2020-01-01")
  }

  node Message {
    property topic : string = categorical(dict="topics")
    property text  : string = text(min=3, max=12)
  }

  edge knows : Person *-* Person {
    structure = lfr(avgDegree=20, maxDegree=50, mu=0.1)
    correlate country homophily 0.8
    property creationDate : date = max-endpoint-date(maxDays=365) given (tail.creationDate, head.creationDate)
  }

  edge creates : Person 1-* Message {
    structure = powerlaw-out(min=1, max=20, gamma=2.0)
    property creationDate : date = uniform-date(from="2010-01-01", to="2020-01-01")
  }
}
`

func main() {
	schemaPath := flag.String("schema", "", "path to the DSL schema file")
	out := flag.String("out", "dataset", "output directory for the exported files")
	format := flag.String("format", "", "export format: csv (default), jsonl, columnar")
	jsonl := flag.Bool("jsonl", false, "write JSON-lines files (shorthand for -format jsonl)")
	planOnly := flag.Bool("plan", false, "print the dependency-analysis task plan and exit")
	validate := flag.Bool("validate", false, "parse and validate the schema, print its canonical hash, and exit without generating")
	scenarioFile := flag.String("scenario", "", "validate a DSL file as a scenario and print the canonical text + hash PUT /v1/scenarios would register; no generation")
	scenarioName := flag.String("name", "", "scenario name to check against the registry's naming rule (with -scenario)")
	example := flag.Bool("example", false, "print an example schema and exit")
	verbose := flag.Bool("v", false, "log task progress")
	workers := flag.Int("workers", 0, "scheduler and intra-task worker bound (0 = NumCPU, 1 = sequential); output is byte-identical at any count")
	window := flag.Int("window", 0, "SBM-Part stream window (0 = auto, negative = serial); output is byte-identical at any setting")
	refineWindow := flag.Int("refinewindow", 0, "stream window of SBM-Part's re-streaming refinement passes (0 = inherit -window, negative = serial); output is byte-identical at any setting")
	exportWorkers := flag.Int("exportworkers", 0, "concurrent table writers during export (0 = inherit -workers, 1 = one table at a time); file bytes are identical at any count")
	timings := flag.Bool("timings", false, "print the per-task timing report and end-to-end critical path (generation + export)")
	flag.Parse()

	if *example {
		fmt.Print(exampleSchema)
		return
	}
	if *scenarioFile != "" {
		// Offline dry-run of a scenario registration. scenario.Validate
		// is the exact function the daemon's PUT handler runs, so a
		// schema this accepts — and the canonical text and hash it
		// prints — are what the registry would store.
		if *scenarioName != "" {
			if err := scenario.ValidateName(*scenarioName); err != nil {
				fatal(err)
			}
		}
		src, err := os.ReadFile(*scenarioFile)
		if err != nil {
			fatal(err)
		}
		val, err := scenario.Validate(string(src))
		if err != nil {
			fatal(err)
		}
		name := *scenarioName
		if name == "" {
			name = "<name>"
		}
		fmt.Printf("scenario %s: valid (%d node types, %d edge types, seed %d)\n",
			name, len(val.Schema.Nodes), len(val.Schema.Edges), val.Schema.Seed)
		fmt.Printf("canonical sha256: %s\n", val.Hash)
		fmt.Printf("canonical text PUT /v1/scenarios/%s would register:\n\n%s", name, val.Text)
		return
	}
	if *schemaPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*schemaPath)
	if err != nil {
		fatal(err)
	}
	s, err := dsl.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	if *validate {
		// The same validation + canonical-hash pipeline datasynthd runs
		// at job admission: the printed hash is the content address the
		// service caches the dataset under (combined with the format).
		if err := core.ValidateSchema(s); err != nil {
			fatal(err)
		}
		fmt.Printf("schema %s: valid (%d node types, %d edge types, seed %d)\n",
			s.Name, len(s.Nodes), len(s.Edges), s.Seed)
		fmt.Printf("canonical sha256: %s\n", core.CanonicalHash(s))
		return
	}
	if *planOnly {
		plan, err := depgraph.Analyze(s)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("plan for graph %q (%d tasks):\n", s.Name, len(plan.Tasks))
		for i, t := range plan.Tasks {
			fmt.Printf("%3d. %s\n", i+1, t.ID())
		}
		return
	}
	formatName := *format
	if *jsonl {
		// -jsonl is shorthand for -format jsonl; a conflicting explicit
		// -format is a mistake worth stopping, not silently overriding.
		if formatName != "" && formatName != "jsonl" {
			fatal(fmt.Errorf("-jsonl conflicts with -format %s", formatName))
		}
		formatName = "jsonl"
	}
	if formatName == "" {
		formatName = "csv"
	}
	exportFormat, err := table.ParseFormat(formatName)
	if err != nil {
		fatal(err)
	}
	eng := core.New(s)
	eng.Workers = *workers
	eng.MatchWindow = *window
	eng.RefineWindow = *refineWindow
	eng.ExportFormat = exportFormat
	eng.ExportWorkers = *exportWorkers
	if *verbose {
		eng.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "datasynth: "+format+"\n", args...)
		}
	}
	d, err := eng.Generate()
	if err != nil {
		fatal(err)
	}
	if err := eng.Export(d, *out); err != nil {
		fatal(err)
	}
	if *timings {
		fmt.Fprint(os.Stderr, eng.Report().String())
	}
	fmt.Printf("generated %s into %s (%s)\n", d.Stats(), *out, exportFormat)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datasynth:", err)
	os.Exit(1)
}
