// Forum: message cascades — the paper's future-work tree structures.
// Reply trees are generated with the cascade package, and the
// vertex-centric propagation engine pushes creation dates down the
// cascades so every reply is strictly later than its parent, the
// "information propagates through the cascade" pattern the paper
// sketches for social-network message threads.
//
//	go run ./examples/forum
package main

import (
	"fmt"
	"log"

	"datasynth/internal/cascade"
	"datasynth/internal/table"
)

func main() {
	gen := cascade.NewGenerator(2026)
	gen.TreeSizeMin, gen.TreeSizeMax = 1, 200
	gen.Gamma = 1.8
	gen.PreferRecent = 0.35

	const n = 50000
	forest, err := gen.Run(n)
	if err != nil {
		log.Fatal(err)
	}
	sizes := forest.TreeSizes()
	var max int64
	for _, s := range sizes {
		if s > max {
			max = s
		}
	}
	fmt.Printf("generated %d messages in %d cascades (largest %d, deepest %d levels)\n",
		forest.N(), len(sizes), max, forest.MaxDepth())

	// Vertex-centric propagation: dates strictly increase along every
	// root-to-leaf path.
	from := table.MustParseDate("2023-01-01")
	to := table.MustParseDate("2024-12-31")
	dates, err := forest.ReplyDates(from, to, 14, 7)
	if err != nil {
		log.Fatal(err)
	}
	violations := 0
	for v := int64(0); v < forest.N(); v++ {
		if p := forest.Parent[v]; p != -1 && dates[v] <= dates[p] {
			violations++
		}
	}
	fmt.Printf("date monotonicity violations: %d / %d replies\n", violations, forest.N()-int64(len(sizes)))

	// Thread topics inherit from the root with a 5% drift per level —
	// string propagation through the cascade.
	topics := []string{"go", "databases", "graphs", "benchmarks"}
	topicOf := forest.PropagateString(
		func(root int64) string { return topics[root%int64(len(topics))] },
		func(parent string, child int64) string {
			if child%20 == 0 { // occasional topic drift
				return topics[child%int64(len(topics))]
			}
			return parent
		},
	)
	drifted := 0
	for v := int64(0); v < forest.N(); v++ {
		if p := forest.Parent[v]; p != -1 && topicOf[v] != topicOf[p] {
			drifted++
		}
	}
	fmt.Printf("replies that drifted off-topic: %d (%.1f%%)\n",
		drifted, 100*float64(drifted)/float64(forest.N()))

	// Export the replyOf edge type as CSV alongside the dates.
	et := forest.EdgeTable("replyOf")
	fmt.Printf("replyOf edges: %d (one per non-root message)\n", et.Len())
	sample := et.Tail[0]
	fmt.Printf("example: message %d replies to %d (%s -> %s)\n",
		sample, et.Head[0], table.FormatDate(dates[et.Head[0]]), table.FormatDate(dates[sample]))
}
