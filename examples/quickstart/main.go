// Quickstart: build a schema programmatically, generate a small
// property graph, and inspect the result — the five-minute tour of the
// DataSynth API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"datasynth/internal/core"
	"datasynth/internal/schema"
	"datasynth/internal/table"
)

func main() {
	// A two-type schema: Users with a correlated friendship graph.
	s := &schema.Schema{
		Name: "quickstart",
		Seed: 7,
		Nodes: []schema.NodeType{{
			Name:  "User",
			Count: 2000,
			Properties: []schema.Property{
				{
					Name: "city", Kind: table.KindString,
					Generator: schema.GeneratorSpec{
						Name:   "categorical",
						Params: map[string]string{"values": "tokyo|paris|lima|cairo", "weights": "4|3|2|1"},
					},
				},
				{
					Name: "karma", Kind: table.KindInt,
					Generator: schema.GeneratorSpec{
						Name:   "uniform-int",
						Params: map[string]string{"lo": "0", "hi": "1000"},
					},
				},
			},
		}},
		Edges: []schema.EdgeType{{
			Name: "follows", Tail: "User", Head: "User",
			Cardinality: schema.ManyToMany,
			Structure: schema.GeneratorSpec{
				Name:   "lfr",
				Params: map[string]string{"avgDegree": "12", "maxDegree": "40"},
			},
			// Users mostly follow users from their own city.
			Correlation: &schema.Correlation{Property: "city", Homophily: 0.7},
		}},
	}

	dataset, err := core.New(s).Generate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("generated:", dataset.Stats())

	// Inspect: how often do edges stay within a city?
	follows := dataset.Edges["follows"]
	city := dataset.NodeProps["User"][0]
	same := 0
	for e := int64(0); e < follows.Len(); e++ {
		if city.String(follows.Tail[e]) == city.String(follows.Head[e]) {
			same++
		}
	}
	fmt.Printf("same-city follows: %.1f%% (random matching would give ~30%%)\n",
		100*float64(same)/float64(follows.Len()))

	// Every value is regenerable in place: row 42 is a pure function of
	// (id, seed), so any worker can recompute it without coordination.
	fmt.Printf("user 42: city=%s karma=%d\n", city.String(42), dataset.NodeProps["User"][1].Int(42))

	// Export as CSV for a bulk loader.
	if err := dataset.WriteDir("quickstart-out"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("CSV written to ./quickstart-out")
}
