// Recommender: a bipartite user–product benchmark dataset with a
// correlated interaction graph — the "application specific benchmark"
// use case from the paper's introduction. User segments are matched to
// product categories through the bipartite SBM-Part variation, and
// edge ratings follow the J-shaped distribution of real review data.
//
//	go run ./examples/recommender
package main

import (
	"fmt"
	"log"

	"datasynth/internal/core"
	"datasynth/internal/dsl"
)

const schemaText = `
graph recommender {
  seed = 2026

  node User {
    count = 20000
    property segment : string = categorical(values="gamer|maker|chef|reader", weights="4|3|2|3")
    property signupDate : date = uniform-date(from="2018-01-01", to="2024-12-31")
  }

  node Product {
    count = 5000
    property category : string = categorical(values="games|tools|kitchen|books", weights="4|3|2|3")
    property price : float = uniform-float(lo=1, hi=200)
  }

  edge rates : User *-* Product {
    structure = zipf-attachment(min=1, max=30, gamma=1.8, theta=1.1)
    correlate tail.segment with head.category homophily 0.75
    property rating : int = rating(lo=1, hi=5)
    property date : date = uniform-date(from="2018-01-01", to="2025-12-31")
  }
}
`

func main() {
	s, err := dsl.Parse(schemaText)
	if err != nil {
		log.Fatal(err)
	}
	dataset, err := core.New(s).Generate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("generated:", dataset.Stats())

	rates := dataset.Edges["rates"]
	segment := dataset.NodeProps["User"][0]
	category := dataset.NodeProps["Product"][0]

	// Segment-category alignment: the DSL pairs values by index
	// (gamer↔games, maker↔tools, chef↔kitchen, reader↔books).
	affinity := map[string]string{"gamer": "games", "maker": "tools", "chef": "kitchen", "reader": "books"}
	aligned := 0
	for e := int64(0); e < rates.Len(); e++ {
		if affinity[segment.String(rates.Tail[e])] == category.String(rates.Head[e]) {
			aligned++
		}
	}
	fmt.Printf("in-segment ratings: %.1f%% (target homophily 75%%, random ~26%%)\n",
		100*float64(aligned)/float64(rates.Len()))

	// Popularity skew: Zipf attachment should concentrate ratings on few
	// blockbuster products.
	inDeg := make(map[int64]int64)
	for e := int64(0); e < rates.Len(); e++ {
		inDeg[rates.Head[e]]++
	}
	var top int64
	for _, d := range inDeg {
		if d > top {
			top = d
		}
	}
	fmt.Printf("most-rated product: %d ratings (mean %.1f)\n",
		top, float64(rates.Len())/float64(dataset.NodeCounts["Product"]))

	// Rating distribution: J-shaped (5s dominate, 1s second).
	rating := dataset.EdgeProps["rates"][0]
	hist := map[int64]int64{}
	for e := int64(0); e < rates.Len(); e++ {
		hist[rating.Int(e)]++
	}
	fmt.Printf("rating histogram 1..5: %d %d %d %d %d\n",
		hist[1], hist[2], hist[3], hist[4], hist[5])

	if err := dataset.WriteDir("recommender-out"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("CSV written to ./recommender-out")
}
