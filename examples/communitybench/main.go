// Communitybench: a miniature of the paper's evaluation — run the
// Figure 3/4 protocol on a handful of panels and render the
// expected-vs-observed CDFs as terminal plots. Useful to eyeball
// SBM-Part quality without the full harness.
//
//	go run ./examples/communitybench
package main

import (
	"fmt"
	"log"
	"os"

	"datasynth/internal/exp"
)

func main() {
	panels := []exp.Panel{
		{Generator: exp.LFR, Size: 10000, K: 16, Seed: 1},
		{Generator: exp.RMAT, Size: 13, K: 16, Seed: 1},
		{Generator: exp.LFR, Size: 10000, K: 4, Seed: 2},
		{Generator: exp.LFR, Size: 10000, K: 64, Seed: 3},
	}
	fmt.Println(exp.SummaryHeader)
	results := make([]*exp.Result, 0, len(panels))
	for _, p := range panels {
		r, err := exp.RunPanel(p)
		if err != nil {
			log.Fatalf("panel %s: %v", p.Label(), err)
		}
		results = append(results, r)
		if err := exp.WriteSummaryRow(os.Stdout, r); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println()
	for _, r := range results {
		if err := exp.ASCIICDF(os.Stdout, r, 64, 10); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	fmt.Println("Reading the plots: the closer 'o' (observed) hugs 'E' (expected),")
	fmt.Println("the better SBM-Part reproduced the requested joint distribution.")
	fmt.Println("LFR panels should fit visibly better than RMAT — the paper's Figure 3 finding.")
}
