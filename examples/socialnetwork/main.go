// Social network: the paper's Figure 1 running example, end to end —
// Person/Message nodes, a homophilous knows graph, a power-law creates
// edge sizing the Message population, and the date constraint
// knows.creationDate > max(endpoint creationDates).
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"

	"datasynth/internal/core"
	"datasynth/internal/dsl"
	"datasynth/internal/graph"
)

const schemaText = `
graph social {
  seed = 42

  node Person {
    count = 20000
    property country : string = categorical(dict="countries")
    property sex     : string = categorical(values="M|F")
    property name    : string = dictionary() given (country, sex)
    property interest : string = zipf(dict="topics", theta="1.1")
    property creationDate : date = uniform-date(from="2010-01-01", to="2020-01-01")
  }

  node Message {
    property topic : string = categorical(dict="topics")
    property text  : string = text(min=3, max=12)
  }

  edge knows : Person *-* Person {
    structure = lfr(avgDegree=20, maxDegree=50, mu=0.1)
    correlate country homophily 0.8
    property creationDate : date = max-endpoint-date(maxDays=365) given (tail.creationDate, head.creationDate)
  }

  edge creates : Person 1-* Message {
    structure = powerlaw-out(min=1, max=20, gamma=2.0)
    property creationDate : date = uniform-date(from="2010-01-01", to="2020-01-01")
  }
}
`

func main() {
	s, err := dsl.Parse(schemaText)
	if err != nil {
		log.Fatal(err)
	}
	dataset, err := core.New(s).Generate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("generated:", dataset.Stats())
	fmt.Printf("Messages inferred from creates: %d instances\n", dataset.NodeCounts["Message"])

	// Requirement check 1 — property-structure correlation: connected
	// Persons share a country far above the independence baseline.
	knows := dataset.Edges["knows"]
	country := dataset.NodeProps["Person"][0]
	same := 0
	for e := int64(0); e < knows.Len(); e++ {
		if country.String(knows.Tail[e]) == country.String(knows.Head[e]) {
			same++
		}
	}
	fmt.Printf("same-country knows edges: %.1f%% (independence baseline ~7%%)\n",
		100*float64(same)/float64(knows.Len()))

	// Requirement check 2 — structural: the knows graph keeps LFR's
	// shape through the matching step.
	g, err := graph.FromEdgeTable(knows, dataset.NodeCounts["Person"])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("knows structure: avg degree %.1f, max degree %d, clustering %.3f\n",
		g.AvgDegree(), g.MaxDegree(), g.AvgClustering(2000, 1))

	// Requirement check 3 — value constraint: every knows.creationDate
	// exceeds both endpoint creationDates.
	pDate := dataset.NodeProps["Person"][4]
	kDate := dataset.EdgeProps["knows"][0]
	violations := 0
	for e := int64(0); e < knows.Len(); e++ {
		if kDate.Int(e) <= pDate.Int(knows.Tail[e]) || kDate.Int(e) <= pDate.Int(knows.Head[e]) {
			violations++
		}
	}
	fmt.Printf("date-constraint violations: %d / %d\n", violations, knows.Len())

	// Requirement check 4 — conditional properties: names match the
	// (country, sex) dictionaries.
	name := dataset.NodeProps["Person"][2]
	sex := dataset.NodeProps["Person"][1]
	fmt.Printf("sample row: %s (%s, %s) from %s\n",
		name.String(0), sex.String(0), dataset.NodeProps["Person"][3].String(0), country.String(0))

	if err := dataset.WriteDir("social-out"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("CSV written to ./social-out")
}
