#!/usr/bin/env bash
# bench.sh — record the Figure 3 benchmark panels, the export
# throughput benchmarks (CSV serial vs concurrent vs JSONL vs columnar
# on the Figure3_LFR100k dataset), the datasynthd service path (cold
# submit vs warm cache hit — with and without eviction pressure — vs
# singleflight storm), and the bipartite matcher (serial vs windowed)
# with -benchmem, and write a machine-readable snapshot
# (BENCH_pr<N>.json) so the perf trajectory is tracked PR over PR.
#
# Usage: ./bench.sh [pr-number] [bench-regex] [service-bench-regex] [match-bench-regex]
set -euo pipefail

PR="${1:-9}"
PATTERN="${2:-Figure3|Export}"
SERVICE_PATTERN="${3:-Service}"
MATCH_PATTERN="${4:-MatchBipartite}"
OUT="BENCH_pr${PR}.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench "$PATTERN" -benchmem -count 1 . | tee "$RAW"
go test -run '^$' -bench "$SERVICE_PATTERN" -benchmem -count 1 ./internal/service | tee -a "$RAW"
go test -run '^$' -bench "$MATCH_PATTERN" -benchmem -count 1 ./internal/match | tee -a "$RAW"

# Lint lane: the datasynthlint sweep is a blocking CI step, so its wall
# time is tracked in the snapshot alongside the benchmarks. The run
# must also be clean — a finding fails bench.sh like it fails CI.
LINT_START="$(date +%s%N)"
go run ./lint/cmd/datasynthlint ./...
LINT_MS=$(( ($(date +%s%N) - LINT_START) / 1000000 ))
echo "datasynthlint ./...: clean in ${LINT_MS} ms"

# Parse `go test -bench` output lines into JSON records. A line looks
# like:
#   BenchmarkFigure3_LFR10k_K16  3  338359616 ns/op  0.03 KS  0.06 L1 \
#     955265 edges  157510493 B/op  256504 allocs/op
awk -v pr="$PR" -v lint_ms="$LINT_MS" '
BEGIN { printf "{\n  \"pr\": %s,\n  \"lint_ms\": %s,\n  \"benchmarks\": [\n", pr, lint_ms; first = 1 }
/^Benchmark/ {
    name = $1; iters = $2
    line = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        metric = $(i + 1); value = $i
        gsub(/[^A-Za-z0-9_\/]/, "_", metric)
        line = line sprintf("\"%s\": %s, ", metric, value)
    }
    sub(/, $/, "", line)
    if (!first) printf ",\n"
    first = 0
    printf "    {\"name\": \"%s\", \"iterations\": %s, %s}", name, iters, line
}
END { printf "\n  ]\n}\n" }
' "$RAW" > "$OUT"

echo "wrote $OUT"
