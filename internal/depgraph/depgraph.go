// Package depgraph implements DataSynth's dependency analysis (paper
// Section 4.2): "The data generation process begins analyzing the
// schema described by the user to reveal dependencies among the data to
// be generated. … from the dependencies analysis we get a dependency
// graph, which we traverse to preserve the dependencies between the
// tasks."
//
// Tasks are of four kinds — generate property, generate structure,
// match graph, and generate edge property — and the analysis also
// resolves how every node type's instance count is obtained, covering
// the paper's flagship example: the number of Messages is the size of
// the `creates` edge table, which in turn is sized from the number of
// Persons (or, inversely, from a requested edge count through the SG's
// getNumNodes).
package depgraph

import (
	"fmt"
	"sort"

	"datasynth/internal/schema"
)

// TaskKind enumerates the task types of the paper's Figure 2 pipeline.
type TaskKind int

// Task kinds, in pipeline order.
const (
	// TaskProperty generates one node property table.
	TaskProperty TaskKind = iota
	// TaskStructure generates one edge type's structure.
	TaskStructure
	// TaskMatch matches node property rows to structure nodes.
	TaskMatch
	// TaskEdgeProperty generates one edge property table.
	TaskEdgeProperty
)

// String returns a diagnostic name.
func (k TaskKind) String() string {
	switch k {
	case TaskProperty:
		return "property"
	case TaskStructure:
		return "structure"
	case TaskMatch:
		return "match"
	case TaskEdgeProperty:
		return "edge-property"
	default:
		return fmt.Sprintf("TaskKind(%d)", int(k))
	}
}

// Task is one unit of generation work.
type Task struct {
	Kind TaskKind
	Type string // node type (TaskProperty) or edge type name
	Prop string // property name for property tasks
}

// ID returns the unique task identifier.
func (t Task) ID() string {
	switch t.Kind {
	case TaskProperty:
		return "P:" + t.Type + "." + t.Prop
	case TaskStructure:
		return "S:" + t.Type
	case TaskMatch:
		return "M:" + t.Type
	default:
		return "EP:" + t.Type + "." + t.Prop
	}
}

// SourceKind describes how a node type's count is obtained.
type SourceKind int

// Count sources.
const (
	// SourceExplicit: the schema declares the count.
	SourceExplicit SourceKind = iota
	// SourceEdgeHead: the type is the head of a 1→* edge; its count is
	// that edge table's size (the Message example).
	SourceEdgeHead
	// SourceEdgeCount: the type is the tail of an edge with an explicit
	// edge count; its count comes from the SG's getNumNodes.
	SourceEdgeCount
)

// CountSource records one node type's sizing rule.
type CountSource struct {
	Kind SourceKind
	Edge string // edge type for the edge-derived kinds
}

// Plan is the task DAG plus sizing rules. Tasks is in a
// dependency-respecting (topological) order, so a sequential executor
// can simply walk it; Deps exposes the per-task dependency edges so a
// concurrent executor can dispatch every task whose dependencies are
// satisfied without waiting for unrelated ones.
type Plan struct {
	Tasks []Task
	// Deps[i] lists the indices (into Tasks) of the tasks that must
	// complete before Tasks[i] may run. Entries are deduplicated and,
	// because Tasks is topologically ordered, always smaller than i.
	Deps [][]int
	// Counts maps node type name -> how to obtain its instance count.
	Counts map[string]CountSource
}

// Analyze builds the dependency graph for a validated schema, resolves
// count sources, and returns tasks in a dependency-respecting order.
// It fails on dependency cycles and on node types whose count cannot be
// inferred.
func Analyze(s *schema.Schema) (*Plan, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	counts, err := resolveCounts(s)
	if err != nil {
		return nil, err
	}

	// Build the task set.
	var tasks []Task
	index := map[string]int{}
	add := func(t Task) {
		if _, dup := index[t.ID()]; dup {
			return
		}
		index[t.ID()] = len(tasks)
		tasks = append(tasks, t)
	}
	for i := range s.Nodes {
		n := &s.Nodes[i]
		for j := range n.Properties {
			add(Task{Kind: TaskProperty, Type: n.Name, Prop: n.Properties[j].Name})
		}
	}
	for i := range s.Edges {
		e := &s.Edges[i]
		add(Task{Kind: TaskStructure, Type: e.Name})
		add(Task{Kind: TaskMatch, Type: e.Name})
		for j := range e.Properties {
			add(Task{Kind: TaskEdgeProperty, Type: e.Name, Prop: e.Properties[j].Name})
		}
	}

	// Edges of the dependency graph: dep -> dependent, deduplicated so
	// Deps and the indegrees stay consistent for the scheduler.
	adj := make([][]int, len(tasks))
	indeg := make([]int, len(tasks))
	haveEdge := map[[2]int]bool{}
	addDep := func(from, to Task) error {
		fi, ok := index[from.ID()]
		if !ok {
			return fmt.Errorf("depgraph: internal: missing task %s", from.ID())
		}
		ti, ok := index[to.ID()]
		if !ok {
			return fmt.Errorf("depgraph: internal: missing task %s", to.ID())
		}
		if haveEdge[[2]int{fi, ti}] {
			return nil
		}
		haveEdge[[2]int{fi, ti}] = true
		adj[fi] = append(adj[fi], ti)
		indeg[ti]++
		return nil
	}

	// countDep returns the task (if any) that must complete before the
	// given node type's count is known.
	countDep := func(nodeType string) *Task {
		src := counts[nodeType]
		if src.Kind == SourceEdgeHead {
			return &Task{Kind: TaskStructure, Type: src.Edge}
		}
		return nil
	}

	for i := range s.Nodes {
		n := &s.Nodes[i]
		for j := range n.Properties {
			p := &n.Properties[j]
			this := Task{Kind: TaskProperty, Type: n.Name, Prop: p.Name}
			// Conditioned properties come after their parents.
			for _, dep := range p.DependsOn {
				if err := addDep(Task{Kind: TaskProperty, Type: n.Name, Prop: dep}, this); err != nil {
					return nil, err
				}
			}
			// The property table needs the instance count.
			if cd := countDep(n.Name); cd != nil {
				if err := addDep(*cd, this); err != nil {
					return nil, err
				}
			}
		}
	}
	for i := range s.Edges {
		e := &s.Edges[i]
		st := Task{Kind: TaskStructure, Type: e.Name}
		mt := Task{Kind: TaskMatch, Type: e.Name}
		// A fused edge generates structure and the correlated head
		// property together, so the tail property must exist first — and
		// the head property task materialises the fused column, so it
		// must come after the structure task that mints it.
		if e.Correlation != nil && e.Correlation.Fused {
			if err := addDep(Task{Kind: TaskProperty, Type: e.Tail, Prop: e.Correlation.TailProperty}, st); err != nil {
				return nil, err
			}
			if err := addDep(st, Task{Kind: TaskProperty, Type: e.Head, Prop: e.Correlation.HeadProperty}); err != nil {
				return nil, err
			}
		}
		// Structure needs the tail count unless the edge count is
		// explicit (then getNumNodes sizes the tail instead).
		if e.Count == 0 {
			if cd := countDep(e.Tail); cd != nil {
				if err := addDep(*cd, st); err != nil {
					return nil, err
				}
			}
			// A *→* bipartite generator also needs the head domain.
			if e.Cardinality == schema.ManyToMany && e.Tail != e.Head {
				if cd := countDep(e.Head); cd != nil {
					if err := addDep(*cd, st); err != nil {
						return nil, err
					}
				}
			}
		}
		// Match follows structure and the correlated property tables. It
		// also resolves both endpoint counts, so any structure task that
		// sizes an endpoint domain must have completed (the sequential
		// executor got this for free from tie-break ordering; the
		// concurrent one needs the edge to be explicit).
		if err := addDep(st, mt); err != nil {
			return nil, err
		}
		if cd := countDep(e.Tail); cd != nil {
			if err := addDep(*cd, mt); err != nil {
				return nil, err
			}
		}
		if cd := countDep(e.Head); cd != nil {
			if err := addDep(*cd, mt); err != nil {
				return nil, err
			}
		}
		if c := e.Correlation; c != nil {
			if c.Property != "" {
				if err := addDep(Task{Kind: TaskProperty, Type: e.Tail, Prop: c.Property}, mt); err != nil {
					return nil, err
				}
			} else {
				if err := addDep(Task{Kind: TaskProperty, Type: e.Tail, Prop: c.TailProperty}, mt); err != nil {
					return nil, err
				}
				if err := addDep(Task{Kind: TaskProperty, Type: e.Head, Prop: c.HeadProperty}, mt); err != nil {
					return nil, err
				}
			}
		}
		// Edge properties follow the match (endpoint ids are final) and
		// their dependencies.
		for j := range e.Properties {
			p := &e.Properties[j]
			this := Task{Kind: TaskEdgeProperty, Type: e.Name, Prop: p.Name}
			if err := addDep(mt, this); err != nil {
				return nil, err
			}
			for _, dep := range p.DependsOn {
				var dt Task
				switch {
				case len(dep) > 5 && dep[:5] == "tail.":
					dt = Task{Kind: TaskProperty, Type: e.Tail, Prop: dep[5:]}
				case len(dep) > 5 && dep[:5] == "head.":
					dt = Task{Kind: TaskProperty, Type: e.Head, Prop: dep[5:]}
				default:
					dt = Task{Kind: TaskEdgeProperty, Type: e.Name, Prop: dep}
				}
				if err := addDep(dt, this); err != nil {
					return nil, err
				}
			}
		}
	}

	perm, err := kahn(tasks, adj, indeg)
	if err != nil {
		return nil, err
	}
	ordered := make([]Task, len(perm))
	pos := make([]int, len(perm)) // original index -> output index
	for out, orig := range perm {
		ordered[out] = tasks[orig]
		pos[orig] = out
	}
	deps := make([][]int, len(perm))
	for orig, dependents := range adj {
		for _, t := range dependents {
			deps[pos[t]] = append(deps[pos[t]], pos[orig])
		}
	}
	for i := range deps {
		sort.Ints(deps[i])
	}
	return &Plan{Tasks: ordered, Deps: deps, Counts: counts}, nil
}

// resolveCounts determines every node type's count source, preferring
// explicit counts, then 1→* head inference, then tail inference through
// an explicit edge count.
func resolveCounts(s *schema.Schema) (map[string]CountSource, error) {
	counts := make(map[string]CountSource, len(s.Nodes))
	for i := range s.Nodes {
		n := &s.Nodes[i]
		if n.Count > 0 {
			counts[n.Name] = CountSource{Kind: SourceExplicit}
			continue
		}
		resolved := false
		// Head of a 1→* edge: count = |ET| (the Message rule).
		for j := range s.Edges {
			e := &s.Edges[j]
			if e.Cardinality == schema.OneToMany && e.Head == n.Name && e.Tail != n.Name {
				counts[n.Name] = CountSource{Kind: SourceEdgeHead, Edge: e.Name}
				resolved = true
				break
			}
		}
		if resolved {
			continue
		}
		// Tail of an edge with an explicit count: getNumNodes.
		for j := range s.Edges {
			e := &s.Edges[j]
			if e.Count > 0 && e.Tail == n.Name {
				counts[n.Name] = CountSource{Kind: SourceEdgeCount, Edge: e.Name}
				resolved = true
				break
			}
		}
		if !resolved {
			return nil, fmt.Errorf("depgraph: cannot infer instance count of node type %q", n.Name)
		}
	}
	// Inference chains must be acyclic: a SourceEdgeHead edge's tail
	// must not itself (transitively) depend on that edge's head.
	for name := range counts {
		seen := map[string]bool{}
		cur := name
		for {
			if seen[cur] {
				return nil, fmt.Errorf("depgraph: circular count inference involving %q", name)
			}
			seen[cur] = true
			src := counts[cur]
			if src.Kind == SourceExplicit {
				break
			}
			e := s.EdgeType(src.Edge)
			if src.Kind == SourceEdgeHead {
				cur = e.Tail
			} else {
				break // SourceEdgeCount terminates (count from spec)
			}
		}
	}
	return counts, nil
}

// kahn topologically sorts the task graph, breaking ties by pipeline
// stage then task id for deterministic plans. It returns the ordered
// original indices so the caller can remap the dependency edges.
func kahn(tasks []Task, adj [][]int, indeg []int) ([]int, error) {
	ready := make([]int, 0, len(tasks))
	for i, d := range indeg {
		if d == 0 {
			ready = append(ready, i)
		}
	}
	sortReady := func() {
		sort.Slice(ready, func(a, b int) bool {
			ta, tb := tasks[ready[a]], tasks[ready[b]]
			if ta.Kind != tb.Kind {
				return ta.Kind < tb.Kind
			}
			return ta.ID() < tb.ID()
		})
	}
	sortReady()
	out := make([]int, 0, len(tasks))
	for len(ready) > 0 {
		i := ready[0]
		ready = ready[1:]
		out = append(out, i)
		changed := false
		for _, j := range adj[i] {
			indeg[j]--
			if indeg[j] == 0 {
				ready = append(ready, j)
				changed = true
			}
		}
		if changed {
			sortReady()
		}
	}
	if len(out) != len(tasks) {
		var stuck []string
		for i, d := range indeg {
			if d > 0 {
				stuck = append(stuck, tasks[i].ID())
			}
		}
		sort.Strings(stuck)
		return nil, fmt.Errorf("depgraph: dependency cycle among tasks %v", stuck)
	}
	return out, nil
}
