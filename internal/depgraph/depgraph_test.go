package depgraph

import (
	"strings"
	"testing"

	"datasynth/internal/schema"
	"datasynth/internal/table"
)

// paperSchema is the Figure 1 running example: Person/Message nodes,
// knows (*→*, correlated) and creates (1→*) edges, with Message's count
// inferred from creates.
func paperSchema() *schema.Schema {
	return &schema.Schema{
		Name: "social",
		Seed: 7,
		Nodes: []schema.NodeType{
			{
				Name:  "Person",
				Count: 1000,
				Properties: []schema.Property{
					{Name: "country", Kind: table.KindString, Generator: schema.GeneratorSpec{Name: "categorical", Params: map[string]string{"dict": "countries"}}},
					{Name: "sex", Kind: table.KindString, Generator: schema.GeneratorSpec{Name: "categorical", Params: map[string]string{"dict": "sexes"}}},
					{Name: "name", Kind: table.KindString, Generator: schema.GeneratorSpec{Name: "dictionary"}, DependsOn: []string{"country", "sex"}},
					{Name: "creationDate", Kind: table.KindDate, Generator: schema.GeneratorSpec{Name: "uniform-date"}},
				},
			},
			{
				Name: "Message",
				Properties: []schema.Property{
					{Name: "topic", Kind: table.KindString, Generator: schema.GeneratorSpec{Name: "categorical", Params: map[string]string{"dict": "topics"}}},
				},
			},
		},
		Edges: []schema.EdgeType{
			{
				Name: "knows", Tail: "Person", Head: "Person",
				Cardinality: schema.ManyToMany,
				Structure:   schema.GeneratorSpec{Name: "lfr"},
				Correlation: &schema.Correlation{Property: "country", Homophily: 0.8},
				Properties: []schema.Property{
					{Name: "creationDate", Kind: table.KindDate, Generator: schema.GeneratorSpec{Name: "max-endpoint-date"}, DependsOn: []string{"tail.creationDate", "head.creationDate"}},
				},
			},
			{
				Name: "creates", Tail: "Person", Head: "Message",
				Cardinality: schema.OneToMany,
				Structure:   schema.GeneratorSpec{Name: "powerlaw-out"},
			},
		},
	}
}

func pos(t *testing.T, plan *Plan, id string) int {
	t.Helper()
	for i, task := range plan.Tasks {
		if task.ID() == id {
			return i
		}
	}
	t.Fatalf("task %s not in plan %v", id, ids(plan))
	return -1
}

func ids(p *Plan) []string {
	out := make([]string, len(p.Tasks))
	for i, t := range p.Tasks {
		out[i] = t.ID()
	}
	return out
}

func TestAnalyzePaperExample(t *testing.T) {
	plan, err := Analyze(paperSchema())
	if err != nil {
		t.Fatal(err)
	}
	// All tasks present: 4 Person props + 1 Message prop + 2 structures
	// + 2 matches + 1 edge prop = 10.
	if len(plan.Tasks) != 10 {
		t.Fatalf("plan has %d tasks: %v", len(plan.Tasks), ids(plan))
	}
	// name after country and sex.
	if pos(t, plan, "P:Person.name") < pos(t, plan, "P:Person.country") {
		t.Error("name generated before country")
	}
	if pos(t, plan, "P:Person.name") < pos(t, plan, "P:Person.sex") {
		t.Error("name generated before sex")
	}
	// Message.topic after creates structure (count inference).
	if pos(t, plan, "P:Message.topic") < pos(t, plan, "S:creates") {
		t.Error("Message property before creates structure")
	}
	// Match after structure and after the correlated property.
	if pos(t, plan, "M:knows") < pos(t, plan, "S:knows") {
		t.Error("match before structure")
	}
	if pos(t, plan, "M:knows") < pos(t, plan, "P:Person.country") {
		t.Error("match before correlated property")
	}
	// Edge property after match and endpoint property.
	if pos(t, plan, "EP:knows.creationDate") < pos(t, plan, "M:knows") {
		t.Error("edge property before match")
	}
	if pos(t, plan, "EP:knows.creationDate") < pos(t, plan, "P:Person.creationDate") {
		t.Error("edge property before endpoint property")
	}
}

func TestCountSources(t *testing.T) {
	plan, err := Analyze(paperSchema())
	if err != nil {
		t.Fatal(err)
	}
	if src := plan.Counts["Person"]; src.Kind != SourceExplicit {
		t.Errorf("Person source = %v", src)
	}
	if src := plan.Counts["Message"]; src.Kind != SourceEdgeHead || src.Edge != "creates" {
		t.Errorf("Message source = %+v, want head of creates", src)
	}
}

func TestCountFromEdgeCount(t *testing.T) {
	// Scale by the number of creates edges: Person sized via
	// getNumNodes, Message still from the edge table.
	s := paperSchema()
	s.Nodes[0].Count = 0
	s.Edges[1].Count = 50000
	plan, err := Analyze(s)
	if err != nil {
		t.Fatal(err)
	}
	if src := plan.Counts["Person"]; src.Kind != SourceEdgeCount || src.Edge != "creates" {
		t.Errorf("Person source = %+v, want edge-count via creates", src)
	}
	if src := plan.Counts["Message"]; src.Kind != SourceEdgeHead {
		t.Errorf("Message source = %+v", src)
	}
}

func TestUnresolvableCount(t *testing.T) {
	s := paperSchema()
	// Orphan type with no count and no incoming 1→* edge.
	s.Nodes = append(s.Nodes, schema.NodeType{Name: "Ghost"})
	_, err := Analyze(s)
	if err == nil || !strings.Contains(err.Error(), "cannot infer") {
		t.Fatalf("err = %v, want cannot-infer", err)
	}
}

func TestPropertyCycleDetected(t *testing.T) {
	s := paperSchema()
	// country <-> sex cycle.
	s.Nodes[0].Properties[0].DependsOn = []string{"sex"}
	s.Nodes[0].Properties[1].DependsOn = []string{"country"}
	_, err := Analyze(s)
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v, want cycle", err)
	}
}

func TestInvalidSchemaRejected(t *testing.T) {
	s := paperSchema()
	s.Edges[0].Tail = "Nope"
	if _, err := Analyze(s); err == nil {
		t.Fatal("invalid schema should fail analysis")
	}
}

func TestPlanDeterministic(t *testing.T) {
	a, err := Analyze(paperSchema())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Analyze(paperSchema())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(ids(a), ",") != strings.Join(ids(b), ",") {
		t.Fatalf("plans differ:\n%v\n%v", ids(a), ids(b))
	}
}

func TestTaskIDs(t *testing.T) {
	cases := []struct {
		task Task
		id   string
	}{
		{Task{Kind: TaskProperty, Type: "T", Prop: "p"}, "P:T.p"},
		{Task{Kind: TaskStructure, Type: "e"}, "S:e"},
		{Task{Kind: TaskMatch, Type: "e"}, "M:e"},
		{Task{Kind: TaskEdgeProperty, Type: "e", Prop: "p"}, "EP:e.p"},
	}
	for _, c := range cases {
		if c.task.ID() != c.id {
			t.Errorf("ID = %s, want %s", c.task.ID(), c.id)
		}
	}
	if TaskProperty.String() != "property" || TaskMatch.String() != "match" {
		t.Error("TaskKind strings wrong")
	}
}

func TestBipartiteStructureNeedsHeadCount(t *testing.T) {
	// A *→* edge between two types, head count inferred from another
	// edge: structure must come after that edge's structure.
	s := &schema.Schema{
		Name: "shop",
		Nodes: []schema.NodeType{
			{Name: "User", Count: 100},
			{Name: "Product"}, // inferred from lists
			{Name: "Vendor", Count: 10},
		},
		Edges: []schema.EdgeType{
			{Name: "lists", Tail: "Vendor", Head: "Product", Cardinality: schema.OneToMany,
				Structure: schema.GeneratorSpec{Name: "powerlaw-out"}},
			{Name: "buys", Tail: "User", Head: "Product", Cardinality: schema.ManyToMany,
				Structure: schema.GeneratorSpec{Name: "zipf-attachment"}},
		},
	}
	plan, err := Analyze(s)
	if err != nil {
		t.Fatal(err)
	}
	if pos(t, plan, "S:buys") < pos(t, plan, "S:lists") {
		t.Error("buys structure before lists (head domain unknown)")
	}
}

func TestChainedInference(t *testing.T) {
	// Person -> creates -> Message -> replies(1→*) -> Reply: two hops of
	// count inference.
	s := paperSchema()
	s.Nodes = append(s.Nodes, schema.NodeType{
		Name: "Reply",
		Properties: []schema.Property{
			{Name: "text", Kind: table.KindString, Generator: schema.GeneratorSpec{Name: "text"}},
		},
	})
	s.Edges = append(s.Edges, schema.EdgeType{
		Name: "replies", Tail: "Message", Head: "Reply",
		Cardinality: schema.OneToMany,
		Structure:   schema.GeneratorSpec{Name: "powerlaw-out"},
	})
	plan, err := Analyze(s)
	if err != nil {
		t.Fatal(err)
	}
	if pos(t, plan, "S:replies") < pos(t, plan, "S:creates") {
		t.Error("replies structure before creates (Message count unknown)")
	}
	if pos(t, plan, "P:Reply.text") < pos(t, plan, "S:replies") {
		t.Error("Reply property before replies structure")
	}
	if src := plan.Counts["Reply"]; src.Kind != SourceEdgeHead || src.Edge != "replies" {
		t.Errorf("Reply source = %+v", src)
	}
}

// TestDepsExposed: the plan must carry the task DAG itself, not just a
// topological order, with edges for every dependency the executor
// relies on.
func TestDepsExposed(t *testing.T) {
	plan, err := Analyze(paperSchema())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Deps) != len(plan.Tasks) {
		t.Fatalf("Deps has %d entries for %d tasks", len(plan.Deps), len(plan.Tasks))
	}
	hasDep := func(task, on string) bool {
		ti := pos(t, plan, task)
		oi := pos(t, plan, on)
		for _, d := range plan.Deps[ti] {
			if d == oi {
				return true
			}
		}
		return false
	}
	for _, tc := range []struct{ task, on string }{
		{"P:Person.name", "P:Person.country"},              // conditioned property
		{"P:Person.name", "P:Person.sex"},                  // conditioned property
		{"M:knows", "S:knows"},                             // match after structure
		{"M:knows", "P:Person.country"},                    // match after correlated property
		{"P:Message.topic", "S:creates"},                   // count inferred through 1→* head
		{"M:creates", "S:creates"},                         // match after structure
		{"EP:knows.creationDate", "M:knows"},               // edge property after match
		{"EP:knows.creationDate", "P:Person.creationDate"}, // endpoint dep
	} {
		if !hasDep(tc.task, tc.on) {
			t.Errorf("missing dependency %s -> %s", tc.on, tc.task)
		}
	}
	// Deps must be consistent with the topological order: every
	// dependency index precedes the dependent.
	for i, deps := range plan.Deps {
		seen := map[int]bool{}
		for _, d := range deps {
			if d >= i {
				t.Errorf("task %s depends on later task %s", plan.Tasks[i].ID(), plan.Tasks[d].ID())
			}
			if seen[d] {
				t.Errorf("task %s lists dependency %s twice", plan.Tasks[i].ID(), plan.Tasks[d].ID())
			}
			seen[d] = true
		}
	}
}
