package stats

import (
	"fmt"
	"math"
	"sort"
)

// Marginal utilities: value frequencies, marginal distributions of a
// joint, and synthetic joint construction (homophily models) used by
// the engine when the user specifies a correlation declaratively
// instead of supplying a full matrix.

// Frequencies counts label occurrences, returning counts[v] for
// v in [0, k).
func Frequencies(labels []int64, k int) ([]int64, error) {
	counts := make([]int64, k)
	for i, l := range labels {
		if l < 0 || l >= int64(k) {
			return nil, fmt.Errorf("stats: label %d at %d outside [0,%d)", l, i, k)
		}
		counts[l]++
	}
	return counts, nil
}

// Marginal returns the marginal P(X=v) of a symmetric joint: the
// probability that a uniformly random edge *endpoint* carries value v.
func (j *Joint) Marginal() []float64 {
	m := make([]float64, j.K)
	for a := 0; a < j.K; a++ {
		for b := a; b < j.K; b++ {
			p := j.P[a*j.K+b]
			if a == b {
				m[a] += p
			} else {
				m[a] += p / 2
				m[b] += p / 2
			}
		}
	}
	return m
}

// HomophilyJoint builds a synthetic joint distribution over k values
// with group-size proportions sizes (need not be normalised): a
// fraction `homophily` of edges fall within a group (distributed
// proportionally to the number of intra pairs ~ size²) and the rest
// across groups (proportionally to size_a·size_b). homophily = 1 gives
// a perfectly clustered graph; 0 mixes freely. This is how a DSL user
// writes "Persons from the same country are more likely to know each
// other" without supplying a full k×k matrix.
func HomophilyJoint(sizes []int64, homophily float64) (*Joint, error) {
	k := len(sizes)
	if k == 0 {
		return nil, fmt.Errorf("stats: homophily joint needs at least one group")
	}
	if homophily < 0 || homophily > 1 {
		return nil, fmt.Errorf("stats: homophily %v outside [0,1]", homophily)
	}
	var total float64
	for i, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("stats: group %d has non-positive size %d", i, s)
		}
		total += float64(s)
	}
	j := NewJoint(k)
	// Intra mass ∝ size_a², inter mass ∝ 2·size_a·size_b.
	var intraW, interW float64
	for a := 0; a < k; a++ {
		intraW += float64(sizes[a]) * float64(sizes[a])
		for b := a + 1; b < k; b++ {
			interW += 2 * float64(sizes[a]) * float64(sizes[b])
		}
	}
	for a := 0; a < k; a++ {
		w := float64(sizes[a]) * float64(sizes[a]) / intraW
		j.Set(a, a, homophily*w)
		for b := a + 1; b < k; b++ {
			if interW > 0 {
				w := 2 * float64(sizes[a]) * float64(sizes[b]) / interW
				j.Set(a, b, (1-homophily)*w)
			}
		}
	}
	if k == 1 {
		j.Set(0, 0, 1)
	}
	// With a single group or homophily==1, inter mass must fold back.
	j.Normalize()
	return j, nil
}

// Quantile returns the q-quantile (0<=q<=1) of xs (copied and sorted).
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if q <= 0 {
		return c[0]
	}
	if q >= 1 {
		return c[len(c)-1]
	}
	pos := q * float64(len(c)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(c) {
		return c[lo]
	}
	return c[lo]*(1-frac) + c[lo+1]*frac
}

// Histogram builds a fixed-width histogram of xs over [min, max] with
// the given number of bins; out-of-range values clamp to the edge bins.
func Histogram(xs []float64, min, max float64, bins int) ([]int64, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: histogram needs bins > 0")
	}
	if max <= min {
		return nil, fmt.Errorf("stats: histogram needs max > min")
	}
	h := make([]int64, bins)
	w := (max - min) / float64(bins)
	for _, x := range xs {
		b := int((x - min) / w)
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		h[b]++
	}
	return h, nil
}
