package stats

import (
	"math"
	"testing"
	"testing/quick"

	"datasynth/internal/table"
)

func TestJointSymmetricAccess(t *testing.T) {
	j := NewJoint(3)
	j.Set(2, 0, 0.5)
	if j.At(0, 2) != 0.5 || j.At(2, 0) != 0.5 {
		t.Errorf("symmetric access broken: %v %v", j.At(0, 2), j.At(2, 0))
	}
	j.Add(0, 2, 0.25)
	if j.At(2, 0) != 0.75 {
		t.Errorf("Add broken: %v", j.At(2, 0))
	}
}

func TestJointNormalizeAndValidate(t *testing.T) {
	j := NewJoint(2)
	j.Set(0, 0, 2)
	j.Set(0, 1, 1)
	j.Set(1, 1, 1)
	if err := j.Validate(); err == nil {
		t.Error("unnormalised joint should fail validation")
	}
	j.Normalize()
	if err := j.Validate(); err != nil {
		t.Errorf("normalised joint invalid: %v", err)
	}
	if math.Abs(j.At(0, 0)-0.5) > 1e-12 {
		t.Errorf("P(0,0) = %v, want 0.5", j.At(0, 0))
	}
}

func TestJointValidateRejectsNegative(t *testing.T) {
	j := NewJoint(2)
	j.Set(0, 0, -1)
	if err := j.Validate(); err == nil {
		t.Error("negative probability should fail")
	}
}

func TestEmpiricalJoint(t *testing.T) {
	et := table.NewEdgeTable("e", 4)
	et.Add(0, 1) // labels 0-0
	et.Add(1, 2) // labels 0-1
	et.Add(2, 3) // labels 1-1
	et.Add(0, 2) // labels 0-1
	labels := []int64{0, 0, 1, 1}
	j, err := EmpiricalJoint(et, labels, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(j.At(0, 0)-0.25) > 1e-12 {
		t.Errorf("P(0,0) = %v, want 0.25", j.At(0, 0))
	}
	if math.Abs(j.At(0, 1)-0.5) > 1e-12 {
		t.Errorf("P(0,1) = %v, want 0.5", j.At(0, 1))
	}
	if math.Abs(j.At(1, 1)-0.25) > 1e-12 {
		t.Errorf("P(1,1) = %v, want 0.25", j.At(1, 1))
	}
	if err := j.Validate(); err != nil {
		t.Errorf("empirical joint invalid: %v", err)
	}
}

func TestEmpiricalJointErrors(t *testing.T) {
	et := table.NewEdgeTable("e", 1)
	et.Add(0, 5)
	if _, err := EmpiricalJoint(et, []int64{0, 0}, 2); err == nil {
		t.Error("endpoint outside labelling should fail")
	}
	et2 := table.NewEdgeTable("e", 1)
	et2.Add(0, 1)
	if _, err := EmpiricalJoint(et2, []int64{0, 9}, 2); err == nil {
		t.Error("label outside range should fail")
	}
}

func TestEmpiricalJointEmpty(t *testing.T) {
	et := table.NewEdgeTable("e", 0)
	j, err := EmpiricalJoint(et, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if j.Total() != 0 {
		t.Errorf("empty joint mass = %v", j.Total())
	}
}

func TestSortedPairsOrder(t *testing.T) {
	j := NewJoint(3)
	j.Set(0, 0, 0.1)
	j.Set(0, 1, 0.4)
	j.Set(1, 2, 0.3)
	j.Set(2, 2, 0.2)
	pairs := j.SortedPairs()
	if len(pairs) != 6 {
		t.Fatalf("pairs = %d, want 6", len(pairs))
	}
	for i := 1; i < len(pairs); i++ {
		if pairs[i].P > pairs[i-1].P {
			t.Fatalf("pairs not sorted at %d", i)
		}
	}
	if pairs[0].A != 0 || pairs[0].B != 1 {
		t.Errorf("top pair = (%d,%d), want (0,1)", pairs[0].A, pairs[0].B)
	}
}

func TestCDFPairIdentical(t *testing.T) {
	j := NewJoint(2)
	j.Set(0, 0, 0.6)
	j.Set(0, 1, 0.3)
	j.Set(1, 1, 0.1)
	c, err := NewCDFPair(j, j)
	if err != nil {
		t.Fatal(err)
	}
	if ks := c.KS(); ks != 0 {
		t.Errorf("KS of identical dists = %v", ks)
	}
	if last := c.Expected[len(c.Expected)-1]; math.Abs(last-1) > 1e-9 {
		t.Errorf("expected CDF ends at %v", last)
	}
}

func TestCDFPairDisjoint(t *testing.T) {
	a := NewJoint(2)
	a.Set(0, 0, 1)
	b := NewJoint(2)
	b.Set(1, 1, 1)
	c, err := NewCDFPair(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if ks := c.KS(); math.Abs(ks-1) > 1e-12 {
		t.Errorf("KS of disjoint dists = %v, want 1", ks)
	}
	if _, err := NewCDFPair(a, NewJoint(3)); err == nil {
		t.Error("size mismatch should fail")
	}
}

func TestL1Distance(t *testing.T) {
	a := NewJoint(2)
	a.Set(0, 0, 1)
	b := NewJoint(2)
	b.Set(1, 1, 1)
	d, err := L1(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-2) > 1e-12 {
		t.Errorf("L1 disjoint = %v, want 2", d)
	}
	d2, _ := L1(a, a)
	if d2 != 0 {
		t.Errorf("L1 self = %v", d2)
	}
}

func TestJensenShannonBounds(t *testing.T) {
	a := NewJoint(2)
	a.Set(0, 0, 1)
	b := NewJoint(2)
	b.Set(1, 1, 1)
	js, err := JensenShannon(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(js-1) > 1e-9 {
		t.Errorf("JS disjoint = %v, want 1", js)
	}
	js2, _ := JensenShannon(a, a)
	if js2 != 0 {
		t.Errorf("JS self = %v", js2)
	}
}

func TestChiSquare(t *testing.T) {
	e := NewJoint(2)
	e.Set(0, 0, 0.5)
	e.Set(1, 1, 0.5)
	if chi := ChiSquare(e, e, 100); chi != 0 {
		t.Errorf("chi-square self = %v", chi)
	}
	o := NewJoint(2)
	o.Set(0, 0, 0.6)
	o.Set(1, 1, 0.4)
	if chi := ChiSquare(e, o, 100); chi <= 0 {
		t.Errorf("chi-square = %v, want > 0", chi)
	}
	z := NewJoint(2)
	z.Set(0, 1, 1)
	if chi := ChiSquare(e, z, 100); !math.IsInf(chi, 1) {
		t.Errorf("chi-square with impossible observation = %v, want +Inf", chi)
	}
}

func TestFrequencies(t *testing.T) {
	f, err := Frequencies([]int64{0, 1, 1, 2, 2, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if f[0] != 1 || f[1] != 2 || f[2] != 3 {
		t.Errorf("frequencies = %v", f)
	}
	if _, err := Frequencies([]int64{5}, 3); err == nil {
		t.Error("out-of-range label should fail")
	}
}

func TestMarginalSumsToOne(t *testing.T) {
	j := NewJoint(3)
	j.Set(0, 0, 0.2)
	j.Set(0, 1, 0.3)
	j.Set(1, 2, 0.4)
	j.Set(2, 2, 0.1)
	m := j.Marginal()
	var sum float64
	for _, p := range m {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("marginal sums to %v", sum)
	}
	// P(X=0) = P(0,0) + P(0,1)/2 = 0.2 + 0.15.
	if math.Abs(m[0]-0.35) > 1e-12 {
		t.Errorf("m[0] = %v, want 0.35", m[0])
	}
}

func TestHomophilyJointExtremes(t *testing.T) {
	sizes := []int64{100, 200, 300}
	full, err := HomophilyJoint(sizes, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := full.Validate(); err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 3; a++ {
		for b := a + 1; b < 3; b++ {
			if full.At(a, b) != 0 {
				t.Errorf("homophily=1 has inter mass at (%d,%d)", a, b)
			}
		}
	}
	free, err := HomophilyJoint(sizes, 0)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 3; a++ {
		if free.At(a, a) != 0 {
			t.Errorf("homophily=0 has intra mass at %d", a)
		}
	}
}

func TestHomophilyJointSingleGroup(t *testing.T) {
	j, err := HomophilyJoint([]int64{10}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(j.At(0, 0)-1) > 1e-12 {
		t.Errorf("single group P(0,0) = %v", j.At(0, 0))
	}
}

func TestHomophilyJointErrors(t *testing.T) {
	if _, err := HomophilyJoint(nil, 0.5); err == nil {
		t.Error("empty sizes should fail")
	}
	if _, err := HomophilyJoint([]int64{1}, 2); err == nil {
		t.Error("homophily > 1 should fail")
	}
	if _, err := HomophilyJoint([]int64{0}, 0.5); err == nil {
		t.Error("zero group should fail")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 3 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); q != 2 {
		t.Errorf("q0.5 = %v", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestHistogram(t *testing.T) {
	h, err := Histogram([]float64{0, 0.5, 0.9, 1.5, -3}, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Bins are half-open [lo, hi): 0 and -3 (clamped) land in bin 0;
	// 0.5, 0.9 and 1.5 (clamped) land in bin 1.
	if h[0] != 2 || h[1] != 3 {
		t.Errorf("histogram = %v", h)
	}
	if _, err := Histogram(nil, 0, 1, 0); err == nil {
		t.Error("bins=0 should fail")
	}
	if _, err := Histogram(nil, 1, 0, 2); err == nil {
		t.Error("max<=min should fail")
	}
}

func TestHomophilyJointAlwaysProper(t *testing.T) {
	f := func(sizesRaw []uint16, hRaw uint8) bool {
		sizes := make([]int64, 0, len(sizesRaw))
		for _, s := range sizesRaw {
			if s > 0 {
				sizes = append(sizes, int64(s))
			}
		}
		if len(sizes) == 0 {
			return true
		}
		h := float64(hRaw) / 255
		j, err := HomophilyJoint(sizes, h)
		if err != nil {
			return false
		}
		return j.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(cells []uint8) bool {
		k := 4
		j := NewJoint(k)
		idx := 0
		for a := 0; a < k; a++ {
			for b := a; b < k; b++ {
				if idx < len(cells) {
					j.Set(a, b, float64(cells[idx]))
				}
				idx++
			}
		}
		if j.Total() == 0 {
			return true
		}
		j.Normalize()
		c, err := NewCDFPair(j, j)
		if err != nil {
			return false
		}
		for i := 1; i < len(c.Expected); i++ {
			if c.Expected[i] < c.Expected[i-1]-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
