// Package stats implements the distribution machinery the paper's
// evaluation is expressed in: empirical joint probability distributions
// P(X,Y) over the property values at edge endpoints, the
// sorted-pair CDF plots of Figures 3 and 4, and distances between
// expected and observed distributions.
package stats

import (
	"fmt"
	"math"
	"sort"

	"datasynth/internal/table"
)

// Joint is a joint probability distribution P(X, Y) over pairs of
// categorical values in [0, k). It is symmetric by construction when
// built from an undirected graph: P(i,j) carries the unordered pair
// probability with i <= j.
type Joint struct {
	K int
	// P[i*K+j] for i <= j holds the probability of observing the
	// unordered value pair {i, j} on a uniformly random edge.
	P []float64
}

// NewJoint returns a zero joint distribution over k values.
func NewJoint(k int) *Joint {
	return &Joint{K: k, P: make([]float64, k*k)}
}

// At returns P({i,j}).
func (j *Joint) At(a, b int) float64 {
	if a > b {
		a, b = b, a
	}
	return j.P[a*j.K+b]
}

// Set assigns P({a,b}) = p.
func (j *Joint) Set(a, b int, p float64) {
	if a > b {
		a, b = b, a
	}
	j.P[a*j.K+b] = p
}

// Add increments P({a,b}).
func (j *Joint) Add(a, b int, p float64) {
	if a > b {
		a, b = b, a
	}
	j.P[a*j.K+b] += p
}

// Total returns the probability mass (1 for a proper distribution).
func (j *Joint) Total() float64 {
	var t float64
	for a := 0; a < j.K; a++ {
		for b := a; b < j.K; b++ {
			t += j.P[a*j.K+b]
		}
	}
	return t
}

// Normalize rescales the mass to 1. No-op on an all-zero distribution.
func (j *Joint) Normalize() {
	t := j.Total()
	if t == 0 {
		return
	}
	for i := range j.P {
		j.P[i] /= t
	}
}

// Validate checks that the distribution is proper.
func (j *Joint) Validate() error {
	for a := 0; a < j.K; a++ {
		for b := a; b < j.K; b++ {
			p := j.P[a*j.K+b]
			if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
				return fmt.Errorf("stats: P(%d,%d) = %v invalid", a, b, p)
			}
		}
	}
	if t := j.Total(); math.Abs(t-1) > 1e-6 {
		return fmt.Errorf("stats: joint mass %v, want 1", t)
	}
	return nil
}

// EmpiricalJoint measures P(X,Y) from an edge table and a node
// labelling: the probability of observing the unordered label pair on a
// uniformly random edge. This is step 3 of the paper's evaluation
// protocol ("we computed our joint probability distribution P(X,Y)
// empirically").
func EmpiricalJoint(et *table.EdgeTable, labels []int64, k int) (*Joint, error) {
	j := NewJoint(k)
	m := et.Len()
	if m == 0 {
		return j, nil
	}
	w := 1 / float64(m)
	for e := int64(0); e < m; e++ {
		t, h := et.Tail[e], et.Head[e]
		if t < 0 || t >= int64(len(labels)) || h < 0 || h >= int64(len(labels)) {
			return nil, fmt.Errorf("stats: edge %d endpoint outside labelling", e)
		}
		lt, lh := labels[t], labels[h]
		if lt < 0 || lt >= int64(k) || lh < 0 || lh >= int64(k) {
			return nil, fmt.Errorf("stats: edge %d labels (%d,%d) outside [0,%d)", e, lt, lh, k)
		}
		j.Add(int(lt), int(lh), w)
	}
	return j, nil
}

// PairProb is one unordered value pair with its probability.
type PairProb struct {
	A, B int
	P    float64
}

// SortedPairs returns all unordered pairs sorted by decreasing
// probability (ties broken by pair index for determinism) — the x-axis
// ordering of the paper's figures: "the x axis corresponds to the
// different pairs of values <i,j>, and are sorted by decreasing
// probability in the expected CDF".
func (j *Joint) SortedPairs() []PairProb {
	out := make([]PairProb, 0, j.K*(j.K+1)/2)
	for a := 0; a < j.K; a++ {
		for b := a; b < j.K; b++ {
			out = append(out, PairProb{A: a, B: b, P: j.P[a*j.K+b]})
		}
	}
	sort.SliceStable(out, func(x, y int) bool {
		if out[x].P != out[y].P {
			return out[x].P > out[y].P
		}
		if out[x].A != out[y].A {
			return out[x].A < out[y].A
		}
		return out[x].B < out[y].B
	})
	return out
}

// CDFPair compares an expected and an observed joint distribution the
// way Figures 3 and 4 do: pairs are ordered by decreasing *expected*
// probability and both distributions are accumulated along that shared
// order.
type CDFPair struct {
	Pairs    []PairProb // the shared order (expected probabilities)
	Expected []float64  // expected CDF
	Observed []float64  // observed CDF along the same pair order
}

// NewCDFPair builds the paired CDFs. Both joints must have the same k.
func NewCDFPair(expected, observed *Joint) (*CDFPair, error) {
	if expected.K != observed.K {
		return nil, fmt.Errorf("stats: joint sizes differ (%d vs %d)", expected.K, observed.K)
	}
	pairs := expected.SortedPairs()
	exp := make([]float64, len(pairs))
	obs := make([]float64, len(pairs))
	var ce, co float64
	for i, p := range pairs {
		ce += p.P
		co += observed.At(p.A, p.B)
		exp[i] = ce
		obs[i] = co
	}
	return &CDFPair{Pairs: pairs, Expected: exp, Observed: obs}, nil
}

// KS returns the Kolmogorov–Smirnov statistic between the two CDFs:
// max |expected - observed| along the shared pair order.
func (c *CDFPair) KS() float64 {
	var ks float64
	for i := range c.Expected {
		if d := math.Abs(c.Expected[i] - c.Observed[i]); d > ks {
			ks = d
		}
	}
	return ks
}

// L1 returns the total variation-style L1 distance between the two
// PMFs: Σ |p_e - p_o| over pairs (0 = identical, 2 = disjoint).
func L1(expected, observed *Joint) (float64, error) {
	if expected.K != observed.K {
		return 0, fmt.Errorf("stats: joint sizes differ (%d vs %d)", expected.K, observed.K)
	}
	var d float64
	for a := 0; a < expected.K; a++ {
		for b := a; b < expected.K; b++ {
			d += math.Abs(expected.At(a, b) - observed.At(a, b))
		}
	}
	return d, nil
}

// JensenShannon returns the Jensen–Shannon divergence (base-2, in
// [0,1]) between the two joint PMFs.
func JensenShannon(expected, observed *Joint) (float64, error) {
	if expected.K != observed.K {
		return 0, fmt.Errorf("stats: joint sizes differ (%d vs %d)", expected.K, observed.K)
	}
	var js float64
	for a := 0; a < expected.K; a++ {
		for b := a; b < expected.K; b++ {
			p := expected.At(a, b)
			q := observed.At(a, b)
			m := (p + q) / 2
			if p > 0 {
				js += p / 2 * math.Log2(p/m)
			}
			if q > 0 {
				js += q / 2 * math.Log2(q/m)
			}
		}
	}
	return js, nil
}

// ChiSquare returns the chi-square statistic of observed counts against
// expected probabilities over m observations. Cells with zero expected
// probability and zero observations are skipped; a zero-expected cell
// with observations yields +Inf.
func ChiSquare(expected *Joint, observed *Joint, m int64) float64 {
	var chi float64
	for a := 0; a < expected.K; a++ {
		for b := a; b < expected.K; b++ {
			e := expected.At(a, b) * float64(m)
			o := observed.At(a, b) * float64(m)
			if e == 0 {
				if o > 0 {
					return math.Inf(1)
				}
				continue
			}
			chi += (o - e) * (o - e) / e
		}
	}
	return chi
}
