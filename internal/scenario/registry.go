// Package scenario implements the named-scenario registry: a
// crash-safe, disk-backed store of versioned dataset recipes.
//
// A scenario is a name bound to an append-only sequence of immutable
// versions; each version records the canonical DSL text of a schema,
// its core.CanonicalHash, a creation time, and optional description
// and labels. The registry gives the generation service a server-side
// notion of "the Figure-3 LFR panel" that clients can submit by name
// instead of carrying schema text around — without weakening the
// cache's soundness story, because a named submission resolves to
// canonical DSL text first and is keyed by the same pure content hash
// as an anonymous submission of that text.
//
// Invariants, in the sdgen blueprint's "validation first" spirit:
//
//   - Nothing invalid is ever written. Put runs the full registration
//     pipeline (dsl.Parse, core.ValidateSchema, canonicalisation)
//     before touching the disk; a rejected registration leaves no
//     trace.
//   - Versions are immutable. Put appends; it never rewrites. Putting
//     text whose canonical form equals the latest version returns that
//     version instead of minting a duplicate.
//   - Commits are two-phase through faultfs (temp file + rename), the
//     same discipline as the dataset cache, so a crash never leaves a
//     half-written version under a valid name.
//   - Startup rebuilds the registry from disk and quarantines torn
//     entries (unparseable JSON, non-canonical or invalid DSL, stray
//     temp files) into <dir>/.quarantine/ instead of serving or
//     deleting them.
package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"datasynth/internal/core"
	"datasynth/internal/dsl"
	"datasynth/internal/faultfs"
	"datasynth/internal/schema"
)

// ErrNotFound reports an unknown scenario name or version.
var ErrNotFound = errors.New("scenario: not found")

// ValidationError marks a registration the validation pipeline
// rejected — a client mistake (bad name, invalid DSL), as opposed to a
// registry I/O fault. The HTTP layer maps it to 422.
type ValidationError struct{ Err error }

func (e *ValidationError) Error() string { return e.Err.Error() }
func (e *ValidationError) Unwrap() error { return e.Err }

// nameRE constrains scenario names to safe identifiers: path- and
// URL-inert, no leading dot (reserved for registry bookkeeping), no
// "@" (reserved as the name@version separator in submit refs).
var nameRE = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,63}$`)

// ValidateName checks a scenario name against the registry's naming
// rules.
func ValidateName(name string) error {
	if !nameRE.MatchString(name) {
		return &ValidationError{fmt.Errorf("scenario: invalid name %q (want 1-64 of [a-zA-Z0-9._-], starting with a letter or digit)", name)}
	}
	return nil
}

// Validated is DSL source that passed the full registration pipeline.
// PUT /v1/scenarios and `datasynth -scenario` both go through Validate,
// so the CLI dry-run and the service agree exactly on what "valid"
// means and on the canonical text + hash a registration would commit.
type Validated struct {
	Schema *schema.Schema
	// Text is the canonical DSL rendering — the exact bytes a version
	// records and the service hashes for cache keys.
	Text string
	// Hash is core.CanonicalHash of the schema (covers the schema
	// version and the seed).
	Hash string
}

// Validate runs the registration pipeline on DSL source: parse,
// referential validation, dependency analysis, canonicalisation.
// Failures come back as *ValidationError.
func Validate(src string) (*Validated, error) {
	s, err := dsl.Parse(src)
	if err != nil {
		return nil, &ValidationError{err}
	}
	if err := core.ValidateSchema(s); err != nil {
		return nil, &ValidationError{err}
	}
	return &Validated{Schema: s, Text: core.CanonicalSchema(s), Hash: core.CanonicalHash(s)}, nil
}

// Version is one immutable version of a scenario.
type Version struct {
	Name    string `json:"name"`
	Version int    `json:"version"`
	// DSL is the canonical schema text (dsl.Print form). Submitting it
	// anonymously and submitting the scenario by name resolve to the
	// same cache key.
	DSL string `json:"dsl"`
	// CanonicalSHA is core.CanonicalHash of the text at load time. It
	// is recomputed when the registry loads (a core.SchemaVersion bump
	// legitimately changes every hash), so it always matches what the
	// service would key a submission of this version on.
	CanonicalSHA string            `json:"canonical_sha256"`
	Created      time.Time         `json:"created"`
	Description  string            `json:"description,omitempty"`
	Labels       map[string]string `json:"labels,omitempty"`
}

// Info summarises one scenario for listings.
type Info struct {
	Name      string    `json:"name"`
	Versions  int       `json:"versions"`
	Latest    int       `json:"latest"`
	LatestSHA string    `json:"latest_canonical_sha256"`
	Created   time.Time `json:"created"` // latest version's creation time
}

// tempPrefix marks in-progress version files; a crash leaves at worst
// a temp file the startup sweep quarantines.
const tempPrefix = ".tmp-"

// quarantineDirName collects torn entries found by the startup sweep;
// the previous run's quarantine is cleared on the next startup, the
// same post-mortem window the dataset cache gives its debris.
const quarantineDirName = ".quarantine"

// versionFileRE matches committed version file names. Versions start
// at 1 and leading zeros are rejected, so every loadable file name
// maps to a distinct version number — a tampered "v01.json" is
// quarantined as debris instead of loading as a duplicate of
// v1.json's version 1.
var versionFileRE = regexp.MustCompile(`^v([1-9][0-9]*)\.json$`)

// Registry is the disk-backed scenario store.
type Registry struct {
	dir  string
	fsys faultfs.FS
	logf func(format string, args ...any)

	quarantined  atomic.Int64 // torn entries moved aside by the startup sweep
	cleanupFails atomic.Int64 // removals that failed (logged, not fatal)

	mu     sync.Mutex
	byName map[string][]*Version // versions sorted ascending
}

// NewRegistry opens (creating if needed) a registry rooted at dir and
// rebuilds its in-memory state from disk, quarantining torn entries.
func NewRegistry(dir string, fsys faultfs.FS, logf func(format string, args ...any)) (*Registry, error) {
	if dir == "" {
		return nil, fmt.Errorf("scenario: registry directory is required")
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	r := &Registry{
		dir:    dir,
		fsys:   faultfs.OrOS(fsys),
		logf:   logf,
		byName: map[string][]*Version{},
	}
	if err := r.fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := r.load(); err != nil {
		return nil, err
	}
	return r, nil
}

// load is the startup recovery sweep: intact versions seed the
// in-memory index, torn ones are quarantined, and the previous run's
// quarantine is cleared.
func (r *Registry) load() error {
	des, err := r.fsys.ReadDir(r.dir)
	if err != nil {
		return err
	}
	for _, de := range des {
		name := de.Name()
		if name == quarantineDirName {
			r.removePath(filepath.Join(r.dir, name))
			continue
		}
		if !de.IsDir() || ValidateName(name) != nil {
			// A stray file, or a directory the naming rules would never
			// have created: debris.
			r.quarantine(name)
			continue
		}
		if err := r.loadScenario(name); err != nil {
			return err
		}
	}
	return nil
}

// loadScenario loads one scenario directory, quarantining torn version
// files individually so one bad version never takes down its siblings.
func (r *Registry) loadScenario(name string) error {
	sdir := filepath.Join(r.dir, name)
	des, err := r.fsys.ReadDir(sdir)
	if err != nil {
		return err
	}
	var versions []*Version
	for _, de := range des {
		fname := de.Name()
		m := versionFileRE.FindStringSubmatch(fname)
		if de.IsDir() || m == nil {
			// Temp files from a crashed Put, or anything else the
			// registry never writes.
			r.quarantine(filepath.Join(name, fname))
			continue
		}
		v, err := r.readVersion(name, fname)
		if err != nil {
			r.logf("scenario: %s/%s torn (%v); quarantining", name, fname, err)
			r.quarantine(filepath.Join(name, fname))
			continue
		}
		versions = append(versions, v)
	}
	if len(versions) == 0 {
		// Every version was debris; drop the husk so the name lists as
		// unregistered (removal failure is non-fatal — an empty dir is
		// invisible to the API either way).
		r.removePath(sdir)
		return nil
	}
	sort.Slice(versions, func(a, b int) bool { return versions[a].Version < versions[b].Version })
	r.mu.Lock()
	r.byName[name] = versions
	r.mu.Unlock()
	return nil
}

// readVersion reads and re-validates one committed version file. The
// checks mirror what Put guarantees, so anything failing them is torn
// or tampered, not merely stale: the JSON must parse, agree with its
// path, and carry DSL that is valid and already canonical. The hash is
// recomputed rather than trusted — a core.SchemaVersion bump changes
// every canonical hash, and the registry must always report the hash a
// submission would actually be keyed on today.
func (r *Registry) readVersion(name, fname string) (*Version, error) {
	raw, err := r.fsys.ReadFile(filepath.Join(r.dir, name, fname))
	if err != nil {
		return nil, err
	}
	var v Version
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, fmt.Errorf("unparseable: %w", err)
	}
	m := versionFileRE.FindStringSubmatch(fname)
	wantVer, _ := strconv.Atoi(m[1])
	if v.Name != name || v.Version != wantVer {
		return nil, fmt.Errorf("records %s@v%d, path says %s@v%d", v.Name, v.Version, name, wantVer)
	}
	val, err := Validate(v.DSL)
	if err != nil {
		return nil, fmt.Errorf("stored DSL no longer validates: %w", err)
	}
	if val.Text != v.DSL {
		return nil, fmt.Errorf("stored DSL is not canonical")
	}
	v.CanonicalSHA = val.Hash
	return &v, nil
}

// Put registers a new immutable version of a scenario, running the
// full validation pipeline before anything touches the disk. If the
// canonical form of src equals the scenario's latest version, that
// version is returned with created=false and nothing is written —
// re-registering the same recipe is idempotent, not version churn.
func (r *Registry) Put(name, src, description string, labels map[string]string) (v *Version, created bool, err error) {
	if err := ValidateName(name); err != nil {
		return nil, false, err
	}
	val, err := Validate(src)
	if err != nil {
		return nil, false, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	versions := r.byName[name]
	next := 1
	if n := len(versions); n > 0 {
		latest := versions[n-1]
		if latest.DSL == val.Text {
			return latest, false, nil
		}
		next = latest.Version + 1
	}
	rec := &Version{
		Name:         name,
		Version:      next,
		DSL:          val.Text,
		CanonicalSHA: val.Hash,
		Created:      time.Now().UTC(),
		Description:  description,
		Labels:       labels,
	}
	if err := r.commit(rec); err != nil {
		return nil, false, err
	}
	r.byName[name] = append(versions, rec)
	r.logf("scenario: registered %s@v%d (%s)", name, next, rec.CanonicalSHA[:12])
	return rec, true, nil
}

// commit writes one version file two-phase: marshal, write to a temp
// name, rename into place. A failure at any step leaves the committed
// state untouched (the temp is swept best-effort now and quarantined
// at next startup regardless).
func (r *Registry) commit(v *Version) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	sdir := filepath.Join(r.dir, v.Name)
	if err := r.fsys.MkdirAll(sdir, 0o755); err != nil {
		return err
	}
	final := filepath.Join(sdir, fmt.Sprintf("v%d.json", v.Version))
	tmp := filepath.Join(sdir, fmt.Sprintf("%sv%d.json", tempPrefix, v.Version))
	if err := r.fsys.WriteFile(tmp, raw, 0o644); err != nil {
		r.removePath(tmp)
		return err
	}
	if err := r.fsys.Rename(tmp, final); err != nil {
		r.removePath(tmp)
		return err
	}
	return nil
}

// Get returns one version of a scenario; version <= 0 means latest.
func (r *Registry) Get(name string, version int) (*Version, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	versions := r.byName[name]
	if len(versions) == 0 {
		return nil, fmt.Errorf("scenario %q: %w", name, ErrNotFound)
	}
	if version <= 0 {
		return versions[len(versions)-1], nil
	}
	for _, v := range versions {
		if v.Version == version {
			return v, nil
		}
	}
	return nil, fmt.Errorf("scenario %q version %d: %w", name, version, ErrNotFound)
}

// Versions returns all versions of a scenario, ascending.
func (r *Registry) Versions(name string) ([]*Version, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	versions := r.byName[name]
	if len(versions) == 0 {
		return nil, fmt.Errorf("scenario %q: %w", name, ErrNotFound)
	}
	out := make([]*Version, len(versions))
	copy(out, versions)
	return out, nil
}

// List returns a summary of every registered scenario, sorted by name.
func (r *Registry) List() []Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.byName))
	for name := range r.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Info, 0, len(names))
	for _, name := range names {
		versions := r.byName[name]
		latest := versions[len(versions)-1]
		out = append(out, Info{
			Name:      name,
			Versions:  len(versions),
			Latest:    latest.Version,
			LatestSHA: latest.CanonicalSHA,
			Created:   latest.Created,
		})
	}
	return out
}

// Delete unregisters a scenario (all versions). It touches nothing but
// the registry: jobs and cached datasets submitted through the name
// keep their resolved content hashes and are unaffected. If the disk
// removal fails the scenario stays registered and the error surfaces —
// a half-deleted name must not silently resurrect on restart.
func (r *Registry) Delete(name string) (versions int, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	existing := r.byName[name]
	if len(existing) == 0 {
		return 0, fmt.Errorf("scenario %q: %w", name, ErrNotFound)
	}
	if err := r.fsys.RemoveAll(filepath.Join(r.dir, name)); err != nil {
		r.cleanupFails.Add(1)
		return 0, err
	}
	delete(r.byName, name)
	r.logf("scenario: deleted %s (%d versions)", name, len(existing))
	return len(existing), nil
}

// Counts reports registered scenario and total version counts.
func (r *Registry) Counts() (scenarios, versions int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, vs := range r.byName {
		versions += len(vs)
	}
	return len(r.byName), versions
}

// Quarantined reports how many torn entries the startup sweep moved
// aside.
func (r *Registry) Quarantined() int64 { return r.quarantined.Load() }

// quarantine moves dir-relative path rel into the quarantine directory
// under a unique flat name, falling back to removal if the rename
// fails (the same policy as the dataset cache: renames work even when
// deletes don't, and debris is evidence).
func (r *Registry) quarantine(rel string) {
	src := filepath.Join(r.dir, rel)
	qdir := filepath.Join(r.dir, quarantineDirName)
	if err := r.fsys.MkdirAll(qdir, 0o755); err != nil {
		r.logf("scenario: quarantine dir: %v; removing %s instead", err, rel)
		r.removePath(src)
		return
	}
	flat := strings.ReplaceAll(rel, string(filepath.Separator), "__")
	dst := filepath.Join(qdir, flat)
	for i := 1; ; i++ {
		if _, err := r.fsys.Stat(dst); err != nil {
			break
		}
		dst = filepath.Join(qdir, fmt.Sprintf("%s-%d", flat, i))
	}
	if err := r.fsys.Rename(src, dst); err != nil {
		r.logf("scenario: quarantining %s failed: %v; removing instead", rel, err)
		r.removePath(src)
		return
	}
	r.quarantined.Add(1)
	r.logf("scenario: quarantined %s -> %s", rel, dst)
}

// removePath deletes a path, logging and counting failure instead of
// dropping it silently.
func (r *Registry) removePath(path string) {
	if err := r.fsys.RemoveAll(path); err != nil {
		r.cleanupFails.Add(1)
		r.logf("scenario: removing %s failed: %v", path, err)
	}
}
