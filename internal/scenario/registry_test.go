package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"datasynth/internal/faultfs"
)

// regDSL is a tiny valid schema; the seed is substituted per test so
// distinct versions are one edit apart.
const regDSL = `
graph reg {
  seed = %d
  node Person {
    count = 100
    property country : string = categorical(dict="countries")
  }
  edge knows : Person *-* Person {
    structure = lfr(avgDegree=4, maxDegree=10, mu=0.2)
  }
}
`

func regSchema(seed int) string { return fmt.Sprintf(regDSL, seed) }

func newTestRegistry(t *testing.T, dir string, fsys faultfs.FS) *Registry {
	t.Helper()
	r, err := NewRegistry(dir, fsys, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestPutGetVersioning(t *testing.T) {
	r := newTestRegistry(t, t.TempDir(), nil)

	v1, created, err := r.Put("panel", regSchema(1), "first", map[string]string{"fig": "3"})
	if err != nil || !created {
		t.Fatalf("Put v1: created=%v err=%v", created, err)
	}
	if v1.Version != 1 || v1.Name != "panel" || v1.CanonicalSHA == "" {
		t.Fatalf("v1 record: %+v", v1)
	}
	if v1.Description != "first" || v1.Labels["fig"] != "3" {
		t.Fatalf("v1 metadata lost: %+v", v1)
	}

	// Re-putting the same recipe (even in a different surface spelling —
	// extra whitespace) is idempotent, not version churn.
	again, created, err := r.Put("panel", "  "+regSchema(1), "ignored", nil)
	if err != nil || created {
		t.Fatalf("idempotent re-Put: created=%v err=%v", created, err)
	}
	if again.Version != 1 || again.CanonicalSHA != v1.CanonicalSHA {
		t.Fatalf("re-Put returned %+v, want v1", again)
	}

	// A different recipe appends an immutable v2; v1 stays readable.
	v2, created, err := r.Put("panel", regSchema(2), "", nil)
	if err != nil || !created || v2.Version != 2 {
		t.Fatalf("Put v2: %+v created=%v err=%v", v2, created, err)
	}
	if v2.CanonicalSHA == v1.CanonicalSHA {
		t.Fatal("distinct recipes share a canonical hash")
	}
	if got, err := r.Get("panel", 1); err != nil || got.CanonicalSHA != v1.CanonicalSHA {
		t.Fatalf("Get v1 after v2: %+v err=%v", got, err)
	}
	if got, err := r.Get("panel", 0); err != nil || got.Version != 2 {
		t.Fatalf("Get latest: %+v err=%v", got, err)
	}
	if _, err := r.Get("panel", 3); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing version: %v", err)
	}
	if _, err := r.Get("ghost", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing name: %v", err)
	}

	vs, err := r.Versions("panel")
	if err != nil || len(vs) != 2 || vs[0].Version != 1 || vs[1].Version != 2 {
		t.Fatalf("Versions: %v err=%v", vs, err)
	}
	infos := r.List()
	if len(infos) != 1 || infos[0].Name != "panel" || infos[0].Latest != 2 || infos[0].Versions != 2 {
		t.Fatalf("List: %+v", infos)
	}
	if sc, ver := r.Counts(); sc != 1 || ver != 2 {
		t.Fatalf("Counts: %d scenarios, %d versions", sc, ver)
	}
}

func TestPutInvalidLeavesNoTrace(t *testing.T) {
	dir := t.TempDir()
	r := newTestRegistry(t, dir, nil)

	var ve *ValidationError
	if _, _, err := r.Put("bad", "graph nope {", "", nil); !errors.As(err, &ve) {
		t.Fatalf("invalid DSL: got %v, want *ValidationError", err)
	}
	// Validation-first: the rejected registration wrote nothing at all.
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(des) != 0 {
		t.Fatalf("rejected Put left debris: %v", des)
	}
	if _, _, err := r.Put("../escape", regSchema(1), "", nil); !errors.As(err, &ve) {
		t.Fatalf("invalid name: got %v, want *ValidationError", err)
	}
	if _, _, err := r.Put("a@b", regSchema(1), "", nil); !errors.As(err, &ve) {
		t.Fatalf("name with @: got %v, want *ValidationError", err)
	}
	if _, _, err := r.Put(".hidden", regSchema(1), "", nil); !errors.As(err, &ve) {
		t.Fatalf("leading-dot name: got %v, want *ValidationError", err)
	}
}

func TestRestartRebuildsState(t *testing.T) {
	dir := t.TempDir()
	r := newTestRegistry(t, dir, nil)
	want1, _, _ := r.Put("alpha", regSchema(1), "d", map[string]string{"k": "v"})
	r.Put("alpha", regSchema(2), "", nil)
	r.Put("beta", regSchema(3), "", nil)

	r2 := newTestRegistry(t, dir, nil)
	if sc, ver := r2.Counts(); sc != 2 || ver != 3 {
		t.Fatalf("after restart: %d scenarios, %d versions", sc, ver)
	}
	got, err := r2.Get("alpha", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.CanonicalSHA != want1.CanonicalSHA || got.DSL != want1.DSL ||
		got.Description != "d" || got.Labels["k"] != "v" {
		t.Fatalf("reloaded v1 drifted: %+v", got)
	}
	if r2.Quarantined() != 0 {
		t.Fatalf("clean restart quarantined %d entries", r2.Quarantined())
	}
}

func TestRestartQuarantinesTornEntries(t *testing.T) {
	dir := t.TempDir()
	r := newTestRegistry(t, dir, nil)
	r.Put("panel", regSchema(1), "", nil)

	// Simulate a crash mid-Put: a truncated committed file, an orphaned
	// temp, and a stray file at the registry root.
	sdir := filepath.Join(dir, "panel")
	if err := os.WriteFile(filepath.Join(sdir, "v2.json"), []byte(`{"name":"panel","ver`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sdir, tempPrefix+"v3.json"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "stray.txt"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	r2 := newTestRegistry(t, dir, nil)
	if got := r2.Quarantined(); got != 3 {
		t.Fatalf("quarantined %d entries, want 3", got)
	}
	// The intact version survives; the torn v2 is gone, not served.
	v, err := r2.Get("panel", 0)
	if err != nil || v.Version != 1 {
		t.Fatalf("after quarantine: %+v err=%v", v, err)
	}
	qdes, err := os.ReadDir(filepath.Join(dir, quarantineDirName))
	if err != nil || len(qdes) != 3 {
		t.Fatalf("quarantine dir: %v err=%v", qdes, err)
	}
	// The next restart clears the previous quarantine window.
	r3 := newTestRegistry(t, dir, nil)
	if r3.Quarantined() != 0 {
		t.Fatalf("second restart re-quarantined %d", r3.Quarantined())
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDirName)); !os.IsNotExist(err) {
		t.Fatalf("old quarantine not cleared: %v", err)
	}
}

func TestRestartQuarantinesNonCanonicalDSL(t *testing.T) {
	dir := t.TempDir()
	r := newTestRegistry(t, dir, nil)
	v, _, _ := r.Put("panel", regSchema(1), "", nil)

	// Tamper: valid JSON, valid DSL, but not in canonical form — Put
	// can never have written it, so load must treat it as torn.
	raw, err := os.ReadFile(filepath.Join(dir, "panel", "v1.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rec Version
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatal(err)
	}
	rec.DSL = "  " + v.DSL // same schema, non-canonical spelling
	tampered, err := json.Marshal(&rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "panel", "v1.json"), tampered, 0o644); err != nil {
		t.Fatal(err)
	}

	r2 := newTestRegistry(t, dir, nil)
	if r2.Quarantined() != 1 {
		t.Fatalf("quarantined %d, want 1", r2.Quarantined())
	}
	// The only version was torn, so the name unregisters entirely.
	if _, err := r2.Get("panel", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("tampered scenario still served: %v", err)
	}
}

func TestENOSPCPutLeavesRegistryUnchanged(t *testing.T) {
	for _, tc := range []struct {
		name string
		rule *faultfs.Rule
	}{
		{"writefile", &faultfs.Rule{Ops: faultfs.OpWriteFile, Err: faultfs.ENOSPC}},
		{"torn-writefile", &faultfs.Rule{Ops: faultfs.OpWriteFile, Err: faultfs.ENOSPC, Short: true}},
		{"rename", &faultfs.Rule{Ops: faultfs.OpRename, Err: faultfs.ENOSPC}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			inj := faultfs.NewInject(1)
			r := newTestRegistry(t, dir, inj)
			if _, _, err := r.Put("panel", regSchema(1), "", nil); err != nil {
				t.Fatal(err)
			}

			inj.AddRule(tc.rule)
			_, _, err := r.Put("panel", regSchema(2), "", nil)
			if !errors.Is(err, faultfs.ENOSPC) {
				t.Fatalf("Put under %s: %v, want ENOSPC", tc.name, err)
			}
			inj.ClearRules()

			// The failed Put is invisible: latest is still v1, in memory
			// and after a restart over the same directory.
			if v, err := r.Get("panel", 0); err != nil || v.Version != 1 {
				t.Fatalf("after failed Put: %+v err=%v", v, err)
			}
			r2 := newTestRegistry(t, dir, nil)
			if sc, ver := r2.Counts(); sc != 1 || ver != 1 {
				t.Fatalf("restart after failed Put: %d scenarios, %d versions", sc, ver)
			}
			if v, err := r2.Get("panel", 0); err != nil || v.Version != 1 {
				t.Fatalf("restart latest: %+v err=%v", v, err)
			}
			// And the registry still accepts writes once space returns.
			if _, created, err := r2.Put("panel", regSchema(2), "", nil); err != nil || !created {
				t.Fatalf("Put after recovery: created=%v err=%v", created, err)
			}
		})
	}
}

func TestDelete(t *testing.T) {
	dir := t.TempDir()
	r := newTestRegistry(t, dir, nil)
	r.Put("panel", regSchema(1), "", nil)
	r.Put("panel", regSchema(2), "", nil)

	n, err := r.Delete("panel")
	if err != nil || n != 2 {
		t.Fatalf("Delete: n=%d err=%v", n, err)
	}
	if _, err := r.Get("panel", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted scenario still served: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "panel")); !os.IsNotExist(err) {
		t.Fatalf("deleted scenario still on disk: %v", err)
	}
	if _, err := r.Delete("panel"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	// A failed removal must NOT unregister the name (it would resurrect
	// on restart and the API would lie about its absence).
	inj := faultfs.NewInject(1)
	r2 := newTestRegistry(t, dir, inj)
	r2.Put("panel", regSchema(1), "", nil)
	inj.AddRule(&faultfs.Rule{Ops: faultfs.OpRemoveAll, Err: faultfs.ENOSPC})
	if _, err := r2.Delete("panel"); !errors.Is(err, faultfs.ENOSPC) {
		t.Fatalf("Delete under fault: %v", err)
	}
	inj.ClearRules()
	if _, err := r2.Get("panel", 0); err != nil {
		t.Fatalf("half-deleted scenario unregistered: %v", err)
	}
}

func TestConcurrentPutsRace(t *testing.T) {
	r := newTestRegistry(t, t.TempDir(), nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("s%d", i%4)
			if _, _, err := r.Put(name, regSchema(i), "", nil); err != nil {
				t.Errorf("Put %s: %v", name, err)
			}
			r.List()
			r.Counts()
			r.Get(name, 0)
		}(i)
	}
	wg.Wait()
	if sc, _ := r.Counts(); sc != 4 {
		t.Fatalf("got %d scenarios, want 4", sc)
	}
}

func TestValidateMatchesServiceHash(t *testing.T) {
	val, err := Validate(regSchema(7))
	if err != nil {
		t.Fatal(err)
	}
	// Canonicalisation is a fixpoint: validating the canonical text
	// reproduces the same text and hash.
	again, err := Validate(val.Text)
	if err != nil {
		t.Fatal(err)
	}
	if again.Text != val.Text || again.Hash != val.Hash {
		t.Fatalf("canonical text is not a fixpoint:\n%q\n%q", val.Text, again.Text)
	}
}

// TestRestartQuarantinesZeroPaddedVersion pins versionFileRE's leading-
// zero rejection: a tampered "v01.json" must not load as a duplicate of
// v1.json's version 1 (pre-fix both parsed to version 1 and Get served
// whichever sorted first), and "v0.json" must not load at all —
// versions start at 1. Both are debris Put can never have written, so
// the startup sweep quarantines them.
func TestRestartQuarantinesZeroPaddedVersion(t *testing.T) {
	dir := t.TempDir()
	r := newTestRegistry(t, dir, nil)
	want, _, err := r.Put("panel", regSchema(1), "", nil)
	if err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(filepath.Join(dir, "panel", "v1.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, tampered := range []string{"v01.json", "v0.json"} {
		if err := os.WriteFile(filepath.Join(dir, "panel", tampered), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	r2 := newTestRegistry(t, dir, nil)
	if got := r2.Quarantined(); got != 2 {
		t.Fatalf("quarantined %d entries, want 2", got)
	}
	vs, err := r2.Versions("panel")
	if err != nil || len(vs) != 1 || vs[0].Version != 1 || vs[0].CanonicalSHA != want.CanonicalSHA {
		t.Fatalf("versions after restart: %+v err=%v", vs, err)
	}
}
