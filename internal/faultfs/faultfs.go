// Package faultfs abstracts the filesystem verbs the cache and export
// layers actually use behind a small FS interface, with two
// implementations: OSFS, a zero-cost passthrough to the os package,
// and InjectFS, a deterministic seeded fault injector that can fail
// the Nth operation, fail by path pattern, return ENOSPC, tear writes
// short, and report renames as failed after they happened.
//
// The point is validation-first robustness: every "what if the disk
// dies here" branch in the commit paths (two-phase export, cache
// store, startup recovery) is reachable from a test, so fault
// tolerance is demonstrated under injected adversity rather than
// assumed. Production code always runs against OSFS; the indirection
// is one interface call per filesystem operation, which the warm-hit
// benchmark lane pins as unmeasurable against the I/O it wraps.
package faultfs

import (
	"io"
	"io/fs"
	"os"
)

// File is the open-file surface the callers need: streaming reads
// (http.ServeContent requires Seek), writes during staging, and Close.
// *os.File satisfies it; InjectFS wraps it to tear writes.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	// Name returns the path the file was opened with.
	Name() string
}

// FS is the filesystem verb set of the export and cache commit paths.
type FS interface {
	// Create creates or truncates a file for writing.
	Create(name string) (File, error)
	// Open opens a file for reading (and seeking).
	Open(name string) (File, error)
	// Rename atomically moves oldpath to newpath.
	Rename(oldpath, newpath string) error
	// WriteFile writes data to name, creating it with perm.
	WriteFile(name string, data []byte, perm fs.FileMode) error
	// ReadFile reads the whole file.
	ReadFile(name string) ([]byte, error)
	// MkdirAll creates a directory path.
	MkdirAll(path string, perm fs.FileMode) error
	// RemoveAll deletes a path and anything under it.
	RemoveAll(path string) error
	// Remove deletes a single file or empty directory.
	Remove(name string) error
	// ReadDir lists a directory, sorted by name.
	ReadDir(name string) ([]fs.DirEntry, error)
	// Stat describes a path.
	Stat(name string) (fs.FileInfo, error)
}

// OSFS is the passthrough implementation over the os package.
type OSFS struct{}

// OS is the shared passthrough instance; nil FS fields throughout the
// codebase default to it.
var OS FS = OSFS{}

// Create implements FS.
func (OSFS) Create(name string) (File, error) { return os.Create(name) }

// Open implements FS.
func (OSFS) Open(name string) (File, error) { return os.Open(name) }

// Rename implements FS.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// WriteFile implements FS.
func (OSFS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	return os.WriteFile(name, data, perm)
}

// ReadFile implements FS.
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// MkdirAll implements FS.
func (OSFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

// RemoveAll implements FS.
func (OSFS) RemoveAll(path string) error { return os.RemoveAll(path) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// ReadDir implements FS.
func (OSFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

// Stat implements FS.
func (OSFS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

// OrOS resolves a possibly-nil FS to the passthrough default, so
// callers can hold a nil field and never branch at call sites.
func OrOS(fsys FS) FS {
	if fsys == nil {
		return OS
	}
	return fsys
}
