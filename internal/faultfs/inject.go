package faultfs

import (
	"errors"
	"fmt"
	"io/fs"
	"strings"
	"sync"
	"syscall"
)

// ErrInjected is the default error an injected fault reports.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrCrash marks an injected fault that simulates the process dying
// mid-commit: the operation did not happen (or only partially
// happened) and no cleanup code gets to run in the simulated world.
// Crash-recovery tests fail an operation with ErrCrash and then start
// a fresh service over the same directory, asserting the startup
// sweep quarantines the debris.
var ErrCrash = errors.New("faultfs: injected crash")

// ENOSPC is the "disk full" errno, re-exported so tests don't import
// syscall; errors.Is(err, faultfs.ENOSPC) matches what a real full
// disk returns.
var ENOSPC error = syscall.ENOSPC

// Op identifies one FS verb (or the Write calls of a Create'd file) in
// a rule's operation mask.
type Op uint16

// Operation mask bits. OpAny matches every operation.
const (
	OpCreate Op = 1 << iota
	OpOpen
	OpRename
	OpWriteFile
	OpReadFile
	OpMkdirAll
	OpRemoveAll
	OpRemove
	OpReadDir
	OpStat
	// OpWrite matches Write calls on files obtained from Create —
	// the knob for short (torn) writes mid-file.
	OpWrite

	OpAny Op = 1<<iota - 1
)

var opNames = map[Op]string{
	OpCreate: "create", OpOpen: "open", OpRename: "rename",
	OpWriteFile: "writefile", OpReadFile: "readfile",
	OpMkdirAll: "mkdirall", OpRemoveAll: "removeall", OpRemove: "remove",
	OpReadDir: "readdir", OpStat: "stat", OpWrite: "write",
}

// String names a single-bit op (masks render as "op(<bits>)").
func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("op(%#x)", uint16(o))
}

// Rule selects which operations fail and how. A rule matches an
// operation when the op is in Ops (zero means any), and the path
// contains the Path substring (empty means any; Rename matches on
// either path). Among matching operations the rule fires:
//
//   - on the Nth match (1-based) when Nth > 0,
//   - with probability 1/OneIn when OneIn > 0, drawn from the
//     injector's seeded deterministic stream (the chaos-test mode),
//   - on every match when neither is set,
//
// and at most Times times (0 = unlimited). A fired rule returns Err
// (ErrInjected when nil). Two modifiers shape the failure:
//
//   - Short (Create/Write/WriteFile): half the payload reaches the
//     file before the error — a torn write, what a crash mid-flush
//     leaves behind.
//   - After (any op): the real operation completes and the error is
//     reported anyway — the "commit happened but the ack was lost"
//     shape that makes retry idempotence observable.
type Rule struct {
	Ops   Op
	Path  string
	Nth   int64
	OneIn int64
	Times int64
	Err   error
	Short bool
	After bool

	matches int64 // matching operations seen (guarded by the injector's mu)
	fired   int64 // faults actually injected
}

// Fired reports how many times the rule injected a fault.
func (r *Rule) Fired() int64 { return r.fired }

// err resolves the rule's error.
func (r *Rule) err() error {
	if r.Err != nil {
		return r.Err
	}
	return ErrInjected
}

// InjectFS wraps a base FS (OS when nil) and injects failures
// according to its rules. All methods are safe for concurrent use;
// the probabilistic draw is a seeded splitmix64 stream, so a given
// (seed, operation sequence) always injects the same faults —
// chaos runs are reproducible.
type InjectFS struct {
	Base FS

	mu       sync.Mutex
	rng      uint64
	rules    []*Rule
	ops      int64
	injected int64
}

// NewInject returns an injector over the OS filesystem with the given
// seed and rules.
func NewInject(seed uint64, rules ...*Rule) *InjectFS {
	return &InjectFS{Base: OS, rng: seed ^ 0x9e3779b97f4a7c15, rules: rules}
}

// AddRule appends a rule; live services pick it up on their next
// filesystem operation.
func (f *InjectFS) AddRule(r *Rule) {
	f.mu.Lock()
	f.rules = append(f.rules, r)
	f.mu.Unlock()
}

// ClearRules removes every rule — the "disk recovered" switch.
func (f *InjectFS) ClearRules() {
	f.mu.Lock()
	f.rules = nil
	f.mu.Unlock()
}

// Ops reports how many filesystem operations passed through.
func (f *InjectFS) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Injected reports how many faults were injected.
func (f *InjectFS) Injected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// splitmix64 advances the injector's deterministic stream.
func (f *InjectFS) splitmix64() uint64 {
	f.rng += 0x9e3779b97f4a7c15
	z := f.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// check consults the rules for one operation. It returns the first
// firing rule (nil if the operation proceeds normally).
func (f *InjectFS) check(op Op, paths ...string) *Rule {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops++
	for _, r := range f.rules {
		if r.Ops != 0 && r.Ops&op == 0 {
			continue
		}
		if r.Path != "" && !pathMatches(r.Path, paths) {
			continue
		}
		r.matches++
		if r.Times > 0 && r.fired >= r.Times {
			continue
		}
		fire := true
		if r.Nth > 0 {
			fire = r.matches == r.Nth
		} else if r.OneIn > 0 {
			fire = f.splitmix64()%uint64(r.OneIn) == 0
		}
		if !fire {
			continue
		}
		r.fired++
		f.injected++
		return r
	}
	return nil
}

func pathMatches(pattern string, paths []string) bool {
	for _, p := range paths {
		if strings.Contains(p, pattern) {
			return true
		}
	}
	return false
}

func (f *InjectFS) base() FS { return OrOS(f.Base) }

// Create implements FS. A Short rule hands back a file that tears the
// first Write; a plain rule fails the create outright.
func (f *InjectFS) Create(name string) (File, error) {
	if r := f.check(OpCreate, name); r != nil {
		if !r.Short && !r.After {
			return nil, &fs.PathError{Op: "create", Path: name, Err: r.err()}
		}
	}
	file, err := f.base().Create(name)
	if err != nil {
		return nil, err
	}
	return &injectFile{File: file, fs: f, path: name}, nil
}

// Open implements FS.
func (f *InjectFS) Open(name string) (File, error) {
	if r := f.check(OpOpen, name); r != nil && !r.After {
		return nil, &fs.PathError{Op: "open", Path: name, Err: r.err()}
	}
	return f.base().Open(name)
}

// Rename implements FS. An After rule performs the rename and reports
// failure anyway (ack lost); otherwise the rename never happens —
// with ErrCrash that is exactly "the process died between staging and
// commit".
func (f *InjectFS) Rename(oldpath, newpath string) error {
	if r := f.check(OpRename, oldpath, newpath); r != nil {
		if r.After {
			if err := f.base().Rename(oldpath, newpath); err != nil {
				return err
			}
		}
		return &fs.PathError{Op: "rename", Path: oldpath, Err: r.err()}
	}
	return f.base().Rename(oldpath, newpath)
}

// WriteFile implements FS. Short leaves a torn half-file behind —
// data[:len/2] reaches disk, the error is reported (or, with After
// set too, swallowed: the caller believes the write succeeded, which
// is how a torn-but-committed entry gets manufactured).
func (f *InjectFS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	if r := f.check(OpWriteFile, name); r != nil {
		if r.Short {
			f.base().WriteFile(name, data[:len(data)/2], perm)
			if r.After {
				return nil // torn write that claims success
			}
			return &fs.PathError{Op: "write", Path: name, Err: r.err()}
		}
		if r.After {
			if err := f.base().WriteFile(name, data, perm); err != nil {
				return err
			}
		}
		return &fs.PathError{Op: "write", Path: name, Err: r.err()}
	}
	return f.base().WriteFile(name, data, perm)
}

// ReadFile implements FS.
func (f *InjectFS) ReadFile(name string) ([]byte, error) {
	if r := f.check(OpReadFile, name); r != nil && !r.After {
		return nil, &fs.PathError{Op: "read", Path: name, Err: r.err()}
	}
	return f.base().ReadFile(name)
}

// MkdirAll implements FS.
func (f *InjectFS) MkdirAll(path string, perm fs.FileMode) error {
	if r := f.check(OpMkdirAll, path); r != nil {
		if r.After {
			if err := f.base().MkdirAll(path, perm); err != nil {
				return err
			}
		}
		return &fs.PathError{Op: "mkdir", Path: path, Err: r.err()}
	}
	return f.base().MkdirAll(path, perm)
}

// RemoveAll implements FS.
func (f *InjectFS) RemoveAll(path string) error {
	if r := f.check(OpRemoveAll, path); r != nil {
		if r.After {
			if err := f.base().RemoveAll(path); err != nil {
				return err
			}
		}
		return &fs.PathError{Op: "removeall", Path: path, Err: r.err()}
	}
	return f.base().RemoveAll(path)
}

// Remove implements FS.
func (f *InjectFS) Remove(name string) error {
	if r := f.check(OpRemove, name); r != nil {
		if r.After {
			if err := f.base().Remove(name); err != nil {
				return err
			}
		}
		return &fs.PathError{Op: "remove", Path: name, Err: r.err()}
	}
	return f.base().Remove(name)
}

// ReadDir implements FS.
func (f *InjectFS) ReadDir(name string) ([]fs.DirEntry, error) {
	if r := f.check(OpReadDir, name); r != nil && !r.After {
		return nil, &fs.PathError{Op: "readdir", Path: name, Err: r.err()}
	}
	return f.base().ReadDir(name)
}

// Stat implements FS.
func (f *InjectFS) Stat(name string) (fs.FileInfo, error) {
	if r := f.check(OpStat, name); r != nil && !r.After {
		return nil, &fs.PathError{Op: "stat", Path: name, Err: r.err()}
	}
	return f.base().Stat(name)
}

// injectFile routes Write calls of a Create'd file back through the
// rule table so writes can fail or tear mid-stream.
type injectFile struct {
	File
	fs   *InjectFS
	path string
}

// Write implements io.Writer with injection: a Short rule writes half
// the buffer and reports a short-write error, a plain rule fails the
// write whole, an After rule writes everything and still errors.
func (w *injectFile) Write(p []byte) (int, error) {
	r := w.fs.check(OpWrite, w.path)
	if r == nil {
		return w.File.Write(p)
	}
	if r.Short {
		n, _ := w.File.Write(p[: len(p)/2 : len(p)/2])
		return n, &fs.PathError{Op: "write", Path: w.path, Err: r.err()}
	}
	if r.After {
		n, err := w.File.Write(p)
		if err != nil {
			return n, err
		}
		return n, &fs.PathError{Op: "write", Path: w.path, Err: r.err()}
	}
	return 0, &fs.PathError{Op: "write", Path: w.path, Err: r.err()}
}
