package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestOSFSPassthrough(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.txt")
	if err := OS.WriteFile(path, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	raw, err := OS.ReadFile(path)
	if err != nil || string(raw) != "hello" {
		t.Fatalf("ReadFile = %q, %v", raw, err)
	}
	if err := OS.Rename(path, filepath.Join(dir, "b.txt")); err != nil {
		t.Fatal(err)
	}
	des, err := OS.ReadDir(dir)
	if err != nil || len(des) != 1 || des[0].Name() != "b.txt" {
		t.Fatalf("ReadDir = %v, %v", des, err)
	}
}

func TestNthFailure(t *testing.T) {
	dir := t.TempDir()
	rule := &Rule{Ops: OpWriteFile, Nth: 2}
	fsys := NewInject(1, rule)
	if err := fsys.WriteFile(filepath.Join(dir, "one"), []byte("1"), 0o644); err != nil {
		t.Fatalf("first write should pass: %v", err)
	}
	err := fsys.WriteFile(filepath.Join(dir, "two"), []byte("2"), 0o644)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("second write should fail injected, got %v", err)
	}
	if err := fsys.WriteFile(filepath.Join(dir, "three"), []byte("3"), 0o644); err != nil {
		t.Fatalf("third write should pass: %v", err)
	}
	if got := rule.Fired(); got != 1 {
		t.Fatalf("rule fired %d times, want 1", got)
	}
}

func TestPathPatternAndENOSPC(t *testing.T) {
	dir := t.TempDir()
	fsys := NewInject(1, &Rule{Ops: OpWriteFile, Path: "manifest.json", Err: ENOSPC})
	if err := fsys.WriteFile(filepath.Join(dir, "table.csv"), []byte("x"), 0o644); err != nil {
		t.Fatalf("non-matching path should pass: %v", err)
	}
	err := fsys.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{}"), 0o644)
	if !errors.Is(err, ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	if _, statErr := os.Stat(filepath.Join(dir, "manifest.json")); !os.IsNotExist(statErr) {
		t.Fatalf("failed WriteFile must not create the file: %v", statErr)
	}
}

func TestShortWriteFileTears(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn")
	fsys := NewInject(1, &Rule{Ops: OpWriteFile, Short: true})
	err := fsys.WriteFile(path, []byte("0123456789"), 0o644)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	raw, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(raw) != "01234" {
		t.Fatalf("torn file = %q, want first half", raw)
	}
}

func TestShortAfterClaimsSuccess(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lying")
	fsys := NewInject(1, &Rule{Ops: OpWriteFile, Short: true, After: true})
	if err := fsys.WriteFile(path, []byte("0123456789"), 0o644); err != nil {
		t.Fatalf("Short+After must claim success, got %v", err)
	}
	raw, _ := os.ReadFile(path)
	if string(raw) != "01234" {
		t.Fatalf("file = %q, want torn half despite claimed success", raw)
	}
}

func TestRenameCrashVsAfter(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src")
	dst := filepath.Join(dir, "dst")

	// Plain failure: the rename never happens (crash-before-commit).
	fsys := NewInject(1, &Rule{Ops: OpRename, Err: ErrCrash})
	if err := os.WriteFile(src, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Rename(src, dst); !errors.Is(err, ErrCrash) {
		t.Fatalf("want ErrCrash, got %v", err)
	}
	if _, err := os.Stat(src); err != nil {
		t.Fatalf("src must survive a failed rename: %v", err)
	}
	if _, err := os.Stat(dst); !os.IsNotExist(err) {
		t.Fatalf("dst must not exist after failed rename: %v", err)
	}

	// After: the rename happens, the error is reported anyway (ack lost).
	fsys = NewInject(1, &Rule{Ops: OpRename, After: true})
	if err := fsys.Rename(src, dst); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	if _, err := os.Stat(dst); err != nil {
		t.Fatalf("dst must exist after After-rename: %v", err)
	}
}

func TestCreateShortTearsStreamWrites(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "stream")
	fsys := NewInject(1, &Rule{Ops: OpWrite, Path: "stream", Nth: 1, Short: true})
	f, err := fsys.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	n, werr := f.Write([]byte("0123456789"))
	f.Close()
	if werr == nil {
		t.Fatal("torn Write must report an error")
	}
	if n != 5 {
		t.Fatalf("torn Write wrote %d bytes, want 5", n)
	}
	raw, _ := os.ReadFile(path)
	if string(raw) != "01234" {
		t.Fatalf("file = %q, want first half", raw)
	}
}

func TestOneInDeterminism(t *testing.T) {
	run := func(seed uint64) []int {
		dir := t.TempDir()
		fsys := NewInject(seed, &Rule{Ops: OpWriteFile, OneIn: 4})
		var failed []int
		for i := 0; i < 64; i++ {
			path := filepath.Join(dir, "f")
			if err := fsys.WriteFile(path, []byte("x"), 0o644); err != nil {
				failed = append(failed, i)
			}
		}
		return failed
	}
	a, b := run(42), run(42)
	if len(a) == 0 {
		t.Fatal("OneIn=4 over 64 ops should fire at least once")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different fault counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different fault positions: %v vs %v", a, b)
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault sequences (suspicious)")
	}
}

func TestTimesCapAndClearRules(t *testing.T) {
	dir := t.TempDir()
	fsys := NewInject(1, &Rule{Ops: OpWriteFile, Times: 2})
	path := filepath.Join(dir, "f")
	fails := 0
	for i := 0; i < 5; i++ {
		if err := fsys.WriteFile(path, []byte("x"), 0o644); err != nil {
			fails++
		}
	}
	if fails != 2 {
		t.Fatalf("Times=2 capped at %d fails, want 2", fails)
	}
	fsys.AddRule(&Rule{Ops: OpWriteFile})
	if err := fsys.WriteFile(path, []byte("x"), 0o644); err == nil {
		t.Fatal("uncapped rule must fail every write")
	}
	fsys.ClearRules()
	if err := fsys.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatalf("cleared rules must pass: %v", err)
	}
	if fsys.Injected() != 3 {
		t.Fatalf("Injected = %d, want 3", fsys.Injected())
	}
}
