package dsl

import (
	"strings"
	"testing"

	"datasynth/internal/schema"
	"datasynth/internal/table"
)

// paperDSL is the running example of the paper's Figure 1 in DSL form.
const paperDSL = `
# The paper's Figure 1 running example.
graph social {
  seed = 42

  node Person {
    count = 10000
    property country : string = categorical(dict="countries")
    property sex     : string = categorical(values="M|F")
    property name    : string = dictionary() given (country, sex)
    property interest : string = zipf(dict="topics", theta="1.1")
    property creationDate : date = uniform-date(from="2010-01-01", to="2020-01-01")
  }

  node Message {
    property topic : string = categorical(dict="topics")
    property text  : string = text(min=3, max=12)
  }

  edge knows : Person *-* Person {
    structure = lfr(avgDegree=20, maxDegree=50, mu=0.1)
    correlate country homophily 0.8
    property creationDate : date = max-endpoint-date(maxDays=365) given (tail.creationDate, head.creationDate)
  }

  edge creates : Person 1-* Message {
    structure = powerlaw-out(min=1, max=20, gamma=2.0)
    property creationDate : date = uniform-date()
  }
}
`

func TestParsePaperExample(t *testing.T) {
	s, err := Parse(paperDSL)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "social" || s.Seed != 42 {
		t.Errorf("name/seed = %s/%d", s.Name, s.Seed)
	}
	p := s.NodeType("Person")
	if p == nil || p.Count != 10000 || len(p.Properties) != 5 {
		t.Fatalf("Person parsed wrong: %+v", p)
	}
	name := p.Property("name")
	if name == nil || len(name.DependsOn) != 2 || name.DependsOn[0] != "country" {
		t.Errorf("name deps = %+v", name)
	}
	if p.Property("creationDate").Kind != table.KindDate {
		t.Error("creationDate kind wrong")
	}
	if p.Property("country").Generator.Param("dict", "") != "countries" {
		t.Error("country generator params wrong")
	}
	k := s.EdgeType("knows")
	if k == nil || k.Cardinality != schema.ManyToMany || k.Tail != "Person" || k.Head != "Person" {
		t.Fatalf("knows parsed wrong: %+v", k)
	}
	if k.Structure.Name != "lfr" || k.Structure.Param("avgDegree", "") != "20" {
		t.Errorf("knows structure = %+v", k.Structure)
	}
	if k.Correlation == nil || k.Correlation.Property != "country" || k.Correlation.Homophily != 0.8 {
		t.Errorf("knows correlation = %+v", k.Correlation)
	}
	if len(k.Properties) != 1 || k.Properties[0].DependsOn[0] != "tail.creationDate" {
		t.Errorf("knows properties = %+v", k.Properties)
	}
	c := s.EdgeType("creates")
	if c == nil || c.Cardinality != schema.OneToMany || c.Head != "Message" {
		t.Fatalf("creates parsed wrong: %+v", c)
	}
}

func TestRoundTrip(t *testing.T) {
	s, err := Parse(paperDSL)
	if err != nil {
		t.Fatal(err)
	}
	printed := Print(s)
	s2, err := Parse(printed)
	if err != nil {
		t.Fatalf("re-parse failed: %v\nsource:\n%s", err, printed)
	}
	if Print(s2) != printed {
		t.Errorf("round trip unstable:\n%s\nvs\n%s", printed, Print(s2))
	}
}

func TestParseBipartiteCorrelation(t *testing.T) {
	src := `
graph shop {
  node User { count = 100
    property segment : string = categorical(values="a|b")
  }
  node Product {
    property category : string = categorical(values="x|y")
  }
  edge lists : Vendor 1-* Product { structure = powerlaw-out() }
  node Vendor { count = 5 }
  edge buys : User *-* Product {
    structure = zipf-attachment()
    correlate tail.segment with head.category homophily 0.6
  }
}
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c := s.EdgeType("buys").Correlation
	if c.TailProperty != "segment" || c.HeadProperty != "category" || c.Homophily != 0.6 {
		t.Errorf("bipartite correlation = %+v", c)
	}
}

func TestParseEdgeCount(t *testing.T) {
	src := `
graph g {
  node A { property x : int = uniform-int() }
  edge e : A *-* A { count = 5000 structure = rmat() }
}
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if s.EdgeType("e").Count != 5000 {
		t.Errorf("edge count = %d", s.EdgeType("e").Count)
	}
}

func TestComments(t *testing.T) {
	src := `
// top comment
graph g { # inline
  node A { count = 5 } // trailing
}
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if s.NodeType("A").Count != 5 {
		t.Error("comment handling broke parsing")
	}
}

func parseErr(t *testing.T, src, want string) {
	t.Helper()
	_, err := Parse(src)
	if err == nil {
		t.Fatalf("expected error containing %q, got nil", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not contain %q", err, want)
	}
}

func TestParseErrors(t *testing.T) {
	parseErr(t, `node A {}`, `expected "graph"`)
	parseErr(t, `graph g`, "expected '{'")
	parseErr(t, `graph g { bogus }`, "expected 'node'")
	parseErr(t, `graph g { node A { count = -3 } }`, "positive integer")
	parseErr(t, `graph g { node A { count = x } }`, "positive integer")
	parseErr(t, `graph g { seed = abc }`, "unsigned integer")
	parseErr(t, `graph g { node A { property p } }`, "expected ':'")
	parseErr(t, `graph g { node A { property p : blob = u() } }`, "unknown property type")
	parseErr(t, `graph g { edge e : A 2-2 B {} }`, "unknown cardinality")
	parseErr(t, `graph g { node A { count = 1 property p : int = u(a=1, a=2) } }`, "duplicate parameter")
	parseErr(t, `graph g { node A { count = 1 } edge e : A *-* A { structure = x() correlate c homophily z } }`, "not a number")
	parseErr(t, `graph g {`, "unexpected end of file")
	parseErr(t, `graph g { node A { count = 1 } } trailing`, "trailing input")
	parseErr(t, `graph "g" {}`, "expected identifier")
}

func TestLexerErrors(t *testing.T) {
	if _, err := lexAll(`"unterminated`); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, err := lexAll("a ; b"); err == nil {
		t.Error("stray character should fail")
	}
	if _, err := lexAll("\"multi\nline\""); err == nil {
		t.Error("newline in string should fail")
	}
}

func TestLexerPositions(t *testing.T) {
	toks, err := lexAll("graph g {\n  seed = 1\n}")
	if err != nil {
		t.Fatal(err)
	}
	// "seed" is on line 2 column 3.
	var seedTok *token
	for i := range toks {
		if toks[i].text == "seed" {
			seedTok = &toks[i]
		}
	}
	if seedTok == nil || seedTok.line != 2 || seedTok.col != 3 {
		t.Errorf("seed position = %+v", seedTok)
	}
}

func TestSemanticValidationRuns(t *testing.T) {
	// Parses fine syntactically, but edge refers to unknown type:
	// schema validation must reject it.
	parseErr(t, `
graph g {
  node A { count = 1 }
  edge e : A *-* Ghost { structure = rmat() }
}`, "undeclared")
}

func TestQuotedAndBareParamsEquivalent(t *testing.T) {
	a, err := Parse(`graph g { node A { count = 1 property p : int = uniform-int(lo=5, hi="9") } }`)
	if err != nil {
		t.Fatal(err)
	}
	p := a.NodeType("A").Property("p")
	if p.Generator.Param("lo", "") != "5" || p.Generator.Param("hi", "") != "9" {
		t.Errorf("params = %+v", p.Generator.Params)
	}
}

func TestDuplicateCorrelationRejected(t *testing.T) {
	parseErr(t, `
graph g {
  node A { count = 1 property c : string = categorical(values="x") }
  edge e : A *-* A {
    structure = rmat()
    correlate c homophily 0.5
    correlate c homophily 0.6
  }
}`, "already has a correlation")
}

func TestParsePassesAndFused(t *testing.T) {
	src := `
graph g {
  node A { count = 10 property c : string = categorical(values="x|y") }
  edge e : A *-* A {
    structure = lfr()
    correlate c homophily 0.7 passes 3
  }
}
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c := s.EdgeType("e").Correlation
	if c.Passes != 3 || c.Fused {
		t.Errorf("correlation = %+v", c)
	}
	// Round trip keeps passes.
	s2, err := Parse(Print(s))
	if err != nil {
		t.Fatal(err)
	}
	if s2.EdgeType("e").Correlation.Passes != 3 {
		t.Error("passes lost in round trip")
	}
	parseErr(t, `
graph g {
  node A { count = 10 property c : string = categorical(values="x") }
  edge e : A *-* A { structure = lfr() correlate c homophily 0.7 passes -1 }
}`, "non-negative")
}
