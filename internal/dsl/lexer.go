// Package dsl implements DataSynth's schema definition language — the
// paper's "Domain Specific Language for the specification of the data
// to generate" (Section 2, "other requirements"). A schema file looks
// like:
//
//	graph social {
//	  seed = 42
//	  node Person {
//	    count = 10000
//	    property country : string = categorical(dict="countries")
//	    property sex     : string = categorical(values="M|F")
//	    property name    : string = dictionary() given (country, sex)
//	  }
//	  edge knows : Person *-* Person {
//	    structure = lfr(avgDegree=20)
//	    correlate country homophily 0.8
//	    property creationDate : date = max-endpoint-date() given (tail.creationDate, head.creationDate)
//	  }
//	  edge creates : Person 1-* Message {
//	    structure = powerlaw-out(min=1, max=20, gamma=2.0)
//	  }
//	}
//
// The parser compiles the text into a schema.Schema; all semantic
// validation lives in the schema package.
package dsl

import (
	"fmt"
	"strings"
)

// tokKind enumerates lexer token kinds.
type tokKind int

const (
	tokEOF    tokKind = iota
	tokWord           // identifiers, numbers, cardinalities: [A-Za-z0-9_.*+-]+
	tokString         // "quoted"
	tokLBrace
	tokRBrace
	tokLParen
	tokRParen
	tokEquals
	tokColon
	tokComma
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of file"
	case tokWord:
		return "word"
	case tokString:
		return "string"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokEquals:
		return "'='"
	case tokColon:
		return "':'"
	case tokComma:
		return "','"
	default:
		return fmt.Sprintf("tokKind(%d)", int(k))
	}
}

// token is one lexeme with its source position.
type token struct {
	kind tokKind
	text string
	line int
	col  int
}

// lexer splits DSL source into tokens. Comments run from '#' or '//'
// to end of line.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func isWordChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' ||
		c == '_' || c == '.' || c == '-' || c == '*' || c == '+'
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			l.advance()
		case c == '\n':
			l.advance()
		case c == '#':
			l.skipLine()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			l.skipLine()
		default:
			goto lex
		}
	}
	return token{kind: tokEOF, line: l.line, col: l.col}, nil

lex:
	start := token{line: l.line, col: l.col}
	c := l.src[l.pos]
	switch c {
	case '{':
		l.advance()
		start.kind = tokLBrace
		return start, nil
	case '}':
		l.advance()
		start.kind = tokRBrace
		return start, nil
	case '(':
		l.advance()
		start.kind = tokLParen
		return start, nil
	case ')':
		l.advance()
		start.kind = tokRParen
		return start, nil
	case '=':
		l.advance()
		start.kind = tokEquals
		return start, nil
	case ':':
		l.advance()
		start.kind = tokColon
		return start, nil
	case ',':
		l.advance()
		start.kind = tokComma
		return start, nil
	case '"':
		l.advance()
		var sb strings.Builder
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			if l.src[l.pos] == '\n' {
				return start, fmt.Errorf("dsl:%d:%d: unterminated string", start.line, start.col)
			}
			if l.src[l.pos] == '\\' && l.pos+1 < len(l.src) {
				l.advance()
			}
			sb.WriteByte(l.src[l.pos])
			l.advance()
		}
		if l.pos >= len(l.src) {
			return start, fmt.Errorf("dsl:%d:%d: unterminated string", start.line, start.col)
		}
		l.advance() // closing quote
		start.kind = tokString
		start.text = sb.String()
		return start, nil
	}
	if isWordChar(c) {
		from := l.pos
		for l.pos < len(l.src) && isWordChar(l.src[l.pos]) {
			l.advance()
		}
		start.kind = tokWord
		start.text = l.src[from:l.pos]
		return start, nil
	}
	return start, fmt.Errorf("dsl:%d:%d: unexpected character %q", start.line, start.col, string(c))
}

func (l *lexer) advance() {
	if l.src[l.pos] == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	l.pos++
}

func (l *lexer) skipLine() {
	for l.pos < len(l.src) && l.src[l.pos] != '\n' {
		l.advance()
	}
}

// lexAll tokenises the whole source.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
