package dsl

import (
	"fmt"
	"sort"
	"strings"

	"datasynth/internal/schema"
)

// Print renders a schema back to DSL text; Parse(Print(s)) is
// equivalent to s, which tests rely on (round-trip property).
func Print(s *schema.Schema) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s {\n", s.Name)
	if s.Seed != 0 {
		fmt.Fprintf(&b, "  seed = %d\n", s.Seed)
	}
	for i := range s.Nodes {
		n := &s.Nodes[i]
		fmt.Fprintf(&b, "  node %s {\n", n.Name)
		if n.Count > 0 {
			fmt.Fprintf(&b, "    count = %d\n", n.Count)
		}
		for j := range n.Properties {
			printProperty(&b, &n.Properties[j], "    ")
		}
		b.WriteString("  }\n")
	}
	for i := range s.Edges {
		e := &s.Edges[i]
		fmt.Fprintf(&b, "  edge %s : %s %s %s {\n", e.Name, e.Tail, e.Cardinality, e.Head)
		if e.Count > 0 {
			fmt.Fprintf(&b, "    count = %d\n", e.Count)
		}
		fmt.Fprintf(&b, "    structure = %s\n", formatCall(&e.Structure))
		if c := e.Correlation; c != nil {
			passes := ""
			if c.Passes > 0 {
				passes = fmt.Sprintf(" passes %d", c.Passes)
			}
			if c.Property != "" {
				fmt.Fprintf(&b, "    correlate %s homophily %g%s\n", c.Property, c.Homophily, passes)
			} else {
				fused := ""
				if c.Fused {
					fused = " fused"
				}
				fmt.Fprintf(&b, "    correlate tail.%s with head.%s homophily %g%s%s\n", c.TailProperty, c.HeadProperty, c.Homophily, fused, passes)
			}
		}
		for j := range e.Properties {
			printProperty(&b, &e.Properties[j], "    ")
		}
		b.WriteString("  }\n")
	}
	b.WriteString("}\n")
	return b.String()
}

func printProperty(b *strings.Builder, p *schema.Property, indent string) {
	fmt.Fprintf(b, "%sproperty %s : %s = %s", indent, p.Name, p.Kind, formatCall(&p.Generator))
	if len(p.DependsOn) > 0 {
		fmt.Fprintf(b, " given (%s)", strings.Join(p.DependsOn, ", "))
	}
	b.WriteByte('\n')
}

func formatCall(g *schema.GeneratorSpec) string {
	if len(g.Params) == 0 {
		return g.Name + "()"
	}
	keys := make([]string, 0, len(g.Params))
	for k := range g.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%q", k, g.Params[k])
	}
	return g.Name + "(" + strings.Join(parts, ", ") + ")"
}
