package dsl

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"datasynth/internal/schema"
)

// Parameter overrides: the submit-by-name path lets a client vary a
// registered scenario along a flat whitelist of knobs without editing
// its DSL. Override mutates a freshly parsed schema in place; the
// caller re-validates and re-canonicalises afterwards, so the job's
// cache key is still the pure content hash of the *resolved* text —
// a named submit with overrides and an anonymous submit of the
// resolved DSL collapse onto the same cache entry.
//
// The whitelist, deliberately narrow (an override tweaks a recipe, it
// does not author a new one):
//
//	seed             = <uint64>     the schema seed
//	<type>.count     = <positive>   a node or edge type's explicit count
//	<edge>.<param>   = <value>      a parameter of the edge's structure
//	                                generator call; the parameter must
//	                                already appear in the scenario's
//	                                call, so typos are rejected instead
//	                                of silently generating the default
//
// Values are verbatim strings entering the canonical text, so two
// spellings of the same number ("0.3" vs "0.30") are two cache keys;
// sweeps normalise their grid values for exactly this reason.

// OverrideError reports an override the whitelist rejects — always a
// client mistake, never an internal fault.
type OverrideError struct{ msg string }

func (e *OverrideError) Error() string { return e.msg }

func overrideErrf(format string, args ...any) error {
	return &OverrideError{fmt.Sprintf(format, args...)}
}

// Override applies flat parameter overrides to a schema in place,
// keys processed in sorted order. See the package comment above for
// the accepted key forms.
func Override(s *schema.Schema, params map[string]string) error {
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		if err := applyOverride(s, key, params[key]); err != nil {
			return err
		}
	}
	return nil
}

func applyOverride(s *schema.Schema, key, value string) error {
	if key == "seed" {
		seed, err := strconv.ParseUint(value, 10, 64)
		if err != nil {
			return overrideErrf("override seed=%q: not an unsigned integer", value)
		}
		s.Seed = seed
		return nil
	}
	typ, rest, ok := strings.Cut(key, ".")
	if !ok {
		return overrideErrf("override %q: want \"seed\", \"<type>.count\" or \"<edge>.<param>\"", key)
	}
	if rest == "count" {
		c, err := strconv.ParseInt(value, 10, 64)
		if err != nil || c <= 0 {
			return overrideErrf("override %s=%q: count must be a positive integer", key, value)
		}
		if n := s.NodeType(typ); n != nil {
			n.Count = c
			return nil
		}
		if e := s.EdgeType(typ); e != nil {
			e.Count = c
			return nil
		}
		return overrideErrf("override %q: no node or edge type %q in the schema", key, typ)
	}
	e := s.EdgeType(typ)
	if e == nil {
		if s.NodeType(typ) != nil {
			return overrideErrf("override %q: only \"count\" can be overridden on node type %q", key, typ)
		}
		return overrideErrf("override %q: no edge type %q in the schema", key, typ)
	}
	if _, present := e.Structure.Params[rest]; !present {
		avail := make([]string, 0, len(e.Structure.Params))
		for p := range e.Structure.Params {
			avail = append(avail, p)
		}
		sort.Strings(avail)
		return overrideErrf("override %q: structure %s of edge %q has no parameter %q (has: %s)",
			key, e.Structure.Name, typ, rest, strings.Join(avail, ", "))
	}
	e.Structure.Params[rest] = value
	return nil
}
