package dsl

import (
	"errors"
	"strings"
	"testing"

	"datasynth/internal/schema"
)

const overrideDSL = `
graph ov {
  seed = 42
  node Person {
    count = 100
    property country : string = categorical(dict="countries")
  }
  node Message {
    property topic : string = categorical(dict="topics")
  }
  edge knows : Person *-* Person {
    structure = lfr(avgDegree=4, maxDegree=10, mu=0.2)
  }
  edge creates : Person 1-* Message {
    structure = powerlaw-out(min=1, max=4, gamma=2.0)
  }
}
`

func overrideSchema(t *testing.T) *schema.Schema {
	t.Helper()
	s, err := Parse(overrideDSL)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestOverrideWhitelist(t *testing.T) {
	s := overrideSchema(t)
	err := Override(s, map[string]string{
		"seed":         "7",
		"Person.count": "250",
		"knows.count":  "500",
		"knows.mu":     "0.35",
		"creates.max":  "6",
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 7 {
		t.Fatalf("seed: %d", s.Seed)
	}
	if got := s.NodeType("Person").Count; got != 250 {
		t.Fatalf("Person.count: %d", got)
	}
	if got := s.EdgeType("knows").Count; got != 500 {
		t.Fatalf("knows.count: %d", got)
	}
	if got := s.EdgeType("knows").Structure.Params["mu"]; got != "0.35" {
		t.Fatalf("knows.mu: %q", got)
	}
	if got := s.EdgeType("creates").Structure.Params["max"]; got != "6" {
		t.Fatalf("creates.max: %q", got)
	}
	// The overridden schema survives the normal round trip, so the
	// resolved text canonicalises like any anonymous submission.
	if _, err := Parse(Print(s)); err != nil {
		t.Fatalf("overridden schema does not round-trip: %v", err)
	}
}

func TestOverrideRejections(t *testing.T) {
	for name, tc := range map[string]struct {
		params map[string]string
		want   string
	}{
		"bad seed":           {map[string]string{"seed": "-1"}, "unsigned"},
		"bare key":           {map[string]string{"mu": "0.3"}, "want"},
		"zero count":         {map[string]string{"Person.count": "0"}, "positive"},
		"negative count":     {map[string]string{"knows.count": "-5"}, "positive"},
		"unknown type":       {map[string]string{"Ghost.count": "5"}, "no node or edge type"},
		"node non-count":     {map[string]string{"Person.country": "x"}, `only "count"`},
		"unknown edge":       {map[string]string{"ghost.mu": "0.3"}, "no edge type"},
		"unknown param":      {map[string]string{"knows.gamma": "2.0"}, "has no parameter"},
		"typo lists options": {map[string]string{"knows.Mu": "0.3"}, "avgDegree, maxDegree, mu"},
	} {
		t.Run(name, func(t *testing.T) {
			s := overrideSchema(t)
			err := Override(s, tc.params)
			var oe *OverrideError
			if !errors.As(err, &oe) {
				t.Fatalf("got %v, want *OverrideError", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
