package dsl

import (
	"fmt"
	"strconv"
	"strings"

	"datasynth/internal/schema"
	"datasynth/internal/table"
)

// Parse compiles DSL source into a validated schema.
func Parse(src string) (*schema.Schema, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	s, err := p.file()
	if err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) take() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(t token, format string, args ...any) error {
	return fmt.Errorf("dsl:%d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

func (p *parser) expect(k tokKind) (token, error) {
	t := p.take()
	if t.kind != k {
		return t, p.errf(t, "expected %v, found %v %q", k, t.kind, t.text)
	}
	return t, nil
}

func (p *parser) expectWord(text string) (token, error) {
	t := p.take()
	if t.kind != tokWord || t.text != text {
		return t, p.errf(t, "expected %q, found %q", text, t.text)
	}
	return t, nil
}

// word expects any word token.
func (p *parser) word() (token, error) {
	t := p.take()
	if t.kind != tokWord {
		return t, p.errf(t, "expected identifier, found %v", t.kind)
	}
	return t, nil
}

// file := "graph" IDENT "{" item* "}"
func (p *parser) file() (*schema.Schema, error) {
	if _, err := p.expectWord("graph"); err != nil {
		return nil, err
	}
	name, err := p.word()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	s := &schema.Schema{Name: name.text}
	for {
		t := p.peek()
		if t.kind == tokRBrace {
			p.take()
			break
		}
		if t.kind == tokEOF {
			return nil, p.errf(t, "unexpected end of file inside graph block")
		}
		switch t.text {
		case "seed":
			p.take()
			if _, err := p.expect(tokEquals); err != nil {
				return nil, err
			}
			v, err := p.word()
			if err != nil {
				return nil, err
			}
			seed, err := strconv.ParseUint(v.text, 10, 64)
			if err != nil {
				return nil, p.errf(v, "seed %q is not an unsigned integer", v.text)
			}
			s.Seed = seed
		case "node":
			n, err := p.node()
			if err != nil {
				return nil, err
			}
			s.Nodes = append(s.Nodes, *n)
		case "edge":
			e, err := p.edge()
			if err != nil {
				return nil, err
			}
			s.Edges = append(s.Edges, *e)
		default:
			return nil, p.errf(t, "expected 'node', 'edge' or 'seed', found %q", t.text)
		}
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, p.errf(t, "trailing input after graph block")
	}
	return s, nil
}

// node := "node" IDENT "{" ("count" "=" NUM | prop)* "}"
func (p *parser) node() (*schema.NodeType, error) {
	p.take() // "node"
	name, err := p.word()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	n := &schema.NodeType{Name: name.text}
	for {
		t := p.peek()
		if t.kind == tokRBrace {
			p.take()
			return n, nil
		}
		switch t.text {
		case "count":
			p.take()
			if _, err := p.expect(tokEquals); err != nil {
				return nil, err
			}
			v, err := p.word()
			if err != nil {
				return nil, err
			}
			c, err := strconv.ParseInt(v.text, 10, 64)
			if err != nil || c <= 0 {
				return nil, p.errf(v, "count %q must be a positive integer", v.text)
			}
			n.Count = c
		case "property":
			prop, err := p.property()
			if err != nil {
				return nil, err
			}
			n.Properties = append(n.Properties, *prop)
		default:
			return nil, p.errf(t, "expected 'count' or 'property' in node %s, found %q", n.Name, t.text)
		}
	}
}

// property := "property" IDENT ":" TYPE "=" genCall ["given" "(" deps ")"]
func (p *parser) property() (*schema.Property, error) {
	p.take() // "property"
	name, err := p.word()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokColon); err != nil {
		return nil, err
	}
	kindTok, err := p.word()
	if err != nil {
		return nil, err
	}
	kind, err := table.ParseValueKind(kindTok.text)
	if err != nil {
		return nil, p.errf(kindTok, "unknown property type %q", kindTok.text)
	}
	if _, err := p.expect(tokEquals); err != nil {
		return nil, err
	}
	gen, err := p.genCall()
	if err != nil {
		return nil, err
	}
	prop := &schema.Property{Name: name.text, Kind: kind, Generator: *gen}
	if p.peek().kind == tokWord && p.peek().text == "given" {
		p.take()
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		for {
			dep, err := p.word()
			if err != nil {
				return nil, err
			}
			prop.DependsOn = append(prop.DependsOn, dep.text)
			t := p.take()
			if t.kind == tokRParen {
				break
			}
			if t.kind != tokComma {
				return nil, p.errf(t, "expected ',' or ')' in dependency list")
			}
		}
	}
	return prop, nil
}

// genCall := IDENT ["(" [param ("," param)*] ")"]
func (p *parser) genCall() (*schema.GeneratorSpec, error) {
	name, err := p.word()
	if err != nil {
		return nil, err
	}
	g := &schema.GeneratorSpec{Name: name.text, Params: map[string]string{}}
	if p.peek().kind != tokLParen {
		return g, nil
	}
	p.take() // '('
	if p.peek().kind == tokRParen {
		p.take()
		return g, nil
	}
	for {
		key, err := p.word()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokEquals); err != nil {
			return nil, err
		}
		v := p.take()
		if v.kind != tokWord && v.kind != tokString {
			return nil, p.errf(v, "expected parameter value, found %v", v.kind)
		}
		if _, dup := g.Params[key.text]; dup {
			return nil, p.errf(key, "duplicate parameter %q", key.text)
		}
		g.Params[key.text] = v.text
		t := p.take()
		if t.kind == tokRParen {
			return g, nil
		}
		if t.kind != tokComma {
			return nil, p.errf(t, "expected ',' or ')' in parameter list")
		}
	}
}

// edge := "edge" IDENT ":" IDENT CARD IDENT "{" edgeItem* "}"
func (p *parser) edge() (*schema.EdgeType, error) {
	p.take() // "edge"
	name, err := p.word()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokColon); err != nil {
		return nil, err
	}
	tail, err := p.word()
	if err != nil {
		return nil, err
	}
	cardTok, err := p.word()
	if err != nil {
		return nil, err
	}
	card, err := schema.ParseCardinality(cardTok.text)
	if err != nil {
		return nil, p.errf(cardTok, "unknown cardinality %q (want 1-1, 1-* or *-*)", cardTok.text)
	}
	head, err := p.word()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	e := &schema.EdgeType{Name: name.text, Tail: tail.text, Head: head.text, Cardinality: card}
	for {
		t := p.peek()
		if t.kind == tokRBrace {
			p.take()
			return e, nil
		}
		switch t.text {
		case "structure":
			p.take()
			if _, err := p.expect(tokEquals); err != nil {
				return nil, err
			}
			g, err := p.genCall()
			if err != nil {
				return nil, err
			}
			e.Structure = *g
		case "count":
			p.take()
			if _, err := p.expect(tokEquals); err != nil {
				return nil, err
			}
			v, err := p.word()
			if err != nil {
				return nil, err
			}
			c, err := strconv.ParseInt(v.text, 10, 64)
			if err != nil || c <= 0 {
				return nil, p.errf(v, "count %q must be a positive integer", v.text)
			}
			e.Count = c
		case "correlate":
			if e.Correlation != nil {
				return nil, p.errf(t, "edge %s already has a correlation", e.Name)
			}
			corr, err := p.correlate()
			if err != nil {
				return nil, err
			}
			e.Correlation = corr
		case "property":
			prop, err := p.property()
			if err != nil {
				return nil, err
			}
			e.Properties = append(e.Properties, *prop)
		default:
			return nil, p.errf(t, "expected 'structure', 'count', 'correlate' or 'property' in edge %s, found %q", e.Name, t.text)
		}
	}
}

// correlate := "correlate" WORD ["with" WORD] "homophily" NUM ["fused"] ["passes" NUM]
// A monopartite correlation names one endpoint property; a bipartite
// one uses tail.X with head.Y. The trailing "fused" keyword requests
// the exact fused operator on 1-* edges.
func (p *parser) correlate() (*schema.Correlation, error) {
	p.take() // "correlate"
	first, err := p.word()
	if err != nil {
		return nil, err
	}
	c := &schema.Correlation{}
	if strings.HasPrefix(first.text, "tail.") {
		c.TailProperty = strings.TrimPrefix(first.text, "tail.")
		if _, err := p.expectWord("with"); err != nil {
			return nil, err
		}
		second, err := p.word()
		if err != nil {
			return nil, err
		}
		if !strings.HasPrefix(second.text, "head.") {
			return nil, p.errf(second, "expected head.<property>, found %q", second.text)
		}
		c.HeadProperty = strings.TrimPrefix(second.text, "head.")
	} else {
		c.Property = first.text
	}
	if _, err := p.expectWord("homophily"); err != nil {
		return nil, err
	}
	v, err := p.word()
	if err != nil {
		return nil, err
	}
	h, err := strconv.ParseFloat(v.text, 64)
	if err != nil {
		return nil, p.errf(v, "homophily %q is not a number", v.text)
	}
	c.Homophily = h
	for p.peek().kind == tokWord && (p.peek().text == "fused" || p.peek().text == "passes") {
		switch p.take().text {
		case "fused":
			c.Fused = true
		case "passes":
			v, err := p.word()
			if err != nil {
				return nil, err
			}
			n, err := strconv.Atoi(v.text)
			if err != nil || n < 0 {
				return nil, p.errf(v, "passes %q must be a non-negative integer", v.text)
			}
			c.Passes = n
		}
	}
	return c, nil
}
