// Package schema defines DataSynth's property-graph schema model: the
// node types, edge types, properties, cardinalities, generator bindings
// and scale factor that the DSL compiles into and the engine executes.
//
// It corresponds to the paper's "Schema" requirement (Section 2):
// "such schemas are usually defined in terms of the node and edge
// types, their associated properties and the cardinality of the edge
// types".
package schema

import (
	"fmt"

	"datasynth/internal/table"
)

// Cardinality of an edge type.
type Cardinality int

// Edge cardinalities from the paper: knows is *→*, creates is 1→*.
const (
	OneToOne Cardinality = iota
	OneToMany
	ManyToMany
)

// String returns the DSL spelling.
func (c Cardinality) String() string {
	switch c {
	case OneToOne:
		return "1-1"
	case OneToMany:
		return "1-*"
	case ManyToMany:
		return "*-*"
	default:
		return fmt.Sprintf("Cardinality(%d)", int(c))
	}
}

// ParseCardinality parses a DSL cardinality.
func ParseCardinality(s string) (Cardinality, error) {
	switch s {
	case "1-1", "1->1":
		return OneToOne, nil
	case "1-*", "1->*":
		return OneToMany, nil
	case "*-*", "*->*":
		return ManyToMany, nil
	default:
		return 0, fmt.Errorf("schema: unknown cardinality %q", s)
	}
}

// GeneratorSpec binds a named generator with parameters; the engine's
// registries resolve it into a concrete property or structure
// generator. Mirrors the paper's PG/SG initialize(...) call.
type GeneratorSpec struct {
	Name   string
	Params map[string]string
}

// Param returns a parameter value or the default.
func (g *GeneratorSpec) Param(key, def string) string {
	if g == nil || g.Params == nil {
		return def
	}
	if v, ok := g.Params[key]; ok {
		return v
	}
	return def
}

// Property describes one property of a node or edge type.
type Property struct {
	Name string
	Kind table.ValueKind
	// Generator names the property generator and its parameters.
	Generator GeneratorSpec
	// DependsOn lists properties of the same type this property's
	// generator is conditioned on, in the order the PG's run method
	// expects them (paper: run(id, r(id), val_0, …, val_k)).
	DependsOn []string
}

// Correlation declares a property-structure correlation for an edge
// type: the joint distribution P(X,Y) that the property values at the
// edge's endpoints must follow.
type Correlation struct {
	// Property is the endpoint node property being correlated (for
	// monopartite edges); for bipartite matching TailProperty and
	// HeadProperty name one property per endpoint type.
	Property     string
	TailProperty string
	HeadProperty string
	// Homophily in [0,1] declares a synthetic joint with the given
	// same-value edge fraction; used when Matrix is nil.
	Homophily float64
	// Matrix, if non-nil, is an explicit P(X,Y) over value-pair indices
	// (row-major, upper-triangular interpretation for monopartite).
	Matrix [][]float64
	// Passes adds re-streaming refinement passes to the matcher
	// (0 = the paper's single-pass algorithm). Each extra pass replays
	// the stream hubs-first with full-neighbourhood information,
	// typically shrinking the joint-distribution error severalfold at
	// linear extra cost.
	Passes int
	// Fused requests the specialised fused operator (paper Section 5
	// future work): structure and the correlated head property are
	// generated together, realising the joint exactly up to integer
	// rounding. Only valid on 1→* edges with a tail/head correlation;
	// the edge's structure generator is used solely to size the edge
	// count, so fine-grained out-degree control is traded for strict
	// constraint satisfaction.
	Fused bool
}

// NodeType describes a node type and its properties.
type NodeType struct {
	Name string
	// Count is the explicit instance count; 0 means "inferred" (from
	// scale factor or a 1→* edge, per the paper's dependency analysis).
	Count      int64
	Properties []Property
}

// Property returns the named property or nil.
func (n *NodeType) Property(name string) *Property {
	for i := range n.Properties {
		if n.Properties[i].Name == name {
			return &n.Properties[i]
		}
	}
	return nil
}

// EdgeType describes an edge type, its endpoints and its structure.
type EdgeType struct {
	Name        string
	Tail, Head  string // node type names
	Cardinality Cardinality
	// Structure names the structure generator (paper SG) and params.
	Structure GeneratorSpec
	// Count is the explicit edge count; 0 means sized from the tail
	// node count via the SG (or vice versa via getNumNodes).
	Count int64
	// Properties of the edge itself (e.g. knows.creationDate).
	Properties []Property
	// Correlation, if non-nil, requests property-structure matching.
	Correlation *Correlation
}

// Property returns the named edge property or nil.
func (e *EdgeType) Property(name string) *Property {
	for i := range e.Properties {
		if e.Properties[i].Name == name {
			return &e.Properties[i]
		}
	}
	return nil
}

// Schema is a complete generation specification.
type Schema struct {
	Name  string
	Seed  uint64
	Nodes []NodeType
	Edges []EdgeType
}

// NodeType returns the named node type or nil.
func (s *Schema) NodeType(name string) *NodeType {
	for i := range s.Nodes {
		if s.Nodes[i].Name == name {
			return &s.Nodes[i]
		}
	}
	return nil
}

// EdgeType returns the named edge type or nil.
func (s *Schema) EdgeType(name string) *EdgeType {
	for i := range s.Edges {
		if s.Edges[i].Name == name {
			return &s.Edges[i]
		}
	}
	return nil
}

// Validate checks referential integrity: unique type names, edge
// endpoints referring to declared node types, dependency references
// resolving, correlations naming real properties, and at least one
// sizing anchor so the dependency analysis can infer every count.
func (s *Schema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("schema: missing graph name")
	}
	seen := map[string]bool{}
	for i := range s.Nodes {
		n := &s.Nodes[i]
		if n.Name == "" {
			return fmt.Errorf("schema: node type %d has no name", i)
		}
		if seen[n.Name] {
			return fmt.Errorf("schema: duplicate type name %q", n.Name)
		}
		seen[n.Name] = true
		if n.Count < 0 {
			return fmt.Errorf("schema: node type %q has negative count", n.Name)
		}
		if err := validateProps(n.Name, n.Properties, func(dep string) bool {
			return n.Property(dep) != nil
		}); err != nil {
			return err
		}
	}
	for i := range s.Edges {
		e := &s.Edges[i]
		if e.Name == "" {
			return fmt.Errorf("schema: edge type %d has no name", i)
		}
		if seen[e.Name] {
			return fmt.Errorf("schema: duplicate type name %q", e.Name)
		}
		seen[e.Name] = true
		tail := s.NodeType(e.Tail)
		head := s.NodeType(e.Head)
		if tail == nil {
			return fmt.Errorf("schema: edge %q tail type %q undeclared", e.Name, e.Tail)
		}
		if head == nil {
			return fmt.Errorf("schema: edge %q head type %q undeclared", e.Name, e.Head)
		}
		if e.Structure.Name == "" {
			return fmt.Errorf("schema: edge %q has no structure generator", e.Name)
		}
		if e.Cardinality == ManyToMany && e.Tail != e.Head && e.Correlation != nil && e.Correlation.Property != "" {
			return fmt.Errorf("schema: edge %q correlates a single property across different endpoint types; use tail/head properties", e.Name)
		}
		if c := e.Correlation; c != nil {
			if c.Property != "" {
				if e.Tail != e.Head {
					return fmt.Errorf("schema: edge %q monopartite correlation on heterogeneous endpoints", e.Name)
				}
				if tail.Property(c.Property) == nil {
					return fmt.Errorf("schema: edge %q correlates unknown property %q", e.Name, c.Property)
				}
			} else {
				if c.TailProperty == "" || c.HeadProperty == "" {
					return fmt.Errorf("schema: edge %q correlation names no properties", e.Name)
				}
				if tail.Property(c.TailProperty) == nil {
					return fmt.Errorf("schema: edge %q tail property %q unknown", e.Name, c.TailProperty)
				}
				if head.Property(c.HeadProperty) == nil {
					return fmt.Errorf("schema: edge %q head property %q unknown", e.Name, c.HeadProperty)
				}
			}
			if c.Matrix == nil && (c.Homophily < 0 || c.Homophily > 1) {
				return fmt.Errorf("schema: edge %q homophily %v outside [0,1]", e.Name, c.Homophily)
			}
			if c.Passes < 0 {
				return fmt.Errorf("schema: edge %q has negative matching passes", e.Name)
			}
			if c.Fused {
				if e.Cardinality != OneToMany {
					return fmt.Errorf("schema: edge %q requests fused matching but is not 1-*", e.Name)
				}
				if c.TailProperty == "" || c.HeadProperty == "" {
					return fmt.Errorf("schema: edge %q fused matching needs tail/head properties", e.Name)
				}
			}
		}
		if err := validateProps(e.Name, e.Properties, func(dep string) bool {
			// Edge properties may depend on sibling edge properties or on
			// endpoint node properties via tail./head. prefixes.
			if e.Property(dep) != nil {
				return true
			}
			if len(dep) > 5 && dep[:5] == "tail." {
				return tail.Property(dep[5:]) != nil
			}
			if len(dep) > 5 && dep[:5] == "head." {
				return head.Property(dep[5:]) != nil
			}
			return false
		}); err != nil {
			return err
		}
	}
	// Sizing: at least one anchor (an explicit node or edge count).
	anchored := false
	for i := range s.Nodes {
		if s.Nodes[i].Count > 0 {
			anchored = true
		}
	}
	for i := range s.Edges {
		if s.Edges[i].Count > 0 {
			anchored = true
		}
	}
	if !anchored {
		return fmt.Errorf("schema: no scale anchor (every count is inferred)")
	}
	return nil
}

func validateProps(owner string, props []Property, depOK func(string) bool) error {
	names := map[string]bool{}
	for i := range props {
		p := &props[i]
		if p.Name == "" {
			return fmt.Errorf("schema: %s property %d has no name", owner, i)
		}
		if names[p.Name] {
			return fmt.Errorf("schema: %s has duplicate property %q", owner, p.Name)
		}
		names[p.Name] = true
		if p.Generator.Name == "" {
			return fmt.Errorf("schema: %s.%s has no generator", owner, p.Name)
		}
		for _, dep := range p.DependsOn {
			if dep == p.Name {
				return fmt.Errorf("schema: %s.%s depends on itself", owner, p.Name)
			}
			if !depOK(dep) {
				return fmt.Errorf("schema: %s.%s depends on unknown property %q", owner, p.Name, dep)
			}
		}
	}
	return nil
}
