package schema

import (
	"strings"
	"testing"

	"datasynth/internal/table"
)

// validSchema returns the running example of the paper's Figure 1.
func validSchema() *Schema {
	return &Schema{
		Name: "social",
		Seed: 1,
		Nodes: []NodeType{
			{
				Name:  "Person",
				Count: 1000,
				Properties: []Property{
					{Name: "country", Kind: table.KindString, Generator: GeneratorSpec{Name: "categorical", Params: map[string]string{"dict": "countries"}}},
					{Name: "sex", Kind: table.KindString, Generator: GeneratorSpec{Name: "categorical"}},
					{Name: "name", Kind: table.KindString, Generator: GeneratorSpec{Name: "dictionary"}, DependsOn: []string{"country", "sex"}},
					{Name: "creationDate", Kind: table.KindDate, Generator: GeneratorSpec{Name: "uniform-date"}},
				},
			},
			{
				Name: "Message", // count inferred from creates
				Properties: []Property{
					{Name: "topic", Kind: table.KindString, Generator: GeneratorSpec{Name: "categorical"}},
				},
			},
		},
		Edges: []EdgeType{
			{
				Name: "knows", Tail: "Person", Head: "Person",
				Cardinality: ManyToMany,
				Structure:   GeneratorSpec{Name: "lfr"},
				Correlation: &Correlation{Property: "country", Homophily: 0.8},
				Properties: []Property{
					{Name: "creationDate", Kind: table.KindDate, Generator: GeneratorSpec{Name: "max-endpoint-date"}, DependsOn: []string{"tail.creationDate", "head.creationDate"}},
				},
			},
			{
				Name: "creates", Tail: "Person", Head: "Message",
				Cardinality: OneToMany,
				Structure:   GeneratorSpec{Name: "powerlaw-out"},
			},
		},
	}
}

func TestValidSchemaPasses(t *testing.T) {
	if err := validSchema().Validate(); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
}

func TestCardinalityRoundTrip(t *testing.T) {
	for _, c := range []Cardinality{OneToOne, OneToMany, ManyToMany} {
		parsed, err := ParseCardinality(c.String())
		if err != nil || parsed != c {
			t.Errorf("round trip %v -> %v, %v", c, parsed, err)
		}
	}
	if _, err := ParseCardinality("2-3"); err == nil {
		t.Error("bad cardinality should fail")
	}
	// Arrow spellings.
	if c, err := ParseCardinality("1->*"); err != nil || c != OneToMany {
		t.Errorf("1->* parsed as %v, %v", c, err)
	}
}

func TestGeneratorSpecParam(t *testing.T) {
	g := &GeneratorSpec{Name: "x", Params: map[string]string{"a": "1"}}
	if g.Param("a", "d") != "1" || g.Param("b", "d") != "d" {
		t.Error("Param lookup broken")
	}
	var nilSpec *GeneratorSpec
	if nilSpec.Param("a", "d") != "d" {
		t.Error("nil spec should return default")
	}
}

func TestLookups(t *testing.T) {
	s := validSchema()
	if s.NodeType("Person") == nil || s.NodeType("Nope") != nil {
		t.Error("NodeType lookup broken")
	}
	if s.EdgeType("knows") == nil || s.EdgeType("Nope") != nil {
		t.Error("EdgeType lookup broken")
	}
	p := s.NodeType("Person")
	if p.Property("country") == nil || p.Property("zzz") != nil {
		t.Error("Property lookup broken")
	}
	e := s.EdgeType("knows")
	if e.Property("creationDate") == nil || e.Property("zzz") != nil {
		t.Error("edge Property lookup broken")
	}
}

func mustFail(t *testing.T, s *Schema, substr string) {
	t.Helper()
	err := s.Validate()
	if err == nil {
		t.Fatalf("expected validation error containing %q, got nil", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("error %q does not contain %q", err, substr)
	}
}

func TestValidationFailures(t *testing.T) {
	s := validSchema()
	s.Name = ""
	mustFail(t, s, "missing graph name")

	s = validSchema()
	s.Nodes[1].Name = "Person"
	mustFail(t, s, "duplicate type")

	s = validSchema()
	s.Edges[0].Tail = "Ghost"
	mustFail(t, s, "undeclared")

	s = validSchema()
	s.Edges[0].Structure.Name = ""
	mustFail(t, s, "no structure generator")

	s = validSchema()
	s.Nodes[0].Properties[2].DependsOn = []string{"ghost"}
	mustFail(t, s, "unknown property")

	s = validSchema()
	s.Nodes[0].Properties[0].DependsOn = []string{"country"}
	mustFail(t, s, "depends on itself")

	s = validSchema()
	s.Edges[0].Correlation.Property = "ghost"
	mustFail(t, s, "unknown property")

	s = validSchema()
	s.Edges[0].Correlation.Homophily = 2
	mustFail(t, s, "homophily")

	s = validSchema()
	s.Nodes[0].Count = 0 // no anchor anywhere
	mustFail(t, s, "no scale anchor")

	s = validSchema()
	s.Nodes[0].Count = -5
	mustFail(t, s, "negative count")

	s = validSchema()
	s.Nodes[0].Properties[0].Generator.Name = ""
	mustFail(t, s, "no generator")

	s = validSchema()
	s.Nodes[0].Properties = append(s.Nodes[0].Properties, Property{Name: "country", Generator: GeneratorSpec{Name: "x"}})
	mustFail(t, s, "duplicate property")
}

func TestEdgeAnchorSuffices(t *testing.T) {
	s := validSchema()
	s.Nodes[0].Count = 0
	s.Edges[0].Count = 50000 // scale by edges instead
	if err := s.Validate(); err != nil {
		t.Fatalf("edge-count anchor rejected: %v", err)
	}
}

func TestHeterogeneousMonopartiteCorrelationFails(t *testing.T) {
	s := validSchema()
	s.Edges[1].Correlation = &Correlation{Property: "country", Homophily: 0.5}
	mustFail(t, s, "heterogeneous")
}

func TestBipartiteCorrelationValidated(t *testing.T) {
	s := validSchema()
	s.Edges[1].Correlation = &Correlation{TailProperty: "country", HeadProperty: "topic", Homophily: 0.5}
	if err := s.Validate(); err != nil {
		t.Fatalf("bipartite correlation rejected: %v", err)
	}
	s.Edges[1].Correlation.HeadProperty = "ghost"
	mustFail(t, s, "head property")
	s.Edges[1].Correlation.HeadProperty = ""
	mustFail(t, s, "names no properties")
}

func TestEdgePropertyEndpointDeps(t *testing.T) {
	s := validSchema()
	// tail./head. deps resolve against endpoint types.
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	s.Edges[0].Properties[0].DependsOn = []string{"tail.ghost"}
	mustFail(t, s, "unknown property")
}
