package exp

import (
	"fmt"
	"runtime"
	"sync"

	"datasynth/internal/par"
)

// Parallel panel fan-out. The panels of a figure are fully independent
// — each owns its seed and every RNG stream derives from it — so they
// can run concurrently without touching the per-panel determinism
// contract: RunPanels produces results byte-identical to the serial
// RunPanel loop at every worker count, and delivers them to the caller
// in submission order as soon as each prefix of the panel list has
// finished (streaming, not batch). The timing experiment (RunTiming)
// deliberately does NOT go through this pool: its panels pin Workers=1
// and run one at a time so the measured wall times stay the paper's
// single-thread, single-stream numbers.

// RunPanels executes the panels on a bounded worker pool and calls
// emit once per panel, in submission order, from the calling
// goroutine. workers <= 0 means NumCPU; workers == 1 reproduces the
// serial loop exactly, including its stop-at-first-error behavior: the
// first panel error (in submission order) aborts the stream, and a
// non-nil error from emit does the same. Panels after a failed one may
// have started speculatively; their results are discarded.
func RunPanels(panels []Panel, workers int, emit func(*Result) error) error {
	n := len(panels)
	if n == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}

	type outcome struct {
		r   *Result
		err error
	}
	// One buffered slot per panel: workers never block on delivery, so
	// an early consumer exit cannot deadlock a worker mid-send. The
	// inflight semaphore bounds how far dispatch runs ahead of the
	// ordered consumer — a Result retains the panel's full edge table,
	// so without it a slow early panel would let the pool park every
	// later panel's graph in memory at once. Capacity workers+1 keeps
	// every worker busy while capping retained results; panel i is
	// always among the first unemitted dispatches, so the consumer's
	// wait can starve only if no token is out — impossible while it
	// still has panels to emit.
	results := make([]chan outcome, n)
	for i := range results {
		results[i] = make(chan outcome, 1)
	}
	jobs := make(chan int)
	done := make(chan struct{})
	inflight := make(chan struct{}, workers+1)
	//lint:allow nakedgo dispatcher body is pure channel sends and selects; recovering a panic here would close(jobs) early and convert a loud crash into a silent truncated run
	go func() {
		defer close(jobs)
		for i := 0; i < n; i++ {
			select {
			case inflight <- struct{}{}:
			case <-done:
				return
			}
			select {
			case jobs <- i:
			case <-done:
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				// par.Safe converts a panicking panel (a generator bug on
				// one parameter point) into that panel's error outcome, so
				// the figure run fails cleanly in submission order instead
				// of taking down the whole experiment binary.
				var r *Result
				err := par.Safe(func() error {
					var runErr error
					r, runErr = RunPanel(panels[i])
					return runErr
				})
				results[i] <- outcome{r, err}
			}
		}()
	}

	var firstErr error
	for i := 0; i < n; i++ {
		o := <-results[i]
		<-inflight
		if o.err != nil {
			firstErr = fmt.Errorf("panel %s: %w", panels[i].Label(), o.err)
			break
		}
		if err := emit(o.r); err != nil {
			firstErr = err
			break
		}
	}
	close(done)
	wg.Wait()
	return firstErr
}

// CollectPanels runs the panels on a bounded pool and returns all
// results in submission order — RunPanels for callers that want the
// batch rather than the stream.
func CollectPanels(panels []Panel, workers int) ([]*Result, error) {
	out := make([]*Result, 0, len(panels))
	err := RunPanels(panels, workers, func(r *Result) error {
		out = append(out, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
