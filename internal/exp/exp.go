// Package exp implements the paper's evaluation protocol (Section 4.2,
// "Preliminary evaluation of graph matching") end to end, so Figures 3
// and 4, the Table 1 capability matrix and the timing claim can be
// regenerated:
//
//  1. Generate a graph g with LFR or RMAT.
//  2. Partition g into k ground-truth groups with LDG; group i is sized
//     n·max(geo(0.4,i),1/k)/Σ_j max(geo(0.4,j),1/k).
//  3. Label partition i's nodes with value i and compute the empirical
//     joint P(X,Y).
//  4. Build a property table with the same value frequencies and stream
//     the nodes of g through SBM-Part in random order.
//  5. Compare the expected and observed CDFs over value pairs sorted by
//     decreasing expected probability.
//
// Panels are independent — each derives every RNG stream from its own
// seed — so the harness fans them out: RunPanels executes a panel list
// on a bounded worker pool and streams results back in submission
// order, byte-identical to the serial loop at every worker count
// (TestRunPanelsMatchesSerial pins this). RunMuSweep pools its sweep
// points the same way. The one deliberate exception is RunTiming,
// which pins Workers=1 and runs panels one at a time so its wall-clock
// numbers remain the paper's single-thread measurement. A panel result
// carries the full assignment and edge table (Result.Assign/.Table),
// so Result.Dataset can materialise it as an exportable property graph.
package exp

import (
	"fmt"
	"time"

	"datasynth/internal/graph"
	"datasynth/internal/match"
	"datasynth/internal/sgen"
	"datasynth/internal/stats"
	"datasynth/internal/table"
	"datasynth/internal/xrand"
)

// GeneratorKind selects the structure generator of a panel.
type GeneratorKind string

// The two generators of the paper's evaluation.
const (
	LFR  GeneratorKind = "LFR"
	RMAT GeneratorKind = "RMAT"
)

// Panel describes one subplot of Figure 3 or 4.
type Panel struct {
	Generator GeneratorKind
	// Size is the node count for LFR panels and the scale (log2 nodes)
	// for RMAT panels, matching the paper's labels LFR(10k,16) and
	// RMAT(22,16).
	Size int64
	// K is the number of distinct property values.
	K int
	// Seed drives all pseudo-randomness of the panel.
	Seed uint64
	// Order optionally overrides the SBM-Part stream order ablation
	// ("random" default, "bfs", "degree").
	Order string
	// Balance toggles SBM-Part's capacity-balancing term (default on).
	NoBalance bool
	// Passes adds re-streaming refinement passes after the first
	// streaming pass (0 = the paper's single-pass algorithm).
	Passes int
	// Window sets SBM-Part's windowed-parallel stream window
	// (0 = matcher default, negative = serial). Byte-identical output
	// at every setting.
	Window int
	// Workers bounds the panel's intra-task parallelism — LFR's
	// sharded community wiring and SBM-Part's window scans
	// (0 = NumCPU, 1 = serial). Byte-identical output at every count.
	Workers int
	// RefineWindow sets the stream window of the re-streaming
	// refinement passes (0 = inherit the resolved Window, negative =
	// serial refinement). Byte-identical output at every setting.
	RefineWindow int
}

// Label renders the paper's panel naming, e.g. "LFR(10k,16)".
func (p Panel) Label() string {
	if p.Generator == RMAT {
		return fmt.Sprintf("RMAT(%d,%d)", p.Size, p.K)
	}
	return fmt.Sprintf("LFR(%s,%d)", compact(p.Size), p.K)
}

func compact(n int64) string {
	switch {
	case n >= 1000000 && n%1000000 == 0:
		return fmt.Sprintf("%dM", n/1000000)
	case n >= 1000 && n%1000 == 0:
		return fmt.Sprintf("%dk", n/1000)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// Result holds one panel's measurements.
type Result struct {
	Panel    Panel
	Nodes    int64
	Edges    int64
	CDF      *stats.CDFPair
	L1       float64
	KS       float64
	JS       float64
	GenTime  time.Duration // graph generation
	LDGTime  time.Duration // ground-truth partitioning
	SBMTime  time.Duration // SBM-Part matching (the paper's timing claim)
	Expected *stats.Joint
	Observed *stats.Joint
	// Assign is SBM-Part's value assignment per structure node and
	// Table the generated edge table — plumbed out so a panel can be
	// materialised as an exportable dataset (see Result.Dataset) instead
	// of existing only as summary statistics.
	Assign []int64
	Table  *table.EdgeTable
}

// RunPanel executes the full protocol for one panel.
func RunPanel(p Panel) (*Result, error) {
	if p.K < 1 {
		return nil, fmt.Errorf("exp: panel needs K >= 1, got %d", p.K)
	}
	// 1. Structure.
	t0 := time.Now()
	var et *table.EdgeTable
	var n int64
	var err error
	switch p.Generator {
	case LFR:
		g := sgen.NewLFR(p.Seed)
		g.Workers = p.Workers
		n = p.Size
		et, err = g.Run(n)
	case RMAT:
		g := sgen.NewRMAT(p.Seed)
		g.Workers = p.Workers
		n = int64(1) << uint(p.Size)
		et, err = g.Run(n)
	default:
		return nil, fmt.Errorf("exp: unknown generator %q", p.Generator)
	}
	if err != nil {
		return nil, fmt.Errorf("exp: generating %s: %w", p.Label(), err)
	}
	genTime := time.Since(t0)
	// The CSR build is amortised across panels: benchmarks call RunPanel
	// in a loop, and the builder pool reuses deg/offs/adj between runs.
	gb := graph.GetBuilder()
	defer graph.PutBuilder(gb)
	g, err := gb.FromEdgeTable(et, n)
	if err != nil {
		return nil, err
	}

	// 2. Ground truth via LDG with geometric group sizes.
	sizes, err := xrand.GroupSizes(n, p.K, 0.4)
	if err != nil {
		return nil, err
	}
	ldg, err := match.NewLDG(sizes)
	if err != nil {
		return nil, err
	}
	t1 := time.Now()
	truth, err := ldg.Partition(g, match.RandomOrder(n, p.Seed^0x1))
	if err != nil {
		return nil, fmt.Errorf("exp: LDG ground truth: %w", err)
	}
	ldgTime := time.Since(t1)

	// 3. Expected joint.
	expected, err := stats.EmpiricalJoint(et, truth, p.K)
	if err != nil {
		return nil, err
	}

	// 4. Property table with the ground-truth frequencies, nodes sent to
	// SBM-Part in random order (or an ablation order).
	rowLabels := make([]int64, n)
	idx := int64(0)
	for v, sz := range sizes {
		for c := int64(0); c < sz; c++ {
			rowLabels[idx] = int64(v)
			idx++
		}
	}
	part, err := match.NewSBMPart(expected, sizes)
	if err != nil {
		return nil, err
	}
	part.Balance = !p.NoBalance
	part.Seed = p.Seed ^ 0x3
	part.Window = match.EffectiveWindow(p.Window, p.Workers)
	part.Workers = p.Workers
	part.RefineWindow = p.RefineWindow
	var order []int64
	switch p.Order {
	case "", "random":
		order = match.RandomOrder(n, p.Seed^0x2)
	case "bfs":
		order = match.BFSOrder(g, p.Seed^0x2)
	case "degree":
		order = match.DegreeDescOrder(g)
	default:
		return nil, fmt.Errorf("exp: unknown stream order %q", p.Order)
	}
	t2 := time.Now()
	var assign []int64
	if p.Passes > 0 {
		assign, err = part.PartitionMultiPass(g, order, p.Passes)
	} else {
		assign, err = part.Partition(g, order)
	}
	if err != nil {
		return nil, fmt.Errorf("exp: SBM-Part: %w", err)
	}
	sbmTime := time.Since(t2)

	// 5. Observed joint and CDF comparison.
	observed, err := stats.EmpiricalJoint(et, assign, p.K)
	if err != nil {
		return nil, err
	}
	cdf, err := stats.NewCDFPair(expected, observed)
	if err != nil {
		return nil, err
	}
	l1, err := stats.L1(expected, observed)
	if err != nil {
		return nil, err
	}
	js, err := stats.JensenShannon(expected, observed)
	if err != nil {
		return nil, err
	}
	return &Result{
		Panel: p, Nodes: n, Edges: et.Len(),
		CDF: cdf, L1: l1, KS: cdf.KS(), JS: js,
		GenTime: genTime, LDGTime: ldgTime, SBMTime: sbmTime,
		Expected: expected, Observed: observed,
		Assign: assign, Table: et,
	}, nil
}

// Figure3Panels returns the paper's Figure 3 configuration: fixed
// k = 16, varying size. When full is false, sizes are scaled down to
// laptop scale (shape is size-insensitive, which is exactly the
// figure's finding).
func Figure3Panels(full bool) []Panel {
	if full {
		return []Panel{
			{Generator: LFR, Size: 10000, K: 16, Seed: 31},
			{Generator: LFR, Size: 100000, K: 16, Seed: 32},
			{Generator: LFR, Size: 1000000, K: 16, Seed: 33},
			{Generator: RMAT, Size: 18, K: 16, Seed: 34},
			{Generator: RMAT, Size: 20, K: 16, Seed: 35},
			{Generator: RMAT, Size: 22, K: 16, Seed: 36},
		}
	}
	return []Panel{
		{Generator: LFR, Size: 10000, K: 16, Seed: 31},
		{Generator: LFR, Size: 30000, K: 16, Seed: 32},
		{Generator: LFR, Size: 100000, K: 16, Seed: 33},
		{Generator: RMAT, Size: 12, K: 16, Seed: 34},
		{Generator: RMAT, Size: 14, K: 16, Seed: 35},
		{Generator: RMAT, Size: 16, K: 16, Seed: 36},
	}
}

// Figure4Panels returns the paper's Figure 4 configuration: fixed size,
// k ∈ {4, 16, 64}.
func Figure4Panels(full bool) []Panel {
	lfrSize := int64(100000)
	rmatScale := int64(16)
	if full {
		lfrSize = 1000000
		rmatScale = 22
	}
	return []Panel{
		{Generator: LFR, Size: lfrSize, K: 4, Seed: 41},
		{Generator: LFR, Size: lfrSize, K: 16, Seed: 42},
		{Generator: LFR, Size: lfrSize, K: 64, Seed: 43},
		{Generator: RMAT, Size: rmatScale, K: 4, Seed: 44},
		{Generator: RMAT, Size: rmatScale, K: 16, Seed: 45},
		{Generator: RMAT, Size: rmatScale, K: 64, Seed: 46},
	}
}
