package exp

import (
	"fmt"
	"io"
	"math"
	"time"

	"datasynth/internal/match"
	"datasynth/internal/sgen"
	"datasynth/internal/xrand"
)

// Bipartite variation of the evaluation protocol. The paper notes that
// "a small variation of SBM-Part can also be applied to bi-partite
// graphs"; this panel measures that variation the same way Figures 3
// and 4 measure the monopartite matcher:
//
//  1. Generate a *→* bipartite edge table (Zipf attachment: power-law
//     tail out-degrees, Zipf head popularity).
//  2. Label both domains with geometric ground-truth value blocks and
//     measure the empirical joint P(X,Y) — the target.
//  3. Stream both domains through MatchBipartite with property tables
//     of the same value frequencies.
//  4. Compare the observed joint against the target (L1).
//
// The Panel's Window/Workers knobs flow straight into match.Options,
// so this is also the harness that exercises the windowed-parallel
// bipartite path end to end.

// BipartiteResult holds one bipartite panel's measurements.
type BipartiteResult struct {
	Panel        Panel
	NTail, NHead int64
	Edges        int64
	KT, KH       int
	L1           float64
	GenTime      time.Duration
	MatchTime    time.Duration // the bipartite SBM-Part stream
}

// RunBipartitePanel executes the bipartite protocol for one panel:
// Size is the tail-domain size (heads are half of it), K the number of
// tail property values (heads carry max(2, K/2) values, so the two
// sides genuinely differ).
func RunBipartitePanel(p Panel) (*BipartiteResult, error) {
	if p.K < 1 {
		return nil, fmt.Errorf("exp: bipartite panel needs K >= 1, got %d", p.K)
	}
	if p.Size < 2 {
		return nil, fmt.Errorf("exp: bipartite panel needs Size >= 2, got %d", p.Size)
	}
	kt := p.K
	kh := p.K / 2
	if kh < 2 {
		kh = 2
	}
	nTail := p.Size
	nHead := p.Size / 2

	t0 := time.Now()
	gen := sgen.NewZipfAttachment(1, 16, 2.5, 1.1, p.Seed)
	et, err := gen.RunBipartite(nTail, nHead)
	if err != nil {
		return nil, fmt.Errorf("exp: generating bipartite %s: %w", p.Label(), err)
	}
	genTime := time.Since(t0)

	truthT, err := blockLabels(nTail, kt)
	if err != nil {
		return nil, err
	}
	truthH, err := blockLabels(nHead, kh)
	if err != nil {
		return nil, err
	}
	target, err := match.EmpiricalBipartite(et, truthT, truthH, kt, kh)
	if err != nil {
		return nil, err
	}

	opt := match.DefaultOptions(p.Seed ^ 0x3)
	opt.Balance = !p.NoBalance
	opt.Window = p.Window
	opt.Workers = p.Workers
	t1 := time.Now()
	res, err := match.MatchBipartite(et, nTail, nHead, truthT, truthH, target, opt)
	if err != nil {
		return nil, fmt.Errorf("exp: MatchBipartite: %w", err)
	}
	matchTime := time.Since(t1)

	var l1 float64
	for i := range target.P {
		l1 += math.Abs(target.P[i] - res.Observed.P[i])
	}
	return &BipartiteResult{
		Panel: p, NTail: nTail, NHead: nHead, Edges: et.Len(),
		KT: kt, KH: kh, L1: l1,
		GenTime: genTime, MatchTime: matchTime,
	}, nil
}

// blockLabels lays out geometric group-size labels contiguously —
// both the ground truth and the property-table value frequencies.
func blockLabels(n int64, k int) ([]int64, error) {
	sizes, err := xrand.GroupSizes(n, k, 0.4)
	if err != nil {
		return nil, err
	}
	labels := make([]int64, n)
	idx := int64(0)
	for v, sz := range sizes {
		for c := int64(0); c < sz; c++ {
			labels[idx] = int64(v)
			idx++
		}
	}
	return labels, nil
}

// WriteBipartite renders bipartite panel results as a TSV summary.
func WriteBipartite(w io.Writer, rs []*BipartiteResult) error {
	if _, err := fmt.Fprintln(w, "panel\tntail\tnhead\tedges\tkt\tkh\tl1\tgen_ms\tmatch_ms"); err != nil {
		return err
	}
	for _, r := range rs {
		label := fmt.Sprintf("ZIPF(%s,%dx%d)", compact(r.NTail), r.KT, r.KH)
		if _, err := fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%.6f\t%.1f\t%.1f\n",
			label, r.NTail, r.NHead, r.Edges, r.KT, r.KH, r.L1,
			float64(r.GenTime.Microseconds())/1000, float64(r.MatchTime.Microseconds())/1000); err != nil {
			return err
		}
	}
	return nil
}
