package exp

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRunPanelLFRSmall(t *testing.T) {
	r, err := RunPanel(Panel{Generator: LFR, Size: 3000, K: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if r.Nodes != 3000 {
		t.Errorf("nodes = %d", r.Nodes)
	}
	if r.Edges <= 0 {
		t.Error("no edges")
	}
	// Paper's headline finding: on LFR the observed CDF tracks the
	// expected closely.
	if r.KS > 0.25 {
		t.Errorf("LFR KS = %v, want < 0.25", r.KS)
	}
	if r.L1 > 0.7 {
		t.Errorf("LFR L1 = %v, want < 0.7", r.L1)
	}
	// CDFs end at ~1.
	last := len(r.CDF.Expected) - 1
	if math.Abs(r.CDF.Expected[last]-1) > 1e-6 || math.Abs(r.CDF.Observed[last]-1) > 1e-6 {
		t.Error("CDFs do not end at 1")
	}
	// Number of pairs = k(k+1)/2.
	if len(r.CDF.Pairs) != 8*9/2 {
		t.Errorf("pairs = %d", len(r.CDF.Pairs))
	}
}

func TestRunPanelRMATSmall(t *testing.T) {
	r, err := RunPanel(Panel{Generator: RMAT, Size: 10, K: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if r.Nodes != 1024 {
		t.Errorf("nodes = %d", r.Nodes)
	}
	// The paper finds RMAT harder than LFR but the head of the
	// distribution (diagonal pairs) is still reproduced; sanity-bound
	// the distances rather than demand LFR-grade fidelity.
	if r.KS > 0.6 {
		t.Errorf("RMAT KS = %v, want < 0.6", r.KS)
	}
}

func TestLFRBeatsRMATShapeFinding(t *testing.T) {
	// Figure 3's qualitative result: LFR panels fit better than RMAT
	// panels at comparable scale. The gap only stabilises once groups
	// span multiple LFR communities, so this runs at ~30k nodes.
	if testing.Short() {
		t.Skip("moderate-scale comparison skipped in -short mode")
	}
	lfr, err := RunPanel(Panel{Generator: LFR, Size: 30000, K: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rmat, err := RunPanel(Panel{Generator: RMAT, Size: 15, K: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if lfr.L1 >= rmat.L1 {
		t.Errorf("expected LFR fit (L1=%v) better than RMAT (L1=%v)", lfr.L1, rmat.L1)
	}
}

func TestPanelLabels(t *testing.T) {
	if l := (Panel{Generator: LFR, Size: 10000, K: 16}).Label(); l != "LFR(10k,16)" {
		t.Errorf("label = %s", l)
	}
	if l := (Panel{Generator: LFR, Size: 1000000, K: 4}).Label(); l != "LFR(1M,4)" {
		t.Errorf("label = %s", l)
	}
	if l := (Panel{Generator: RMAT, Size: 22, K: 64}).Label(); l != "RMAT(22,64)" {
		t.Errorf("label = %s", l)
	}
	if l := (Panel{Generator: LFR, Size: 1234, K: 2}).Label(); l != "LFR(1234,2)" {
		t.Errorf("label = %s", l)
	}
}

func TestPanelValidation(t *testing.T) {
	if _, err := RunPanel(Panel{Generator: LFR, Size: 1000, K: 0}); err == nil {
		t.Error("K=0 should fail")
	}
	if _, err := RunPanel(Panel{Generator: "nope", Size: 100, K: 2}); err == nil {
		t.Error("unknown generator should fail")
	}
	if _, err := RunPanel(Panel{Generator: LFR, Size: 1000, K: 4, Order: "bogus"}); err == nil {
		t.Error("unknown order should fail")
	}
}

func TestFigurePanelSets(t *testing.T) {
	f3 := Figure3Panels(false)
	if len(f3) != 6 {
		t.Fatalf("figure 3 panels = %d", len(f3))
	}
	for _, p := range f3 {
		if p.K != 16 {
			t.Errorf("figure 3 panel %s has k=%d", p.Label(), p.K)
		}
	}
	f3full := Figure3Panels(true)
	if f3full[2].Size != 1000000 || f3full[5].Size != 22 {
		t.Error("full figure 3 sizes wrong")
	}
	f4 := Figure4Panels(false)
	if len(f4) != 6 {
		t.Fatalf("figure 4 panels = %d", len(f4))
	}
	ks := map[int]bool{}
	for _, p := range f4[:3] {
		ks[p.K] = true
	}
	if !ks[4] || !ks[16] || !ks[64] {
		t.Errorf("figure 4 LFR ks wrong: %v", ks)
	}
}

func TestWriteCDFAndSummary(t *testing.T) {
	r, err := RunPanel(Panel{Generator: LFR, Size: 2000, K: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCDF(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "expected_cdf") || !strings.Contains(out, "LFR(2k,4)") {
		t.Errorf("CDF TSV malformed:\n%s", out[:min(200, len(out))])
	}
	lines := strings.Count(out, "\n")
	if lines != 2+4*5/2 { // header + comment + 10 pairs
		t.Errorf("CDF TSV has %d lines", lines)
	}
	buf.Reset()
	if err := WriteSummaryRow(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "LFR(2k,4)") {
		t.Error("summary row missing label")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestSaveCDF(t *testing.T) {
	r, err := RunPanel(Panel{Generator: LFR, Size: 1000, K: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	path, err := SaveCDF(t.TempDir(), r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(path, "LFR_1k_4_.tsv") {
		t.Errorf("path = %s", path)
	}
}

func TestASCIICDF(t *testing.T) {
	r, err := RunPanel(Panel{Generator: LFR, Size: 1000, K: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ASCIICDF(&buf, r, 40, 10); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "\n") != 11 {
		t.Errorf("plot has wrong height:\n%s", buf.String())
	}
	if err := ASCIICDF(&buf, r, 2, 2); err == nil {
		t.Error("tiny plot should fail")
	}
}

func TestAblationOrders(t *testing.T) {
	base := Panel{Generator: LFR, Size: 2000, K: 8, Seed: 11}
	for _, order := range []string{"random", "bfs", "degree"} {
		p := base
		p.Order = order
		r, err := RunPanel(p)
		if err != nil {
			t.Fatalf("order %s: %v", order, err)
		}
		if r.L1 < 0 || r.L1 > 2 {
			t.Errorf("order %s: L1 = %v out of range", order, r.L1)
		}
	}
}

func TestAblationNoBalance(t *testing.T) {
	p := Panel{Generator: LFR, Size: 2000, K: 8, Seed: 11, NoBalance: true}
	r, err := RunPanel(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.L1 < 0 || r.L1 > 2 {
		t.Errorf("no-balance L1 = %v", r.L1)
	}
}

func TestMeasureCapabilities(t *testing.T) {
	caps, err := MeasureCapabilities(2000, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(caps) < 8 {
		t.Fatalf("capabilities = %d", len(caps))
	}
	failures := 0
	for _, c := range caps {
		if !c.Holds {
			failures++
			t.Logf("capability not held: %s %s (%s=%v)", c.System, c.Claim, c.Metric, c.Value)
		}
	}
	if failures > 1 {
		t.Errorf("%d capability checks failed", failures)
	}
	var buf bytes.Buffer
	if err := WriteCapabilities(&buf, caps); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "RMAT") {
		t.Error("capability table missing RMAT")
	}
}

func TestPaperTable1Static(t *testing.T) {
	tbl := PaperTable1()
	for _, want := range []string{"LDBC-SNB", "Myriad", "RMat", "LFR", "BTER", "Darwini", "DataSynth"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("paper table missing %s", want)
		}
	}
}

func TestRunTiming(t *testing.T) {
	pts, err := RunTiming([]int64{8, 9}, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Edges >= pts[1].Edges {
		t.Errorf("timing points wrong: %+v", pts)
	}
	var buf bytes.Buffer
	if err := WriteTiming(&buf, pts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "edges_per_second") {
		t.Error("timing table malformed")
	}
}

func TestDeterministicPanels(t *testing.T) {
	a, err := RunPanel(Panel{Generator: LFR, Size: 1500, K: 4, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPanel(Panel{Generator: LFR, Size: 1500, K: 4, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if a.L1 != b.L1 || a.KS != b.KS {
		t.Errorf("panel not deterministic: %v/%v vs %v/%v", a.L1, a.KS, b.L1, b.KS)
	}
}

func TestMuSweepShape(t *testing.T) {
	// The structure-sensitivity finding (see sweep.go): high mixing
	// makes the LDG-derived target nearly independent and therefore
	// *easier* to match, so L1 at µ=0.45 sits below L1 at µ=0.05.
	pts, err := RunMuSweep(3000, 8, []float64{0.05, 0.45}, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[1].L1 >= pts[0].L1 {
		t.Errorf("mu=0.45 L1 %v not below mu=0.05 L1 %v (uninformative targets are easy)", pts[1].L1, pts[0].L1)
	}
	var buf bytes.Buffer
	if err := WriteMuSweep(&buf, pts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mu\tL1") {
		t.Error("sweep TSV malformed")
	}
}

func TestPanelWithPasses(t *testing.T) {
	single, err := RunPanel(Panel{Generator: LFR, Size: 3000, K: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := RunPanel(Panel{Generator: LFR, Size: 3000, K: 8, Seed: 7, Passes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if refined.L1 >= single.L1 {
		t.Errorf("passes=2 L1 %v not below single-pass %v", refined.L1, single.L1)
	}
}
