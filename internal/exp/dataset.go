package exp

import (
	"fmt"

	"datasynth/internal/table"
)

// Dataset materialises the panel as an exportable table.Dataset: one
// node type carrying the matched value as an int column, a string tag
// column ("v<idx>") and a normalised float score, plus the generated
// edge table. This is what the export benchmarks and the eval CLI
// write to disk — a full-size dataset with every value kind a real
// schema produces, derived deterministically from the panel seed. The
// string column is named "tag", not "label": "label" is a reserved
// structural key in the JSONL connector, and the old name silently
// overwrote the row's type label there (now a hard error).
func (r *Result) Dataset() (*table.Dataset, error) {
	if r.Assign == nil || r.Table == nil {
		return nil, fmt.Errorf("exp: result of %s carries no assignment/table", r.Panel.Label())
	}
	n := r.Nodes
	k := r.Panel.K
	value := table.NewPropertyTable("Node.value", table.KindInt, n)
	label := table.NewPropertyTable("Node.tag", table.KindString, n)
	score := table.NewPropertyTable("Node.score", table.KindFloat, n)
	labels := make([]string, k)
	for v := 0; v < k; v++ {
		labels[v] = fmt.Sprintf("v%02d", v)
	}
	for id := int64(0); id < n; id++ {
		v := r.Assign[id]
		value.SetInt(id, v)
		label.SetString(id, labels[v])
		score.SetFloat(id, float64(v)/float64(k))
	}
	d := table.NewDataset()
	d.NodeCounts["Node"] = n
	d.NodeProps["Node"] = []*table.PropertyTable{value, label, score}
	d.Edges["edge"] = r.Table
	return d, nil
}
