package exp

import (
	"fmt"
	"io"

	"datasynth/internal/graph"
	"datasynth/internal/match"
	"datasynth/internal/sgen"
	"datasynth/internal/stats"
	"datasynth/internal/xrand"
)

// Structure-sensitivity sweep: the paper's future work asks for
// "understanding which is the relation between the graph structure and
// the provided joint probability distribution (i.e. in which
// situations the algorithm performs well and which does not)". This
// experiment varies LFR's mixing parameter µ — the knob that erodes
// community structure — and measures matching fidelity at fixed size
// and k, with the target joint derived from an LDG ground truth on the
// same graph (the paper's protocol).
//
// Measured answer (see EXPERIMENTS.md): fidelity *improves* as µ grows.
// The driver is not graph structure per se but how informative the
// target joint is: at high µ the LDG ground truth is nearly random, so
// the target approaches the independence joint, which any
// capacity-respecting assignment realises; at low µ the target is
// sharply structured and every cold-start misplacement costs mass.
// The hard regime is therefore a *structured target on a graph whose
// topology resists it* — which is exactly why RMAT panels (hub-heavy,
// weak blocks) fit worse than LFR panels in Figure 3.

// MuPoint is one row of the sweep.
type MuPoint struct {
	Mu float64
	L1 float64
	KS float64
}

// RunMuSweep measures matching fidelity across mixing parameters.
func RunMuSweep(n int64, k int, mus []float64, seed uint64) ([]MuPoint, error) {
	out := make([]MuPoint, 0, len(mus))
	for i, mu := range mus {
		lfr := sgen.NewLFR(seed + uint64(i))
		lfr.Mu = mu
		et, err := lfr.Run(n)
		if err != nil {
			return nil, fmt.Errorf("exp: mu=%v: %w", mu, err)
		}
		g, err := graph.FromEdgeTable(et, n)
		if err != nil {
			return nil, err
		}
		sizes, err := xrand.GroupSizes(n, k, 0.4)
		if err != nil {
			return nil, err
		}
		ldg, err := match.NewLDG(sizes)
		if err != nil {
			return nil, err
		}
		truth, err := ldg.Partition(g, match.RandomOrder(n, seed^1))
		if err != nil {
			return nil, err
		}
		expected, err := stats.EmpiricalJoint(et, truth, k)
		if err != nil {
			return nil, err
		}
		part, err := match.NewSBMPart(expected, sizes)
		if err != nil {
			return nil, err
		}
		part.Seed = seed ^ 3
		assign, err := part.Partition(g, match.RandomOrder(n, seed^2))
		if err != nil {
			return nil, err
		}
		observed, err := stats.EmpiricalJoint(et, assign, k)
		if err != nil {
			return nil, err
		}
		l1, err := stats.L1(expected, observed)
		if err != nil {
			return nil, err
		}
		cdf, err := stats.NewCDFPair(expected, observed)
		if err != nil {
			return nil, err
		}
		out = append(out, MuPoint{Mu: mu, L1: l1, KS: cdf.KS()})
	}
	return out, nil
}

// WriteMuSweep renders the sweep as TSV.
func WriteMuSweep(w io.Writer, pts []MuPoint) error {
	if _, err := fmt.Fprintln(w, "mu\tL1\tKS"); err != nil {
		return err
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(w, "%.2f\t%.4f\t%.4f\n", p.Mu, p.L1, p.KS); err != nil {
			return err
		}
	}
	return nil
}
