package exp

import (
	"fmt"
	"io"

	"datasynth/internal/graph"
	"datasynth/internal/match"
	"datasynth/internal/par"
	"datasynth/internal/sgen"
	"datasynth/internal/stats"
	"datasynth/internal/xrand"
)

// Structure-sensitivity sweep: the paper's future work asks for
// "understanding which is the relation between the graph structure and
// the provided joint probability distribution (i.e. in which
// situations the algorithm performs well and which does not)". This
// experiment varies LFR's mixing parameter µ — the knob that erodes
// community structure — and measures matching fidelity at fixed size
// and k, with the target joint derived from an LDG ground truth on the
// same graph (the paper's protocol).
//
// Measured answer (see EXPERIMENTS.md): fidelity *improves* as µ grows.
// The driver is not graph structure per se but how informative the
// target joint is: at high µ the LDG ground truth is nearly random, so
// the target approaches the independence joint, which any
// capacity-respecting assignment realises; at low µ the target is
// sharply structured and every cold-start misplacement costs mass.
// The hard regime is therefore a *structured target on a graph whose
// topology resists it* — which is exactly why RMAT panels (hub-heavy,
// weak blocks) fit worse than LFR panels in Figure 3.

// MuPoint is one row of the sweep.
type MuPoint struct {
	Mu float64
	L1 float64
	KS float64
}

// RunMuSweep measures matching fidelity across mixing parameters.
// Points are independent (each derives its randomness from seed and
// its index), so they fan out onto a bounded pool like figure panels
// do: workers <= 0 means NumCPU, 1 runs serially; the measured
// fidelity numbers are identical at every worker count.
func RunMuSweep(n int64, k int, mus []float64, seed uint64, workers int) ([]MuPoint, error) {
	out := make([]MuPoint, len(mus))
	err := par.ForEach(len(mus), workers, func(i int) error {
		pt, err := runMuPoint(n, k, mus[i], seed, i)
		if err != nil {
			return err
		}
		out[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// runMuPoint measures one sweep point.
func runMuPoint(n int64, k int, muParam float64, seed uint64, idx int) (MuPoint, error) {
	lfr := sgen.NewLFR(seed + uint64(idx))
	lfr.Mu = muParam
	et, err := lfr.Run(n)
	if err != nil {
		return MuPoint{}, fmt.Errorf("exp: mu=%v: %w", muParam, err)
	}
	g, err := graph.FromEdgeTable(et, n)
	if err != nil {
		return MuPoint{}, err
	}
	sizes, err := xrand.GroupSizes(n, k, 0.4)
	if err != nil {
		return MuPoint{}, err
	}
	ldg, err := match.NewLDG(sizes)
	if err != nil {
		return MuPoint{}, err
	}
	truth, err := ldg.Partition(g, match.RandomOrder(n, seed^1))
	if err != nil {
		return MuPoint{}, err
	}
	expected, err := stats.EmpiricalJoint(et, truth, k)
	if err != nil {
		return MuPoint{}, err
	}
	part, err := match.NewSBMPart(expected, sizes)
	if err != nil {
		return MuPoint{}, err
	}
	part.Seed = seed ^ 3
	assign, err := part.Partition(g, match.RandomOrder(n, seed^2))
	if err != nil {
		return MuPoint{}, err
	}
	observed, err := stats.EmpiricalJoint(et, assign, k)
	if err != nil {
		return MuPoint{}, err
	}
	l1, err := stats.L1(expected, observed)
	if err != nil {
		return MuPoint{}, err
	}
	cdf, err := stats.NewCDFPair(expected, observed)
	if err != nil {
		return MuPoint{}, err
	}
	return MuPoint{Mu: muParam, L1: l1, KS: cdf.KS()}, nil
}

// WriteMuSweep renders the sweep as TSV.
func WriteMuSweep(w io.Writer, pts []MuPoint) error {
	if _, err := fmt.Fprintln(w, "mu\tL1\tKS"); err != nil {
		return err
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(w, "%.2f\t%.4f\t%.4f\n", p.Mu, p.L1, p.KS); err != nil {
			return err
		}
	}
	return nil
}
