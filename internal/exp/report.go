package exp

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Reporting: TSV series per panel (one row per value pair, expected and
// observed CDFs — the exact data behind the paper's plots) and a
// summary table.

// WriteCDF writes the panel's paired CDFs as TSV: pair index, pair
// label, expected CDF, observed CDF.
func WriteCDF(w io.Writer, r *Result) error {
	if _, err := fmt.Fprintf(w, "# %s  nodes=%d edges=%d L1=%.4f KS=%.4f JS=%.4f\n",
		r.Panel.Label(), r.Nodes, r.Edges, r.L1, r.KS, r.JS); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "idx\tpair\texpected_cdf\tobserved_cdf"); err != nil {
		return err
	}
	for i, p := range r.CDF.Pairs {
		if _, err := fmt.Fprintf(w, "%d\t<%d,%d>\t%.6f\t%.6f\n",
			i, p.A, p.B, r.CDF.Expected[i], r.CDF.Observed[i]); err != nil {
			return err
		}
	}
	return nil
}

// SaveCDF writes the panel's CDF TSV into dir as <label>.tsv.
func SaveCDF(dir string, r *Result) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, sanitize(r.Panel.Label())+".tsv")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	err = WriteCDF(f, r)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return path, err
}

func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '(', ')', ',':
			out = append(out, '_')
		default:
			out = append(out, c)
		}
	}
	return string(out)
}

// SummaryHeader is the header row of WriteSummaryRow.
const SummaryHeader = "panel\tnodes\tedges\tk\tL1\tKS\tJS\tgen_s\tldg_s\tsbm_s"

// WriteSummaryRow writes one panel's summary line.
func WriteSummaryRow(w io.Writer, r *Result) error {
	_, err := fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.4f\t%.4f\t%.4f\t%.2f\t%.2f\t%.2f\n",
		r.Panel.Label(), r.Nodes, r.Edges, r.Panel.K, r.L1, r.KS, r.JS,
		r.GenTime.Seconds(), r.LDGTime.Seconds(), r.SBMTime.Seconds())
	return err
}

// ASCIICDF renders a coarse terminal plot of the two CDFs, the closest
// a CLI gets to the paper's figure panels.
func ASCIICDF(w io.Writer, r *Result, width, height int) error {
	if width < 8 || height < 4 {
		return fmt.Errorf("exp: plot too small")
	}
	n := len(r.CDF.Expected)
	if n == 0 {
		return fmt.Errorf("exp: empty CDF")
	}
	grid := make([][]byte, height)
	for y := range grid {
		grid[y] = make([]byte, width)
		for x := range grid[y] {
			grid[y][x] = ' '
		}
	}
	plot := func(vals []float64, mark byte) {
		for x := 0; x < width; x++ {
			i := x * (n - 1) / max(1, width-1)
			v := vals[i]
			y := height - 1 - int(v*float64(height-1)+0.5)
			if y < 0 {
				y = 0
			}
			if y >= height {
				y = height - 1
			}
			if grid[y][x] == ' ' || grid[y][x] == mark {
				grid[y][x] = mark
			} else {
				grid[y][x] = '*' // overlap
			}
		}
	}
	plot(r.CDF.Expected, 'E')
	plot(r.CDF.Observed, 'o')
	if _, err := fmt.Fprintf(w, "%s  (E=expected, o=observed, *=overlap)\n", r.Panel.Label()); err != nil {
		return err
	}
	for _, row := range grid {
		if _, err := fmt.Fprintf(w, "|%s|\n", string(row)); err != nil {
			return err
		}
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
