package exp

import (
	"fmt"
	"io"
	"math"
	"time"

	"datasynth/internal/graph"
	"datasynth/internal/sgen"
	"datasynth/internal/table"
)

// Table 1 of the paper is a qualitative capability matrix of existing
// generators. Reproducing a qualitative table means two things here:
// (a) printing the paper's matrix verbatim for reference, and
// (b) *measuring* the capabilities of the generators this repository
// implements, so every claimed cell is backed by an observation
// (power-law degrees for RMAT, communities for LFR, per-degree
// clustering for BTER, schema/property flexibility for DataSynth
// itself).

// PaperTable1 returns the related-work matrix exactly as printed in the
// paper (rows: generator; columns: capability marks).
func PaperTable1() string {
	return `Generator   | NodeTyp EdgeTyp NodeProp EdgeProp Cardinality | Structure  | PropDist PropStructCorr | ScaleN ScaleE ScaleNE | Scalable Language Integrable
LDBC-SNB    |    x                                               | dd, cc     |    x          x         |                   x   |    x
Myriad      |    x              x                 1-1 & 1-*      | dd         |    x                    |    x                  |    x        x
RMat        |                                                    | pl dd      |                         |    x                  |    x
LFR         |                                                    | pl dd, c   |                         |    x                  |
BTER        |                                                    | dd, accd   |                         |    x                  |    x
Darwini     |                                                    | dd, ccdd   |                         |    x                  |    x
DataSynth   |    x       x      x        x        all            | pluggable  |    x          x         |    x      x       x   |    x        x        x`
}

// Capability is one measured cell of our implementation matrix.
type Capability struct {
	System  string
	Claim   string
	Metric  string
	Value   float64
	Holds   bool
	Elapsed time.Duration
}

// MeasureCapabilities runs every structure generator at size n and
// verifies its signature structural claims with the graph toolkit.
func MeasureCapabilities(n int64, seed uint64) ([]Capability, error) {
	var out []Capability
	add := func(system, claim, metric string, value float64, holds bool, d time.Duration) {
		out = append(out, Capability{System: system, Claim: claim, Metric: metric, Value: value, Holds: holds, Elapsed: d})
	}

	// RMAT: power-law (heavy-tailed) degree distribution.
	t0 := time.Now()
	et, err := sgen.NewRMAT(seed).Run(n)
	if err != nil {
		return nil, err
	}
	g, err := graph.FromEdgeTable(et, n)
	if err != nil {
		return nil, err
	}
	gini := g.GiniDegree()
	add("RMAT", "power-law degree distribution", "degree Gini", gini, gini > 0.35, time.Since(t0))

	// LFR: power-law degrees + communities.
	t0 = time.Now()
	lfr := sgen.NewLFR(seed)
	et, err = lfr.Run(n)
	if err != nil {
		return nil, err
	}
	g, err = graph.FromEdgeTable(et, n)
	if err != nil {
		return nil, err
	}
	q := g.Modularity(lfr.Communities())
	add("LFR", "configurable communities", "ground-truth modularity", q, q > 0.5, time.Since(t0))
	mu := g.MixingFraction(lfr.Communities())
	add("LFR", "mixing parameter control (mu=0.1)", "empirical mixing", mu, math.Abs(mu-0.1) < 0.08, 0)

	// BTER: degree distribution + average clustering per degree.
	t0 = time.Now()
	bter, err := sgen.NewBTERPowerLaw(n, 2, 40, 2.0, seed)
	if err != nil {
		return nil, err
	}
	et, err = bter.Run(n)
	if err != nil {
		return nil, err
	}
	g, err = graph.FromEdgeTable(et, n)
	if err != nil {
		return nil, err
	}
	cc := g.AvgClustering(2000, seed)
	add("BTER", "clustering coefficient control", "avg clustering", cc, cc > 0.1, time.Since(t0))
	gini = g.GiniDegree()
	add("BTER", "degree distribution control", "degree Gini", gini, gini > 0.2, 0)

	// Erdős–Rényi: the null model — near-zero clustering.
	t0 = time.Now()
	er := sgen.NewErdosRenyi(8, seed)
	et, err = er.Run(n)
	if err != nil {
		return nil, err
	}
	g, err = graph.FromEdgeTable(et, n)
	if err != nil {
		return nil, err
	}
	cc = g.AvgClustering(2000, seed)
	add("Erdős–Rényi", "uncorrelated null model", "avg clustering", cc, cc < 0.05, time.Since(t0))

	// Barabási–Albert: scale-free, connected.
	t0 = time.Now()
	ba := sgen.NewBarabasiAlbert(4, seed)
	et, err = ba.Run(n)
	if err != nil {
		return nil, err
	}
	g, err = graph.FromEdgeTable(et, n)
	if err != nil {
		return nil, err
	}
	frac := g.LargestComponentFraction()
	add("Barabási–Albert", "connected scale-free graph", "largest component fraction", frac, frac > 0.99, time.Since(t0))

	// Watts–Strogatz: small world (high clustering, short paths).
	t0 = time.Now()
	ws := sgen.NewWattsStrogatz(5, 0.1, seed)
	et, err = ws.Run(n)
	if err != nil {
		return nil, err
	}
	g, err = graph.FromEdgeTable(et, n)
	if err != nil {
		return nil, err
	}
	cc = g.AvgClustering(2000, seed)
	diam := float64(g.ApproxDiameter(2, seed))
	add("Watts–Strogatz", "small-world clustering", "avg clustering", cc, cc > 0.3, time.Since(t0))
	add("Watts–Strogatz", "small-world diameter", "approx diameter", diam, diam < float64(n)/20, 0)

	// PowerLawOut: 1→* cardinality with dense fresh heads.
	t0 = time.Now()
	plo := sgen.NewPowerLawOut(1, 10, 2.0, seed)
	bip, err := plo.RunBipartite(n/10, -1)
	if err != nil {
		return nil, err
	}
	dense := bip.MaxNode() >= bip.Len() // heads dense [0, m)
	add("DataSynth", "1→* cardinality (fresh heads)", "head density", boolVal(dense), dense, time.Since(t0))
	return out, nil
}

func boolVal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// WriteCapabilities renders the measured matrix.
func WriteCapabilities(w io.Writer, caps []Capability) error {
	if _, err := fmt.Fprintln(w, "system\tclaim\tmetric\tvalue\tholds\tseconds"); err != nil {
		return err
	}
	for _, c := range caps {
		if _, err := fmt.Fprintf(w, "%s\t%s\t%s\t%.4f\t%v\t%.2f\n",
			c.System, c.Claim, c.Metric, c.Value, c.Holds, c.Elapsed.Seconds()); err != nil {
			return err
		}
	}
	return nil
}

// TimingPoint is one row of the timing experiment: SBM-Part wall time
// as a function of problem size, mirroring the paper's single-thread
// measurement ("it takes about 1100s to process the largest problem,
// RMAT-22 (with 67M of edges) and 64 values").
type TimingPoint struct {
	Label   string
	Edges   int64
	K       int
	Seconds float64
}

// RunTiming measures SBM-Part wall time across RMAT scales with k=64
// values (the paper's hardest configuration shape). Workers is pinned
// to 1 so the panels really are the single-stream, single-thread runs
// the paper's ~1100 s reference describes, whatever the host's CPU
// count.
func RunTiming(scales []int64, k int, seed uint64) ([]TimingPoint, error) {
	var out []TimingPoint
	for _, s := range scales {
		r, err := RunPanel(Panel{Generator: RMAT, Size: s, K: k, Seed: seed + uint64(s), Workers: 1})
		if err != nil {
			return nil, err
		}
		out = append(out, TimingPoint{
			Label:   r.Panel.Label(),
			Edges:   r.Edges,
			K:       k,
			Seconds: r.SBMTime.Seconds(),
		})
	}
	return out, nil
}

// WriteTiming renders the timing table.
func WriteTiming(w io.Writer, pts []TimingPoint) error {
	if _, err := fmt.Fprintln(w, "config\tedges\tk\tsbm_seconds\tedges_per_second"); err != nil {
		return err
	}
	for _, p := range pts {
		eps := float64(p.Edges) / p.Seconds
		if _, err := fmt.Fprintf(w, "%s\t%d\t%d\t%.2f\t%.0f\n", p.Label, p.Edges, p.K, p.Seconds, eps); err != nil {
			return err
		}
	}
	return nil
}

// Ensure table import stays (EdgeTable appears in signatures via sgen).
var _ = table.NewEdgeTable
