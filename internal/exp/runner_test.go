package exp

import (
	"bytes"
	"strings"
	"testing"

	"datasynth/internal/table"
)

// cdfBytes renders a result's full CDF series — the exact artifact the
// eval CLI writes to disk — so equality below is byte equality of the
// output files, not just metric equality.
func cdfBytes(t *testing.T, r *Result) string {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteCDF(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

var runnerPanels = []Panel{
	{Generator: LFR, Size: 2000, K: 4, Seed: 31},
	{Generator: LFR, Size: 1500, K: 8, Seed: 32},
	{Generator: RMAT, Size: 10, K: 4, Seed: 33},
	{Generator: RMAT, Size: 9, K: 8, Seed: 34},
	{Generator: LFR, Size: 1000, K: 2, Seed: 35},
}

// TestRunPanelsMatchesSerial is the panel-level determinism contract:
// the pooled runner must stream results identical to the serial
// RunPanel loop — same artifacts, same submission order — at every
// worker count.
func TestRunPanelsMatchesSerial(t *testing.T) {
	want := make([]string, len(runnerPanels))
	for i, p := range runnerPanels {
		r, err := RunPanel(p)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = cdfBytes(t, r)
	}
	for _, workers := range []int{0, 1, 2, 4, 16} {
		var got []string
		err := RunPanels(runnerPanels, workers, func(r *Result) error {
			got = append(got, cdfBytes(t, r))
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("workers=%d: panel %d (%s) artifact differs from serial run",
					workers, i, runnerPanels[i].Label())
			}
		}
	}
}

// TestRunPanelsError: a failing panel aborts the stream at its
// submission position, like the serial loop; earlier panels still
// emit, later ones never reach the callback, and nothing deadlocks.
func TestRunPanelsError(t *testing.T) {
	panels := []Panel{
		{Generator: LFR, Size: 1000, K: 4, Seed: 1},
		{Generator: LFR, Size: 1000, K: 0, Seed: 2}, // invalid: K < 1
		{Generator: LFR, Size: 1000, K: 4, Seed: 3},
	}
	var emitted int
	err := RunPanels(panels, 4, func(r *Result) error {
		emitted++
		return nil
	})
	if err == nil {
		t.Fatal("invalid panel did not fail")
	}
	if !strings.Contains(err.Error(), panels[1].Label()) {
		t.Errorf("error %v does not name the failing panel", err)
	}
	if emitted != 1 {
		t.Errorf("emitted %d results before the failure, want 1", emitted)
	}
}

// TestRunPanelsEmitError: the consumer can abort the stream.
func TestRunPanelsEmitError(t *testing.T) {
	var emitted int
	err := RunPanels(runnerPanels[:3], 2, func(r *Result) error {
		emitted++
		if emitted == 2 {
			return errStop
		}
		return nil
	})
	if err != errStop {
		t.Fatalf("err = %v, want errStop", err)
	}
	if emitted != 2 {
		t.Errorf("emitted = %d, want 2", emitted)
	}
}

var errStop = &stopError{}

type stopError struct{}

func (*stopError) Error() string { return "stop" }

func TestCollectPanels(t *testing.T) {
	rs, err := CollectPanels(runnerPanels[:2], 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("collected %d results", len(rs))
	}
	for i, r := range rs {
		if r.Panel.Seed != runnerPanels[i].Seed {
			t.Errorf("result %d out of order (seed %d)", i, r.Panel.Seed)
		}
	}
	if _, err := CollectPanels(nil, 3); err != nil {
		t.Errorf("empty panel list: %v", err)
	}
}

// TestResultDataset: the plumbed-through assignment and edge table
// materialise as a coherent dataset.
func TestResultDataset(t *testing.T) {
	r, err := RunPanel(Panel{Generator: LFR, Size: 1200, K: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	d, err := r.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if d.NodeCounts["Node"] != 1200 {
		t.Errorf("node count = %d", d.NodeCounts["Node"])
	}
	if got := d.Edges["edge"].Len(); got != r.Edges {
		t.Errorf("edge count = %d, want %d", got, r.Edges)
	}
	props := d.NodeProps["Node"]
	if len(props) != 3 {
		t.Fatalf("props = %d", len(props))
	}
	value, label, score := props[0], props[1], props[2]
	for id := int64(0); id < 1200; id++ {
		v := value.Int(id)
		if v != r.Assign[id] {
			t.Fatalf("row %d: value %d, assign %d", id, v, r.Assign[id])
		}
		if want := "v0" + string('0'+byte(v)); label.String(id) != want {
			t.Fatalf("row %d: label %q, want %q", id, label.String(id), want)
		}
		if score.Float(id) != float64(v)/4 {
			t.Fatalf("row %d: score %v", id, score.Float(id))
		}
	}
	if _, err := (&Result{}).Dataset(); err == nil {
		t.Error("dataset from empty result should fail")
	}

	// The panel dataset must survive a columnar round trip under its
	// own keys, even though the edge table's internal Name is the
	// generator's.
	dir := t.TempDir()
	if err := d.WriteDirColumnar(dir); err != nil {
		t.Fatal(err)
	}
	back, err := table.OpenColumnar(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.NodeCounts["Node"] != 1200 {
		t.Errorf("round-trip node count = %d", back.NodeCounts["Node"])
	}
	if back.Edges["edge"] == nil || back.Edges["edge"].Len() != r.Edges {
		t.Errorf("round trip lost the edge table under its dataset key")
	}
}
