package sgen

import (
	"runtime"
	"testing"

	"datasynth/internal/table"
)

// TestLFRWorkerCountByteIdentical: sharded intra-community wiring must
// produce the same edge table no matter how many workers drain the
// shard queue — per-community RNG streams plus community-ordered
// assembly make the output a pure function of the seed.
func TestLFRWorkerCountByteIdentical(t *testing.T) {
	run := func(workers int) *table.EdgeTable {
		l := NewLFR(11)
		l.Workers = workers
		et, err := l.Run(3000)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return et
	}
	ref := run(1)
	if ref.Len() == 0 {
		t.Fatal("no edges")
	}
	for _, w := range []int{2, 4, runtime.NumCPU()} {
		got := run(w)
		if got.Len() != ref.Len() {
			t.Fatalf("workers=%d: %d edges, serial %d", w, got.Len(), ref.Len())
		}
		for i := range ref.Tail {
			if ref.Tail[i] != got.Tail[i] || ref.Head[i] != got.Head[i] {
				t.Fatalf("workers=%d: edge %d is (%d,%d), serial (%d,%d)",
					w, i, got.Tail[i], got.Head[i], ref.Tail[i], ref.Head[i])
			}
		}
	}
}

// TestLFRShardedLargeCommunityWorkers: the oversized-community fallback
// (sorted-key dedup) must also be worker-count invariant.
func TestLFRShardedLargeCommunityWorkers(t *testing.T) {
	run := func(workers int) *table.EdgeTable {
		l := NewLFR(5)
		l.MinCommunity = 2100
		l.MaxCommunity = 2200
		l.Workers = workers
		et, err := l.Run(4300)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return et
	}
	ref := run(1)
	got := run(4)
	if got.Len() != ref.Len() {
		t.Fatalf("%d edges vs serial %d", got.Len(), ref.Len())
	}
	for i := range ref.Tail {
		if ref.Tail[i] != got.Tail[i] || ref.Head[i] != got.Head[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}
