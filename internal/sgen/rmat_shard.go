package sgen

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"datasynth/internal/par"
	"datasynth/internal/table"
	"datasynth/internal/xrand"
)

// Sharded RMAT generation. The serial generator drew edges one at a
// time through a per-level addressable-RNG loop and deduped through a
// map[uint64]struct{} — the last fully serial hot path in the
// codebase. This implementation applies the LFR sharding contract to
// RMAT:
//
//   - Edge draws happen in rounds. A round partitions its draw budget
//     into fixed-size shards; shard s of round r fills the disjoint
//     slab range [s·shardSize, (s+1)·shardSize) with quadrant-recursion
//     draws from its own RNG stream, derived as
//     NewStream(seed).DeriveStream("rmat.shard").DeriveN(r<<20|s).
//     Shards can run on any number of workers in any order — the slab
//     content is a pure function of (seed, round, shard).
//   - After the slab is full, one sequential pass resolves it in slab
//     order: out-of-range endpoints (cycle-walk for non-power-of-two n)
//     and — unless KeepDuplicates — self-loops and duplicate edges are
//     rejected through the LFR-style radix sort-and-compact dedup, and
//     the survivors append to the edge table in slab order.
//   - Rounds refill deterministically: the next round's draw budget is
//     a function of how many edges are still missing, which is itself
//     deterministic, so the final edge table is byte-identical at
//     every worker count.
//
// Randomness per draw is one sequential splitmix64 value per recursion
// level (xrand.Seq: one mix64 per draw), versus two mix rounds plus
// index arithmetic for the old addressable path; the Noise branch is
// resolved once per shard instead of once per level.

const (
	// rmatShardSize is the draw count of one shard — small enough to
	// load-balance a round across workers, large enough that the
	// per-shard stream derivation is noise.
	rmatShardSize = 1 << 16
	// rmatMaxRoundDraws caps one round's slab so dedup scratch and slab
	// memory stay bounded (two int64 slices of at most 4M entries);
	// larger targets simply take more rounds.
	rmatMaxRoundDraws = 1 << 22
	// rmatMaxDryRounds bounds consecutive zero-progress rounds before
	// generation gives up (the graph cannot absorb more distinct edges).
	rmatMaxDryRounds = 8
	// rmatMaxRounds is an absolute backstop against pathological
	// parameters (m close to the densest possible graph).
	rmatMaxRounds = 1000
)

// rmatAliasLevels is the number of recursion levels one alias-table
// draw resolves: 4 levels = 256 outcomes, so the outcome index fits a
// byte and both tables stay L1-resident.
const rmatAliasLevels = 4

// rmatAlias samples whole blocks of quadrant-recursion levels with one
// RNG draw each, via Walker/Vose alias tables. The naive inner loop
// pays one RNG draw plus an unpredictable three-way float comparison
// per level; the alias path folds rmatAliasLevels levels into a single
// draw resolved by one table lookup and one compare. A scale-s draw
// costs ⌈s/4⌉ RNG values instead of s.
//
// Each 64-bit draw splits into a table index (top bits) and a 56-bit
// fraction compared against the entry's threshold — outcome
// probabilities are exact to 2^-56. Only the noiseless path can use
// this: Noise perturbs the quadrant probabilities per level, which
// defeats precomputation.
type rmatAlias struct {
	blocks int // full rmatAliasLevels-level blocks per draw
	thresh []uint64
	alias  []uint16
	nib    []uint8 // packed tail/head bit patterns: tN<<4 | hN

	rem       uint // leftover levels (scale % rmatAliasLevels)
	remThresh []uint64
	remAlias  []uint16
	remNib    []uint8
}

func newRMATAlias(a, b, c, d float64, scale uint) *rmatAlias {
	p := [4]float64{a, b, c, d}
	al := &rmatAlias{blocks: int(scale / rmatAliasLevels), rem: scale % rmatAliasLevels}
	if al.blocks > 0 {
		al.thresh, al.alias, al.nib = buildRMATAlias(p, rmatAliasLevels)
	}
	if al.rem > 0 {
		al.remThresh, al.remAlias, al.remNib = buildRMATAlias(p, al.rem)
	}
	return al
}

// rmatFracOne is the threshold scale: fractions are 56-bit, so a
// threshold of 1<<56 accepts every draw.
const rmatFracOne = uint64(1) << 56

// buildRMATAlias constructs the alias table over all 4^levels outcomes
// of a `levels`-deep quadrant recursion. Outcome o encodes one
// quadrant choice per level, two bits each, highest level first;
// quadrant bits are (tailBit<<1 | headBit), so the packed nibbles can
// be or-shifted directly into the accumulating edge endpoints.
func buildRMATAlias(p [4]float64, levels uint) (thresh []uint64, alias []uint16, nib []uint8) {
	n := 1 << (2 * levels)
	scaled := make([]float64, n)
	nib = make([]uint8, n)
	var total float64
	for o := 0; o < n; o++ {
		pr := 1.0
		var tN, hN uint8
		for l := uint(0); l < levels; l++ {
			q := (o >> (2 * (levels - 1 - l))) & 3
			pr *= p[q]
			tN = tN<<1 | uint8(q>>1)
			hN = hN<<1 | uint8(q&1)
		}
		scaled[o] = pr
		nib[o] = tN<<4 | hN
		total += pr
	}
	// Vose's stable two-worklist construction over p·n/total.
	thresh = make([]uint64, n)
	alias = make([]uint16, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for o := 0; o < n; o++ {
		scaled[o] *= float64(n) / total
		if scaled[o] < 1 {
			small = append(small, o)
		} else {
			large = append(large, o)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		large = large[:len(large)-1]
		thresh[s] = uint64(scaled[s] * float64(rmatFracOne))
		alias[s] = uint16(g)
		scaled[g] += scaled[s] - 1
		if scaled[g] < 1 {
			small = append(small, g)
		} else {
			large = append(large, g)
		}
	}
	// Leftovers (either list, from float residue) keep their own slot.
	for _, o := range large {
		thresh[o] = rmatFracOne
	}
	for _, o := range small {
		thresh[o] = rmatFracOne
	}
	return thresh, alias, nib
}

// rmatStats is one Run's sharding telemetry, surfaced via RunNote.
type rmatStats struct {
	rounds  int
	draws   int64
	edges   int64
	workers int
}

// RunNote implements Noter: a one-line telemetry note about the last
// Run for the engine's timing report.
func (r *RMAT) RunNote() string {
	st := r.lastStats
	if st.edges == 0 {
		return ""
	}
	return fmt.Sprintf("rmat %d rounds, %.2f draws/edge, %d workers",
		st.rounds, float64(st.draws)/float64(st.edges), st.workers)
}

// runSharded generates m = EdgeFactor·n edges in sharded rounds.
func (r *RMAT) runSharded(n int64) (*table.EdgeTable, error) {
	scale := scaleFor(n)
	m := r.EdgeFactor * n
	et := table.NewEdgeTable("rmat", m)
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	base := xrand.NewStream(r.Seed).DeriveStream("rmat.shard")
	var dd *edgeDedup
	if !r.KeepDuplicates {
		dd = newEdgeDedup(m)
	}
	var al *rmatAlias
	if r.Noise == 0 {
		al = newRMATAlias(r.A, r.B, r.C, r.D, scale)
	}

	// The hot configuration — noiseless with dedup — draws straight
	// into a single packed-key slab; the other combinations go through
	// the two-array (tail, head) slab.
	packed := al != nil && !r.KeepDuplicates
	var slab []uint64
	var slabT, slabH []int64
	dry := 0
	r.lastStats = rmatStats{workers: workers}
	for round := 0; et.Len() < m; round++ {
		if round >= rmatMaxRounds {
			return nil, fmt.Errorf("sgen: RMAT stalled after %d rounds (%d/%d edges); the requested density is unreachable", round, et.Len(), m)
		}
		need := m - et.Len()
		draws := rmatRoundDraws(round, need)
		before := et.Len()
		if packed {
			if cap(slab) < int(draws) {
				slab = make([]uint64, draws)
			}
			slab = slab[:draws]
			r.fillSlabPacked(base, round, slab, al, workers)
			dd.appendDedupedPacked(et, slab, n, need)
		} else {
			if cap(slabT) < int(draws) {
				slabT = make([]int64, draws)
				slabH = make([]int64, draws)
			}
			slabT, slabH = slabT[:draws], slabH[:draws]
			r.fillSlab(base, round, slabT, slabH, scale, al, workers)
			if r.KeepDuplicates {
				rmatAppendInRange(et, slabT, slabH, n, need)
			} else {
				dd.appendDeduped(et, slabT, slabH, n, need)
			}
		}
		r.lastStats.rounds = round + 1
		r.lastStats.draws += draws
		if et.Len() == before {
			if dry++; dry >= rmatMaxDryRounds {
				return nil, fmt.Errorf("sgen: RMAT made no progress for %d rounds (%d/%d edges); the requested density is unreachable", dry, et.Len(), m)
			}
		} else {
			dry = 0
		}
	}
	r.lastStats.edges = m
	return et, nil
}

// rmatRoundDraws sizes a round's slab: the first round oversamples the
// full target slightly (duplicates and out-of-range endpoints are rare
// at Graph500 defaults), refill rounds double the missing count
// (failures concentrate on hub collisions and cycle-walked ids, so the
// per-candidate failure odds are higher the second time around). The
// budget is a pure function of (round, need), which keeps the round
// sequence — and therefore the output — independent of the worker
// count.
func rmatRoundDraws(round int, need int64) int64 {
	var draws int64
	if round == 0 {
		draws = need + need/8 + 256
	} else {
		draws = 2*need + 256
	}
	if draws > rmatMaxRoundDraws {
		draws = rmatMaxRoundDraws
	}
	return draws
}

// shardStream derives the one independent sequential stream of a
// (round, shard) pair. Rounds stay below rmatMaxRounds and shards
// below 2^20 per round, so the derivation key never collides.
func shardStream(base xrand.Stream, round, s int) xrand.Seq {
	return *xrand.NewSeq(base.DeriveN(uint64(round)<<20 | uint64(s)).Seed())
}

// shardLoop runs fill(s) for every shard of a draws-sized round on up
// to `workers` goroutines. Shard s owns the slab range
// [s·shardSize, (s+1)·shardSize), so shards never contend and
// completion order is irrelevant.
func shardLoop(draws int64, workers int, fill func(s int, lo, hi int64)) {
	nShards := int((draws + rmatShardSize - 1) / rmatShardSize)
	run := func(s int) {
		lo := int64(s) * rmatShardSize
		hi := lo + rmatShardSize
		if hi > draws {
			hi = draws
		}
		fill(s, lo, hi)
	}
	if workers > nShards {
		workers = nShards
	}
	if workers <= 1 {
		for s := 0; s < nShards; s++ {
			run(s)
		}
		return
	}
	var next atomic.Int64
	par.Workers(workers, func(int) {
		for {
			s := int(next.Add(1) - 1)
			if s >= nShards {
				return
			}
			run(s)
		}
	})
}

// fillSlab fills one round's two-array slab (Noise or KeepDuplicates
// configurations).
func (r *RMAT) fillSlab(base xrand.Stream, round int, slabT, slabH []int64, scale uint, al *rmatAlias, workers int) {
	shardLoop(int64(len(slabT)), workers, func(s int, lo, hi int64) {
		q := shardStream(base, round, s)
		if al != nil {
			drawShardAlias(&q, slabT[lo:hi], slabH[lo:hi], al)
		} else {
			r.drawShard(&q, slabT[lo:hi], slabH[lo:hi], scale)
		}
	})
}

// fillSlabPacked fills one round's packed-key slab (the noiseless
// dedup fast path).
func (r *RMAT) fillSlabPacked(base xrand.Stream, round int, slab []uint64, al *rmatAlias, workers int) {
	shardLoop(int64(len(slab)), workers, func(s int, lo, hi int64) {
		q := shardStream(base, round, s)
		drawShardAliasPacked(&q, slab[lo:hi], al)
	})
}

// drawShardAlias fills one shard's slab range via the alias tables:
// one RNG draw per rmatAliasLevels levels, the remainder block (if
// any) first so full blocks run back to back.
func drawShardAlias(q *xrand.Seq, tails, heads []int64, al *rmatAlias) {
	for i := range tails {
		var t, h int64
		if al.rem > 0 {
			v := q.U64()
			idx := v >> (64 - 2*al.rem)
			frac := (v << (2 * al.rem)) >> 8
			o := int(al.remAlias[idx])
			if frac < al.remThresh[idx] {
				o = int(idx)
			}
			nb := al.remNib[o]
			t = int64(nb >> 4)
			h = int64(nb & 0xf)
		}
		for b := 0; b < al.blocks; b++ {
			v := q.U64()
			idx := v >> 56
			frac := v & (rmatFracOne - 1)
			o := int(al.alias[idx])
			if frac < al.thresh[idx] {
				o = int(idx)
			}
			nb := al.nib[o]
			t = t<<4 | int64(nb>>4)
			h = h<<4 | int64(nb&0xf)
		}
		tails[i], heads[i] = t, h
	}
}

// drawShardAliasPacked is drawShardAlias emitting packed
// (min<<32|max) candidate keys, the exact shape the dedup pass
// consumes — self-loops stay detectable as min == max. The alias
// select and the endpoint swap are branchless: at Graph500 skew both
// outcomes are near coin flips, and a mispredict costs more than the
// mask arithmetic.
func drawShardAliasPacked(q *xrand.Seq, slab []uint64, al *rmatAlias) {
	for i := range slab {
		var t, h int64
		if al.rem > 0 {
			v := q.U64()
			idx := v >> (64 - 2*al.rem)
			frac := (v << (2 * al.rem)) >> 8
			diff := int64(frac) - int64(al.remThresh[idx])
			mask := uint64(diff >> 63)
			o := int(idx&mask | uint64(al.remAlias[idx])&^mask)
			nb := al.remNib[o]
			t = int64(nb >> 4)
			h = int64(nb & 0xf)
		}
		for b := 0; b < al.blocks; b++ {
			v := q.U64()
			idx := v >> 56
			frac := v & (rmatFracOne - 1)
			diff := int64(frac) - int64(al.thresh[idx])
			mask := uint64(diff >> 63)
			o := int(idx&mask | uint64(al.alias[idx])&^mask)
			nb := al.nib[o]
			t = t<<4 | int64(nb>>4)
			h = h<<4 | int64(nb&0xf)
		}
		lo, hi := t, h
		if lo > hi {
			lo, hi = hi, lo
		}
		slab[i] = uint64(lo)<<32 | uint64(hi)
	}
}

// drawShard fills one shard's slab range with per-level
// quadrant-recursion draws — the Noise path, where the quadrant
// probabilities change at every level and the alias tables cannot
// apply. The noiseless branch is kept as the reference implementation
// the alias path is property-tested against.
func (r *RMAT) drawShard(q *xrand.Seq, tails, heads []int64, scale uint) {
	if r.Noise > 0 {
		a, b, c := r.A, r.B, r.C
		for i := range tails {
			var t, h int64
			for level := scale; level > 0; level-- {
				u := q.Float64()
				// Symmetric noise keeps expectation fixed.
				nz := (q.Float64() - 0.5) * 2 * r.Noise
				al := a + a*nz
				bl := b - b*nz/2
				cl := c - c*nz/2
				bit := int64(1) << (level - 1)
				switch {
				case u < al:
					// quadrant (0,0): nothing to add
				case u < al+bl:
					h |= bit
				case u < al+bl+cl:
					t |= bit
				default:
					t |= bit
					h |= bit
				}
			}
			tails[i], heads[i] = t, h
		}
		return
	}
	a, ab, abc := r.A, r.A+r.B, r.A+r.B+r.C
	for i := range tails {
		var t, h int64
		for level := scale; level > 0; level-- {
			u := q.Float64()
			bit := int64(1) << (level - 1)
			switch {
			case u < a:
				// quadrant (0,0): nothing to add
			case u < ab:
				h |= bit
			case u < abc:
				t |= bit
			default:
				t |= bit
				h |= bit
			}
		}
		tails[i], heads[i] = t, h
	}
}

// rmatAppendInRange resolves a KeepDuplicates round: candidates append
// in slab order, skipping only endpoints outside [0, n) (the
// cycle-walk for non-power-of-two n), up to limit edges.
func rmatAppendInRange(et *table.EdgeTable, tails, heads []int64, n, limit int64) {
	for i := range tails {
		if limit == 0 {
			return
		}
		t, h := tails[i], heads[i]
		if t >= n || h >= n {
			continue
		}
		et.Add(t, h)
		limit--
	}
}

// appendDeduped resolves one deduped round: candidates
// (tails[i], heads[i]) with self-loops and endpoints outside [0, n)
// dropped are canonicalised to (min, max), and the distinct keys not
// yet in the accepted set — duplicates within the round or against any
// earlier round lose — append to et in sorted key order, at most limit
// of them. Sorted-order emission is what makes the round cheap: the
// radix pass needs no index payload and no per-candidate winner flags,
// and any fixed deterministic order is as good as slab order for the
// worker-count-invariance contract. Winner keys merge into the
// accepted set so later rounds reject them.
func (d *edgeDedup) appendDeduped(et *table.EdgeTable, tails, heads []int64, n, limit int64) {
	nCand := len(tails)
	// Sized up front: RMAT rounds are millions of candidates, and
	// append doubling from a cold buffer would copy the whole round
	// twice.
	if cap(d.keys) < nCand {
		d.keys = make([]uint64, 0, nCand)
	}
	d.keys = d.keys[:0]
	for i := 0; i < nCand; i++ {
		t, h := tails[i], heads[i]
		if t == h || t >= n || h >= n {
			continue
		}
		d.keys = append(d.keys, packEdgeKey(t, h))
	}
	d.flushDeduped(et, limit)
}

// appendDedupedPacked is appendDeduped over an already packed
// candidate slab (drawShardAliasPacked's output): filter self-loops
// (min == max) and out-of-range keys, then resolve as usual.
func (d *edgeDedup) appendDedupedPacked(et *table.EdgeTable, slab []uint64, n, limit int64) {
	if cap(d.keys) < len(slab) {
		d.keys = make([]uint64, 0, len(slab))
	}
	d.keys = d.keys[:0]
	for _, k := range slab {
		max := k & 0xffffffff
		if k>>32 == max || int64(max) >= n {
			continue
		}
		d.keys = append(d.keys, k)
	}
	d.flushDeduped(et, limit)
}

// flushDeduped resolves the candidate keys collected in d.keys: sort,
// drop duplicates within the round and against the accepted set, and
// append at most limit winners to et in sorted key order.
func (d *edgeDedup) flushDeduped(et *table.EdgeTable, limit int64) {
	keys := d.sortKeys(d.keys)

	// Runs of equal keys against the accepted set (two-pointer: both
	// sorted); the first fresh key of each run wins.
	d.newKeys = d.newKeys[:0]
	ai := 0
	for i := 0; i < len(keys); {
		key := keys[i]
		j := i + 1
		for j < len(keys) && keys[j] == key {
			j++
		}
		i = j
		for ai < len(d.accepted) && d.accepted[ai] < key {
			ai++
		}
		if ai < len(d.accepted) && d.accepted[ai] == key {
			continue
		}
		if limit > 0 {
			et.Add(int64(key>>32), int64(key&0xffffffff))
			limit--
		}
		// Merging every winner key (even ones dropped by the limit) is
		// sound: the limit only truncates the final round, after which
		// no further round consults the accepted set.
		d.newKeys = append(d.newKeys, key)
	}
	d.mergeNewKeys()
}
