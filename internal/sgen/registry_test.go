package sgen

import (
	"strings"
	"testing"

	"datasynth/internal/graph"
)

func TestRegistryBuildAllMono(t *testing.T) {
	r := NewRegistry()
	cases := []struct {
		name   string
		params map[string]string
	}{
		{"rmat", map[string]string{"a": "0.6", "b": "0.15", "c": "0.15", "d": "0.1", "edgeFactor": "8"}},
		{"lfr", map[string]string{"avgDegree": "15", "maxDegree": "40", "mu": "0.2"}},
		{"bter", map[string]string{"dmin": "2", "dmax": "30", "gamma": "2.1"}},
		{"darwini", map[string]string{"dmin": "2", "dmax": "30", "spread": "0.4"}},
		{"cascade", map[string]string{"minSize": "2", "maxSize": "50", "preferRecent": "0.5"}},
		{"erdos-renyi", map[string]string{"edgesPerNode": "4"}},
		{"barabasi-albert", map[string]string{"m": "3"}},
		{"watts-strogatz", map[string]string{"k": "3", "beta": "0.2"}},
	}
	for _, c := range cases {
		g, err := r.BuildMono(c.name, c.params, 5)
		if err != nil {
			t.Errorf("BuildMono(%s): %v", c.name, err)
			continue
		}
		et, err := g.Run(500)
		if err != nil {
			t.Errorf("%s.Run: %v", c.name, err)
			continue
		}
		if et.Len() == 0 {
			t.Errorf("%s produced no edges", c.name)
		}
		if err := et.Validate(500, 500); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}

func TestRegistryBuildAllBipartite(t *testing.T) {
	r := NewRegistry()
	cases := []struct {
		name   string
		params map[string]string
		nHead  int64
	}{
		{"powerlaw-out", map[string]string{"min": "1", "max": "5", "gamma": "2"}, -1},
		{"zipf-attachment", map[string]string{"min": "1", "max": "5", "theta": "1.1"}, 100},
		{"one-to-one", nil, -1},
		{"uniform-bipartite", map[string]string{"avgOut": "2"}, 100},
	}
	for _, c := range cases {
		g, err := r.BuildBipartite(c.name, c.params, 5)
		if err != nil {
			t.Errorf("BuildBipartite(%s): %v", c.name, err)
			continue
		}
		et, err := g.RunBipartite(200, c.nHead)
		if err != nil {
			t.Errorf("%s.RunBipartite: %v", c.name, err)
			continue
		}
		if et.Len() == 0 {
			t.Errorf("%s produced no edges", c.name)
		}
	}
}

func TestRegistryErrors(t *testing.T) {
	r := NewRegistry()
	if _, err := r.BuildMono("nope", nil, 1); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Error("unknown mono should fail")
	}
	if _, err := r.BuildBipartite("nope", nil, 1); err == nil {
		t.Error("unknown bipartite should fail")
	}
	if _, err := r.BuildMono("rmat", map[string]string{"a": "x"}, 1); err == nil {
		t.Error("bad float param should fail")
	}
	if _, err := r.BuildMono("barabasi-albert", map[string]string{"m": "x"}, 1); err == nil {
		t.Error("bad int param should fail")
	}
	if err := r.RegisterMono("rmat", nil); err == nil {
		t.Error("duplicate mono registration should fail")
	}
	if err := r.RegisterBipartite("one-to-one", nil); err == nil {
		t.Error("duplicate bipartite registration should fail")
	}
	if !r.HasMono("lfr") || r.HasMono("powerlaw-out") {
		t.Error("HasMono misclassifies")
	}
	if !r.HasBipartite("powerlaw-out") || r.HasBipartite("lfr") {
		t.Error("HasBipartite misclassifies")
	}
	if len(r.MonoNames()) < 8 || len(r.BipartiteNames()) < 4 {
		t.Errorf("names: %v / %v", r.MonoNames(), r.BipartiteNames())
	}
}

func TestDarwiniProperties(t *testing.T) {
	d, err := NewDarwiniPowerLaw(4000, 2, 40, 2.0, 17)
	if err != nil {
		t.Fatal(err)
	}
	et, err := d.Run(4000)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdgeTable(et, 4000)
	if err != nil {
		t.Fatal(err)
	}
	// Darwini keeps BTER's signatures: heavy-tailed degrees and
	// substantial clustering.
	if gi := g.GiniDegree(); gi < 0.2 {
		t.Errorf("Darwini Gini = %v, want > 0.2", gi)
	}
	if cc := g.AvgClustering(0, 0); cc < 0.1 {
		t.Errorf("Darwini clustering = %v, want > 0.1", cc)
	}
}

func TestDarwiniSpreadWidensCCD(t *testing.T) {
	// The ccdd refinement: with spread > 0, the per-node clustering
	// values at a fixed degree must have higher variance than with
	// spread = 0.
	variance := func(spread float64) float64 {
		d, err := NewDarwiniPowerLaw(4000, 4, 30, 2.0, 23)
		if err != nil {
			t.Fatal(err)
		}
		d.CCSpread = spread
		et, err := d.Run(4000)
		if err != nil {
			t.Fatal(err)
		}
		g, err := graph.FromEdgeTable(et, 4000)
		if err != nil {
			t.Fatal(err)
		}
		// Use mid-degree nodes where clustering is informative.
		var vals []float64
		for v := int64(0); v < g.N(); v++ {
			if deg := g.Degree(v); deg >= 4 && deg <= 12 {
				vals = append(vals, g.LocalClustering(v))
			}
		}
		if len(vals) < 50 {
			t.Fatalf("too few mid-degree nodes (%d)", len(vals))
		}
		var mean, sq float64
		for _, x := range vals {
			mean += x
		}
		mean /= float64(len(vals))
		for _, x := range vals {
			sq += (x - mean) * (x - mean)
		}
		return sq / float64(len(vals))
	}
	if vWide, vNarrow := variance(0.8), variance(0); vWide <= vNarrow {
		t.Errorf("ccd variance with spread (%v) not above without (%v)", vWide, vNarrow)
	}
}

func TestDarwiniValidation(t *testing.T) {
	d := &Darwini{}
	if _, err := d.Run(100); err == nil {
		t.Error("empty distribution should fail")
	}
	d2, _ := NewDarwiniPowerLaw(1000, 2, 20, 2, 1)
	d2.CCSpread = 2
	if _, err := d2.Run(100); err == nil {
		t.Error("spread > 1 should fail")
	}
	if _, err := d2.Run(0); err == nil {
		t.Error("n = 0 should fail")
	}
}

func TestDarwiniNumNodesForEdges(t *testing.T) {
	d, err := NewDarwiniPowerLaw(1000, 4, 4, 2, 1) // all degree 4
	if err != nil {
		t.Fatal(err)
	}
	n, err := d.NumNodesForEdges(2000)
	if err != nil {
		t.Fatal(err)
	}
	if n < 900 || n > 1100 {
		t.Errorf("NumNodesForEdges = %d, want ~1000", n)
	}
}

// TestRegistrationErrorSurfacesNotPanics: a broken built-in
// registration (here simulated by re-registering the builtins, which
// makes every name a duplicate) must surface from Build calls as an
// error, never panic — through core.Engine in a service worker a
// registration panic used to kill the whole daemon.
func TestRegistrationErrorSurfacesNotPanics(t *testing.T) {
	r := NewRegistry()
	registerBuiltinSGs(r) // every Register now fails with a duplicate error
	if _, err := r.BuildMono("rmat", nil, 1); err == nil {
		t.Fatal("BuildMono on a broken registry must return the registration error")
	}
	if _, err := r.BuildBipartite("one-to-one", nil, 1); err == nil {
		t.Fatal("BuildBipartite on a broken registry must return the registration error")
	}
}
