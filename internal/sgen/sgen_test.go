package sgen

import (
	"math"
	"testing"

	"datasynth/internal/graph"
	"datasynth/internal/table"
)

func mustGraph(t *testing.T, et *table.EdgeTable, n int64) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdgeTable(et, n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRMATDeterministic(t *testing.T) {
	a, err := NewRMAT(7).Run(1024)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRMAT(7).Run(1024)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := int64(0); i < a.Len(); i++ {
		if a.Tail[i] != b.Tail[i] || a.Head[i] != b.Head[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestRMATSeedsDiffer(t *testing.T) {
	a, _ := NewRMAT(1).Run(512)
	b, _ := NewRMAT(2).Run(512)
	same := 0
	n := a.Len()
	if b.Len() < n {
		n = b.Len()
	}
	for i := int64(0); i < n; i++ {
		if a.Tail[i] == b.Tail[i] && a.Head[i] == b.Head[i] {
			same++
		}
	}
	if float64(same) > 0.1*float64(n) {
		t.Fatalf("different seeds agree on %d/%d edges", same, n)
	}
}

func TestRMATEdgeCountAndRange(t *testing.T) {
	r := NewRMAT(3)
	n := int64(1 << 10)
	et, err := r.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	if et.Len() != r.EdgeFactor*n {
		t.Fatalf("edges = %d, want %d", et.Len(), r.EdgeFactor*n)
	}
	if err := et.Validate(n, n); err != nil {
		t.Fatal(err)
	}
}

func TestRMATNonPowerOfTwo(t *testing.T) {
	r := NewRMAT(3)
	r.EdgeFactor = 4
	n := int64(1000)
	et, err := r.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := et.Validate(n, n); err != nil {
		t.Fatal(err)
	}
}

func TestRMATNoDuplicatesByDefault(t *testing.T) {
	et, err := NewRMAT(5).Run(256)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[2]int64]bool{}
	for i := int64(0); i < et.Len(); i++ {
		a, b := et.Tail[i], et.Head[i]
		if a == b {
			t.Fatalf("self loop at edge %d", i)
		}
		if a > b {
			a, b = b, a
		}
		if seen[[2]int64{a, b}] {
			t.Fatalf("duplicate edge (%d,%d)", a, b)
		}
		seen[[2]int64{a, b}] = true
	}
}

func TestRMATSkewedDegrees(t *testing.T) {
	// RMAT with Graph500 parameters must produce a heavy-tailed degree
	// distribution: Gini well above an ER graph's.
	r := NewRMAT(11)
	n := int64(1 << 12)
	et, err := r.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	g := mustGraph(t, et, n)
	if gi := g.GiniDegree(); gi < 0.35 {
		t.Errorf("RMAT degree Gini = %v, want > 0.35 (heavy tail)", gi)
	}
	if md := g.MaxDegree(); md < 4*int64(g.AvgDegree()) {
		t.Errorf("RMAT max degree %d not hub-like (avg %.1f)", md, g.AvgDegree())
	}
}

func TestRMATValidation(t *testing.T) {
	r := NewRMAT(1)
	r.A = 0.9 // sum > 1
	if _, err := r.Run(64); err == nil {
		t.Error("bad probabilities should fail")
	}
	r2 := NewRMAT(1)
	r2.EdgeFactor = 0
	if _, err := r2.Run(64); err == nil {
		t.Error("zero edge factor should fail")
	}
	if _, err := NewRMAT(1).Run(0); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestRMATNumNodesForEdges(t *testing.T) {
	r := NewRMAT(1)
	n, err := r.NumNodesForEdges(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1<<16 {
		t.Errorf("NumNodesForEdges(2^20) = %d, want 2^16", n)
	}
	if _, err := r.NumNodesForEdges(0); err == nil {
		t.Error("numEdges=0 should fail")
	}
}

func TestRMATRunScale(t *testing.T) {
	et, err := NewRMAT(2).RunScale(8)
	if err != nil {
		t.Fatal(err)
	}
	if et.Len() != 16*256 {
		t.Errorf("scale-8 edges = %d, want %d", et.Len(), 16*256)
	}
}

func TestLFRBasicProperties(t *testing.T) {
	l := NewLFR(42)
	n := int64(2000)
	et, err := l.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := et.Validate(n, n); err != nil {
		t.Fatal(err)
	}
	g := mustGraph(t, et, n)
	if avg := g.AvgDegree(); avg < 12 || avg > 26 {
		t.Errorf("LFR avg degree = %v, want ~20", avg)
	}
	if md := g.MaxDegree(); md > 50 {
		t.Errorf("LFR max degree = %d, want <= 50", md)
	}
}

func TestLFRCommunities(t *testing.T) {
	l := NewLFR(42)
	n := int64(2000)
	et, err := l.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	comm := l.Communities()
	if int64(len(comm)) != n {
		t.Fatalf("communities len = %d", len(comm))
	}
	g := mustGraph(t, et, n)
	// Mixing must be near mu = 0.1.
	if mu := g.MixingFraction(comm); mu > 0.2 {
		t.Errorf("LFR empirical mixing = %v, want ~0.1", mu)
	}
	// Ground-truth communities must yield high modularity.
	if q := g.Modularity(comm); q < 0.5 {
		t.Errorf("LFR modularity = %v, want > 0.5", q)
	}
	// Community sizes must respect bounds (last may merge a tail).
	sizes := map[int64]int{}
	for _, c := range comm {
		sizes[c]++
	}
	for c, sz := range sizes {
		if sz < l.MinCommunity || sz > l.MaxCommunity+l.MinCommunity {
			t.Errorf("community %d has size %d outside [%d,%d]", c, sz, l.MinCommunity, l.MaxCommunity+l.MinCommunity)
		}
	}
}

func TestLFRDeterministic(t *testing.T) {
	a, err := NewLFR(9).Run(500)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewLFR(9).Run(500)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := int64(0); i < a.Len(); i++ {
		if a.Tail[i] != b.Tail[i] || a.Head[i] != b.Head[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestLFRMuZeroNearZeroMixing(t *testing.T) {
	// With mu = 0 mixing should be almost zero. It cannot be exactly
	// zero: a node whose degree exceeds the largest community cannot fit
	// all its stubs internally, and the greedy placement spills the
	// remainder to inter edges (the paper: "strict constraints cannot be
	// fully guaranteed").
	l := NewLFR(3)
	l.Mu = 0
	et, err := l.Run(500)
	if err != nil {
		t.Fatal(err)
	}
	g := mustGraph(t, et, 500)
	if mu := g.MixingFraction(l.Communities()); mu > 0.05 {
		t.Errorf("mu=0 run has mixing %v, want < 0.05", mu)
	}
}

func TestLFRHighMu(t *testing.T) {
	l := NewLFR(3)
	l.Mu = 0.5
	et, err := l.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	g := mustGraph(t, et, 1000)
	mu := g.MixingFraction(l.Communities())
	if mu < 0.3 || mu > 0.7 {
		t.Errorf("mu=0.5 run has mixing %v", mu)
	}
}

func TestLFRValidation(t *testing.T) {
	l := NewLFR(1)
	if _, err := l.Run(5); err == nil {
		t.Error("n below min community should fail")
	}
	l2 := NewLFR(1)
	l2.Mu = 1.5
	if _, err := l2.Run(100); err == nil {
		t.Error("mu > 1 should fail")
	}
	l3 := NewLFR(1)
	l3.MaxDegree = 5
	if _, err := l3.Run(100); err == nil {
		t.Error("max degree below avg should fail")
	}
}

func TestLFRNumNodesForEdges(t *testing.T) {
	l := NewLFR(1)
	n, err := l.NumNodesForEdges(100000)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(10000) // m = n*20/2
	if n != want {
		t.Errorf("NumNodesForEdges = %d, want %d", n, want)
	}
}

func TestBTERDegreeDistribution(t *testing.T) {
	b, err := NewBTERPowerLaw(3000, 2, 40, 2.0, 17)
	if err != nil {
		t.Fatal(err)
	}
	et, err := b.Run(3000)
	if err != nil {
		t.Fatal(err)
	}
	g := mustGraph(t, et, 3000)
	// Heavy tail expected.
	if gi := g.GiniDegree(); gi < 0.2 {
		t.Errorf("BTER degree Gini = %v, want > 0.2", gi)
	}
	// BTER's signature: substantial clustering from affinity blocks.
	if cc := g.AvgClustering(0, 0); cc < 0.1 {
		t.Errorf("BTER avg clustering = %v, want > 0.1", cc)
	}
}

func TestBTERPositiveAssortativityTendency(t *testing.T) {
	// The paper notes BTER produces positive assortativity as a side
	// effect of blocking same-degree nodes together.
	b, err := NewBTERPowerLaw(4000, 2, 30, 2.0, 23)
	if err != nil {
		t.Fatal(err)
	}
	et, err := b.Run(4000)
	if err != nil {
		t.Fatal(err)
	}
	g := mustGraph(t, et, 4000)
	if a := g.DegreeAssortativity(); !math.IsNaN(a) && a < -0.05 {
		t.Errorf("BTER assortativity = %v, want >= ~0", a)
	}
}

func TestBTERValidation(t *testing.T) {
	b := NewBTER(nil, 1)
	if _, err := b.Run(100); err == nil {
		t.Error("empty distribution should fail")
	}
	if _, err := NewBTERPowerLaw(10, 5, 2, 2, 1); err == nil {
		t.Error("bad bounds should fail")
	}
	b2 := NewBTER([]int64{0, 10}, 1)
	if _, err := b2.Run(0); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestBTERNumNodesForEdges(t *testing.T) {
	// All nodes degree 4 -> m = 2n.
	b := NewBTER([]int64{0, 0, 0, 0, 100}, 1)
	n, err := b.NumNodesForEdges(2000)
	if err != nil {
		t.Fatal(err)
	}
	if n < 900 || n > 1100 {
		t.Errorf("NumNodesForEdges = %d, want ~1000", n)
	}
}

func TestErdosRenyiBasics(t *testing.T) {
	g := NewErdosRenyi(5, 31)
	n := int64(1000)
	et, err := g.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	if et.Len() != 5000 {
		t.Errorf("edges = %d, want 5000", et.Len())
	}
	if err := et.Validate(n, n); err != nil {
		t.Fatal(err)
	}
	gr := mustGraph(t, et, n)
	// ER should have near-zero clustering and low Gini.
	if cc := gr.AvgClustering(0, 0); cc > 0.05 {
		t.Errorf("ER clustering = %v, want ~0.01", cc)
	}
	if gi := gr.GiniDegree(); gi > 0.25 {
		t.Errorf("ER Gini = %v, want small", gi)
	}
}

func TestErdosRenyiCapsAtCompleteGraph(t *testing.T) {
	g := NewErdosRenyi(100, 1) // way more than possible for n=10
	et, err := g.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if et.Len() != 45 {
		t.Errorf("edges = %d, want 45 (complete K10)", et.Len())
	}
}

func TestBarabasiAlbertPowerLaw(t *testing.T) {
	g := NewBarabasiAlbert(3, 13)
	n := int64(3000)
	et, err := g.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	gr := mustGraph(t, et, n)
	if gi := gr.GiniDegree(); gi < 0.3 {
		t.Errorf("BA Gini = %v, want > 0.3", gi)
	}
	if f := gr.LargestComponentFraction(); f < 0.99 {
		t.Errorf("BA connected fraction = %v, want ~1", f)
	}
	alpha := gr.PowerLawAlphaMLE(3)
	if alpha < 1.8 || alpha > 4.5 {
		t.Errorf("BA alpha = %v, want in [1.8, 4.5]", alpha)
	}
}

func TestBarabasiAlbertValidation(t *testing.T) {
	if _, err := NewBarabasiAlbert(0, 1).Run(100); err == nil {
		t.Error("M=0 should fail")
	}
	if _, err := NewBarabasiAlbert(10, 1).Run(5); err == nil {
		t.Error("n<=M should fail")
	}
}

func TestWattsStrogatzSmallWorld(t *testing.T) {
	g := NewWattsStrogatz(5, 0.1, 19)
	n := int64(1000)
	et, err := g.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	gr := mustGraph(t, et, n)
	// Low rewiring keeps high clustering.
	if cc := gr.AvgClustering(0, 0); cc < 0.3 {
		t.Errorf("WS clustering = %v, want > 0.3", cc)
	}
	// Diameter should be small compared to the n/(2k) ring diameter.
	if d := gr.ApproxDiameter(4, 1); d > 50 {
		t.Errorf("WS diameter = %d, want small-world", d)
	}
}

func TestWattsStrogatzValidation(t *testing.T) {
	if _, err := NewWattsStrogatz(0, 0.1, 1).Run(100); err == nil {
		t.Error("K=0 should fail")
	}
	if _, err := NewWattsStrogatz(2, 2, 1).Run(100); err == nil {
		t.Error("beta>1 should fail")
	}
	if _, err := NewWattsStrogatz(10, 0.1, 1).Run(5); err == nil {
		t.Error("n < 2K+1 should fail")
	}
}

func TestNumNodesForEdgesRoundTrip(t *testing.T) {
	// For every monopartite generator: Run(NumNodesForEdges(m)) should
	// produce roughly m edges.
	gens := []Generator{
		NewRMAT(1),
		NewLFR(1),
		NewErdosRenyi(8, 1),
		NewBarabasiAlbert(4, 1),
		NewWattsStrogatz(4, 0.1, 1),
	}
	target := int64(20000)
	for _, g := range gens {
		n, err := g.NumNodesForEdges(target)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		et, err := g.Run(n)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		ratio := float64(et.Len()) / float64(target)
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("%s: Run(NumNodesForEdges(%d)) gave %d edges (ratio %.2f)",
				g.Name(), target, et.Len(), ratio)
		}
	}
}

// TestLFRLargeCommunityFallback: communities whose size² exceeds the
// direct-dedup stamp budget take the sorted-key path; the wiring must
// stay deterministic and free of self-loops and duplicate edges.
func TestLFRLargeCommunityFallback(t *testing.T) {
	build := func() *table.EdgeTable {
		l := NewLFR(3)
		l.MinCommunity = 2100
		l.MaxCommunity = 2200
		et, err := l.Run(4300)
		if err != nil {
			t.Fatal(err)
		}
		return et
	}
	et := build()
	if et.Len() == 0 {
		t.Fatal("no edges")
	}
	seen := map[[2]int64]bool{}
	for i := range et.Tail {
		a, b := et.Tail[i], et.Head[i]
		if a == b {
			t.Fatalf("self-loop at edge %d (%d)", i, a)
		}
		if a > b {
			a, b = b, a
		}
		if seen[[2]int64{a, b}] {
			t.Fatalf("duplicate edge (%d,%d)", a, b)
		}
		seen[[2]int64{a, b}] = true
	}
	again := build()
	if again.Len() != et.Len() {
		t.Fatalf("non-deterministic: %d vs %d edges", et.Len(), again.Len())
	}
	for i := range et.Tail {
		if et.Tail[i] != again.Tail[i] || et.Head[i] != again.Head[i] {
			t.Fatalf("non-deterministic at edge %d", i)
		}
	}
}
