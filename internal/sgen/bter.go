package sgen

import (
	"fmt"
	"math"
	"sort"

	"datasynth/internal/table"
)

// BTER is the Block Two-Level Erdős–Rényi generator of Kolda, Pinar et
// al. (SISC 2014), discussed at length in the paper's related work:
// it reproduces a target degree distribution *and* the average
// clustering coefficient per degree, producing graphs with positive
// assortativity and community structure as a side effect.
//
// Phase 1 groups nodes of (near-)equal degree d into affinity blocks of
// d+1 nodes and wires each block as a dense Erdős–Rényi graph whose
// connectivity is chosen to hit the per-degree clustering target.
// Phase 2 distributes the residual degree with a Chung–Lu model.
type BTER struct {
	// DegreeCounts[d] = desired number of nodes of degree d. Index 0
	// is ignored (degree-0 nodes have no edges).
	DegreeCounts []int64
	// CCD[d] = target mean local clustering coefficient of degree-d
	// nodes. Missing/short entries default via the heuristic
	// c(d) = CCMax · exp(-(d-1)·decay).
	CCD   []float64
	CCMax float64 // heuristic peak clustering for low degrees (default 0.95)
	Decay float64 // heuristic exponential decay (default 0.05)
	Seed  uint64
}

// NewBTER builds a BTER generator targeting the given degree counts.
func NewBTER(degreeCounts []int64, seed uint64) *BTER {
	return &BTER{DegreeCounts: degreeCounts, CCMax: 0.95, Decay: 0.05, Seed: seed}
}

// NewBTERPowerLaw builds a BTER generator with a power-law target
// degree distribution over n nodes: counts(d) ∝ d^-gamma on [dmin,dmax].
func NewBTERPowerLaw(n int64, dmin, dmax int, gamma float64, seed uint64) (*BTER, error) {
	if dmin < 1 || dmax < dmin {
		return nil, fmt.Errorf("sgen: BTER degree bounds [%d,%d] invalid", dmin, dmax)
	}
	if n < int64(dmax) {
		return nil, fmt.Errorf("sgen: BTER needs n >= dmax")
	}
	weights := make([]float64, dmax+1)
	total := 0.0
	for d := dmin; d <= dmax; d++ {
		weights[d] = math.Pow(float64(d), -gamma)
		total += weights[d]
	}
	counts := make([]int64, dmax+1)
	var assigned int64
	for d := dmin; d <= dmax; d++ {
		counts[d] = int64(math.Floor(float64(n) * weights[d] / total))
		assigned += counts[d]
	}
	counts[dmin] += n - assigned // dump rounding remainder on dmin
	return NewBTER(counts, seed), nil
}

// Name implements Generator.
func (b *BTER) Name() string { return "bter" }

// ccFor returns the clustering target for degree d.
func (b *BTER) ccFor(d int) float64 {
	if d < len(b.CCD) && !math.IsNaN(b.CCD[d]) && b.CCD[d] > 0 {
		return b.CCD[d]
	}
	ccMax := b.CCMax
	if ccMax <= 0 {
		ccMax = 0.95
	}
	decay := b.Decay
	if decay <= 0 {
		decay = 0.05
	}
	return ccMax * math.Exp(-float64(d-1)*decay)
}

// Run implements Generator. n rescales the configured degree counts
// proportionally so the output has exactly n nodes.
func (b *BTER) Run(n int64) (*table.EdgeTable, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sgen: BTER needs n > 0, got %d", n)
	}
	if len(b.DegreeCounts) == 0 {
		return nil, fmt.Errorf("sgen: BTER needs a degree distribution")
	}
	counts, err := b.rescaledCounts(n)
	if err != nil {
		return nil, err
	}
	q := newSeq(b.Seed)

	// Build the node list sorted by degree ascending; record target
	// degree per node.
	deg := make([]int, 0, n)
	for d := 1; d < len(counts); d++ {
		for c := int64(0); c < counts[d]; c++ {
			deg = append(deg, d)
		}
	}
	nn := int64(len(deg))
	if nn == 0 {
		return table.NewEdgeTable("bter", 0), nil
	}

	et := table.NewEdgeTable("bter", 0)
	seen := make(map[uint64]struct{})
	addEdge := func(a, c int64) bool {
		if a == c {
			return false
		}
		x, y := a, c
		if x > y {
			x, y = y, x
		}
		key := uint64(x)<<32 | uint64(y)
		if _, dup := seen[key]; dup {
			return false
		}
		seen[key] = struct{}{}
		et.Add(a, c)
		return true
	}

	// Phase 1: affinity blocks. Nodes are already grouped by degree;
	// consecutive runs of d+1 nodes with degree >= 2 form a block wired
	// as ER with connectivity rho = cc(d)^(1/3) (Kolda et al.'s
	// calibration: triangles in ER(rho) give cc ≈ rho^3).
	excess := make([]float64, nn)
	v := int64(0)
	for v < nn {
		d := deg[v]
		if d < 2 {
			excess[v] = float64(d)
			v++
			continue
		}
		blockSize := int64(d + 1)
		if v+blockSize > nn {
			blockSize = nn - v
		}
		rho := math.Cbrt(b.ccFor(d))
		if rho > 1 {
			rho = 1
		}
		for i := v; i < v+blockSize; i++ {
			for j := i + 1; j < v+blockSize; j++ {
				if q.Float64() < rho {
					addEdge(i, j)
				}
			}
		}
		// Residual degree for phase 2.
		expectedIn := rho * float64(blockSize-1)
		for i := v; i < v+blockSize; i++ {
			e := float64(deg[i]) - expectedIn
			if e < 0 {
				e = 0
			}
			excess[i] = e
		}
		v += blockSize
	}

	// Phase 2: Chung–Lu over excess degrees.
	var totalExcess float64
	for _, e := range excess {
		totalExcess += e
	}
	if totalExcess > 1 {
		// Build cumulative weights once; sample endpoint pairs.
		cum := make([]float64, nn)
		acc := 0.0
		for i := int64(0); i < nn; i++ {
			acc += excess[i]
			cum[i] = acc
		}
		targetEdges := int64(totalExcess / 2)
		attempts := targetEdges * 10
		sample := func() int64 {
			u := q.Float64() * acc
			return int64(sort.SearchFloat64s(cum, u))
		}
		for e, tries := int64(0), int64(0); e < targetEdges && tries < attempts; tries++ {
			a, c := sample(), sample()
			if addEdge(a, c) {
				e++
			}
		}
	}
	return et, nil
}

// rescaledCounts scales DegreeCounts to sum to n.
func (b *BTER) rescaledCounts(n int64) ([]int64, error) {
	var total int64
	for d := 1; d < len(b.DegreeCounts); d++ {
		if b.DegreeCounts[d] < 0 {
			return nil, fmt.Errorf("sgen: negative degree count at %d", d)
		}
		total += b.DegreeCounts[d]
	}
	if total == 0 {
		return nil, fmt.Errorf("sgen: BTER degree distribution is empty")
	}
	counts := make([]int64, len(b.DegreeCounts))
	var assigned int64
	firstPos := 0
	for d := 1; d < len(b.DegreeCounts); d++ {
		counts[d] = b.DegreeCounts[d] * n / total
		assigned += counts[d]
		if firstPos == 0 && b.DegreeCounts[d] > 0 {
			firstPos = d
		}
	}
	counts[firstPos] += n - assigned
	return counts, nil
}

// NumNodesForEdges implements Generator by inverting the expected edge
// count m(n) ≈ n·avgdeg/2.
func (b *BTER) NumNodesForEdges(numEdges int64) (int64, error) {
	var total, weighted int64
	for d := 1; d < len(b.DegreeCounts); d++ {
		total += b.DegreeCounts[d]
		weighted += int64(d) * b.DegreeCounts[d]
	}
	if total == 0 || weighted == 0 {
		return 0, fmt.Errorf("sgen: BTER degree distribution is empty")
	}
	avg := float64(weighted) / float64(total)
	return searchNodesForEdges(numEdges, func(n int64) float64 {
		return float64(n) * avg / 2
	})
}
