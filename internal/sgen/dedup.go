package sgen

import (
	"datasynth/internal/table"
)

// edgeDedup rejects duplicate undirected edges during configuration-
// model wiring. The old implementation probed a map[uint64]struct{} on
// every candidate pair — a hash plus amortised allocation on the
// hottest loop of LFR. This one is allocation-free at steady state: a
// round's candidates are packed into (min<<32|max) keys, radix-sorted
// together with their stream positions, compacted against the sorted
// set of already-accepted keys, and the winners merged back in. All
// buffers are reused across rounds and communities.
//
// Semantics are exactly those of the map: within a round the earliest
// occurrence of a key wins, every later occurrence fails, and a key
// accepted in any earlier round (since the last reset) always fails.
type edgeDedup struct {
	accepted []uint64 // sorted keys of all accepted edges
	keys     []uint64 // scratch: one round's valid candidate keys, stream order
	idx      []int32  // scratch: parallel pair indices
	tmpK     []uint64 // scratch: radix ping-pong
	tmpI     []int32  // scratch: radix ping-pong
	count    []int32  // scratch: radix digit counts (1<<16)
	win      []bool   // scratch: per-pair winner flag
	newKeys  []uint64 // scratch: winner keys of the round (sorted)
	merged   []uint64 // scratch: merge target for accepted ∪ newKeys

	// Direct-addressed dedup for phases with a small key universe
	// (intra-community wiring: at most size² local pair keys). A
	// generation stamp makes resets O(1) instead of clearing the table.
	stamp []int32
	gen   int32
}

func newEdgeDedup(capHint int64) *edgeDedup {
	if capHint < 0 {
		capHint = 0
	}
	return &edgeDedup{accepted: make([]uint64, 0, capHint)}
}

// reset clears the accepted set (buffers are kept). Callers reset
// between wiring phases whose key spaces cannot collide — e.g. the
// per-community intra phases (both endpoints inside one community) and
// the inter phase (endpoints in different communities) — which keeps
// every merge proportional to the phase's own edge count instead of
// the whole graph's.
func (d *edgeDedup) reset() { d.accepted = d.accepted[:0] }

// resetDirect prepares the stamp table for a phase whose pair keys lie
// in [0, universe).
func (d *edgeDedup) resetDirect(universe int) {
	if cap(d.stamp) < universe {
		d.stamp = make([]int32, universe)
		d.gen = 0
	}
	d.stamp = d.stamp[:universe]
	d.gen++
}

// seenDirect records key and reports whether it was already seen since
// the last resetDirect.
func (d *edgeDedup) seenDirect(key int64) bool {
	if d.stamp[key] == d.gen {
		return true
	}
	d.stamp[key] = d.gen
	return false
}

func packEdgeKey(a, b int64) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(a)<<32 | uint64(b)
}

// pairRound resolves one pairing round: adjacent entries of pending
// form candidate pairs; winning pairs are appended to et in stream
// order and the failing stubs are compacted in place and returned for
// the next round. ok, when non-nil, is the extra acceptance predicate.
func (d *edgeDedup) pairRound(et *table.EdgeTable, pending []int64, ok func(a, b int64) bool) []int64 {
	nPairs := len(pending) / 2
	if cap(d.win) < nPairs {
		d.win = make([]bool, nPairs)
	}
	win := d.win[:nPairs]
	clear(win)

	// Valid candidates only; self-loops and ok-rejected pairs never win
	// and go straight back to the retry pool during compaction.
	d.keys = d.keys[:0]
	d.idx = d.idx[:0]
	for p := 0; p < nPairs; p++ {
		a, b := pending[2*p], pending[2*p+1]
		if a == b || (ok != nil && !ok(a, b)) {
			continue
		}
		d.keys = append(d.keys, packEdgeKey(a, b))
		d.idx = append(d.idx, int32(p))
	}
	keys, idx := d.sortByKey(d.keys, d.idx)

	// Scan runs of equal keys against the accepted set (two-pointer:
	// both are sorted). The earliest stream position of a fresh key wins
	// its pair — radix stability keeps equal keys in stream order.
	d.newKeys = d.newKeys[:0]
	ai := 0
	for i := 0; i < len(keys); {
		key := keys[i]
		j := i + 1
		for j < len(keys) && keys[j] == key {
			j++
		}
		for ai < len(d.accepted) && d.accepted[ai] < key {
			ai++
		}
		if ai == len(d.accepted) || d.accepted[ai] != key {
			win[idx[i]] = true
			d.newKeys = append(d.newKeys, key)
		}
		i = j
	}

	// Emit winners and compact the failing stubs, both in stream order.
	w := 0
	for p := 0; p < nPairs; p++ {
		a, b := pending[2*p], pending[2*p+1]
		if win[p] {
			if a > b {
				a, b = b, a
			}
			et.Add(a, b)
			continue
		}
		pending[w], pending[w+1] = a, b
		w += 2
	}

	d.mergeNewKeys()
	return pending[:w]
}

// mergeNewKeys merges the round's winner keys (already sorted: they
// were collected in key order) into the accepted set — in place,
// backward into the spare capacity, when it fits; via the scratch
// buffer otherwise.
func (d *edgeDedup) mergeNewKeys() {
	if len(d.newKeys) == 0 {
		return
	}
	na, nn := len(d.accepted), len(d.newKeys)
	need := na + nn
	if cap(d.accepted) >= need {
		d.accepted = d.accepted[:need]
		i, w := na-1, need-1
		for j := nn - 1; j >= 0; {
			if i >= 0 && d.accepted[i] > d.newKeys[j] {
				d.accepted[w] = d.accepted[i]
				i--
			} else {
				d.accepted[w] = d.newKeys[j]
				j--
			}
			w--
		}
		return
	}
	if cap(d.merged) < need {
		d.merged = make([]uint64, 0, need+need/2)
	}
	m := d.merged[:0]
	i, j := 0, 0
	for i < len(d.accepted) && j < len(d.newKeys) {
		if d.accepted[i] < d.newKeys[j] {
			m = append(m, d.accepted[i])
			i++
		} else {
			m = append(m, d.newKeys[j])
			j++
		}
	}
	m = append(m, d.accepted[i:]...)
	m = append(m, d.newKeys[j:]...)
	d.accepted, d.merged = m, d.accepted
}

// sortKeys sorts a bare key slice with the same adaptive LSD radix as
// sortByKey, minus the index payload — the fast path for rounds whose
// consumers don't need stream positions (sharded RMAT emits winners in
// key order). Returns whichever of keys / the scratch buffer holds the
// result.
func (d *edgeDedup) sortKeys(keys []uint64) []uint64 {
	n := len(keys)
	if n < 2 {
		return keys
	}
	if cap(d.tmpK) < n {
		d.tmpK = make([]uint64, n)
	}
	if d.count == nil {
		d.count = make([]int32, 1<<16)
	}
	var digitBits uint = 8
	if n >= 1<<12 {
		digitBits = 16
	}
	radix := uint64(1)<<digitBits - 1
	// orAll/andAll spot digit positions where every key agrees — e.g.
	// packed (min<<32|max) keys at scale ≤ 16 have 16 constant-zero
	// middle bits, a whole pass of nothing.
	var maxKey uint64
	orAll, andAll := uint64(0), ^uint64(0)
	for _, k := range keys {
		orAll |= k
		andAll &= k
	}
	maxKey = orAll
	src, dst := keys, d.tmpK[:n]
	for shift := uint(0); ; shift += digitBits {
		if (orAll>>shift)&radix != (andAll>>shift)&radix {
			count := d.count[:radix+1]
			clear(count)
			for _, k := range src {
				count[(k>>shift)&radix]++
			}
			var sum int32
			for i := range count {
				c := count[i]
				count[i] = sum
				sum += c
			}
			for _, k := range src {
				digit := (k >> shift) & radix
				p := count[digit]
				count[digit] = p + 1
				dst[p] = k
			}
			src, dst = dst, src
		}
		if shift+digitBits >= 64 || maxKey>>(shift+digitBits) == 0 {
			break
		}
	}
	return src
}

// sortByKey stable-sorts (keys, idx) by key with an LSD radix sort,
// ping-ponging between the input slices and the scratch buffers; it
// returns whichever pair holds the result. Digit width adapts to the
// round size so tiny community rounds don't pay for clearing a 64k
// count table, and passes stop at the highest set byte of the largest
// key.
func (d *edgeDedup) sortByKey(keys []uint64, idx []int32) ([]uint64, []int32) {
	n := len(keys)
	if n < 2 {
		return keys, idx
	}
	if cap(d.tmpK) < n {
		d.tmpK = make([]uint64, n)
		d.tmpI = make([]int32, n)
	}
	if d.count == nil {
		d.count = make([]int32, 1<<16)
	}
	var digitBits uint = 8
	if n >= 1<<12 {
		digitBits = 16
	}
	radix := uint64(1)<<digitBits - 1
	var maxKey uint64
	for _, k := range keys {
		if k > maxKey {
			maxKey = k
		}
	}
	src, dst := keys, d.tmpK[:n]
	srcI, dstI := idx, d.tmpI[:n]
	for shift := uint(0); ; shift += digitBits {
		count := d.count[:radix+1]
		clear(count)
		for _, k := range src {
			count[(k>>shift)&radix]++
		}
		var sum int32
		for i := range count {
			c := count[i]
			count[i] = sum
			sum += c
		}
		for i, k := range src {
			digit := (k >> shift) & radix
			p := count[digit]
			count[digit] = p + 1
			dst[p] = k
			dstI[p] = srcI[i]
		}
		src, dst = dst, src
		srcI, dstI = dstI, srcI
		if shift+digitBits >= 64 || maxKey>>(shift+digitBits) == 0 {
			break
		}
	}
	return src, srcI
}
