package sgen

import (
	"fmt"
	"sort"
	"strconv"

	"datasynth/internal/cascade"
)

// Registry resolves DSL structure-generator specs into concrete
// generators, mirroring pgen.Registry. Monopartite and bipartite
// generators live in separate namespaces because edge cardinality
// decides which is legal.
type Registry struct {
	mono map[string]MonoFactory
	bip  map[string]BipFactory
	// err records a failed built-in registration. Registration used to
	// panic(err) — which, reached through core.Engine inside a service
	// worker, would kill the whole daemon — so the first error is
	// recorded here instead and surfaced from every Build call: a
	// broken registry fails the job that touches it, never the process.
	err error
}

// MonoFactory builds a monopartite generator.
type MonoFactory func(params map[string]string, seed uint64) (Generator, error)

// BipFactory builds a bipartite generator.
type BipFactory func(params map[string]string, seed uint64) (BipartiteGenerator, error)

// NewRegistry returns a registry with every built-in SG.
func NewRegistry() *Registry {
	r := &Registry{mono: map[string]MonoFactory{}, bip: map[string]BipFactory{}}
	registerBuiltinSGs(r)
	return r
}

// RegisterMono adds a monopartite factory.
func (r *Registry) RegisterMono(name string, f MonoFactory) error {
	if _, dup := r.mono[name]; dup {
		return fmt.Errorf("sgen: generator %q already registered", name)
	}
	r.mono[name] = f
	return nil
}

// RegisterBipartite adds a bipartite factory.
func (r *Registry) RegisterBipartite(name string, f BipFactory) error {
	if _, dup := r.bip[name]; dup {
		return fmt.Errorf("sgen: bipartite generator %q already registered", name)
	}
	r.bip[name] = f
	return nil
}

// HasMono reports whether name is a monopartite generator.
func (r *Registry) HasMono(name string) bool { _, ok := r.mono[name]; return ok }

// HasBipartite reports whether name is a bipartite generator.
func (r *Registry) HasBipartite(name string) bool { _, ok := r.bip[name]; return ok }

// BuildMono resolves a monopartite generator spec.
func (r *Registry) BuildMono(name string, params map[string]string, seed uint64) (Generator, error) {
	if r.err != nil {
		return nil, r.err
	}
	f, ok := r.mono[name]
	if !ok {
		return nil, fmt.Errorf("sgen: unknown structure generator %q (have: %v)", name, r.MonoNames())
	}
	return f(params, seed)
}

// BuildBipartite resolves a bipartite generator spec.
func (r *Registry) BuildBipartite(name string, params map[string]string, seed uint64) (BipartiteGenerator, error) {
	if r.err != nil {
		return nil, r.err
	}
	f, ok := r.bip[name]
	if !ok {
		return nil, fmt.Errorf("sgen: unknown bipartite structure generator %q (have: %v)", name, r.BipartiteNames())
	}
	return f(params, seed)
}

// MonoNames lists monopartite generators, sorted.
func (r *Registry) MonoNames() []string {
	out := make([]string, 0, len(r.mono))
	for n := range r.mono {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// BipartiteNames lists bipartite generators, sorted.
func (r *Registry) BipartiteNames() []string {
	out := make([]string, 0, len(r.bip))
	for n := range r.bip {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func sgParamFloat(p map[string]string, key string, def float64) (float64, error) {
	v, ok := p[key]
	if !ok || v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("sgen: parameter %s=%q is not a number", key, v)
	}
	return f, nil
}

func sgParamBool(p map[string]string, key string, def bool) (bool, error) {
	v, ok := p[key]
	if !ok || v == "" {
		return def, nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return false, fmt.Errorf("sgen: parameter %s=%q is not a boolean", key, v)
	}
	return b, nil
}

func sgParamInt(p map[string]string, key string, def int64) (int64, error) {
	v, ok := p[key]
	if !ok || v == "" {
		return def, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("sgen: parameter %s=%q is not an integer", key, v)
	}
	return n, nil
}

func registerBuiltinSGs(r *Registry) {
	must := func(err error) {
		if err != nil && r.err == nil {
			r.err = err
		}
	}
	must(r.RegisterMono("rmat", func(p map[string]string, seed uint64) (Generator, error) {
		g := NewRMAT(seed)
		var err error
		if g.A, err = sgParamFloat(p, "a", g.A); err != nil {
			return nil, err
		}
		if g.B, err = sgParamFloat(p, "b", g.B); err != nil {
			return nil, err
		}
		if g.C, err = sgParamFloat(p, "c", g.C); err != nil {
			return nil, err
		}
		if g.D, err = sgParamFloat(p, "d", g.D); err != nil {
			return nil, err
		}
		if g.EdgeFactor, err = sgParamInt(p, "edgeFactor", g.EdgeFactor); err != nil {
			return nil, err
		}
		if g.Noise, err = sgParamFloat(p, "noise", g.Noise); err != nil {
			return nil, err
		}
		if g.KeepDuplicates, err = sgParamBool(p, "keepDuplicates", g.KeepDuplicates); err != nil {
			return nil, err
		}
		return g, nil
	}))
	must(r.RegisterMono("lfr", func(p map[string]string, seed uint64) (Generator, error) {
		g := NewLFR(seed)
		var err error
		if g.AvgDegree, err = sgParamFloat(p, "avgDegree", g.AvgDegree); err != nil {
			return nil, err
		}
		var iv int64
		if iv, err = sgParamInt(p, "maxDegree", int64(g.MaxDegree)); err != nil {
			return nil, err
		}
		g.MaxDegree = int(iv)
		if iv, err = sgParamInt(p, "minCommunity", int64(g.MinCommunity)); err != nil {
			return nil, err
		}
		g.MinCommunity = int(iv)
		if iv, err = sgParamInt(p, "maxCommunity", int64(g.MaxCommunity)); err != nil {
			return nil, err
		}
		g.MaxCommunity = int(iv)
		if g.Mu, err = sgParamFloat(p, "mu", g.Mu); err != nil {
			return nil, err
		}
		if g.Tau1, err = sgParamFloat(p, "tau1", g.Tau1); err != nil {
			return nil, err
		}
		if g.Tau2, err = sgParamFloat(p, "tau2", g.Tau2); err != nil {
			return nil, err
		}
		return g, nil
	}))
	must(r.RegisterMono("bter", func(p map[string]string, seed uint64) (Generator, error) {
		dmin, err := sgParamInt(p, "dmin", 2)
		if err != nil {
			return nil, err
		}
		dmax, err := sgParamInt(p, "dmax", 50)
		if err != nil {
			return nil, err
		}
		gamma, err := sgParamFloat(p, "gamma", 2.0)
		if err != nil {
			return nil, err
		}
		// The degree histogram is rescaled to the Run(n) size, so the
		// reference population just needs to be large enough for
		// resolution.
		return NewBTERPowerLaw(1<<20, int(dmin), int(dmax), gamma, seed)
	}))
	must(r.RegisterMono("darwini", func(p map[string]string, seed uint64) (Generator, error) {
		dmin, err := sgParamInt(p, "dmin", 2)
		if err != nil {
			return nil, err
		}
		dmax, err := sgParamInt(p, "dmax", 50)
		if err != nil {
			return nil, err
		}
		gamma, err := sgParamFloat(p, "gamma", 2.0)
		if err != nil {
			return nil, err
		}
		spread, err := sgParamFloat(p, "spread", 0.5)
		if err != nil {
			return nil, err
		}
		g, err := NewDarwiniPowerLaw(1<<20, int(dmin), int(dmax), gamma, seed)
		if err != nil {
			return nil, err
		}
		g.CCSpread = spread
		return g, nil
	}))
	must(r.RegisterMono("cascade", func(p map[string]string, seed uint64) (Generator, error) {
		g := cascade.NewGenerator(seed)
		var err error
		var iv int64
		if iv, err = sgParamInt(p, "minSize", int64(g.TreeSizeMin)); err != nil {
			return nil, err
		}
		g.TreeSizeMin = int(iv)
		if iv, err = sgParamInt(p, "maxSize", int64(g.TreeSizeMax)); err != nil {
			return nil, err
		}
		g.TreeSizeMax = int(iv)
		if g.Gamma, err = sgParamFloat(p, "gamma", g.Gamma); err != nil {
			return nil, err
		}
		if g.PreferRecent, err = sgParamFloat(p, "preferRecent", g.PreferRecent); err != nil {
			return nil, err
		}
		return &cascade.SG{Gen: g}, nil
	}))
	must(r.RegisterMono("erdos-renyi", func(p map[string]string, seed uint64) (Generator, error) {
		epn, err := sgParamFloat(p, "edgesPerNode", 8)
		if err != nil {
			return nil, err
		}
		return NewErdosRenyi(epn, seed), nil
	}))
	must(r.RegisterMono("barabasi-albert", func(p map[string]string, seed uint64) (Generator, error) {
		m, err := sgParamInt(p, "m", 4)
		if err != nil {
			return nil, err
		}
		return NewBarabasiAlbert(int(m), seed), nil
	}))
	must(r.RegisterMono("watts-strogatz", func(p map[string]string, seed uint64) (Generator, error) {
		k, err := sgParamInt(p, "k", 4)
		if err != nil {
			return nil, err
		}
		beta, err := sgParamFloat(p, "beta", 0.1)
		if err != nil {
			return nil, err
		}
		return NewWattsStrogatz(int(k), beta, seed), nil
	}))
	must(r.RegisterBipartite("powerlaw-out", func(p map[string]string, seed uint64) (BipartiteGenerator, error) {
		lo, err := sgParamInt(p, "min", 1)
		if err != nil {
			return nil, err
		}
		hi, err := sgParamInt(p, "max", 20)
		if err != nil {
			return nil, err
		}
		gamma, err := sgParamFloat(p, "gamma", 2.0)
		if err != nil {
			return nil, err
		}
		return NewPowerLawOut(int(lo), int(hi), gamma, seed), nil
	}))
	must(r.RegisterBipartite("zipf-attachment", func(p map[string]string, seed uint64) (BipartiteGenerator, error) {
		lo, err := sgParamInt(p, "min", 1)
		if err != nil {
			return nil, err
		}
		hi, err := sgParamInt(p, "max", 20)
		if err != nil {
			return nil, err
		}
		gamma, err := sgParamFloat(p, "gamma", 2.0)
		if err != nil {
			return nil, err
		}
		theta, err := sgParamFloat(p, "theta", 1.0)
		if err != nil {
			return nil, err
		}
		return NewZipfAttachment(int(lo), int(hi), gamma, theta, seed), nil
	}))
	must(r.RegisterBipartite("one-to-one", func(p map[string]string, seed uint64) (BipartiteGenerator, error) {
		return &OneToOne{Seed: seed}, nil
	}))
	must(r.RegisterBipartite("uniform-bipartite", func(p map[string]string, seed uint64) (BipartiteGenerator, error) {
		avg, err := sgParamFloat(p, "avgOut", 3)
		if err != nil {
			return nil, err
		}
		return &UniformBipartite{AvgOut: avg, Seed: seed}, nil
	}))
}
