package sgen

import (
	"fmt"
	"math"
	"sort"

	"datasynth/internal/table"
	"datasynth/internal/xrand"
)

// This file implements the classic baseline generators any
// benchmarking framework is expected to ship: Erdős–Rényi G(n,m),
// Barabási–Albert preferential attachment, and Watts–Strogatz small
// world. They round out the paper's "let the user choose between
// existing structure generators" design point.

// ErdosRenyi generates G(n, m): m uniform edges without duplicates or
// self-loops.
type ErdosRenyi struct {
	// EdgesPerNode scales m with n when Run is called: m = n·EdgesPerNode.
	EdgesPerNode float64
	Seed         uint64
}

// NewErdosRenyi returns a G(n,m) generator with m = n·edgesPerNode.
func NewErdosRenyi(edgesPerNode float64, seed uint64) *ErdosRenyi {
	return &ErdosRenyi{EdgesPerNode: edgesPerNode, Seed: seed}
}

// Name implements Generator.
func (g *ErdosRenyi) Name() string { return "erdos-renyi" }

// Run implements Generator.
func (g *ErdosRenyi) Run(n int64) (*table.EdgeTable, error) {
	if n <= 1 {
		return nil, fmt.Errorf("sgen: Erdős–Rényi needs n > 1, got %d", n)
	}
	if g.EdgesPerNode <= 0 {
		return nil, fmt.Errorf("sgen: Erdős–Rényi needs positive edges per node")
	}
	m := int64(float64(n) * g.EdgesPerNode)
	maxM := n * (n - 1) / 2
	if m > maxM {
		m = maxM
	}
	et := table.NewEdgeTable("erdos-renyi", m)
	s := xrand.NewStream(g.Seed)
	seen := make(map[uint64]struct{}, m)
	var i int64
	for et.Len() < m {
		a := s.Intn(2*i, n)
		b := s.Intn(2*i+1, n)
		i++
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		key := uint64(a)<<32 | uint64(b)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		et.Add(a, b)
	}
	return et, nil
}

// EstimatedEdges implements EdgeCountEstimator: m = n·EdgesPerNode,
// capped at the densest simple graph.
func (g *ErdosRenyi) EstimatedEdges(n int64) int64 {
	if n <= 1 || g.EdgesPerNode <= 0 {
		return 0
	}
	m := int64(float64(n) * g.EdgesPerNode)
	if maxM := n * (n - 1) / 2; m > maxM {
		m = maxM
	}
	return m
}

// NumNodesForEdges implements Generator.
func (g *ErdosRenyi) NumNodesForEdges(numEdges int64) (int64, error) {
	if g.EdgesPerNode <= 0 {
		return 0, fmt.Errorf("sgen: Erdős–Rényi needs positive edges per node")
	}
	return searchNodesForEdges(numEdges, func(n int64) float64 {
		return float64(n) * g.EdgesPerNode
	})
}

// BarabasiAlbert generates a preferential-attachment graph: each new
// node attaches M edges to existing nodes with probability proportional
// to their current degree, yielding a power-law degree distribution.
type BarabasiAlbert struct {
	M    int // edges per new node
	Seed uint64
}

// NewBarabasiAlbert returns a BA generator attaching m edges per node.
func NewBarabasiAlbert(m int, seed uint64) *BarabasiAlbert {
	return &BarabasiAlbert{M: m, Seed: seed}
}

// Name implements Generator.
func (g *BarabasiAlbert) Name() string { return "barabasi-albert" }

// Run implements Generator.
func (g *BarabasiAlbert) Run(n int64) (*table.EdgeTable, error) {
	if g.M < 1 {
		return nil, fmt.Errorf("sgen: Barabási–Albert needs M >= 1, got %d", g.M)
	}
	if n <= int64(g.M) {
		return nil, fmt.Errorf("sgen: Barabási–Albert needs n > M, got n=%d M=%d", n, g.M)
	}
	q := newSeq(g.Seed)
	m := int64(g.M)
	et := table.NewEdgeTable("barabasi-albert", (n-m)*m)
	// endpointList holds both endpoints of every edge; sampling a
	// uniform element of it is sampling proportional to degree.
	endpoints := make([]int64, 0, 2*(n-m)*m)
	// Seed clique over the first M+1 nodes.
	for a := int64(0); a <= m; a++ {
		for b := a + 1; b <= m; b++ {
			et.Add(a, b)
			endpoints = append(endpoints, a, b)
		}
	}
	for v := m + 1; v < n; v++ {
		chosen := make(map[int64]struct{}, g.M)
		for len(chosen) < g.M {
			var target int64
			if q.Float64() < 0.05 || len(endpoints) == 0 {
				target = q.Intn(v) // uniform escape hatch keeps graph connected
			} else {
				target = endpoints[q.Intn(int64(len(endpoints)))]
			}
			if target == v {
				continue
			}
			chosen[target] = struct{}{}
		}
		// The emission order of v's targets feeds both the edge table
		// bytes and the endpoints list that later nodes sample from, so
		// it must not depend on map iteration order.
		targets := make([]int64, 0, len(chosen))
		for t := range chosen {
			targets = append(targets, t)
		}
		sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
		for _, t := range targets {
			et.Add(v, t)
			endpoints = append(endpoints, v, t)
		}
	}
	return et, nil
}

// EstimatedEdges implements EdgeCountEstimator: m ≈ n·M.
func (g *BarabasiAlbert) EstimatedEdges(n int64) int64 {
	if n <= int64(g.M) || g.M < 1 {
		return 0
	}
	return (n - int64(g.M)) * int64(g.M)
}

// NumNodesForEdges implements Generator: m ≈ n·M.
func (g *BarabasiAlbert) NumNodesForEdges(numEdges int64) (int64, error) {
	if g.M < 1 {
		return 0, fmt.Errorf("sgen: Barabási–Albert needs M >= 1")
	}
	n := numEdges/int64(g.M) + int64(g.M) + 1
	if n <= int64(g.M) {
		n = int64(g.M) + 2
	}
	return n, nil
}

// WattsStrogatz generates a small-world ring lattice with K neighbours
// per side and rewiring probability Beta.
type WattsStrogatz struct {
	K    int     // each node connects to K nearest neighbours on each side
	Beta float64 // rewiring probability
	Seed uint64
}

// NewWattsStrogatz returns a WS generator.
func NewWattsStrogatz(k int, beta float64, seed uint64) *WattsStrogatz {
	return &WattsStrogatz{K: k, Beta: beta, Seed: seed}
}

// Name implements Generator.
func (g *WattsStrogatz) Name() string { return "watts-strogatz" }

// Run implements Generator.
func (g *WattsStrogatz) Run(n int64) (*table.EdgeTable, error) {
	if g.K < 1 {
		return nil, fmt.Errorf("sgen: Watts–Strogatz needs K >= 1, got %d", g.K)
	}
	if g.Beta < 0 || g.Beta > 1 {
		return nil, fmt.Errorf("sgen: Watts–Strogatz beta %v outside [0,1]", g.Beta)
	}
	if n < int64(2*g.K+1) {
		return nil, fmt.Errorf("sgen: Watts–Strogatz needs n >= 2K+1, got %d", n)
	}
	q := newSeq(g.Seed)
	et := table.NewEdgeTable("watts-strogatz", n*int64(g.K))
	seen := make(map[uint64]struct{}, n*int64(g.K))
	add := func(a, b int64) bool {
		if a == b {
			return false
		}
		x, y := a, b
		if x > y {
			x, y = y, x
		}
		key := uint64(x)<<32 | uint64(y)
		if _, dup := seen[key]; dup {
			return false
		}
		seen[key] = struct{}{}
		et.Add(a, b)
		return true
	}
	for v := int64(0); v < n; v++ {
		for k := 1; k <= g.K; k++ {
			target := (v + int64(k)) % n
			if q.Float64() < g.Beta {
				// Rewire to a uniform node, retrying on collisions.
				for tries := 0; tries < 16; tries++ {
					cand := q.Intn(n)
					if add(v, cand) {
						target = -1
						break
					}
				}
				if target == -1 {
					continue
				}
			}
			add(v, target)
		}
	}
	return et, nil
}

// EstimatedEdges implements EdgeCountEstimator: m ≈ n·K.
func (g *WattsStrogatz) EstimatedEdges(n int64) int64 {
	if g.K < 1 || n < int64(2*g.K+1) {
		return 0
	}
	return n * int64(g.K)
}

// NumNodesForEdges implements Generator: m ≈ n·K.
func (g *WattsStrogatz) NumNodesForEdges(numEdges int64) (int64, error) {
	if g.K < 1 {
		return 0, fmt.Errorf("sgen: Watts–Strogatz needs K >= 1")
	}
	n := int64(math.Ceil(float64(numEdges) / float64(g.K)))
	if min := int64(2*g.K + 1); n < min {
		n = min
	}
	return n, nil
}
