package sgen

import (
	"fmt"

	"datasynth/internal/table"
	"datasynth/internal/xrand"
)

// RMAT is the recursive-matrix generator of Chakrabarti, Zhan and
// Faloutsos (SDM'04), the generator behind Graph500 and one of the two
// used in the paper's evaluation ("we have used the default
// parameters"). Each edge picks one of the four adjacency-matrix
// quadrants with probabilities (A, B, C, D) at each of `scale`
// recursion levels.
//
// Defaults follow Graph500: (A,B,C,D) = (0.57, 0.19, 0.19, 0.05) and
// edgefactor 16, so a scale-s graph has n = 2^s nodes and m = 16·n
// edges before deduplication.
type RMAT struct {
	A, B, C, D float64
	EdgeFactor int64
	Seed       uint64
	// Noise perturbs the quadrant probabilities per level (SSCA-style
	// smoothing) to avoid degenerate staircase effects; 0 disables it.
	Noise float64
	// KeepDuplicates keeps parallel edges and self-loops as generated.
	// Graph500 keeps them; the paper's matching experiments are
	// insensitive to them. Default false removes exact duplicates.
	KeepDuplicates bool
}

// NewRMAT returns an RMAT generator with Graph500 default parameters.
func NewRMAT(seed uint64) *RMAT {
	return &RMAT{A: 0.57, B: 0.19, C: 0.19, D: 0.05, EdgeFactor: 16, Seed: seed}
}

// Name implements Generator.
func (r *RMAT) Name() string { return "rmat" }

// validate checks the quadrant probabilities.
func (r *RMAT) validate() error {
	sum := r.A + r.B + r.C + r.D
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("sgen: RMAT probabilities sum to %v, want 1", sum)
	}
	for _, p := range []float64{r.A, r.B, r.C, r.D} {
		if p < 0 {
			return fmt.Errorf("sgen: RMAT probabilities must be non-negative")
		}
	}
	if r.EdgeFactor <= 0 {
		return fmt.Errorf("sgen: RMAT edge factor must be positive, got %d", r.EdgeFactor)
	}
	return nil
}

// scaleFor returns the smallest scale s with 2^s >= n.
func scaleFor(n int64) uint {
	s := uint(0)
	for int64(1)<<s < n {
		s++
	}
	return s
}

// Run implements Generator. n is rounded up to the next power of two
// internally (ids stay < n; edges landing outside [0,n) are re-drawn by
// cycle walking), so callers may pass any positive n.
func (r *RMAT) Run(n int64) (*table.EdgeTable, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sgen: RMAT needs n > 0, got %d", n)
	}
	if err := r.validate(); err != nil {
		return nil, err
	}
	scale := scaleFor(n)
	m := r.EdgeFactor * n
	et := table.NewEdgeTable("rmat", m)
	s := xrand.NewStream(r.Seed)
	var seen map[uint64]struct{}
	if !r.KeepDuplicates {
		seen = make(map[uint64]struct{}, m)
	}
	var idx int64
	for et.Len() < m {
		t, h := r.drawEdge(s, idx, scale)
		idx++
		if idx > 100*m && et.Len() == 0 {
			return nil, fmt.Errorf("sgen: RMAT failed to generate edges")
		}
		if t >= n || h >= n {
			continue // cycle-walk for non-power-of-two n
		}
		if !r.KeepDuplicates {
			if t == h {
				continue
			}
			a, b := t, h
			if a > b {
				a, b = b, a
			}
			key := uint64(a)<<32 | uint64(b)
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
		}
		et.Add(t, h)
	}
	return et, nil
}

// drawEdge recursively selects the quadrant for draw idx.
func (r *RMAT) drawEdge(s xrand.Stream, idx int64, scale uint) (int64, int64) {
	var t, h int64
	a, b, c := r.A, r.B, r.C
	for level := uint(0); level < scale; level++ {
		// One uniform per level, decorrelated by level.
		u := s.Float64(idx*int64(scale) + int64(level))
		al, bl, cl := a, b, c
		if r.Noise > 0 {
			// Symmetric noise keeps expectation fixed.
			nz := (s.Float64(idx*int64(scale)+int64(level)+1<<40) - 0.5) * 2 * r.Noise
			al = a + a*nz
			bl = b - b*nz/2
			cl = c - c*nz/2
		}
		switch {
		case u < al:
			// quadrant (0,0): nothing to add
		case u < al+bl:
			h |= 1 << (scale - 1 - level)
		case u < al+bl+cl:
			t |= 1 << (scale - 1 - level)
		default:
			t |= 1 << (scale - 1 - level)
			h |= 1 << (scale - 1 - level)
		}
	}
	return t, h
}

// NumNodesForEdges implements Generator: n = numEdges / edgefactor,
// rounded up to a power of two as Graph500 scales are.
func (r *RMAT) NumNodesForEdges(numEdges int64) (int64, error) {
	if numEdges <= 0 {
		return 0, fmt.Errorf("sgen: numEdges must be positive, got %d", numEdges)
	}
	if r.EdgeFactor <= 0 {
		return 0, fmt.Errorf("sgen: RMAT edge factor must be positive")
	}
	n := (numEdges + r.EdgeFactor - 1) / r.EdgeFactor
	return int64(1) << scaleFor(n), nil
}

// RunScale is a Graph500-style convenience: generate at scale s
// (n = 2^s nodes).
func (r *RMAT) RunScale(scale uint) (*table.EdgeTable, error) {
	return r.Run(int64(1) << scale)
}
