package sgen

import (
	"fmt"

	"datasynth/internal/table"
)

// RMAT is the recursive-matrix generator of Chakrabarti, Zhan and
// Faloutsos (SDM'04), the generator behind Graph500 and one of the two
// used in the paper's evaluation ("we have used the default
// parameters"). Each edge picks one of the four adjacency-matrix
// quadrants with probabilities (A, B, C, D) at each of `scale`
// recursion levels.
//
// Defaults follow Graph500: (A,B,C,D) = (0.57, 0.19, 0.19, 0.05) and
// edgefactor 16, so a scale-s graph has n = 2^s nodes and m = 16·n
// edges before deduplication.
//
// Generation is sharded (see rmat_shard.go): edge draws are produced
// in rounds of fixed-size shards, each shard on its own derived RNG
// stream, and duplicates are rejected by a batched radix
// sort-and-compact pass. The edge table is a pure function of the seed
// and the parameters — byte-identical at every worker count.
type RMAT struct {
	A, B, C, D float64
	EdgeFactor int64
	Seed       uint64
	// Noise perturbs the quadrant probabilities per level (SSCA-style
	// smoothing) to avoid degenerate staircase effects; 0 disables it.
	Noise float64
	// KeepDuplicates keeps parallel edges and self-loops as generated.
	// Graph500 keeps them; the paper's matching experiments are
	// insensitive to them. Default false removes exact duplicates.
	KeepDuplicates bool
	// Workers bounds the concurrency of shard filling (0 = NumCPU,
	// 1 = serial). Shards draw from independent RNG streams keyed off
	// (Seed, round, shard) and fill disjoint slab ranges, so the edge
	// table is byte-identical at every worker count.
	Workers int

	// stats of the last Run, for RunNote.
	lastStats rmatStats
}

// NewRMAT returns an RMAT generator with Graph500 default parameters.
func NewRMAT(seed uint64) *RMAT {
	return &RMAT{A: 0.57, B: 0.19, C: 0.19, D: 0.05, EdgeFactor: 16, Seed: seed}
}

// Name implements Generator.
func (r *RMAT) Name() string { return "rmat" }

// SetWorkers implements WorkerSettable.
func (r *RMAT) SetWorkers(w int) { r.Workers = w }

// validate checks the quadrant probabilities.
func (r *RMAT) validate() error {
	sum := r.A + r.B + r.C + r.D
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("sgen: RMAT probabilities sum to %v, want 1", sum)
	}
	for _, p := range []float64{r.A, r.B, r.C, r.D} {
		if p < 0 {
			return fmt.Errorf("sgen: RMAT probabilities must be non-negative")
		}
	}
	if r.EdgeFactor <= 0 {
		return fmt.Errorf("sgen: RMAT edge factor must be positive, got %d", r.EdgeFactor)
	}
	return nil
}

// scaleFor returns the smallest scale s with 2^s >= n.
func scaleFor(n int64) uint {
	s := uint(0)
	for int64(1)<<s < n {
		s++
	}
	return s
}

// Run implements Generator. n is rounded up to the next power of two
// internally (ids stay < n; candidate edges landing outside [0,n) are
// rejected and redrawn in the next refill round), so callers may pass
// any positive n.
func (r *RMAT) Run(n int64) (*table.EdgeTable, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sgen: RMAT needs n > 0, got %d", n)
	}
	if err := r.validate(); err != nil {
		return nil, err
	}
	if scaleFor(n) > 31 {
		// Dedup keys pack two ids into one uint64 (32 bits each).
		return nil, fmt.Errorf("sgen: RMAT supports n up to 2^31, got %d", n)
	}
	return r.runSharded(n)
}

// EstimatedEdges implements EdgeCountEstimator: m = EdgeFactor·n
// exactly (Run loops until the target count is reached).
func (r *RMAT) EstimatedEdges(n int64) int64 {
	if n <= 0 || r.EdgeFactor <= 0 {
		return 0
	}
	return r.EdgeFactor * n
}

// NumNodesForEdges implements Generator: n = numEdges / edgefactor,
// rounded up to a power of two as Graph500 scales are.
func (r *RMAT) NumNodesForEdges(numEdges int64) (int64, error) {
	if numEdges <= 0 {
		return 0, fmt.Errorf("sgen: numEdges must be positive, got %d", numEdges)
	}
	if r.EdgeFactor <= 0 {
		return 0, fmt.Errorf("sgen: RMAT edge factor must be positive")
	}
	n := (numEdges + r.EdgeFactor - 1) / r.EdgeFactor
	return int64(1) << scaleFor(n), nil
}

// RunScale is a Graph500-style convenience: generate at scale s
// (n = 2^s nodes).
func (r *RMAT) RunScale(scale uint) (*table.EdgeTable, error) {
	return r.Run(int64(1) << scale)
}
