package sgen

import (
	"fmt"
	"math"
	"sort"

	"datasynth/internal/table"
)

// Darwini (Edunov et al., arXiv:1610.00664) extends BTER: where BTER
// targets the *average* clustering coefficient per degree, Darwini
// reproduces the clustering coefficient *distribution* per degree
// (ccdd) by first assigning every node an individual target triangle
// count and then grouping nodes into buckets of similar demand.
//
// This implementation follows that two-phase design:
//
//  1. Every node draws a target local clustering coefficient from the
//     per-degree distribution (here: a Beta-like two-point mixture
//     around the configured mean, matching the paper's observation
//     that real ccd distributions are wide), converted into a target
//     triangle budget t(v) = cc·d(v)·(d(v)-1)/2.
//  2. Nodes are packed into buckets with similar budgets; each bucket
//     is wired as an Erdős–Rényi block dense enough to meet the median
//     budget (triangles in ER(p) blocks concentrate around p³ per
//     wedge). Residual degree is satisfied with a Chung–Lu phase, as
//     in BTER.
type Darwini struct {
	DegreeCounts []int64 // target degree histogram (index = degree)
	// CCMean[d] is the mean local clustering target for degree d;
	// missing entries fall back to cc(d) = CCMax·exp(-(d-1)·Decay).
	CCMean []float64
	// CCSpread in [0,1] widens the per-node clustering distribution:
	// each node's target is cc·(1±CCSpread) at random — the "ccdd"
	// refinement over BTER.
	CCSpread float64
	CCMax    float64
	Decay    float64
	Seed     uint64
}

// NewDarwiniPowerLaw builds a Darwini generator with a power-law
// degree target over n nodes.
func NewDarwiniPowerLaw(n int64, dmin, dmax int, gamma float64, seed uint64) (*Darwini, error) {
	b, err := NewBTERPowerLaw(n, dmin, dmax, gamma, seed)
	if err != nil {
		return nil, err
	}
	return &Darwini{
		DegreeCounts: b.DegreeCounts,
		CCSpread:     0.5,
		CCMax:        0.95,
		Decay:        0.05,
		Seed:         seed,
	}, nil
}

// Name implements Generator.
func (d *Darwini) Name() string { return "darwini" }

func (d *Darwini) ccFor(deg int) float64 {
	if deg < len(d.CCMean) && d.CCMean[deg] > 0 && !math.IsNaN(d.CCMean[deg]) {
		return d.CCMean[deg]
	}
	ccMax := d.CCMax
	if ccMax <= 0 {
		ccMax = 0.95
	}
	decay := d.Decay
	if decay <= 0 {
		decay = 0.05
	}
	return ccMax * math.Exp(-float64(deg-1)*decay)
}

// Run implements Generator.
func (d *Darwini) Run(n int64) (*table.EdgeTable, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sgen: Darwini needs n > 0, got %d", n)
	}
	if len(d.DegreeCounts) == 0 {
		return nil, fmt.Errorf("sgen: Darwini needs a degree distribution")
	}
	if d.CCSpread < 0 || d.CCSpread > 1 {
		return nil, fmt.Errorf("sgen: Darwini CCSpread %v outside [0,1]", d.CCSpread)
	}
	bter := &BTER{DegreeCounts: d.DegreeCounts, CCMax: d.CCMax, Decay: d.Decay}
	counts, err := bter.rescaledCounts(n)
	if err != nil {
		return nil, err
	}
	q := newSeq(d.Seed)

	// Phase 0: per-node degree and individual clustering target.
	type nodeDemand struct {
		id     int64
		deg    int
		budget float64 // target triangle count
	}
	demands := make([]nodeDemand, 0, n)
	var id int64
	for deg := 1; deg < len(counts); deg++ {
		for c := int64(0); c < counts[deg]; c++ {
			cc := d.ccFor(deg)
			// Two-point spread around the mean: ccdd wider than BTER's
			// single value per degree.
			if d.CCSpread > 0 {
				if q.Float64() < 0.5 {
					cc *= 1 + d.CCSpread
				} else {
					cc *= 1 - d.CCSpread
				}
				if cc > 1 {
					cc = 1
				}
			}
			demands = append(demands, nodeDemand{
				id:     id,
				deg:    deg,
				budget: cc * float64(deg) * float64(deg-1) / 2,
			})
			id++
		}
	}
	nn := int64(len(demands))
	if nn == 0 {
		return table.NewEdgeTable("darwini", 0), nil
	}

	// Phase 1: sort by triangle budget and pack buckets of similar
	// demand (Darwini's grouping refinement). Bucket size tracks the
	// median degree inside the bucket.
	sort.Slice(demands, func(a, b int) bool {
		if demands[a].budget != demands[b].budget {
			return demands[a].budget < demands[b].budget
		}
		return demands[a].id < demands[b].id
	})
	et := table.NewEdgeTable("darwini", 0)
	seen := make(map[uint64]struct{})
	addEdge := func(a, b int64) bool {
		if a == b {
			return false
		}
		x, y := a, b
		if x > y {
			x, y = y, x
		}
		key := uint64(x)<<32 | uint64(y)
		if _, dup := seen[key]; dup {
			return false
		}
		seen[key] = struct{}{}
		et.Add(a, b)
		return true
	}

	excess := make([]float64, nn) // residual degree, indexed by demand position
	pos := 0
	for pos < len(demands) {
		// Bucket size: median degree + 1, clipped to remaining nodes.
		deg := demands[pos].deg
		size := deg + 1
		if size < 2 {
			excess[pos] = float64(demands[pos].deg)
			pos++
			continue
		}
		if pos+size > len(demands) {
			size = len(demands) - pos
		}
		bucket := demands[pos : pos+size]
		// Connectivity to hit the median budget: budget ≈ rho³ wedges.
		med := bucket[len(bucket)/2]
		wedges := float64(med.deg) * float64(med.deg-1) / 2
		rho := 0.0
		if wedges > 0 {
			rho = math.Cbrt(med.budget / wedges)
		}
		if rho > 1 {
			rho = 1
		}
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				if q.Float64() < rho {
					addEdge(bucket[i].id, bucket[j].id)
				}
			}
		}
		expectedIn := rho * float64(size-1)
		for i := 0; i < size; i++ {
			e := float64(bucket[i].deg) - expectedIn
			if e < 0 {
				e = 0
			}
			excess[pos+i] = e
		}
		pos += size
	}

	// Phase 2: Chung–Lu over residual degrees (same as BTER).
	var totalExcess float64
	cum := make([]float64, nn)
	acc := 0.0
	for i := int64(0); i < nn; i++ {
		acc += excess[i]
		cum[i] = acc
	}
	totalExcess = acc
	if totalExcess > 1 {
		targetEdges := int64(totalExcess / 2)
		attempts := targetEdges * 10
		sample := func() int64 {
			u := q.Float64() * acc
			return demands[sort.SearchFloat64s(cum, u)].id
		}
		for e, tries := int64(0), int64(0); e < targetEdges && tries < attempts; tries++ {
			a, b := sample(), sample()
			if addEdge(a, b) {
				e++
			}
		}
	}
	return et, nil
}

// NumNodesForEdges implements Generator.
func (d *Darwini) NumNodesForEdges(numEdges int64) (int64, error) {
	b := &BTER{DegreeCounts: d.DegreeCounts}
	return b.NumNodesForEdges(numEdges)
}
