package sgen

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"runtime"
	"sort"
	"testing"

	"datasynth/internal/table"
	"datasynth/internal/xrand"
)

// rmatConfigs are the generator shapes whose worker-count invariance
// the sharding contract promises: the alias fast path, the per-level
// Noise path, the KeepDuplicates path and the cycle-walking
// non-power-of-two path.
func rmatConfigs() map[string]func() *RMAT {
	return map[string]func() *RMAT{
		"default": func() *RMAT { return NewRMAT(21) },
		"noise": func() *RMAT {
			g := NewRMAT(22)
			g.Noise = 0.1
			return g
		},
		"keepDuplicates": func() *RMAT {
			g := NewRMAT(23)
			g.KeepDuplicates = true
			return g
		},
		"noisyKeepDuplicates": func() *RMAT {
			g := NewRMAT(24)
			g.Noise = 0.05
			g.KeepDuplicates = true
			return g
		},
	}
}

// TestRMATWorkerCountByteIdentical: the sharded generator must produce
// the same edge table no matter how many workers fill the slab —
// per-(round, shard) RNG streams over disjoint slab ranges plus a
// deterministic round budget make the output a pure function of the
// seed and parameters.
func TestRMATWorkerCountByteIdentical(t *testing.T) {
	for name, mk := range rmatConfigs() {
		for _, n := range []int64{1 << 12, 3000} {
			run := func(workers int) *table.EdgeTable {
				g := mk()
				g.Workers = workers
				et, err := g.Run(n)
				if err != nil {
					t.Fatalf("%s n=%d workers=%d: %v", name, n, workers, err)
				}
				return et
			}
			ref := run(1)
			if ref.Len() == 0 {
				t.Fatalf("%s n=%d: no edges", name, n)
			}
			for _, w := range []int{2, 3, runtime.NumCPU()} {
				got := run(w)
				if got.Len() != ref.Len() {
					t.Fatalf("%s n=%d workers=%d: %d edges, serial %d", name, n, w, got.Len(), ref.Len())
				}
				for i := range ref.Tail {
					if ref.Tail[i] != got.Tail[i] || ref.Head[i] != got.Head[i] {
						t.Fatalf("%s n=%d workers=%d: edge %d is (%d,%d), serial (%d,%d)",
							name, n, w, i, got.Tail[i], got.Head[i], ref.Tail[i], ref.Head[i])
					}
				}
			}
		}
	}
}

func edgeTableSHA256(et *table.EdgeTable) string {
	h := sha256.New()
	var buf [16]byte
	for i := range et.Tail {
		binary.LittleEndian.PutUint64(buf[:8], uint64(et.Tail[i]))
		binary.LittleEndian.PutUint64(buf[8:], uint64(et.Head[i]))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestRMATGoldenHash pins the exact edge table of a fixed
// configuration. A change here means the generator's output changed
// for existing seeds — an intentional break of the per-seed
// reproducibility contract that must be called out in release notes
// (as the sharded rewrite itself was).
func TestRMATGoldenHash(t *testing.T) {
	const want = "204a64c5f795d880a44a524b64524ddc664762552019e9a9bfd24d941af77b24"
	for _, w := range []int{1, runtime.NumCPU()} {
		g := NewRMAT(7)
		g.Workers = w
		et, err := g.Run(1 << 12)
		if err != nil {
			t.Fatal(err)
		}
		if got := edgeTableSHA256(et); got != want {
			t.Fatalf("workers=%d: edge table hash %s, want %s", w, got, want)
		}
	}
}

// TestRMATQuadrantSkewShardedAndReference: the A quadrant
// (low-id half on both endpoints) must dominate the D quadrant on
// every draw path — the alias fast path and the per-level reference
// path (forced via Noise, which is the per-level branch).
func TestRMATQuadrantSkewShardedAndReference(t *testing.T) {
	check := func(name string, g *RMAT) {
		n := int64(1 << 12)
		et, err := g.Run(n)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		half := n / 2
		var aa, dd int64
		for i := range et.Tail {
			lowT, lowH := et.Tail[i] < half, et.Head[i] < half
			switch {
			case lowT && lowH:
				aa++
			case !lowT && !lowH:
				dd++
			}
		}
		if aa < 4*dd {
			t.Fatalf("%s: A corner %d not dominant over D corner %d", name, aa, dd)
		}
	}
	check("alias", NewRMAT(31))
	noisy := NewRMAT(31)
	noisy.Noise = 0.05
	check("per-level", noisy)
	parallel := NewRMAT(31)
	parallel.Workers = 4
	check("alias-4workers", parallel)
}

// TestRMATEdgeFactorAndSimpleGraph: every configuration must hit the
// exact edge target, and the default (dedup) configurations must emit
// a simple graph — no self-loops, no repeated undirected pairs.
func TestRMATEdgeFactorAndSimpleGraph(t *testing.T) {
	for name, mk := range rmatConfigs() {
		for _, n := range []int64{1 << 12, 3000} {
			g := mk()
			et, err := g.Run(n)
			if err != nil {
				t.Fatalf("%s n=%d: %v", name, n, err)
			}
			if et.Len() != g.EdgeFactor*n {
				t.Fatalf("%s n=%d: %d edges, want %d", name, n, et.Len(), g.EdgeFactor*n)
			}
			for i := range et.Tail {
				if et.Tail[i] < 0 || et.Tail[i] >= n || et.Head[i] < 0 || et.Head[i] >= n {
					t.Fatalf("%s n=%d: edge %d endpoint out of range: (%d,%d)", name, n, i, et.Tail[i], et.Head[i])
				}
			}
			if g.KeepDuplicates {
				continue
			}
			seen := make(map[uint64]struct{}, et.Len())
			for i := range et.Tail {
				if et.Tail[i] == et.Head[i] {
					t.Fatalf("%s n=%d: self-loop at %d", name, n, et.Tail[i])
				}
				key := packEdgeKey(et.Tail[i], et.Head[i])
				if _, dup := seen[key]; dup {
					t.Fatalf("%s n=%d: duplicate edge (%d,%d)", name, n, et.Tail[i], et.Head[i])
				}
				seen[key] = struct{}{}
			}
		}
	}
}

// TestRMATAliasOutcomeDistribution validates the alias sampler against
// the closed-form outcome probabilities: a remainder-only table
// (scale 2: 16 outcomes) sampled heavily must reproduce each
// outcome's product probability, and on a block-path table (scale 8)
// every level's tail/head-bit marginal must match C+D and B+D.
func TestRMATAliasOutcomeDistribution(t *testing.T) {
	a, b, c, d := 0.57, 0.19, 0.19, 0.05
	p := [4]float64{a, b, c, d}

	// Remainder path, exact per-outcome check.
	{
		al := newRMATAlias(a, b, c, d, 2)
		const draws = 1 << 19
		tails := make([]int64, draws)
		heads := make([]int64, draws)
		q := xrand.NewSeq(99)
		drawShardAlias(q, tails, heads, al)
		counts := make([]int64, 16)
		for i := range tails {
			counts[tails[i]*4+heads[i]]++
		}
		for th := 0; th < 16; th++ {
			tt, hh := th/4, th%4
			want := 1.0
			for lvl := 1; lvl >= 0; lvl-- {
				qd := (tt>>lvl&1)<<1 | hh>>lvl&1
				want *= p[qd]
			}
			got := float64(counts[th]) / draws
			if diff := got - want; diff > 0.01 || diff < -0.01 {
				t.Fatalf("outcome (%d,%d): frequency %.4f, want %.4f", tt, hh, got, want)
			}
		}
	}

	// Block path, per-level marginals.
	{
		al := newRMATAlias(a, b, c, d, 8)
		const draws = 1 << 19
		tails := make([]int64, draws)
		heads := make([]int64, draws)
		q := xrand.NewSeq(100)
		drawShardAlias(q, tails, heads, al)
		for lvl := 0; lvl < 8; lvl++ {
			var tSet, hSet int64
			for i := range tails {
				tSet += tails[i] >> lvl & 1
				hSet += heads[i] >> lvl & 1
			}
			tGot, hGot := float64(tSet)/draws, float64(hSet)/draws
			if diff := tGot - (c + d); diff > 0.01 || diff < -0.01 {
				t.Fatalf("level %d: tail-bit marginal %.4f, want %.4f", lvl, tGot, c+d)
			}
			if diff := hGot - (b + d); diff > 0.01 || diff < -0.01 {
				t.Fatalf("level %d: head-bit marginal %.4f, want %.4f", lvl, hGot, b+d)
			}
		}
	}
}

// TestRMATRunNote: sharding telemetry must reach the engine's timing
// report via the Noter interface.
func TestRMATRunNote(t *testing.T) {
	g := NewRMAT(12)
	g.Workers = 2
	if _, err := g.Run(1 << 10); err != nil {
		t.Fatal(err)
	}
	var _ Noter = g
	note := g.RunNote()
	if note == "" {
		t.Fatal("empty RunNote after Run")
	}
	t.Logf("note: %s", note)
}

// naiveDedupRound is the reference semantics of one
// appendDeduped/appendDedupedPacked round: filter self-loops and
// out-of-range endpoints, drop keys duplicated within the round or
// accepted by any earlier round, emit winners in sorted key order up
// to limit, and remember every winner (even limit-dropped ones).
func naiveDedupRound(accepted map[uint64]struct{}, et *table.EdgeTable, tails, heads []int64, n, limit int64) {
	inRound := map[uint64]struct{}{}
	var fresh []uint64
	for i := range tails {
		t, h := tails[i], heads[i]
		if t == h || t >= n || h >= n {
			continue
		}
		key := packEdgeKey(t, h)
		if _, dup := accepted[key]; dup {
			continue
		}
		if _, dup := inRound[key]; dup {
			continue
		}
		inRound[key] = struct{}{}
		fresh = append(fresh, key)
	}
	sort.Slice(fresh, func(i, j int) bool { return fresh[i] < fresh[j] })
	for _, key := range fresh {
		if limit > 0 {
			et.Add(int64(key>>32), int64(key&0xffffffff))
			limit--
		}
		accepted[key] = struct{}{}
	}
}

// checkRMATDedupAgainstReference drives both dedup front-ends (the
// unpacked Noise-path one and the packed fast-path one) through
// multiple rounds over fuzz-derived candidates and compares each
// against the map reference. span bounds the id universe — small spans
// maximise duplicate and self-loop pressure; n < span forces
// out-of-range rejections.
func checkRMATDedupAgainstReference(t *testing.T, data []byte, span uint8, n int64, limits []int64) {
	if span < 2 {
		span = 2
	}
	if n < 2 {
		n = 2
	}
	if len(data)%2 == 1 {
		data = data[:len(data)-1]
	}
	nCand := len(data) / 2
	tails := make([]int64, nCand)
	heads := make([]int64, nCand)
	for i := 0; i < nCand; i++ {
		tails[i] = int64(data[2*i]) % int64(span)
		heads[i] = int64(data[2*i+1]) % int64(span)
	}

	for _, packed := range []bool{false, true} {
		dd := newEdgeDedup(0)
		fast := table.NewEdgeTable("fast", 0)
		naive := table.NewEdgeTable("naive", 0)
		accepted := map[uint64]struct{}{}
		// Rounds split the candidates in half so the accepted set and
		// both merge paths (in-place and reallocating) see action.
		half := nCand / 2
		bounds := [][2]int{{0, half}, {half, nCand}}
		for r, lim := range limits {
			lo, hi := bounds[r%2][0], bounds[r%2][1]
			if packed {
				slab := make([]uint64, 0, hi-lo)
				for i := lo; i < hi; i++ {
					a, b := tails[i], heads[i]
					if a > b {
						a, b = b, a
					}
					slab = append(slab, uint64(a)<<32|uint64(b))
				}
				dd.appendDedupedPacked(fast, slab, n, lim)
			} else {
				dd.appendDeduped(fast, tails[lo:hi], heads[lo:hi], n, lim)
			}
			naiveDedupRound(accepted, naive, tails[lo:hi], heads[lo:hi], n, lim)
		}
		kind := "unpacked"
		if packed {
			kind = "packed"
		}
		assertSameEdges(t, kind, naive, fast)
	}
}

// FuzzRMATDedup go-fuzzes the sharded-RMAT dedup rounds against the
// map reference.
func FuzzRMATDedup(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 1, 0}, uint8(4), int64(4), int64(100), int64(100))
	f.Add([]byte{1, 1, 1, 1, 9, 9}, uint8(8), int64(5), int64(1), int64(0))
	f.Add([]byte{}, uint8(2), int64(2), int64(3), int64(3))
	f.Fuzz(func(t *testing.T, data []byte, span uint8, n, lim1, lim2 int64) {
		if len(data) > 1<<12 {
			data = data[:1<<12]
		}
		if n < 0 || n > 1<<31 {
			n = 16
		}
		if lim1 < 0 {
			lim1 = -lim1
		}
		if lim2 < 0 {
			lim2 = -lim2
		}
		checkRMATDedupAgainstReference(t, data, span, n, []int64{lim1, lim2, 1 << 30})
	})
}

// TestRMATDedupAgainstReference runs the fuzz body over deterministic
// batches on every ordinary `go test`.
func TestRMATDedupAgainstReference(t *testing.T) {
	q := newSeq(17)
	for trial := 0; trial < 60; trial++ {
		data := make([]byte, int(q.Intn(500)))
		for i := range data {
			data[i] = byte(q.Intn(256))
		}
		span := uint8(2 + q.Intn(30))
		n := 2 + q.Intn(40)
		limits := []int64{q.Intn(200), q.Intn(4), 1 << 30}
		checkRMATDedupAgainstReference(t, data, span, n, limits)
	}
}
