// Package sgen implements DataSynth's Structure Generators (paper
// Section 4.1). A Structure Generator (SG) produces the edge table of
// one edge type; properties are attached later by the matching step, so
// SGs deal only in anonymous node ids [0, n).
//
// The SG interface mirrors the paper exactly:
//
//	initialize(...)            -> configured generator (Go: constructor)
//	run(n)                     -> EdgeTable            (Go: Run)
//	getNumNodes(numEdges)      -> n                    (Go: NumNodesForEdges)
//
// The package ships the generators the paper's evaluation and related
// work discuss: RMAT (Graph500), LFR, BTER, plus Erdős–Rényi,
// Barabási–Albert and Watts–Strogatz as commonly needed baselines, and
// bipartite generators for 1→* and *→* edge types between different
// node types.
//
// # Determinism and sharding
//
// Every generator is a pure function of its seed and parameters. The
// two hot generators, LFR and RMAT, additionally shard their work
// across workers without breaking that contract: work is split into
// units whose content is a pure function of (seed, unit index) — LFR
// derives one RNG stream per community, RMAT one per (round, shard)
// via NewStream(seed).DeriveStream("rmat.shard").DeriveN(r<<20|s) —
// and units fill disjoint output ranges that a sequential pass then
// resolves in a fixed order (RMAT's radix sort-and-compact dedup runs
// there). Worker count only decides who computes a unit, never what it
// contains, so the edge table is byte-identical at every Workers
// setting; golden-hash tests pin the exact bytes. Changing a
// generator's drawing scheme changes the bytes for a given seed and
// must bump core.SchemaVersion.
package sgen

import (
	"fmt"

	"datasynth/internal/table"
)

// Generator produces graph structure for one edge type. Implementations
// must be deterministic for a fixed seed.
type Generator interface {
	// Name identifies the generator in the DSL and in diagnostics.
	Name() string
	// Run generates the edges of a graph over n nodes. Endpoint ids are
	// in [0, n); edge ids are the dense row numbers of the returned
	// table.
	Run(n int64) (*table.EdgeTable, error)
	// NumNodesForEdges returns the node count n such that Run(n) yields
	// approximately numEdges edges — the paper's getNumNodes, used when
	// the user scales the graph by edge count.
	NumNodesForEdges(numEdges int64) (int64, error)
}

// WorkerSettable is implemented by generators that can shard their
// work across a bounded worker pool (e.g. LFR's intra-community
// wiring). Implementations must stay byte-deterministic at every
// worker count; the engine propagates its own Workers setting through
// this interface.
type WorkerSettable interface {
	SetWorkers(workers int)
}

// Noter is implemented by generators that report a one-line telemetry
// note about their most recent Run; the engine attaches it to the
// structure task's row in the timing report (as match tasks do with
// their SBM-Part per-pass breakdown).
type Noter interface {
	RunNote() string
}

// EdgeCountEstimator is implemented by generators whose edge count is
// a cheap closed form of the node count. The generation service uses
// it to derive admission size bounds for schemas whose edge counts are
// inferred (Count = 0) — rejecting oversized jobs at submit instead of
// after generation. Estimates are approximate (a few percent off is
// fine); the post-generation check stays authoritative.
type EdgeCountEstimator interface {
	// EstimatedEdges returns the approximate number of edges Run(n)
	// produces, or 0 when no estimate is possible.
	EstimatedEdges(n int64) int64
}

// BipartiteGenerator produces structure between two distinct node
// domains (e.g. the running example's `creates` between Person and
// Message). Tail ids are in [0, nTail), head ids in [0, nHead).
type BipartiteGenerator interface {
	Name() string
	// RunBipartite generates edges from nTail tail nodes. If nHead < 0
	// the generator chooses the head count itself (e.g. exactly one
	// Message per `creates` edge) and the implied head count is the
	// table's max head id + 1.
	RunBipartite(nTail, nHead int64) (*table.EdgeTable, error)
	// NumTailsForEdges sizes the tail domain from a desired edge count.
	NumTailsForEdges(numEdges int64) (int64, error)
}

// searchNodesForEdges numerically inverts an edge-count model m(n) that
// is monotone in n. Used by generators whose edge count is not a closed
// form of n.
func searchNodesForEdges(numEdges int64, edgesAt func(n int64) float64) (int64, error) {
	if numEdges <= 0 {
		return 0, fmt.Errorf("sgen: numEdges must be positive, got %d", numEdges)
	}
	lo, hi := int64(1), int64(2)
	for edgesAt(hi) < float64(numEdges) {
		hi *= 2
		if hi > 1<<40 {
			return 0, fmt.Errorf("sgen: cannot reach %d edges", numEdges)
		}
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		if edgesAt(mid) < float64(numEdges) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, nil
}
