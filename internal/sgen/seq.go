package sgen

import "datasynth/internal/xrand"

// seq adapts a randomly addressable xrand.Stream into a sequential
// source for batch generators (LFR, BTER, …) whose algorithms are
// inherently sequential. Determinism is preserved: a fixed seed yields
// a fixed sequence.
type seq struct {
	s xrand.Stream
	i int64
}

func newSeq(seed uint64) *seq { return &seq{s: xrand.NewStream(seed)} }

func (q *seq) next() int64 { q.i++; return q.i - 1 }

func (q *seq) Float64() float64 { return q.s.Float64(q.next()) }

func (q *seq) Intn(n int64) int64 { return q.s.Intn(q.next(), n) }

// Shuffle permutes xs in place (Fisher–Yates).
func (q *seq) ShuffleInt64(xs []int64) {
	for i := len(xs) - 1; i > 0; i-- {
		j := q.Intn(int64(i + 1))
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// SampleDiscrete draws from d.
func (q *seq) SampleDiscrete(d *xrand.Discrete) int { return d.SampleU(q.Float64()) }
