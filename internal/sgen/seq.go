package sgen

import "datasynth/internal/xrand"

// seq is the sequential randomness source for batch generators (LFR,
// BTER, …) whose algorithms are inherently sequential. It is a thin
// alias over xrand.Seq (sequential splitmix64 — one mix per draw,
// versus two for the addressable Stream) plus the distribution helper
// the generators share. Determinism is preserved: a fixed seed yields
// a fixed sequence.
type seq struct {
	xrand.Seq
}

func newSeq(seed uint64) *seq { return &seq{*xrand.NewSeq(seed)} }

// newSeqFromStream keys a sequential source off an already-derived
// stream (e.g. a per-shard child from Stream.DeriveN), so shards can
// consume randomness independently of each other and of the parent.
func newSeqFromStream(s xrand.Stream) *seq { return &seq{*xrand.NewSeq(s.Seed())} }

// SampleDiscrete draws from d.
func (q *seq) SampleDiscrete(d *xrand.Discrete) int { return d.SampleU(q.Float64()) }
