package sgen

import (
	"testing"
)

func TestPowerLawOutFreshHeads(t *testing.T) {
	g := NewPowerLawOut(1, 10, 2.0, 7)
	et, err := g.RunBipartite(500, -1)
	if err != nil {
		t.Fatal(err)
	}
	// Every head id must be unique and dense [0, m) — one Message per
	// creates edge.
	seen := make(map[int64]bool, et.Len())
	var maxHead int64 = -1
	for i := int64(0); i < et.Len(); i++ {
		h := et.Head[i]
		if seen[h] {
			t.Fatalf("head %d repeated", h)
		}
		seen[h] = true
		if h > maxHead {
			maxHead = h
		}
	}
	if maxHead+1 != et.Len() {
		t.Errorf("heads not dense: max %d, edges %d", maxHead, et.Len())
	}
	if et.MaxNode() < et.Len() {
		t.Errorf("MaxNode = %d", et.MaxNode())
	}
}

func TestPowerLawOutEveryTailHasEdges(t *testing.T) {
	g := NewPowerLawOut(1, 5, 2.0, 3)
	et, err := g.RunBipartite(200, -1)
	if err != nil {
		t.Fatal(err)
	}
	outDeg := make(map[int64]int)
	for i := int64(0); i < et.Len(); i++ {
		outDeg[et.Tail[i]]++
	}
	for tail := int64(0); tail < 200; tail++ {
		d := outDeg[tail]
		if d < 1 || d > 5 {
			t.Fatalf("tail %d has out-degree %d outside [1,5]", tail, d)
		}
	}
}

func TestPowerLawOutDeterministic(t *testing.T) {
	a, _ := NewPowerLawOut(1, 8, 1.5, 4).RunBipartite(100, -1)
	b, _ := NewPowerLawOut(1, 8, 1.5, 4).RunBipartite(100, -1)
	if a.Len() != b.Len() {
		t.Fatal("non-deterministic length")
	}
	for i := int64(0); i < a.Len(); i++ {
		if a.Tail[i] != b.Tail[i] || a.Head[i] != b.Head[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestPowerLawOutNumTails(t *testing.T) {
	g := NewPowerLawOut(2, 2, 1.0, 9) // exactly 2 per tail
	n, err := g.NumTailsForEdges(1000)
	if err != nil {
		t.Fatal(err)
	}
	if n != 500 {
		t.Errorf("NumTailsForEdges = %d, want 500", n)
	}
	et, err := g.RunBipartite(n, -1)
	if err != nil {
		t.Fatal(err)
	}
	if et.Len() != 1000 {
		t.Errorf("edges = %d, want 1000", et.Len())
	}
}

func TestPowerLawOutValidation(t *testing.T) {
	if _, err := NewPowerLawOut(1, 5, 2, 1).RunBipartite(0, -1); err == nil {
		t.Error("nTail=0 should fail")
	}
	if _, err := NewPowerLawOut(5, 2, 2, 1).RunBipartite(10, -1); err == nil {
		t.Error("min>max should fail")
	}
}

func TestZipfAttachmentRanges(t *testing.T) {
	g := NewZipfAttachment(1, 10, 2.0, 1.0, 5)
	et, err := g.RunBipartite(400, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := et.Validate(400, 100); err != nil {
		t.Fatal(err)
	}
	if et.Len() == 0 {
		t.Fatal("no edges")
	}
}

func TestZipfAttachmentSkewedPopularity(t *testing.T) {
	g := NewZipfAttachment(3, 10, 2.0, 1.2, 5)
	et, err := g.RunBipartite(2000, 200)
	if err != nil {
		t.Fatal(err)
	}
	inDeg := make([]int64, 200)
	for i := int64(0); i < et.Len(); i++ {
		inDeg[et.Head[i]]++
	}
	var maxIn, sum int64
	for _, d := range inDeg {
		if d > maxIn {
			maxIn = d
		}
		sum += d
	}
	avg := float64(sum) / 200
	if float64(maxIn) < 3*avg {
		t.Errorf("max in-degree %d vs avg %.1f: popularity not skewed", maxIn, avg)
	}
}

func TestZipfAttachmentNoDuplicatePerTail(t *testing.T) {
	g := NewZipfAttachment(5, 8, 2.0, 1.0, 5)
	et, err := g.RunBipartite(50, 30)
	if err != nil {
		t.Fatal(err)
	}
	type pair struct{ t, h int64 }
	seen := map[pair]bool{}
	for i := int64(0); i < et.Len(); i++ {
		p := pair{et.Tail[i], et.Head[i]}
		if seen[p] {
			t.Fatalf("duplicate edge %v", p)
		}
		seen[p] = true
	}
}

func TestZipfAttachmentValidation(t *testing.T) {
	if _, err := NewZipfAttachment(1, 5, 2, 1, 1).RunBipartite(0, 10); err == nil {
		t.Error("nTail=0 should fail")
	}
	if _, err := NewZipfAttachment(1, 5, 2, 1, 1).RunBipartite(10, 0); err == nil {
		t.Error("nHead=0 should fail")
	}
}

func TestOneToOnePerfectMatching(t *testing.T) {
	g := &OneToOne{Seed: 3}
	et, err := g.RunBipartite(100, -1)
	if err != nil {
		t.Fatal(err)
	}
	if et.Len() != 100 {
		t.Fatalf("edges = %d, want 100", et.Len())
	}
	seenT, seenH := map[int64]bool{}, map[int64]bool{}
	for i := int64(0); i < 100; i++ {
		if seenT[et.Tail[i]] || seenH[et.Head[i]] {
			t.Fatalf("edge %d reuses an endpoint", i)
		}
		seenT[et.Tail[i]] = true
		seenH[et.Head[i]] = true
	}
}

func TestOneToOneMismatchedDomains(t *testing.T) {
	g := &OneToOne{Seed: 3}
	if _, err := g.RunBipartite(10, 20); err == nil {
		t.Error("unequal domains should fail")
	}
	if n, err := g.NumTailsForEdges(50); err != nil || n != 50 {
		t.Errorf("NumTailsForEdges = %d, %v", n, err)
	}
}

func TestUniformBipartite(t *testing.T) {
	g := &UniformBipartite{AvgOut: 3, Seed: 9}
	et, err := g.RunBipartite(100, 50)
	if err != nil {
		t.Fatal(err)
	}
	if et.Len() != 300 {
		t.Errorf("edges = %d, want 300", et.Len())
	}
	if err := et.Validate(100, 50); err != nil {
		t.Fatal(err)
	}
	n, err := g.NumTailsForEdges(3000)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1000 {
		t.Errorf("NumTailsForEdges = %d, want 1000", n)
	}
}

func TestUniformBipartiteValidation(t *testing.T) {
	g := &UniformBipartite{AvgOut: 0, Seed: 1}
	if _, err := g.RunBipartite(10, 10); err == nil {
		t.Error("AvgOut=0 should fail")
	}
}

func TestSearchNodesForEdgesMonotone(t *testing.T) {
	n, err := searchNodesForEdges(1000, func(n int64) float64 { return float64(n) * 2 })
	if err != nil {
		t.Fatal(err)
	}
	if n != 500 {
		t.Errorf("inverse of 2n at 1000 = %d, want 500", n)
	}
	if _, err := searchNodesForEdges(0, func(n int64) float64 { return float64(n) }); err == nil {
		t.Error("numEdges=0 should fail")
	}
}
