package sgen

import (
	"testing"

	"datasynth/internal/table"
)

// The fuzz harness pits the batched dedup (radix sort-and-compact for
// the filtered path, generation-stamped direct addressing for the
// intra-community path) against a naive map[uint64]struct{} reference
// that implements the documented semantics verbatim: within a round
// the earliest occurrence of an edge key wins, later occurrences and
// previously accepted keys fail, and failing stubs are re-shuffled
// into the next round. Both sides must emit identical edge sequences.

// naivePairStubsFiltered is the reference for pairStubsFiltered.
func naivePairStubsFiltered(q *seq, et *table.EdgeTable, stubs []int64, rounds int, ok func(a, b int64) bool) {
	accepted := map[uint64]struct{}{}
	pending := stubs
	for r := 0; r < rounds && len(pending) >= 2; r++ {
		q.ShuffleInt64(pending)
		w := 0
		for i := 0; i+1 < len(pending); i += 2 {
			a, b := pending[i], pending[i+1]
			won := false
			if a != b && (ok == nil || ok(a, b)) {
				key := packEdgeKey(a, b)
				if _, dup := accepted[key]; !dup {
					accepted[key] = struct{}{}
					lo, hi := a, b
					if lo > hi {
						lo, hi = hi, lo
					}
					et.Add(lo, hi)
					won = true
				}
			}
			if !won {
				pending[w], pending[w+1] = a, b
				w += 2
			}
		}
		pending = pending[:w]
	}
}

// naivePairStubsDirect is the reference for pairStubsDirect (stubs are
// local member indices).
func naivePairStubsDirect(q *seq, et *table.EdgeTable, stubs []int64, members []int64, rounds int) {
	accepted := map[uint64]struct{}{}
	pending := stubs
	for r := 0; r < rounds && len(pending) >= 2; r++ {
		q.ShuffleInt64(pending)
		w := 0
		for i := 0; i+1 < len(pending); i += 2 {
			la, lb := pending[i], pending[i+1]
			won := false
			if la != lb {
				key := packEdgeKey(la, lb)
				if _, dup := accepted[key]; !dup {
					accepted[key] = struct{}{}
					a, b := members[la], members[lb]
					if a > b {
						a, b = b, a
					}
					et.Add(a, b)
					won = true
				}
			}
			if !won {
				pending[w], pending[w+1] = la, lb
				w += 2
			}
		}
		pending = pending[:w]
	}
}

func assertSameEdges(t *testing.T, kind string, want, got *table.EdgeTable) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("%s: %d edges, reference %d", kind, got.Len(), want.Len())
	}
	for i := range want.Tail {
		if want.Tail[i] != got.Tail[i] || want.Head[i] != got.Head[i] {
			t.Fatalf("%s: edge %d is (%d,%d), reference (%d,%d)",
				kind, i, got.Tail[i], got.Head[i], want.Tail[i], want.Head[i])
		}
	}
}

// checkDedupAgainstReference derives a stub batch from raw fuzz bytes
// and runs every dedup path against its reference. span bounds the id
// universe — small spans maximise duplicate and self-loop pressure.
func checkDedupAgainstReference(t *testing.T, seed uint64, data []byte, span uint8, withFilter bool) {
	if span < 2 {
		span = 2
	}
	stubs := make([]int64, len(data))
	for i, b := range data {
		stubs[i] = int64(b) % int64(span)
	}
	if len(stubs)%2 == 1 {
		stubs = stubs[:len(stubs)-1]
	}
	var ok func(a, b int64) bool
	if withFilter {
		ok = func(a, b int64) bool { return a%3 != b%3 }
	}

	// Filtered (sorted-key) path — also the oversized-community
	// fallback branch of the intra wiring.
	{
		dd := newEdgeDedup(0)
		fast := table.NewEdgeTable("fast", 0)
		stubsA := append([]int64(nil), stubs...)
		pairStubsFiltered(newSeq(seed), dd, fast, stubsA, 8, ok)

		naive := table.NewEdgeTable("naive", 0)
		stubsB := append([]int64(nil), stubs...)
		naivePairStubsFiltered(newSeq(seed), naive, stubsB, 8, ok)
		assertSameEdges(t, "filtered", naive, fast)
	}

	// Direct (stamp-table) path: stubs become local indices into a
	// member list, exactly as intra-community wiring uses it.
	{
		members := make([]int64, span)
		for i := range members {
			members[i] = int64(1000 + i*7)
		}
		dd := newEdgeDedup(0)
		fast := table.NewEdgeTable("fast", 0)
		stubsA := append([]int64(nil), stubs...)
		pairStubsDirect(newSeq(seed), dd, fast, stubsA, members, 8)

		naive := table.NewEdgeTable("naive", 0)
		stubsB := append([]int64(nil), stubs...)
		naivePairStubsDirect(newSeq(seed), naive, stubsB, members, 8)
		assertSameEdges(t, "direct", naive, fast)
	}

	// Dedup state must also survive reuse: a second phase on the same
	// edgeDedup after reset() must behave like a fresh reference.
	{
		dd := newEdgeDedup(0)
		fast := table.NewEdgeTable("fast", 0)
		pairStubsFiltered(newSeq(seed), dd, fast, append([]int64(nil), stubs...), 4, nil)
		dd.reset()
		pairStubsFiltered(newSeq(seed+1), dd, fast, append([]int64(nil), stubs...), 4, nil)

		naive := table.NewEdgeTable("naive", 0)
		naivePairStubsFiltered(newSeq(seed), naive, append([]int64(nil), stubs...), 4, nil)
		naivePairStubsFiltered(newSeq(seed+1), naive, append([]int64(nil), stubs...), 4, nil)
		assertSameEdges(t, "reset-reuse", naive, fast)
	}
}

// FuzzEdgeDedup go-fuzzes the batched dedup against the map reference.
func FuzzEdgeDedup(f *testing.F) {
	f.Add(uint64(1), []byte{0, 1, 2, 3, 4, 5, 6, 7}, uint8(4), false)
	f.Add(uint64(2), []byte{1, 1, 1, 1, 1, 2}, uint8(2), true)
	f.Add(uint64(3), []byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 0, 1, 2, 3}, uint8(8), true)
	f.Add(uint64(99), []byte{}, uint8(3), false)
	f.Fuzz(func(t *testing.T, seed uint64, data []byte, span uint8, withFilter bool) {
		if len(data) > 1<<12 {
			data = data[:1<<12]
		}
		checkDedupAgainstReference(t, seed, data, span, withFilter)
	})
}

// TestEdgeDedupAgainstReference runs the fuzz body over deterministic
// batches so the equivalence is exercised on every ordinary `go test`.
func TestEdgeDedupAgainstReference(t *testing.T) {
	q := newSeq(42)
	for trial := 0; trial < 50; trial++ {
		n := int(q.Intn(400))
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(q.Intn(256))
		}
		span := uint8(2 + q.Intn(40))
		checkDedupAgainstReference(t, uint64(trial)*13+7, data, span, trial%2 == 0)
	}
}
