package sgen

import (
	"fmt"
	"math"
	"runtime"
	"sync/atomic"

	"datasynth/internal/par"
	"datasynth/internal/table"
	"datasynth/internal/xrand"
)

// LFR is the community benchmark generator of Lancichinetti, Fortunato
// and Radicchi (Phys. Rev. E 2008), the second generator in the paper's
// evaluation. It produces graphs with power-law degree and community
// size distributions and a controllable mixing parameter µ: each node
// spends a fraction (1-µ) of its degree inside its own community.
//
// The paper configures it with average degree 20, maximum degree 50,
// community sizes in [10, 50] and µ = 0.1 — the parameters of
// Lancichinetti & Fortunato's comparative analysis — which are the
// defaults here.
type LFR struct {
	AvgDegree    float64 // target mean degree (default 20)
	MaxDegree    int     // maximum degree (default 50)
	MinCommunity int     // minimum community size (default 10)
	MaxCommunity int     // maximum community size (default 50)
	Mu           float64 // mixing parameter (default 0.1)
	Tau1         float64 // degree power-law exponent (default 2)
	Tau2         float64 // community size power-law exponent (default 1)
	Seed         uint64
	// Workers bounds the concurrency of intra-community wiring
	// (0 = NumCPU, 1 = serial). Communities are wired on independent
	// RNG streams keyed off (Seed, community id) and their edges are
	// assembled in community order, so the edge table is byte-identical
	// at every worker count.
	Workers int

	// communities of the last Run, exposed for tests and for the
	// experiment harness (ground-truth labels).
	lastCommunities []int64
}

// NewLFR returns an LFR generator with the paper's evaluation
// parameters.
func NewLFR(seed uint64) *LFR {
	return &LFR{
		AvgDegree:    20,
		MaxDegree:    50,
		MinCommunity: 10,
		MaxCommunity: 50,
		Mu:           0.1,
		Tau1:         2,
		Tau2:         1,
		Seed:         seed,
	}
}

// Name implements Generator.
func (l *LFR) Name() string { return "lfr" }

// SetWorkers implements WorkerSettable.
func (l *LFR) SetWorkers(w int) { l.Workers = w }

// Communities returns the ground-truth community label of every node
// from the most recent Run. It is the basis of LFR's use in community
// detection benchmarking (communities are "known beforehand").
func (l *LFR) Communities() []int64 { return l.lastCommunities }

func (l *LFR) validate() error {
	switch {
	case l.AvgDegree <= 1:
		return fmt.Errorf("sgen: LFR average degree must exceed 1, got %v", l.AvgDegree)
	case l.MaxDegree < int(l.AvgDegree):
		return fmt.Errorf("sgen: LFR max degree %d below average %v", l.MaxDegree, l.AvgDegree)
	case l.MinCommunity < 2 || l.MaxCommunity < l.MinCommunity:
		return fmt.Errorf("sgen: LFR community bounds [%d,%d] invalid", l.MinCommunity, l.MaxCommunity)
	case l.Mu < 0 || l.Mu > 1:
		return fmt.Errorf("sgen: LFR mixing parameter %v outside [0,1]", l.Mu)
	case l.Tau1 <= 1 || l.Tau2 <= 0:
		return fmt.Errorf("sgen: LFR exponents tau1=%v tau2=%v invalid", l.Tau1, l.Tau2)
	}
	return nil
}

// minDegreeFor solves for the power-law lower cutoff that achieves the
// requested mean degree with exponent tau1 truncated at MaxDegree.
func (l *LFR) minDegreeFor() (int, error) {
	lo, hi := 1, l.MaxDegree
	best, bestDiff := 1, math.Inf(1)
	for d := lo; d <= hi; d++ {
		pl, err := xrand.NewPowerLawInt(d, l.MaxDegree, l.Tau1)
		if err != nil {
			return 0, err
		}
		diff := math.Abs(pl.Mean() - l.AvgDegree)
		if diff < bestDiff {
			best, bestDiff = d, diff
		}
		if pl.Mean() > l.AvgDegree {
			break // mean increases with the cutoff; past the target
		}
	}
	return best, nil
}

// Run implements Generator.
func (l *LFR) Run(n int64) (*table.EdgeTable, error) {
	if n < int64(l.MinCommunity) {
		return nil, fmt.Errorf("sgen: LFR needs n >= min community size %d, got %d", l.MinCommunity, n)
	}
	if err := l.validate(); err != nil {
		return nil, err
	}
	q := newSeq(l.Seed)

	// 1. Degree sequence from a truncated power law matching AvgDegree.
	dmin, err := l.minDegreeFor()
	if err != nil {
		return nil, err
	}
	degDist, err := xrand.NewPowerLawInt(dmin, l.MaxDegree, l.Tau1)
	if err != nil {
		return nil, err
	}
	deg := make([]int, n)
	s := xrand.NewStream(l.Seed).DeriveStream("lfr.degrees")
	for i := int64(0); i < n; i++ {
		deg[i] = degDist.Sample(s, i)
	}

	// 2. Community sizes from a truncated power law covering all nodes.
	sizeDist, err := xrand.NewPowerLawInt(l.MinCommunity, l.MaxCommunity, l.Tau2)
	if err != nil {
		return nil, err
	}
	var sizes []int
	total := int64(0)
	cs := xrand.NewStream(l.Seed).DeriveStream("lfr.sizes")
	for ci := int64(0); total < n; ci++ {
		sz := sizeDist.Sample(cs, ci)
		if rem := n - total; int64(sz) > rem {
			sz = int(rem)
			// Merge a too-small tail into the previous community.
			if sz < l.MinCommunity && len(sizes) > 0 {
				sizes[len(sizes)-1] += sz
				total += int64(sz)
				break
			}
		}
		sizes = append(sizes, sz)
		total += int64(sz)
	}

	// 3. Intra-degrees: node i keeps round((1-mu)·deg[i]) stubs inside
	// its community.
	intra := make([]int, n)
	for i := range deg {
		intra[i] = int(math.Round((1 - l.Mu) * float64(deg[i])))
		if intra[i] > deg[i] {
			intra[i] = deg[i]
		}
	}

	// 4. Assign nodes to communities. A node with intra-degree k needs a
	// community of size >= k+1. Process nodes in decreasing intra-degree
	// and fill communities first-fit over a shuffled order, which is the
	// standard greedy realisation of LFR's constraint. Intra-degrees are
	// bounded by MaxDegree, so a counting sort produces the
	// (intra desc, id asc) order in O(n + MaxDegree) instead of
	// O(n log n) comparisons.
	maxIntra := 0
	for _, d := range intra {
		if d > maxIntra {
			maxIntra = d
		}
	}
	bucket := make([]int64, maxIntra+2)
	for _, d := range intra {
		bucket[maxIntra-d+1]++
	}
	for b := 1; b < len(bucket); b++ {
		bucket[b] += bucket[b-1]
	}
	order := make([]int64, n)
	for v := int64(0); v < n; v++ { // ascending v keeps ties id-ordered
		b := maxIntra - intra[v]
		order[bucket[b]] = v
		bucket[b]++
	}
	commOf := make([]int64, n)
	remaining := make([]int, len(sizes))
	copy(remaining, sizes)
	commOrder := make([]int64, len(sizes))
	for i := range commOrder {
		commOrder[i] = int64(i)
	}
	q.ShuffleInt64(commOrder)
	next := 0
	for _, v := range order {
		placed := false
		for try := 0; try < len(sizes); try++ {
			c := commOrder[(next+try)%len(sizes)]
			if remaining[c] > 0 && sizes[c]-1 >= intra[v] {
				commOf[v] = c
				remaining[c]--
				next = (next + try) % len(sizes)
				placed = true
				break
			}
		}
		if !placed {
			// Fall back: any community with room; cap the intra-degree.
			for c := range remaining {
				if remaining[c] > 0 {
					commOf[v] = int64(c)
					remaining[c]--
					if intra[v] > sizes[c]-1 {
						intra[v] = sizes[c] - 1
					}
					placed = true
					break
				}
			}
		}
		if !placed {
			return nil, fmt.Errorf("sgen: LFR could not place node %d", v)
		}
	}
	l.lastCommunities = commOf

	// 5. Wire intra-community edges with a per-community configuration
	// model, then inter-community edges with a global configuration
	// model over the residual stubs. Duplicate rejection goes through a
	// batched sort-and-compact dedup (see edgeDedup) instead of a
	// per-edge hash map; the accepted edge set is identical.
	//
	// Communities are independent once sizes and memberships are fixed
	// (an intra edge has both endpoints inside one community), so each
	// community is wired as its own shard: randomness comes from a
	// per-community stream keyed off (Seed, community id), edges land
	// in a per-community slot, and the slots are concatenated in
	// community order. Shards can therefore run on a worker pool — or
	// serially — with a byte-identical edge table either way.
	et := table.NewEdgeTable("lfr", int64(float64(n)*l.AvgDegree/2))

	// Community member lists as one CSR block instead of len(sizes)
	// independently grown slices.
	placed := make([]int64, len(sizes))
	for v := int64(0); v < n; v++ {
		placed[commOf[v]]++
	}
	memberOffs := make([]int64, len(sizes)+1)
	for c := range sizes {
		memberOffs[c+1] = memberOffs[c] + placed[c]
	}
	memberBuf := make([]int64, n)
	fill := make([]int64, len(sizes))
	copy(fill, memberOffs[:len(sizes)])
	for v := int64(0); v < n; v++ {
		c := commOf[v]
		memberBuf[fill[c]] = v
		fill[c]++
	}

	if err := l.wireIntraShards(et, sizes, intra, memberBuf, memberOffs); err != nil {
		return nil, err
	}

	dd := newEdgeDedup(int64(float64(n) * l.AvgDegree * l.Mu / 2))
	interStubs := make([]int64, 0, n)
	for v := int64(0); v < n; v++ {
		for j := 0; j < deg[v]-intra[v]; j++ {
			interStubs = append(interStubs, v)
		}
	}
	if len(interStubs)%2 == 1 {
		interStubs = interStubs[:len(interStubs)-1]
	}
	// For inter stubs, additionally reject same-community pairs (they
	// would inflate µ^-1); after the retry budget they are dropped.
	// Inter pairs span two communities, so they can never collide with
	// an intra edge — the dedup starts from an empty accepted set.
	pairStubsFiltered(q, dd, et, interStubs, 8, func(a, b int64) bool {
		return commOf[a] != commOf[b]
	})
	return et, nil
}

// wireIntraShards wires every community's internal configuration model.
// Shard c draws from the stream (Seed, "lfr.intra", c), emits into the
// arena range [bound[c], bound[c+1]) — disjoint per shard — and the
// ranges are concatenated in community order afterwards, so the result
// is a pure function of the schema seed regardless of how many workers
// process the shard queue or in which order they finish.
func (l *LFR) wireIntraShards(et *table.EdgeTable, sizes, intra []int, memberBuf, memberOffs []int64) error {
	nComm := len(sizes)
	if nComm == 0 {
		return nil
	}
	intraBase := xrand.NewStream(l.Seed).DeriveStream("lfr.intra")

	// Per-community edge-count upper bound (half its stub count) sizes
	// the shared output arena; counts records the actual emissions.
	bound := make([]int64, nComm+1)
	for c := 0; c < nComm; c++ {
		var stubCount int64
		for _, v := range memberBuf[memberOffs[c]:memberOffs[c+1]] {
			stubCount += int64(intra[v])
		}
		bound[c+1] = bound[c] + stubCount/2
	}
	tails := make([]int64, bound[nComm])
	heads := make([]int64, bound[nComm])
	counts := make([]int64, nComm)

	workers := l.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > nComm {
		workers = nComm
	}

	// wire runs one shard with a worker's reusable scratch (dedup,
	// stub buffer, local edge sink); only the arena range and counts
	// slot of community c are written, so shards never contend.
	wire := func(c int, dd *edgeDedup, local *table.EdgeTable, stubs []int64) []int64 {
		members := memberBuf[memberOffs[c]:memberOffs[c+1]]
		size := int64(len(members))
		// Intra edges of community c can only collide with each other
		// (both endpoints lie in c), so each community dedups afresh —
		// over *local* member indices, whose tiny key universe (size²)
		// fits a direct-addressed stamp table at the default community
		// bounds. User-configured giant communities fall back to the
		// sorted-key batch dedup, whose memory scales with the edge
		// count instead of size².
		direct := size*size <= directDedupMaxUniverse
		stubs = stubs[:0]
		for li, v := range members {
			id := v
			if direct {
				id = int64(li)
			}
			k := intra[v]
			for j := 0; j < k; j++ {
				stubs = append(stubs, id)
			}
		}
		if len(stubs)%2 == 1 {
			stubs = stubs[:len(stubs)-1]
		}
		qc := newSeqFromStream(intraBase.DeriveN(uint64(c)))
		local.Tail = local.Tail[:0]
		local.Head = local.Head[:0]
		if direct {
			pairStubsDirect(qc, dd, local, stubs, members, 8)
		} else {
			dd.reset()
			pairStubsFiltered(qc, dd, local, stubs, 8, nil)
		}
		counts[c] = int64(len(local.Tail))
		copy(tails[bound[c]:], local.Tail)
		copy(heads[bound[c]:], local.Head)
		return stubs
	}

	if workers == 1 {
		dd := newEdgeDedup(0)
		local := &table.EdgeTable{}
		var stubs []int64
		for c := 0; c < nComm; c++ {
			stubs = wire(c, dd, local, stubs)
		}
	} else {
		var next atomic.Int64
		par.Workers(workers, func(int) {
			dd := newEdgeDedup(0)
			local := &table.EdgeTable{}
			var stubs []int64
			for {
				c := int(next.Add(1) - 1)
				if c >= nComm {
					return
				}
				stubs = wire(c, dd, local, stubs)
			}
		})
	}

	for c := 0; c < nComm; c++ {
		et.Tail = append(et.Tail, tails[bound[c]:bound[c]+counts[c]]...)
		et.Head = append(et.Head, heads[bound[c]:bound[c]+counts[c]]...)
	}
	return nil
}

// directDedupMaxUniverse bounds the stamp table to 4M entries (16 MB
// of int32): communities up to ~2048 nodes use direct addressing,
// larger ones take the sorted-key path.
const directDedupMaxUniverse = 1 << 22

// pairStubsDirect wires one community's stubs (local member indices):
// shuffle, pair adjacent entries, reject self-loops and duplicates via
// the stamp table, and re-shuffle failed pairs up to `rounds` times.
// Shuffling local indices consumes the same RNG draws as shuffling the
// global ids did, and the local→global mapping is a bijection, so the
// emitted edge sequence is unchanged.
func pairStubsDirect(q *seq, dd *edgeDedup, et *table.EdgeTable, stubs []int64, members []int64, rounds int) {
	size := int64(len(members))
	dd.resetDirect(int(size * size))
	pending := stubs
	for r := 0; r < rounds && len(pending) >= 2; r++ {
		q.ShuffleInt64(pending)
		w := 0
		for i := 0; i+1 < len(pending); i += 2 {
			la, lb := pending[i], pending[i+1]
			won := false
			if la != lb {
				ka, kb := la, lb
				if ka > kb {
					ka, kb = kb, ka
				}
				if !dd.seenDirect(ka*size + kb) {
					a, b := members[la], members[lb]
					if a > b {
						a, b = b, a
					}
					et.Add(a, b)
					won = true
				}
			}
			if !won {
				pending[w], pending[w+1] = la, lb
				w += 2
			}
		}
		pending = pending[:w]
	}
}

// pairStubsFiltered shuffles stubs (global node ids) and pairs adjacent
// entries, with an extra per-pair acceptance predicate (nil means
// accept all). Each round is resolved in batch by edgeDedup.pairRound
// with semantics identical to the former per-edge map: the first
// occurrence of an edge in stream order wins, later duplicates (and
// ok-rejected or self-loop pairs) are re-shuffled into the next round.
func pairStubsFiltered(q *seq, dd *edgeDedup, et *table.EdgeTable, stubs []int64, rounds int, ok func(a, b int64) bool) {
	pending := stubs
	for r := 0; r < rounds && len(pending) >= 2; r++ {
		q.ShuffleInt64(pending)
		pending = dd.pairRound(et, pending, ok)
	}
}

// EstimatedEdges implements EdgeCountEstimator: m ≈ n·avgDegree/2.
func (l *LFR) EstimatedEdges(n int64) int64 {
	if n <= 0 || l.AvgDegree <= 1 {
		return 0
	}
	return int64(float64(n) * l.AvgDegree / 2)
}

// NumNodesForEdges implements Generator: m ≈ n·avgDegree/2.
func (l *LFR) NumNodesForEdges(numEdges int64) (int64, error) {
	if numEdges <= 0 {
		return 0, fmt.Errorf("sgen: numEdges must be positive, got %d", numEdges)
	}
	if l.AvgDegree <= 1 {
		return 0, fmt.Errorf("sgen: LFR average degree must exceed 1")
	}
	n := int64(math.Ceil(float64(numEdges) * 2 / l.AvgDegree))
	if n < int64(l.MinCommunity) {
		n = int64(l.MinCommunity)
	}
	return n, nil
}
