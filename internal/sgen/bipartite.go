package sgen

import (
	"fmt"
	"math"

	"datasynth/internal/table"
	"datasynth/internal/xrand"
)

// This file implements the bipartite structure generators needed for
// edge types between two different node types, such as the running
// example's `creates` (Person 1→* Message). The paper's cardinality
// requirement distinguishes 1→1, 1→* and *→* edges; each maps to a
// generator here.

// PowerLawOut generates a 1→* edge type: each tail node t gets
// out-degree drawn from a truncated power law, and each edge points to
// a *fresh* head node — exactly the `creates` pattern, where every
// Message is created by exactly one Person. The head-domain size is
// therefore the edge count, which is how DataSynth's dependency
// analysis infers the number of Messages (paper Section 4.2).
type PowerLawOut struct {
	MinOut, MaxOut int
	Gamma          float64
	Seed           uint64
}

// NewPowerLawOut returns a 1→* generator with out-degrees in
// [minOut, maxOut] following P(d) ∝ d^-gamma.
func NewPowerLawOut(minOut, maxOut int, gamma float64, seed uint64) *PowerLawOut {
	return &PowerLawOut{MinOut: minOut, MaxOut: maxOut, Gamma: gamma, Seed: seed}
}

// Name implements BipartiteGenerator.
func (g *PowerLawOut) Name() string { return "powerlaw-out" }

// RunBipartite implements BipartiteGenerator. nHead is ignored (the
// generator mints one head per edge).
func (g *PowerLawOut) RunBipartite(nTail, nHead int64) (*table.EdgeTable, error) {
	if nTail <= 0 {
		return nil, fmt.Errorf("sgen: powerlaw-out needs nTail > 0, got %d", nTail)
	}
	dist, err := xrand.NewPowerLawInt(max(1, g.MinOut), g.MaxOut, g.Gamma)
	if err != nil {
		return nil, err
	}
	s := xrand.NewStream(g.Seed)
	et := table.NewEdgeTable("powerlaw-out", nTail*int64(dist.Mean()))
	var head int64
	for t := int64(0); t < nTail; t++ {
		d := dist.Sample(s, t)
		if g.MinOut <= 0 {
			// Allow zero out-degree by shifting: sample in [1,max] then
			// subtract the shift probabilistically — approximated by
			// letting MinOut=0 mean "d-1".
			d--
		}
		for j := 0; j < d; j++ {
			et.Add(t, head)
			head++
		}
	}
	return et, nil
}

// EstimatedEdges implements EdgeCountEstimator: m ≈ nTail·mean(d).
func (g *PowerLawOut) EstimatedEdges(nTail int64) int64 {
	dist, err := xrand.NewPowerLawInt(max(1, g.MinOut), g.MaxOut, g.Gamma)
	if err != nil {
		return 0
	}
	mean := dist.Mean()
	if g.MinOut <= 0 {
		mean--
	}
	if mean <= 0 || nTail < 1 {
		return 0
	}
	return int64(float64(nTail) * mean)
}

// NumTailsForEdges implements BipartiteGenerator.
func (g *PowerLawOut) NumTailsForEdges(numEdges int64) (int64, error) {
	dist, err := xrand.NewPowerLawInt(max(1, g.MinOut), g.MaxOut, g.Gamma)
	if err != nil {
		return 0, err
	}
	mean := dist.Mean()
	if g.MinOut <= 0 {
		mean--
	}
	if mean <= 0 {
		return 0, fmt.Errorf("sgen: powerlaw-out mean out-degree is zero")
	}
	return searchNodesForEdges(numEdges, func(n int64) float64 {
		return float64(n) * mean
	})
}

// ZipfAttachment generates a *→* bipartite edge type between two fixed
// domains: each tail draws out-degree from a power law and attaches to
// head nodes with Zipf-distributed popularity — the classic
// user–product interaction shape (few blockbuster products).
type ZipfAttachment struct {
	MinOut, MaxOut int
	GammaOut       float64 // tail out-degree exponent
	ThetaIn        float64 // head popularity Zipf exponent
	Seed           uint64
}

// NewZipfAttachment returns a *→* generator.
func NewZipfAttachment(minOut, maxOut int, gammaOut, thetaIn float64, seed uint64) *ZipfAttachment {
	return &ZipfAttachment{MinOut: minOut, MaxOut: maxOut, GammaOut: gammaOut, ThetaIn: thetaIn, Seed: seed}
}

// Name implements BipartiteGenerator.
func (g *ZipfAttachment) Name() string { return "zipf-attachment" }

// RunBipartite implements BipartiteGenerator. nHead must be positive.
func (g *ZipfAttachment) RunBipartite(nTail, nHead int64) (*table.EdgeTable, error) {
	if nTail <= 0 || nHead <= 0 {
		return nil, fmt.Errorf("sgen: zipf-attachment needs positive domains, got %d/%d", nTail, nHead)
	}
	outDist, err := xrand.NewPowerLawInt(max(1, g.MinOut), g.MaxOut, g.GammaOut)
	if err != nil {
		return nil, err
	}
	// Zipf over head popularity; cap the support to keep init cheap.
	support := nHead
	if support > 1<<20 {
		support = 1 << 20
	}
	zipf, err := xrand.NewZipf(int(support), g.ThetaIn)
	if err != nil {
		return nil, err
	}
	sOut := xrand.NewStream(g.Seed).DeriveStream("out")
	sHead := xrand.NewStream(g.Seed).DeriveStream("head")
	sPerm := xrand.NewStream(g.Seed).DeriveStream("perm")
	et := table.NewEdgeTable("zipf-attachment", nTail*int64(outDist.Mean()))
	var idx int64
	for t := int64(0); t < nTail; t++ {
		d := outDist.Sample(sOut, t)
		seen := make(map[int64]struct{}, d)
		for j := 0; j < d; j++ {
			// Popularity rank -> head id through a fixed pseudo-random
			// permutation so rank-0 isn't always head 0.
			rank := int64(zipf.Sample(sHead, idx))
			idx++
			h := sPerm.Perm(rank%nHead, nHead)
			if _, dup := seen[h]; dup {
				continue
			}
			seen[h] = struct{}{}
			et.Add(t, h)
		}
	}
	return et, nil
}

// EstimatedEdges implements EdgeCountEstimator: m ≲ nTail·mean(d)
// (an upper bound — duplicate attachments are dropped).
func (g *ZipfAttachment) EstimatedEdges(nTail int64) int64 {
	outDist, err := xrand.NewPowerLawInt(max(1, g.MinOut), g.MaxOut, g.GammaOut)
	if err != nil || nTail < 1 {
		return 0
	}
	return int64(float64(nTail) * outDist.Mean())
}

// NumTailsForEdges implements BipartiteGenerator.
func (g *ZipfAttachment) NumTailsForEdges(numEdges int64) (int64, error) {
	outDist, err := xrand.NewPowerLawInt(max(1, g.MinOut), g.MaxOut, g.GammaOut)
	if err != nil {
		return 0, err
	}
	return searchNodesForEdges(numEdges, func(n int64) float64 {
		return float64(n) * outDist.Mean()
	})
}

// OneToOne generates a 1→1 edge type: a pseudo-random perfect matching
// between equal-sized domains.
type OneToOne struct {
	Seed uint64
}

// Name implements BipartiteGenerator.
func (g *OneToOne) Name() string { return "one-to-one" }

// RunBipartite implements BipartiteGenerator; nHead < 0 means
// nHead = nTail.
func (g *OneToOne) RunBipartite(nTail, nHead int64) (*table.EdgeTable, error) {
	if nTail <= 0 {
		return nil, fmt.Errorf("sgen: one-to-one needs nTail > 0, got %d", nTail)
	}
	if nHead < 0 {
		nHead = nTail
	}
	if nHead != nTail {
		return nil, fmt.Errorf("sgen: one-to-one needs equal domains, got %d/%d", nTail, nHead)
	}
	s := xrand.NewStream(g.Seed)
	et := table.NewEdgeTable("one-to-one", nTail)
	for t := int64(0); t < nTail; t++ {
		et.Add(t, s.Perm(t, nTail))
	}
	return et, nil
}

// EstimatedEdges implements EdgeCountEstimator: m = nTail exactly.
func (g *OneToOne) EstimatedEdges(nTail int64) int64 {
	if nTail < 1 {
		return 0
	}
	return nTail
}

// NumTailsForEdges implements BipartiteGenerator: one edge per tail.
func (g *OneToOne) NumTailsForEdges(numEdges int64) (int64, error) {
	if numEdges <= 0 {
		return 0, fmt.Errorf("sgen: numEdges must be positive")
	}
	return numEdges, nil
}

// UniformBipartite generates a *→* edge type with a fixed expected
// out-degree and uniformly chosen heads (a bipartite Erdős–Rényi).
type UniformBipartite struct {
	AvgOut float64
	Seed   uint64
}

// Name implements BipartiteGenerator.
func (g *UniformBipartite) Name() string { return "uniform-bipartite" }

// RunBipartite implements BipartiteGenerator.
func (g *UniformBipartite) RunBipartite(nTail, nHead int64) (*table.EdgeTable, error) {
	if nTail <= 0 || nHead <= 0 {
		return nil, fmt.Errorf("sgen: uniform-bipartite needs positive domains")
	}
	if g.AvgOut <= 0 {
		return nil, fmt.Errorf("sgen: uniform-bipartite needs positive average out-degree")
	}
	m := int64(math.Round(float64(nTail) * g.AvgOut))
	s := xrand.NewStream(g.Seed)
	et := table.NewEdgeTable("uniform-bipartite", m)
	for e := int64(0); e < m; e++ {
		et.Add(s.Intn(2*e, nTail), s.Intn(2*e+1, nHead))
	}
	return et, nil
}

// EstimatedEdges implements EdgeCountEstimator: m = round(nTail·AvgOut).
func (g *UniformBipartite) EstimatedEdges(nTail int64) int64 {
	if g.AvgOut <= 0 || nTail < 1 {
		return 0
	}
	return int64(math.Round(float64(nTail) * g.AvgOut))
}

// NumTailsForEdges implements BipartiteGenerator.
func (g *UniformBipartite) NumTailsForEdges(numEdges int64) (int64, error) {
	if g.AvgOut <= 0 {
		return 0, fmt.Errorf("sgen: uniform-bipartite needs positive average out-degree")
	}
	return searchNodesForEdges(numEdges, func(n int64) float64 {
		return float64(n) * g.AvgOut
	})
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
