package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"datasynth/internal/depgraph"
	"datasynth/internal/match"
	"datasynth/internal/pgen"
	"datasynth/internal/schema"
	"datasynth/internal/sgen"
	"datasynth/internal/stats"
	"datasynth/internal/table"
	"datasynth/internal/xrand"
)

// genStructure runs the edge type's structure generator. The resulting
// edge table carries *anonymous* node ids until the match task rewrites
// them into property-row (instance) ids. The returned note carries the
// generator's one-line telemetry (sgen.Noter — e.g. sharded RMAT's
// round/draw counts) into the task timing report, like match tasks do
// with their SBM-Part per-pass breakdown.
func (e *Engine) genStructure(st *runState, plan *depgraph.Plan, edgeName string) (string, error) {
	edge := e.Schema.EdgeType(edgeName)
	seed := e.structureSeed(edgeName)
	if c := edge.Correlation; c != nil && c.Fused {
		return "", e.genFusedStructure(st, plan, edge, seed)
	}
	monopartite := edge.Tail == edge.Head && e.SGens.HasMono(edge.Structure.Name)

	var et *table.EdgeTable
	var note string
	if monopartite {
		g, err := e.SGens.BuildMono(edge.Structure.Name, edge.Structure.Params, seed)
		if err != nil {
			return "", err
		}
		// Shard-capable generators (e.g. LFR's intra-community wiring,
		// RMAT's slab rounds) inherit the engine's worker budget; their
		// output is byte-identical at every worker count.
		if ws, ok := g.(sgen.WorkerSettable); ok {
			ws.SetWorkers(e.Workers)
		}
		var n int64
		if edge.Count > 0 {
			if n, err = g.NumNodesForEdges(edge.Count); err != nil {
				return "", err
			}
		} else if n, err = e.nodeCount(st, plan, edge.Tail); err != nil {
			return "", err
		}
		if et, err = g.Run(n); err != nil {
			return "", err
		}
		if err := et.Validate(n, n); err != nil {
			return "", fmt.Errorf("core: structure generator %s: %w", g.Name(), err)
		}
		if nt, ok := g.(sgen.Noter); ok {
			note = nt.RunNote()
		}
	} else {
		g, err := e.SGens.BuildBipartite(edge.Structure.Name, edge.Structure.Params, seed)
		if err != nil {
			return "", err
		}
		var nTail int64
		if edge.Count > 0 {
			if nTail, err = g.NumTailsForEdges(edge.Count); err != nil {
				return "", err
			}
		} else if nTail, err = e.nodeCount(st, plan, edge.Tail); err != nil {
			return "", err
		}
		// 1→* mints fresh heads; other cardinalities need the head
		// domain up front.
		nHead := int64(-1)
		if edge.Cardinality != schema.OneToMany && edge.Tail != edge.Head {
			if nHead, err = e.nodeCount(st, plan, edge.Head); err != nil {
				return "", err
			}
		}
		if edge.Cardinality == schema.OneToOne {
			nHead = nTail
		}
		if et, err = g.RunBipartite(nTail, nHead); err != nil {
			return "", err
		}
	}
	et.Name = edgeName
	st.setEdgeTable(edgeName, et)
	e.cacheEdgeSourcedCounts(st, plan, edgeName, et)
	if note != "" {
		e.logf("structure %s: %d edges (%s)", edgeName, et.Len(), note)
	} else {
		e.logf("structure %s: %d edges", edgeName, et.Len())
	}
	return note, nil
}

// cacheEdgeSourcedCounts resolves every node count sourced from this
// edge's table (SourceEdgeHead) as soon as the structure exists. The
// match task later rewrites the table's endpoint ids in place, so
// readers must never scan it themselves: resolving here both avoids a
// data race between a count-reading task and the remap, and pins the
// count to the pre-remap id domain — the only value that is correct.
// A non-positive MaxNode (empty table) is left uncached so nodeCount
// reports its usual error at the first reader.
func (e *Engine) cacheEdgeSourcedCounts(st *runState, plan *depgraph.Plan, edgeName string, et *table.EdgeTable) {
	typeNames := make([]string, 0, len(plan.Counts))
	for typeName := range plan.Counts {
		typeNames = append(typeNames, typeName)
	}
	sort.Strings(typeNames)
	for _, typeName := range typeNames {
		src := plan.Counts[typeName]
		if src.Kind != depgraph.SourceEdgeHead || src.Edge != edgeName {
			continue
		}
		if _, ok := st.count(typeName); ok {
			continue
		}
		if c := et.MaxNode(); c > 0 {
			st.setCount(typeName, c)
		}
	}
}

// genFusedStructure implements the paper's future-work fused operator
// for correlated 1→* edges: structure and the correlated head property
// are produced together by match.FusedOneToMany, realising the joint
// exactly up to integer rounding. Tail ids in the resulting table are
// final instance ids, so the match task becomes a no-op.
func (e *Engine) genFusedStructure(st *runState, plan *depgraph.Plan, edge *schema.EdgeType, seed uint64) error {
	c := edge.Correlation
	tailPT, ok := st.nodeProp(edge.Tail, c.TailProperty)
	if !ok {
		return fmt.Errorf("core: fused edge %s needs property %s.%s first", edge.Name, edge.Tail, c.TailProperty)
	}
	tailLabels, tailValues, err := labelsFor(tailPT)
	if err != nil {
		return err
	}
	kt := len(tailValues)
	// The head property's generator supplies the value universe and the
	// marginal P(Y); it must be categorical for the joint to be finite.
	headProp := e.Schema.NodeType(edge.Head).Property(c.HeadProperty)
	gen, err := e.PGens.Build(headProp.Generator.Name, headProp.Generator.Params)
	if err != nil {
		return err
	}
	cat, ok := gen.(*pgen.Categorical)
	if !ok {
		return fmt.Errorf("core: fused edge %s needs a categorical generator for %s.%s, got %s",
			edge.Name, edge.Head, c.HeadProperty, gen.Name())
	}
	headValues := cat.Values()
	kh := len(headValues)

	// Edge count: explicit, or measured from a dry run of the declared
	// structure generator (its out-degree model sizes the edge type).
	m := edge.Count
	if m == 0 {
		nTail, err := e.nodeCount(st, plan, edge.Tail)
		if err != nil {
			return err
		}
		g, err := e.SGens.BuildBipartite(edge.Structure.Name, edge.Structure.Params, seed)
		if err != nil {
			return err
		}
		dry, err := g.RunBipartite(nTail, -1)
		if err != nil {
			return err
		}
		m = dry.Len()
	}

	target, err := fusedTarget(c, tailLabels, kt, cat, kh)
	if err != nil {
		return err
	}
	et, headLabels, err := match.FusedOneToMany(tailLabels, kt, kh, m, target, seed)
	if err != nil {
		return err
	}
	et.Name = edge.Name
	st.setEdgeTable(edge.Name, et)
	e.cacheEdgeSourcedCounts(st, plan, edge.Name, et)
	st.setMatched(edge.Name) // tails are final ids; heads are fresh
	st.setFusedCol(edge.Head, c.HeadProperty, &fusedColumn{labels: headLabels, values: headValues})
	e.logf("fused structure %s: %d edges, joint exact up to rounding", edge.Name, et.Len())
	return nil
}

// fusedTarget builds the kt×kh joint for a fused edge from the tail
// label frequencies and the head generator's marginal probabilities.
func fusedTarget(c *schema.Correlation, tailLabels []int64, kt int, cat *pgen.Categorical, kh int) (*match.BipartiteTarget, error) {
	t := match.NewBipartiteTarget(kt, kh)
	if c.Matrix != nil {
		if len(c.Matrix) != kt {
			return nil, fmt.Errorf("core: fused matrix has %d rows, want %d", len(c.Matrix), kt)
		}
		for a := range c.Matrix {
			if len(c.Matrix[a]) != kh {
				return nil, fmt.Errorf("core: fused matrix row %d has %d entries, want %d", a, len(c.Matrix[a]), kh)
			}
			for b := range c.Matrix[a] {
				t.Set(a, b, c.Matrix[a][b])
			}
		}
		t.Normalize()
		return t, t.Validate()
	}
	tailFreq, err := stats.Frequencies(tailLabels, kt)
	if err != nil {
		return nil, err
	}
	minK := kt
	if kh < minK {
		minK = kh
	}
	var diagW, offW float64
	cellW := func(a, b int) float64 {
		return float64(tailFreq[a]) * cat.Prob(b)
	}
	for a := 0; a < kt; a++ {
		for b := 0; b < kh; b++ {
			if a%minK == b%minK {
				diagW += cellW(a, b)
			} else {
				offW += cellW(a, b)
			}
		}
	}
	for a := 0; a < kt; a++ {
		for b := 0; b < kh; b++ {
			w := cellW(a, b)
			if a%minK == b%minK {
				if diagW > 0 {
					t.Set(a, b, c.Homophily*w/diagW)
				}
			} else if offW > 0 {
				t.Set(a, b, (1-c.Homophily)*w/offW)
			}
		}
	}
	t.Normalize()
	return t, t.Validate()
}

// matchEdge performs the paper's graph-matching task: it rewrites the
// structure's anonymous node ids into instance ids, preserving the
// requested property-structure correlation (or randomly when none is
// declared). The returned note annotates the task's timing-report row
// with the SBM-Part per-pass breakdown, so -timings shows where a
// match task's critical-path time goes — including refinement passes.
func (e *Engine) matchEdge(st *runState, plan *depgraph.Plan, edgeName string) (string, error) {
	edge := e.Schema.EdgeType(edgeName)
	et, ok := st.edgeTable(edgeName)
	if !ok {
		return "", fmt.Errorf("core: match before structure for %q", edgeName)
	}
	if st.isMatched(edgeName) {
		// Fused edges arrive pre-matched.
		return "", nil
	}
	seed := xrand.NewStream(e.Schema.Seed).DeriveStream("match." + edgeName).Seed()
	nTail, err := e.nodeCount(st, plan, edge.Tail)
	if err != nil {
		return "", err
	}
	nHead, err := e.nodeCount(st, plan, edge.Head)
	if err != nil {
		return "", err
	}

	if edge.Correlation == nil {
		return "", e.matchRandom(st, edge, et, nTail, nHead, seed)
	}
	if edge.Correlation.Property != "" {
		return e.matchMonopartite(st, edge, et, nTail, seed)
	}
	return "", e.matchBipartiteEdge(st, edge, et, nTail, nHead, seed)
}

// matchRandom applies the paper's uncorrelated rule: "In those cases
// where an edge type is not correlated with any property, the matching
// is done randomly."
func (e *Engine) matchRandom(st *runState, edge *schema.EdgeType, et *table.EdgeTable, nTail, nHead int64, seed uint64) error {
	// Domain extents actually used by the structure (tails and heads
	// have independent id spaces on bipartite edges).
	var maxTail, maxHead int64 = -1, -1
	for i := range et.Tail {
		if et.Tail[i] > maxTail {
			maxTail = et.Tail[i]
		}
		if et.Head[i] > maxHead {
			maxHead = et.Head[i]
		}
	}
	tailSpan, headSpan := maxTail+1, maxHead+1

	switch edge.Cardinality {
	case schema.OneToMany:
		if edge.Tail == edge.Head {
			// Self 1→* edge (e.g. Message replyOf Message, a cascade):
			// tails and heads share one id domain, so both endpoints must
			// map through the same bijection to preserve the structure.
			span := tailSpan
			if headSpan > span {
				span = headSpan
			}
			f, err := match.RandomMatch(span, nTail, seed)
			if err != nil {
				return err
			}
			et.Remap(f)
			break
		}
		// Heads are freshly minted dense ids — they *are* the instance
		// ids. Tails map through a random bijection so instance id
		// carries no out-degree bias.
		fTail, err := match.RandomMatch(tailSpan, nTail, seed)
		if err != nil {
			return err
		}
		et.RemapTails(fTail)
	case schema.OneToOne:
		fTail, err := match.RandomMatch(tailSpan, nTail, seed)
		if err != nil {
			return err
		}
		fHead, err := match.RandomMatch(headSpan, nHead, seed^0x9e3779b97f4a7c15)
		if err != nil {
			return err
		}
		et.RemapTails(fTail)
		et.RemapHeads(fHead)
	default: // ManyToMany
		if edge.Tail == edge.Head {
			span := tailSpan
			if headSpan > span {
				span = headSpan
			}
			f, err := match.RandomMatch(span, nTail, seed)
			if err != nil {
				return err
			}
			et.Remap(f)
		} else {
			fTail, err := match.RandomMatch(tailSpan, nTail, seed)
			if err != nil {
				return err
			}
			fHead, err := match.RandomMatch(headSpan, nHead, seed^0x9e3779b97f4a7c15)
			if err != nil {
				return err
			}
			et.RemapTails(fTail)
			et.RemapHeads(fHead)
		}
	}
	st.setMatched(edge.Name)
	return nil
}

// labelsFor reduces a string property table to dense value indices,
// returning (labels, values) where values[i] is the string of index i.
// Value order follows first appearance, making the reduction
// deterministic.
func labelsFor(pt *table.PropertyTable) ([]int64, []string, error) {
	if pt.Kind != table.KindString {
		return nil, nil, fmt.Errorf("core: correlated property %s must be a string property", pt.Name)
	}
	index := map[string]int64{}
	var values []string
	labels := make([]int64, pt.Len())
	for id := int64(0); id < pt.Len(); id++ {
		v := pt.String(id)
		k, ok := index[v]
		if !ok {
			k = int64(len(values))
			index[v] = k
			values = append(values, v)
		}
		labels[id] = k
	}
	return labels, values, nil
}

// targetJoint builds the P(X,Y) for a monopartite correlation: the
// user's explicit matrix, or the homophily model over the observed
// value frequencies.
func targetJoint(c *schema.Correlation, labels []int64, k int) (*stats.Joint, error) {
	if c.Matrix != nil {
		if len(c.Matrix) != k {
			return nil, fmt.Errorf("core: correlation matrix is %d×·, property has %d values", len(c.Matrix), k)
		}
		j := stats.NewJoint(k)
		for a := range c.Matrix {
			if len(c.Matrix[a]) != k {
				return nil, fmt.Errorf("core: correlation matrix row %d has %d entries, want %d", a, len(c.Matrix[a]), k)
			}
			for b := a; b < k; b++ {
				j.Set(a, b, c.Matrix[a][b])
			}
		}
		j.Normalize()
		if err := j.Validate(); err != nil {
			return nil, err
		}
		return j, nil
	}
	sizes, err := stats.Frequencies(labels, k)
	if err != nil {
		return nil, err
	}
	return stats.HomophilyJoint(sizes, c.Homophily)
}

// matchMonopartite runs SBM-Part for a same-type correlated edge. The
// returned note carries the partitioner's per-pass wall times into the
// task timing report.
func (e *Engine) matchMonopartite(st *runState, edge *schema.EdgeType, et *table.EdgeTable, nTail int64, seed uint64) (string, error) {
	pt, ok := st.nodeProp(edge.Tail, edge.Correlation.Property)
	if !ok {
		return "", fmt.Errorf("core: correlated property %s.%s not materialised", edge.Tail, edge.Correlation.Property)
	}
	labels, values, err := labelsFor(pt)
	if err != nil {
		return "", err
	}
	k := len(values)
	target, err := targetJoint(edge.Correlation, labels, k)
	if err != nil {
		return "", err
	}
	structN := et.MaxNode()
	if structN > nTail {
		return "", fmt.Errorf("core: structure of %s spans %d nodes but %s has %d instances", edge.Name, structN, edge.Tail, nTail)
	}
	// The structure may cover fewer nodes than instances exist; SBM-Part
	// capacities come from all rows, so the mapping stays injective.
	opt := match.DefaultOptions(seed)
	opt.Passes = edge.Correlation.Passes
	opt.Workers = e.Workers
	opt.Window = e.MatchWindow
	opt.RefineWindow = e.RefineWindow
	res, err := match.MatchProperty(et, nTail, labels, target, opt)
	if err != nil {
		return "", err
	}
	et.Remap(res.Mapping)
	l1, _ := stats.L1(target, res.Observed)
	note := sbmNote(res)
	e.logf("match %s: k=%d L1=%.4f %s", edge.Name, k, l1, note)
	st.setMatched(edge.Name)
	return note, nil
}

// sbmNote renders a match result's SBM-Part timing for logs and the
// timing report: the total, plus the per-pass breakdown when
// refinement passes ran (pass 0 is the initial stream).
func sbmNote(res *match.Result) string {
	if len(res.PassTimes) <= 1 {
		return fmt.Sprintf("sbm %v", res.PartitionTime.Round(time.Microsecond))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "sbm %v (passes", res.PartitionTime.Round(time.Microsecond))
	for i, d := range res.PassTimes {
		if i == 0 {
			fmt.Fprintf(&b, " %v", d.Round(time.Microsecond))
		} else {
			fmt.Fprintf(&b, "+%v", d.Round(time.Microsecond))
		}
	}
	b.WriteString(")")
	return b.String()
}

// matchBipartiteEdge runs the bipartite SBM-Part variation for an edge
// correlating a tail property with a head property.
func (e *Engine) matchBipartiteEdge(st *runState, edge *schema.EdgeType, et *table.EdgeTable, nTail, nHead int64, seed uint64) error {
	c := edge.Correlation
	tailPT, ok := st.nodeProp(edge.Tail, c.TailProperty)
	if !ok {
		return fmt.Errorf("core: property %s.%s not materialised", edge.Tail, c.TailProperty)
	}
	headPT, ok := st.nodeProp(edge.Head, c.HeadProperty)
	if !ok {
		return fmt.Errorf("core: property %s.%s not materialised", edge.Head, c.HeadProperty)
	}
	tailLabels, tailValues, err := labelsFor(tailPT)
	if err != nil {
		return err
	}
	headLabels, headValues, err := labelsFor(headPT)
	if err != nil {
		return err
	}
	kt, kh := len(tailValues), len(headValues)
	target, err := bipartiteTarget(c, tailLabels, headLabels, kt, kh)
	if err != nil {
		return err
	}
	opt := match.DefaultOptions(seed)
	// Same windowed-parallel knobs as the monopartite matcher: the
	// matching is byte-identical at any {window, workers} setting, so
	// these only move wall-clock.
	opt.Workers = e.Workers
	opt.Window = e.MatchWindow
	res, err := match.MatchBipartite(et, nTail, nHead, tailLabels, headLabels, target, opt)
	if err != nil {
		return err
	}
	et.RemapTails(res.TailMapping)
	et.RemapHeads(res.HeadMapping)
	st.setMatched(edge.Name)
	return nil
}

// bipartiteTarget derives the kt×kh target: explicit matrix or the
// homophily model generalised to two label sets (mass on index-aligned
// pairs).
func bipartiteTarget(c *schema.Correlation, tailLabels, headLabels []int64, kt, kh int) (*match.BipartiteTarget, error) {
	t := match.NewBipartiteTarget(kt, kh)
	if c.Matrix != nil {
		if len(c.Matrix) != kt {
			return nil, fmt.Errorf("core: bipartite matrix is %d×·, want %d rows", len(c.Matrix), kt)
		}
		for a := range c.Matrix {
			if len(c.Matrix[a]) != kh {
				return nil, fmt.Errorf("core: bipartite matrix row %d has %d entries, want %d", a, len(c.Matrix[a]), kh)
			}
			for b := range c.Matrix[a] {
				t.Set(a, b, c.Matrix[a][b])
			}
		}
		t.Normalize()
		return t, t.Validate()
	}
	tailFreq, err := stats.Frequencies(tailLabels, kt)
	if err != nil {
		return nil, err
	}
	headFreq, err := stats.Frequencies(headLabels, kh)
	if err != nil {
		return nil, err
	}
	// Homophily h concentrates mass on pairs with equal index modulo
	// min(kt,kh); the rest spreads proportionally to frequency products.
	minK := kt
	if kh < minK {
		minK = kh
	}
	var diagW, offW float64
	for a := 0; a < kt; a++ {
		for b := 0; b < kh; b++ {
			w := float64(tailFreq[a]) * float64(headFreq[b])
			if a%minK == b%minK {
				diagW += w
			} else {
				offW += w
			}
		}
	}
	for a := 0; a < kt; a++ {
		for b := 0; b < kh; b++ {
			w := float64(tailFreq[a]) * float64(headFreq[b])
			if a%minK == b%minK {
				if diagW > 0 {
					t.Set(a, b, c.Homophily*w/diagW)
				}
			} else if offW > 0 {
				t.Set(a, b, (1-c.Homophily)*w/offW)
			}
		}
	}
	t.Normalize()
	return t, t.Validate()
}

// genEdgeProperty materialises one edge property table; dependencies
// may reference sibling edge properties or endpoint node properties via
// tail./head. prefixes (resolved through the matched edge table).
func (e *Engine) genEdgeProperty(st *runState, edgeName, propName string) error {
	edge := e.Schema.EdgeType(edgeName)
	prop := edge.Property(propName)
	et, ok := st.edgeTable(edgeName)
	if !ok || !st.isMatched(edgeName) {
		return fmt.Errorf("core: edge property %s.%s before match", edgeName, propName)
	}
	gen, err := e.PGens.Build(prop.Generator.Name, prop.Generator.Params)
	if err != nil {
		return err
	}
	if err := checkKind(gen, prop); err != nil {
		return err
	}
	type depSource struct {
		endpoint int // 0 = edge prop, 1 = tail, 2 = head
		pt       *table.PropertyTable
	}
	deps := make([]depSource, len(prop.DependsOn))
	for i, d := range prop.DependsOn {
		switch {
		case len(d) > 5 && d[:5] == "tail.":
			pt, ok := st.nodeProp(edge.Tail, d[5:])
			if !ok {
				return fmt.Errorf("core: dependency %s not materialised", d)
			}
			deps[i] = depSource{endpoint: 1, pt: pt}
		case len(d) > 5 && d[:5] == "head.":
			pt, ok := st.nodeProp(edge.Head, d[5:])
			if !ok {
				return fmt.Errorf("core: dependency %s not materialised", d)
			}
			deps[i] = depSource{endpoint: 2, pt: pt}
		default:
			pt, ok := st.edgeProp(edgeName, d)
			if !ok {
				return fmt.Errorf("core: dependency %s.%s not materialised", edgeName, d)
			}
			deps[i] = depSource{endpoint: 0, pt: pt}
		}
	}
	m := et.Len()
	pt := table.NewPropertyTable(edgeName+"."+propName, prop.Kind, m)
	stream := e.propertySeed(edgeName, propName)
	if err := e.parallelFill(pt, m, gen, stream, func(id int64, buf []pgen.Value) []pgen.Value {
		for i, d := range deps {
			switch d.endpoint {
			case 1:
				buf[i] = valueAt(d.pt, et.Tail[id])
			case 2:
				buf[i] = valueAt(d.pt, et.Head[id])
			default:
				buf[i] = valueAt(d.pt, id)
			}
		}
		return buf[:len(deps)]
	}, len(deps)); err != nil {
		return err
	}
	st.setEdgeProp(edgeName, propName, pt)
	return nil
}

// assemble packages the run state as a dataset, preserving schema
// property order.
func (e *Engine) assemble(st *runState) *table.Dataset {
	d := table.NewDataset()
	for i := range e.Schema.Nodes {
		n := &e.Schema.Nodes[i]
		d.NodeCounts[n.Name] = st.counts[n.Name]
		for j := range n.Properties {
			d.NodeProps[n.Name] = append(d.NodeProps[n.Name], st.nodeProps[n.Name][n.Properties[j].Name])
		}
	}
	for i := range e.Schema.Edges {
		ed := &e.Schema.Edges[i]
		d.Edges[ed.Name] = st.edges[ed.Name]
		for j := range ed.Properties {
			d.EdgeProps[ed.Name] = append(d.EdgeProps[ed.Name], st.edgeProps[ed.Name][ed.Properties[j].Name])
		}
	}
	return d
}
