package core

import (
	"context"
	"time"

	"datasynth/internal/table"
)

// Export writes the generated dataset to dir using the engine's
// ExportFormat and ExportWorkers knobs, and folds the export wall time
// into the run report — so after Generate+Export the reported critical
// path covers the whole generate→structure→match→export pipeline, not
// just the in-memory half. The write is concurrent (one worker per
// table) and atomic (temp files + rename; a failure leaves no partial
// directory); see table.(*Dataset).Export.
func (e *Engine) Export(d *table.Dataset, dir string) error {
	return e.ExportCtx(context.Background(), d, dir)
}

// ExportCtx is Export under a context: cancellation aborts the write
// between files (and before the commit) with all temp files cleaned
// up, via table.(*Dataset).ExportCtx. The generation service uses this
// to put its per-job deadline over the export leg, not just generation.
func (e *Engine) ExportCtx(ctx context.Context, d *table.Dataset, dir string) error {
	start := time.Now()
	files, err := d.ExportCtx(ctx, dir, table.ExportOptions{Format: e.ExportFormat, Workers: e.exportWorkers(), FS: e.ExportFS})
	if err != nil {
		return err
	}
	wall := time.Since(start)
	e.reportMu.Lock()
	if e.report != nil {
		e.report.addExport(files, wall)
	}
	e.reportMu.Unlock()
	e.logf("export: %d %s files in %v -> %s", len(files), e.ExportFormat, wall, dir)
	return nil
}

// exportWorkers resolves the export worker bound: an explicit
// ExportWorkers wins, otherwise the engine-wide Workers bound applies
// (0 still meaning NumCPU, resolved downstream).
func (e *Engine) exportWorkers() int {
	if e.ExportWorkers != 0 {
		return e.ExportWorkers
	}
	return e.Workers
}
