package core

import (
	"math"
	"strings"
	"testing"

	"datasynth/internal/dsl"
)

// fusedDSL exercises the paper's future-work fused operator through the
// DSL: Person country correlates with Message topic exactly.
const fusedDSL = `
graph fusedsocial {
  seed = 11
  node Person {
    count = 1000
    property region : string = categorical(values="north|south", weights="1|1")
  }
  node Message {
    property locale : string = categorical(values="n-locale|s-locale", weights="1|1")
  }
  edge posts : Person 1-* Message {
    structure = powerlaw-out(min=2, max=6, gamma=2.0)
    correlate tail.region with head.locale homophily 0.9 fused
  }
}
`

func TestFusedEdgeEndToEnd(t *testing.T) {
	s, err := dsl.Parse(fusedDSL)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(s).Generate()
	if err != nil {
		t.Fatal(err)
	}
	posts := d.Edges["posts"]
	if posts.Len() == 0 {
		t.Fatal("no edges")
	}
	if d.NodeCounts["Message"] != posts.Len() {
		t.Fatalf("Message count %d != posts %d", d.NodeCounts["Message"], posts.Len())
	}
	region := d.NodeProps["Person"][0]
	locale := d.NodeProps["Message"][0]
	// The joint must be realised EXACTLY up to rounding: 90% aligned.
	aligned := 0.0
	for e := int64(0); e < posts.Len(); e++ {
		r := region.String(posts.Tail[e])
		l := locale.String(posts.Head[e])
		if (r == "north") == (l == "n-locale") {
			aligned++
		}
	}
	frac := aligned / float64(posts.Len())
	if math.Abs(frac-0.9) > 0.01 {
		t.Errorf("aligned fraction = %v, want 0.90 exactly (fused operator)", frac)
	}
	// Head marginal must follow the declared 50/50 weights approximately
	// (the homophily model preserves marginals by construction).
	nCount := 0
	for id := int64(0); id < d.NodeCounts["Message"]; id++ {
		if locale.String(id) == "n-locale" {
			nCount++
		}
	}
	if f := float64(nCount) / float64(d.NodeCounts["Message"]); f < 0.4 || f > 0.6 {
		t.Errorf("head marginal P(n-locale) = %v, want ~0.5", f)
	}
}

func TestFusedDeterministic(t *testing.T) {
	gen := func() []int64 {
		s, err := dsl.Parse(fusedDSL)
		if err != nil {
			t.Fatal(err)
		}
		d, err := New(s).Generate()
		if err != nil {
			t.Fatal(err)
		}
		return d.Edges["posts"].Tail
	}
	a, b := gen(), gen()
	if len(a) != len(b) {
		t.Fatal("fused runs differ in size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("fused run not deterministic")
		}
	}
}

func TestFusedRequiresOneToMany(t *testing.T) {
	src := strings.Replace(fusedDSL, "1-* Message", "*-* Message", 1)
	if _, err := dsl.Parse(src); err == nil || !strings.Contains(err.Error(), "not 1-*") {
		t.Errorf("err = %v, want fused-needs-1-* rejection", err)
	}
}

func TestFusedRequiresCategoricalHead(t *testing.T) {
	src := strings.Replace(fusedDSL,
		`property locale : string = categorical(values="n-locale|s-locale", weights="1|1")`,
		`property locale : string = text(min=1, max=2)`, 1)
	s, err := dsl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(s).Generate(); err == nil || !strings.Contains(err.Error(), "categorical") {
		t.Errorf("err = %v, want categorical requirement", err)
	}
}

func TestFusedExplicitEdgeCount(t *testing.T) {
	src := strings.Replace(fusedDSL, "structure = powerlaw-out(min=2, max=6, gamma=2.0)",
		"count = 7000\n    structure = powerlaw-out(min=2, max=6, gamma=2.0)", 1)
	s, err := dsl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(s).Generate()
	if err != nil {
		t.Fatal(err)
	}
	if d.Edges["posts"].Len() != 7000 {
		t.Errorf("edges = %d, want exactly 7000 (fused honours explicit count)", d.Edges["posts"].Len())
	}
}
