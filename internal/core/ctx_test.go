package core

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"strings"
	"testing"

	"datasynth/internal/dsl"
)

func TestGenerateCtxCanceled(t *testing.T) {
	s, err := dsl.Parse(paperDSL)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the first task dispatches
	if _, err := New(s).GenerateCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("GenerateCtx on canceled ctx = %v, want context.Canceled", err)
	}
}

func TestGenerateCtxBackgroundMatchesGenerate(t *testing.T) {
	s, err := dsl.Parse(paperDSL)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(s).GenerateCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if d.NodeCounts["Person"] != 2000 {
		t.Errorf("Person count = %d", d.NodeCounts["Person"])
	}
}

// TestExportCtxCanceled: a canceled context stops Engine.ExportCtx
// before anything hits disk — the export directory is never created,
// so a service job that times out during generation can never smear a
// partial export into its staging area.
func TestExportCtxCanceled(t *testing.T) {
	s, err := dsl.Parse(paperDSL)
	if err != nil {
		t.Fatal(err)
	}
	e := New(s)
	d, err := e.Generate()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dir := t.TempDir() + "/out"
	if err := e.ExportCtx(ctx, d, dir); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExportCtx on canceled ctx = %v, want context.Canceled", err)
	}
	if _, serr := os.Stat(dir); !os.IsNotExist(serr) {
		t.Errorf("canceled export created %s", dir)
	}
}

func TestRunReportJSON(t *testing.T) {
	s, err := dsl.Parse(paperDSL)
	if err != nil {
		t.Fatal(err)
	}
	e := New(s)
	d, err := e.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Export(d, t.TempDir()); err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(e.Report())
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		TotalNS      int64    `json:"total_ns"`
		CriticalPath []string `json:"critical_path"`
		Timings      []struct {
			ID   string `json:"id"`
			Kind string `json:"kind"`
		} `json:"timings"`
		ExportFiles []struct {
			Name  string `json:"name"`
			Bytes int64  `json:"bytes"`
		} `json:"export_files"`
		EndToEndNS int64 `json:"end_to_end_ns"`
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("report JSON does not round-trip: %v\n%s", err, raw)
	}
	if got.TotalNS <= 0 || got.EndToEndNS < got.TotalNS {
		t.Errorf("implausible totals: total=%d end_to_end=%d", got.TotalNS, got.EndToEndNS)
	}
	if len(got.Timings) == 0 || len(got.CriticalPath) == 0 {
		t.Fatalf("report JSON missing timings/critical path:\n%s", raw)
	}
	// The export hop must appear on the serialized critical path.
	if last := got.CriticalPath[len(got.CriticalPath)-1]; !strings.HasPrefix(last, "export:") {
		t.Errorf("critical path does not end with the export hop: %v", got.CriticalPath)
	}
	for _, f := range got.ExportFiles {
		if f.Bytes <= 0 {
			t.Errorf("export file %s serialized with %d bytes", f.Name, f.Bytes)
		}
	}
}
