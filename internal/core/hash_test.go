package core

import (
	"strings"
	"testing"

	"datasynth/internal/dsl"
	"datasynth/internal/schema"
)

const hashSchemaA = `graph g {
  seed = 7
  node Person {
    count = 100
    property age : int = uniform-int(min=18, max=90)
  }
}
`

// Same schema, different surface syntax: parameter order swapped,
// whitespace and comments changed.
const hashSchemaB = `# a comment
graph g {
  seed = 7
  node Person {
    count   = 100
    property age : int = uniform-int(max=90, min=18)
  }
}
`

func TestCanonicalHashInvariantToSurfaceSyntax(t *testing.T) {
	a, err := dsl.Parse(hashSchemaA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dsl.Parse(hashSchemaB)
	if err != nil {
		t.Fatal(err)
	}
	ha, hb := CanonicalHash(a), CanonicalHash(b)
	if ha != hb {
		t.Fatalf("surface-syntax variants hash differently:\n%s\n%s", ha, hb)
	}
	if len(ha) != 64 {
		t.Fatalf("hash %q is not hex sha256", ha)
	}
	// The canonical text must round-trip: hashing the reprint of the
	// parse is the fixed point the cache key relies on.
	rt, err := dsl.Parse(CanonicalSchema(a))
	if err != nil {
		t.Fatalf("canonical text does not reparse: %v", err)
	}
	if CanonicalHash(rt) != ha {
		t.Fatal("canonical hash is not a reprint fixed point")
	}
}

func TestCanonicalHashSensitivity(t *testing.T) {
	base, err := dsl.Parse(hashSchemaA)
	if err != nil {
		t.Fatal(err)
	}
	h := CanonicalHash(base)

	for name, text := range map[string]string{
		"seed":  strings.Replace(hashSchemaA, "seed = 7", "seed = 8", 1),
		"count": strings.Replace(hashSchemaA, "count = 100", "count = 101", 1),
		"param": strings.Replace(hashSchemaA, "max=90", "max=91", 1),
	} {
		s, err := dsl.Parse(text)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if CanonicalHash(s) == h {
			t.Errorf("changing the %s did not change the canonical hash", name)
		}
	}
}

func TestValidateSchema(t *testing.T) {
	s, err := dsl.Parse(hashSchemaA)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSchema(s); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
	// Break referential integrity (programmatically — dsl.Parse already
	// rejects this): an edge to an undeclared type.
	bad := *s
	bad.Edges = []schema.EdgeType{{
		Name: "knows", Tail: "Person", Head: "Ghost",
		Cardinality: schema.ManyToMany,
		Structure:   schema.GeneratorSpec{Name: "lfr"},
	}}
	if err := ValidateSchema(&bad); err == nil {
		t.Fatal("schema with undeclared endpoint type validated")
	}
}
