package core

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"datasynth/internal/dsl"
	"datasynth/internal/pgen"
	"datasynth/internal/schema"
	"datasynth/internal/table"
	"datasynth/internal/xrand"
)

// quickstartSchema mirrors examples/quickstart: a correlated LFR graph
// over one node type.
func quickstartSchema() *schema.Schema {
	return &schema.Schema{
		Name: "quickstart",
		Seed: 7,
		Nodes: []schema.NodeType{{
			Name:  "User",
			Count: 2000,
			Properties: []schema.Property{
				{
					Name: "city", Kind: table.KindString,
					Generator: schema.GeneratorSpec{
						Name:   "categorical",
						Params: map[string]string{"values": "tokyo|paris|lima|cairo", "weights": "4|3|2|1"},
					},
				},
				{
					Name: "karma", Kind: table.KindInt,
					Generator: schema.GeneratorSpec{
						Name:   "uniform-int",
						Params: map[string]string{"lo": "0", "hi": "1000"},
					},
				},
			},
		}},
		Edges: []schema.EdgeType{{
			Name: "follows", Tail: "User", Head: "User",
			Cardinality: schema.ManyToMany,
			Structure: schema.GeneratorSpec{
				Name:   "lfr",
				Params: map[string]string{"avgDegree": "12", "maxDegree": "40"},
			},
			Correlation: &schema.Correlation{Property: "city", Homophily: 0.7},
		}},
	}
}

// socialDSL mirrors examples/socialnetwork at test scale: multiple node
// types, a count inferred through a 1→* edge, correlated matching,
// conditional properties, and an edge property with endpoint deps —
// the widest task DAG the examples exercise.
const socialDSL = `
graph social {
  seed = 42
  node Person {
    count = 3000
    property country : string = categorical(dict="countries")
    property sex     : string = categorical(values="M|F")
    property name    : string = dictionary() given (country, sex)
    property creationDate : date = uniform-date(from="2010-01-01", to="2020-01-01")
  }
  node Message {
    property topic : string = categorical(dict="topics")
  }
  edge knows : Person *-* Person {
    structure = lfr(avgDegree=12, maxDegree=40)
    correlate country homophily 0.8
    property creationDate : date = max-endpoint-date(maxDays=365) given (tail.creationDate, head.creationDate)
  }
  edge creates : Person 1-* Message {
    structure = powerlaw-out(min=1, max=10, gamma=2.0)
    property creationDate : date = uniform-date(from="2010-01-01", to="2020-01-01")
  }
}
`

// assertDatasetsIdentical compares every property table and edge table
// of two datasets cell by cell.
func assertDatasetsIdentical(t *testing.T, want, got *table.Dataset) {
	t.Helper()
	if len(want.NodeCounts) != len(got.NodeCounts) {
		t.Fatalf("node type count differs: %d vs %d", len(want.NodeCounts), len(got.NodeCounts))
	}
	for name, c := range want.NodeCounts {
		if got.NodeCounts[name] != c {
			t.Fatalf("count of %s: %d vs %d", name, c, got.NodeCounts[name])
		}
	}
	comparePTs := func(kind string, w, g []*table.PropertyTable) {
		if len(w) != len(g) {
			t.Fatalf("%s: %d vs %d property tables", kind, len(w), len(g))
		}
		for i := range w {
			if w[i].Name != g[i].Name || w[i].Kind != g[i].Kind || w[i].Len() != g[i].Len() {
				t.Fatalf("%s table %s shape differs from %s", kind, w[i].Name, g[i].Name)
			}
			for id := int64(0); id < w[i].Len(); id++ {
				if w[i].Value(id) != g[i].Value(id) {
					t.Fatalf("%s %s row %d: %v vs %v", kind, w[i].Name, id, w[i].Value(id), g[i].Value(id))
				}
			}
		}
	}
	for name, pts := range want.NodeProps {
		comparePTs("node "+name, pts, got.NodeProps[name])
	}
	for name, pts := range want.EdgeProps {
		comparePTs("edge "+name, pts, got.EdgeProps[name])
	}
	if len(want.Edges) != len(got.Edges) {
		t.Fatalf("edge type count differs")
	}
	for name, w := range want.Edges {
		g := got.Edges[name]
		if g == nil || w.Len() != g.Len() {
			t.Fatalf("edge table %s length differs", name)
		}
		for i := range w.Tail {
			if w.Tail[i] != g.Tail[i] || w.Head[i] != g.Head[i] {
				t.Fatalf("edge table %s row %d: (%d,%d) vs (%d,%d)",
					name, i, w.Tail[i], w.Head[i], g.Tail[i], g.Head[i])
			}
		}
	}
}

// generateWithWorkers runs a schema at the given worker count.
func generateWithWorkers(t *testing.T, s *schema.Schema, workers int) *table.Dataset {
	t.Helper()
	e := New(s)
	e.Workers = workers
	d, err := e.Generate()
	if err != nil {
		t.Fatalf("Workers=%d: %v", workers, err)
	}
	return d
}

// TestSchedulerDeterminismQuickstart: the DAG scheduler must produce a
// byte-identical dataset at any worker count.
func TestSchedulerDeterminismQuickstart(t *testing.T) {
	s := quickstartSchema()
	seq := generateWithWorkers(t, s, 1)
	par := generateWithWorkers(t, s, runtime.NumCPU())
	assertDatasetsIdentical(t, seq, par)
}

func TestSchedulerDeterminismSocialNetwork(t *testing.T) {
	s, err := dsl.Parse(socialDSL)
	if err != nil {
		t.Fatal(err)
	}
	seq := generateWithWorkers(t, s, 1)
	par := generateWithWorkers(t, s, runtime.NumCPU())
	assertDatasetsIdentical(t, seq, par)
	// And once more in parallel: concurrent runs of the same schema must
	// agree with each other too.
	par2 := generateWithWorkers(t, s, runtime.NumCPU())
	assertDatasetsIdentical(t, seq, par2)
}

// alwaysFailGen errors on every row, so every parallelFill worker
// exits early — the scenario that used to deadlock the producer.
type alwaysFailGen struct{}

func (alwaysFailGen) Name() string          { return "always-fails" }
func (alwaysFailGen) Kind() table.ValueKind { return table.KindInt }
func (alwaysFailGen) Arity() int            { return 0 }
func (alwaysFailGen) Run(id int64, s xrand.Stream, deps []pgen.Value) (pgen.Value, error) {
	return pgen.Value{}, fmt.Errorf("boom at row %d", id)
}

// TestParallelFillErrorNoDeadlock: when every worker exits early on a
// generator error, the chunk producer must stop rather than block
// forever on the jobs channel. n is far larger than chunk·workers so a
// non-cancelled producer could not finish on channel capacity alone.
func TestParallelFillErrorNoDeadlock(t *testing.T) {
	e := New(&schema.Schema{Name: "x"})
	e.Workers = 2
	const n = 1 << 22 // 4M rows ≫ chunk(8192) · workers(2)
	pt := table.NewPropertyTable("T.p", table.KindInt, n)
	done := make(chan error, 1)
	go func() {
		done <- e.parallelFill(pt, n, alwaysFailGen{}, xrand.NewStream(1),
			func(id int64, buf []pgen.Value) []pgen.Value { return buf[:0] }, 0)
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected a generator error, got nil")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("parallelFill deadlocked: producer still blocked after workers failed")
	}
}

// TestSchedulerErrorPropagates: a failing task must surface its error
// through the concurrent scheduler (and not hang the run).
func TestSchedulerErrorPropagates(t *testing.T) {
	s := &schema.Schema{
		Name: "bad",
		Seed: 1,
		Nodes: []schema.NodeType{{
			Name:  "N",
			Count: 100,
			Properties: []schema.Property{{
				Name: "p", Kind: table.KindInt,
				Generator: schema.GeneratorSpec{Name: "no-such-generator"},
			}},
		}},
	}
	e := New(s)
	done := make(chan error, 1)
	go func() {
		_, err := e.Generate()
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected an error for unknown generator")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Generate hung on a failing task")
	}
}
