// Package core implements the DataSynth engine: the pipeline of the
// paper's Figure 2. Given a schema (from the DSL or built
// programmatically) it runs the dependency analysis, then executes the
// resulting plan — generate node properties, generate structure per
// edge type, match properties with structure, generate edge
// properties — and returns a table.Dataset ready for export.
//
// Execution is dependency-driven and concurrent at two levels,
// mirroring the paper's shared-nothing cluster design in-process:
//
//   - Task level: depgraph exposes the plan as a DAG (Plan.Deps), and
//     the engine dispatches every task whose dependencies are satisfied
//     onto a bounded worker pool, so independent schema elements —
//     property generation, structure generation, and SBM-Part matching
//     of unrelated types — run concurrently.
//   - Row level: property generation is embarrassingly parallel (every
//     value is a pure function of (id, r(id), deps)), so each property
//     task additionally fans row ranges out to workers.
//
// Determinism is independent of the worker count: every task keys its
// RNG streams off (schema seed, task id) and writes only its own
// output slot, so the same seed yields a byte-identical dataset whether
// the plan runs on one worker or on NumCPU.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"datasynth/internal/depgraph"
	"datasynth/internal/faultfs"
	"datasynth/internal/par"
	"datasynth/internal/pgen"
	"datasynth/internal/schema"
	"datasynth/internal/sgen"
	"datasynth/internal/table"
	"datasynth/internal/xrand"
)

// Engine generates property graphs from a schema.
type Engine struct {
	Schema *schema.Schema
	PGens  *pgen.Registry
	SGens  *sgen.Registry
	// Workers bounds the parallelism of both the task scheduler and
	// per-property row generation; 0 means NumCPU, 1 runs the plan
	// strictly sequentially. The output is byte-identical at any value.
	Workers int
	// MatchWindow sets the stream window of the windowed-parallel
	// SBM-Part used by match tasks: 0 picks the matcher's default
	// (serial when the engine is single-worker), negative forces the
	// serial stream. Every setting yields a byte-identical dataset.
	MatchWindow int
	// RefineWindow sets the stream window of SBM-Part's re-streaming
	// refinement passes (the schema's `passes` knob): 0 inherits the
	// resolved MatchWindow, negative forces serial refinement. Every
	// setting yields a byte-identical dataset.
	RefineWindow int
	// ExportFormat selects the on-disk encoding used by Export
	// (the zero value is CSV).
	ExportFormat table.Format
	// ExportWorkers bounds how many tables Export writes concurrently:
	// 0 inherits Workers (and thus NumCPU when that is 0 too), 1 writes
	// one table at a time. File bytes are identical at any value.
	ExportWorkers int
	// ExportFS abstracts the export's filesystem for fault-injection
	// tests; nil means the real one.
	ExportFS faultfs.FS
	// Logf, if non-nil, receives progress lines. It may be called from
	// multiple scheduler workers concurrently.
	Logf func(format string, args ...any)

	// report of the most recent Generate, for Report().
	reportMu sync.Mutex
	report   *RunReport
}

// New returns an engine with the built-in generator registries.
func New(s *schema.Schema) *Engine {
	return &Engine{Schema: s, PGens: pgen.NewRegistry(), SGens: sgen.NewRegistry()}
}

// Report returns the per-task timing report of the most recent
// Generate call (nil before the first successful run). The report
// marks the plan's critical path — the dependency chain that bounds
// wall time at any worker count — which is the place to spend further
// intra-task parallelism.
func (e *Engine) Report() *RunReport {
	e.reportMu.Lock()
	defer e.reportMu.Unlock()
	return e.report
}

// run-state, private to one Generate call. Scheduler workers execute
// tasks concurrently, so every map access goes through the mu-guarded
// accessors below; each task writes only its own output slot, which
// keeps the state itself order-independent.
type runState struct {
	mu        sync.Mutex
	counts    map[string]int64
	nodeProps map[string]map[string]*table.PropertyTable
	edgeProps map[string]map[string]*table.PropertyTable
	edges     map[string]*table.EdgeTable
	matched   map[string]bool
	// fusedProps holds property columns produced by fused operators
	// (value indices plus the value universe); genNodeProperty
	// materialises these instead of running a generator.
	fusedProps map[string]map[string]*fusedColumn
}

// fusedColumn is a property column minted by a fused operator.
type fusedColumn struct {
	labels []int64
	values []string
}

func newRunState() *runState {
	return &runState{
		counts:     map[string]int64{},
		nodeProps:  map[string]map[string]*table.PropertyTable{},
		edgeProps:  map[string]map[string]*table.PropertyTable{},
		edges:      map[string]*table.EdgeTable{},
		matched:    map[string]bool{},
		fusedProps: map[string]map[string]*fusedColumn{},
	}
}

func (st *runState) count(name string) (int64, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	c, ok := st.counts[name]
	return c, ok
}

func (st *runState) setCount(name string, c int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.counts[name] = c
}

func (st *runState) nodeProp(typeName, propName string) (*table.PropertyTable, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	pt, ok := st.nodeProps[typeName][propName]
	return pt, ok
}

func (st *runState) setNodeProp(typeName, propName string, pt *table.PropertyTable) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.nodeProps[typeName] == nil {
		st.nodeProps[typeName] = map[string]*table.PropertyTable{}
	}
	st.nodeProps[typeName][propName] = pt
}

func (st *runState) edgeProp(edgeName, propName string) (*table.PropertyTable, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	pt, ok := st.edgeProps[edgeName][propName]
	return pt, ok
}

func (st *runState) setEdgeProp(edgeName, propName string, pt *table.PropertyTable) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.edgeProps[edgeName] == nil {
		st.edgeProps[edgeName] = map[string]*table.PropertyTable{}
	}
	st.edgeProps[edgeName][propName] = pt
}

func (st *runState) edgeTable(name string) (*table.EdgeTable, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	et, ok := st.edges[name]
	return et, ok
}

func (st *runState) setEdgeTable(name string, et *table.EdgeTable) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.edges[name] = et
}

func (st *runState) isMatched(name string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.matched[name]
}

func (st *runState) setMatched(name string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.matched[name] = true
}

func (st *runState) fusedCol(typeName, propName string) *fusedColumn {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.fusedProps[typeName][propName]
}

func (st *runState) setFusedCol(typeName, propName string, fc *fusedColumn) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.fusedProps[typeName] == nil {
		st.fusedProps[typeName] = map[string]*fusedColumn{}
	}
	st.fusedProps[typeName][propName] = fc
}

// Generate executes the schema and returns the dataset.
func (e *Engine) Generate() (*table.Dataset, error) {
	return e.GenerateCtx(context.Background())
}

// GenerateCtx is Generate with cooperative cancellation: when ctx is
// done, no further task is dispatched, in-flight tasks finish, and the
// context's error is returned. Cancellation is task-granular — the
// engine never abandons a half-written table — which is the contract
// the generation service's per-job timeout relies on: a timed-out job
// releases its worker as soon as the current task completes.
func (e *Engine) GenerateCtx(ctx context.Context) (*table.Dataset, error) {
	plan, err := depgraph.Analyze(e.Schema)
	if err != nil {
		return nil, err
	}
	st := newRunState()
	if err := e.runPlan(ctx, st, plan); err != nil {
		return nil, err
	}
	// Node types with no properties still need their counts resolved
	// for the dataset (e.g. a bare join type).
	for i := range e.Schema.Nodes {
		if _, err := e.nodeCount(st, plan, e.Schema.Nodes[i].Name); err != nil {
			return nil, err
		}
	}
	return e.assemble(st), nil
}

// runPlan executes the plan's task DAG on a bounded worker pool: a task
// is dispatched as soon as every dependency has completed. Ready-queue
// sends never block (the channel holds every task), completion
// bookkeeping happens under one mutex, and the first task error stops
// dispatch; in-flight tasks drain before the error is returned.
func (e *Engine) runPlan(ctx context.Context, st *runState, plan *depgraph.Plan) error {
	n := len(plan.Tasks)
	if n == 0 {
		return nil
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}

	dependents := make([][]int, n)
	indeg := make([]int, n)
	for i, deps := range plan.Deps {
		indeg[i] = len(deps)
		for _, d := range deps {
			dependents[d] = append(dependents[d], i)
		}
	}

	ready := make(chan int, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready <- i
		}
	}

	// Per-task timing slots: every worker writes only the slot of the
	// task it executed, so no lock is needed beyond the scheduler's.
	timings := make([]TaskTiming, n)
	for i, t := range plan.Tasks {
		timings[i] = TaskTiming{ID: t.ID(), Kind: t.Kind}
	}
	runStart := time.Now()

	var (
		mu        sync.Mutex
		firstErr  error
		remaining = n
		closed    bool
	)
	closeReady := func() {
		if !closed {
			closed = true
			close(ready)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The scheduling loop itself runs under par.Safe: task
			// panics are already recovered inside runTask, so this
			// guards the bookkeeping around it — a panic there fails
			// the plan (and releases the other workers via closeReady)
			// instead of killing the process. The mu-guarded sections
			// are plain assignments and guarded closes and cannot
			// panic, so the recovery path never runs with mu held.
			if perr := par.Safe(func() error {
				for i := range ready {
					mu.Lock()
					if firstErr == nil && ctx.Err() != nil {
						firstErr = fmt.Errorf("core: generation canceled: %w", ctx.Err())
						closeReady()
					}
					failed := firstErr != nil
					mu.Unlock()
					if failed {
						continue // drain without executing
					}
					t := plan.Tasks[i]
					e.logf("task %s", t.ID())
					taskStart := time.Now()
					note, err := e.runTask(st, plan, t)
					timings[i].Start = taskStart.Sub(runStart)
					timings[i].Duration = time.Since(taskStart)
					timings[i].Note = note
					mu.Lock()
					if err != nil {
						if firstErr == nil {
							firstErr = fmt.Errorf("core: task %s: %w", t.ID(), err)
						}
						closeReady()
						mu.Unlock()
						continue
					}
					for _, j := range dependents[i] {
						indeg[j]--
						if indeg[j] == 0 && !closed {
							ready <- j
						}
					}
					remaining--
					if remaining == 0 {
						closeReady()
					}
					mu.Unlock()
				}
				return nil
			}); perr != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("core: scheduler worker: %w", perr)
				}
				closeReady()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr == nil {
		report := buildReport(plan, timings, time.Since(runStart))
		e.reportMu.Lock()
		e.report = report
		e.reportMu.Unlock()
		e.logf("plan done: total %v, critical path %v (%d tasks)",
			report.Total, report.CriticalPathTime, len(report.CriticalPath))
	}
	return firstErr
}

// runTask dispatches one plan task to its executor. The returned note
// is a free-form per-task annotation for the timing report (match
// tasks report their per-pass SBM-Part breakdown there). A panicking
// generator or matcher is recovered into a *par.PanicError here, so a
// bad task fails the plan like any other task error instead of
// killing the process — the isolation contract the generation service
// relies on to survive hostile schemas.
func (e *Engine) runTask(st *runState, plan *depgraph.Plan, t depgraph.Task) (note string, err error) {
	err = par.Safe(func() error {
		switch t.Kind {
		case depgraph.TaskProperty:
			return e.genNodeProperty(st, plan, t.Type, t.Prop)
		case depgraph.TaskStructure:
			note, err = e.genStructure(st, plan, t.Type)
			return err
		case depgraph.TaskMatch:
			note, err = e.matchEdge(st, plan, t.Type)
			return err
		case depgraph.TaskEdgeProperty:
			return e.genEdgeProperty(st, t.Type, t.Prop)
		default:
			return fmt.Errorf("core: unknown task kind %v", t.Kind)
		}
	})
	return note, err
}

func (e *Engine) logf(format string, args ...any) {
	if e.Logf != nil {
		e.Logf(format, args...)
	}
}

// nodeCount resolves (and caches) a node type's instance count using
// the plan's count sources. Concurrent tasks may resolve the same type
// simultaneously; the computation is deterministic, so the duplicated
// work writes the same value.
func (e *Engine) nodeCount(st *runState, plan *depgraph.Plan, typeName string) (int64, error) {
	if c, ok := st.count(typeName); ok {
		return c, nil
	}
	src, ok := plan.Counts[typeName]
	if !ok {
		return 0, fmt.Errorf("core: no count source for node type %q", typeName)
	}
	var c int64
	switch src.Kind {
	case depgraph.SourceExplicit:
		c = e.Schema.NodeType(typeName).Count
	case depgraph.SourceEdgeHead:
		et, ok := st.edgeTable(src.Edge)
		if !ok {
			return 0, fmt.Errorf("core: count of %q needs structure of %q first", typeName, src.Edge)
		}
		c = et.MaxNode()
		// A 1→* edge's heads are dense [0, m), so MaxNode == edge count;
		// an empty table still implies zero heads.
	case depgraph.SourceEdgeCount:
		edge := e.Schema.EdgeType(src.Edge)
		n, err := e.tailCountFromEdgeCount(edge)
		if err != nil {
			return 0, err
		}
		c = n
	}
	if c <= 0 {
		return 0, fmt.Errorf("core: resolved count of %q is %d", typeName, c)
	}
	st.setCount(typeName, c)
	return c, nil
}

// tailCountFromEdgeCount applies the paper's getNumNodes path: size the
// tail domain so the generator produces ~edge.Count edges.
func (e *Engine) tailCountFromEdgeCount(edge *schema.EdgeType) (int64, error) {
	seed := e.structureSeed(edge.Name)
	if edge.Tail == edge.Head && e.SGens.HasMono(edge.Structure.Name) {
		g, err := e.SGens.BuildMono(edge.Structure.Name, edge.Structure.Params, seed)
		if err != nil {
			return 0, err
		}
		return g.NumNodesForEdges(edge.Count)
	}
	g, err := e.SGens.BuildBipartite(edge.Structure.Name, edge.Structure.Params, seed)
	if err != nil {
		return 0, err
	}
	return g.NumTailsForEdges(edge.Count)
}

func (e *Engine) structureSeed(edgeName string) uint64 {
	return xrand.NewStream(e.Schema.Seed).DeriveStream("structure." + edgeName).Seed()
}

func (e *Engine) propertySeed(typeName, propName string) xrand.Stream {
	return xrand.NewStream(e.Schema.Seed).DeriveStream("property." + typeName + "." + propName)
}

// genNodeProperty materialises one node property table in parallel.
// Columns minted by a fused operator are materialised directly from the
// fused labels instead of running the property generator.
func (e *Engine) genNodeProperty(st *runState, plan *depgraph.Plan, typeName, propName string) error {
	nt := e.Schema.NodeType(typeName)
	prop := nt.Property(propName)
	n, err := e.nodeCount(st, plan, typeName)
	if err != nil {
		return err
	}
	if fc := st.fusedCol(typeName, propName); fc != nil {
		if int64(len(fc.labels)) != n {
			return fmt.Errorf("core: fused column %s.%s has %d rows, expected %d", typeName, propName, len(fc.labels), n)
		}
		if prop.Kind != table.KindString {
			return fmt.Errorf("core: fused column %s.%s must be a string property", typeName, propName)
		}
		pt := table.NewPropertyTable(typeName+"."+propName, table.KindString, n)
		for id := int64(0); id < n; id++ {
			pt.SetString(id, fc.values[fc.labels[id]])
		}
		st.setNodeProp(typeName, propName, pt)
		return nil
	}
	gen, err := e.PGens.Build(prop.Generator.Name, prop.Generator.Params)
	if err != nil {
		return err
	}
	if err := checkKind(gen, prop); err != nil {
		return err
	}
	deps := make([]*table.PropertyTable, len(prop.DependsOn))
	for i, d := range prop.DependsOn {
		pt, ok := st.nodeProp(typeName, d)
		if !ok {
			return fmt.Errorf("core: dependency %s.%s not materialised", typeName, d)
		}
		deps[i] = pt
	}
	pt := table.NewPropertyTable(typeName+"."+propName, prop.Kind, n)
	stream := e.propertySeed(typeName, propName)
	if err := e.parallelFill(pt, n, gen, stream, func(id int64, buf []pgen.Value) []pgen.Value {
		for i, dp := range deps {
			buf[i] = valueAt(dp, id)
		}
		return buf[:len(deps)]
	}, len(deps)); err != nil {
		return err
	}
	st.setNodeProp(typeName, propName, pt)
	return nil
}

// parallelFill fans the id range out to workers; each worker computes
// rows independently thanks to in-place generation. A failing worker
// closes done before exiting, so the producer never blocks on a send
// nobody will receive — even when every worker has bailed out early.
// A panicking generator (bad parameter combinations can reach panics
// inside xrand) is recovered into a *par.PanicError and reported like
// any other row error, so a hostile property fails its task rather
// than the process.
func (e *Engine) parallelFill(pt *table.PropertyTable, n int64, gen pgen.Generator, stream xrand.Stream, depsFor func(id int64, buf []pgen.Value) []pgen.Value, arity int) error {
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	const chunk = 8192
	type job struct{ lo, hi int64 }
	jobs := make(chan job, workers)
	errs := make(chan error, workers)
	done := make(chan struct{})
	var closeOnce sync.Once
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// par.Safe is the recover point: a panicking generator
			// surfaces as a *par.PanicError through the same error path
			// as an ordinary row failure.
			if err := par.Safe(func() error {
				buf := make([]pgen.Value, arity)
				for j := range jobs {
					select {
					case <-done:
						return nil // another worker failed; stop early
					default:
					}
					for id := j.lo; id < j.hi; id++ {
						v, err := gen.Run(id, stream, depsFor(id, buf))
						if err != nil {
							return fmt.Errorf("core: row %d: %w", id, err)
						}
						storeValue(pt, id, v)
					}
				}
				return nil
			}); err != nil {
				select {
				case errs <- err:
				default:
				}
				closeOnce.Do(func() { close(done) })
			}
		}()
	}
produce:
	for lo := int64(0); lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		select {
		case jobs <- job{lo, hi}:
		case <-done:
			break produce
		}
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// valueAt boxes a PT row as a pgen.Value.
func valueAt(pt *table.PropertyTable, id int64) pgen.Value {
	switch pt.Kind {
	case table.KindString:
		return pgen.StringValue(pt.String(id))
	case table.KindFloat:
		return pgen.FloatValue(pt.Float(id))
	case table.KindDate:
		return pgen.DateValue(pt.Int(id))
	default:
		return pgen.IntValue(pt.Int(id))
	}
}

// storeValue writes a pgen.Value into a PT row.
func storeValue(pt *table.PropertyTable, id int64, v pgen.Value) {
	switch pt.Kind {
	case table.KindString:
		pt.SetString(id, v.Str)
	case table.KindFloat:
		pt.SetFloat(id, v.Float)
	default:
		pt.SetInt(id, v.Int)
	}
}

// polymorphicKinds are generators whose output kind follows the
// declared property kind rather than a fixed kind.
var polymorphicKinds = map[string]bool{
	"endpoint-copy": true,
	"constant":      true,
	"sequence":      true,
}

func checkKind(gen pgen.Generator, prop *schema.Property) error {
	if polymorphicKinds[gen.Name()] {
		return nil
	}
	if gen.Kind() != prop.Kind {
		return fmt.Errorf("core: generator %s produces %v but property %s is declared %v",
			gen.Name(), gen.Kind(), prop.Name, prop.Kind)
	}
	return nil
}
