package core

import (
	"testing"

	"datasynth/internal/dsl"
)

// cascadeDSL models a discussion forum: Messages form reply cascades.
const cascadeDSL = `
graph forum {
  seed = 4
  node Message {
    count = 3000
    property topic : string = categorical(dict="topics")
  }
  edge replyOf : Message 1-* Message {
    structure = cascade(minSize=1, maxSize=40, gamma=2.0, preferRecent=0.4)
  }
}
`

func TestCascadeEdgeInDSL(t *testing.T) {
	s, err := dsl.Parse(cascadeDSL)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(s).Generate()
	if err != nil {
		t.Fatal(err)
	}
	replyOf := d.Edges["replyOf"]
	if replyOf.Len() == 0 {
		t.Fatal("no reply edges")
	}
	if err := replyOf.Validate(3000, 3000); err != nil {
		t.Fatal(err)
	}
	// Forest invariant survives the random matching: every node has at
	// most one parent (out-degree <= 1 on the child->parent edge).
	outDeg := make(map[int64]int)
	for i := int64(0); i < replyOf.Len(); i++ {
		outDeg[replyOf.Tail[i]]++
		if outDeg[replyOf.Tail[i]] > 1 {
			t.Fatalf("message %d has two parents", replyOf.Tail[i])
		}
	}
	// Acyclicity: follow parents from every node; must terminate.
	parent := make(map[int64]int64, replyOf.Len())
	for i := int64(0); i < replyOf.Len(); i++ {
		parent[replyOf.Tail[i]] = replyOf.Head[i]
	}
	for v := int64(0); v < 3000; v++ {
		cur, steps := v, 0
		for {
			p, ok := parent[cur]
			if !ok {
				break
			}
			cur = p
			steps++
			if steps > 3000 {
				t.Fatalf("cycle reached from message %d", v)
			}
		}
	}
}
