package core

import (
	"encoding/json"
	"time"
)

// JSON serialization of the run report, consumed by the generation
// service's job-status endpoint (GET /v1/jobs/{id}). Durations are
// emitted twice: machine-readable nanoseconds (_ns suffix) and the
// human time.Duration rendering — so dashboards can plot and humans
// can read the same payload. The encoding is hand-shaped rather than
// relying on struct tags because time.Duration's default JSON form
// (a bare int) is ambiguous at a glance.

type taskTimingJSON struct {
	ID         string `json:"id"`
	Kind       string `json:"kind"`
	StartNS    int64  `json:"start_ns"`
	DurationNS int64  `json:"duration_ns"`
	Duration   string `json:"duration"`
	Critical   bool   `json:"critical,omitempty"`
	Note       string `json:"note,omitempty"`
}

type fileStatJSON struct {
	Name       string `json:"name"`
	Bytes      int64  `json:"bytes"`
	DurationNS int64  `json:"duration_ns"`
}

// MarshalJSON renders the report with explicit-unit duration fields.
func (r *RunReport) MarshalJSON() ([]byte, error) {
	timings := make([]taskTimingJSON, len(r.Timings))
	for i, t := range r.Timings {
		timings[i] = taskTimingJSON{
			ID:         t.ID,
			Kind:       t.Kind.String(),
			StartNS:    int64(t.Start),
			DurationNS: int64(t.Duration),
			Duration:   t.Duration.Round(time.Microsecond).String(),
			Critical:   t.Critical,
			Note:       t.Note,
		}
	}
	files := make([]fileStatJSON, len(r.ExportFiles))
	for i, f := range r.ExportFiles {
		files[i] = fileStatJSON{Name: f.Name, Bytes: f.Bytes, DurationNS: int64(f.Duration)}
	}
	out := struct {
		TotalNS        int64            `json:"total_ns"`
		Total          string           `json:"total"`
		CriticalPath   []string         `json:"critical_path"`
		CriticalPathNS int64            `json:"critical_path_ns"`
		Timings        []taskTimingJSON `json:"timings"`
		ExportTotalNS  int64            `json:"export_total_ns,omitempty"`
		ExportFiles    []fileStatJSON   `json:"export_files,omitempty"`
		EndToEndNS     int64            `json:"end_to_end_ns,omitempty"`
		EndToEnd       string           `json:"end_to_end,omitempty"`
	}{
		TotalNS:        int64(r.Total),
		Total:          r.Total.Round(time.Microsecond).String(),
		CriticalPath:   r.CriticalPath,
		CriticalPathNS: int64(r.CriticalPathTime),
		Timings:        timings,
		ExportTotalNS:  int64(r.ExportTotal),
		ExportFiles:    files,
		EndToEndNS:     int64(r.EndToEnd),
	}
	if r.EndToEnd > 0 {
		out.EndToEnd = r.EndToEnd.Round(time.Microsecond).String()
	}
	return json.Marshal(out)
}
