package core

import (
	"errors"
	"strings"
	"testing"

	"datasynth/internal/dsl"
	"datasynth/internal/par"
)

// panicDSL is a schema any user can submit that used to crash the
// process: uniform-int over the full int64 range makes Hi-Lo+1
// overflow to zero, and the stream's Intn panics on a non-positive
// bound inside the parallel fill workers.
const panicDSL = `graph boom {
  seed = 7
  node A {
    count = 64
    property p : int = uniform-int(lo=-9223372036854775808, hi=9223372036854775807)
  }
}`

func TestGeneratorPanicReturnsError(t *testing.T) {
	s, err := dsl.Parse(panicDSL)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		eng := New(s)
		eng.Workers = workers
		_, err := eng.Generate()
		if err == nil {
			t.Fatalf("workers=%d: Generate must fail, not crash or succeed", workers)
		}
		var pe *par.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %T %v, want *par.PanicError", workers, err, err)
		}
		if !strings.Contains(err.Error(), "panic") {
			t.Fatalf("workers=%d: error should say panic: %v", workers, err)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: recovered panic must carry the stack", workers)
		}
	}
}
