package core

import (
	"crypto/sha256"
	"encoding/hex"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"datasynth/internal/depgraph"
	"datasynth/internal/schema"
	"datasynth/internal/table"
)

// hashDir returns the SHA-256 of every regular file in dir, keyed by
// file name.
func hashDir(t *testing.T, dir string) map[string]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	hashes := map[string]string{}
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		f, err := os.Open(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		h := sha256.New()
		if _, err := io.Copy(h, f); err != nil {
			f.Close()
			t.Fatal(err)
		}
		f.Close()
		hashes[ent.Name()] = hex.EncodeToString(h.Sum(nil))
	}
	if len(hashes) == 0 {
		t.Fatalf("no files exported into %s", dir)
	}
	return hashes
}

// exportHashes generates the schema at the given worker count, match
// window and refinement window, exports it in every format at the
// given export worker count, and returns the per-file SHA-256 set.
func exportHashes(t *testing.T, s *schema.Schema, workers, window, refineWindow, exportWorkers int) map[string]string {
	t.Helper()
	e := New(s)
	e.Workers = workers
	e.MatchWindow = window
	e.RefineWindow = refineWindow
	d, err := e.Generate()
	if err != nil {
		t.Fatalf("workers=%d window=%d: %v", workers, window, err)
	}
	dir := t.TempDir()
	hashes := map[string]string{}
	for _, format := range []table.Format{table.FormatCSV, table.FormatJSONL, table.FormatColumnar} {
		sub := filepath.Join(dir, format.String())
		if _, err := d.Export(sub, table.ExportOptions{Format: format, Workers: exportWorkers}); err != nil {
			t.Fatalf("workers=%d window=%d %v: %v", workers, window, format, err)
		}
		for name, h := range hashDir(t, sub) {
			hashes[format.String()+"/"+name] = h
		}
	}
	return hashes
}

// TestExportedDatasetGoldenDeterminism is the end-to-end determinism
// contract: a Figure-3-style schema (LFR structure + SBM-Part match +
// parallel property fill) must export byte-identical node, edge and
// property files — hash-verified on disk, not just in memory — at
// every scheduler worker count, every SBM-Part window size, every
// export worker count and in every export format ("per-seed,
// worker-invariant, format-stable").
func TestExportedDatasetGoldenDeterminism(t *testing.T) {
	ref := exportHashes(t, quickstartSchema(), 1, -1, -1, 1) // sequential plan, serial stream, serial export
	if len(ref) != 6 {
		t.Fatalf("expected 6 exported files (csv+jsonl+columnar × nodes+edges), got %d", len(ref))
	}
	configs := []struct{ workers, window, exportWorkers int }{
		{1, 64, 1},
		{1, 1 << 20, 4}, // whole stream in one window
		{runtime.NumCPU(), -1, runtime.NumCPU()},
		{runtime.NumCPU(), 0, 0}, // auto window, auto export workers
		{runtime.NumCPU(), 64, 8},
		{4, 512, 2},
	}
	for _, cfg := range configs {
		got := exportHashes(t, quickstartSchema(), cfg.workers, cfg.window, 0, cfg.exportWorkers)
		if len(got) != len(ref) {
			t.Fatalf("workers=%d window=%d: %d files, want %d", cfg.workers, cfg.window, len(got), len(ref))
		}
		for name, h := range ref {
			if got[name] != h {
				t.Errorf("workers=%d window=%d exportWorkers=%d: %s hash %s, want %s",
					cfg.workers, cfg.window, cfg.exportWorkers, name, got[name], h)
			}
		}
	}
}

// refinedQuickstartSchema is the quickstart schema with re-streaming
// refinement passes on its correlated edge, so match tasks exercise
// PartitionMultiPass end to end.
func refinedQuickstartSchema() *schema.Schema {
	s := quickstartSchema()
	s.Edges[0].Correlation.Passes = 2
	return s
}

// TestExportedRefinedDatasetGoldenDeterminism extends the contract to
// the multi-pass matcher: with refinement passes in the schema, the
// exported files must hash identically at every combination of
// scheduler workers, first-pass window and refinement window —
// including windowed-refinement-under-serial-first-pass and vice
// versa.
func TestExportedRefinedDatasetGoldenDeterminism(t *testing.T) {
	ref := exportHashes(t, refinedQuickstartSchema(), 1, -1, -1, 1) // fully serial baseline
	if len(ref) != 6 {
		t.Fatalf("expected 6 exported files, got %d", len(ref))
	}
	// The refined dataset must actually differ from the single-pass one
	// (otherwise this test would silently duplicate the one above).
	plain := exportHashes(t, quickstartSchema(), 1, -1, -1, 1)
	if plain["csv/edges_follows.csv"] == ref["csv/edges_follows.csv"] {
		t.Fatal("refinement passes did not change the matched edge table")
	}
	configs := []struct{ workers, window, refineWindow, exportWorkers int }{
		{1, -1, 64, 1},                               // serial first pass, windowed refinement
		{runtime.NumCPU(), 64, -1, 0},                // windowed first pass, serial refinement
		{runtime.NumCPU(), 64, 0, 0},                 // refinement inherits the first-pass window
		{runtime.NumCPU(), 0, 512, 4},                // auto window, explicit refinement window
		{4, 1 << 20, 1 << 20, 2},                     // whole stream in one window, both passes
		{runtime.NumCPU(), 128, 7, runtime.NumCPU()}, // deliberately ragged window
	}
	for _, cfg := range configs {
		got := exportHashes(t, refinedQuickstartSchema(), cfg.workers, cfg.window, cfg.refineWindow, cfg.exportWorkers)
		for name, h := range ref {
			if got[name] != h {
				t.Errorf("workers=%d window=%d refine=%d exportWorkers=%d: %s hash %s, want %s",
					cfg.workers, cfg.window, cfg.refineWindow, cfg.exportWorkers, name, got[name], h)
			}
		}
	}
}

// TestColumnarExportRoundTripsThroughEngine: the binary format must
// reproduce an engine-generated dataset exactly — counts, structure
// and every property value — when loaded back with OpenColumnar.
func TestColumnarExportRoundTripsThroughEngine(t *testing.T) {
	e := New(quickstartSchema())
	d, err := e.Generate()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := d.WriteDirColumnar(dir); err != nil {
		t.Fatal(err)
	}
	got, err := table.OpenColumnar(dir)
	if err != nil {
		t.Fatal(err)
	}
	for typ, n := range d.NodeCounts {
		if got.NodeCounts[typ] != n {
			t.Errorf("count[%s] = %d, want %d", typ, got.NodeCounts[typ], n)
		}
		for i, want := range d.NodeProps[typ] {
			pt := got.NodeProps[typ][i]
			if pt.Name != want.Name || pt.Kind != want.Kind || pt.Len() != want.Len() {
				t.Fatalf("prop %s malformed after round trip", want.Name)
			}
			for id := int64(0); id < want.Len(); id++ {
				if pt.Value(id) != want.Value(id) {
					t.Fatalf("%s row %d: %v, want %v", want.Name, id, pt.Value(id), want.Value(id))
				}
			}
		}
	}
	for typ, want := range d.Edges {
		et := got.Edges[typ]
		if et == nil || et.Len() != want.Len() {
			t.Fatalf("edge table %s missing or wrong length", typ)
		}
		for i := range want.Tail {
			if et.Tail[i] != want.Tail[i] || et.Head[i] != want.Head[i] {
				t.Fatalf("edge %s row %d differs", typ, i)
			}
		}
	}
}

// TestEngineExportReport: Engine.Export must fold the export into the
// run report — end-to-end wall, per-file stats, and an export hop
// terminating the critical path.
func TestEngineExportReport(t *testing.T) {
	e := New(quickstartSchema())
	e.ExportFormat = table.FormatColumnar
	d, err := e.Generate()
	if err != nil {
		t.Fatal(err)
	}
	planPath := len(e.Report().CriticalPath)
	if err := e.Export(d, filepath.Join(t.TempDir(), "out")); err != nil {
		t.Fatal(err)
	}
	rep := e.Report()
	if rep.ExportTotal <= 0 {
		t.Fatal("export wall time not recorded")
	}
	if len(rep.ExportFiles) == 0 {
		t.Fatal("no per-file export stats")
	}
	for _, f := range rep.ExportFiles {
		if f.Bytes <= 0 || f.Duration < 0 {
			t.Errorf("file stat %+v malformed", f)
		}
		if filepath.Ext(f.Name) != table.ColumnarExt {
			t.Errorf("file %s does not use the configured format", f.Name)
		}
	}
	if rep.EndToEnd != rep.Total+rep.ExportTotal {
		t.Errorf("EndToEnd = %v, want %v", rep.EndToEnd, rep.Total+rep.ExportTotal)
	}
	if len(rep.CriticalPath) != planPath+1 {
		t.Fatalf("critical path has %d steps, want %d", len(rep.CriticalPath), planPath+1)
	}
	last := rep.CriticalPath[len(rep.CriticalPath)-1]
	if len(last) < 8 || last[:7] != "export:" {
		t.Errorf("critical path does not end in an export hop: %q", last)
	}
	if s := rep.String(); !strings.Contains(s, "end-to-end") || !strings.Contains(s, "export:") {
		t.Errorf("report rendering missing export section:\n%s", s)
	}
}

// TestRunReportCriticalPath: every Generate must record one timing per
// task and a critical path that respects the dependency structure
// (property → structure → match chains for the quickstart schema).
func TestRunReportCriticalPath(t *testing.T) {
	e := New(quickstartSchema())
	e.Workers = 2
	if e.Report() != nil {
		t.Fatal("report non-nil before first Generate")
	}
	if _, err := e.Generate(); err != nil {
		t.Fatal(err)
	}
	rep := e.Report()
	if rep == nil {
		t.Fatal("no report after Generate")
	}
	plan, err := depgraph.Analyze(e.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Timings) != len(plan.Tasks) {
		t.Fatalf("%d timings for %d tasks", len(rep.Timings), len(plan.Tasks))
	}
	if len(rep.CriticalPath) == 0 || rep.CriticalPathTime <= 0 {
		t.Fatalf("empty critical path: %+v", rep.CriticalPath)
	}
	if rep.CriticalPathTime > rep.Total {
		// The path is a lower bound on wall time; it can never exceed
		// the measured total.
		t.Fatalf("critical path %v exceeds total %v", rep.CriticalPathTime, rep.Total)
	}
	// The critical path must be a real dependency chain: consecutive
	// entries linked by plan edges.
	idx := map[string]int{}
	for i, task := range plan.Tasks {
		idx[task.ID()] = i
	}
	for i := 1; i < len(rep.CriticalPath); i++ {
		cur, ok := idx[rep.CriticalPath[i]]
		if !ok {
			t.Fatalf("unknown task %q on critical path", rep.CriticalPath[i])
		}
		prev := idx[rep.CriticalPath[i-1]]
		linked := false
		for _, d := range plan.Deps[cur] {
			if d == prev {
				linked = true
				break
			}
		}
		if !linked {
			t.Fatalf("critical path step %q -> %q is not a plan dependency",
				rep.CriticalPath[i-1], rep.CriticalPath[i])
		}
	}
	// Critical flags in Timings must match the path.
	critical := 0
	for _, tt := range rep.Timings {
		if tt.Critical {
			critical++
		}
	}
	if critical != len(rep.CriticalPath) {
		t.Fatalf("%d critical-flagged tasks, path has %d", critical, len(rep.CriticalPath))
	}
	if s := rep.String(); len(s) == 0 {
		t.Fatal("empty report rendering")
	}
}
