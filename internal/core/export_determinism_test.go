package core

import (
	"crypto/sha256"
	"encoding/hex"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"datasynth/internal/depgraph"
)

// hashDir returns the SHA-256 of every regular file in dir, keyed by
// file name.
func hashDir(t *testing.T, dir string) map[string]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	hashes := map[string]string{}
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		f, err := os.Open(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		h := sha256.New()
		if _, err := io.Copy(h, f); err != nil {
			f.Close()
			t.Fatal(err)
		}
		f.Close()
		hashes[ent.Name()] = hex.EncodeToString(h.Sum(nil))
	}
	if len(hashes) == 0 {
		t.Fatalf("no files exported into %s", dir)
	}
	return hashes
}

// exportHashes generates the schema at the given worker count and
// match window, exports it as CSV and JSONL, and returns the per-file
// SHA-256 set.
func exportHashes(t *testing.T, workers, window int) map[string]string {
	t.Helper()
	e := New(quickstartSchema())
	e.Workers = workers
	e.MatchWindow = window
	d, err := e.Generate()
	if err != nil {
		t.Fatalf("workers=%d window=%d: %v", workers, window, err)
	}
	dir := t.TempDir()
	csvDir := filepath.Join(dir, "csv")
	jsonlDir := filepath.Join(dir, "jsonl")
	if err := d.WriteDir(csvDir); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteDirJSONL(jsonlDir); err != nil {
		t.Fatal(err)
	}
	hashes := map[string]string{}
	for name, h := range hashDir(t, csvDir) {
		hashes["csv/"+name] = h
	}
	for name, h := range hashDir(t, jsonlDir) {
		hashes["jsonl/"+name] = h
	}
	return hashes
}

// TestExportedDatasetGoldenDeterminism is the end-to-end determinism
// contract: a Figure-3-style schema (LFR structure + SBM-Part match +
// parallel property fill) must export byte-identical node, edge and
// property files — hash-verified on disk, not just in memory — at
// every worker count and every SBM-Part window size.
func TestExportedDatasetGoldenDeterminism(t *testing.T) {
	ref := exportHashes(t, 1, -1) // sequential plan, serial stream
	if len(ref) != 4 {
		t.Fatalf("expected 4 exported files (csv+jsonl × nodes+edges), got %d", len(ref))
	}
	configs := []struct{ workers, window int }{
		{1, 64},
		{1, 1 << 20}, // whole stream in one window
		{runtime.NumCPU(), -1},
		{runtime.NumCPU(), 0}, // auto window
		{runtime.NumCPU(), 64},
		{4, 512},
	}
	for _, cfg := range configs {
		got := exportHashes(t, cfg.workers, cfg.window)
		if len(got) != len(ref) {
			t.Fatalf("workers=%d window=%d: %d files, want %d", cfg.workers, cfg.window, len(got), len(ref))
		}
		for name, h := range ref {
			if got[name] != h {
				t.Errorf("workers=%d window=%d: %s hash %s, want %s",
					cfg.workers, cfg.window, name, got[name], h)
			}
		}
	}
}

// TestRunReportCriticalPath: every Generate must record one timing per
// task and a critical path that respects the dependency structure
// (property → structure → match chains for the quickstart schema).
func TestRunReportCriticalPath(t *testing.T) {
	e := New(quickstartSchema())
	e.Workers = 2
	if e.Report() != nil {
		t.Fatal("report non-nil before first Generate")
	}
	if _, err := e.Generate(); err != nil {
		t.Fatal(err)
	}
	rep := e.Report()
	if rep == nil {
		t.Fatal("no report after Generate")
	}
	plan, err := depgraph.Analyze(e.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Timings) != len(plan.Tasks) {
		t.Fatalf("%d timings for %d tasks", len(rep.Timings), len(plan.Tasks))
	}
	if len(rep.CriticalPath) == 0 || rep.CriticalPathTime <= 0 {
		t.Fatalf("empty critical path: %+v", rep.CriticalPath)
	}
	if rep.CriticalPathTime > rep.Total {
		// The path is a lower bound on wall time; it can never exceed
		// the measured total.
		t.Fatalf("critical path %v exceeds total %v", rep.CriticalPathTime, rep.Total)
	}
	// The critical path must be a real dependency chain: consecutive
	// entries linked by plan edges.
	idx := map[string]int{}
	for i, task := range plan.Tasks {
		idx[task.ID()] = i
	}
	for i := 1; i < len(rep.CriticalPath); i++ {
		cur, ok := idx[rep.CriticalPath[i]]
		if !ok {
			t.Fatalf("unknown task %q on critical path", rep.CriticalPath[i])
		}
		prev := idx[rep.CriticalPath[i-1]]
		linked := false
		for _, d := range plan.Deps[cur] {
			if d == prev {
				linked = true
				break
			}
		}
		if !linked {
			t.Fatalf("critical path step %q -> %q is not a plan dependency",
				rep.CriticalPath[i-1], rep.CriticalPath[i])
		}
	}
	// Critical flags in Timings must match the path.
	critical := 0
	for _, tt := range rep.Timings {
		if tt.Critical {
			critical++
		}
	}
	if critical != len(rep.CriticalPath) {
		t.Fatalf("%d critical-flagged tasks, path has %d", critical, len(rep.CriticalPath))
	}
	if s := rep.String(); len(s) == 0 {
		t.Fatal("empty report rendering")
	}
}
