package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"datasynth/internal/depgraph"
	"datasynth/internal/dsl"
	"datasynth/internal/schema"
)

// Canonical schema identity. The generation service caches exported
// datasets content-addressably, which is sound only because the engine
// guarantees a dataset is a pure function of (schema, seed) at any
// worker count, window size, or scheduling order. The cache key
// therefore needs exactly two ingredients beyond the export format:
//
//   - A canonical rendering of the schema. dsl.Print is the canonical
//     printer: it sorts generator parameters, normalises spelling, and
//     round-trips through Parse, so two schema texts that differ only
//     in whitespace, parameter order, or comments hash identically —
//     and two schemas that generate differently never collide (the
//     seed is part of the printed text).
//   - SchemaVersion, bumped whenever the generation semantics change
//     (new RNG derivation scheme, changed generator behaviour, new
//     export encoding). Without it a cache populated by an older build
//     could serve bytes a newer build would not reproduce.

// SchemaVersion identifies the generation semantics of this build.
// Any change that alters the bytes generated for a fixed (schema,
// seed) — RNG stream derivation, generator algorithms, export
// encodings — must bump it, invalidating every cached dataset.
//
// History: v1 was the PR-1 scheme; v2 re-keyed LFR intra-community
// wiring onto per-community RNG streams (PR 2); v3 re-keyed RMAT onto
// sharded per-(round,shard) streams with radix dedup (PR 6); v4 made
// Barabási–Albert emit each node's targets in sorted order instead of
// map iteration order, changing BA edge bytes (PR 9).
const SchemaVersion = 4

// ValidateSchema runs the full static checking pipeline a schema must
// pass before generation: referential validation (schema.Validate) and
// the dependency analysis (cycle detection, count-source resolution).
// It is what `datasynth -validate` and the generation service run at
// admission — a schema that passes here can only fail at generation
// time for resource reasons, not structural ones.
func ValidateSchema(s *schema.Schema) error {
	if _, err := depgraph.Analyze(s); err != nil {
		return err
	}
	return nil
}

// CanonicalSchema returns the canonical DSL rendering of the schema —
// the exact byte string hashed by CanonicalHash. Parse(CanonicalSchema(s))
// is equivalent to s.
func CanonicalSchema(s *schema.Schema) string {
	return dsl.Print(s)
}

// CanonicalHash returns the hex SHA-256 of the schema's canonical
// identity: the SchemaVersion header followed by the canonical DSL
// text (which embeds the seed). Schemas with equal hashes generate
// byte-identical datasets under the engine's determinism contract;
// schemas differing in any generation-relevant way hash differently.
func CanonicalHash(s *schema.Schema) string {
	h := sha256.New()
	fmt.Fprintf(h, "datasynth-schema-v%d\n", SchemaVersion)
	h.Write([]byte(CanonicalSchema(s)))
	return hex.EncodeToString(h.Sum(nil))
}
