package core

import (
	"sort"

	"datasynth/internal/depgraph"
	"datasynth/internal/schema"
	"datasynth/internal/sgen"
)

// EstimatedSizes derives best-effort node and edge totals for a schema
// without generating anything, resolving the same count-inference
// chains the engine executes: explicit counts, tails sized from an
// explicit edge count via getNumNodes, and 1→* heads sized from the
// feeding edge's estimated edge count. Inferred edge counts come from
// the generators' EdgeCountEstimator closed forms (RMAT's edge factor,
// LFR's average degree, a 1→* generator's mean out-degree, …).
//
// The result is a lower bound: a contribution that cannot be estimated
// — an unresolvable chain, a generator without an estimator — counts
// as zero rather than failing the whole estimate. The generation
// service uses this at admission to reject oversized jobs before any
// work; the post-generation dataset check stays authoritative.
func EstimatedSizes(s *schema.Schema) (nodes, edges int64, err error) {
	e := New(s)
	plan, err := depgraph.Analyze(s)
	if err != nil {
		return 0, 0, err
	}
	resolved := map[string]int64{}

	// estimateEdge sizes one edge type; ok is false while the tail count
	// is unresolved or the generator offers no estimate.
	estimateEdge := func(edge *schema.EdgeType) (int64, bool) {
		if edge.Count > 0 {
			return edge.Count, true
		}
		nTail, ok := resolved[edge.Tail]
		if !ok {
			return 0, false
		}
		seed := e.structureSeed(edge.Name)
		var est sgen.EdgeCountEstimator
		if edge.Tail == edge.Head && e.SGens.HasMono(edge.Structure.Name) {
			g, err := e.SGens.BuildMono(edge.Structure.Name, edge.Structure.Params, seed)
			if err != nil {
				return 0, false
			}
			est, _ = g.(sgen.EdgeCountEstimator)
		} else {
			g, err := e.SGens.BuildBipartite(edge.Structure.Name, edge.Structure.Params, seed)
			if err != nil {
				return 0, false
			}
			est, _ = g.(sgen.EdgeCountEstimator)
		}
		if est == nil {
			return 0, false
		}
		if m := est.EstimatedEdges(nTail); m > 0 {
			return m, true
		}
		return 0, false
	}

	// Count inference is a DAG (depgraph rejects cycles), so iterating
	// to a fixpoint resolves every chain that can be resolved: each pass
	// settles at least one more link or nothing at all. The fixpoint
	// visits counts in sorted name order so the estimate — and any
	// estimator state it builds — is independent of map iteration order.
	countNames := make([]string, 0, len(plan.Counts))
	for name := range plan.Counts {
		countNames = append(countNames, name)
	}
	sort.Strings(countNames)
	for changed := true; changed; {
		changed = false
		for _, name := range countNames {
			src := plan.Counts[name]
			if _, done := resolved[name]; done {
				continue
			}
			switch src.Kind {
			case depgraph.SourceExplicit:
				resolved[name] = s.NodeType(name).Count
				changed = true
			case depgraph.SourceEdgeCount:
				if n, err := e.tailCountFromEdgeCount(s.EdgeType(src.Edge)); err == nil && n > 0 {
					resolved[name] = n
					changed = true
				}
			case depgraph.SourceEdgeHead:
				// 1→* heads are dense [0, m): the head count is the edge
				// count of the feeding edge.
				if m, ok := estimateEdge(s.EdgeType(src.Edge)); ok {
					resolved[name] = m
					changed = true
				}
			}
		}
	}
	for i := range s.Nodes {
		nodes += resolved[s.Nodes[i].Name]
	}
	for i := range s.Edges {
		if m, ok := estimateEdge(&s.Edges[i]); ok {
			edges += m
		}
	}
	return nodes, edges, nil
}
