package core

import (
	"testing"

	"datasynth/internal/dsl"
)

// TestEstimatedSizes: the admission estimate resolves counts the schema
// never declares — the Message count through the 1→* creates edge, both
// edge counts through the generators' closed forms — and lands within a
// factor of two of what generation actually produces.
func TestEstimatedSizes(t *testing.T) {
	s, err := dsl.Parse(paperDSL)
	if err != nil {
		t.Fatal(err)
	}
	estNodes, estEdges, err := EstimatedSizes(s)
	if err != nil {
		t.Fatal(err)
	}
	if estNodes <= 2000 {
		t.Errorf("estimated nodes = %d, want > 2000 (inferred Message count missing)", estNodes)
	}
	if estEdges <= 0 {
		t.Fatalf("estimated edges = %d, want > 0 (no edge count is declared)", estEdges)
	}
	d, err := New(s).Generate()
	if err != nil {
		t.Fatal(err)
	}
	var nodes, edges int64
	for _, n := range d.NodeCounts {
		nodes += n
	}
	for _, et := range d.Edges {
		edges += et.Len()
	}
	if estNodes > 2*nodes || nodes > 2*estNodes {
		t.Errorf("estimated %d nodes, generated %d — off by more than 2x", estNodes, nodes)
	}
	if estEdges > 2*edges || edges > 2*estEdges {
		t.Errorf("estimated %d edges, generated %d — off by more than 2x", estEdges, edges)
	}
}
