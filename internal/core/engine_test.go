package core

import (
	"math"
	"strings"
	"testing"

	"datasynth/internal/dsl"
	"datasynth/internal/graph"
	"datasynth/internal/schema"
	"datasynth/internal/stats"
	"datasynth/internal/table"
)

// paperDSL is the Figure 1 running example, small enough for tests.
const paperDSL = `
graph social {
  seed = 42
  node Person {
    count = 2000
    property country : string = categorical(dict="countries")
    property sex     : string = categorical(values="M|F")
    property name    : string = dictionary() given (country, sex)
    property interest : string = zipf(dict="topics", theta="1.1")
    property creationDate : date = uniform-date(from="2010-01-01", to="2020-01-01")
  }
  node Message {
    property topic : string = categorical(dict="topics")
    property text  : string = text(min=3, max=8)
  }
  edge knows : Person *-* Person {
    structure = lfr(avgDegree=10, maxDegree=30)
    correlate country homophily 0.8
    property creationDate : date = max-endpoint-date(maxDays=100) given (tail.creationDate, head.creationDate)
  }
  edge creates : Person 1-* Message {
    structure = powerlaw-out(min=1, max=10, gamma=2.0)
    property creationDate : date = uniform-date(from="2010-01-01", to="2020-01-01")
  }
}
`

func generatePaper(t *testing.T) *table.Dataset {
	t.Helper()
	s, err := dsl.Parse(paperDSL)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(s).Generate()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGeneratePaperExample(t *testing.T) {
	d := generatePaper(t)
	if d.NodeCounts["Person"] != 2000 {
		t.Errorf("Person count = %d", d.NodeCounts["Person"])
	}
	// Message count inferred from creates size.
	creates := d.Edges["creates"]
	if d.NodeCounts["Message"] != creates.Len() {
		t.Errorf("Message count %d != creates size %d", d.NodeCounts["Message"], creates.Len())
	}
	if d.NodeCounts["Message"] < 2000 {
		t.Errorf("Message count %d implausibly small", d.NodeCounts["Message"])
	}
	// All Person property tables have 2000 rows.
	for _, pt := range d.NodeProps["Person"] {
		if pt.Len() != 2000 {
			t.Errorf("%s has %d rows", pt.Name, pt.Len())
		}
	}
	// knows endpoints are valid Person ids.
	if err := d.Edges["knows"].Validate(2000, 2000); err != nil {
		t.Error(err)
	}
	// creates endpoints: Person tails, Message heads.
	if err := creates.Validate(2000, d.NodeCounts["Message"]); err != nil {
		t.Error(err)
	}
}

func TestEngineDeterministic(t *testing.T) {
	a := generatePaper(t)
	b := generatePaper(t)
	if a.NodeCounts["Message"] != b.NodeCounts["Message"] {
		t.Fatal("message counts differ between runs")
	}
	ka, kb := a.Edges["knows"], b.Edges["knows"]
	if ka.Len() != kb.Len() {
		t.Fatal("knows sizes differ")
	}
	for i := int64(0); i < ka.Len(); i++ {
		if ka.Tail[i] != kb.Tail[i] || ka.Head[i] != kb.Head[i] {
			t.Fatalf("knows edge %d differs", i)
		}
	}
	na, nb := a.NodeProps["Person"][2], b.NodeProps["Person"][2] // name
	for i := int64(0); i < na.Len(); i++ {
		if na.String(i) != nb.String(i) {
			t.Fatalf("Person.name row %d differs", i)
		}
	}
}

func TestNameCorrelatedWithCountryAndSex(t *testing.T) {
	d := generatePaper(t)
	props := d.NodeProps["Person"]
	country, sex, name := props[0], props[1], props[2]
	// Spot-check: every name must belong to the (country, sex) pool.
	for id := int64(0); id < 200; id++ {
		pool := pgenNamesFor(country.String(id), sex.String(id))
		found := false
		for _, n := range pool {
			if n == name.String(id) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("row %d: name %q not in pool for (%s,%s)", id, name.String(id), country.String(id), sex.String(id))
		}
	}
}

// pgenNamesFor avoids an import cycle in test helpers.
func pgenNamesFor(country, sex string) []string {
	return namesForTest(country, sex)
}

func TestKnowsDateExceedsEndpointDates(t *testing.T) {
	d := generatePaper(t)
	knows := d.Edges["knows"]
	personDate := d.NodeProps["Person"][4]
	knowsDate := d.EdgeProps["knows"][0]
	for e := int64(0); e < knows.Len(); e++ {
		td := personDate.Int(knows.Tail[e])
		hd := personDate.Int(knows.Head[e])
		kd := knowsDate.Int(e)
		if kd <= td || kd <= hd {
			t.Fatalf("edge %d: knows date %d not after endpoints (%d, %d)", e, kd, td, hd)
		}
	}
}

func TestHomophilyIsRealised(t *testing.T) {
	d := generatePaper(t)
	knows := d.Edges["knows"]
	country := d.NodeProps["Person"][0]
	same, total := 0.0, 0.0
	for e := int64(0); e < knows.Len(); e++ {
		if country.String(knows.Tail[e]) == country.String(knows.Head[e]) {
			same++
		}
		total++
	}
	frac := same / total
	// Target homophily is 0.8, but with 40 country values many groups
	// are smaller than an LFR community, so the streaming matcher cannot
	// realise it fully. It must still be a large multiple of the
	// uncorrelated baseline (Σ p_c² ≈ 0.07 for the country
	// distribution); we require > 0.25 (≈ 4×).
	if frac < 0.25 {
		t.Errorf("same-country edge fraction = %v, want > 0.25", frac)
	}
}

func TestUncorrelatedBaselineLower(t *testing.T) {
	// Drop the correlation: same-country fraction must fall near the
	// independence baseline.
	src := strings.Replace(paperDSL, "correlate country homophily 0.8\n", "", 1)
	s, err := dsl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(s).Generate()
	if err != nil {
		t.Fatal(err)
	}
	knows := d.Edges["knows"]
	country := d.NodeProps["Person"][0]
	same, total := 0.0, 0.0
	for e := int64(0); e < knows.Len(); e++ {
		if country.String(knows.Tail[e]) == country.String(knows.Head[e]) {
			same++
		}
		total++
	}
	if frac := same / total; frac > 0.2 {
		t.Errorf("uncorrelated same-country fraction = %v, want < 0.2", frac)
	}
}

func TestScaleByEdgeCount(t *testing.T) {
	// The paper's alternative sizing: specify the number of creates
	// edges; Person is sized via getNumNodes and Message from the table.
	src := `
graph g {
  seed = 1
  node Person {
    property age : int = uniform-int(lo=18, hi=90)
  }
  node Message {
    property topic : string = categorical(dict="topics")
  }
  edge creates : Person 1-* Message {
    count = 30000
    structure = powerlaw-out(min=1, max=10, gamma=2.0)
  }
}
`
	s, err := dsl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(s).Generate()
	if err != nil {
		t.Fatal(err)
	}
	m := d.Edges["creates"].Len()
	if ratio := float64(m) / 30000; ratio < 0.5 || ratio > 2 {
		t.Errorf("creates edges = %d, want ~30000", m)
	}
	if d.NodeCounts["Person"] <= 0 || d.NodeCounts["Message"] != m {
		t.Errorf("counts = %v", d.NodeCounts)
	}
}

func TestBipartiteCorrelationEndToEnd(t *testing.T) {
	src := `
graph shop {
  seed = 3
  node User {
    count = 500
    property segment : string = categorical(values="casual|power")
  }
  node Product {
    count = 200
    property category : string = categorical(values="games|tools")
  }
  edge buys : User *-* Product {
    structure = zipf-attachment(min=2, max=8, gamma=2.0, theta=1.0)
    correlate tail.segment with head.category homophily 0.9
  }
}
`
	s, err := dsl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(s).Generate()
	if err != nil {
		t.Fatal(err)
	}
	buys := d.Edges["buys"]
	if err := buys.Validate(500, 200); err != nil {
		t.Fatal(err)
	}
	seg := d.NodeProps["User"][0]
	cat := d.NodeProps["Product"][0]
	// Aligned pairs (index-matched values) must dominate.
	aligned, total := 0.0, 0.0
	for e := int64(0); e < buys.Len(); e++ {
		sVal := seg.String(buys.Tail[e])
		cVal := cat.String(buys.Head[e])
		if (sVal == "casual") == (cVal == "games") {
			aligned++
		}
		total++
	}
	if frac := aligned / total; frac < 0.6 {
		t.Errorf("aligned fraction = %v, want > 0.6 (homophily 0.9)", frac)
	}
}

func TestExplicitMatrixCorrelation(t *testing.T) {
	// Programmatic schema with a full P(X,Y) matrix.
	s := &schema.Schema{
		Name: "m",
		Seed: 5,
		Nodes: []schema.NodeType{{
			Name:  "N",
			Count: 600,
			Properties: []schema.Property{
				{Name: "c", Kind: table.KindString, Generator: schema.GeneratorSpec{Name: "categorical", Params: map[string]string{"values": "a|b"}}},
			},
		}},
		Edges: []schema.EdgeType{{
			Name: "e", Tail: "N", Head: "N",
			Cardinality: schema.ManyToMany,
			Structure:   schema.GeneratorSpec{Name: "lfr", Params: map[string]string{"avgDegree": "8", "maxDegree": "20"}},
			// Consistent with ~50/50 value frequencies: strong diagonal.
			Correlation: &schema.Correlation{Property: "c", Matrix: [][]float64{{0.45, 0.1}, {0, 0.45}}},
		}},
	}
	d, err := New(s).Generate()
	if err != nil {
		t.Fatal(err)
	}
	et := d.Edges["e"]
	c := d.NodeProps["N"][0]
	labels := make([]int64, 600)
	for i := int64(0); i < 600; i++ {
		if c.String(i) == "b" {
			labels[i] = 1
		}
	}
	obs, err := stats.EmpiricalJoint(et, labels, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The diagonal must dominate (target 0.9 of mass; random gives 0.5).
	if diag := obs.At(0, 0) + obs.At(1, 1); diag < 0.65 {
		t.Errorf("diagonal mass = %v, want > 0.65", diag)
	}
}

func TestStructuralShapeSurvivesMatching(t *testing.T) {
	// Matching permutes ids; degree distribution must be untouched.
	d := generatePaper(t)
	knows := d.Edges["knows"]
	g, err := graph.FromEdgeTable(knows, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if avg := g.AvgDegree(); math.Abs(avg-10) > 4 {
		t.Errorf("knows avg degree = %v, want ~10", avg)
	}
	if md := g.MaxDegree(); md > 30+5 {
		t.Errorf("knows max degree = %d, want <= ~30", md)
	}
}

func TestEngineErrorPaths(t *testing.T) {
	// Unknown property generator.
	s := &schema.Schema{
		Name: "bad", Seed: 1,
		Nodes: []schema.NodeType{{
			Name: "N", Count: 10,
			Properties: []schema.Property{{Name: "p", Kind: table.KindInt, Generator: schema.GeneratorSpec{Name: "nope"}}},
		}},
	}
	if _, err := New(s).Generate(); err == nil || !strings.Contains(err.Error(), "unknown generator") {
		t.Errorf("err = %v, want unknown generator", err)
	}
	// Kind mismatch.
	s2 := &schema.Schema{
		Name: "bad2", Seed: 1,
		Nodes: []schema.NodeType{{
			Name: "N", Count: 10,
			Properties: []schema.Property{{Name: "p", Kind: table.KindInt, Generator: schema.GeneratorSpec{Name: "categorical", Params: map[string]string{"values": "x"}}}},
		}},
	}
	if _, err := New(s2).Generate(); err == nil || !strings.Contains(err.Error(), "declared") {
		t.Errorf("err = %v, want kind mismatch", err)
	}
	// Unknown structure generator.
	s3 := &schema.Schema{
		Name: "bad3", Seed: 1,
		Nodes: []schema.NodeType{{Name: "N", Count: 10}},
		Edges: []schema.EdgeType{{Name: "e", Tail: "N", Head: "N", Cardinality: schema.ManyToMany,
			Structure: schema.GeneratorSpec{Name: "nope"}}},
	}
	if _, err := New(s3).Generate(); err == nil {
		t.Error("unknown SG should fail")
	}
}

func TestCorrelatedNonStringPropertyRejected(t *testing.T) {
	s := &schema.Schema{
		Name: "bad", Seed: 1,
		Nodes: []schema.NodeType{{
			Name: "N", Count: 50,
			Properties: []schema.Property{{Name: "age", Kind: table.KindInt, Generator: schema.GeneratorSpec{Name: "uniform-int"}}},
		}},
		Edges: []schema.EdgeType{{
			Name: "e", Tail: "N", Head: "N", Cardinality: schema.ManyToMany,
			Structure:   schema.GeneratorSpec{Name: "erdos-renyi", Params: map[string]string{"edgesPerNode": "3"}},
			Correlation: &schema.Correlation{Property: "age", Homophily: 0.5},
		}},
	}
	if _, err := New(s).Generate(); err == nil || !strings.Contains(err.Error(), "string property") {
		t.Errorf("err = %v, want string-property requirement", err)
	}
}

func TestOneToOneEdge(t *testing.T) {
	src := `
graph g {
  seed = 2
  node Account { count = 300 }
  node Profile {
    count = 300
    property bio : string = text(min=1, max=3)
  }
  edge owns : Account 1-1 Profile {
    structure = one-to-one()
  }
}
`
	s, err := dsl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(s).Generate()
	if err != nil {
		t.Fatal(err)
	}
	owns := d.Edges["owns"]
	if owns.Len() != 300 {
		t.Fatalf("owns edges = %d", owns.Len())
	}
	seenT, seenH := map[int64]bool{}, map[int64]bool{}
	for i := int64(0); i < 300; i++ {
		if seenT[owns.Tail[i]] || seenH[owns.Head[i]] {
			t.Fatal("1-1 edge reuses an endpoint")
		}
		seenT[owns.Tail[i]] = true
		seenH[owns.Head[i]] = true
	}
}

func TestDatasetExport(t *testing.T) {
	d := generatePaper(t)
	dir := t.TempDir()
	if err := d.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
}
