package core

import (
	"fmt"
	"strings"
	"testing"

	"datasynth/internal/dsl"
	"datasynth/internal/graph"
	"datasynth/internal/pgen"
	"datasynth/internal/schema"
	"datasynth/internal/table"
	"datasynth/internal/xrand"
)

// TestAllStructureGeneratorsViaDSL drives every monopartite SG through
// the full engine pipeline.
func TestAllStructureGeneratorsViaDSL(t *testing.T) {
	for _, sg := range []string{
		"rmat(edgeFactor=4)",
		"lfr(avgDegree=8, maxDegree=20)",
		"bter(dmin=2, dmax=20)",
		"darwini(dmin=2, dmax=20)",
		"erdos-renyi(edgesPerNode=4)",
		"barabasi-albert(m=3)",
		"watts-strogatz(k=3, beta=0.1)",
		"cascade(minSize=1, maxSize=20)",
	} {
		sg := sg
		name := sg[:strings.Index(sg, "(")]
		t.Run(name, func(t *testing.T) {
			card := "*-*"
			if name == "cascade" {
				card = "1-*"
			}
			src := fmt.Sprintf(`
graph g {
  seed = 3
  node N {
    count = 600
    property c : string = categorical(values="x|y|z")
  }
  edge e : N %s N { structure = %s }
}
`, card, sg)
			s, err := dsl.Parse(src)
			if err != nil {
				t.Fatal(err)
			}
			d, err := New(s).Generate()
			if err != nil {
				t.Fatal(err)
			}
			et := d.Edges["e"]
			if et.Len() == 0 {
				t.Fatal("no edges")
			}
			if err := et.Validate(600, 600); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMultiValuedPropertyEndToEnd: the future-work multi-valued
// property flows through the engine as a regular string property.
func TestMultiValuedPropertyEndToEnd(t *testing.T) {
	src := `
graph g {
  seed = 5
  node Person {
    count = 300
    property interests : string = multi-categorical(dict="topics", min=2, max=4)
  }
  edge knows : Person *-* Person { structure = erdos-renyi(edgesPerNode=3) }
}
`
	s, err := dsl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(s).Generate()
	if err != nil {
		t.Fatal(err)
	}
	interests := d.NodeProps["Person"][0]
	for id := int64(0); id < 300; id++ {
		parts := strings.Split(interests.String(id), ";")
		if len(parts) < 2 || len(parts) > 4 {
			t.Fatalf("row %d has %d interests", id, len(parts))
		}
	}
}

// TestWorkerCountInvariance: the dataset must be identical regardless
// of parallelism — the in-place generation guarantee.
func TestWorkerCountInvariance(t *testing.T) {
	s, err := dsl.Parse(paperDSL)
	if err != nil {
		t.Fatal(err)
	}
	gen := func(workers int) *table.Dataset {
		e := New(s)
		e.Workers = workers
		d, err := e.Generate()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	a, b := gen(1), gen(16)
	na, nb := a.NodeProps["Person"][2], b.NodeProps["Person"][2]
	for i := int64(0); i < na.Len(); i++ {
		if na.String(i) != nb.String(i) {
			t.Fatalf("Person.name row %d differs across worker counts", i)
		}
	}
	ka, kb := a.EdgeProps["knows"][0], b.EdgeProps["knows"][0]
	for i := int64(0); i < ka.Len(); i++ {
		if ka.Int(i) != kb.Int(i) {
			t.Fatalf("knows.creationDate row %d differs across worker counts", i)
		}
	}
}

// failingGen errors on a specific row — failure injection for the
// parallel fill path.
type failingGen struct{ failAt int64 }

func (f *failingGen) Name() string          { return "failing" }
func (f *failingGen) Kind() table.ValueKind { return table.KindInt }
func (f *failingGen) Arity() int            { return 0 }
func (f *failingGen) Run(id int64, s xrand.Stream, deps []pgen.Value) (pgen.Value, error) {
	if id == f.failAt {
		return pgen.Value{}, fmt.Errorf("injected failure at %d", id)
	}
	return pgen.IntValue(id), nil
}

func TestParallelFillPropagatesErrors(t *testing.T) {
	s := &schema.Schema{
		Name: "f", Seed: 1,
		Nodes: []schema.NodeType{{
			Name: "N", Count: 50000,
			Properties: []schema.Property{{Name: "p", Kind: table.KindInt, Generator: schema.GeneratorSpec{Name: "failing"}}},
		}},
	}
	e := New(s)
	if err := e.PGens.Register("failing", func(map[string]string) (pgen.Generator, error) {
		return &failingGen{failAt: 43210}, nil
	}); err != nil {
		t.Fatal(err)
	}
	_, err := e.Generate()
	if err == nil || !strings.Contains(err.Error(), "injected failure") {
		t.Fatalf("err = %v, want injected failure", err)
	}
}

// TestSeedChangesOutput: different schema seeds must change everything.
func TestSeedChangesOutput(t *testing.T) {
	src := strings.Replace(paperDSL, "seed = 42", "seed = 43", 1)
	s1, err := dsl.Parse(paperDSL)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := dsl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := New(s1).Generate()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := New(s2).Generate()
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := d1.NodeProps["Person"][0], d2.NodeProps["Person"][0]
	same := 0
	for i := int64(0); i < 2000; i++ {
		if c1.String(i) == c2.String(i) {
			same++
		}
	}
	// Countries follow the same skewed distribution so collisions are
	// expected, but full agreement would mean the seed is ignored.
	if same > 1800 {
		t.Errorf("different seeds agree on %d/2000 countries", same)
	}
}

// TestUncorrelatedDegreeBiasAbsent: random matching must not correlate
// instance id with degree.
func TestUncorrelatedDegreeBiasAbsent(t *testing.T) {
	src := `
graph g {
  seed = 9
  node N { count = 2000 property x : int = uniform-int() }
  edge e : N *-* N { structure = barabasi-albert(m=4) }
}
`
	s, err := dsl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(s).Generate()
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdgeTable(d.Edges["e"], 2000)
	if err != nil {
		t.Fatal(err)
	}
	// BA generates hubs among early structure ids; after random
	// matching, the average degree of the first 10% of instance ids must
	// be near the global average.
	var lowIDs, all float64
	for v := int64(0); v < 2000; v++ {
		all += float64(g.Degree(v))
		if v < 200 {
			lowIDs += float64(g.Degree(v))
		}
	}
	ratio := (lowIDs / 200) / (all / 2000)
	if ratio > 1.5 {
		t.Errorf("early ids have %.2fx the average degree: id-degree bias survived matching", ratio)
	}
}

// TestJSONLExportEndToEnd exports a generated dataset as JSONL.
func TestJSONLExportEndToEnd(t *testing.T) {
	d := generatePaper(t)
	if err := d.WriteDirJSONL(t.TempDir()); err != nil {
		t.Fatal(err)
	}
}

// TestEngineLogf exercises the progress logging path.
func TestEngineLogf(t *testing.T) {
	s, err := dsl.Parse(`graph g { seed = 1 node N { count = 10 property p : int = uniform-int() } }`)
	if err != nil {
		t.Fatal(err)
	}
	e := New(s)
	var lines []string
	e.Logf = func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	if _, err := e.Generate(); err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Error("no log lines emitted")
	}
}

// TestMatchingPassesImproveHomophily: the DSL `passes` knob must raise
// realised homophily on the running example.
func TestMatchingPassesImproveHomophily(t *testing.T) {
	measure := func(src string) float64 {
		s, err := dsl.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		d, err := New(s).Generate()
		if err != nil {
			t.Fatal(err)
		}
		knows := d.Edges["knows"]
		country := d.NodeProps["Person"][0]
		same := 0.0
		for e := int64(0); e < knows.Len(); e++ {
			if country.String(knows.Tail[e]) == country.String(knows.Head[e]) {
				same++
			}
		}
		return same / float64(knows.Len())
	}
	base := measure(paperDSL)
	refined := measure(strings.Replace(paperDSL,
		"correlate country homophily 0.8",
		"correlate country homophily 0.8 passes 2", 1))
	if refined <= base {
		t.Errorf("passes=2 homophily %v not above single-pass %v", refined, base)
	}
}
