package core

import "datasynth/internal/pgen"

// namesForTest re-exports the conditional name pools for engine tests.
func namesForTest(country, sex string) []string {
	return pgen.NamesFor(country, sex)
}
