package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"datasynth/internal/depgraph"
	"datasynth/internal/table"
)

// Scheduler observability: every Generate records per-task wall time
// and derives the critical path of the schema — the dependency chain
// whose cumulative duration bounds how fast the plan can possibly run
// at infinite worker count. The report is what drives sharding
// decisions: a task sitting on the critical path is worth
// parallelising internally (windowed SBM-Part, sharded LFR); a task
// off it only costs idle-worker time.

// TaskTiming is one task's measurement within a run.
type TaskTiming struct {
	// ID is the task identifier (depgraph.Task.ID()).
	ID string
	// Kind is the task's pipeline stage.
	Kind depgraph.TaskKind
	// Start is the task's start offset from the beginning of the run.
	Start time.Duration
	// Duration is the task's wall time.
	Duration time.Duration
	// Critical marks tasks on the run's critical path.
	Critical bool
	// Note is a free-form per-task annotation (match tasks report their
	// SBM-Part per-pass breakdown here, so a refined match shows where
	// its critical-path time goes).
	Note string
}

// RunReport summarises one Generate execution, plus the export that
// followed it when the engine's Export ran.
type RunReport struct {
	// Total is the wall time of the whole plan execution.
	Total time.Duration
	// Timings holds one entry per task, in plan (topological) order.
	Timings []TaskTiming
	// CriticalPath lists the task IDs of the longest-duration
	// dependency chain, in execution order. After Export it gains a
	// final "export:<file>" hop for the slowest exported file.
	CriticalPath []string
	// CriticalPathTime is the summed duration along CriticalPath — the
	// lower bound on plan wall time at unbounded parallelism. Export
	// extends it by the slowest file: files write concurrently, so the
	// largest single file is the export floor.
	CriticalPathTime time.Duration

	// ExportTotal is the export wall time (zero until Engine.Export
	// runs) and ExportFiles the per-file breakdown.
	ExportTotal time.Duration
	ExportFiles []table.FileStat
	// EndToEnd is Total + ExportTotal: the generate→export pipeline
	// wall time the -timings report leads with.
	EndToEnd time.Duration
}

// addExport folds an export pass into the report. Export depends on
// every task, so the critical path extends by the slowest file (the
// floor of the concurrent write phase), and EndToEnd accumulates the
// full export wall.
func (r *RunReport) addExport(files []table.FileStat, wall time.Duration) {
	r.ExportTotal += wall
	r.ExportFiles = append(r.ExportFiles, files...)
	r.EndToEnd = r.Total + r.ExportTotal
	slowest := -1
	for i := range files {
		if slowest == -1 || files[i].Duration > files[slowest].Duration {
			slowest = i
		}
	}
	if slowest >= 0 {
		r.CriticalPath = append(r.CriticalPath, "export:"+files[slowest].Name)
		r.CriticalPathTime += files[slowest].Duration
	}
}

// buildReport computes the critical path from per-task durations.
// plan.Deps[i] only references indices < i (topological order), so a
// single forward scan computes the longest cumulative-duration chain
// ending at every task.
func buildReport(plan *depgraph.Plan, timings []TaskTiming, total time.Duration) *RunReport {
	n := len(plan.Tasks)
	finish := make([]time.Duration, n) // longest chain duration ending at i
	pred := make([]int, n)             // predecessor on that chain
	bestEnd, bestTime := -1, time.Duration(-1)
	for i := 0; i < n; i++ {
		pred[i] = -1
		var start time.Duration
		for _, d := range plan.Deps[i] {
			if finish[d] > start {
				start = finish[d]
				pred[i] = d
			}
		}
		finish[i] = start + timings[i].Duration
		if finish[i] > bestTime {
			bestTime = finish[i]
			bestEnd = i
		}
	}
	var path []string
	for i := bestEnd; i >= 0; i = pred[i] {
		timings[i].Critical = true
		path = append(path, timings[i].ID)
	}
	for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
		path[l], path[r] = path[r], path[l]
	}
	return &RunReport{
		Total:            total,
		Timings:          timings,
		CriticalPath:     path,
		CriticalPathTime: bestTime,
	}
}

// String renders the report as a fixed-width table, slowest tasks
// first, with critical-path tasks marked by '*'.
func (r *RunReport) String() string {
	if r == nil || len(r.Timings) == 0 {
		return "run report: no tasks"
	}
	rows := make([]TaskTiming, len(r.Timings))
	copy(rows, r.Timings)
	sort.SliceStable(rows, func(a, b int) bool { return rows[a].Duration > rows[b].Duration })
	var b strings.Builder
	if r.ExportTotal > 0 {
		fmt.Fprintf(&b, "run: end-to-end %v (plan %v + export %v), critical path %v over %d steps\n",
			r.EndToEnd.Round(time.Microsecond), r.Total.Round(time.Microsecond),
			r.ExportTotal.Round(time.Microsecond), r.CriticalPathTime.Round(time.Microsecond),
			len(r.CriticalPath))
	} else {
		fmt.Fprintf(&b, "run: total %v, critical path %v over %d/%d tasks\n",
			r.Total.Round(time.Microsecond), r.CriticalPathTime.Round(time.Microsecond),
			len(r.CriticalPath), len(r.Timings))
	}
	for _, t := range rows {
		mark := " "
		if t.Critical {
			mark = "*"
		}
		detail := ""
		if t.Note != "" {
			detail = "  [" + t.Note + "]"
		}
		fmt.Fprintf(&b, "%s %-40s %12v  (start +%v)%s\n", mark, t.ID,
			t.Duration.Round(time.Microsecond), t.Start.Round(time.Microsecond), detail)
	}
	for _, f := range r.ExportFiles {
		fmt.Fprintf(&b, "  %-40s %12v  (%d bytes)\n", "export:"+f.Name,
			f.Duration.Round(time.Microsecond), f.Bytes)
	}
	return b.String()
}
