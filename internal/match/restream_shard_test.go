package match

import (
	"math"
	"runtime"
	"testing"
)

// TestRebuildJointMatrixSharded: the sharded per-pass joint-matrix
// rebuild must be bit-identical to the serial scan at every worker
// count — the increments are integral, so float64 summation is exact
// in any shard decomposition.
func TestRebuildJointMatrixSharded(t *testing.T) {
	const n, k = 4000, 16
	g, target, sizes := lfrFixture(t, n, k)

	// A realistic assignment to rebuild from: the first streaming pass.
	part, err := NewSBMPart(target, sizes)
	if err != nil {
		t.Fatal(err)
	}
	part.Seed = 99
	assign, err := part.Partition(g, RandomOrder(g.N(), 5))
	if err != nil {
		t.Fatal(err)
	}

	kk := int64(k)
	ref := make([]float64, k*k)
	rebuildJointMatrix(g, assign, ref, kk, 1, nil)

	// Sanity: the matrix must account for every edge exactly once.
	var diag, offdiag float64
	for a := int64(0); a < kk; a++ {
		for b := int64(0); b < kk; b++ {
			if a == b {
				diag += ref[a*kk+b]
			} else {
				offdiag += ref[a*kk+b]
			}
		}
	}
	if got := diag + offdiag/2; got != float64(g.M()) {
		t.Fatalf("serial rebuild counts %v edges, graph has %d", got, g.M())
	}

	for _, workers := range []int{2, 3, 4, 7, runtime.NumCPU() + 1} {
		scratch := make([][]float64, workers-1)
		for i := range scratch {
			scratch[i] = make([]float64, k*k)
		}
		got := make([]float64, k*k)
		rebuildJointMatrix(g, assign, got, kk, workers, scratch)
		for i := range ref {
			if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("workers=%d: cell %d = %v, serial %v", workers, i, got[i], ref[i])
			}
		}
	}
}

// TestRebuildJointWorkersGate: tiny graphs stay serial (the fan-out
// would cost more than the scan), explicit bounds are honoured, and a
// zero bound resolves to the machine width capped by the shard floor.
func TestRebuildJointWorkersGate(t *testing.T) {
	if got := rebuildJointWorkers(8, 100); got != 1 {
		t.Errorf("100-node graph resolved %d rebuild workers, want 1", got)
	}
	if got := rebuildJointWorkers(3, 4*rebuildMinShard); got != 3 {
		t.Errorf("explicit 3 workers on a large graph resolved %d", got)
	}
	if got := rebuildJointWorkers(8, 2*rebuildMinShard); got != 2 {
		t.Errorf("shard floor did not cap: got %d, want 2", got)
	}
}

// TestMultiPassShardedRebuildByteIdentical: PartitionMultiPass at a
// worker count that engages the sharded rebuild must reproduce the
// fully serial refinement byte for byte. The fixture exceeds the
// shard floor so the rebuild actually shards.
func TestMultiPassShardedRebuildByteIdentical(t *testing.T) {
	const n, k = 2 * rebuildMinShard, 8
	g, target, sizes := lfrFixture(t, n, k)
	ref := multiPassWith(t, g, target, sizes, 2, 1, 1, 1)
	for _, workers := range []int{2, 4} {
		got := multiPassWith(t, g, target, sizes, 2, 1, -1, workers)
		for v := range ref {
			if got[v] != ref[v] {
				t.Fatalf("workers=%d: node %d assigned %d, serial %d", workers, v, got[v], ref[v])
			}
		}
	}
}
