package match

import (
	"fmt"

	"datasynth/internal/graph"
)

// Re-streaming: the paper defers "optimization strategies" to future
// work; the standard one for streaming partitioners (restreamed LDG,
// Nishimura & Ugander KDD'13) is to replay the stream in additional
// passes. Each pass starts with fresh capacity quotas — otherwise every
// group is exactly full after pass one and no node could ever move —
// and scores every node against the *hybrid* assignment: neighbours
// already re-placed this pass use their new group, the rest keep their
// previous-pass group. That gives every node (in particular the early-
// stream nodes that pass one placed almost blind) a full-neighbourhood
// view. Refinement passes iterate hubs first (degree descending): high-
// degree nodes carry the most matrix mass, and re-anchoring them before
// the long tail is what converts the full-information pass into a net
// win — with the original random order, refinement oscillates and
// *degrades* (measured in TestProbe-style sweeps: 0.29 → 0.35 L1
// random vs 0.29 → 0.08 degree-ordered on LFR(5k,16)). Per-pass
// complexity stays O(Σ deg(v) + n·k).
func (p *SBMPart) PartitionMultiPass(g *graph.Graph, order []int64, extra int) ([]int64, error) {
	if extra < 0 {
		return nil, fmt.Errorf("match: negative refinement passes")
	}
	assign, err := p.Partition(g, order)
	if err != nil {
		return nil, err
	}
	k := p.K
	n := g.N()
	kk := int64(k)

	targetP := p.targetMatrix()
	m := float64(g.M())

	prev := make([]int64, n)
	cur := make([]float64, k*k)
	cnt := make([]int64, k)
	touched := make([]int, 0, k)
	refineOrder := DegreeDescOrder(g)

	for pass := 0; pass < extra; pass++ {
		copy(prev, assign)
		for i := range assign {
			assign[i] = Unassigned
		}
		usedNew := make([]int64, k)
		// cur starts as the full joint matrix of the previous assignment
		// (each undirected edge counted once; mirrored off-diagonal).
		for i := range cur {
			cur[i] = 0
		}
		for v := int64(0); v < n; v++ {
			for _, u := range g.Neighbors(v) {
				if u <= v {
					continue
				}
				a, b := prev[v], prev[u]
				cur[a*kk+b]++
				if a != b {
					cur[b*kk+a]++
				}
			}
		}
		hybrid := func(u int64) int64 {
			if a := assign[u]; a != Unassigned {
				return a
			}
			return prev[u]
		}
		for _, v := range refineOrder {
			old := prev[v]
			// Neighbour groups under the hybrid assignment.
			touched = touched[:0]
			for _, u := range g.Neighbors(v) {
				if u == v {
					continue
				}
				a := hybrid(u)
				if cnt[a] == 0 {
					touched = append(touched, int(a))
				}
				cnt[a]++
			}
			// Vacate v's previous contributions.
			for _, j := range touched {
				c := float64(cnt[j])
				cur[old*kk+int64(j)] -= c
				if int64(j) != old {
					cur[int64(j)*kk+old] -= c
				}
			}
			var best int64
			if len(touched) == 0 {
				// Keep isolated nodes in place if quota allows.
				best = old
				if usedNew[old] >= p.Capacities[old] {
					best = -1
					for t := 0; t < k; t++ {
						if usedNew[t] < p.Capacities[t] {
							best = int64(t)
							break
						}
					}
				}
			} else {
				best = p.placeByFrobenius(cur, targetP, m, usedNew, cnt, touched)
			}
			if best < 0 {
				return nil, fmt.Errorf("match: refinement pass has no feasible group for node %d", v)
			}
			for _, j := range touched {
				c := float64(cnt[j])
				cur[best*kk+int64(j)] += c
				if int64(j) != best {
					cur[int64(j)*kk+best] += c
				}
				cnt[j] = 0
			}
			assign[v] = best
			usedNew[best]++
		}
	}
	return assign, nil
}
