package match

import (
	"fmt"
	"time"

	"datasynth/internal/graph"
	"datasynth/internal/par"
)

// Re-streaming: the paper defers "optimization strategies" to future
// work; the standard one for streaming partitioners (restreamed LDG,
// Nishimura & Ugander KDD'13) is to replay the stream in additional
// passes. Each pass starts with fresh capacity quotas — otherwise every
// group is exactly full after pass one and no node could ever move —
// and scores every node against the *hybrid* assignment: neighbours
// already re-placed this pass use their new group, the rest keep their
// previous-pass group. That gives every node (in particular the early-
// stream nodes that pass one placed almost blind) a full-neighbourhood
// view. Refinement passes iterate hubs first (degree descending): high-
// degree nodes carry the most matrix mass, and re-anchoring them before
// the long tail is what converts the full-information pass into a net
// win — with the original random order, refinement oscillates and
// *degrades* (measured in TestProbe-style sweeps: 0.29 → 0.35 L1
// random vs 0.29 → 0.08 degree-ordered on LFR(5k,16)). Per-pass
// complexity stays O(Σ deg(v) + n·k).
//
// Like the first pass, refinement passes run windowed when RefineWindow
// (or, by inheritance, Window) exceeds 1: a parallel scan phase
// classifies every window node's neighbourhood against a frozen hybrid
// snapshot, a sequential commit phase replays the window in refinement
// order and patches in the neighbours re-placed earlier in the same
// window. The refined partition is byte-identical to the serial pass at
// every window size and worker count — including the floating-point
// summation order of the vacate/re-add joint-matrix updates; see
// refinePassWindowed.
func (p *SBMPart) PartitionMultiPass(g *graph.Graph, order []int64, extra int) ([]int64, error) {
	if extra < 0 {
		return nil, fmt.Errorf("match: negative refinement passes")
	}
	start := time.Now()
	assign, err := p.Partition(g, order)
	if err != nil {
		return nil, err
	}
	p.PassTimes = append(p.PassTimes[:0], time.Since(start))
	if extra == 0 {
		return assign, nil
	}
	k := p.K
	n := g.N()
	kk := int64(k)

	targetP := p.targetMatrix()
	m := float64(g.M())

	prev := make([]int64, n)
	cur := make([]float64, k*k)
	cnt := make([]int64, k)
	touched := make([]int, 0, k)
	// usedNew is the per-pass quota ledger. It is hoisted out of the
	// pass loop (it used to be reallocated every pass) and zeroed in
	// place; refinement only ever reads and bumps it inside the
	// sequential commit loop, which is what keeps the quota accounting
	// — and with it the isolated-node first-feasible fallback —
	// independent of the worker count.
	usedNew := make([]int64, k)
	refineOrder := DegreeDescOrder(g)

	window := p.refineWindowSize(n)
	var ws *refineWindowState
	if window > 1 {
		ws = newRefineWindowState(refineOrder, n, window, p.Workers, k)
	}

	// Per-pass joint-matrix rebuild shards: resolved once, scratch
	// allocated once and reused across passes.
	rebuildWorkers := rebuildJointWorkers(p.Workers, n)
	var rebuildScratch [][]float64
	if rebuildWorkers > 1 {
		rebuildScratch = make([][]float64, rebuildWorkers-1)
		for i := range rebuildScratch {
			rebuildScratch[i] = make([]float64, k*k)
		}
	}

	for pass := 0; pass < extra; pass++ {
		passStart := time.Now()
		copy(prev, assign)
		for i := range assign {
			assign[i] = Unassigned
		}
		for t := range usedNew {
			usedNew[t] = 0
		}
		// cur starts as the full joint matrix of the previous assignment
		// (each undirected edge counted once; mirrored off-diagonal);
		// rebuilt sharded across workers, exactly — see
		// rebuildJointMatrix.
		rebuildJointMatrix(g, prev, cur, kk, rebuildWorkers, rebuildScratch)
		if ws != nil {
			err = p.refinePassWindowed(g, ws, prev, assign, cur, usedNew, targetP, m, cnt, touched)
		} else {
			err = p.refinePassSerial(g, refineOrder, prev, assign, cur, usedNew, targetP, m, cnt, touched)
		}
		if err != nil {
			return nil, err
		}
		p.PassTimes = append(p.PassTimes, time.Since(passStart))
	}
	return assign, nil
}

// rebuildMinShard is the minimum node range a joint-matrix rebuild
// shard must own: fanning out a tiny graph costs more in k×k scratch
// zeroing and merging than the edge scan itself.
const rebuildMinShard = 4096

// rebuildJointWorkers resolves how many shards the per-pass rebuild
// uses: the partitioner's worker bound, capped by the shard floor.
func rebuildJointWorkers(workers int, n int64) int {
	if workers <= 0 {
		workers = defaultWorkers()
	}
	if max := n / rebuildMinShard; int64(workers) > max {
		workers = int(max)
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// rebuildJointMatrix recomputes into cur the k×k joint matrix of
// assignment prev: each undirected edge counted once (owned by its
// lower endpoint), mirrored off-diagonal. The scan shards freely over
// node ranges because every increment is integral — float64 addition
// of integers below 2^53 is exact and associative — so the shard-local
// partial matrices sum to bit-identical totals under any shard
// decomposition: the serial scan and every worker count produce the
// same bytes (locked by TestRebuildJointMatrixSharded). Shard s owns
// the contiguous range [n·s/W, n·(s+1)/W); shard 0 accumulates
// directly into cur on the calling goroutine, shards 1…W-1 into the
// caller-provided scratch matrices, merged in shard order.
func rebuildJointMatrix(g *graph.Graph, prev []int64, cur []float64, kk int64, workers int, scratch [][]float64) {
	for i := range cur {
		cur[i] = 0
	}
	n := g.N()
	if workers <= 1 {
		rebuildJointRange(g, prev, cur, kk, 0, n)
		return
	}
	for s := 1; s < workers; s++ {
		local := scratch[s-1]
		for i := range local {
			local[i] = 0
		}
	}
	par.Workers(workers, func(s int) {
		if s == 0 {
			rebuildJointRange(g, prev, cur, kk, 0, n/int64(workers))
			return
		}
		lo := n * int64(s) / int64(workers)
		hi := n * int64(s+1) / int64(workers)
		rebuildJointRange(g, prev, scratch[s-1], kk, lo, hi)
	})
	for _, local := range scratch[:workers-1] {
		for i, v := range local {
			cur[i] += v
		}
	}
}

// rebuildJointRange accumulates the joint-matrix contributions of the
// edges owned by nodes in [lo, hi).
func rebuildJointRange(g *graph.Graph, prev []int64, cur []float64, kk, lo, hi int64) {
	for v := lo; v < hi; v++ {
		for _, u := range g.Neighbors(v) {
			if u <= v {
				continue
			}
			a, b := prev[v], prev[u]
			cur[a*kk+b]++
			if a != b {
				cur[b*kk+a]++
			}
		}
	}
}

// refineWindowSize resolves the refinement window: an explicit
// RefineWindow wins, 0 inherits the first pass's Window, and the result
// is clamped to the stream length exactly like partitionWindowed.
func (p *SBMPart) refineWindowSize(n int64) int {
	w := p.RefineWindow
	if w == 0 {
		w = p.Window
	}
	if w <= 1 {
		return 1
	}
	if int64(w) > n {
		w = int(n)
		if w < 2 {
			w = 2
		}
	}
	return w
}

// refinePassSerial is one re-streaming pass over refineOrder: the
// reference implementation the windowed pass must reproduce byte for
// byte. assign arrives all-Unassigned and usedNew all-zero; cur holds
// the joint matrix of prev.
func (p *SBMPart) refinePassSerial(g *graph.Graph, refineOrder, prev, assign []int64, cur []float64, usedNew []int64, targetP []float64, m float64, cnt []int64, touched []int) error {
	hybrid := func(u int64) int64 {
		if a := assign[u]; a != Unassigned {
			return a
		}
		return prev[u]
	}
	for _, v := range refineOrder {
		// Neighbour groups under the hybrid assignment.
		touched = touched[:0]
		for _, u := range g.Neighbors(v) {
			if u == v {
				continue
			}
			a := hybrid(u)
			if cnt[a] == 0 {
				touched = append(touched, int(a))
			}
			cnt[a]++
		}
		best, err := p.refineCommit(v, prev[v], cur, targetP, m, usedNew, cnt, touched)
		if err != nil {
			return err
		}
		assign[v] = best
	}
	return nil
}

// refineCommit is the determinism-critical tail of one refinement
// placement, shared verbatim by the serial and windowed passes so the
// floating-point update order can never diverge between them: vacate
// v's previous contributions from the joint matrix (touched must
// already be in serial first-occurrence order), pick the target group,
// re-add the contributions under it, clear the sparse counts and bump
// the quota ledger.
func (p *SBMPart) refineCommit(v, old int64, cur, targetP []float64, m float64, usedNew, cnt []int64, touched []int) (int64, error) {
	kk := int64(p.K)
	for _, j := range touched {
		c := float64(cnt[j])
		cur[old*kk+int64(j)] -= c
		if int64(j) != old {
			cur[int64(j)*kk+old] -= c
		}
	}
	best, err := p.refinePlace(v, old, cur, targetP, m, usedNew, cnt, touched)
	if err != nil {
		return -1, err
	}
	for _, j := range touched {
		c := float64(cnt[j])
		cur[best*kk+int64(j)] += c
		if int64(j) != best {
			cur[int64(j)*kk+best] += c
		}
		cnt[j] = 0
	}
	usedNew[best]++
	return best, nil
}

// refinePlace picks the refinement target group for node v: the
// Frobenius score against the full-matrix target, or — for isolated
// nodes — the previous group if quota allows, else the first feasible
// group by index. The fallback scan reads only usedNew, which is
// mutated exclusively by the sequential commit loop, so its outcome is
// a pure function of the commit prefix: deterministic at any window
// size and worker count.
func (p *SBMPart) refinePlace(v, old int64, cur, targetP []float64, m float64, usedNew, cnt []int64, touched []int) (int64, error) {
	var best int64
	if len(touched) == 0 {
		// Keep isolated nodes in place if quota allows.
		best = old
		if usedNew[old] >= p.Capacities[old] {
			best = -1
			for t := 0; t < p.K; t++ {
				if usedNew[t] < p.Capacities[t] {
					best = int64(t)
					break
				}
			}
		}
	} else {
		best = p.placeByFrobenius(cur, targetP, m, usedNew, cnt, touched)
	}
	if best < 0 {
		return -1, fmt.Errorf("match: refinement pass has no feasible group for node %d", v)
	}
	return best, nil
}

// refineWindowState is the per-call scratch of the windowed refinement
// passes: the refinement stream, its rank index, and the scan arenas —
// allocated once, reused across windows and passes.
type refineWindowState struct {
	order []int64 // refinement stream (degree descending)
	// rank[v] is v's position in order. A neighbour that is unassigned
	// at the scan snapshot but ranked beyond the current window cannot
	// be re-placed before any node of the window commits, so its hybrid
	// group is its previous-pass group — the scan resolves it
	// immediately and only same-window neighbours stay pending.
	rank    []int64
	window  int
	workers int

	// Per-window arenas; node i of the window owns the disjoint range
	// [scanOff[i], scanOff[i+1]).
	scanOff  []int64
	preLen   []int32 // settled (group,count,pos) triples per node
	pendLen  []int32 // pending same-window neighbours per node
	preGroup []int32 // arena: settled group ids
	preCount []int32 // arena: settled per-group counts
	prePos   []int32 // arena: settled first scan positions
	pendBuf  []int64 // arena: pending neighbour ids
	pendPos  []int32 // arena: pending scan positions
	pos      []int32 // commit-phase first-occurrence position per group
}

func newRefineWindowState(order []int64, n int64, window, workers, k int) *refineWindowState {
	if workers <= 0 {
		workers = defaultWorkers()
	}
	if workers > window {
		workers = window
	}
	rank := make([]int64, n)
	for i, v := range order {
		rank[v] = int64(i)
	}
	return &refineWindowState{
		order:   order,
		rank:    rank,
		window:  window,
		workers: workers,
		scanOff: make([]int64, window+1),
		preLen:  make([]int32, window),
		pendLen: make([]int32, window),
		pos:     make([]int32, k),
	}
}

// refinePassWindowed is one re-streaming pass with the scan/commit
// split of partitionWindowed applied to the hybrid assignment:
//
//  1. Scan phase (parallel): every window node's neighbourhood is
//     classified against a frozen snapshot. A neighbour placed before
//     the window start is settled under its new group; a neighbour
//     ranked beyond the window is settled under its previous-pass group
//     (it cannot move until after this window commits); a same-window
//     neighbour is pending — its hybrid group depends on the commit
//     order — and is recorded verbatim with its scan position.
//  2. Commit phase (sequential, refinement order): each node's settled
//     counts are patched with the pending neighbours' live groups
//     (new-assignment-if-placed, else previous-pass), the touched list
//     is re-sorted to the serial first-occurrence order, and the
//     vacate → score → re-add sequence runs against the live joint
//     matrix and quota ledger — the same inputs, summed in the same
//     floating-point order, as refinePassSerial.
//
// The committed pass is therefore byte-identical to the serial pass at
// every window size and worker count; only the neighbourhood-scan wall
// time is amortised across cores.
func (p *SBMPart) refinePassWindowed(g *graph.Graph, ws *refineWindowState, prev, assign []int64, cur []float64, usedNew []int64, targetP []float64, m float64, cnt []int64, touched []int) error {
	k := p.K
	n := g.N()
	pos := ws.pos

	for w0 := int64(0); w0 < n; w0 += int64(ws.window) {
		w1 := w0 + int64(ws.window)
		if w1 > n {
			w1 = n
		}
		wn := int(w1 - w0)
		win := ws.order[w0:w1]

		ws.scanOff[0] = 0
		for i := 0; i < wn; i++ {
			ws.scanOff[i+1] = ws.scanOff[i] + g.Degree(win[i])
		}
		if need := ws.scanOff[wn]; int64(cap(ws.pendBuf)) < need {
			ws.pendBuf = make([]int64, need)
			ws.pendPos = make([]int32, need)
			ws.preGroup = make([]int32, need)
			ws.preCount = make([]int32, need)
			ws.prePos = make([]int32, need)
		}

		// Scan phase: static contiguous chunks over the frozen snapshot
		// (assign is not written until every scan worker has finished).
		scan := func(lo, hi int, cnt []int64, posLoc []int32, tl []int32) {
			for i := lo; i < hi; i++ {
				v := win[i]
				base := ws.scanOff[i]
				tl = tl[:0]
				var npend int64
				for si, u := range g.Neighbors(v) {
					if u == v {
						continue
					}
					a := assign[u]
					if a == Unassigned {
						if ws.rank[u] < w1 {
							// Same-window neighbour: may be re-placed by
							// an earlier commit of this window.
							ws.pendBuf[base+npend] = u
							ws.pendPos[base+npend] = int32(si)
							npend++
							continue
						}
						a = prev[u]
					}
					if cnt[a] == 0 {
						posLoc[a] = int32(si)
						tl = append(tl, int32(a))
					}
					cnt[a]++
				}
				for j, a := range tl {
					ws.preGroup[base+int64(j)] = a
					ws.preCount[base+int64(j)] = int32(cnt[a])
					ws.prePos[base+int64(j)] = posLoc[a]
					cnt[a] = 0
				}
				ws.preLen[i] = int32(len(tl))
				ws.pendLen[i] = int32(npend)
			}
		}
		if ws.workers == 1 || wn == 1 {
			scan(0, wn, cnt, pos, make([]int32, 0, k))
		} else {
			runScanChunks(wn, ws.workers, k, scan)
		}

		// Commit phase: sequential, refinement order, live state.
		for i := 0; i < wn; i++ {
			v := win[i]
			old := prev[v]
			base := ws.scanOff[i]
			touched = touched[:0]
			for j := int64(0); j < int64(ws.preLen[i]); j++ {
				a := int64(ws.preGroup[base+j])
				cnt[a] = int64(ws.preCount[base+j])
				pos[a] = ws.prePos[base+j]
				touched = append(touched, int(a))
			}
			// Patch in the live hybrid group of every pending neighbour:
			// its new group if an earlier commit of this window placed
			// it, its previous-pass group otherwise.
			for j := int64(0); j < int64(ws.pendLen[i]); j++ {
				u := ws.pendBuf[base+j]
				a := assign[u]
				if a == Unassigned {
					a = prev[u]
				}
				if cnt[a] == 0 {
					pos[a] = ws.pendPos[base+j]
					touched = append(touched, int(a))
				} else if sp := ws.pendPos[base+j]; sp < pos[a] {
					pos[a] = sp
				}
				cnt[a]++
			}
			sortTouchedByPos(touched, pos)

			best, err := p.refineCommit(v, old, cur, targetP, m, usedNew, cnt, touched)
			if err != nil {
				return err
			}
			assign[v] = best
		}
	}
	return nil
}
