package match

import (
	"math"
	"testing"

	"datasynth/internal/graph"
	"datasynth/internal/sgen"
	"datasynth/internal/stats"
	"datasynth/internal/table"
)

// twoCliques builds two disjoint cliques of size sz each.
func twoCliques(t *testing.T, sz int64) (*table.EdgeTable, *graph.Graph) {
	t.Helper()
	et := table.NewEdgeTable("cliques", sz*(sz-1))
	for c := int64(0); c < 2; c++ {
		base := c * sz
		for a := int64(0); a < sz; a++ {
			for b := a + 1; b < sz; b++ {
				et.Add(base+a, base+b)
			}
		}
	}
	g, err := graph.FromEdgeTable(et, 2*sz)
	if err != nil {
		t.Fatal(err)
	}
	return et, g
}

// diagTarget returns a perfectly homophilous 2-value target.
func diagTarget() *stats.Joint {
	j := stats.NewJoint(2)
	j.Set(0, 0, 0.5)
	j.Set(1, 1, 0.5)
	return j
}

func TestSBMPartSeparatesCliques(t *testing.T) {
	_, g := twoCliques(t, 20)
	part, err := NewSBMPart(diagTarget(), []int64{20, 20})
	if err != nil {
		t.Fatal(err)
	}
	assign, err := part.Partition(g, RandomOrder(40, 7))
	if err != nil {
		t.Fatal(err)
	}
	// Greedy streaming cannot guarantee perfect separation (the paper:
	// "does not guarantee an optimal solution"), but each clique must be
	// dominated by one group and the cliques must prefer different
	// groups.
	maj := func(c int64) (int64, int) {
		counts := map[int64]int{}
		for v := c * 20; v < (c+1)*20; v++ {
			counts[assign[v]]++
		}
		var bestG int64
		best := -1
		for g, n := range counts {
			if n > best {
				best = n
				bestG = g
			}
		}
		return bestG, best
	}
	g0, n0 := maj(0)
	g1, n1 := maj(1)
	if n0 < 16 || n1 < 16 {
		t.Fatalf("cliques not strongly separated: purity %d/20 and %d/20", n0, n1)
	}
	if g0 == g1 {
		t.Fatal("both cliques prefer the same group")
	}
}

func TestSBMPartRespectsCapacities(t *testing.T) {
	_, g := twoCliques(t, 10)
	target := stats.NewJoint(3)
	target.Set(0, 0, 0.4)
	target.Set(1, 1, 0.4)
	target.Set(0, 2, 0.2)
	part, err := NewSBMPart(target, []int64{8, 8, 4})
	if err != nil {
		t.Fatal(err)
	}
	assign, err := part.Partition(g, RandomOrder(20, 3))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int64, 3)
	for _, a := range assign {
		if a == Unassigned {
			t.Fatal("node left unassigned")
		}
		counts[a]++
	}
	if counts[0] > 8 || counts[1] > 8 || counts[2] > 4 {
		t.Fatalf("capacities violated: %v", counts)
	}
}

func TestSBMPartDeterministic(t *testing.T) {
	_, g := twoCliques(t, 15)
	mk := func() []int64 {
		part, err := NewSBMPart(diagTarget(), []int64{15, 15})
		if err != nil {
			t.Fatal(err)
		}
		assign, err := part.Partition(g, RandomOrder(30, 11))
		if err != nil {
			t.Fatal(err)
		}
		return assign
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("assignment differs at node %d", i)
		}
	}
}

func TestSBMPartValidation(t *testing.T) {
	if _, err := NewSBMPart(nil, nil); err == nil {
		t.Error("nil target should fail")
	}
	j := stats.NewJoint(2)
	j.Set(0, 0, 1)
	if _, err := NewSBMPart(j, []int64{1}); err == nil {
		t.Error("capacity count mismatch should fail")
	}
	bad := stats.NewJoint(2)
	bad.Set(0, 0, 0.3) // mass != 1
	if _, err := NewSBMPart(bad, []int64{1, 1}); err == nil {
		t.Error("improper target should fail")
	}
	if _, err := NewSBMPart(j, []int64{-1, 2}); err == nil {
		t.Error("negative capacity should fail")
	}
}

func TestSBMPartInsufficientCapacity(t *testing.T) {
	_, g := twoCliques(t, 5)
	part, err := NewSBMPart(diagTarget(), []int64{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := part.Partition(g, RandomOrder(10, 1)); err == nil {
		t.Error("insufficient capacity should fail")
	}
}

func TestSBMPartBadOrder(t *testing.T) {
	_, g := twoCliques(t, 5)
	part, _ := NewSBMPart(diagTarget(), []int64{5, 5})
	if _, err := part.Partition(g, []int64{0, 0, 1, 2, 3, 4, 5, 6, 7, 8}); err == nil {
		t.Error("repeated node in order should fail")
	}
	if _, err := part.Partition(g, []int64{0}); err == nil {
		t.Error("short order should fail")
	}
}

func TestSBMPartObservedMatchesTargetOnLFR(t *testing.T) {
	// End-to-end quality check mirroring the paper's protocol at small
	// scale: ground truth from LDG on an LFR graph, then SBM-Part must
	// reproduce the joint with small L1 error.
	l := sgen.NewLFR(5)
	n := int64(2000)
	et, err := l.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdgeTable(et, n)
	if err != nil {
		t.Fatal(err)
	}
	k := 8
	sizes, err := groupSizesForTest(n, k)
	if err != nil {
		t.Fatal(err)
	}
	ldg, err := NewLDG(sizes)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := ldg.Partition(g, RandomOrder(n, 13))
	if err != nil {
		t.Fatal(err)
	}
	target, err := stats.EmpiricalJoint(et, truth, k)
	if err != nil {
		t.Fatal(err)
	}
	part, err := NewSBMPart(target, sizes)
	if err != nil {
		t.Fatal(err)
	}
	assign, err := part.Partition(g, RandomOrder(n, 99))
	if err != nil {
		t.Fatal(err)
	}
	observed, err := stats.EmpiricalJoint(et, assign, k)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := stats.L1(target, observed)
	if err != nil {
		t.Fatal(err)
	}
	if l1 > 0.8 {
		t.Errorf("L1(target, observed) = %v, want < 0.8 (paper: close CDFs on LFR)", l1)
	}
	cdf, err := stats.NewCDFPair(target, observed)
	if err != nil {
		t.Fatal(err)
	}
	if ks := cdf.KS(); ks > 0.4 {
		t.Errorf("KS = %v, want < 0.4", ks)
	}
}

func groupSizesForTest(n int64, k int) ([]int64, error) {
	sizes := make([]int64, k)
	per := n / int64(k)
	var sum int64
	for i := range sizes {
		sizes[i] = per
		sum += per
	}
	sizes[0] += n - sum
	return sizes, nil
}

func TestSBMPartBeatsRandomAssignment(t *testing.T) {
	// SBM-Part must reproduce a homophilous target far better than a
	// random assignment does.
	l := sgen.NewLFR(21)
	n := int64(1000)
	et, err := l.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdgeTable(et, n)
	if err != nil {
		t.Fatal(err)
	}
	k := 4
	sizes, _ := groupSizesForTest(n, k)
	ldg, _ := NewLDG(sizes)
	truth, err := ldg.Partition(g, RandomOrder(n, 1))
	if err != nil {
		t.Fatal(err)
	}
	target, _ := stats.EmpiricalJoint(et, truth, k)

	part, _ := NewSBMPart(target, sizes)
	assign, err := part.Partition(g, RandomOrder(n, 2))
	if err != nil {
		t.Fatal(err)
	}
	obs, _ := stats.EmpiricalJoint(et, assign, k)
	l1SBM, _ := stats.L1(target, obs)

	// Random assignment honouring capacities.
	randAssign := make([]int64, n)
	idx := int64(0)
	for grp, sz := range sizes {
		for c := int64(0); c < sz; c++ {
			randAssign[idx] = int64(grp)
			idx++
		}
	}
	order := RandomOrder(n, 77)
	shuffled := make([]int64, n)
	for i, v := range order {
		shuffled[v] = randAssign[i]
	}
	obsRand, _ := stats.EmpiricalJoint(et, shuffled, k)
	l1Rand, _ := stats.L1(target, obsRand)

	if l1SBM >= l1Rand {
		t.Errorf("SBM-Part L1 %v not better than random %v", l1SBM, l1Rand)
	}
}

func TestLDGBasics(t *testing.T) {
	_, g := twoCliques(t, 10)
	ldg, err := NewLDG([]int64{10, 10})
	if err != nil {
		t.Fatal(err)
	}
	assign, err := ldg.Partition(g, RandomOrder(20, 5))
	if err != nil {
		t.Fatal(err)
	}
	// LDG should keep cliques together.
	for c := int64(0); c < 2; c++ {
		first := assign[c*10]
		for v := c*10 + 1; v < (c+1)*10; v++ {
			if assign[v] != first {
				t.Fatalf("LDG split clique %d", c)
			}
		}
	}
}

func TestLDGValidation(t *testing.T) {
	if _, err := NewLDG(nil); err == nil {
		t.Error("no partitions should fail")
	}
	if _, err := NewLDG([]int64{0, 5}); err == nil {
		t.Error("zero capacity should fail")
	}
	_, g := twoCliques(t, 5)
	ldg, _ := NewLDG([]int64{3, 3})
	if _, err := ldg.Partition(g, RandomOrder(10, 1)); err == nil {
		t.Error("insufficient total capacity should fail")
	}
}

func TestLDGCapacitiesExact(t *testing.T) {
	_, g := twoCliques(t, 10)
	ldg, _ := NewLDG([]int64{7, 13})
	assign, err := ldg.Partition(g, RandomOrder(20, 9))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int64, 2)
	for _, a := range assign {
		counts[a]++
	}
	if counts[0] > 7 || counts[1] > 13 {
		t.Fatalf("capacity violated: %v", counts)
	}
}

func TestBuildMapping(t *testing.T) {
	assign := []int64{0, 1, 0, 1}
	rowLabels := []int64{1, 0, 1, 0}
	f, err := BuildMapping(assign, rowLabels, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	// Every node must map to a row with its assigned value; rows used
	// at most once.
	used := map[int64]bool{}
	for v, row := range f {
		if rowLabels[row] != assign[v] {
			t.Errorf("node %d (group %d) mapped to row %d (label %d)", v, assign[v], row, rowLabels[row])
		}
		if used[row] {
			t.Errorf("row %d used twice", row)
		}
		used[row] = true
	}
}

func TestBuildMappingErrors(t *testing.T) {
	if _, err := BuildMapping([]int64{0, 0}, []int64{0}, 1, 1); err == nil {
		t.Error("fewer rows than nodes should fail")
	}
	if _, err := BuildMapping([]int64{0}, []int64{5}, 2, 1); err == nil {
		t.Error("row label out of range should fail")
	}
	if _, err := BuildMapping([]int64{3}, []int64{0, 0}, 2, 1); err == nil {
		t.Error("assignment out of range should fail")
	}
	// Group over capacity: two nodes assigned group 0 but one row.
	if _, err := BuildMapping([]int64{0, 0}, []int64{0, 1}, 2, 1); err == nil {
		t.Error("group over capacity should fail")
	}
}

func TestMatchPropertyEndToEnd(t *testing.T) {
	et, _ := twoCliques(t, 25)
	n := int64(50)
	rowLabels := make([]int64, n)
	for i := int64(25); i < 50; i++ {
		rowLabels[i] = 1
	}
	res, err := MatchProperty(et, n, rowLabels, diagTarget(), DefaultOptions(17))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mapping) != 50 {
		t.Fatalf("mapping len = %d", len(res.Mapping))
	}
	// Separable instance: observed must be near the target (greedy
	// streaming leaves a small residue when both cliques seed the same
	// group early on).
	l1, _ := stats.L1(diagTarget(), res.Observed)
	if l1 > 0.3 {
		t.Errorf("L1 = %v, want < 0.3 on separable instance", l1)
	}
	// Applying the mapping keeps the edge table valid.
	clone := et.Clone()
	clone.Remap(res.Mapping)
	if err := clone.Validate(n, n); err != nil {
		t.Fatal(err)
	}
}

func TestRandomMatchInjective(t *testing.T) {
	f, err := RandomMatch(100, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for _, r := range f {
		if r < 0 || r >= 100 || seen[r] {
			t.Fatalf("mapping not injective at row %d", r)
		}
		seen[r] = true
	}
	if _, err := RandomMatch(10, 5, 1); err == nil {
		t.Error("fewer rows than nodes should fail")
	}
}

func TestRandomOrderIsPermutation(t *testing.T) {
	order := RandomOrder(1000, 5)
	seen := make([]bool, 1000)
	for _, v := range order {
		if v < 0 || v >= 1000 || seen[v] {
			t.Fatalf("not a permutation at %d", v)
		}
		seen[v] = true
	}
}

func TestBFSOrderIsPermutation(t *testing.T) {
	_, g := twoCliques(t, 10)
	order := BFSOrder(g, 3)
	if len(order) != 20 {
		t.Fatalf("order len = %d", len(order))
	}
	seen := make([]bool, 20)
	for _, v := range order {
		if seen[v] {
			t.Fatal("repeated node")
		}
		seen[v] = true
	}
}

func TestDegreeDescOrder(t *testing.T) {
	// Star: center (degree 4) must come first.
	et := table.NewEdgeTable("star", 4)
	for i := int64(1); i <= 4; i++ {
		et.Add(0, i)
	}
	g, err := graph.FromEdgeTable(et, 5)
	if err != nil {
		t.Fatal(err)
	}
	order := DegreeDescOrder(g)
	if order[0] != 0 {
		t.Errorf("first node = %d, want hub 0", order[0])
	}
	for i := 1; i < len(order); i++ {
		if g.Degree(order[i]) > g.Degree(order[i-1]) {
			t.Fatal("order not degree-descending")
		}
	}
}

func TestSBMPartNoBalanceStillValid(t *testing.T) {
	et, _ := twoCliques(t, 20)
	n := int64(40)
	rowLabels := make([]int64, n)
	for i := int64(20); i < 40; i++ {
		rowLabels[i] = 1
	}
	opt := DefaultOptions(5)
	opt.Balance = false
	res, err := MatchProperty(et, n, rowLabels, diagTarget(), opt)
	if err != nil {
		t.Fatal(err)
	}
	l1, _ := stats.L1(diagTarget(), res.Observed)
	if l1 > 0.3 {
		t.Errorf("greedy variant L1 = %v, want < 0.3 on separable instance", l1)
	}
}

func TestFrobeniusDeltaMatchesNaive(t *testing.T) {
	// Cross-check the incremental Frobenius delta against a naive
	// recomputation on a small instance.
	et, g := twoCliques(t, 6)
	k := 2
	target := diagTarget()
	caps := []int64{6, 6}
	part, err := NewSBMPart(target, caps)
	if err != nil {
		t.Fatal(err)
	}
	order := RandomOrder(12, 9)
	assign, err := part.Partition(g, order)
	if err != nil {
		t.Fatal(err)
	}
	// Replay the stream naively: after all placements, cur must equal
	// the empirical pair counts.
	m := float64(et.Len())
	obs, err := stats.EmpiricalJoint(et, assign, k)
	if err != nil {
		t.Fatal(err)
	}
	// Recompute final Frobenius both ways.
	var naive float64
	for a := 0; a < k; a++ {
		for b := a; b < k; b++ {
			d := obs.At(a, b)*m - target.At(a, b)*m
			naive += d * d
		}
	}
	if math.IsNaN(naive) {
		t.Fatal("naive Frobenius is NaN")
	}
	// The incremental path reached a *valid* final state (capacity +
	// assignment checks above); Frobenius here just needs to be finite
	// and small relative to m² for the separable case.
	if naive > 0.2*m*m {
		t.Errorf("final Frobenius distance %v too large (m=%v)", naive, m)
	}
}

// TestPartitionScratchReuse: the hoisted per-instance deltas scratch
// must not leak state between Partition calls — repeated runs over the
// same input give identical assignments.
func TestPartitionScratchReuse(t *testing.T) {
	_, g := twoCliques(t, 100)
	target, _ := stats.HomophilyJoint([]int64{100, 100}, 0.7)
	p, err := NewSBMPart(target, []int64{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	p.Seed = 9
	order := RandomOrder(200, 4)
	first, err := p.Partition(g, order)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		again, err := p.Partition(g, order)
		if err != nil {
			t.Fatal(err)
		}
		for v := range first {
			if first[v] != again[v] {
				t.Fatalf("run %d: node %d assigned %d, first run gave %d", run, v, again[v], first[v])
			}
		}
	}
}
