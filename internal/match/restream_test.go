package match

import (
	"testing"

	"datasynth/internal/graph"
	"datasynth/internal/sgen"
	"datasynth/internal/stats"
	"datasynth/internal/xrand"
)

// restreamSetup builds an LFR instance with LDG ground truth for
// refinement tests.
func restreamSetup(t *testing.T, n int64, k int) (*graph.Graph, *stats.Joint, []int64, func([]int64) float64) {
	t.Helper()
	lfr := sgen.NewLFR(5)
	et, err := lfr.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdgeTable(et, n)
	if err != nil {
		t.Fatal(err)
	}
	sizes, err := xrand.GroupSizes(n, k, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	ldg, err := NewLDG(sizes)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := ldg.Partition(g, RandomOrder(n, 1))
	if err != nil {
		t.Fatal(err)
	}
	target, err := stats.EmpiricalJoint(et, truth, k)
	if err != nil {
		t.Fatal(err)
	}
	l1Of := func(assign []int64) float64 {
		obs, err := stats.EmpiricalJoint(et, assign, k)
		if err != nil {
			t.Fatal(err)
		}
		l1, err := stats.L1(target, obs)
		if err != nil {
			t.Fatal(err)
		}
		return l1
	}
	return g, target, sizes, l1Of
}

func TestMultiPassImprovesFidelity(t *testing.T) {
	g, target, sizes, l1Of := restreamSetup(t, 5000, 16)
	order := RandomOrder(g.N(), 2)

	single, err := newPart(t, target, sizes).Partition(g, order)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := newPart(t, target, sizes).PartitionMultiPass(g, order, 2)
	if err != nil {
		t.Fatal(err)
	}
	s1, sm := l1Of(single), l1Of(multi)
	if sm >= s1 {
		t.Errorf("refinement L1 %v not better than single-pass %v", sm, s1)
	}
}

func newPart(t *testing.T, target *stats.Joint, sizes []int64) *SBMPart {
	t.Helper()
	p, err := NewSBMPart(target, sizes)
	if err != nil {
		t.Fatal(err)
	}
	p.Seed = 3
	return p
}

func TestMultiPassRespectsCapacities(t *testing.T) {
	g, target, sizes, _ := restreamSetup(t, 3000, 8)
	assign, err := newPart(t, target, sizes).PartitionMultiPass(g, RandomOrder(g.N(), 7), 3)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int64, len(sizes))
	for _, a := range assign {
		if a < 0 || int(a) >= len(sizes) {
			t.Fatalf("invalid assignment %d", a)
		}
		counts[a]++
	}
	for i := range sizes {
		if counts[i] > sizes[i] {
			t.Fatalf("group %d over capacity: %d > %d", i, counts[i], sizes[i])
		}
	}
}

func TestMultiPassZeroExtraEqualsSingle(t *testing.T) {
	g, target, sizes, _ := restreamSetup(t, 2000, 4)
	order := RandomOrder(g.N(), 9)
	a, err := newPart(t, target, sizes).Partition(g, order)
	if err != nil {
		t.Fatal(err)
	}
	b, err := newPart(t, target, sizes).PartitionMultiPass(g, order, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("0 extra passes must equal single pass")
		}
	}
}

func TestMultiPassValidation(t *testing.T) {
	g, target, sizes, _ := restreamSetup(t, 1000, 4)
	if _, err := newPart(t, target, sizes).PartitionMultiPass(g, RandomOrder(g.N(), 1), -1); err == nil {
		t.Error("negative passes should fail")
	}
}

func TestMultiPassDeterministic(t *testing.T) {
	g, target, sizes, _ := restreamSetup(t, 2000, 8)
	order := RandomOrder(g.N(), 4)
	a, err := newPart(t, target, sizes).PartitionMultiPass(g, order, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := newPart(t, target, sizes).PartitionMultiPass(g, order, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("multi-pass not deterministic")
		}
	}
}
