package match

import (
	"runtime"
	"sync"
	"testing"

	"datasynth/internal/graph"
	"datasynth/internal/sgen"
	"datasynth/internal/stats"
)

// lfrFixture builds a moderately sized LFR graph plus a homophilous
// target/capacity pair — the workload the windowed partitioner is for.
func lfrFixture(t testing.TB, n int64, k int) (*graph.Graph, *stats.Joint, []int64) {
	t.Helper()
	l := sgen.NewLFR(17)
	et, err := l.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdgeTable(et, n)
	if err != nil {
		t.Fatal(err)
	}
	sizes := make([]int64, k)
	for i := range sizes {
		sizes[i] = n / int64(k)
	}
	sizes[0] += n - sizes[0]*int64(k)
	target, err := stats.HomophilyJoint(sizes, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	return g, target, sizes
}

func partitionWith(t testing.TB, g *graph.Graph, target *stats.Joint, sizes []int64, window, workers int) []int64 {
	t.Helper()
	part, err := NewSBMPart(target, sizes)
	if err != nil {
		t.Fatal(err)
	}
	part.Seed = 99
	part.Window = window
	part.Workers = workers
	assign, err := part.Partition(g, RandomOrder(g.N(), 5))
	if err != nil {
		t.Fatal(err)
	}
	return assign
}

// TestWindowedPartitionByteIdentical: the windowed-parallel mode must
// reproduce the serial stream exactly — same assignment for every node
// — at window sizes 1 (serial path), 64, DefaultWindow and
// whole-stream, and at 1 and NumCPU workers.
func TestWindowedPartitionByteIdentical(t *testing.T) {
	const n, k = 4000, 16
	g, target, sizes := lfrFixture(t, n, k)
	ref := partitionWith(t, g, target, sizes, 1, 1) // serial baseline

	windows := []int{64, DefaultWindow, int(n)} // n = whole stream
	for _, w := range windows {
		for _, workers := range []int{1, runtime.NumCPU()} {
			got := partitionWith(t, g, target, sizes, w, workers)
			for v := range ref {
				if got[v] != ref[v] {
					t.Fatalf("window=%d workers=%d: node %d assigned %d, serial %d",
						w, workers, v, got[v], ref[v])
				}
			}
		}
	}
}

// TestWindowedPartitionOrderValidation: the windowed path must reject
// non-permutation orders exactly like the serial path.
func TestWindowedPartitionOrderValidation(t *testing.T) {
	g, target, sizes := lfrFixture(t, 500, 4)
	part, err := NewSBMPart(target, sizes)
	if err != nil {
		t.Fatal(err)
	}
	part.Window = 64
	bad := RandomOrder(500, 5)
	bad[100] = bad[101] // duplicate
	if _, err := part.Partition(g, bad); err == nil {
		t.Fatal("duplicate order entry not rejected")
	}
	part2, err := NewSBMPart(target, sizes)
	if err != nil {
		t.Fatal(err)
	}
	part2.Window = 64
	oob := RandomOrder(500, 5)
	oob[0] = 500 // out of range
	if _, err := part2.Partition(g, oob); err == nil {
		t.Fatal("out-of-range order entry not rejected")
	}
}

// TestWindowedPartitionStress exercises the frozen-snapshot scan /
// sequential commit loop under the race detector: several goroutines
// run independent windowed partitions concurrently (each instance is
// internally parallel too), all of which must agree with the serial
// baseline.
func TestWindowedPartitionStress(t *testing.T) {
	const n, k = 2000, 8
	g, target, sizes := lfrFixture(t, n, k)
	ref := partitionWith(t, g, target, sizes, 1, 1)

	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(window int) {
			defer wg.Done()
			got := partitionWith(t, g, target, sizes, window, 0)
			for v := range ref {
				if got[v] != ref[v] {
					t.Errorf("window=%d: node %d assigned %d, serial %d", window, v, got[v], ref[v])
					return
				}
			}
		}(2 + r*37)
	}
	wg.Wait()
}

// TestMatchPropertyWindowedIdentical: the end-to-end matching operator
// must hand out identical mappings whatever the window/worker setting.
func TestMatchPropertyWindowedIdentical(t *testing.T) {
	const n, k = 2000, 4
	l := sgen.NewLFR(23)
	et, err := l.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	sizes := make([]int64, k)
	for i := range sizes {
		sizes[i] = n / int64(k)
	}
	target, err := stats.HomophilyJoint(sizes, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	rowLabels := make([]int64, n)
	idx := int64(0)
	for v, sz := range sizes {
		for c := int64(0); c < sz; c++ {
			rowLabels[idx] = int64(v)
			idx++
		}
	}
	run := func(window, workers int) []int64 {
		opt := DefaultOptions(77)
		opt.Window = window
		opt.Workers = workers
		res, err := MatchProperty(et, n, rowLabels, target, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res.Mapping
	}
	ref := run(-1, 1) // serial
	for _, w := range []int{64, 0 /* DefaultWindow */, int(n)} {
		got := run(w, 0)
		for v := range ref {
			if got[v] != ref[v] {
				t.Fatalf("window=%d: mapping[%d] = %d, serial %d", w, v, got[v], ref[v])
			}
		}
	}
}

func BenchmarkPartitionSerial(b *testing.B) {
	g, target, sizes := lfrFixture(b, 30000, 16)
	order := RandomOrder(g.N(), 5)
	part, _ := NewSBMPart(target, sizes)
	part.Seed = 99
	part.Window = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := part.Partition(g, order); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionWindowed(b *testing.B) {
	g, target, sizes := lfrFixture(b, 30000, 16)
	order := RandomOrder(g.N(), 5)
	part, _ := NewSBMPart(target, sizes)
	part.Seed = 99
	part.Window = DefaultWindow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := part.Partition(g, order); err != nil {
			b.Fatal(err)
		}
	}
}
