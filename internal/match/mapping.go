package match

import (
	"fmt"
	"runtime"
	"time"

	"datasynth/internal/graph"
	"datasynth/internal/stats"
	"datasynth/internal/table"
	"datasynth/internal/xrand"
)

// This file implements the end-to-end matching operators the DataSynth
// engine calls: they turn a group assignment into the mapping function
// f from structure-node ids to property-row ids (paper: "the function f
// is built by assigning to each node of g an id out of those of p that
// have the value corresponding to the partition the node has been
// assigned").

// BuildMapping constructs f: structure node id -> property row id.
// assign[v] is v's group; rowLabels[r] is the value of property row r.
// Within each group, rows are handed out in a pseudo-random (but
// deterministic) order so that row ids carry no structural bias.
func BuildMapping(assign []int64, rowLabels []int64, k int, seed uint64) ([]int64, error) {
	if len(assign) > len(rowLabels) {
		return nil, fmt.Errorf("match: %d nodes but only %d property rows", len(assign), len(rowLabels))
	}
	// Bucket property rows by value.
	buckets := make([][]int64, k)
	for r, l := range rowLabels {
		if l < 0 || l >= int64(k) {
			return nil, fmt.Errorf("match: row %d has label %d outside [0,%d)", r, l, k)
		}
		buckets[l] = append(buckets[l], int64(r))
	}
	// Shuffle each bucket deterministically.
	s := xrand.NewStream(seed)
	for t := 0; t < k; t++ {
		b := buckets[t]
		sub := s.DeriveStream(fmt.Sprintf("bucket-%d", t))
		for i := len(b) - 1; i > 0; i-- {
			j := sub.Intn(int64(i), int64(i)+1)
			b[i], b[j] = b[j], b[i]
		}
	}
	next := make([]int, k)
	f := make([]int64, len(assign))
	for v, t := range assign {
		if t < 0 || t >= int64(k) {
			return nil, fmt.Errorf("match: node %d unassigned", v)
		}
		if next[t] >= len(buckets[t]) {
			return nil, fmt.Errorf("match: group %d over capacity (%d rows)", t, len(buckets[t]))
		}
		f[v] = buckets[t][next[t]]
		next[t]++
	}
	return f, nil
}

// Options configures MatchProperty.
type Options struct {
	// Seed drives the stream order and bucket shuffles.
	Seed uint64
	// Order overrides the node stream order; nil means pseudo-random
	// (the paper: "We sent the nodes to SBM-Part randomly").
	Order []int64
	// Balance toggles the LDG capacity factor (default true).
	Balance bool
	// Passes adds re-streaming refinement passes (see
	// SBMPart.PartitionMultiPass).
	Passes int
	// Window sets the windowed-parallel streaming window size:
	// 0 picks DefaultWindow, negative (or 1) forces the serial path.
	// The partition is byte-identical at every window size.
	Window int
	// Workers bounds the scan-phase concurrency (0 = NumCPU, 1 =
	// serial). The partition is byte-identical at every worker count.
	Workers int
	// RefineWindow sets the stream window of the re-streaming
	// refinement passes: 0 inherits the resolved Window, negative (or
	// 1) keeps refinement serial. The refined partition is
	// byte-identical at every setting.
	RefineWindow int
}

// DefaultWindow is the stream window used when Options.Window is 0 —
// large enough to amortise the scan fan-out, small enough that the
// frozen snapshot stays fresh (few pending neighbours per node).
const DefaultWindow = 2048

// EffectiveWindow resolves the (Window, Workers) pair into a concrete
// SBMPart.Window: an explicit window wins; auto (0) picks
// DefaultWindow only when the scan phase has real parallelism to
// exploit (more than one worker available), and the cheaper serial
// stream otherwise. The partition bytes are identical either way —
// this is purely a wall-clock policy, kept in one place so every
// caller (engine, experiment harness, CLI) agrees.
func EffectiveWindow(window, workers int) int {
	if window != 0 {
		return window
	}
	if workers == 1 || (workers <= 0 && runtime.NumCPU() == 1) {
		return 1
	}
	return DefaultWindow
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions(seed uint64) Options {
	return Options{Seed: seed, Balance: true}
}

// Result reports a completed matching.
type Result struct {
	// Mapping is f: structure node id -> property row id.
	Mapping []int64
	// Assign is the group (value) each structure node received.
	Assign []int64
	// Observed is the empirical joint P'(X,Y) after matching.
	Observed *stats.Joint
	// PartitionTime is the wall time spent inside SBM-Part itself (the
	// paper's timing claim), isolated from graph build and mapping
	// construction — plumbed out so callers can report where a match
	// task's critical-path time actually goes.
	PartitionTime time.Duration
	// PassTimes breaks PartitionTime down per streaming pass: index 0
	// is the initial stream, each later entry one re-streaming
	// refinement pass (a single-pass match has exactly one entry).
	// Callers feed this into critical-path reports so refinement cost
	// is visible end to end.
	PassTimes []time.Duration
}

// MatchProperty runs the paper's full matching task for a monopartite
// edge type: given the structure et over n nodes, the property-row
// labels (the PT reduced to value indices), and the target P(X,Y),
// it partitions the structure with SBM-Part and builds the mapping.
// The EdgeTable is not modified; apply Result.Mapping with et.Remap to
// materialise the match.
func MatchProperty(et *table.EdgeTable, n int64, rowLabels []int64, target *stats.Joint, opt Options) (*Result, error) {
	gb := graph.GetBuilder()
	defer graph.PutBuilder(gb)
	g, err := gb.FromEdgeTable(et, n)
	if err != nil {
		return nil, err
	}
	capacities, err := stats.Frequencies(rowLabels, target.K)
	if err != nil {
		return nil, err
	}
	part, err := NewSBMPart(target, capacities)
	if err != nil {
		return nil, err
	}
	part.Balance = opt.Balance
	part.Seed = opt.Seed
	part.Window = EffectiveWindow(opt.Window, opt.Workers)
	part.Workers = opt.Workers
	part.RefineWindow = opt.RefineWindow
	order := opt.Order
	if order == nil {
		order = RandomOrder(n, opt.Seed)
	}
	start := time.Now()
	var assign []int64
	passTimes := []time.Duration(nil)
	if opt.Passes > 0 {
		assign, err = part.PartitionMultiPass(g, order, opt.Passes)
		passTimes = append(passTimes, part.PassTimes...)
	} else {
		assign, err = part.Partition(g, order)
	}
	partitionTime := time.Since(start)
	if opt.Passes <= 0 {
		passTimes = append(passTimes, partitionTime)
	}
	if err != nil {
		return nil, err
	}
	mapping, err := BuildMapping(assign, rowLabels, target.K, opt.Seed)
	if err != nil {
		return nil, err
	}
	observed, err := stats.EmpiricalJoint(et, assign, target.K)
	if err != nil {
		return nil, err
	}
	return &Result{Mapping: mapping, Assign: assign, Observed: observed, PartitionTime: partitionTime, PassTimes: passTimes}, nil
}

// RandomMatch maps structure nodes to property rows uniformly at
// random — the paper's rule when an edge type has no property-structure
// correlation ("the matching is done randomly").
func RandomMatch(n int64, numRows int64, seed uint64) ([]int64, error) {
	if numRows < n {
		return nil, fmt.Errorf("match: %d nodes but only %d property rows", n, numRows)
	}
	s := xrand.NewStream(seed)
	f := make([]int64, n)
	for v := int64(0); v < n; v++ {
		f[v] = s.Perm(v, numRows)
	}
	return f, nil
}

// RandomOrder returns a pseudo-random permutation of [0, n).
func RandomOrder(n int64, seed uint64) []int64 {
	s := xrand.NewStream(seed).DeriveStream("stream-order")
	order := make([]int64, n)
	for i := range order {
		order[i] = int64(i)
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i, i+1)
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// BFSOrder returns nodes in breadth-first order from a pseudo-random
// root per component — an ablation stream order with high locality.
func BFSOrder(g *graph.Graph, seed uint64) []int64 {
	n := g.N()
	order := make([]int64, 0, n)
	visited := make([]bool, n)
	roots := RandomOrder(n, seed)
	queue := make([]int64, 0, 1024)
	for _, r := range roots {
		if visited[r] {
			continue
		}
		visited[r] = true
		queue = append(queue[:0], r)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, u := range g.Neighbors(v) {
				if !visited[u] {
					visited[u] = true
					queue = append(queue, u)
				}
			}
		}
	}
	return order
}

// DegreeDescOrder returns nodes by decreasing degree (hubs first) — an
// ablation stream order.
func DegreeDescOrder(g *graph.Graph) []int64 {
	n := g.N()
	order := make([]int64, n)
	for i := range order {
		order[i] = int64(i)
	}
	// Counting sort by degree, descending; stable on node id.
	maxDeg := g.MaxDegree()
	buckets := make([][]int64, maxDeg+1)
	for v := int64(0); v < n; v++ {
		d := g.Degree(v)
		buckets[d] = append(buckets[d], v)
	}
	out := order[:0]
	for d := maxDeg; d >= 0; d-- {
		out = append(out, buckets[d]...)
	}
	return order
}
