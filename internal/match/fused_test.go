package match

import (
	"math"
	"testing"
	"testing/quick"
)

func fusedTarget2x2(d float64) *BipartiteTarget {
	// Diagonal mass d split evenly, off-diagonal the rest.
	t := NewBipartiteTarget(2, 2)
	t.Set(0, 0, d/2)
	t.Set(1, 1, d/2)
	t.Set(0, 1, (1-d)/2)
	t.Set(1, 0, (1-d)/2)
	return t
}

func TestFusedOneToManyExactJoint(t *testing.T) {
	tailLabels := make([]int64, 100)
	for i := 50; i < 100; i++ {
		tailLabels[i] = 1
	}
	target := fusedTarget2x2(0.8)
	m := int64(10000)
	et, headLabels, err := FusedOneToMany(tailLabels, 2, 2, m, target, 7)
	if err != nil {
		t.Fatal(err)
	}
	if et.Len() != m {
		t.Fatalf("edges = %d, want %d", et.Len(), m)
	}
	if int64(len(headLabels)) != m {
		t.Fatalf("head labels = %d", len(headLabels))
	}
	// Heads dense [0, m).
	seen := make([]bool, m)
	for i := int64(0); i < m; i++ {
		h := et.Head[i]
		if h < 0 || h >= m || seen[h] {
			t.Fatal("heads not dense/unique")
		}
		seen[h] = true
	}
	// Observed joint equals target up to rounding (< cells/m).
	l1, err := FusedQuality(et, tailLabels, headLabels, target)
	if err != nil {
		t.Fatal(err)
	}
	if l1 > 4.0/float64(m)+1e-9 {
		t.Errorf("fused 1-* L1 = %v, want <= rounding bound %v", l1, 4.0/float64(m))
	}
}

func TestFusedOneToManyTailsRespectValues(t *testing.T) {
	tailLabels := []int64{0, 0, 1}
	target := fusedTarget2x2(1.0) // only (0,0) and (1,1)
	et, headLabels, err := FusedOneToMany(tailLabels, 2, 2, 1000, target, 3)
	if err != nil {
		t.Fatal(err)
	}
	for e := int64(0); e < et.Len(); e++ {
		if tailLabels[et.Tail[e]] != headLabels[e] {
			t.Fatalf("edge %d links tail value %d to head value %d under a diagonal target",
				e, tailLabels[et.Tail[e]], headLabels[e])
		}
	}
}

func TestFusedOneToManyErrors(t *testing.T) {
	target := fusedTarget2x2(0.8)
	if _, _, err := FusedOneToMany([]int64{0}, 2, 2, 0, target, 1); err == nil {
		t.Error("m=0 should fail")
	}
	if _, _, err := FusedOneToMany([]int64{5}, 2, 2, 10, target, 1); err == nil {
		t.Error("label out of range should fail")
	}
	// Target demands tail value 1 but no row carries it.
	if _, _, err := FusedOneToMany([]int64{0, 0}, 2, 2, 10, target, 1); err == nil {
		t.Error("missing tail value should fail")
	}
	bad := NewBipartiteTarget(2, 2) // zero mass
	if _, _, err := FusedOneToMany([]int64{0, 1}, 2, 2, 10, bad, 1); err == nil {
		t.Error("invalid target should fail")
	}
}

func TestFusedOneToManyDeterministic(t *testing.T) {
	tailLabels := []int64{0, 1, 0, 1}
	target := fusedTarget2x2(0.6)
	a, ha, err := FusedOneToMany(tailLabels, 2, 2, 500, target, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, hb, err := FusedOneToMany(tailLabels, 2, 2, 500, target, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < a.Len(); i++ {
		if a.Tail[i] != b.Tail[i] || ha[i] != hb[i] {
			t.Fatal("fused 1-* not deterministic")
		}
	}
}

func TestFusedOneToOnePerfectMatching(t *testing.T) {
	n := 1000
	tailLabels := make([]int64, n)
	headLabels := make([]int64, n)
	for i := 0; i < n; i++ {
		tailLabels[i] = int64(i % 2)
		headLabels[i] = int64((i / 2) % 2)
	}
	target := fusedTarget2x2(0.9)
	et, err := FusedOneToOne(tailLabels, headLabels, 2, 2, target, 5)
	if err != nil {
		t.Fatal(err)
	}
	if et.Len() != int64(n) {
		t.Fatalf("edges = %d, want %d", et.Len(), n)
	}
	// Perfect matching on both sides.
	seenT := make([]bool, n)
	seenH := make([]bool, n)
	for e := int64(0); e < et.Len(); e++ {
		if seenT[et.Tail[e]] || seenH[et.Head[e]] {
			t.Fatal("row reused in perfect matching")
		}
		seenT[et.Tail[e]] = true
		seenH[et.Head[e]] = true
	}
	// Joint close to target (supply allows 0.9 diagonal at 50/50 labels).
	l1, err := FusedQuality(et, tailLabels, headLabels, target)
	if err != nil {
		t.Fatal(err)
	}
	if l1 > 0.05 {
		t.Errorf("fused 1-1 L1 = %v, want < 0.05", l1)
	}
}

func TestFusedOneToOneSupplyLimited(t *testing.T) {
	// Target wants all-diagonal but labels make that impossible: 75% of
	// tails are value 0 while only 25% of heads are. The operator must
	// still produce a complete matching.
	tailLabels := []int64{0, 0, 0, 1}
	headLabels := []int64{0, 1, 1, 1}
	target := fusedTarget2x2(1.0)
	et, err := FusedOneToOne(tailLabels, headLabels, 2, 2, target, 9)
	if err != nil {
		t.Fatal(err)
	}
	if et.Len() != 4 {
		t.Fatalf("edges = %d, want 4", et.Len())
	}
}

func TestFusedOneToOneErrors(t *testing.T) {
	target := fusedTarget2x2(0.5)
	if _, err := FusedOneToOne([]int64{0}, []int64{0, 1}, 2, 2, target, 1); err == nil {
		t.Error("unequal domains should fail")
	}
	if _, err := FusedOneToOne([]int64{9}, []int64{0}, 2, 2, target, 1); err == nil {
		t.Error("bad tail label should fail")
	}
	if _, err := FusedOneToOne([]int64{0}, []int64{9}, 2, 2, target, 1); err == nil {
		t.Error("bad head label should fail")
	}
	et, err := FusedOneToOne(nil, nil, 2, 2, target, 1)
	if err != nil || et.Len() != 0 {
		t.Errorf("empty domains: %v, %d edges", err, et.Len())
	}
}

func TestRoundQuotasExact(t *testing.T) {
	q, err := roundQuotas([]float64{0.3333, 0.3333, 0.3334}, 100)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, v := range q {
		sum += v
	}
	if sum != 100 {
		t.Fatalf("quotas sum to %d", sum)
	}
	if _, err := roundQuotas([]float64{-1}, 10); err == nil {
		t.Error("negative probability should fail")
	}
}

func TestRoundQuotasProperty(t *testing.T) {
	f := func(raw []uint8, totalRaw uint16) bool {
		if len(raw) == 0 {
			return true
		}
		total := int64(totalRaw%10000) + 1
		sum := 0.0
		probs := make([]float64, len(raw))
		for i, r := range raw {
			probs[i] = float64(r)
			sum += probs[i]
		}
		if sum == 0 {
			return true
		}
		for i := range probs {
			probs[i] /= sum
		}
		q, err := roundQuotas(probs, total)
		if err != nil {
			return false
		}
		var s int64
		for i, v := range q {
			if v < 0 {
				return false
			}
			// Each quota within 1 of exact value.
			if math.Abs(float64(v)-probs[i]*float64(total)) > 1.0000001 {
				return false
			}
			s += v
		}
		return s == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFusedBeatsStreamingOnStrictConstraints(t *testing.T) {
	// The motivating claim: the fused operator realises the joint
	// exactly (up to rounding) where streaming SBM-Part only
	// approximates it.
	tailLabels := make([]int64, 200)
	for i := 100; i < 200; i++ {
		tailLabels[i] = 1
	}
	target := fusedTarget2x2(0.9)
	m := int64(5000)
	et, headLabels, err := FusedOneToMany(tailLabels, 2, 2, m, target, 13)
	if err != nil {
		t.Fatal(err)
	}
	l1Fused, err := FusedQuality(et, tailLabels, headLabels, target)
	if err != nil {
		t.Fatal(err)
	}
	if l1Fused > 0.001 {
		t.Errorf("fused L1 = %v, want ~0", l1Fused)
	}
}
