package match

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"runtime"
	"sync"
	"testing"

	"datasynth/internal/sgen"
	"datasynth/internal/table"
)

// bipartiteWindowFixture builds a moderately sized *→* bipartite edge
// table (Zipf attachment: skewed out-degrees and head popularity — the
// workload shape the windowed scan is for) plus row labellings for
// both domains and the joint they induce as the matching target.
func bipartiteWindowFixture(t testing.TB, nTail, nHead int64, kt, kh int) (*table.EdgeTable, []int64, []int64, *BipartiteTarget) {
	t.Helper()
	gen := sgen.NewZipfAttachment(1, 12, 2.2, 1.1, 41)
	et, err := gen.RunBipartite(nTail, nHead)
	if err != nil {
		t.Fatal(err)
	}
	tailLabels := make([]int64, nTail)
	for i := range tailLabels {
		tailLabels[i] = int64(i % kt)
	}
	headLabels := make([]int64, nHead)
	for i := range headLabels {
		headLabels[i] = int64(i % kh)
	}
	target, err := EmpiricalBipartite(et, tailLabels, headLabels, kt, kh)
	if err != nil {
		t.Fatal(err)
	}
	return et, tailLabels, headLabels, target
}

func matchBipartiteWith(t testing.TB, et *table.EdgeTable, nTail, nHead int64, tailLabels, headLabels []int64, target *BipartiteTarget, window, workers int) *BipartiteResult {
	t.Helper()
	opt := DefaultOptions(63)
	opt.Window = window
	opt.Workers = workers
	res, err := MatchBipartite(et, nTail, nHead, tailLabels, headLabels, target, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// assignmentsSHA256 fingerprints a completed matching: both assignment
// vectors and both mappings, in order.
func assignmentsSHA256(res *BipartiteResult) string {
	h := sha256.New()
	var buf [8]byte
	for _, vec := range [][]int64{res.TailAssign, res.HeadAssign, res.TailMapping, res.HeadMapping} {
		for _, v := range vec {
			binary.LittleEndian.PutUint64(buf[:], uint64(v))
			h.Write(buf[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestMatchBipartiteWindowedByteIdentical: the windowed-parallel
// bipartite matcher must reproduce the serial stream exactly — every
// tail and head assignment and both mappings — across
// {auto, small, whole-stream} windows and {1, NumCPU} workers, pinned
// by a golden hash so a drift in any configuration (or in the serial
// reference itself) fails loudly.
func TestMatchBipartiteWindowedByteIdentical(t *testing.T) {
	const nTail, nHead = 6000, 3000
	const kt, kh = 12, 6
	et, tailLabels, headLabels, target := bipartiteWindowFixture(t, nTail, nHead, kt, kh)
	ref := matchBipartiteWith(t, et, nTail, nHead, tailLabels, headLabels, target, -1, 1) // serial baseline

	// The pinned fingerprint of the serial reference: a change means
	// existing seeds produce different matchings — an intentional break
	// of the per-seed reproducibility contract that must be called out.
	const want = "aab8a38b8a4f27e925b9f39483b6cffeaa22dce5a8bd4b7f5c463803e1daf5f4"
	if got := assignmentsSHA256(ref); got != want {
		t.Fatalf("serial matching fingerprint %s, want %s", got, want)
	}

	windows := []int{0 /* auto */, 64, int(nTail + nHead)} // whole stream
	for _, w := range windows {
		for _, workers := range []int{1, runtime.NumCPU()} {
			got := matchBipartiteWith(t, et, nTail, nHead, tailLabels, headLabels, target, w, workers)
			for v := range ref.TailAssign {
				if got.TailAssign[v] != ref.TailAssign[v] {
					t.Fatalf("window=%d workers=%d: tail %d assigned %d, serial %d",
						w, workers, v, got.TailAssign[v], ref.TailAssign[v])
				}
			}
			for v := range ref.HeadAssign {
				if got.HeadAssign[v] != ref.HeadAssign[v] {
					t.Fatalf("window=%d workers=%d: head %d assigned %d, serial %d",
						w, workers, v, got.HeadAssign[v], ref.HeadAssign[v])
				}
			}
			if gh := assignmentsSHA256(got); gh != want {
				t.Fatalf("window=%d workers=%d: fingerprint %s, want %s", w, workers, gh, want)
			}
		}
	}
}

// TestMatchBipartiteWindowedStress exercises the scan/commit loop
// under the race detector: several goroutines run independent windowed
// matchings concurrently (each internally parallel), all of which must
// agree with the serial baseline.
func TestMatchBipartiteWindowedStress(t *testing.T) {
	const nTail, nHead = 3000, 1500
	const kt, kh = 8, 4
	et, tailLabels, headLabels, target := bipartiteWindowFixture(t, nTail, nHead, kt, kh)
	ref := matchBipartiteWith(t, et, nTail, nHead, tailLabels, headLabels, target, -1, 1)

	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(window int) {
			defer wg.Done()
			got := matchBipartiteWith(t, et, nTail, nHead, tailLabels, headLabels, target, window, 0)
			for v := range ref.TailAssign {
				if got.TailAssign[v] != ref.TailAssign[v] {
					t.Errorf("window=%d: tail %d assigned %d, serial %d", window, v, got.TailAssign[v], ref.TailAssign[v])
					return
				}
			}
			for v := range ref.HeadAssign {
				if got.HeadAssign[v] != ref.HeadAssign[v] {
					t.Errorf("window=%d: head %d assigned %d, serial %d", window, v, got.HeadAssign[v], ref.HeadAssign[v])
					return
				}
			}
		}(2 + r*37)
	}
	wg.Wait()
}

func BenchmarkMatchBipartiteSerial(b *testing.B) {
	const nTail, nHead = 30000, 15000
	et, tailLabels, headLabels, target := bipartiteWindowFixture(b, nTail, nHead, 16, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matchBipartiteWith(b, et, nTail, nHead, tailLabels, headLabels, target, -1, 1)
	}
}

func BenchmarkMatchBipartiteWindowed(b *testing.B) {
	const nTail, nHead = 30000, 15000
	et, tailLabels, headLabels, target := bipartiteWindowFixture(b, nTail, nHead, 16, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matchBipartiteWith(b, et, nTail, nHead, tailLabels, headLabels, target, DefaultWindow, 0)
	}
}
