package match

import (
	"runtime"
	"sync"
	"testing"

	"datasynth/internal/graph"
	"datasynth/internal/sgen"
	"datasynth/internal/stats"
	"datasynth/internal/table"
)

// multiPassWith runs PartitionMultiPass at the given first-pass window,
// refinement window and worker count on a fresh partitioner.
func multiPassWith(t testing.TB, g *graph.Graph, target *stats.Joint, sizes []int64, passes, window, refineWindow, workers int) []int64 {
	t.Helper()
	part, err := NewSBMPart(target, sizes)
	if err != nil {
		t.Fatal(err)
	}
	part.Seed = 99
	part.Window = window
	part.RefineWindow = refineWindow
	part.Workers = workers
	assign, err := part.PartitionMultiPass(g, RandomOrder(g.N(), 5), passes)
	if err != nil {
		t.Fatal(err)
	}
	return assign
}

// TestMultiPassWindowedByteIdentical: the windowed refinement passes
// must reproduce the serial passes exactly — same assignment for every
// node — at refinement windows 64, DefaultWindow and whole-stream, at 1
// and NumCPU workers, and whether the first pass itself is windowed or
// serial.
func TestMultiPassWindowedByteIdentical(t *testing.T) {
	const n, k = 4000, 16
	g, target, sizes := lfrFixture(t, n, k)
	ref := multiPassWith(t, g, target, sizes, 2, 1, 1, 1) // fully serial baseline

	for _, w := range []int{1, 256} { // first-pass window
		for _, rw := range []int{64, DefaultWindow, int(n)} {
			for _, workers := range []int{1, runtime.NumCPU()} {
				got := multiPassWith(t, g, target, sizes, 2, w, rw, workers)
				for v := range ref {
					if got[v] != ref[v] {
						t.Fatalf("window=%d refine=%d workers=%d: node %d assigned %d, serial %d",
							w, rw, workers, v, got[v], ref[v])
					}
				}
			}
		}
	}
}

// TestMultiPassRefineWindowInherits: RefineWindow 0 inherits Window, so
// a windowed first pass windows its refinement passes too — and still
// matches the serial baseline.
func TestMultiPassRefineWindowInherits(t *testing.T) {
	const n, k = 2000, 8
	g, target, sizes := lfrFixture(t, n, k)
	ref := multiPassWith(t, g, target, sizes, 2, 1, 1, 1)
	got := multiPassWith(t, g, target, sizes, 2, 128, 0, 0)
	for v := range ref {
		if got[v] != ref[v] {
			t.Fatalf("inherited refine window: node %d assigned %d, serial %d", v, got[v], ref[v])
		}
	}
	// Negative RefineWindow pins refinement serial even when the first
	// pass is windowed.
	got = multiPassWith(t, g, target, sizes, 2, 128, -1, 0)
	for v := range ref {
		if got[v] != ref[v] {
			t.Fatalf("serial refine under windowed first pass: node %d assigned %d, serial %d", v, got[v], ref[v])
		}
	}
}

// TestMultiPassWindowedStress exercises the refinement scan/commit loop
// under the race detector: concurrent independent multi-pass partitions
// at staggered refinement windows, all of which must agree with the
// serial baseline.
func TestMultiPassWindowedStress(t *testing.T) {
	const n, k = 2000, 8
	g, target, sizes := lfrFixture(t, n, k)
	ref := multiPassWith(t, g, target, sizes, 2, 1, 1, 1)

	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(refineWindow int) {
			defer wg.Done()
			got := multiPassWith(t, g, target, sizes, 2, 128, refineWindow, 0)
			for v := range ref {
				if got[v] != ref[v] {
					t.Errorf("refine window=%d: node %d assigned %d, serial %d", refineWindow, v, got[v], ref[v])
					return
				}
			}
		}(2 + r*37)
	}
	wg.Wait()
}

// isolatedFixture builds a graph whose second half is isolated nodes,
// with total capacity exactly n — so late isolated placements exhaust
// group quotas and exercise the first-feasible fallback scan.
func isolatedFixture(t *testing.T, n int64, k int) (*graph.Graph, *stats.Joint, []int64) {
	t.Helper()
	et := table.NewEdgeTable("iso", n)
	half := n / 2
	for v := int64(1); v < half; v++ {
		et.Add(v-1, v) // a path through the first half
		et.Add(v%7, v) // plus some chords for group structure
	}
	g, err := graph.FromEdgeTable(et, n)
	if err != nil {
		t.Fatal(err)
	}
	// Tight, skewed capacities summing exactly to n.
	sizes := make([]int64, k)
	rem := n
	for i := 0; i < k-1; i++ {
		sizes[i] = rem / 3
		rem -= sizes[i]
	}
	sizes[k-1] = rem
	target, err := stats.HomophilyJoint(sizes, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	return g, target, sizes
}

// TestMultiPassIsolatedQuotaDeterminism: with tight quotas and many
// isolated nodes, the refinement fallback (keep previous group, else
// first feasible group) must resolve identically at every refinement
// window and worker count — the first-feasible scan runs in the
// sequential commit phase, so worker count can never reorder it.
func TestMultiPassIsolatedQuotaDeterminism(t *testing.T) {
	const n, k = 1200, 6
	g, target, sizes := isolatedFixture(t, n, k)
	ref := multiPassWith(t, g, target, sizes, 3, 1, 1, 1)

	counts := make([]int64, k)
	for _, a := range ref {
		counts[a]++
	}
	for i := range sizes {
		if counts[i] > sizes[i] {
			t.Fatalf("group %d over capacity: %d > %d", i, counts[i], sizes[i])
		}
	}
	for _, rw := range []int{7, 64, int(n)} {
		for _, workers := range []int{1, 0} {
			got := multiPassWith(t, g, target, sizes, 3, 64, rw, workers)
			for v := range ref {
				if got[v] != ref[v] {
					t.Fatalf("refine window=%d workers=%d: node %d assigned %d, serial %d",
						rw, workers, v, got[v], ref[v])
				}
			}
		}
	}
}

// TestMultiPassPassTimes: PartitionMultiPass must record one wall-time
// entry per streaming pass (initial + each refinement), resetting
// between calls.
func TestMultiPassPassTimes(t *testing.T) {
	g, target, sizes := lfrFixture(t, 1000, 4)
	part, err := NewSBMPart(target, sizes)
	if err != nil {
		t.Fatal(err)
	}
	part.Seed = 7
	if _, err := part.PartitionMultiPass(g, RandomOrder(g.N(), 3), 2); err != nil {
		t.Fatal(err)
	}
	if len(part.PassTimes) != 3 {
		t.Fatalf("PassTimes has %d entries after 1+2 passes, want 3", len(part.PassTimes))
	}
	if _, err := part.PartitionMultiPass(g, RandomOrder(g.N(), 3), 0); err != nil {
		t.Fatal(err)
	}
	if len(part.PassTimes) != 1 {
		t.Fatalf("PassTimes has %d entries after a 0-refinement call, want 1", len(part.PassTimes))
	}
}

// TestMatchPropertyRefinedWindowedIdentical: the end-to-end matching
// operator with refinement passes must hand out identical mappings
// whatever the window/refine-window/worker setting, and must report
// per-pass timings.
func TestMatchPropertyRefinedWindowedIdentical(t *testing.T) {
	const n, k = 2000, 4
	et := lfrEdgeTable(t, n)
	sizes := make([]int64, k)
	for i := range sizes {
		sizes[i] = n / int64(k)
	}
	target, err := stats.HomophilyJoint(sizes, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	rowLabels := make([]int64, n)
	idx := int64(0)
	for v, sz := range sizes {
		for c := int64(0); c < sz; c++ {
			rowLabels[idx] = int64(v)
			idx++
		}
	}
	run := func(window, refineWindow, workers int) *Result {
		opt := DefaultOptions(77)
		opt.Passes = 2
		opt.Window = window
		opt.RefineWindow = refineWindow
		opt.Workers = workers
		res, err := MatchProperty(et, n, rowLabels, target, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(-1, -1, 1) // fully serial
	if len(ref.PassTimes) != 3 {
		t.Fatalf("PassTimes has %d entries, want 3 (stream + 2 refinements)", len(ref.PassTimes))
	}
	for _, cfg := range []struct{ w, rw, workers int }{
		{64, 0, 0},
		{0, 64, 0},
		{-1, 512, 0},
		{0, 0, 0},
	} {
		got := run(cfg.w, cfg.rw, cfg.workers)
		for v := range ref.Mapping {
			if got.Mapping[v] != ref.Mapping[v] {
				t.Fatalf("window=%d refine=%d: mapping[%d] = %d, serial %d",
					cfg.w, cfg.rw, v, got.Mapping[v], ref.Mapping[v])
			}
		}
	}
}

// lfrEdgeTable generates an LFR edge table for end-to-end matching
// tests (lfrFixture only returns the CSR graph).
func lfrEdgeTable(t testing.TB, n int64) *table.EdgeTable {
	t.Helper()
	et, err := sgen.NewLFR(23).Run(n)
	if err != nil {
		t.Fatal(err)
	}
	return et
}

func BenchmarkMultiPassSerial(b *testing.B) {
	g, target, sizes := lfrFixture(b, 30000, 16)
	order := RandomOrder(g.N(), 5)
	part, _ := NewSBMPart(target, sizes)
	part.Seed = 99
	part.Window = 1
	part.RefineWindow = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := part.PartitionMultiPass(g, order, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiPassWindowed(b *testing.B) {
	g, target, sizes := lfrFixture(b, 30000, 16)
	order := RandomOrder(g.N(), 5)
	part, _ := NewSBMPart(target, sizes)
	part.Seed = 99
	part.Window = DefaultWindow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := part.PartitionMultiPass(g, order, 2); err != nil {
			b.Fatal(err)
		}
	}
}
