package match

import (
	"fmt"
	"sort"

	"datasynth/internal/stats"
	"datasynth/internal/table"
	"datasynth/internal/xrand"
)

// Fused operators — the paper's future-work proposal implemented:
// "special cases of one-to-one and one-to-many edges could be
// efficiently handled by more specific and efficient operators. These
// would generate both the property values and the graph structure at
// the same time, which would boost performance allow reproducing
// strict constraints reliably."
//
// Instead of generating an anonymous structure and then streaming it
// through SBM-Part (greedy, approximate), the fused operators *choose
// the endpoints directly* from the target joint distribution. For 1→1
// and 1→* edges this is possible because every head attaches
// independently, so the joint P(X,Y) can be realised cell by cell with
// largest-remainder rounding: the observed distribution matches the
// target up to integer rounding — a strict guarantee the streaming
// matcher cannot give.

// FusedOneToMany generates a correlated 1→* edge table directly from
// the target: for quota-many edges per value pair (X=a of the tail
// property, Y=b of the head property), a tail row with value a is
// chosen (with replacement, pseudo-randomly) and a fresh head id is
// minted and recorded with value b.
//
// Inputs: tailLabels (the tail PT reduced to value indices, kt values),
// the desired edge count m, and the target joint (kt×kh). Returns the
// edge table (tail = tail row id, head = dense fresh id in [0, m)) and
// headLabels, the value index of every minted head.
func FusedOneToMany(tailLabels []int64, kt, kh int, m int64, target *BipartiteTarget, seed uint64) (*table.EdgeTable, []int64, error) {
	if m <= 0 {
		return nil, nil, fmt.Errorf("match: fused 1-* needs m > 0, got %d", m)
	}
	if target.KT != kt || target.KH != kh {
		return nil, nil, fmt.Errorf("match: fused 1-* target is %dx%d, want %dx%d", target.KT, target.KH, kt, kh)
	}
	if err := target.Validate(); err != nil {
		return nil, nil, err
	}
	// Bucket tail rows by value.
	buckets := make([][]int64, kt)
	for r, l := range tailLabels {
		if l < 0 || l >= int64(kt) {
			return nil, nil, fmt.Errorf("match: tail row %d has label %d outside [0,%d)", r, l, kt)
		}
		buckets[l] = append(buckets[l], int64(r))
	}
	// Integer quotas per cell by largest remainder.
	quotas, err := roundQuotas(target.P, m)
	if err != nil {
		return nil, nil, err
	}
	for a := 0; a < kt; a++ {
		var rowQuota int64
		for b := 0; b < kh; b++ {
			rowQuota += quotas[a*kh+b]
		}
		if rowQuota > 0 && len(buckets[a]) == 0 {
			return nil, nil, fmt.Errorf("match: target needs tail value %d but no tail row has it", a)
		}
	}
	et := table.NewEdgeTable("fused-1-*", m)
	headLabels := make([]int64, 0, m)
	s := xrand.NewStream(seed).DeriveStream("fused-1-*")
	var draw int64
	var head int64
	// Emit cells in deterministic order; interleaving is unnecessary
	// because head ids are fresh and the joint is exact by construction.
	for a := 0; a < kt; a++ {
		for b := 0; b < kh; b++ {
			q := quotas[a*kh+b]
			for e := int64(0); e < q; e++ {
				tail := buckets[a][s.Intn(draw, int64(len(buckets[a])))]
				draw++
				et.Add(tail, head)
				headLabels = append(headLabels, int64(b))
				head++
			}
		}
	}
	return et, headLabels, nil
}

// FusedOneToOne generates a correlated perfect matching between two
// labelled domains of equal size n: the number of (a,b) pairs equals
// the target joint scaled to n, up to rounding and the per-value
// supply of each side. Every tail and head row is used exactly once
// when supplies allow; a residual maximum of min(supply) pairs is
// matched greedily otherwise.
func FusedOneToOne(tailLabels, headLabels []int64, kt, kh int, target *BipartiteTarget, seed uint64) (*table.EdgeTable, error) {
	if len(tailLabels) != len(headLabels) {
		return nil, fmt.Errorf("match: fused 1-1 needs equal domains, got %d/%d", len(tailLabels), len(headLabels))
	}
	if err := target.Validate(); err != nil {
		return nil, err
	}
	n := int64(len(tailLabels))
	if n == 0 {
		return table.NewEdgeTable("fused-1-1", 0), nil
	}
	tailBuckets := make([][]int64, kt)
	for r, l := range tailLabels {
		if l < 0 || l >= int64(kt) {
			return nil, fmt.Errorf("match: tail row %d has label %d outside [0,%d)", r, l, kt)
		}
		tailBuckets[l] = append(tailBuckets[l], int64(r))
	}
	headBuckets := make([][]int64, kh)
	for r, l := range headLabels {
		if l < 0 || l >= int64(kh) {
			return nil, fmt.Errorf("match: head row %d has label %d outside [0,%d)", r, l, kh)
		}
		headBuckets[l] = append(headBuckets[l], int64(r))
	}
	// Shuffle buckets deterministically so pairing carries no id bias.
	s := xrand.NewStream(seed)
	shuffle := func(b []int64, label string) {
		sub := s.DeriveStream(label)
		for i := len(b) - 1; i > 0; i-- {
			j := sub.Intn(int64(i), int64(i)+1)
			b[i], b[j] = b[j], b[i]
		}
	}
	for a := range tailBuckets {
		shuffle(tailBuckets[a], fmt.Sprintf("t%d", a))
	}
	for b := range headBuckets {
		shuffle(headBuckets[b], fmt.Sprintf("h%d", b))
	}
	quotas, err := roundQuotas(target.P, n)
	if err != nil {
		return nil, err
	}
	et := table.NewEdgeTable("fused-1-1", n)
	// First pass: satisfy quotas subject to supplies.
	for a := 0; a < kt; a++ {
		for b := 0; b < kh; b++ {
			q := quotas[a*kh+b]
			for q > 0 && len(tailBuckets[a]) > 0 && len(headBuckets[b]) > 0 {
				et.Add(pop(&tailBuckets[a]), pop(&headBuckets[b]))
				q--
			}
		}
	}
	// Second pass: pair any residual rows (supply/quota mismatch).
	var residT, residH []int64
	for a := range tailBuckets {
		residT = append(residT, tailBuckets[a]...)
	}
	for b := range headBuckets {
		residH = append(residH, headBuckets[b]...)
	}
	for i := range residT {
		et.Add(residT[i], residH[i])
	}
	return et, nil
}

func pop(b *[]int64) int64 {
	v := (*b)[len(*b)-1]
	*b = (*b)[:len(*b)-1]
	return v
}

// roundQuotas converts a probability vector into integer counts that
// sum exactly to total, by largest-remainder rounding.
func roundQuotas(probs []float64, total int64) ([]int64, error) {
	quotas := make([]int64, len(probs))
	type frac struct {
		idx int
		f   float64
	}
	fracs := make([]frac, len(probs))
	var assigned int64
	for i, p := range probs {
		if p < 0 {
			return nil, fmt.Errorf("match: negative probability at cell %d", i)
		}
		exact := p * float64(total)
		quotas[i] = int64(exact)
		fracs[i] = frac{idx: i, f: exact - float64(quotas[i])}
		assigned += quotas[i]
	}
	sort.Slice(fracs, func(a, b int) bool {
		if fracs[a].f != fracs[b].f {
			return fracs[a].f > fracs[b].f
		}
		return fracs[a].idx < fracs[b].idx
	})
	for i := 0; assigned < total && len(fracs) > 0; i++ {
		quotas[fracs[i%len(fracs)].idx]++
		assigned++
	}
	return quotas, nil
}

// FusedQuality verifies a fused result: the L1 distance between the
// target and the observed joint of (et, tailLabels, headLabels). For
// fused operators this is bounded by rounding alone — O(cells/total).
func FusedQuality(et *table.EdgeTable, tailLabels, headLabels []int64, target *BipartiteTarget) (float64, error) {
	obs, err := EmpiricalBipartite(et, tailLabels, headLabels, target.KT, target.KH)
	if err != nil {
		return 0, err
	}
	var l1 float64
	for i := range target.P {
		d := target.P[i] - obs.P[i]
		if d < 0 {
			d = -d
		}
		l1 += d
	}
	return l1, nil
}

// ensure stats import is used (joint types referenced in docs).
var _ = stats.NewJoint
