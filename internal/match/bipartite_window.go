package match

import (
	"fmt"

	"datasynth/internal/xrand"
)

// Windowed-parallel bipartite SBM-Part: the same frozen-snapshot scan /
// sequential commit split as the monopartite partitioner (window.go)
// and the re-streaming refinement passes, applied to the two-domain
// stream. The combined order interleaves tail nodes (x < nTail) and
// head nodes (x >= nTail); a node's neighbourhood scan classifies its
// *opposite-side* neighbours against the assignment snapshot as of the
// window start — settled neighbours reduce to (group, count, first
// scan position) triples, pending ones are recorded verbatim — and the
// sequential commit patches the pendings against the live assignment,
// re-sorts the touched groups by first scan position (floating-point
// accumulation makes the serial first-occurrence order significant),
// and places the node with the exact serial scoring inputs. The
// committed matching is therefore byte-identical to the serial stream
// at every window size and worker count.

// bipState is the streaming state of one bipartite matching run,
// shared by the serial and windowed paths so both execute the
// identical placement rule.
type bipState struct {
	nTail            int64
	kt, kh           int
	tailAdj, headAdj *adj
	tw               []float64 // target P, row-major kt×kh
	cur              []float64 // placed-edge counts per (tail,head) group pair
	placedEdges      float64
	assignT, assignH []int64
	usedT, usedH     []int64
	capT, capH       []int64
	order            []int64 // combined stream: tails then heads offset by nTail
	balance          bool
	rnd              xrand.Stream
}

// runSerial places the combined stream one node at a time — the
// reference semantics every windowed configuration must reproduce.
func (s *bipState) runSerial() error {
	kt, kh := s.kt, s.kh
	cntH := make([]int64, kh)
	cntT := make([]int64, kt)
	var touched []int
	// Scratch for pickGroup's per-placement scores, sized for either
	// side and reused across the whole stream; the delta closures are
	// likewise hoisted out of the loop (they read the loop state through
	// captured variables), so placements allocate nothing per node.
	scratch := make([]float64, max(kt, kh))
	var scale float64
	tailDelta := func(t int) float64 {
		var d float64
		for _, j := range touched {
			c := float64(cntH[j])
			a := s.cur[t*kh+j] - scale*s.tw[t*kh+j]
			d += c * (2*a + c)
		}
		return d
	}
	headDelta := func(h int) float64 {
		var d float64
		for _, i := range touched {
			c := float64(cntT[i])
			a := s.cur[i*kh+h] - scale*s.tw[i*kh+h]
			d += c * (2*a + c)
		}
		return d
	}

	for _, x := range s.order {
		if x < s.nTail {
			v := x
			// Count placed head neighbours per head group.
			touched = touched[:0]
			for _, u := range s.tailAdj.neighbors(v) {
				if a := s.assignH[u]; a != Unassigned {
					if cntH[a] == 0 {
						touched = append(touched, int(a))
					}
					cntH[a]++
				}
			}
			var cv float64
			for _, j := range touched {
				cv += float64(cntH[j])
			}
			scale = s.placedEdges + cv
			best := pickGroup(kt, s.usedT, s.capT, tailDelta, len(touched) > 0, s.balance, s.rnd, x, scratch)
			if best < 0 {
				return fmt.Errorf("match: no feasible tail group for node %d", v)
			}
			for _, j := range touched {
				s.placedEdges += float64(cntH[j])
				s.cur[int(best)*kh+j] += float64(cntH[j])
				cntH[j] = 0
			}
			s.assignT[v] = best
			s.usedT[best]++
		} else {
			v := x - s.nTail
			touched = touched[:0]
			for _, u := range s.headAdj.neighbors(v) {
				if a := s.assignT[u]; a != Unassigned {
					if cntT[a] == 0 {
						touched = append(touched, int(a))
					}
					cntT[a]++
				}
			}
			var cv float64
			for _, i := range touched {
				cv += float64(cntT[i])
			}
			scale = s.placedEdges + cv
			best := pickGroup(kh, s.usedH, s.capH, headDelta, len(touched) > 0, s.balance, s.rnd, x, scratch)
			if best < 0 {
				return fmt.Errorf("match: no feasible head group for node %d", v)
			}
			for _, i := range touched {
				s.placedEdges += float64(cntT[i])
				s.cur[i*kh+int(best)] += float64(cntT[i])
				cntT[i] = 0
			}
			s.assignH[v] = best
			s.usedH[best]++
		}
	}
	return nil
}

// runWindowed processes the combined stream in windows: parallel scans
// against the frozen snapshot, then a sequential stream-order commit.
func (s *bipState) runWindowed(window, workers int) error {
	n := int64(len(s.order))
	kt, kh := s.kt, s.kh
	kmax := max(kt, kh)
	// A window can never usefully exceed the stream; clamping keeps the
	// per-window scratch proportional to the graph even when a caller
	// passes an oversized knob ("whole stream" = window >= n).
	if int64(window) > n {
		window = int(n)
		if window < 2 {
			window = 2
		}
	}
	if workers <= 0 {
		workers = defaultWorkers()
	}
	if workers > window {
		workers = window
	}

	// Commit-side scratch: per-side counts and first-scan positions,
	// rebuilt per node from the scan triples.
	cntH := make([]int64, kh)
	cntT := make([]int64, kt)
	posH := make([]int32, kh)
	posT := make([]int32, kt)
	touched := make([]int, 0, kmax)
	scratch := make([]float64, kmax)
	var scale float64
	tailDelta := func(t int) float64 {
		var d float64
		for _, j := range touched {
			c := float64(cntH[j])
			a := s.cur[t*kh+j] - scale*s.tw[t*kh+j]
			d += c * (2*a + c)
		}
		return d
	}
	headDelta := func(h int) float64 {
		var d float64
		for _, i := range touched {
			c := float64(cntT[i])
			a := s.cur[i*kh+h] - scale*s.tw[i*kh+h]
			d += c * (2*a + c)
		}
		return d
	}

	// Per-window scratch, reused across windows. Each node i of the
	// window owns the arena range [scanOff[i], scanOff[i+1]) — disjoint
	// by construction, so scan workers never write the same cell.
	scanOff := make([]int64, window+1)
	preLen := make([]int32, window)  // settled (group,count,pos) triples per node
	pendLen := make([]int32, window) // pending neighbours per node
	var preGroup []int32             // arena: settled group ids
	var preCount []int32             // arena: settled per-group counts
	var prePos []int32               // arena: settled first scan positions
	var pendBuf []int64              // arena: pending neighbour ids
	var pendPos []int32              // arena: pending scan positions
	// Shared scan scratch for the single-worker case, sized for either
	// side (scan zeroes its counts after flushing each node).
	scanCnt := make([]int64, kmax)
	scanPos := make([]int32, kmax)
	scanTl := make([]int32, 0, kmax)

	for w0 := int64(0); w0 < n; w0 += int64(window) {
		w1 := w0 + int64(window)
		if w1 > n {
			w1 = n
		}
		wn := int(w1 - w0)
		win := s.order[w0:w1]

		scanOff[0] = 0
		for i := 0; i < wn; i++ {
			x := win[i]
			var deg int64
			if x < s.nTail {
				deg = s.tailAdj.degree(x)
			} else {
				deg = s.headAdj.degree(x - s.nTail)
			}
			scanOff[i+1] = scanOff[i] + deg
		}
		if need := scanOff[wn]; int64(cap(pendBuf)) < need {
			pendBuf = make([]int64, need)
			pendPos = make([]int32, need)
			preGroup = make([]int32, need)
			preCount = make([]int32, need)
			prePos = make([]int32, need)
		}

		// Scan phase: static contiguous chunks; every worker classifies
		// its nodes' opposite-side neighbourhoods against the frozen
		// assignment. Assignments are append-only within the run, so a
		// neighbour is either settled (group final) or pending (can only
		// be placed by an earlier commit of this same window).
		scan := func(lo, hi int, cnt []int64, posLoc []int32, tl []int32) {
			for i := lo; i < hi; i++ {
				x := win[i]
				base := scanOff[i]
				tl = tl[:0]
				var npend int64
				var nbrs []int64
				var opp []int64
				if x < s.nTail {
					nbrs = s.tailAdj.neighbors(x)
					opp = s.assignH
				} else {
					nbrs = s.headAdj.neighbors(x - s.nTail)
					opp = s.assignT
				}
				for si, u := range nbrs {
					if a := opp[u]; a != Unassigned {
						if cnt[a] == 0 {
							posLoc[a] = int32(si)
							tl = append(tl, int32(a))
						}
						cnt[a]++
					} else {
						pendBuf[base+npend] = u
						pendPos[base+npend] = int32(si)
						npend++
					}
				}
				for j, a := range tl {
					preGroup[base+int64(j)] = a
					preCount[base+int64(j)] = int32(cnt[a])
					prePos[base+int64(j)] = posLoc[a]
					cnt[a] = 0
				}
				preLen[i] = int32(len(tl))
				pendLen[i] = int32(npend)
			}
		}
		if workers == 1 || wn == 1 {
			scan(0, wn, scanCnt, scanPos, scanTl)
		} else {
			runScanChunks(wn, workers, kmax, scan)
		}

		// Commit phase: sequential, stream order, against live state.
		for i := 0; i < wn; i++ {
			x := win[i]
			base := scanOff[i]
			touched = touched[:0]
			if x < s.nTail {
				for j := int64(0); j < int64(preLen[i]); j++ {
					a := int64(preGroup[base+j])
					cntH[a] = int64(preCount[base+j])
					posH[a] = prePos[base+j]
					touched = append(touched, int(a))
				}
				// Patch in pending head neighbours placed earlier in
				// this window.
				for j := int64(0); j < int64(pendLen[i]); j++ {
					a := s.assignH[pendBuf[base+j]]
					if a == Unassigned {
						continue
					}
					if cntH[a] == 0 {
						posH[a] = pendPos[base+j]
						touched = append(touched, int(a))
					} else if sp := pendPos[base+j]; sp < posH[a] {
						posH[a] = sp
					}
					cntH[a]++
				}
				sortTouchedByPos(touched, posH)

				var cv float64
				for _, j := range touched {
					cv += float64(cntH[j])
				}
				scale = s.placedEdges + cv
				best := pickGroup(kt, s.usedT, s.capT, tailDelta, len(touched) > 0, s.balance, s.rnd, x, scratch)
				if best < 0 {
					return fmt.Errorf("match: no feasible tail group for node %d", x)
				}
				for _, j := range touched {
					s.placedEdges += float64(cntH[j])
					s.cur[int(best)*kh+j] += float64(cntH[j])
					cntH[j] = 0
				}
				s.assignT[x] = best
				s.usedT[best]++
			} else {
				v := x - s.nTail
				for j := int64(0); j < int64(preLen[i]); j++ {
					a := int64(preGroup[base+j])
					cntT[a] = int64(preCount[base+j])
					posT[a] = prePos[base+j]
					touched = append(touched, int(a))
				}
				for j := int64(0); j < int64(pendLen[i]); j++ {
					a := s.assignT[pendBuf[base+j]]
					if a == Unassigned {
						continue
					}
					if cntT[a] == 0 {
						posT[a] = pendPos[base+j]
						touched = append(touched, int(a))
					} else if sp := pendPos[base+j]; sp < posT[a] {
						posT[a] = sp
					}
					cntT[a]++
				}
				sortTouchedByPos(touched, posT)

				var cv float64
				for _, g := range touched {
					cv += float64(cntT[g])
				}
				scale = s.placedEdges + cv
				best := pickGroup(kh, s.usedH, s.capH, headDelta, len(touched) > 0, s.balance, s.rnd, x, scratch)
				if best < 0 {
					return fmt.Errorf("match: no feasible head group for node %d", v)
				}
				for _, g := range touched {
					s.placedEdges += float64(cntT[g])
					s.cur[g*kh+int(best)] += float64(cntT[g])
					cntT[g] = 0
				}
				s.assignH[v] = best
				s.usedH[best]++
			}
		}
	}
	return nil
}

// degree returns one side's neighbour count.
func (a *adj) degree(v int64) int64 { return a.offs[v+1] - a.offs[v] }
