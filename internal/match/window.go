package match

import (
	"fmt"
	"runtime"

	"datasynth/internal/graph"
	"datasynth/internal/par"
	"datasynth/internal/xrand"
)

// Windowed-parallel SBM-Part. The serial streaming partitioner places
// one node at a time; the expensive part of each placement is the
// neighbourhood scan (O(deg(v)) over the CSR adjacency), while the
// placement decision itself is O(k·|touched|). This mode processes the
// stream in fixed-size windows:
//
//  1. Scan phase (parallel): every node of the window is scanned
//     concurrently against a frozen snapshot of the partial assignment
//     — the state as of the window start. Assignments are append-only
//     (a placed node is never moved within a pass), so each neighbour
//     is classified either as *settled* (its group is already final)
//     or *pending* (unassigned at the snapshot; it can only become
//     assigned by an earlier commit of this same window). Settled
//     neighbours are reduced to per-group counts; pending neighbours
//     are recorded verbatim with their scan positions.
//  2. Commit phase (sequential, stream order): each node's snapshot
//     counts are patched with the pending neighbours that did get
//     placed earlier in the window, which reconstructs *exactly* the
//     neighbour-group counts the serial stream would observe. Because
//     the serial code visits groups in first-occurrence order — and
//     floating-point accumulation makes that order significant — the
//     touched list is re-sorted by each group's first scan position
//     before scoring. The placement decision then runs against the
//     live matrix, capacities and placed-edge count: the same inputs,
//     summed in the same order, as the serial code.
//
// The committed partition is therefore byte-identical to the serial
// stream at every window size and worker count; only the wall-clock
// cost of the neighbourhood scans is amortised across cores
// (restreamed-LDG style speculation, with the commit loop as the
// sequencer).
func (p *SBMPart) partitionWindowed(g *graph.Graph, order []int64, window int) ([]int64, error) {
	n := g.N()
	k := p.K
	// A window can never usefully exceed the stream; clamping keeps the
	// per-window scratch proportional to the graph even when a caller
	// passes an oversized knob ("whole stream" = window >= n).
	if int64(window) > n {
		window = int(n)
		if window < 2 {
			window = 2
		}
	}

	targetP := p.targetMatrix()
	m := float64(g.M())
	cur := make([]float64, k*k)
	var placedEdges float64

	assign := make([]int64, n)
	for i := range assign {
		assign[i] = Unassigned
	}
	used := make([]int64, k)
	cnt := make([]int64, k)
	pos := make([]int32, k) // first scan position per touched group
	touched := make([]int, 0, k)
	seenOrder := make([]bool, n)
	rnd := xrand.NewStream(p.Seed).DeriveStream("sbm-unconstrained")

	workers := p.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	if workers > window {
		workers = window
	}

	// Per-window scratch, reused across windows. Each node i of the
	// window owns the arena range [scanOff[i], scanOff[i+1]) — disjoint
	// by construction, so scan workers never write the same cell.
	scanOff := make([]int64, window+1)
	preLen := make([]int32, window)  // settled (group,count,pos) triples per node
	pendLen := make([]int32, window) // pending neighbours per node
	var preGroup []int32             // arena: settled group ids
	var preCount []int32             // arena: settled per-group counts
	var prePos []int32               // arena: settled first scan positions
	var pendBuf []int64              // arena: pending neighbour ids
	var pendPos []int32              // arena: pending scan positions

	for w0 := int64(0); w0 < n; w0 += int64(window) {
		w1 := w0 + int64(window)
		if w1 > n {
			w1 = n
		}
		wn := int(w1 - w0)
		win := order[w0:w1]

		// Stream-order validation, exactly as the serial loop performs it.
		for _, v := range win {
			if v < 0 || v >= n || seenOrder[v] {
				return nil, fmt.Errorf("match: order is not a permutation (node %d)", v)
			}
			seenOrder[v] = true
		}

		scanOff[0] = 0
		for i := 0; i < wn; i++ {
			scanOff[i+1] = scanOff[i] + g.Degree(win[i])
		}
		if need := scanOff[wn]; int64(cap(pendBuf)) < need {
			pendBuf = make([]int64, need)
			pendPos = make([]int32, need)
			preGroup = make([]int32, need)
			preCount = make([]int32, need)
			prePos = make([]int32, need)
		}

		// Scan phase: static contiguous chunks; every worker classifies
		// its nodes' neighbourhoods against the frozen assignment.
		scan := func(lo, hi int, cnt []int64, posLoc []int32, tl []int32) {
			for i := lo; i < hi; i++ {
				v := win[i]
				base := scanOff[i]
				tl = tl[:0]
				var npend int64
				for si, u := range g.Neighbors(v) {
					if u == v {
						continue
					}
					if a := assign[u]; a != Unassigned {
						if cnt[a] == 0 {
							posLoc[a] = int32(si)
							tl = append(tl, int32(a))
						}
						cnt[a]++
					} else {
						pendBuf[base+npend] = u
						pendPos[base+npend] = int32(si)
						npend++
					}
				}
				for j, a := range tl {
					preGroup[base+int64(j)] = a
					preCount[base+int64(j)] = int32(cnt[a])
					prePos[base+int64(j)] = posLoc[a]
					cnt[a] = 0
				}
				preLen[i] = int32(len(tl))
				pendLen[i] = int32(npend)
			}
		}
		if workers == 1 || wn == 1 {
			scan(0, wn, cnt, pos, make([]int32, 0, k))
		} else {
			runScanChunks(wn, workers, k, scan)
		}

		// Commit phase: sequential, stream order, against live state.
		for i := 0; i < wn; i++ {
			v := win[i]
			base := scanOff[i]
			touched = touched[:0]
			for j := int64(0); j < int64(preLen[i]); j++ {
				a := int64(preGroup[base+j])
				cnt[a] = int64(preCount[base+j])
				pos[a] = prePos[base+j]
				touched = append(touched, int(a))
			}
			// Patch in pending neighbours placed earlier in this window.
			for j := int64(0); j < int64(pendLen[i]); j++ {
				a := assign[pendBuf[base+j]]
				if a == Unassigned {
					continue
				}
				if cnt[a] == 0 {
					pos[a] = pendPos[base+j]
					touched = append(touched, int(a))
				} else if sp := pendPos[base+j]; sp < pos[a] {
					pos[a] = sp
				}
				cnt[a]++
			}
			sortTouchedByPos(touched, pos)

			best := int64(-1)
			if len(touched) == 0 {
				best = p.placeUnconstrained(used, rnd, v)
			} else {
				var cv float64
				for _, j := range touched {
					cv += float64(cnt[j])
				}
				scale := placedEdges + cv
				if p.FinalTarget {
					scale = m
				}
				best = p.placeByFrobenius(cur, targetP, scale, used, cnt, touched)
			}
			if best < 0 {
				return nil, fmt.Errorf("match: no feasible group for node %d", v)
			}

			for _, j := range touched {
				c := float64(cnt[j])
				placedEdges += c
				cur[best*int64(k)+int64(j)] += c
				if int64(j) != best {
					cur[int64(j)*int64(k)+best] += c
				}
				cnt[j] = 0
			}
			assign[v] = best
			used[best]++
		}
	}
	return assign, nil
}

// defaultWorkers resolves a zero worker bound to the machine width.
func defaultWorkers() int { return runtime.NumCPU() }

// runScanChunks fans a window's scan phase across workers in static
// contiguous chunks; every worker owns private count/position/touched
// scratch, so concurrent scans share no mutable state. Both the first
// pass and the refinement passes dispatch their scans through here.
func runScanChunks(wn, workers, k int, scan func(lo, hi int, cnt []int64, pos []int32, tl []int32)) {
	if wn <= 0 {
		return
	}
	chunk := (wn + workers - 1) / workers
	nChunks := (wn + chunk - 1) / chunk
	par.Workers(nChunks, func(c int) {
		lo := c * chunk
		hi := lo + chunk
		if hi > wn {
			hi = wn
		}
		scan(lo, hi, make([]int64, k), make([]int32, k), make([]int32, 0, k))
	})
}

// sortTouchedByPos restores the serial first-occurrence group order
// after a windowed commit merged settled and pending neighbours:
// floating-point accumulation makes the group visit order significant,
// so every windowed path re-sorts by first scan position before
// scoring. Insertion sort: touched is at most min(k, deg) entries and
// nearly sorted already.
func sortTouchedByPos(touched []int, pos []int32) {
	for a := 1; a < len(touched); a++ {
		t := touched[a]
		b := a - 1
		for b >= 0 && pos[touched[b]] > pos[t] {
			touched[b+1] = touched[b]
			b--
		}
		touched[b+1] = t
	}
}
