// Package match implements DataSynth's property-to-node matching — the
// paper's central contribution (Section 4.2, "Graph Matching").
//
// The problem: given a Property Table p whose rows carry one of k
// values, a generated graph structure g, and a user-supplied joint
// probability distribution P(X,Y) over the values at the endpoints of a
// random edge, find a mapping f from structure-node ids to property-row
// ids such that the observed P'(X,Y) after applying f is as close as
// possible to P(X,Y).
//
// Following the paper, the problem is recast through the Stochastic
// Block Model as streaming graph partitioning: classify the nodes of g
// into k groups with sizes Q = {q_0,…,q_{k-1}} (the value frequencies
// in p) such that the inter-group edge counts approach the target
// matrix W derived from P(X,Y). The solver, SBM-Part, is a variation of
// the LDG streaming partitioner: a node arrives with its edges and is
// placed into the group t minimising the Frobenius distance
// ||W_t − W||²_F, balanced by the remaining capacity (1 − s_t/q_t).
package match

import (
	"fmt"
	"math"
	"time"

	"datasynth/internal/graph"
	"datasynth/internal/stats"
	"datasynth/internal/xrand"
)

// Unassigned marks a node not yet placed in a group.
const Unassigned = int64(-1)

// SBMPart is the paper's streaming property-to-node partitioner.
type SBMPart struct {
	// K is the number of distinct property values (groups).
	K int
	// Target is the desired joint distribution P(X,Y); it must be a
	// proper distribution over K values.
	Target *stats.Joint
	// Capacities holds q_t, the number of property rows carrying value
	// t; group t accepts at most Capacities[t] nodes.
	Capacities []int64
	// Balance applies LDG's remaining-capacity factor (1 − s_t/q_t) to
	// the placement score. The paper uses true; false is the pure-greedy
	// ablation.
	Balance bool
	// Seed drives the placement of nodes that arrive with no already-
	// placed neighbours: they are assigned pseudo-randomly, weighted by
	// remaining capacity, so no group soaks up all early-stream nodes.
	Seed uint64
	// Window enables the windowed-parallel streaming mode: the stream
	// is processed in fixed-size windows whose nodes are scanned
	// concurrently against a frozen snapshot of the partial assignment,
	// then committed sequentially in stream order (restreamed-LDG
	// style). The committed partition is byte-identical to the serial
	// stream at every window size and worker count; see
	// partitionWindowed. Window <= 1 keeps the fully serial path.
	Window int
	// Workers bounds the concurrency of the windowed scan phase;
	// 0 means NumCPU, 1 scans serially (still byte-identical).
	Workers int
	// RefineWindow sets the stream window of the re-streaming
	// refinement passes (PartitionMultiPass): 0 inherits Window,
	// <= 1 (or negative) keeps refinement fully serial, anything larger
	// runs each refinement pass through the same parallel scan /
	// sequential commit split as the first pass. The refined partition
	// is byte-identical at every window size and worker count; see
	// refinePassWindowed.
	RefineWindow int
	// FinalTarget scores placements against the *final* absolute target
	// matrix W = m·P instead of the default proportional target
	// W(s) = m_placed·P. The final-target variant reads the paper most
	// literally but suffers a systematic early-stream bias: while every
	// cell is far below its final count, the largest-deficit diagonal
	// cell attracts nodes regardless of their neighbourhoods. Scaling
	// the target with the number of edges placed so far keeps the
	// comparison in probability space — the space P(X,Y) is actually
	// defined in (the paper's footnote 1 notes absolute counts are used
	// merely "for convenience") — and is self-correcting. Kept as an
	// ablation switch; see BenchmarkAblationTarget.
	FinalTarget bool

	// PassTimes records the wall time of every streaming pass of the
	// most recent PartitionMultiPass call: index 0 is the initial
	// stream, each later entry one refinement pass. Reset at the start
	// of every call; callers plumb it into timing reports so the cost
	// of refinement is visible end to end.
	PassTimes []time.Duration

	// deltas is per-placement scratch for placeByFrobenius, hoisted out
	// of the per-node loop so streaming a graph allocates nothing per
	// node. Its presence makes an SBMPart instance safe for repeated
	// but not concurrent Partition calls.
	deltas []float64
}

// NewSBMPart returns a balanced SBM-Part instance.
func NewSBMPart(target *stats.Joint, capacities []int64) (*SBMPart, error) {
	if target == nil {
		return nil, fmt.Errorf("match: nil target distribution")
	}
	if len(capacities) != target.K {
		return nil, fmt.Errorf("match: %d capacities for %d values", len(capacities), target.K)
	}
	if err := target.Validate(); err != nil {
		return nil, fmt.Errorf("match: invalid target: %w", err)
	}
	for t, q := range capacities {
		if q < 0 {
			return nil, fmt.Errorf("match: negative capacity for group %d", t)
		}
	}
	return &SBMPart{K: target.K, Target: target, Capacities: capacities, Balance: true}, nil
}

// Partition streams the nodes of g in the given order and returns the
// group assignment of every node. The order must be a permutation of
// [0, g.N()); the total capacity must be at least g.N().
//
// Placement of node v:
//  1. Count v's already-placed neighbours per group: cnt[j]; the node
//     contributes cv = Σ_j cnt[j] new edges.
//  2. For each feasible group t (s_t < q_t) compute the change in
//     ||W_cur − W(s)||²_F caused by adding cnt[j] edges to cells (t,j),
//     where W(s) = (m_placed + cv)·P is the running proportional target
//     (or the final m·P when FinalTarget is set):
//     Δ_t = Σ_j cnt[j]·(2·(W_cur[t][j] − W(s)[t][j]) + cnt[j]).
//  3. Convert to a gain G_t = maxΔ − Δ_t and pick
//     argmax_t G_t·(1 − s_t/q_t)   (the LDG balancing rule);
//     without Balance, pick argmin_t Δ_t directly.
//     Ties break toward the group with the most remaining capacity.
//
// A node with no placed neighbours leaves the Frobenius norm unchanged
// for every t, so it is placed pseudo-randomly weighted by remaining
// capacity.
func (p *SBMPart) Partition(g *graph.Graph, order []int64) ([]int64, error) {
	n := g.N()
	if int64(len(order)) != n {
		return nil, fmt.Errorf("match: order has %d entries for %d nodes", len(order), n)
	}
	var totalCap int64
	for _, q := range p.Capacities {
		totalCap += q
	}
	if totalCap < n {
		return nil, fmt.Errorf("match: total capacity %d below node count %d", totalCap, n)
	}

	if p.Window > 1 {
		return p.partitionWindowed(g, order, p.Window)
	}

	k := p.K
	// Target probabilities and current inter-group edge counts, dense
	// k×k symmetric (both (i,j) and (j,i) mirrored so row scans are
	// contiguous). The probability matrix is scaled to the running edge
	// count at each placement (see the method comment).
	targetP := p.targetMatrix()
	m := float64(g.M())
	cur := make([]float64, k*k)
	var placedEdges float64

	assign := make([]int64, n)
	for i := range assign {
		assign[i] = Unassigned
	}
	used := make([]int64, k)

	cnt := make([]int64, k)      // neighbour count per group, sparse-reset
	touched := make([]int, 0, k) // groups with cnt > 0
	seenOrder := make([]bool, n)
	rnd := xrand.NewStream(p.Seed).DeriveStream("sbm-unconstrained")

	for _, v := range order {
		if v < 0 || v >= n || seenOrder[v] {
			return nil, fmt.Errorf("match: order is not a permutation (node %d)", v)
		}
		seenOrder[v] = true

		// 1. Neighbour groups.
		touched = touched[:0]
		for _, u := range g.Neighbors(v) {
			if u == v {
				continue
			}
			if a := assign[u]; a != Unassigned {
				if cnt[a] == 0 {
					touched = append(touched, int(a))
				}
				cnt[a]++
			}
		}

		best := int64(-1)
		if len(touched) == 0 {
			best = p.placeUnconstrained(used, rnd, v)
		} else {
			var cv float64
			for _, j := range touched {
				cv += float64(cnt[j])
			}
			scale := placedEdges + cv
			if p.FinalTarget {
				scale = m
			}
			best = p.placeByFrobenius(cur, targetP, scale, used, cnt, touched)
		}
		if best < 0 {
			return nil, fmt.Errorf("match: no feasible group for node %d", v)
		}

		// Commit: update current counts and capacity.
		for _, j := range touched {
			c := float64(cnt[j])
			placedEdges += c
			cur[best*int64(k)+int64(j)] += c
			if int64(j) != best {
				cur[int64(j)*int64(k)+best] += c
			}
			cnt[j] = 0
		}
		assign[v] = best
		used[best]++
	}
	return assign, nil
}

// targetMatrix expands the target joint into a dense k×k symmetric
// probability matrix (both (i,j) and (j,i) mirrored so row scans are
// contiguous).
func (p *SBMPart) targetMatrix() []float64 {
	k := p.K
	targetP := make([]float64, k*k)
	for a := 0; a < k; a++ {
		for b := a; b < k; b++ {
			w := p.Target.At(a, b)
			targetP[a*k+b] = w
			targetP[b*k+a] = w
		}
	}
	return targetP
}

// placeUnconstrained assigns a neighbour-less node pseudo-randomly,
// weighted by remaining capacity q_t − s_t. A deterministic argmax
// would funnel every early-stream node into the largest group, biasing
// the match; weighted sampling keeps expected fill proportional.
func (p *SBMPart) placeUnconstrained(used []int64, rnd xrand.Stream, v int64) int64 {
	var totalRem int64
	for t := 0; t < p.K; t++ {
		if r := p.Capacities[t] - used[t]; r > 0 {
			totalRem += r
		}
	}
	if totalRem <= 0 {
		return -1
	}
	pick := rnd.Intn(v, totalRem)
	for t := 0; t < p.K; t++ {
		if r := p.Capacities[t] - used[t]; r > 0 {
			if pick < r {
				return int64(t)
			}
			pick -= r
		}
	}
	return -1
}

// placeByFrobenius scores every feasible group by the incremental
// change in squared Frobenius distance against the scaled target and
// applies the balancing rule.
func (p *SBMPart) placeByFrobenius(cur, targetP []float64, scale float64, used, cnt []int64, touched []int) int64 {
	k := p.K
	// Pass 1: compute Δ_t for every group. The loops run j-major: both
	// matrices are symmetric, so row j holds the (t, j) cells for all t
	// contiguously, turning the hot inner loop into a unit-stride
	// fused-multiply-add over k cells — no gathers, no bounds checks.
	// The per-t accumulation still visits touched groups in the same
	// order as a t-major scan would, so the floating-point sums (and
	// with them every placement decision) are bit-identical. The
	// scratch lives on the instance: one allocation per partitioner,
	// not one per streamed node.
	if cap(p.deltas) < k {
		p.deltas = make([]float64, k)
	}
	deltas := p.deltas[:k]
	for t := range deltas {
		deltas[t] = 0
	}
	for _, j := range touched {
		c := float64(cnt[j])
		cj := cur[j*k : j*k+k]
		tj := targetP[j*k : j*k+k]
		for t, cv := range cj {
			a := cv - scale*tj[t]
			deltas[t] += c * (2*a + c)
		}
	}
	feasible := false
	maxDelta := math.Inf(-1)
	for t := 0; t < k; t++ {
		if used[t] >= p.Capacities[t] {
			continue
		}
		feasible = true
		if deltas[t] > maxDelta {
			maxDelta = deltas[t]
		}
	}
	if !feasible {
		return -1
	}
	best := int64(-1)
	if p.Balance {
		bestScore := math.Inf(-1)
		var bestRem float64
		for t := 0; t < k; t++ {
			if used[t] >= p.Capacities[t] {
				continue
			}
			rem := 1 - float64(used[t])/float64(p.Capacities[t])
			score := (maxDelta - deltas[t]) * rem
			if score > bestScore || (score == bestScore && rem > bestRem) {
				bestScore = score
				bestRem = rem
				best = int64(t)
			}
		}
	} else {
		bestDelta := math.Inf(1)
		var bestRem float64
		for t := 0; t < k; t++ {
			if used[t] >= p.Capacities[t] {
				continue
			}
			rem := 1 - float64(used[t])/float64(p.Capacities[t])
			if deltas[t] < bestDelta || (deltas[t] == bestDelta && rem > bestRem) {
				bestDelta = deltas[t]
				bestRem = rem
				best = int64(t)
			}
		}
	}
	return best
}
