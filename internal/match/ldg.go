package match

import (
	"fmt"
	"math"

	"datasynth/internal/graph"
)

// LDG is the Linear Deterministic Greedy streaming partitioner of
// Stanton and Kliot (KDD'12) that SBM-Part derives from. A node arrives
// with its edges and is placed in the partition holding most of its
// already-seen neighbours, weighted by the remaining capacity factor
// (1 − s_t/c_t).
//
// In this repository LDG plays two roles: the baseline SBM-Part is
// compared against, and the tool the paper's evaluation uses to create
// ground-truth value groups on LFR/RMAT graphs (Section 4.2).
type LDG struct {
	Capacities []int64
}

// NewLDG builds an LDG partitioner with per-partition capacities.
func NewLDG(capacities []int64) (*LDG, error) {
	if len(capacities) == 0 {
		return nil, fmt.Errorf("match: LDG needs at least one partition")
	}
	for i, c := range capacities {
		if c <= 0 {
			return nil, fmt.Errorf("match: LDG partition %d has non-positive capacity %d", i, c)
		}
	}
	return &LDG{Capacities: capacities}, nil
}

// Partition streams the nodes of g in the given order and returns each
// node's partition. Total capacity must cover g.N().
func (l *LDG) Partition(g *graph.Graph, order []int64) ([]int64, error) {
	n := g.N()
	if int64(len(order)) != n {
		return nil, fmt.Errorf("match: order has %d entries for %d nodes", len(order), n)
	}
	var total int64
	for _, c := range l.Capacities {
		total += c
	}
	if total < n {
		return nil, fmt.Errorf("match: total capacity %d below node count %d", total, n)
	}
	k := len(l.Capacities)
	assign := make([]int64, n)
	for i := range assign {
		assign[i] = Unassigned
	}
	used := make([]int64, k)
	neigh := make([]int64, k)
	touched := make([]int, 0, k)
	seen := make([]bool, n)

	for _, v := range order {
		if v < 0 || v >= n || seen[v] {
			return nil, fmt.Errorf("match: order is not a permutation (node %d)", v)
		}
		seen[v] = true
		touched = touched[:0]
		for _, u := range g.Neighbors(v) {
			if u == v {
				continue
			}
			if a := assign[u]; a != Unassigned {
				if neigh[a] == 0 {
					touched = append(touched, int(a))
				}
				neigh[a]++
			}
		}
		best := int64(-1)
		bestScore := math.Inf(-1)
		var bestRem float64
		for t := 0; t < k; t++ {
			if used[t] >= l.Capacities[t] {
				continue
			}
			rem := 1 - float64(used[t])/float64(l.Capacities[t])
			score := float64(neigh[t]) * rem
			if score > bestScore || (score == bestScore && rem > bestRem) {
				bestScore = score
				bestRem = rem
				best = int64(t)
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("match: no feasible partition for node %d", v)
		}
		assign[v] = best
		used[best]++
		for _, j := range touched {
			neigh[j] = 0
		}
	}
	return assign, nil
}
