package match

import (
	"fmt"
	"math"

	"datasynth/internal/stats"
	"datasynth/internal/table"
	"datasynth/internal/xrand"
)

// Bipartite SBM-Part: the paper notes that "a small variation of
// SBM-Part can also be applied to bi-partite graphs, since the SBM can
// model this type of graphs as well. If the bi-partite graph is between
// two different node types, the input would contain two PTs instead of
// one." This file implements that variation for edge types such as
// Person—creates—Message where both endpoint types carry a correlated
// property.

// BipartiteTarget is a joint distribution P(X,Y) where X is the tail
// property value (kT categories) and Y the head value (kH categories):
// the probability that a uniformly random edge carries values (X, Y).
// Unlike stats.Joint it is not symmetric.
type BipartiteTarget struct {
	KT, KH int
	P      []float64 // row-major kT×kH
}

// NewBipartiteTarget allocates a zero target.
func NewBipartiteTarget(kt, kh int) *BipartiteTarget {
	return &BipartiteTarget{KT: kt, KH: kh, P: make([]float64, kt*kh)}
}

// At returns P(X=a, Y=b).
func (t *BipartiteTarget) At(a, b int) float64 { return t.P[a*t.KH+b] }

// Set assigns P(X=a, Y=b).
func (t *BipartiteTarget) Set(a, b int, p float64) { t.P[a*t.KH+b] = p }

// Normalize rescales the mass to 1.
func (t *BipartiteTarget) Normalize() {
	var sum float64
	for _, p := range t.P {
		sum += p
	}
	if sum == 0 {
		return
	}
	for i := range t.P {
		t.P[i] /= sum
	}
}

// Validate checks the target is a proper distribution.
func (t *BipartiteTarget) Validate() error {
	var sum float64
	for i, p := range t.P {
		if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
			return fmt.Errorf("match: bipartite target cell %d = %v invalid", i, p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("match: bipartite target mass %v, want 1", sum)
	}
	return nil
}

// EmpiricalBipartite measures P(X,Y) from an edge table and endpoint
// labellings.
func EmpiricalBipartite(et *table.EdgeTable, tailLabels, headLabels []int64, kt, kh int) (*BipartiteTarget, error) {
	j := NewBipartiteTarget(kt, kh)
	m := et.Len()
	if m == 0 {
		return j, nil
	}
	w := 1 / float64(m)
	for e := int64(0); e < m; e++ {
		t, h := et.Tail[e], et.Head[e]
		if t < 0 || t >= int64(len(tailLabels)) || h < 0 || h >= int64(len(headLabels)) {
			return nil, fmt.Errorf("match: edge %d endpoints outside labellings", e)
		}
		lt, lh := tailLabels[t], headLabels[h]
		if lt < 0 || lt >= int64(kt) || lh < 0 || lh >= int64(kh) {
			return nil, fmt.Errorf("match: edge %d labels (%d,%d) out of range", e, lt, lh)
		}
		j.P[lt*int64(kh)+lh] += w
	}
	return j, nil
}

// BipartiteResult reports a completed bipartite matching.
type BipartiteResult struct {
	TailAssign, HeadAssign   []int64
	TailMapping, HeadMapping []int64
	Observed                 *BipartiteTarget
}

// MatchBipartite partitions both endpoint domains of a bipartite edge
// table so that the observed P'(X,Y) approaches the target.
// tailRowLabels/headRowLabels are the two PTs reduced to value indices;
// their frequencies set the group capacities.
func MatchBipartite(et *table.EdgeTable, nTail, nHead int64, tailRowLabels, headRowLabels []int64, target *BipartiteTarget, opt Options) (*BipartiteResult, error) {
	if err := et.Validate(nTail, nHead); err != nil {
		return nil, err
	}
	if err := target.Validate(); err != nil {
		return nil, err
	}
	kt, kh := target.KT, target.KH
	capT, err := stats.Frequencies(tailRowLabels, kt)
	if err != nil {
		return nil, fmt.Errorf("match: tail labels: %w", err)
	}
	capH, err := stats.Frequencies(headRowLabels, kh)
	if err != nil {
		return nil, fmt.Errorf("match: head labels: %w", err)
	}
	if int64(len(tailRowLabels)) < nTail {
		return nil, fmt.Errorf("match: %d tail rows for %d tail nodes", len(tailRowLabels), nTail)
	}
	if int64(len(headRowLabels)) < nHead {
		return nil, fmt.Errorf("match: %d head rows for %d head nodes", len(headRowLabels), nHead)
	}

	// Adjacency: tail -> heads and head -> tails (CSR over the ET).
	tailAdj := buildAdj(et.Tail, et.Head, nTail)
	headAdj := buildAdj(et.Head, et.Tail, nHead)

	// Target probabilities; scaled to the running placed-edge count at
	// each placement (see SBMPart for the proportional-target rationale).
	tw := make([]float64, kt*kh)
	copy(tw, target.P)
	cur := make([]float64, kt*kh)
	var placedEdges float64

	assignT := make([]int64, nTail)
	assignH := make([]int64, nHead)
	for i := range assignT {
		assignT[i] = Unassigned
	}
	for i := range assignH {
		assignH[i] = Unassigned
	}
	usedT := make([]int64, kt)
	usedH := make([]int64, kh)

	order := opt.Order
	if order == nil {
		order = RandomOrder(nTail+nHead, opt.Seed)
	}
	if int64(len(order)) != nTail+nHead {
		return nil, fmt.Errorf("match: order has %d entries for %d nodes", len(order), nTail+nHead)
	}

	st := &bipState{
		nTail: nTail, kt: kt, kh: kh,
		tailAdj: tailAdj, headAdj: headAdj,
		tw: tw, cur: cur, placedEdges: placedEdges,
		assignT: assignT, assignH: assignH,
		usedT: usedT, usedH: usedH,
		capT: capT, capH: capH,
		order: order, balance: opt.Balance,
		rnd: xrand.NewStream(opt.Seed).DeriveStream("bip-unconstrained"),
	}
	// The windowed path is byte-identical to the serial stream at every
	// {window, workers} configuration (see bipartite_window.go); only
	// the scan wall-clock changes.
	if window := EffectiveWindow(opt.Window, opt.Workers); window > 1 {
		err = st.runWindowed(window, opt.Workers)
	} else {
		err = st.runSerial()
	}
	if err != nil {
		return nil, err
	}

	seedT := xrand.NewStream(opt.Seed).DeriveStream("bip-tail").Seed()
	seedH := xrand.NewStream(opt.Seed).DeriveStream("bip-head").Seed()
	mapT, err := BuildMapping(assignT, tailRowLabels, kt, seedT)
	if err != nil {
		return nil, err
	}
	mapH, err := BuildMapping(assignH, headRowLabels, kh, seedH)
	if err != nil {
		return nil, err
	}
	obs, err := EmpiricalBipartite(et, assignT, assignH, kt, kh)
	if err != nil {
		return nil, err
	}
	return &BipartiteResult{
		TailAssign: assignT, HeadAssign: assignH,
		TailMapping: mapT, HeadMapping: mapH,
		Observed: obs,
	}, nil
}

// pickGroup applies SBM-Part's placement rule over one side's groups.
// Neighbour-less nodes are placed pseudo-randomly weighted by remaining
// capacity (see SBMPart.placeUnconstrained for the rationale). scratch
// must hold at least k entries; it is caller-owned so the per-placement
// score buffer is reused across the whole stream.
func pickGroup(k int, used, caps []int64, delta func(t int) float64, hasNeighbors, balance bool, rnd xrand.Stream, node int64, scratch []float64) int64 {
	if !hasNeighbors {
		var totalRem int64
		for t := 0; t < k; t++ {
			if r := caps[t] - used[t]; r > 0 {
				totalRem += r
			}
		}
		if totalRem <= 0 {
			return -1
		}
		pick := rnd.Intn(node, totalRem)
		for t := 0; t < k; t++ {
			if r := caps[t] - used[t]; r > 0 {
				if pick < r {
					return int64(t)
				}
				pick -= r
			}
		}
		return -1
	}
	deltas := scratch[:k]
	maxDelta := math.Inf(-1)
	feasible := false
	for t := 0; t < k; t++ {
		if used[t] >= caps[t] {
			deltas[t] = math.NaN()
			continue
		}
		feasible = true
		deltas[t] = delta(t)
		if deltas[t] > maxDelta {
			maxDelta = deltas[t]
		}
	}
	if !feasible {
		return -1
	}
	best := int64(-1)
	if balance {
		bestScore := math.Inf(-1)
		var bestRem float64
		for t := 0; t < k; t++ {
			if math.IsNaN(deltas[t]) {
				continue
			}
			rem := 1 - float64(used[t])/float64(caps[t])
			score := (maxDelta - deltas[t]) * rem
			if score > bestScore || (score == bestScore && rem > bestRem) {
				bestScore = score
				bestRem = rem
				best = int64(t)
			}
		}
	} else {
		bestDelta := math.Inf(1)
		var bestRem float64
		for t := 0; t < k; t++ {
			if math.IsNaN(deltas[t]) {
				continue
			}
			rem := 1 - float64(used[t])/float64(caps[t])
			if deltas[t] < bestDelta || (deltas[t] == bestDelta && rem > bestRem) {
				bestDelta = deltas[t]
				bestRem = rem
				best = int64(t)
			}
		}
	}
	return best
}

// adj is a minimal CSR over one direction of a bipartite edge table.
type adj struct {
	offs []int64
	dst  []int64
}

func buildAdj(src, dst []int64, n int64) *adj {
	deg := make([]int64, n)
	for _, s := range src {
		deg[s]++
	}
	offs := make([]int64, n+1)
	for v := int64(0); v < n; v++ {
		offs[v+1] = offs[v] + deg[v]
	}
	out := make([]int64, offs[n])
	cur := make([]int64, n)
	copy(cur, offs[:n])
	for i, s := range src {
		out[cur[s]] = dst[i]
		cur[s]++
	}
	return &adj{offs: offs, dst: out}
}

func (a *adj) neighbors(v int64) []int64 { return a.dst[a.offs[v]:a.offs[v+1]] }
