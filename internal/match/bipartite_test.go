package match

import (
	"math"
	"testing"

	"datasynth/internal/table"
)

// separableBipartite builds a bipartite graph where tails [0,10) attach
// only to heads [0,20) and tails [10,20) only to heads [20,40): a
// perfectly block-diagonal instance.
func separableBipartite(t *testing.T) (*table.EdgeTable, int64, int64) {
	t.Helper()
	et := table.NewEdgeTable("bip", 40)
	for tl := int64(0); tl < 10; tl++ {
		et.Add(tl, tl*2)
		et.Add(tl, tl*2+1)
	}
	for tl := int64(10); tl < 20; tl++ {
		et.Add(tl, 20+(tl-10)*2)
		et.Add(tl, 20+(tl-10)*2+1)
	}
	return et, 20, 40
}

func diagBipTarget() *BipartiteTarget {
	j := NewBipartiteTarget(2, 2)
	j.Set(0, 0, 0.5)
	j.Set(1, 1, 0.5)
	return j
}

func TestBipartiteTargetValidate(t *testing.T) {
	j := diagBipTarget()
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := NewBipartiteTarget(2, 2)
	bad.Set(0, 0, 0.4)
	if err := bad.Validate(); err == nil {
		t.Error("mass != 1 should fail")
	}
	neg := NewBipartiteTarget(1, 1)
	neg.Set(0, 0, -1)
	if err := neg.Validate(); err == nil {
		t.Error("negative cell should fail")
	}
}

func TestBipartiteTargetNormalize(t *testing.T) {
	j := NewBipartiteTarget(2, 2)
	j.Set(0, 0, 2)
	j.Set(1, 1, 2)
	j.Normalize()
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(j.At(0, 0)-0.5) > 1e-12 {
		t.Errorf("normalised cell = %v", j.At(0, 0))
	}
}

func TestEmpiricalBipartite(t *testing.T) {
	et := table.NewEdgeTable("e", 2)
	et.Add(0, 0)
	et.Add(1, 1)
	j, err := EmpiricalBipartite(et, []int64{0, 1}, []int64{1, 0}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(j.At(0, 1)-0.5) > 1e-12 || math.Abs(j.At(1, 0)-0.5) > 1e-12 {
		t.Errorf("empirical bipartite wrong: %v", j.P)
	}
	if _, err := EmpiricalBipartite(et, []int64{0}, []int64{0, 0}, 2, 2); err == nil {
		t.Error("short labels should fail")
	}
}

func TestMatchBipartiteSeparable(t *testing.T) {
	et, nT, nH := separableBipartite(t)
	tailRows := make([]int64, nT)
	for i := int64(10); i < nT; i++ {
		tailRows[i] = 1
	}
	headRows := make([]int64, nH)
	for i := int64(20); i < nH; i++ {
		headRows[i] = 1
	}
	res, err := MatchBipartite(et, nT, nH, tailRows, headRows, diagBipTarget(), DefaultOptions(23))
	if err != nil {
		t.Fatal(err)
	}
	// The instance is separable, but single-pass streaming places
	// degree-1 heads that arrive before their tail blind, so exact
	// recovery is not guaranteed (the paper: greedy "does not guarantee
	// an optimal solution"). Require the diagonal mass to be far above
	// the 0.5 a random assignment would give.
	diag := res.Observed.At(0, 0) + res.Observed.At(1, 1)
	if diag < 0.75 {
		t.Errorf("observed diagonal mass = %v, want > 0.75 (random gives 0.5)", diag)
	}
	// Mappings are valid and injective per side.
	checkInjective := func(f []int64, rows []int64, assign []int64) {
		used := map[int64]bool{}
		for v, r := range f {
			if used[r] {
				t.Fatalf("row %d reused", r)
			}
			used[r] = true
			if rows[r] != assign[v] {
				t.Fatalf("node %d group %d got row %d label %d", v, assign[v], r, rows[r])
			}
		}
	}
	checkInjective(res.TailMapping, tailRows, res.TailAssign)
	checkInjective(res.HeadMapping, headRows, res.HeadAssign)
}

func TestMatchBipartiteErrors(t *testing.T) {
	et, nT, nH := separableBipartite(t)
	tailRows := make([]int64, nT)
	headRows := make([]int64, nH)
	for i := int64(10); i < nT; i++ {
		tailRows[i] = 1
	}
	for i := int64(20); i < nH; i++ {
		headRows[i] = 1
	}
	// Bad target mass.
	bad := NewBipartiteTarget(2, 2)
	if _, err := MatchBipartite(et, nT, nH, tailRows, headRows, bad, DefaultOptions(1)); err == nil {
		t.Error("zero-mass target should fail")
	}
	// Too few tail rows.
	if _, err := MatchBipartite(et, nT, nH, tailRows[:5], headRows, diagBipTarget(), DefaultOptions(1)); err == nil {
		t.Error("short tail rows should fail")
	}
	// Edge endpoint out of bounds.
	badET := table.NewEdgeTable("e", 1)
	badET.Add(99, 0)
	if _, err := MatchBipartite(badET, 10, 10, make([]int64, 10), make([]int64, 10), mustUniformBip(), DefaultOptions(1)); err == nil {
		t.Error("invalid edge table should fail")
	}
}

func mustUniformBip() *BipartiteTarget {
	j := NewBipartiteTarget(1, 1)
	j.Set(0, 0, 1)
	return j
}

func TestMatchBipartiteDeterministic(t *testing.T) {
	et, nT, nH := separableBipartite(t)
	tailRows := make([]int64, nT)
	headRows := make([]int64, nH)
	for i := int64(10); i < nT; i++ {
		tailRows[i] = 1
	}
	for i := int64(20); i < nH; i++ {
		headRows[i] = 1
	}
	run := func() *BipartiteResult {
		res, err := MatchBipartite(et, nT, nH, tailRows, headRows, diagBipTarget(), DefaultOptions(55))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for i := range a.TailMapping {
		if a.TailMapping[i] != b.TailMapping[i] {
			t.Fatal("tail mapping not deterministic")
		}
	}
	for i := range a.HeadMapping {
		if a.HeadMapping[i] != b.HeadMapping[i] {
			t.Fatal("head mapping not deterministic")
		}
	}
}

func TestBuildAdj(t *testing.T) {
	a := buildAdj([]int64{0, 0, 2}, []int64{5, 6, 7}, 3)
	if n := a.neighbors(0); len(n) != 2 || n[0] != 5 || n[1] != 6 {
		t.Errorf("neighbors(0) = %v", n)
	}
	if n := a.neighbors(1); len(n) != 0 {
		t.Errorf("neighbors(1) = %v", n)
	}
	if n := a.neighbors(2); len(n) != 1 || n[0] != 7 {
		t.Errorf("neighbors(2) = %v", n)
	}
}
