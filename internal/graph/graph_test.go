package graph

import (
	"math"
	"testing"
	"testing/quick"

	"datasynth/internal/table"
)

// triangle returns K3.
func triangle(t *testing.T) *Graph {
	t.Helper()
	g, err := FromEdges([]int64{0, 1, 2}, []int64{1, 2, 0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// path returns the path 0-1-2-3.
func path(t *testing.T) *Graph {
	t.Helper()
	g, err := FromEdges([]int64{0, 1, 2}, []int64{1, 2, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFromEdgesValidation(t *testing.T) {
	if _, err := FromEdges([]int64{0}, []int64{}, 2); err == nil {
		t.Error("ragged edges should fail")
	}
	if _, err := FromEdges([]int64{0}, []int64{5}, 2); err == nil {
		t.Error("out-of-range endpoint should fail")
	}
	if _, err := FromEdges([]int64{-1}, []int64{0}, 2); err == nil {
		t.Error("negative endpoint should fail")
	}
}

func TestFromEdgeTable(t *testing.T) {
	et := table.NewEdgeTable("e", 2)
	et.Add(0, 1)
	et.Add(1, 2)
	g, err := FromEdgeTable(et, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Errorf("N=%d M=%d", g.N(), g.M())
	}
	if _, err := FromEdgeTable(et, 2); err == nil {
		t.Error("node bound should be enforced")
	}
}

func TestDegrees(t *testing.T) {
	g := path(t)
	want := []int64{1, 2, 2, 1}
	for v, d := range want {
		if g.Degree(int64(v)) != d {
			t.Errorf("deg(%d) = %d, want %d", v, g.Degree(int64(v)), d)
		}
	}
	if g.MaxDegree() != 2 {
		t.Errorf("MaxDegree = %d", g.MaxDegree())
	}
	if math.Abs(g.AvgDegree()-1.5) > 1e-12 {
		t.Errorf("AvgDegree = %v", g.AvgDegree())
	}
	h := g.DegreeHistogram()
	if h[1] != 2 || h[2] != 2 {
		t.Errorf("histogram = %v", h)
	}
}

func TestSelfLoopDegree(t *testing.T) {
	g, err := FromEdges([]int64{0}, []int64{0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) != 1 {
		t.Errorf("self-loop degree = %d, want 1", g.Degree(0))
	}
}

func TestNeighborsSymmetric(t *testing.T) {
	g := path(t)
	n1 := g.Neighbors(1)
	if len(n1) != 2 {
		t.Fatalf("neighbors(1) = %v", n1)
	}
	found0, found2 := false, false
	for _, u := range n1 {
		if u == 0 {
			found0 = true
		}
		if u == 2 {
			found2 = true
		}
	}
	if !found0 || !found2 {
		t.Errorf("neighbors(1) = %v, want {0,2}", n1)
	}
}

func TestConnectedComponents(t *testing.T) {
	// Two components: 0-1 and 2-3-4.
	g, err := FromEdges([]int64{0, 2, 3}, []int64{1, 3, 4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	labels, k := g.ConnectedComponents()
	if k != 2 {
		t.Fatalf("components = %d, want 2", k)
	}
	if labels[0] != labels[1] || labels[2] != labels[3] || labels[3] != labels[4] {
		t.Errorf("labels = %v", labels)
	}
	if labels[0] == labels[2] {
		t.Errorf("components merged: %v", labels)
	}
	if f := g.LargestComponentFraction(); math.Abs(f-0.6) > 1e-12 {
		t.Errorf("largest fraction = %v, want 0.6", f)
	}
}

func TestIsolatedNodesAreComponents(t *testing.T) {
	g, err := FromEdges(nil, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, k := g.ConnectedComponents()
	if k != 3 {
		t.Errorf("components = %d, want 3", k)
	}
}

func TestBFSDistances(t *testing.T) {
	g := path(t)
	d := g.BFSDistances(0)
	want := []int64{0, 1, 2, 3}
	for v := range want {
		if d[v] != want[v] {
			t.Errorf("dist(0,%d) = %d, want %d", v, d[v], want[v])
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g, err := FromEdges([]int64{0}, []int64{1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	d := g.BFSDistances(0)
	if d[2] != -1 {
		t.Errorf("unreachable dist = %d, want -1", d[2])
	}
}

func TestApproxDiameterPath(t *testing.T) {
	g := path(t)
	if d := g.ApproxDiameter(4, 1); d != 3 {
		t.Errorf("diameter = %d, want 3", d)
	}
}

func TestLocalClusteringTriangle(t *testing.T) {
	g := triangle(t)
	for v := int64(0); v < 3; v++ {
		if c := g.LocalClustering(v); math.Abs(c-1) > 1e-12 {
			t.Errorf("clustering(%d) = %v, want 1", v, c)
		}
	}
	if c := g.AvgClustering(0, 0); math.Abs(c-1) > 1e-12 {
		t.Errorf("avg clustering = %v, want 1", c)
	}
}

func TestLocalClusteringPath(t *testing.T) {
	g := path(t)
	for v := int64(0); v < 4; v++ {
		if c := g.LocalClustering(v); c != 0 {
			t.Errorf("clustering(%d) = %v, want 0", v, c)
		}
	}
}

func TestClusteringPerDegree(t *testing.T) {
	g := triangle(t)
	ccd := g.ClusteringPerDegree()
	if len(ccd) != 3 {
		t.Fatalf("ccd len = %d", len(ccd))
	}
	if math.Abs(ccd[2]-1) > 1e-12 {
		t.Errorf("ccd[2] = %v, want 1", ccd[2])
	}
	if !math.IsNaN(ccd[0]) || !math.IsNaN(ccd[1]) {
		t.Errorf("absent degrees should be NaN: %v", ccd)
	}
}

func TestAssortativityStar(t *testing.T) {
	// A star is maximally disassortative.
	g, err := FromEdges([]int64{0, 0, 0, 0}, []int64{1, 2, 3, 4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a := g.DegreeAssortativity(); a > -0.99 {
		t.Errorf("star assortativity = %v, want ~-1", a)
	}
}

func TestAssortativityRegular(t *testing.T) {
	// Cycle: all degrees equal, zero variance -> NaN.
	g, err := FromEdges([]int64{0, 1, 2, 3}, []int64{1, 2, 3, 0}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a := g.DegreeAssortativity(); !math.IsNaN(a) {
		t.Errorf("regular graph assortativity = %v, want NaN", a)
	}
}

func TestModularityPerfectSplit(t *testing.T) {
	// Two disjoint triangles with matching labels: Q = 0.5.
	g, err := FromEdges(
		[]int64{0, 1, 2, 3, 4, 5},
		[]int64{1, 2, 0, 4, 5, 3}, 6)
	if err != nil {
		t.Fatal(err)
	}
	labels := []int64{0, 0, 0, 1, 1, 1}
	if q := g.Modularity(labels); math.Abs(q-0.5) > 1e-12 {
		t.Errorf("modularity = %v, want 0.5", q)
	}
	// All-in-one labelling: Q = 0.
	if q := g.Modularity(make([]int64, 6)); math.Abs(q) > 1e-12 {
		t.Errorf("single-community modularity = %v, want 0", q)
	}
}

func TestMixingFraction(t *testing.T) {
	g, err := FromEdges([]int64{0, 1}, []int64{1, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Labels 0,0,1: edge 0-1 intra, edge 1-2 inter -> mixing 0.5.
	if mu := g.MixingFraction([]int64{0, 0, 1}); math.Abs(mu-0.5) > 1e-12 {
		t.Errorf("mixing = %v, want 0.5", mu)
	}
}

func TestGiniDegreeExtremes(t *testing.T) {
	cycle, _ := FromEdges([]int64{0, 1, 2, 3}, []int64{1, 2, 3, 0}, 4)
	if gi := cycle.GiniDegree(); math.Abs(gi) > 1e-9 {
		t.Errorf("regular Gini = %v, want 0", gi)
	}
	star, _ := FromEdges([]int64{0, 0, 0, 0, 0, 0}, []int64{1, 2, 3, 4, 5, 6}, 7)
	if gi := star.GiniDegree(); gi < 0.3 {
		t.Errorf("star Gini = %v, want > 0.3", gi)
	}
}

func TestPowerLawAlphaMLE(t *testing.T) {
	// Star graph has one huge degree; MLE over dmin=1 should exceed 1.
	star, _ := FromEdges([]int64{0, 0, 0, 0}, []int64{1, 2, 3, 4}, 5)
	if a := star.PowerLawAlphaMLE(1); math.IsNaN(a) || a <= 1 {
		t.Errorf("alpha = %v", a)
	}
}

func TestCSRInvariantProperty(t *testing.T) {
	// Property: sum of degrees equals 2*m - selfloops for arbitrary edge
	// lists.
	f := func(pairs []uint16) bool {
		const n = 32
		tails := make([]int64, len(pairs))
		heads := make([]int64, len(pairs))
		selfLoops := int64(0)
		for i, p := range pairs {
			tails[i] = int64(p % n)
			heads[i] = int64((p / n) % n)
			if tails[i] == heads[i] {
				selfLoops++
			}
		}
		g, err := FromEdges(tails, heads, n)
		if err != nil {
			return false
		}
		var degSum int64
		for v := int64(0); v < n; v++ {
			degSum += g.Degree(v)
		}
		return degSum == 2*int64(len(pairs))-selfLoops
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestModularityBounds(t *testing.T) {
	// Property: modularity always <= 1 and >= -1 for random labelled
	// graphs.
	f := func(pairs []uint16, labelSeed uint8) bool {
		const n = 24
		tails := make([]int64, 0, len(pairs))
		heads := make([]int64, 0, len(pairs))
		for _, p := range pairs {
			tails = append(tails, int64(p%n))
			heads = append(heads, int64((p/n)%n))
		}
		g, err := FromEdges(tails, heads, n)
		if err != nil {
			return false
		}
		labels := make([]int64, n)
		for i := range labels {
			labels[i] = int64((int(labelSeed) + i*7) % 4)
		}
		q := g.Modularity(labels)
		return q <= 1.0+1e-9 && q >= -1.0-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
