package graph

import (
	"math"
	"sort"
)

// This file implements the structural metrics from the paper's
// Section 2 requirement list beyond plain degrees: clustering
// coefficients, assortativity, and modularity of a labelling.

// LocalClustering returns the local clustering coefficient of v:
// the fraction of pairs of distinct neighbours that are themselves
// connected. Nodes with degree < 2 have coefficient 0. Parallel edges
// and self-loops are ignored for the purpose of this metric.
func (g *Graph) LocalClustering(v int64) float64 {
	neigh := distinctNeighbors(g, v)
	k := len(neigh)
	if k < 2 {
		return 0
	}
	set := make(map[int64]struct{}, k)
	for _, u := range neigh {
		set[u] = struct{}{}
	}
	links := 0
	for _, u := range neigh {
		for _, w := range g.Neighbors(u) {
			if w == u || w == v {
				continue
			}
			if _, ok := set[w]; ok {
				links++
			}
		}
	}
	// Each triangle edge counted twice (u->w and w->u across iterations),
	// but parallel edges in u's list may over-count; dedupe per u.
	return float64(links) / float64(k*(k-1))
}

func distinctNeighbors(g *Graph, v int64) []int64 {
	raw := g.Neighbors(v)
	out := make([]int64, 0, len(raw))
	seen := make(map[int64]struct{}, len(raw))
	for _, u := range raw {
		if u == v {
			continue
		}
		if _, ok := seen[u]; ok {
			continue
		}
		seen[u] = struct{}{}
		out = append(out, u)
	}
	return out
}

// AvgClustering returns the average local clustering coefficient over
// all nodes, or over a pseudo-random sample of `sample` nodes if
// sample > 0 and sample < n (the standard approach at scale).
func (g *Graph) AvgClustering(sample int64, seed uint64) float64 {
	if g.n == 0 {
		return 0
	}
	if sample <= 0 || sample >= g.n {
		sum := 0.0
		for v := int64(0); v < g.n; v++ {
			sum += g.LocalClustering(v)
		}
		return sum / float64(g.n)
	}
	sum := 0.0
	s := seed
	for i := int64(0); i < sample; i++ {
		s = s*6364136223846793005 + 1442695040888963407
		sum += g.LocalClustering(int64(s % uint64(g.n)))
	}
	return sum / float64(sample)
}

// ClusteringPerDegree returns the average local clustering coefficient
// per degree — the statistic BTER is parameterised by (ccd). Index d
// holds the average over nodes of degree d; degrees with no nodes hold
// NaN.
func (g *Graph) ClusteringPerDegree() []float64 {
	maxDeg := g.MaxDegree()
	sums := make([]float64, maxDeg+1)
	counts := make([]int64, maxDeg+1)
	for v := int64(0); v < g.n; v++ {
		d := g.Degree(v)
		sums[d] += g.LocalClustering(v)
		counts[d]++
	}
	out := make([]float64, maxDeg+1)
	for d := range out {
		if counts[d] == 0 {
			out[d] = math.NaN()
		} else {
			out[d] = sums[d] / float64(counts[d])
		}
	}
	return out
}

// DegreeAssortativity returns the Pearson correlation of the degrees at
// the two ends of each edge (Newman's assortativity coefficient).
// Returns NaN for degenerate graphs (no edges or zero variance).
func (g *Graph) DegreeAssortativity() float64 {
	var sx, sy, sxx, syy, sxy float64
	var m float64
	for v := int64(0); v < g.n; v++ {
		dv := float64(g.Degree(v))
		for _, u := range g.Neighbors(v) {
			// Each undirected edge appears twice (v->u and u->v), which
			// symmetrises the correlation as required.
			du := float64(g.Degree(u))
			sx += dv
			sy += du
			sxx += dv * dv
			syy += du * du
			sxy += dv * du
			m++
		}
	}
	if m == 0 {
		return math.NaN()
	}
	cov := sxy/m - (sx/m)*(sy/m)
	vx := sxx/m - (sx/m)*(sx/m)
	vy := syy/m - (sy/m)*(sy/m)
	if vx <= 0 || vy <= 0 {
		return math.NaN()
	}
	return cov / math.Sqrt(vx*vy)
}

// Modularity computes Newman modularity Q of a node labelling: the
// fraction of intra-label edge endpoints minus the expectation under
// the configuration model. Labels must be in [0, k).
func (g *Graph) Modularity(labels []int64) float64 {
	if int64(len(labels)) != g.n {
		panic("graph: labels length mismatch")
	}
	var k int64
	for _, l := range labels {
		if l+1 > k {
			k = l + 1
		}
	}
	intra := make([]float64, k)  // intra-community edge-endpoint halves
	degSum := make([]float64, k) // total degree per community
	var twoM float64
	for v := int64(0); v < g.n; v++ {
		lv := labels[v]
		for _, u := range g.Neighbors(v) {
			twoM++
			degSum[lv]++
			if labels[u] == lv {
				intra[lv]++
			}
		}
	}
	if twoM == 0 {
		return 0
	}
	q := 0.0
	for c := int64(0); c < k; c++ {
		q += intra[c]/twoM - (degSum[c]/twoM)*(degSum[c]/twoM)
	}
	return q
}

// MixingFraction returns the fraction of edge endpoints whose other end
// carries a different label — the empirical counterpart of LFR's mixing
// parameter µ.
func (g *Graph) MixingFraction(labels []int64) float64 {
	if int64(len(labels)) != g.n {
		panic("graph: labels length mismatch")
	}
	var inter, total float64
	for v := int64(0); v < g.n; v++ {
		for _, u := range g.Neighbors(v) {
			total++
			if labels[u] != labels[v] {
				inter++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return inter / total
}

// PowerLawAlphaMLE fits the exponent of a discrete power law to the
// degree sequence using the standard MLE approximation
// alpha = 1 + n / Σ ln(d_i / (dmin - 0.5)) over degrees >= dmin.
// Used by tests to confirm RMAT/BA produce heavy-tailed degrees.
func (g *Graph) PowerLawAlphaMLE(dmin int64) float64 {
	if dmin < 1 {
		dmin = 1
	}
	var n float64
	var sum float64
	for v := int64(0); v < g.n; v++ {
		d := g.Degree(v)
		if d >= dmin {
			n++
			sum += math.Log(float64(d) / (float64(dmin) - 0.5))
		}
	}
	if n == 0 || sum == 0 {
		return math.NaN()
	}
	return 1 + n/sum
}

// GiniDegree returns the Gini coefficient of the degree sequence, a
// scale-free-ness proxy: ~0 for regular graphs, large (>0.4) for
// heavy-tailed ones.
func (g *Graph) GiniDegree() float64 {
	if g.n == 0 {
		return 0
	}
	deg := make([]float64, g.n)
	for v := int64(0); v < g.n; v++ {
		deg[v] = float64(g.Degree(v))
	}
	sort.Float64s(deg)
	var cum, total float64
	for i, d := range deg {
		cum += d * float64(i+1)
		total += d
	}
	if total == 0 {
		return 0
	}
	n := float64(g.n)
	return (2*cum)/(n*total) - (n+1)/n
}
