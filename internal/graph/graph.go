// Package graph provides a compact undirected-graph representation and
// the structural metrics the paper's Section 2 lists as characteristics
// a generator must reproduce: degree distribution, clustering
// coefficient, connected components, diameter, assortativity and
// community quality (modularity).
//
// The package is a substrate: structure generators are validated
// against it in tests, and the Table 1 capability harness measures
// generated graphs with it.
package graph

import (
	"fmt"
	"sync"

	"datasynth/internal/table"
)

// builderPool amortises CSR buffers across hot-path graph builds.
var builderPool = sync.Pool{New: func() any { return new(Builder) }}

// GetBuilder returns a pooled Builder. Release it with PutBuilder once
// every Graph built from it is dead — the graphs alias its buffers.
func GetBuilder() *Builder { return builderPool.Get().(*Builder) }

// PutBuilder returns a builder to the pool.
func PutBuilder(b *Builder) { builderPool.Put(b) }

// Graph is an undirected graph in CSR (compressed sparse row) form.
// Self-loops are allowed (they contribute one neighbour entry) and
// parallel edges are preserved as built.
type Graph struct {
	n      int64
	offs   []int64 // len n+1
	adj    []int64 // len = sum of degrees
	mEdges int64   // number of edges as built (each undirected edge once)
}

// FromEdgeTable builds an undirected CSR graph over n nodes from an
// edge table. Each table row (t, h) becomes an undirected edge {t, h}.
func FromEdgeTable(et *table.EdgeTable, n int64) (*Graph, error) {
	if err := et.Validate(n, n); err != nil {
		return nil, err
	}
	return FromEdges(et.Tail, et.Head, n)
}

// FromEdges builds an undirected CSR graph over n nodes from parallel
// endpoint slices. The graph owns freshly allocated buffers; use a
// Builder to amortise the CSR arrays across repeated constructions.
func FromEdges(tail, head []int64, n int64) (*Graph, error) {
	return new(Builder).FromEdges(tail, head, n)
}

// Builder constructs CSR graphs while reusing its internal buffers
// (degree counts, offsets, adjacency) across builds, so repeated
// constructions — e.g. one per benchmark panel or per matching task —
// stop reallocating the three big arrays.
//
// The returned *Graph aliases the builder's buffers: it is valid until
// the next FromEdges/FromEdgeTable call on the same builder. A Builder
// must not be used from multiple goroutines concurrently; pool builders
// (sync.Pool) for concurrent use.
type Builder struct {
	deg  []int64
	offs []int64
	adj  []int64
	cur  []int64
}

// FromEdgeTable is FromEdgeTable over the builder's reused buffers.
func (b *Builder) FromEdgeTable(et *table.EdgeTable, n int64) (*Graph, error) {
	if err := et.Validate(n, n); err != nil {
		return nil, err
	}
	return b.FromEdges(et.Tail, et.Head, n)
}

// FromEdges is FromEdges over the builder's reused buffers.
func (b *Builder) FromEdges(tail, head []int64, n int64) (*Graph, error) {
	if len(tail) != len(head) {
		return nil, fmt.Errorf("graph: ragged edge list (%d tails, %d heads)", len(tail), len(head))
	}
	b.deg = growInt64(b.deg, n)
	deg := b.deg
	clear(deg)
	for i := range tail {
		t, h := tail[i], head[i]
		if t < 0 || t >= n || h < 0 || h >= n {
			return nil, fmt.Errorf("graph: edge %d (%d,%d) outside [0,%d)", i, t, h, n)
		}
		deg[t]++
		if h != t {
			deg[h]++
		}
	}
	b.offs = growInt64(b.offs, n+1)
	offs := b.offs
	offs[0] = 0
	for v := int64(0); v < n; v++ {
		offs[v+1] = offs[v] + deg[v]
	}
	b.adj = growInt64(b.adj, offs[n])
	adj := b.adj
	b.cur = growInt64(b.cur, n)
	cur := b.cur
	copy(cur, offs[:n])
	for i := range tail {
		t, h := tail[i], head[i]
		adj[cur[t]] = h
		cur[t]++
		if h != t {
			adj[cur[h]] = t
			cur[h]++
		}
	}
	return &Graph{n: n, offs: offs, adj: adj, mEdges: int64(len(tail))}, nil
}

// growInt64 returns buf resized to n entries, reallocating only when
// the capacity is insufficient. Contents are unspecified.
func growInt64(buf []int64, n int64) []int64 {
	if int64(cap(buf)) < n {
		return make([]int64, n)
	}
	return buf[:n]
}

// N returns the number of nodes.
func (g *Graph) N() int64 { return g.n }

// M returns the number of undirected edges as built.
func (g *Graph) M() int64 { return g.mEdges }

// Degree returns the degree of v (self-loops count once).
func (g *Graph) Degree(v int64) int64 { return g.offs[v+1] - g.offs[v] }

// Neighbors returns the adjacency slice of v. Callers must not modify
// it.
func (g *Graph) Neighbors(v int64) []int64 { return g.adj[g.offs[v]:g.offs[v+1]] }

// DegreeHistogram returns counts[d] = number of nodes with degree d.
func (g *Graph) DegreeHistogram() []int64 {
	var maxDeg int64
	for v := int64(0); v < g.n; v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	h := make([]int64, maxDeg+1)
	for v := int64(0); v < g.n; v++ {
		h[g.Degree(v)]++
	}
	return h
}

// AvgDegree returns the mean degree.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return float64(len(g.adj)) / float64(g.n)
}

// MaxDegree returns the maximum degree.
func (g *Graph) MaxDegree() int64 {
	var max int64
	for v := int64(0); v < g.n; v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// ConnectedComponents labels nodes with component ids (0-based, in
// discovery order) and returns (labels, componentCount).
func (g *Graph) ConnectedComponents() ([]int64, int64) {
	labels := make([]int64, g.n)
	for i := range labels {
		labels[i] = -1
	}
	var comp int64
	stack := make([]int64, 0, 1024)
	for s := int64(0); s < g.n; s++ {
		if labels[s] != -1 {
			continue
		}
		stack = append(stack[:0], s)
		labels[s] = comp
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, u := range g.Neighbors(v) {
				if labels[u] == -1 {
					labels[u] = comp
					stack = append(stack, u)
				}
			}
		}
		comp++
	}
	return labels, comp
}

// LargestComponentFraction returns |largest component| / n.
func (g *Graph) LargestComponentFraction() float64 {
	if g.n == 0 {
		return 0
	}
	labels, k := g.ConnectedComponents()
	sizes := make([]int64, k)
	for _, l := range labels {
		sizes[l]++
	}
	var max int64
	for _, s := range sizes {
		if s > max {
			max = s
		}
	}
	return float64(max) / float64(g.n)
}

// BFSDistances returns hop distances from src (-1 for unreachable).
func (g *Graph) BFSDistances(src int64) []int64 {
	dist := make([]int64, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int64{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if dist[u] == -1 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// ApproxDiameter estimates the diameter by double-sweep BFS from
// `samples` pseudo-random start nodes; it is a lower bound, the usual
// approach on large graphs.
func (g *Graph) ApproxDiameter(samples int, seed uint64) int64 {
	if g.n == 0 {
		return 0
	}
	var best int64
	s := seed
	for i := 0; i < samples; i++ {
		s = s*6364136223846793005 + 1442695040888963407
		start := int64(s % uint64(g.n))
		far, _ := farthest(g.BFSDistances(start))
		d2 := g.BFSDistances(far)
		_, ecc := farthest(d2)
		if ecc > best {
			best = ecc
		}
	}
	return best
}

func farthest(dist []int64) (node, d int64) {
	node, d = 0, 0
	for v, dv := range dist {
		if dv > d {
			node, d = int64(v), dv
		}
	}
	return
}
