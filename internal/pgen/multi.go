package pgen

import (
	"fmt"
	"strings"

	"datasynth/internal/table"
	"datasynth/internal/xrand"
)

// MultiCategorical implements the paper's future-work multi-valued
// properties ("performing experiments for multi-valued properties
// would also be interesting"): each instance receives a *set* of 1..Max
// distinct categorical values, rendered as a separator-joined string
// (e.g. interests = "music;travel;science"). The first value is drawn
// from the full weighted distribution and acts as the instance's
// primary value — the one correlation matching uses when a multi-valued
// property is correlated with structure.
type MultiCategorical struct {
	inner     *Categorical
	Min, Max  int
	Separator string
}

// NewMultiCategorical builds the generator. min >= 1, max >= min, and
// max must not exceed the number of distinct values.
func NewMultiCategorical(values []string, weights []float64, min, max int, sep string) (*MultiCategorical, error) {
	c, err := NewCategorical(values, weights)
	if err != nil {
		return nil, err
	}
	if min < 1 || max < min {
		return nil, fmt.Errorf("pgen: multi-categorical set size bounds [%d,%d] invalid", min, max)
	}
	if max > len(values) {
		return nil, fmt.Errorf("pgen: set size %d exceeds %d distinct values", max, len(values))
	}
	if sep == "" {
		sep = ";"
	}
	return &MultiCategorical{inner: c, Min: min, Max: max, Separator: sep}, nil
}

// Name implements Generator.
func (m *MultiCategorical) Name() string { return "multi-categorical" }

// Kind implements Generator.
func (m *MultiCategorical) Kind() table.ValueKind { return table.KindString }

// Arity implements Generator.
func (m *MultiCategorical) Arity() int { return 0 }

// Run implements Generator: a weighted draw for the primary value, then
// distinct extra values by rejection.
func (m *MultiCategorical) Run(id int64, s xrand.Stream, deps []Value) (Value, error) {
	size := m.Min
	if m.Max > m.Min {
		size += int(s.Intn(id*3+1, int64(m.Max-m.Min+1)))
	}
	chosen := make([]int, 0, size)
	seen := make(map[int]struct{}, size)
	sub := s.DeriveStream("multi")
	for draw := int64(0); len(chosen) < size; draw++ {
		k := m.inner.dist.SampleU(sub.Float64(id*64 + draw))
		if _, dup := seen[k]; dup {
			if draw > int64(64*size) {
				break // weights may make distinct draws improbable
			}
			continue
		}
		seen[k] = struct{}{}
		chosen = append(chosen, k)
	}
	parts := make([]string, len(chosen))
	for i, k := range chosen {
		parts[i] = m.inner.values[k]
	}
	return StringValue(strings.Join(parts, m.Separator)), nil
}

// Primary extracts the primary (first) value of a rendered set; used
// when a multi-valued property participates in correlation matching.
func (m *MultiCategorical) Primary(rendered string) string {
	if i := strings.Index(rendered, m.Separator); i >= 0 {
		return rendered[:i]
	}
	return rendered
}
