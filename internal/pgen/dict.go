package pgen

import (
	"fmt"
	"sort"

	"datasynth/internal/table"
	"datasynth/internal/xrand"
)

// Embedded dictionaries. The paper loads dictionaries from files in
// initialize(); since this reproduction must be self-contained, we
// embed compact synthetic dictionaries whose *distribution shape*
// matches the real-world ones the running example needs: country
// populations are heavily skewed, names are conditioned on (country
// region, sex) — the paper's P(name | country, sex).

// countries lists country names with weights roughly proportional to
// real population shares, giving the skewed Pcountry(X) of the running
// example.
var countries = []string{
	"China", "India", "USA", "Indonesia", "Pakistan", "Brazil", "Nigeria",
	"Bangladesh", "Russia", "Mexico", "Japan", "Ethiopia", "Philippines",
	"Egypt", "Vietnam", "Germany", "Turkey", "Iran", "Thailand", "UK",
	"France", "Italy", "Tanzania", "SouthAfrica", "Myanmar", "Kenya",
	"SouthKorea", "Colombia", "Spain", "Uganda", "Argentina", "Algeria",
	"Sudan", "Ukraine", "Iraq", "Afghanistan", "Poland", "Canada",
	"Morocco", "SaudiArabia",
}

var countryWeights = []float64{
	1412, 1380, 331, 273, 220, 212, 206, 164, 146, 128, 126, 115, 109,
	102, 97, 83, 84, 84, 70, 67, 65, 60, 60, 59, 54, 54, 52, 51, 47, 46,
	45, 44, 44, 44, 40, 39, 38, 38, 37, 35,
}

// regionOf groups countries into name-regions so the conditional name
// dictionary stays compact while still correlating name with country.
var regionOf = map[string]string{
	"China": "east-asia", "Japan": "east-asia", "SouthKorea": "east-asia",
	"Vietnam": "east-asia", "Thailand": "east-asia", "Myanmar": "east-asia",
	"Indonesia": "east-asia", "Philippines": "east-asia",
	"India": "south-asia", "Pakistan": "south-asia", "Bangladesh": "south-asia",
	"Afghanistan": "south-asia", "Iran": "south-asia",
	"USA": "western", "UK": "western", "France": "western", "Germany": "western",
	"Italy": "western", "Spain": "western", "Canada": "western", "Poland": "western",
	"Ukraine": "western", "Russia": "western", "Argentina": "latin",
	"Brazil": "latin", "Mexico": "latin", "Colombia": "latin",
	"Nigeria": "africa", "Ethiopia": "africa", "Egypt": "africa",
	"Tanzania": "africa", "SouthAfrica": "africa", "Kenya": "africa",
	"Uganda": "africa", "Sudan": "africa", "Algeria": "africa", "Morocco": "africa",
	"Turkey": "middle-east", "Iraq": "middle-east", "SaudiArabia": "middle-east",
}

// namesByRegionSex is the conditional dictionary behind
// P(name | country, sex).
var namesByRegionSex = map[string][]string{
	"east-asia/M":   {"Wei", "Hiroshi", "Minh", "Jin", "Kenji", "Liang", "Somchai", "Budi", "Takeshi", "Feng"},
	"east-asia/F":   {"Mei", "Yuki", "Linh", "Xiu", "Sakura", "Hana", "Ratree", "Dewi", "Aiko", "Lan"},
	"south-asia/M":  {"Arjun", "Ali", "Rahul", "Imran", "Sanjay", "Farid", "Vikram", "Tariq", "Ravi", "Omar"},
	"south-asia/F":  {"Priya", "Fatima", "Anjali", "Ayesha", "Lakshmi", "Zara", "Meera", "Nadia", "Sita", "Amina"},
	"western/M":     {"James", "Pierre", "Hans", "Marco", "Carlos", "Piotr", "Ivan", "David", "Liam", "Lukas"},
	"western/F":     {"Emma", "Marie", "Greta", "Giulia", "Lucia", "Anna", "Olga", "Sophie", "Mia", "Clara"},
	"latin/M":       {"Mateo", "Santiago", "Diego", "Luis", "Pedro", "Javier", "Andres", "Rafael", "Jorge", "Pablo"},
	"latin/F":       {"Sofia", "Valentina", "Camila", "Isabella", "Luciana", "Gabriela", "Mariana", "Elena", "Carmen", "Rosa"},
	"africa/M":      {"Kwame", "Chinedu", "Tesfaye", "Juma", "Sipho", "Amadou", "Kofi", "Abubakar", "Thabo", "Moussa"},
	"africa/F":      {"Amara", "Ngozi", "Desta", "Zainab", "Thandiwe", "Fanta", "Abena", "Halima", "Naledi", "Awa"},
	"middle-east/M": {"Mehmet", "Ahmed", "Mustafa", "Hassan", "Yusuf", "Khalid", "Emre", "Saad", "Faisal", "Murat"},
	"middle-east/F": {"Leyla", "Yasmin", "Elif", "Noor", "Rania", "Zeynep", "Layla", "Huda", "Selin", "Dalia"},
}

// topics is a generic subject dictionary for Message.topic and
// Person.interest.
var topics = []string{
	"music", "sports", "politics", "movies", "travel", "food", "science",
	"technology", "art", "history", "fashion", "gaming", "health",
	"finance", "nature", "photography", "literature", "education",
	"space", "cars",
}

// lexicon is the word pool for the text generator.
var lexicon = []string{
	"the", "quick", "graph", "node", "edge", "query", "data", "social",
	"network", "message", "friend", "post", "share", "like", "comment",
	"today", "great", "new", "time", "world", "people", "think", "know",
	"good", "day", "life", "work", "love", "best", "real",
}

// sexes is the binary sex dictionary of the running example.
var sexes = []string{"M", "F"}

// Dictionary returns an embedded dictionary's values and weights
// (weights may be nil for uniform).
func Dictionary(name string) ([]string, []float64, error) {
	switch name {
	case "countries":
		return countries, countryWeights, nil
	case "topics":
		return topics, nil, nil
	case "sexes":
		return sexes, nil, nil
	case "words":
		return lexicon, nil, nil
	default:
		return nil, nil, fmt.Errorf("pgen: unknown dictionary %q", name)
	}
}

// ConditionalName implements the paper's flagship conditional PG:
// P(name | country, sex). Its Run expects two dependency values,
// country then sex, and samples from the (region, sex) name list by
// inverse transform with a Zipf-ish weighting (common names are more
// common).
type ConditionalName struct {
	dists map[string]*Categorical
}

// NewConditionalName builds the generator; the dict parameter is
// accepted for DSL symmetry but only the embedded dictionary exists.
func NewConditionalName(dict string) (*ConditionalName, error) {
	if dict != "" && dict != "names" {
		return nil, fmt.Errorf("pgen: unknown name dictionary %q", dict)
	}
	keys := make([]string, 0, len(namesByRegionSex))
	for key := range namesByRegionSex {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	dists := make(map[string]*Categorical, len(namesByRegionSex))
	for _, key := range keys {
		c, err := NewZipfCategorical(namesByRegionSex[key], 0.8)
		if err != nil {
			return nil, err
		}
		dists[key] = c
	}
	return &ConditionalName{dists: dists}, nil
}

// Name implements Generator.
func (c *ConditionalName) Name() string { return "dictionary" }

// Kind implements Generator.
func (c *ConditionalName) Kind() table.ValueKind { return table.KindString }

// Arity implements Generator: (country, sex).
func (c *ConditionalName) Arity() int { return 2 }

// Run implements Generator.
func (c *ConditionalName) Run(id int64, s xrand.Stream, deps []Value) (Value, error) {
	if len(deps) != 2 {
		return Value{}, fmt.Errorf("pgen: dictionary expects (country, sex), got %d deps", len(deps))
	}
	region, ok := regionOf[deps[0].Str]
	if !ok {
		region = "western"
	}
	sex := deps[1].Str
	if sex != "M" && sex != "F" {
		sex = "M"
	}
	d := c.dists[region+"/"+sex]
	return d.Run(id, s, nil)
}

// NamesFor exposes the name list of a (country, sex) pair for tests.
func NamesFor(country, sex string) []string {
	region, ok := regionOf[country]
	if !ok {
		region = "western"
	}
	return namesByRegionSex[region+"/"+sex]
}
