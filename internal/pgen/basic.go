package pgen

import (
	"fmt"
	"strconv"
	"strings"

	"datasynth/internal/table"
	"datasynth/internal/xrand"
)

// This file implements the core value samplers: categorical (with
// optional weights or Zipf ranks, via inverse transform sampling as the
// paper suggests), uniform int/float/date, normal, sequence, uuid and
// constant generators.

// Categorical draws a string from a weighted value list.
type Categorical struct {
	values []string
	dist   *xrand.Discrete
}

// NewCategorical builds a categorical generator; weights nil means
// uniform.
func NewCategorical(values []string, weights []float64) (*Categorical, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("pgen: categorical needs at least one value")
	}
	if weights == nil {
		weights = make([]float64, len(values))
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != len(values) {
		return nil, fmt.Errorf("pgen: %d weights for %d values", len(weights), len(values))
	}
	d, err := xrand.NewDiscrete(weights)
	if err != nil {
		return nil, err
	}
	return &Categorical{values: values, dist: d}, nil
}

// NewZipfCategorical weights the i-th value by 1/(i+1)^theta.
func NewZipfCategorical(values []string, theta float64) (*Categorical, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("pgen: zipf categorical needs values")
	}
	z, err := xrand.NewZipf(len(values), theta)
	if err != nil {
		return nil, err
	}
	w := make([]float64, len(values))
	for i := range w {
		w[i] = z.Prob(i)
	}
	return NewCategorical(values, w)
}

// Name implements Generator.
func (c *Categorical) Name() string { return "categorical" }

// Kind implements Generator.
func (c *Categorical) Kind() table.ValueKind { return table.KindString }

// Arity implements Generator.
func (c *Categorical) Arity() int { return 0 }

// Run implements Generator via inverse transform sampling.
func (c *Categorical) Run(id int64, s xrand.Stream, deps []Value) (Value, error) {
	return StringValue(c.values[c.dist.Sample(s, id)]), nil
}

// Values exposes the category list (used by the engine to map values to
// group indices for matching).
func (c *Categorical) Values() []string { return c.values }

// Prob returns the probability of the i-th value.
func (c *Categorical) Prob(i int) float64 { return c.dist.Prob(i) }

// UniformInt draws int64 uniform in [Lo, Hi].
type UniformInt struct{ Lo, Hi int64 }

// Name implements Generator.
func (u *UniformInt) Name() string { return "uniform-int" }

// Kind implements Generator.
func (u *UniformInt) Kind() table.ValueKind { return table.KindInt }

// Arity implements Generator.
func (u *UniformInt) Arity() int { return 0 }

// Run implements Generator.
func (u *UniformInt) Run(id int64, s xrand.Stream, deps []Value) (Value, error) {
	if u.Hi < u.Lo {
		return Value{}, fmt.Errorf("pgen: uniform-int range [%d,%d] empty", u.Lo, u.Hi)
	}
	return IntValue(u.Lo + s.Intn(id, u.Hi-u.Lo+1)), nil
}

// UniformFloat draws float64 uniform in [Lo, Hi).
type UniformFloat struct{ Lo, Hi float64 }

// Name implements Generator.
func (u *UniformFloat) Name() string { return "uniform-float" }

// Kind implements Generator.
func (u *UniformFloat) Kind() table.ValueKind { return table.KindFloat }

// Arity implements Generator.
func (u *UniformFloat) Arity() int { return 0 }

// Run implements Generator.
func (u *UniformFloat) Run(id int64, s xrand.Stream, deps []Value) (Value, error) {
	if u.Hi <= u.Lo {
		return Value{}, fmt.Errorf("pgen: uniform-float range [%v,%v) empty", u.Lo, u.Hi)
	}
	return FloatValue(s.Float64Range(id, u.Lo, u.Hi)), nil
}

// UniformDate draws a date uniform in [From, To] (days since epoch).
type UniformDate struct{ From, To int64 }

// Name implements Generator.
func (u *UniformDate) Name() string { return "uniform-date" }

// Kind implements Generator.
func (u *UniformDate) Kind() table.ValueKind { return table.KindDate }

// Arity implements Generator.
func (u *UniformDate) Arity() int { return 0 }

// Run implements Generator.
func (u *UniformDate) Run(id int64, s xrand.Stream, deps []Value) (Value, error) {
	if u.To < u.From {
		return Value{}, fmt.Errorf("pgen: uniform-date range empty")
	}
	return DateValue(u.From + s.Intn(id, u.To-u.From+1)), nil
}

// Normal draws a normal float with the given mean and standard
// deviation.
type Normal struct{ Mean, Std float64 }

// Name implements Generator.
func (n *Normal) Name() string { return "normal" }

// Kind implements Generator.
func (n *Normal) Kind() table.ValueKind { return table.KindFloat }

// Arity implements Generator.
func (n *Normal) Arity() int { return 0 }

// Run implements Generator.
func (n *Normal) Run(id int64, s xrand.Stream, deps []Value) (Value, error) {
	if n.Std < 0 {
		return Value{}, fmt.Errorf("pgen: normal needs std >= 0")
	}
	return FloatValue(n.Mean + n.Std*s.NormFloat64(id)), nil
}

// Sequence returns the instance id itself (plus an offset) — the
// paper's "user-controlled uuids that can be correlated with other
// properties such as the time".
type Sequence struct{ Offset int64 }

// Name implements Generator.
func (q *Sequence) Name() string { return "sequence" }

// Kind implements Generator.
func (q *Sequence) Kind() table.ValueKind { return table.KindInt }

// Arity implements Generator.
func (q *Sequence) Arity() int { return 0 }

// Run implements Generator.
func (q *Sequence) Run(id int64, s xrand.Stream, deps []Value) (Value, error) {
	return IntValue(q.Offset + id), nil
}

// UUID produces a deterministic 32-hex-digit identifier from the
// instance id and stream.
type UUID struct{}

// Name implements Generator.
func (UUID) Name() string { return "uuid" }

// Kind implements Generator.
func (UUID) Kind() table.ValueKind { return table.KindString }

// Arity implements Generator.
func (UUID) Arity() int { return 0 }

// Run implements Generator.
func (UUID) Run(id int64, s xrand.Stream, deps []Value) (Value, error) {
	a := s.U64(2 * id)
	b := s.U64(2*id + 1)
	return StringValue(fmt.Sprintf("%016x%016x", a, b)), nil
}

// Constant returns a fixed value.
type Constant struct{ V Value }

// Name implements Generator.
func (c *Constant) Name() string { return "constant" }

// Kind implements Generator.
func (c *Constant) Kind() table.ValueKind { return c.V.Kind }

// Arity implements Generator.
func (c *Constant) Arity() int { return 0 }

// Run implements Generator.
func (c *Constant) Run(id int64, s xrand.Stream, deps []Value) (Value, error) {
	return c.V, nil
}

// Text produces pseudo-random sentences of Words words drawn from the
// embedded lexicon — the running example's Message.text.
type Text struct{ MinWords, MaxWords int }

// Name implements Generator.
func (t *Text) Name() string { return "text" }

// Kind implements Generator.
func (t *Text) Kind() table.ValueKind { return table.KindString }

// Arity implements Generator.
func (t *Text) Arity() int { return 0 }

// Run implements Generator.
func (t *Text) Run(id int64, s xrand.Stream, deps []Value) (Value, error) {
	if t.MinWords < 1 || t.MaxWords < t.MinWords {
		return Value{}, fmt.Errorf("pgen: text word bounds [%d,%d] invalid", t.MinWords, t.MaxWords)
	}
	n := t.MinWords + int(s.Intn(id*2+1, int64(t.MaxWords-t.MinWords+1)))
	sub := s.DeriveStream("words")
	var sb strings.Builder
	for w := 0; w < n; w++ {
		if w > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(lexicon[sub.Intn(id*97+int64(w), int64(len(lexicon)))])
	}
	return StringValue(sb.String()), nil
}

// registerBuiltins wires every built-in factory into a registry. A
// failed registration is recorded on the registry (not panicked) and
// surfaced from Build, so it fails the schema that needs the registry
// rather than whatever process happened to construct one.
func registerBuiltins(r *Registry) {
	must := func(err error) {
		if err != nil && r.err == nil {
			r.err = err
		}
	}
	must(r.Register("categorical", func(p map[string]string) (Generator, error) {
		values := paramList(p, "values")
		if dict := p["dict"]; dict != "" {
			dv, dw, err := Dictionary(dict)
			if err != nil {
				return nil, err
			}
			return NewCategorical(dv, dw)
		}
		var weights []float64
		if ws := paramList(p, "weights"); ws != nil {
			weights = make([]float64, len(ws))
			for i, w := range ws {
				f, err := strconv.ParseFloat(w, 64)
				if err != nil {
					return nil, fmt.Errorf("pgen: weight %q: %w", w, err)
				}
				weights[i] = f
			}
		}
		return NewCategorical(values, weights)
	}))
	must(r.Register("zipf", func(p map[string]string) (Generator, error) {
		values := paramList(p, "values")
		if dict := p["dict"]; dict != "" {
			dv, _, err := Dictionary(dict)
			if err != nil {
				return nil, err
			}
			values = dv
		}
		theta, err := paramFloat(p, "theta", 1.0)
		if err != nil {
			return nil, err
		}
		return NewZipfCategorical(values, theta)
	}))
	must(r.Register("uniform-int", func(p map[string]string) (Generator, error) {
		lo, err := paramInt(p, "lo", 0)
		if err != nil {
			return nil, err
		}
		hi, err := paramInt(p, "hi", 100)
		if err != nil {
			return nil, err
		}
		return &UniformInt{Lo: lo, Hi: hi}, nil
	}))
	must(r.Register("uniform-float", func(p map[string]string) (Generator, error) {
		lo, err := paramFloat(p, "lo", 0)
		if err != nil {
			return nil, err
		}
		hi, err := paramFloat(p, "hi", 1)
		if err != nil {
			return nil, err
		}
		return &UniformFloat{Lo: lo, Hi: hi}, nil
	}))
	must(r.Register("uniform-date", func(p map[string]string) (Generator, error) {
		from, err := paramDate(p, "from", "2010-01-01")
		if err != nil {
			return nil, err
		}
		to, err := paramDate(p, "to", "2020-01-01")
		if err != nil {
			return nil, err
		}
		return &UniformDate{From: from, To: to}, nil
	}))
	must(r.Register("normal", func(p map[string]string) (Generator, error) {
		mean, err := paramFloat(p, "mean", 0)
		if err != nil {
			return nil, err
		}
		std, err := paramFloat(p, "std", 1)
		if err != nil {
			return nil, err
		}
		return &Normal{Mean: mean, Std: std}, nil
	}))
	must(r.Register("sequence", func(p map[string]string) (Generator, error) {
		off, err := paramInt(p, "offset", 0)
		if err != nil {
			return nil, err
		}
		return &Sequence{Offset: off}, nil
	}))
	must(r.Register("uuid", func(p map[string]string) (Generator, error) {
		return UUID{}, nil
	}))
	must(r.Register("constant", func(p map[string]string) (Generator, error) {
		v, ok := p["value"]
		if !ok {
			return nil, fmt.Errorf("pgen: constant needs value=")
		}
		return &Constant{V: StringValue(v)}, nil
	}))
	must(r.Register("text", func(p map[string]string) (Generator, error) {
		lo, err := paramInt(p, "min", 3)
		if err != nil {
			return nil, err
		}
		hi, err := paramInt(p, "max", 12)
		if err != nil {
			return nil, err
		}
		return &Text{MinWords: int(lo), MaxWords: int(hi)}, nil
	}))
	must(r.Register("multi-categorical", func(p map[string]string) (Generator, error) {
		values := paramList(p, "values")
		var weights []float64
		if dict := p["dict"]; dict != "" {
			dv, dw, err := Dictionary(dict)
			if err != nil {
				return nil, err
			}
			values, weights = dv, dw
		}
		lo, err := paramInt(p, "min", 1)
		if err != nil {
			return nil, err
		}
		hi, err := paramInt(p, "max", 3)
		if err != nil {
			return nil, err
		}
		return NewMultiCategorical(values, weights, int(lo), int(hi), p["sep"])
	}))
	must(r.Register("dictionary", func(p map[string]string) (Generator, error) {
		return NewConditionalName(p["dict"])
	}))
	must(r.Register("max-endpoint-date", func(p map[string]string) (Generator, error) {
		maxDays, err := paramInt(p, "maxDays", 365)
		if err != nil {
			return nil, err
		}
		return &MaxEndpointDate{MaxLagDays: maxDays}, nil
	}))
	must(r.Register("endpoint-copy", func(p map[string]string) (Generator, error) {
		return &EndpointCopy{}, nil
	}))
	must(r.Register("rating", func(p map[string]string) (Generator, error) {
		lo, err := paramInt(p, "lo", 1)
		if err != nil {
			return nil, err
		}
		hi, err := paramInt(p, "hi", 5)
		if err != nil {
			return nil, err
		}
		return &Rating{Lo: lo, Hi: hi}, nil
	}))
}
