package pgen

import (
	"math"
	"strings"
	"testing"

	"datasynth/internal/table"
	"datasynth/internal/xrand"
)

func s(seed uint64) xrand.Stream { return xrand.NewStream(seed) }

func TestValueFormat(t *testing.T) {
	if StringValue("x").Format() != "x" {
		t.Error("string format")
	}
	if IntValue(42).Format() != "42" {
		t.Error("int format")
	}
	if FloatValue(0.5).Format() != "0.5" {
		t.Error("float format")
	}
	if DateValue(table.MustParseDate("2017-04-03")).Format() != "2017-04-03" {
		t.Error("date format")
	}
}

func TestCategoricalBasics(t *testing.T) {
	c, err := NewCategorical([]string{"a", "b"}, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := int64(0); i < 20000; i++ {
		v, err := c.Run(i, s(1), nil)
		if err != nil {
			t.Fatal(err)
		}
		counts[v.Str]++
	}
	fa := float64(counts["a"]) / 20000
	if math.Abs(fa-0.75) > 0.02 {
		t.Errorf("P(a) = %v, want 0.75", fa)
	}
	if c.Kind() != table.KindString || c.Arity() != 0 {
		t.Error("metadata wrong")
	}
}

func TestCategoricalValidation(t *testing.T) {
	if _, err := NewCategorical(nil, nil); err == nil {
		t.Error("empty values should fail")
	}
	if _, err := NewCategorical([]string{"a"}, []float64{1, 2}); err == nil {
		t.Error("weight mismatch should fail")
	}
}

func TestCategoricalUniformDefault(t *testing.T) {
	c, err := NewCategorical([]string{"a", "b", "c", "d"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if math.Abs(c.Prob(i)-0.25) > 1e-12 {
			t.Errorf("uniform prob %d = %v", i, c.Prob(i))
		}
	}
}

func TestZipfCategoricalShape(t *testing.T) {
	c, err := NewZipfCategorical([]string{"top", "mid", "low"}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Prob(0) <= c.Prob(1) || c.Prob(1) <= c.Prob(2) {
		t.Error("zipf weights not decreasing")
	}
}

func TestUniformIntBoundsInclusive(t *testing.T) {
	u := &UniformInt{Lo: -2, Hi: 2}
	seenLo, seenHi := false, false
	for i := int64(0); i < 5000; i++ {
		v, err := u.Run(i, s(2), nil)
		if err != nil {
			t.Fatal(err)
		}
		if v.Int < -2 || v.Int > 2 {
			t.Fatalf("value %d out of range", v.Int)
		}
		if v.Int == -2 {
			seenLo = true
		}
		if v.Int == 2 {
			seenHi = true
		}
	}
	if !seenLo || !seenHi {
		t.Error("bounds never sampled")
	}
	bad := &UniformInt{Lo: 5, Hi: 1}
	if _, err := bad.Run(0, s(1), nil); err == nil {
		t.Error("empty range should fail")
	}
}

func TestUniformFloat(t *testing.T) {
	u := &UniformFloat{Lo: 10, Hi: 20}
	for i := int64(0); i < 1000; i++ {
		v, _ := u.Run(i, s(3), nil)
		if v.Float < 10 || v.Float >= 20 {
			t.Fatalf("value %v out of [10,20)", v.Float)
		}
	}
	bad := &UniformFloat{Lo: 1, Hi: 1}
	if _, err := bad.Run(0, s(1), nil); err == nil {
		t.Error("empty range should fail")
	}
}

func TestUniformDate(t *testing.T) {
	from := table.MustParseDate("2015-01-01")
	to := table.MustParseDate("2015-12-31")
	u := &UniformDate{From: from, To: to}
	for i := int64(0); i < 1000; i++ {
		v, _ := u.Run(i, s(4), nil)
		if v.Int < from || v.Int > to {
			t.Fatalf("date %s outside 2015", v.Format())
		}
	}
}

func TestNormalMoments(t *testing.T) {
	n := &Normal{Mean: 5, Std: 2}
	var sum, sumSq float64
	N := int64(100000)
	for i := int64(0); i < N; i++ {
		v, _ := n.Run(i, s(5), nil)
		sum += v.Float
		sumSq += v.Float * v.Float
	}
	mean := sum / float64(N)
	std := math.Sqrt(sumSq/float64(N) - mean*mean)
	if math.Abs(mean-5) > 0.05 || math.Abs(std-2) > 0.05 {
		t.Errorf("normal(5,2) measured (%v, %v)", mean, std)
	}
}

func TestSequenceAndUUID(t *testing.T) {
	q := &Sequence{Offset: 100}
	v, _ := q.Run(5, s(1), nil)
	if v.Int != 105 {
		t.Errorf("sequence = %d", v.Int)
	}
	u := UUID{}
	a, _ := u.Run(1, s(1), nil)
	b, _ := u.Run(2, s(1), nil)
	if len(a.Str) != 32 || a.Str == b.Str {
		t.Errorf("uuid broken: %q %q", a.Str, b.Str)
	}
	a2, _ := u.Run(1, s(1), nil)
	if a.Str != a2.Str {
		t.Error("uuid not deterministic")
	}
}

func TestTextGenerator(t *testing.T) {
	g := &Text{MinWords: 2, MaxWords: 5}
	for i := int64(0); i < 200; i++ {
		v, err := g.Run(i, s(7), nil)
		if err != nil {
			t.Fatal(err)
		}
		words := strings.Fields(v.Str)
		if len(words) < 2 || len(words) > 5 {
			t.Fatalf("text %q has %d words", v.Str, len(words))
		}
	}
	bad := &Text{MinWords: 5, MaxWords: 2}
	if _, err := bad.Run(0, s(1), nil); err == nil {
		t.Error("bad bounds should fail")
	}
}

func TestConditionalNameCorrelation(t *testing.T) {
	c, err := NewConditionalName("")
	if err != nil {
		t.Fatal(err)
	}
	if c.Arity() != 2 {
		t.Errorf("arity = %d", c.Arity())
	}
	// Names must come from the (region, sex) list.
	deps := []Value{StringValue("Japan"), StringValue("F")}
	allowed := map[string]bool{}
	for _, n := range NamesFor("Japan", "F") {
		allowed[n] = true
	}
	for i := int64(0); i < 500; i++ {
		v, err := c.Run(i, s(8), deps)
		if err != nil {
			t.Fatal(err)
		}
		if !allowed[v.Str] {
			t.Fatalf("name %q not in east-asia/F list", v.Str)
		}
	}
	// Different (country, sex) must change the name pool.
	depsM := []Value{StringValue("Brazil"), StringValue("M")}
	vm, _ := c.Run(0, s(8), depsM)
	if allowed[vm.Str] {
		t.Errorf("Brazil/M name %q drawn from Japan/F pool", vm.Str)
	}
	if _, err := c.Run(0, s(8), nil); err == nil {
		t.Error("missing deps should fail")
	}
}

func TestConditionalNameUnknownCountryFallsBack(t *testing.T) {
	c, _ := NewConditionalName("")
	v, err := c.Run(0, s(9), []Value{StringValue("Atlantis"), StringValue("M")})
	if err != nil {
		t.Fatal(err)
	}
	if v.Str == "" {
		t.Error("fallback produced empty name")
	}
}

func TestDictionaryLookup(t *testing.T) {
	v, w, err := Dictionary("countries")
	if err != nil || len(v) != len(w) || len(v) == 0 {
		t.Fatalf("countries dictionary broken: %v", err)
	}
	if _, _, err := Dictionary("nope"); err == nil {
		t.Error("unknown dictionary should fail")
	}
	for _, name := range []string{"topics", "sexes", "words"} {
		vs, _, err := Dictionary(name)
		if err != nil || len(vs) == 0 {
			t.Errorf("dictionary %s broken", name)
		}
	}
}

func TestMaxEndpointDate(t *testing.T) {
	m := &MaxEndpointDate{MaxLagDays: 30}
	d1 := DateValue(1000)
	d2 := DateValue(1500)
	for i := int64(0); i < 500; i++ {
		v, err := m.Run(i, s(10), []Value{d1, d2})
		if err != nil {
			t.Fatal(err)
		}
		if v.Int <= 1500 || v.Int > 1500+30 {
			t.Fatalf("edge date %d not in (1500, 1530]", v.Int)
		}
	}
	if _, err := m.Run(0, s(1), nil); err == nil {
		t.Error("no deps should fail")
	}
}

func TestEndpointCopy(t *testing.T) {
	e := EndpointCopy{}
	v, err := e.Run(0, s(1), []Value{StringValue("hello")})
	if err != nil || v.Str != "hello" {
		t.Errorf("copy = %v, %v", v, err)
	}
	if _, err := e.Run(0, s(1), nil); err == nil {
		t.Error("arity violation should fail")
	}
}

func TestRatingJShape(t *testing.T) {
	r := &Rating{Lo: 1, Hi: 5}
	counts := map[int64]int{}
	N := 20000
	for i := int64(0); i < int64(N); i++ {
		v, err := r.Run(i, s(11), nil)
		if err != nil {
			t.Fatal(err)
		}
		if v.Int < 1 || v.Int > 5 {
			t.Fatalf("rating %d out of range", v.Int)
		}
		counts[v.Int]++
	}
	if counts[5] < counts[3] || counts[1] < counts[3] {
		t.Errorf("not J-shaped: %v", counts)
	}
	bad := &Rating{Lo: 5, Hi: 5}
	if _, err := bad.Run(0, s(1), nil); err == nil {
		t.Error("empty range should fail")
	}
}

func TestRegistryBuildAll(t *testing.T) {
	r := NewRegistry()
	cases := []struct {
		name   string
		params map[string]string
	}{
		{"categorical", map[string]string{"values": "a|b|c"}},
		{"categorical", map[string]string{"dict": "countries"}},
		{"categorical", map[string]string{"values": "a|b", "weights": "1|3"}},
		{"zipf", map[string]string{"values": "x|y|z", "theta": "1.2"}},
		{"zipf", map[string]string{"dict": "topics"}},
		{"uniform-int", map[string]string{"lo": "1", "hi": "10"}},
		{"uniform-float", map[string]string{"lo": "0", "hi": "2"}},
		{"uniform-date", map[string]string{"from": "2010-01-01", "to": "2011-01-01"}},
		{"normal", map[string]string{"mean": "5", "std": "2"}},
		{"sequence", map[string]string{"offset": "7"}},
		{"uuid", nil},
		{"constant", map[string]string{"value": "fixed"}},
		{"text", map[string]string{"min": "1", "max": "3"}},
		{"dictionary", nil},
		{"max-endpoint-date", map[string]string{"maxDays": "10"}},
		{"endpoint-copy", nil},
		{"rating", map[string]string{"lo": "1", "hi": "5"}},
	}
	for _, c := range cases {
		g, err := r.Build(c.name, c.params)
		if err != nil {
			t.Errorf("Build(%s): %v", c.name, err)
			continue
		}
		if g.Name() == "" {
			t.Errorf("%s has empty name", c.name)
		}
	}
}

func TestRegistryErrors(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Build("nope", nil); err == nil {
		t.Error("unknown generator should fail")
	}
	if _, err := r.Build("categorical", nil); err == nil {
		t.Error("categorical without values should fail")
	}
	if _, err := r.Build("uniform-int", map[string]string{"lo": "x"}); err == nil {
		t.Error("bad int param should fail")
	}
	if _, err := r.Build("uniform-date", map[string]string{"from": "junk"}); err == nil {
		t.Error("bad date param should fail")
	}
	if _, err := r.Build("constant", nil); err == nil {
		t.Error("constant without value should fail")
	}
	if _, err := r.Build("categorical", map[string]string{"values": "a|b", "weights": "1|x"}); err == nil {
		t.Error("bad weight should fail")
	}
	if err := r.Register("categorical", nil); err == nil {
		t.Error("duplicate registration should fail")
	}
	if err := r.Register("custom", func(map[string]string) (Generator, error) { return UUID{}, nil }); err != nil {
		t.Errorf("custom registration failed: %v", err)
	}
	if len(r.Names()) == 0 {
		t.Error("Names empty")
	}
}

func TestInPlaceRegeneration(t *testing.T) {
	// The Myriad invariant: regenerating any single id yields the same
	// value as generating the whole table.
	r := NewRegistry()
	g, err := r.Build("categorical", map[string]string{"dict": "countries"})
	if err != nil {
		t.Fatal(err)
	}
	stream := xrand.NewStream(99).DeriveStream("Person.country")
	full := make([]string, 1000)
	for i := int64(0); i < 1000; i++ {
		v, _ := g.Run(i, stream, nil)
		full[i] = v.Str
	}
	// Regenerate ids out of order, as a different worker would.
	for _, i := range []int64{999, 0, 500, 123, 77} {
		v, _ := g.Run(i, stream, nil)
		if v.Str != full[i] {
			t.Fatalf("in-place regeneration of id %d mismatches", i)
		}
	}
}

func TestMultiCategorical(t *testing.T) {
	m, err := NewMultiCategorical([]string{"a", "b", "c", "d"}, nil, 2, 3, ";")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 500; i++ {
		v, err := m.Run(i, s(5), nil)
		if err != nil {
			t.Fatal(err)
		}
		parts := strings.Split(v.Str, ";")
		if len(parts) < 2 || len(parts) > 3 {
			t.Fatalf("set %q has %d values", v.Str, len(parts))
		}
		seen := map[string]bool{}
		for _, p := range parts {
			if seen[p] {
				t.Fatalf("set %q repeats %q", v.Str, p)
			}
			seen[p] = true
		}
	}
	if m.Primary("x;y;z") != "x" || m.Primary("solo") != "solo" {
		t.Error("Primary extraction broken")
	}
}

func TestMultiCategoricalValidation(t *testing.T) {
	if _, err := NewMultiCategorical([]string{"a"}, nil, 0, 1, ""); err == nil {
		t.Error("min=0 should fail")
	}
	if _, err := NewMultiCategorical([]string{"a"}, nil, 1, 5, ""); err == nil {
		t.Error("max beyond universe should fail")
	}
	if _, err := NewMultiCategorical(nil, nil, 1, 1, ""); err == nil {
		t.Error("no values should fail")
	}
}

func TestMultiCategoricalDeterministic(t *testing.T) {
	m, _ := NewMultiCategorical([]string{"a", "b", "c"}, []float64{5, 3, 1}, 1, 3, ",")
	for i := int64(0); i < 100; i++ {
		v1, _ := m.Run(i, s(9), nil)
		v2, _ := m.Run(i, s(9), nil)
		if v1.Str != v2.Str {
			t.Fatal("multi-categorical not deterministic")
		}
	}
}

func TestMultiCategoricalViaRegistry(t *testing.T) {
	r := NewRegistry()
	g, err := r.Build("multi-categorical", map[string]string{"dict": "topics", "min": "1", "max": "4"})
	if err != nil {
		t.Fatal(err)
	}
	v, err := g.Run(0, s(1), nil)
	if err != nil || v.Str == "" {
		t.Errorf("registry multi-categorical: %v %q", err, v.Str)
	}
	if _, err := r.Build("multi-categorical", map[string]string{"values": "a|b", "max": "9"}); err == nil {
		t.Error("oversized set should fail")
	}
}

// TestRegistrationErrorSurfacesNotPanics mirrors the sgen regression:
// a failed built-in registration is recorded and surfaced from Build
// instead of panicking the process.
func TestRegistrationErrorSurfacesNotPanics(t *testing.T) {
	r := NewRegistry()
	registerBuiltins(r) // duplicates: every Register fails
	if _, err := r.Build("uniform-int", map[string]string{"lo": "1", "hi": "2"}); err == nil {
		t.Fatal("Build on a broken registry must return the registration error")
	}
}
