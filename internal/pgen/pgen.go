// Package pgen implements DataSynth's Property Generators (paper
// Section 4.1). A Property Generator (PG) produces the value of one
// property for one instance id:
//
//	run : (id, r(id), val_0, …, val_k) -> T
//
// where r(id) is the instance's deterministic random draw and val_j are
// the values of the properties this one is conditioned on. Because run
// depends only on (id, r(id), deps), any row can be regenerated
// in-place on any worker — the Myriad technique the paper adopts — and
// rows can be generated in parallel in any order.
package pgen

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"datasynth/internal/table"
	"datasynth/internal/xrand"
)

// Value is one property value, tagged by kind. Dates use the Int field
// (days since epoch).
type Value struct {
	Kind  table.ValueKind
	Str   string
	Int   int64
	Float float64
}

// StringValue wraps a string.
func StringValue(s string) Value { return Value{Kind: table.KindString, Str: s} }

// IntValue wraps an int64.
func IntValue(i int64) Value { return Value{Kind: table.KindInt, Int: i} }

// FloatValue wraps a float64.
func FloatValue(f float64) Value { return Value{Kind: table.KindFloat, Float: f} }

// DateValue wraps a date (days since epoch).
func DateValue(days int64) Value { return Value{Kind: table.KindDate, Int: days} }

// Format renders the value as its CSV/DSL string form.
func (v Value) Format() string {
	switch v.Kind {
	case table.KindString:
		return v.Str
	case table.KindFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case table.KindDate:
		return table.FormatDate(v.Int)
	default:
		return strconv.FormatInt(v.Int, 10)
	}
}

// Generator is the PG interface. Implementations must be pure: the
// result may depend only on the inputs.
type Generator interface {
	// Name is the DSL identifier.
	Name() string
	// Kind is the value kind produced.
	Kind() table.ValueKind
	// Arity is the number of dependency values Run expects.
	Arity() int
	// Run produces the value of instance id. s is the property's
	// dedicated stream (one per PT, as the paper requires); deps carries
	// the values of depended-on properties for the same instance.
	Run(id int64, s xrand.Stream, deps []Value) (Value, error)
}

// Factory builds a Generator from DSL parameters.
type Factory func(params map[string]string) (Generator, error)

// Registry maps generator names to factories; the engine and DSL
// resolve schema.GeneratorSpec through it. It corresponds to the
// paper's "pluggable objects that can be referenced from the DSL".
type Registry struct {
	factories map[string]Factory
	// err records a failed built-in registration; registration used to
	// panic(err), which a service worker would die from. Build surfaces
	// it instead, so a broken registry fails one job, not the process.
	err error
}

// NewRegistry returns a registry preloaded with all built-in PGs.
func NewRegistry() *Registry {
	r := &Registry{factories: map[string]Factory{}}
	registerBuiltins(r)
	return r
}

// Register adds a factory; it fails on duplicates.
func (r *Registry) Register(name string, f Factory) error {
	if _, dup := r.factories[name]; dup {
		return fmt.Errorf("pgen: generator %q already registered", name)
	}
	r.factories[name] = f
	return nil
}

// Build resolves a generator spec.
func (r *Registry) Build(name string, params map[string]string) (Generator, error) {
	if r.err != nil {
		return nil, r.err
	}
	f, ok := r.factories[name]
	if !ok {
		return nil, fmt.Errorf("pgen: unknown generator %q (have: %s)", name, strings.Join(r.Names(), ", "))
	}
	return f(params)
}

// Names lists registered generators, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.factories))
	for n := range r.factories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// --- parameter helpers used by factories ---

func paramInt(params map[string]string, key string, def int64) (int64, error) {
	v, ok := params[key]
	if !ok || v == "" {
		return def, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("pgen: parameter %s=%q is not an integer", key, v)
	}
	return n, nil
}

func paramFloat(params map[string]string, key string, def float64) (float64, error) {
	v, ok := params[key]
	if !ok || v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("pgen: parameter %s=%q is not a number", key, v)
	}
	return f, nil
}

func paramDate(params map[string]string, key, def string) (int64, error) {
	v, ok := params[key]
	if !ok || v == "" {
		v = def
	}
	return table.ParseDate(v)
}

// paramList splits a "|"-separated list parameter.
func paramList(params map[string]string, key string) []string {
	v, ok := params[key]
	if !ok || v == "" {
		return nil
	}
	parts := strings.Split(v, "|")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if t := strings.TrimSpace(p); t != "" {
			out = append(out, t)
		}
	}
	return out
}
