package pgen

import (
	"fmt"

	"datasynth/internal/table"
	"datasynth/internal/xrand"
)

// Derived edge-property generators: these implement the paper's
// "binary logical relations between numerical values", e.g. the running
// example's constraint that knows.creationDate must be greater than the
// creationDate of both connected Persons. Their dependencies are the
// endpoint property values (resolved by the engine through the edge's
// tail/head ids).

// MaxEndpointDate produces max(dep dates) + uniform(1, MaxLagDays)
// days, guaranteeing the edge date strictly exceeds both endpoint
// dates.
type MaxEndpointDate struct {
	// MaxLagDays bounds the added lag (default 365).
	MaxLagDays int64
}

// Name implements Generator.
func (m *MaxEndpointDate) Name() string { return "max-endpoint-date" }

// Kind implements Generator.
func (m *MaxEndpointDate) Kind() table.ValueKind { return table.KindDate }

// Arity implements Generator: (tail date, head date).
func (m *MaxEndpointDate) Arity() int { return 2 }

// Run implements Generator.
func (m *MaxEndpointDate) Run(id int64, s xrand.Stream, deps []Value) (Value, error) {
	if len(deps) < 1 {
		return Value{}, fmt.Errorf("pgen: max-endpoint-date needs endpoint dates")
	}
	lag := m.MaxLagDays
	if lag <= 0 {
		lag = 365
	}
	maxD := deps[0].Int
	for _, d := range deps[1:] {
		if d.Int > maxD {
			maxD = d.Int
		}
	}
	return DateValue(maxD + 1 + s.Intn(id, lag)), nil
}

// EndpointCopy copies its single dependency value through — e.g. an
// edge property mirroring a node property for denormalised exports.
type EndpointCopy struct{}

// Name implements Generator.
func (EndpointCopy) Name() string { return "endpoint-copy" }

// Kind implements Generator.
func (EndpointCopy) Kind() table.ValueKind { return table.KindString }

// Arity implements Generator.
func (EndpointCopy) Arity() int { return 1 }

// Run implements Generator.
func (EndpointCopy) Run(id int64, s xrand.Stream, deps []Value) (Value, error) {
	if len(deps) != 1 {
		return Value{}, fmt.Errorf("pgen: endpoint-copy expects one dependency")
	}
	return deps[0], nil
}

// Rating produces an integer rating in [Lo, Hi] with a J-shaped
// distribution (mass concentrated at the extremes, as observed in real
// review datasets).
type Rating struct{ Lo, Hi int64 }

// Name implements Generator.
func (r *Rating) Name() string { return "rating" }

// Kind implements Generator.
func (r *Rating) Kind() table.ValueKind { return table.KindInt }

// Arity implements Generator.
func (r *Rating) Arity() int { return 0 }

// Run implements Generator.
func (r *Rating) Run(id int64, s xrand.Stream, deps []Value) (Value, error) {
	if r.Hi <= r.Lo {
		return Value{}, fmt.Errorf("pgen: rating range [%d,%d] invalid", r.Lo, r.Hi)
	}
	span := r.Hi - r.Lo
	u := s.Float64(id)
	// J-shape: 50% top rating, 20% bottom, rest uniform in between.
	switch {
	case u < 0.5:
		return IntValue(r.Hi), nil
	case u < 0.7:
		return IntValue(r.Lo), nil
	default:
		if span < 2 {
			return IntValue(r.Lo), nil
		}
		return IntValue(r.Lo + 1 + s.Intn(id+1<<40, span-1)), nil
	}
}
