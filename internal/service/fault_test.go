package service

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"datasynth/internal/faultfs"
	"datasynth/internal/table"
)

// Injected-fault suite: every failure mode the daemon claims to
// survive — worker panics, transient and persistent store faults,
// crashes between stage and commit, torn entries, failing cleanups,
// and sustained random fault pressure — is driven here through
// faultfs.InjectFS and asserted on, under -race in CI.

// panicDSL is a schema any client can submit that used to kill the
// whole daemon: uniform-int over the full int64 range overflows
// Hi-Lo+1 to zero and the stream's Intn panics inside the parallel
// fill workers.
const panicDSL = `graph boom {
  seed = 11
  node A {
    count = 64
    property p : int = uniform-int(lo=-9223372036854775808, hi=9223372036854775807)
  }
}`

func waitTerminal(t testing.TB, j *Job) JobView {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s did not reach a terminal state", j.ID())
	}
	return j.View()
}

func httpGet(t testing.TB, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestPanicIsolationFailsOnlyJob: a panicking generation fails its own
// job — error carrying "panic" — while the daemon keeps accepting and
// completing other work, and the panic is counted.
func TestPanicIsolationFailsOnlyJob(t *testing.T) {
	svc := newTestService(t, Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	res, err := svc.Submit(panicDSL, table.FormatCSV)
	if err != nil {
		t.Fatalf("the panic schema parses and validates; Submit = %v", err)
	}
	v := waitTerminal(t, res.Job)
	if v.Status != StatusFailed {
		t.Fatalf("panicking job finished %s, want failed", v.Status)
	}
	if !strings.Contains(v.Error, "panic") {
		t.Fatalf("failed job error should name the panic: %q", v.Error)
	}

	// The daemon survived: a normal submission still completes.
	good, err := svc.Submit(testSchema(21), table.FormatCSV)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, good.Job)

	if got := svc.Stats().Jobs.Panics; got < 1 {
		t.Fatalf("Stats.Jobs.Panics = %d, want >= 1", got)
	}
	code, body := httpGet(t, ts.URL+"/v1/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	if !strings.Contains(string(body), "datasynthd_panics_total 1") {
		t.Fatalf("metrics missing panics counter:\n%s", body)
	}
}

// TestStoreRetryRecoversTransientFault: a store that fails once and
// then succeeds costs a retry, not a failed job and not degraded mode.
func TestStoreRetryRecoversTransientFault(t *testing.T) {
	fsys := faultfs.NewInject(1, &faultfs.Rule{
		Ops: faultfs.OpWriteFile, Path: manifestName, Times: 1,
	})
	svc := newTestService(t, Config{FS: fsys, StoreRetryBase: time.Millisecond})
	res, err := svc.Submit(testSchema(31), table.FormatCSV)
	if err != nil {
		t.Fatal(err)
	}
	v := waitDone(t, res.Job)
	if v.Degraded {
		t.Fatal("a transient fault absorbed by retry must not degrade the job")
	}
	st := svc.Stats()
	if st.Cache.StoreRetries < 1 {
		t.Fatalf("StoreRetries = %d, want >= 1", st.Cache.StoreRetries)
	}
	if st.Degraded || st.Cache.Bypasses != 0 {
		t.Fatalf("degraded=%v bypasses=%d after a recovered store", st.Degraded, st.Cache.Bypasses)
	}
	if !svc.cache.has(res.Job.ID()) {
		t.Fatal("retried store must still commit the entry")
	}
}

// TestENOSPCDegradedBypass is the disk-pressure acceptance test: with
// the cache store persistently failing ENOSPC, a job still completes —
// degraded, serving byte-identical files cache-bypass — readyz flips
// to 503 while healthz stays 200, and a later successful store clears
// the degradation.
func TestENOSPCDegradedBypass(t *testing.T) {
	fsys := faultfs.NewInject(1, &faultfs.Rule{
		Ops: faultfs.OpWriteFile, Path: manifestName, Err: faultfs.ENOSPC,
	})
	svc := newTestService(t, Config{FS: fsys, StoreRetryBase: time.Millisecond})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	src := testSchema(41)
	res, err := svc.Submit(src, table.FormatCSV)
	if err != nil {
		t.Fatal(err)
	}
	v := waitDone(t, res.Job)
	if !v.Degraded {
		t.Fatal("job completed under ENOSPC must report degraded")
	}
	if dir := res.Job.BypassDir(); dir == "" {
		t.Fatal("degraded job must carry its bypass directory")
	}

	// Downloads work and are byte-identical to a clean direct export.
	want := directExport(t, src, table.FormatCSV)
	if len(v.Files) == 0 || len(v.Files) != len(want) {
		t.Fatalf("degraded job lists %d files, want %d", len(v.Files), len(want))
	}
	for _, f := range v.Files {
		code, body := httpGet(t, ts.URL+"/v1/jobs/"+res.Job.ID()+"/tables/"+f.Name)
		if code != http.StatusOK {
			t.Fatalf("download %s = %d: %s", f.Name, code, body)
		}
		if got := sha256Hex(body); got != want[f.Name] {
			t.Fatalf("degraded download %s differs from clean export", f.Name)
		}
	}

	// Liveness vs readiness: still alive, not ready.
	if code, _ := httpGet(t, ts.URL+"/v1/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200 while degraded", code)
	}
	code, body := httpGet(t, ts.URL+"/v1/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), "degraded") {
		t.Fatalf("readyz = %d %s, want 503 degraded", code, body)
	}
	st := svc.Stats()
	if !st.Degraded || st.Cache.Bypasses != 1 {
		t.Fatalf("stats degraded=%v bypasses=%d", st.Degraded, st.Cache.Bypasses)
	}
	if _, mbody := httpGet(t, ts.URL+"/v1/metrics"); !strings.Contains(string(mbody), "datasynthd_degraded 1") ||
		!strings.Contains(string(mbody), "datasynthd_cache_bypass_total 1") {
		t.Fatalf("metrics missing degraded/bypass samples:\n%s", mbody)
	}

	// Resubmitting the same schema rides along on the bypass job — no
	// wasted regeneration while the entry cannot be cached.
	res2, err := svc.Submit(src, table.FormatCSV)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.CacheHit || res2.Job != res.Job {
		t.Fatalf("resubmit of a degraded key should collapse onto the bypass job (hit=%v)", res2.CacheHit)
	}

	// Disk recovers: the next successful store clears the latch.
	fsys.ClearRules()
	ok, err := svc.Submit(testSchema(42), table.FormatCSV)
	if err != nil {
		t.Fatal(err)
	}
	if v := waitDone(t, ok.Job); v.Degraded {
		t.Fatal("store succeeds again; job must not be degraded")
	}
	if code, _ := httpGet(t, ts.URL+"/v1/readyz"); code != http.StatusOK {
		t.Fatalf("readyz = %d after recovery, want 200", code)
	}
	if svc.Stats().Degraded {
		t.Fatal("degraded latch must clear after a successful store")
	}
}

// TestCrashRecoveryQuarantineAndRegenerate simulates dying between
// stage and commit: the store never commits (persistent fault on the
// manifest write), the stage directory survives the "crash", and a
// fresh daemon over the same cache dir quarantines the debris and
// regenerates the dataset byte-identical on resubmit.
func TestCrashRecoveryQuarantineAndRegenerate(t *testing.T) {
	cacheDir := t.TempDir()
	src := testSchema(51)
	want := directExport(t, src, table.FormatCSV)

	fsys := faultfs.NewInject(1, &faultfs.Rule{
		Ops: faultfs.OpWriteFile, Path: manifestName, Err: faultfs.ErrCrash,
	})
	svc1 := newTestService(t, Config{CacheDir: cacheDir, FS: fsys, StoreRetryBase: time.Millisecond})
	res, err := svc1.Submit(src, table.FormatCSV)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, res.Job) // degraded: commit never happened
	key := res.Job.ID()
	stage := filepath.Join(cacheDir, cacheTempPrefix+key)
	if _, err := os.Stat(stage); err != nil {
		t.Fatalf("stage dir must survive the crashed commit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	svc1.Drain(ctx)
	cancel()

	// "Reboot": clean filesystem, same cache directory.
	svc2 := newTestService(t, Config{CacheDir: cacheDir})
	ts := httptest.NewServer(svc2.Handler())
	defer ts.Close()
	st := svc2.Stats()
	if st.Cache.Quarantined != 1 {
		t.Fatalf("startup sweep quarantined %d dirs, want 1", st.Cache.Quarantined)
	}
	if st.Cache.Entries != 0 {
		t.Fatalf("no entry was ever committed; index has %d", st.Cache.Entries)
	}
	if _, err := os.Stat(stage); !os.IsNotExist(err) {
		t.Fatalf("stage debris must be moved out of the cache root: %v", err)
	}
	if _, err := os.Stat(filepath.Join(cacheDir, quarantineDirName, cacheTempPrefix+key)); err != nil {
		t.Fatalf("quarantine must preserve the debris: %v", err)
	}

	// Resubmit regenerates — byte-identical to the clean export.
	res2, err := svc2.Submit(src, table.FormatCSV)
	if err != nil {
		t.Fatal(err)
	}
	if res2.CacheHit {
		t.Fatal("nothing was committed; resubmit must regenerate")
	}
	v := waitDone(t, res2.Job)
	if v.Degraded {
		t.Fatal("clean filesystem: job must commit normally")
	}
	for _, f := range v.Files {
		code, body := httpGet(t, ts.URL+"/v1/jobs/"+res2.Job.ID()+"/tables/"+f.Name)
		if code != http.StatusOK {
			t.Fatalf("download %s = %d", f.Name, code)
		}
		if sha256Hex(body) != want[f.Name] {
			t.Fatalf("regenerated %s differs from clean export", f.Name)
		}
	}
}

// TestTornEntryQuarantinedOnRestart: an entry whose manifest was torn
// mid-write (truncated JSON on disk) is quarantined by the next
// startup sweep and regenerates byte-identical.
func TestTornEntryQuarantinedOnRestart(t *testing.T) {
	cacheDir := t.TempDir()
	src := testSchema(61)

	svc1 := newTestService(t, Config{CacheDir: cacheDir})
	res, err := svc1.Submit(src, table.FormatCSV)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	v := waitDone(t, res.Job)
	key := res.Job.ID()
	for _, f := range v.Files {
		raw, err := os.ReadFile(filepath.Join(cacheDir, key, f.Name))
		if err != nil {
			t.Fatal(err)
		}
		want[f.Name] = sha256Hex(raw)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	svc1.Drain(ctx)
	cancel()

	// Tear the committed manifest: keep half the bytes.
	mPath := filepath.Join(cacheDir, key, manifestName)
	raw, err := os.ReadFile(mPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mPath, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	svc2 := newTestService(t, Config{CacheDir: cacheDir})
	st := svc2.Stats()
	if st.Cache.Quarantined != 1 || st.Cache.Entries != 0 {
		t.Fatalf("torn entry: quarantined=%d entries=%d, want 1/0", st.Cache.Quarantined, st.Cache.Entries)
	}
	res2, err := svc2.Submit(src, table.FormatCSV)
	if err != nil {
		t.Fatal(err)
	}
	if res2.CacheHit {
		t.Fatal("torn entry must not serve as a cache hit")
	}
	v2 := waitDone(t, res2.Job)
	for _, f := range v2.Files {
		raw, err := os.ReadFile(filepath.Join(cacheDir, key, f.Name))
		if err != nil {
			t.Fatal(err)
		}
		if sha256Hex(raw) != want[f.Name] {
			t.Fatalf("regenerated %s differs from the original bytes", f.Name)
		}
	}
}

// TestCleanupFailureCounted: a discard whose RemoveAll fails is logged
// and counted instead of silently leaking.
func TestCleanupFailureCounted(t *testing.T) {
	fsys := faultfs.NewInject(1,
		// First export file Create fails -> the job discards its stage.
		&faultfs.Rule{Ops: faultfs.OpCreate, Path: cacheTempPrefix, Nth: 1},
		// Match 1 is stage()'s pre-clean RemoveAll; match 2 is the
		// discard after the failed export — that one fails.
		&faultfs.Rule{Ops: faultfs.OpRemoveAll, Path: cacheTempPrefix, Nth: 2},
	)
	svc := newTestService(t, Config{FS: fsys})
	res, err := svc.Submit(testSchema(71), table.FormatCSV)
	if err != nil {
		t.Fatal(err)
	}
	v := waitTerminal(t, res.Job)
	if v.Status != StatusFailed {
		t.Fatalf("job = %s, want failed (export Create fault)", v.Status)
	}
	if got := svc.Stats().Cache.CleanupFailures; got < 1 {
		t.Fatalf("CleanupFailures = %d, want >= 1", got)
	}
}

// TestServiceChaosUnderFaults floods the daemon with concurrent
// submissions while roughly 1 in 16 filesystem operations fails at a
// seeded random position. Invariants: every job reaches a terminal
// state (no deadlock, no crash), the daemon stays live, and — after
// the fault pressure lifts — every successfully completed job serves
// downloads byte-identical to a clean export of its schema.
func TestServiceChaosUnderFaults(t *testing.T) {
	const jobs = 12
	fsys := faultfs.NewInject(0xC4A05)
	svc := newTestService(t, Config{
		FS:             fsys,
		JobWorkers:     4,
		StoreRetryBase: time.Millisecond,
	})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// Arm the faults only after startup so the sweep of an empty fresh
	// directory isn't what absorbs them.
	fsys.AddRule(&faultfs.Rule{OneIn: 16})

	var wg sync.WaitGroup
	results := make([]*Job, jobs)
	errs := make([]error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := svc.Submit(testSchema(100+i), table.FormatCSV)
			if err != nil {
				errs[i] = err // an injected cache-I/O fault at submit is a legal outcome
				return
			}
			results[i] = res.Job
		}(i)
	}
	wg.Wait()

	deadline := time.After(60 * time.Second)
	for i, j := range results {
		if j == nil {
			continue
		}
		select {
		case <-j.Done():
		case <-deadline:
			t.Fatalf("chaos: job %d stuck (no terminal state)", i)
		}
	}

	// Fault pressure lifts; the daemon must still be fully live.
	fsys.ClearRules()
	if code, _ := httpGet(t, ts.URL+"/v1/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d after chaos", code)
	}

	verified := 0
	for i, j := range results {
		if j == nil {
			t.Logf("chaos: submit %d rejected: %v", i, errs[i])
			continue
		}
		v := j.View()
		if v.Status != StatusDone {
			t.Logf("chaos: job %d terminal as %s: %s", i, v.Status, v.Error)
			continue
		}
		want := directExport(t, testSchema(100+i), table.FormatCSV)
		for _, f := range v.Files {
			code, body := httpGet(t, ts.URL+"/v1/jobs/"+j.ID()+"/tables/"+f.Name)
			if code != http.StatusOK {
				// The entry may have been integrity-evicted under fault
				// pressure; a clean resubmit must still produce it.
				t.Logf("chaos: job %d file %s = %d; regenerating", i, f.Name, code)
				re, err := svc.Submit(testSchema(100+i), table.FormatCSV)
				if err != nil {
					t.Fatal(err)
				}
				waitDone(t, re.Job)
				code, body = httpGet(t, ts.URL+"/v1/jobs/"+re.Job.ID()+"/tables/"+f.Name)
				if code != http.StatusOK {
					t.Fatalf("chaos: job %d file %s unreachable after regen: %d", i, f.Name, code)
				}
			}
			if got := sha256Hex(body); got != want[f.Name] {
				t.Fatalf("chaos: job %d file %s differs from clean export", i, f.Name)
			}
		}
		verified++
	}
	if verified == 0 {
		t.Fatal("chaos: no job completed successfully; fault rate too hot for the test to mean anything")
	}
	t.Logf("chaos: %d/%d jobs verified byte-identical; %d ops, %d faults injected",
		verified, jobs, fsys.Ops(), fsys.Injected())
}

// TestReadyzDraining: a draining daemon reports not-ready.
func TestReadyzDraining(t *testing.T) {
	svc := newTestService(t, Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	code, body := httpGet(t, ts.URL+"/v1/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), "draining") {
		t.Fatalf("readyz while draining = %d %s", code, body)
	}
}
