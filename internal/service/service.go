// Package service implements datasynthd: an HTTP daemon that accepts
// DSL schemas, runs them through the core engine on a bounded job
// queue, and streams exported datasets back in any of the three export
// formats.
//
// The design move is a content-addressable dataset cache keyed on
// (canonical schema hash, export format) — the canonical hash covers
// the schema version and the seed, see core.CanonicalHash — combined
// with singleflight collapsing of concurrent identical submissions.
// Both are sound only because of the engine's determinism contract: a
// dataset is a pure function of its key, byte-identical at any worker
// count, window size, or scheduling order, so a cache hit is provably
// byte-identical to regeneration and N concurrent identical submits
// need exactly one generation.
//
// Job lifecycle: queued → running → done | failed. The job id IS the
// cache key, so identical schemas submitted at any time share one job
// and one cache entry; a failed job is retried by the next submission
// of the same schema. Admission enforces per-job resource limits
// (declared node/edge counts), the queue is bounded (a full queue
// rejects with ErrQueueFull rather than buffering unboundedly), and
// running jobs are bounded by a worker pool. Generation enforces the
// limits again on the actual dataset and honours a per-job timeout via
// the engine's task-granular cancellation.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"datasynth/internal/core"
	"datasynth/internal/depgraph"
	"datasynth/internal/dsl"
	"datasynth/internal/faultfs"
	"datasynth/internal/par"
	"datasynth/internal/retry"
	"datasynth/internal/scenario"
	"datasynth/internal/schema"
	"datasynth/internal/table"
)

// Config parameterises a Service.
type Config struct {
	// CacheDir is the root of the content-addressable dataset cache.
	CacheDir string
	// CacheMaxBytes bounds the total size of committed cache entries
	// (sum of manifest file sizes). Storing past the bound evicts the
	// least recently used entries; an entry being streamed is evicted
	// only after its last reader closes. 0 means unbounded.
	CacheMaxBytes int64
	// QueueDepth bounds how many jobs may wait for a worker; a full
	// queue rejects submissions (ErrQueueFull). 0 means 64.
	QueueDepth int
	// JobWorkers bounds how many engines generate concurrently.
	// 0 means 2.
	JobWorkers int
	// EngineWorkers is the per-engine worker bound (core.Engine.Workers);
	// 0 means NumCPU.
	EngineWorkers int
	// MaxNodes / MaxEdges cap a job's dataset size, enforced at
	// admission on the schema's declared counts and after generation on
	// the actual dataset. 0 means unlimited.
	MaxNodes int64
	MaxEdges int64
	// JobTimeout bounds one generation; a timed-out job fails and
	// releases its worker at the next task boundary. 0 means no limit.
	JobTimeout time.Duration
	// MaxJobs bounds the in-memory job map: when an insert would push
	// the map past the bound, the oldest finished jobs are evicted
	// first. Queued and running jobs are never evicted. 0 means 4096;
	// negative disables the bound.
	MaxJobs int
	// JobRetention evicts finished jobs older than this from the job map
	// on each submission. 0 means no age bound.
	JobRetention time.Duration
	// ScenarioDir, when non-empty, enables the named-scenario registry
	// rooted there (PUT/GET/DELETE /v1/scenarios, submit-by-name, and
	// server-side sweeps). Empty disables the scenario surface.
	ScenarioDir string
	// MaxSweepPoints caps how many jobs a single POST /v1/sweeps may
	// expand into. 0 means 256.
	MaxSweepPoints int
	// FS, if non-nil, routes all cache and export disk I/O through it —
	// the fault-injection seam (faultfs.InjectFS in tests). Nil means
	// the real filesystem.
	FS faultfs.FS
	// StoreAttempts bounds how many times a failed cache store is tried
	// (jittered exponential backoff between tries) before the job
	// degrades to cache-bypass. 0 means 3; negative means 1 (no retry).
	StoreAttempts int
	// StoreRetryBase is the backoff base delay between store attempts.
	// 0 means 25ms.
	StoreRetryBase time.Duration
	// Logf, if non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

func (c *Config) queueDepth() int {
	if c.QueueDepth <= 0 {
		return 64
	}
	return c.QueueDepth
}

func (c *Config) jobWorkers() int {
	if c.JobWorkers <= 0 {
		return 2
	}
	return c.JobWorkers
}

func (c *Config) engineWorkers() int {
	if c.EngineWorkers <= 0 {
		return runtime.NumCPU()
	}
	return c.EngineWorkers
}

func (c *Config) storeAttempts() int {
	if c.StoreAttempts == 0 {
		return 3
	}
	if c.StoreAttempts < 0 {
		return 1
	}
	return c.StoreAttempts
}

func (c *Config) storeRetryBase() time.Duration {
	if c.StoreRetryBase <= 0 {
		return 25 * time.Millisecond
	}
	return c.StoreRetryBase
}

func (c *Config) maxSweepPoints() int {
	if c.MaxSweepPoints <= 0 {
		return 256
	}
	return c.MaxSweepPoints
}

func (c *Config) maxJobs() int {
	if c.MaxJobs == 0 {
		return 4096
	}
	if c.MaxJobs < 0 {
		return 0 // disabled
	}
	return c.MaxJobs
}

// Submission errors the HTTP layer maps to distinct status codes.
var (
	// ErrQueueFull: the bounded job queue is at capacity (503).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining: the service is shutting down (503).
	ErrDraining = errors.New("service: draining, not accepting jobs")
)

// LimitError reports a schema exceeding a per-job resource limit (422).
type LimitError struct{ msg string }

func (e *LimitError) Error() string { return e.msg }

// internalError marks a server-side fault (cache I/O) surfacing from
// Submit, as opposed to a bad submission; the HTTP layer maps it to
// 500 so clients don't misread an operator problem as a schema error.
type internalError struct{ err error }

func (e *internalError) Error() string { return e.err.Error() }
func (e *internalError) Unwrap() error { return e.err }

// JobStatus is a job's lifecycle state.
type JobStatus string

// Job lifecycle states.
const (
	StatusQueued  JobStatus = "queued"
	StatusRunning JobStatus = "running"
	StatusDone    JobStatus = "done"
	StatusFailed  JobStatus = "failed"
)

// Job is one generation request, shared by every submitter of the same
// schema (the id is the cache key).
type Job struct {
	id     string
	schema *schema.Schema
	format table.Format

	mu       sync.Mutex
	status   JobStatus
	errMsg   string
	created  time.Time
	started  time.Time
	finished time.Time
	cacheHit bool // completed straight from the disk cache
	// bypassDir, when non-empty, is the staging directory this job's
	// files are served from: the cache refused the entry (disk full,
	// I/O fault) but the export itself succeeded, so the job completed
	// in degraded cache-bypass mode instead of failing.
	bypassDir string
	manifest  *Manifest

	// done closes when the job reaches a terminal state.
	done chan struct{}
}

// ID returns the job id (the cache key).
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job reaches done or failed.
func (j *Job) Done() <-chan struct{} { return j.done }

// Manifest returns the cache-entry manifest of a completed job, nil
// otherwise.
func (j *Job) Manifest() *Manifest {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusDone {
		return nil
	}
	return j.manifest
}

// JobView is an immutable snapshot of a job for serialization.
type JobView struct {
	ID       string    `json:"id"`
	Status   JobStatus `json:"status"`
	Graph    string    `json:"graph"`
	Seed     uint64    `json:"seed"`
	Format   string    `json:"format"`
	CacheHit bool      `json:"cache_hit"`
	// Degraded: the job completed in cache-bypass mode — downloads work
	// and are byte-identical to a cached run, but the dataset was not
	// committed to the cache and lives only as long as the job record.
	Degraded bool            `json:"degraded,omitempty"`
	Created  time.Time       `json:"created"`
	Started  *time.Time      `json:"started,omitempty"`
	Finished *time.Time      `json:"finished,omitempty"`
	Error    string          `json:"error,omitempty"`
	Nodes    int64           `json:"nodes,omitempty"`
	Edges    int64           `json:"edges,omitempty"`
	Files    []ManifestFile  `json:"files,omitempty"`
	Report   json.RawMessage `json:"report,omitempty"`
}

// View snapshots the job.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:       j.id,
		Status:   j.status,
		Graph:    j.schema.Name,
		Seed:     j.schema.Seed,
		Format:   j.format.String(),
		CacheHit: j.cacheHit,
		Degraded: j.bypassDir != "",
		Created:  j.created,
		Error:    j.errMsg,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if m := j.manifest; m != nil && j.status == StatusDone {
		v.Nodes, v.Edges = m.Nodes, m.Edges
		v.Files = m.Files
		v.Report = m.Report
	}
	return v
}

func (j *Job) setRunning() {
	j.mu.Lock()
	j.status = StatusRunning
	j.started = time.Now()
	j.mu.Unlock()
}

func (j *Job) fail(err error) {
	j.mu.Lock()
	j.status = StatusFailed
	j.errMsg = err.Error()
	j.finished = time.Now()
	j.mu.Unlock()
	close(j.done)
}

// complete marks the job done. The run's timing report lives on as
// manifest.Report (already serialized), which is what JobView serves.
func (j *Job) complete(m *Manifest, fromCache bool) {
	j.mu.Lock()
	j.status = StatusDone
	j.manifest = m
	j.cacheHit = fromCache
	j.finished = time.Now()
	j.mu.Unlock()
	close(j.done)
}

// completeBypass marks the job done in degraded cache-bypass mode:
// its files are served from dir (the staging directory the export
// landed in) because the cache could not commit the entry.
func (j *Job) completeBypass(m *Manifest, dir string) {
	j.mu.Lock()
	j.status = StatusDone
	j.manifest = m
	j.bypassDir = dir
	j.finished = time.Now()
	j.mu.Unlock()
	close(j.done)
}

// BypassDir returns the staging directory a degraded job serves from,
// or "" for cache-backed jobs.
func (j *Job) BypassDir() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.bypassDir
}

// SubmitResult is the outcome of one submission.
type SubmitResult struct {
	Job *Job
	// CacheHit: the dataset was already on disk; the job is done.
	CacheHit bool
	// Deduped: an identical job was already queued or running
	// (singleflight); this submission rides along on it.
	Deduped bool
}

// Service is the caching generation service.
type Service struct {
	cfg   Config
	cache *diskCache
	scen  *scenario.Registry // nil when Config.ScenarioDir is empty
	start time.Time

	mu       sync.Mutex
	jobs     map[string]*Job
	draining bool
	// drainCh closes when Drain starts, waking ?wait long-polls so an
	// HTTP shutdown is never stuck behind a poller.
	drainCh chan struct{}
	queue   chan *Job
	wg      sync.WaitGroup

	cacheHits     atomic.Int64
	cacheMisses   atomic.Int64
	dedupHits     atomic.Int64
	evictions     atomic.Int64 // integrity evictions (corrupt entries)
	jobEvictions  atomic.Int64
	generations   atomic.Int64
	inFlight      atomic.Int64
	submits       atomic.Int64
	writeFailures atomic.Int64 // JSON responses that failed mid-write
	panics        atomic.Int64 // panics recovered into failed jobs
	storeRetries  atomic.Int64 // cache-store attempts beyond the first
	bypasses      atomic.Int64 // jobs completed in cache-bypass mode

	// Scenario-surface counters (all zero when the registry is off).
	namedSubmits atomic.Int64 // submissions resolved through a scenario ref
	anonSubmits  atomic.Int64 // submissions carrying their own schema text
	scenarioPuts atomic.Int64 // new scenario versions committed
	scenarioDels atomic.Int64 // scenarios deleted
	sweepSubmits atomic.Int64 // accepted POST /v1/sweeps requests
	sweepPoints  atomic.Int64 // jobs submitted on behalf of sweeps

	sweepMu sync.Mutex
	sweeps  map[string]*Sweep

	// degraded latches on when a cache store exhausts its retries and a
	// job completes by bypass; it clears on the next successful store.
	// /v1/readyz reports it so an orchestrator can steer traffic away
	// from a daemon whose disk is sick while it keeps serving.
	degraded atomic.Bool

	phases phaseHistograms // per-phase latency, served by /v1/metrics
}

// New starts a service: creates the cache directory and launches the
// job worker pool. Stop it with Drain.
func New(cfg Config) (*Service, error) {
	if cfg.CacheDir == "" {
		return nil, fmt.Errorf("service: CacheDir is required")
	}
	cache, err := newDiskCache(cfg.CacheDir, cfg.CacheMaxBytes, cfg.FS, cfg.Logf)
	if err != nil {
		return nil, err
	}
	var scen *scenario.Registry
	if cfg.ScenarioDir != "" {
		scen, err = scenario.NewRegistry(cfg.ScenarioDir, cfg.FS, cfg.Logf)
		if err != nil {
			return nil, err
		}
	}
	s := &Service{
		cfg:     cfg,
		cache:   cache,
		scen:    scen,
		start:   time.Now(),
		jobs:    map[string]*Job{},
		sweeps:  map[string]*Sweep{},
		drainCh: make(chan struct{}),
		queue:   make(chan *Job, cfg.queueDepth()),
	}
	for w := 0; w < cfg.jobWorkers(); w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			// runJob recovers per-job panics itself; this outer Safe is a
			// backstop for the loop plumbing, so a crash there degrades the
			// pool by one worker instead of killing the whole daemon.
			if err := par.Safe(func() error { s.worker(); return nil }); err != nil {
				s.logf("service: job worker crashed: %v", err)
			}
		}()
	}
	return s, nil
}

// CacheKey derives the content address of (schema, format): the
// canonical schema hash — which embeds the schema version and the
// seed — joined with the format name, so the same schema exported in
// two formats occupies two independent entries.
func CacheKey(s *schema.Schema, f table.Format) string {
	return core.CanonicalHash(s) + "-" + f.String()
}

// Submit parses, validates, admits and enqueues a schema; or returns
// the existing identical job (singleflight) or a completed job served
// straight from the disk cache. src is DSL text.
func (s *Service) Submit(src string, format table.Format) (SubmitResult, error) {
	s.submits.Add(1)
	s.anonSubmits.Add(1)
	sch, err := dsl.Parse(src)
	if err != nil {
		return SubmitResult{}, err
	}
	if err := core.ValidateSchema(sch); err != nil {
		return SubmitResult{}, err
	}
	return s.submitSchema(sch, format)
}

// submitSchema admits and enqueues an already validated schema — the
// shared tail of every submission path (anonymous text, scenario ref,
// sweep point). The cache key is derived from the schema itself, so a
// named submit and an anonymous submit of the same resolved text
// collapse onto one job, one cache entry, one singleflight group.
func (s *Service) submitSchema(sch *schema.Schema, format table.Format) (SubmitResult, error) {
	if err := s.checkDeclaredLimits(sch); err != nil {
		return SubmitResult{}, err
	}
	key := CacheKey(sch, format)

	// Singleflight, round 1: an identical job already queued, running,
	// or completed collapses this submission onto it. A completed job
	// only counts if its dataset is still reachable — in the cache, or
	// served by the job's own bypass directory (degraded mode). LRU
	// eviction can pull the entry out from under a done job, and riding
	// along on one would hand the client a job whose downloads all 404.
	s.mu.Lock()
	if j, ok := s.jobs[key]; ok && !isFailed(j) {
		if !isDone(j) || s.cache.has(key) || j.BypassDir() != "" {
			s.mu.Unlock()
			return s.rideAlong(j), nil
		}
		delete(s.jobs, key)
	}
	s.mu.Unlock()

	// Disk lookup outside the service lock: validating an entry hashes
	// its files, which must not serialize unrelated submissions.
	m, evicted, err := s.cache.lookup(key)
	if err != nil {
		return SubmitResult{}, &internalError{err}
	}
	if evicted {
		s.evictions.Add(1)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	// Round 2: somebody may have submitted the same schema while we
	// were hashing (same stale-done-job caveat as round 1).
	if j, ok := s.jobs[key]; ok && !isFailed(j) {
		if !isDone(j) || s.cache.has(key) || j.BypassDir() != "" {
			return s.rideAlong(j), nil
		}
		delete(s.jobs, key)
	}
	// About to insert a job either way below: garbage-collect the map
	// first so long-running services don't accumulate one Job per
	// distinct schema forever.
	s.pruneJobsLocked()
	if m != nil {
		s.cacheHits.Add(1)
		j := newJob(key, sch, format)
		j.complete(m, true)
		s.jobs[key] = j
		return SubmitResult{Job: j, CacheHit: true}, nil
	}
	if s.draining {
		return SubmitResult{}, ErrDraining
	}
	j := newJob(key, sch, format)
	select {
	case s.queue <- j:
	default:
		return SubmitResult{}, ErrQueueFull
	}
	// Count the miss only for admitted work: a load-shed 503 says
	// nothing about the cache, and counting it would crater the
	// reported hit rate exactly when the operator is staring at it.
	s.cacheMisses.Add(1)
	s.jobs[key] = j
	s.logf("job %s queued (graph %s, seed %d, %s)", shortKey(key), sch.Name, sch.Seed, format)
	return SubmitResult{Job: j}, nil
}

func newJob(key string, sch *schema.Schema, format table.Format) *Job {
	return &Job{
		id:      key,
		schema:  sch,
		format:  format,
		status:  StatusQueued,
		created: time.Now(),
		done:    make(chan struct{}),
	}
}

// rideAlong collapses a submission onto an existing identical job. A
// completed job counts as a cache hit (the dataset is served without
// any new generation — the in-memory tier of the cache); a queued or
// running one is the singleflight dedup proper.
func (s *Service) rideAlong(j *Job) SubmitResult {
	if isDone(j) {
		s.cacheHits.Add(1)
		return SubmitResult{Job: j, CacheHit: true, Deduped: true}
	}
	s.dedupHits.Add(1)
	return SubmitResult{Job: j, Deduped: true}
}

// pruneJobsLocked garbage-collects the in-memory job map ahead of one
// insert: finished jobs past JobRetention go first, then — while the
// insert would still push the map past MaxJobs — the oldest finished
// jobs. Queued and running jobs are never evicted (the queue owns
// them). Eviction is safe: a done job's dataset persists in the disk
// cache, so resubmitting its schema is a cache hit, and a failed job
// would be retried by the next submission anyway. Caller holds s.mu.
func (s *Service) pruneJobsLocked() {
	retention := s.cfg.JobRetention
	maxJobs := s.cfg.maxJobs()
	if retention <= 0 && maxJobs <= 0 {
		return
	}
	type finishedJob struct {
		key string
		at  time.Time
	}
	var fin []finishedJob
	for key, j := range s.jobs {
		j.mu.Lock()
		terminal := j.status == StatusDone || j.status == StatusFailed
		at := j.finished
		j.mu.Unlock()
		if terminal {
			fin = append(fin, finishedJob{key, at})
		}
	}
	evict := func(key string) {
		// A degraded job's dataset lives only in its bypass directory;
		// evicting the job record is the moment to reclaim the disk.
		if j := s.jobs[key]; j != nil {
			if dir := j.BypassDir(); dir != "" {
				s.cache.removeDir(dir)
			}
		}
		delete(s.jobs, key)
		s.jobEvictions.Add(1)
	}
	if retention > 0 {
		cutoff := time.Now().Add(-retention)
		kept := fin[:0]
		for _, f := range fin {
			if f.at.Before(cutoff) {
				evict(f.key)
			} else {
				kept = append(kept, f)
			}
		}
		fin = kept
	}
	if maxJobs > 0 && len(s.jobs)+1 > maxJobs {
		sort.Slice(fin, func(a, b int) bool { return fin[a].at.Before(fin[b].at) })
		for _, f := range fin {
			if len(s.jobs)+1 <= maxJobs {
				break
			}
			evict(f.key)
		}
	}
}

func isFailed(j *Job) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status == StatusFailed
}

func isDone(j *Job) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status == StatusDone
}

// Job returns a job by id (cache key), or nil.
func (s *Service) Job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// worker drains the job queue until it closes.
func (s *Service) worker() {
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob generates, size-checks, exports and commits one job. The
// entire pipeline runs inside par.Safe: a panic anywhere in it — a
// generator bug, a bad schema tripping library code — is recovered
// into a failed job (error message carrying the stack) instead of
// killing the worker goroutine and with it the whole daemon.
func (s *Service) runJob(j *Job) {
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	j.setRunning()
	s.logf("job %s running", shortKey(j.id))
	if err := par.Safe(func() error { return s.executeJob(j) }); err != nil {
		s.failJob(j, err)
	}
}

// executeJob is the runJob pipeline body; it completes j itself on
// success and returns the failure otherwise.
func (s *Service) executeJob(j *Job) error {
	ctx := context.Background()
	if s.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
		defer cancel()
	}
	eng := core.New(j.schema)
	eng.Workers = s.cfg.engineWorkers()
	eng.ExportFormat = j.format
	eng.ExportFS = s.cfg.FS

	s.generations.Add(1)
	genStart := time.Now()
	d, err := eng.GenerateCtx(ctx)
	if err != nil {
		return err
	}
	s.phases.observe(phaseGenerate, time.Since(genStart))
	if err := s.checkDatasetLimits(d); err != nil {
		return err
	}
	stageDir, err := s.cache.stage(j.id)
	if err != nil {
		return err
	}
	// The job deadline covers the whole pipeline: the export below is
	// ctx-bounded (cancellation aborts between files with the staging
	// temps cleaned up) and so is the store's hash pass, so a job cannot
	// run long past JobTimeout just because generation squeaked in under
	// it.
	expStart := time.Now()
	if err := eng.ExportCtx(ctx, d, stageDir); err != nil {
		s.cache.discard(stageDir)
		return err
	}
	s.phases.observe(phaseExport, time.Since(expStart))
	report := eng.Report()
	// The match phase is carved out of the generate wall from the
	// timings the engine already records: the summed duration of the
	// run's match tasks — the paper pipeline's dominant stage, and the
	// one the windowed matchers parallelise.
	var matchWall time.Duration
	for i := range report.Timings {
		if report.Timings[i].Kind == depgraph.TaskMatch {
			matchWall += report.Timings[i].Duration
		}
	}
	s.phases.observe(phaseMatch, matchWall)
	reportJSON, err := json.Marshal(report)
	if err != nil {
		s.cache.discard(stageDir)
		return err
	}
	var nodes, edges int64
	for _, n := range d.NodeCounts {
		nodes += n
	}
	for _, et := range d.Edges {
		edges += et.Len()
	}
	m := &Manifest{
		Version:       1,
		SchemaVersion: core.SchemaVersion,
		Key:           j.id,
		Graph:         j.schema.Name,
		Seed:          j.schema.Seed,
		Format:        j.format.String(),
		CanonicalSHA:  core.CanonicalHash(j.schema),
		Created:       time.Now().UTC(),
		Nodes:         nodes,
		Edges:         edges,
		Report:        reportJSON,
	}
	hashStart := time.Now()
	stored, err := s.storeWithRetry(ctx, j.id, stageDir, m)
	if err == nil {
		s.phases.observe(phaseHash, time.Since(hashStart))
		// A successful commit is proof the disk recovered; clear the
		// degraded latch.
		s.setDegraded(false)
		j.complete(stored, false)
		s.logf("job %s done: %d nodes, %d edges, %d files", shortKey(j.id), nodes, edges, len(stored.Files))
		return nil
	}
	// Degraded cache-bypass: the cache cannot commit the entry (disk
	// full, persistent I/O fault) but the export itself succeeded and
	// sits intact in the staging directory. Serving it from there
	// salvages work that already succeeded — the job completes, its
	// downloads stream from the stage dir, and only the caching is
	// lost. The daemon flips its readiness to degraded so orchestrators
	// notice; a canceled/timed-out job still fails outright.
	if ctxErr := ctx.Err(); ctxErr != nil {
		s.cache.discard(stageDir)
		return err
	}
	if bErr := s.completeBypass(ctx, j, stageDir, m, err); bErr != nil {
		s.cache.discard(stageDir)
		return bErr
	}
	return nil
}

// storeWithRetry commits a staged entry, retrying transient failures
// with jittered exponential backoff before giving up.
func (s *Service) storeWithRetry(ctx context.Context, key, stageDir string, m *Manifest) (*Manifest, error) {
	var out *Manifest
	p := retry.Policy{
		Attempts:  s.cfg.storeAttempts(),
		BaseDelay: s.cfg.storeRetryBase(),
		MaxDelay:  2 * time.Second,
		Jitter:    0.5,
		Seed:      m.Seed,
	}
	err := retry.Do(ctx, p, func(attempt int) error {
		if attempt > 0 {
			s.storeRetries.Add(1)
			s.logf("job %s: retrying cache store (attempt %d/%d)", shortKey(key), attempt+1, p.Attempts)
		}
		var serr error
		out, serr = s.cache.store(ctx, key, stageDir, m)
		return serr
	})
	return out, err
}

// completeBypass finishes a job whose cache store failed for good:
// the staged files are hashed into the manifest (same integrity
// metadata as a cached entry) and the job completes serving from the
// stage directory.
func (s *Service) completeBypass(ctx context.Context, j *Job, stageDir string, m *Manifest, storeErr error) error {
	files, err := manifestFiles(ctx, s.cache.fsys, stageDir)
	if err != nil {
		return fmt.Errorf("service: cache store failed (%v) and staged export is unusable: %w", storeErr, err)
	}
	if len(files) == 0 {
		return fmt.Errorf("service: cache store failed (%v) and staged export is empty", storeErr)
	}
	m.Files = files
	j.completeBypass(m, stageDir)
	s.bypasses.Add(1)
	s.setDegraded(true)
	s.logf("job %s done DEGRADED: cache store failed (%v); serving cache-bypass from stage", shortKey(j.id), storeErr)
	return nil
}

// setDegraded flips the degraded latch, logging only transitions.
func (s *Service) setDegraded(v bool) {
	if s.degraded.Swap(v) != v {
		if v {
			s.logf("service: entering degraded mode (cache store failing; serving cache-bypass)")
		} else {
			s.logf("service: degraded mode cleared (cache store succeeded)")
		}
	}
}

// Degraded reports whether the service is in degraded cache-bypass
// mode (readiness, not liveness: it still serves).
func (s *Service) Degraded() bool { return s.degraded.Load() }

func (s *Service) failJob(j *Job, err error) {
	var pe *par.PanicError
	if errors.As(err, &pe) {
		s.panics.Add(1)
		s.logf("job %s panicked (recovered): %v", shortKey(j.id), pe.Value)
	}
	j.fail(err)
	s.logf("job %s failed: %v", shortKey(j.id), err)
}

// checkDeclaredLimits enforces MaxNodes/MaxEdges at admission — cheap
// rejection before any work. The sizes come from core.EstimatedSizes,
// which resolves inferred counts from generator parameters (RMAT's edge
// factor, a 1→* edge's mean out-degree sizing its head type, …), so a
// schema declaring 600 nodes but implying millions of edges is turned
// away at submit. The estimate is a lower bound; checkDatasetLimits
// stays the authoritative post-generation check.
func (s *Service) checkDeclaredLimits(sch *schema.Schema) error {
	if s.cfg.MaxNodes <= 0 && s.cfg.MaxEdges <= 0 {
		return nil
	}
	nodes, edges, err := core.EstimatedSizes(sch)
	if err != nil {
		// The dependency analysis failed; generation will surface the
		// same error with full context, so fall back to the explicit
		// declared counts and let the job fail there.
		nodes, edges = 0, 0
		for i := range sch.Nodes {
			nodes += sch.Nodes[i].Count
		}
		for i := range sch.Edges {
			edges += sch.Edges[i].Count
		}
	}
	if s.cfg.MaxNodes > 0 && nodes > s.cfg.MaxNodes {
		return &LimitError{fmt.Sprintf("service: schema implies ~%d nodes, limit is %d", nodes, s.cfg.MaxNodes)}
	}
	if s.cfg.MaxEdges > 0 && edges > s.cfg.MaxEdges {
		return &LimitError{fmt.Sprintf("service: schema implies ~%d edges, limit is %d", edges, s.cfg.MaxEdges)}
	}
	return nil
}

// checkDatasetLimits enforces the limits on the generated dataset —
// the authoritative check, covering inferred counts.
func (s *Service) checkDatasetLimits(d *table.Dataset) error {
	if s.cfg.MaxNodes > 0 {
		var nodes int64
		for _, n := range d.NodeCounts {
			nodes += n
		}
		if nodes > s.cfg.MaxNodes {
			return &LimitError{fmt.Sprintf("service: dataset has %d nodes, limit is %d", nodes, s.cfg.MaxNodes)}
		}
	}
	if s.cfg.MaxEdges > 0 {
		var edges int64
		for _, et := range d.Edges {
			edges += et.Len()
		}
		if edges > s.cfg.MaxEdges {
			return &LimitError{fmt.Sprintf("service: dataset has %d edges, limit is %d", edges, s.cfg.MaxEdges)}
		}
	}
	return nil
}

// Drain stops accepting submissions, wakes ?wait long-polls, lets
// queued and running jobs finish, and returns when the pool is idle or
// ctx expires. Safe to call concurrently with an http.Server.Shutdown
// — in fact it should start first, so pollers release their
// connections and Shutdown isn't stuck behind them.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.drainCh)
		close(s.queue)
	}
	s.mu.Unlock()
	idle := make(chan struct{})
	//lint:allow nakedgo waiter is only wg.Wait plus a channel close; neither can panic, and par.Safe would add nothing to recover
	go func() {
		s.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		// ctx may have been expired on entry while the pool is already
		// idle (both cases ready makes the select nondeterministic);
		// an idle pool is a clean drain regardless.
		select {
		case <-idle:
			return nil
		default:
		}
		return fmt.Errorf("service: drain interrupted with %d jobs in flight: %w", s.inFlight.Load(), ctx.Err())
	}
}

// Stats is the /v1/stats payload.
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCapacity int     `json:"queue_capacity"`
	JobWorkers    int     `json:"job_workers"`
	InFlight      int64   `json:"in_flight"`
	Draining      bool    `json:"draining"`
	// Degraded: cache stores are failing and completed jobs are being
	// served cache-bypass; /v1/readyz mirrors this as 503.
	Degraded bool `json:"degraded"`
	Jobs     struct {
		Queued  int   `json:"queued"`
		Running int   `json:"running"`
		Done    int   `json:"done"`
		Failed  int   `json:"failed"`
		Evicted int64 `json:"evicted"`
		// Panics counts worker panics recovered into failed jobs.
		Panics int64 `json:"panics"`
	} `json:"jobs"`
	Cache struct {
		Entries  int     `json:"entries"`
		Bytes    int64   `json:"bytes"`
		MaxBytes int64   `json:"max_bytes,omitempty"`
		Hits     int64   `json:"hits"`
		Misses   int64   `json:"misses"`
		HitRate  float64 `json:"hit_rate"`
		// Evictions counts integrity evictions (corrupt entries removed
		// on lookup); LRUEvictions counts entries evicted to keep the
		// cache under CacheMaxBytes.
		Evictions    int64 `json:"evictions"`
		LRUEvictions int64 `json:"lru_evictions"`
		// Quarantined counts debris directories (orphaned temps, torn
		// entries) the startup recovery sweep moved aside.
		Quarantined int64 `json:"quarantined"`
		// CleanupFailures counts directory removals that failed (and
		// were logged) instead of being silently dropped.
		CleanupFailures int64 `json:"cleanup_failures"`
		// StoreRetries counts cache-store attempts beyond each first
		// try; Bypasses counts jobs completed in degraded cache-bypass
		// mode after retries were exhausted.
		StoreRetries int64 `json:"store_retries"`
		Bypasses     int64 `json:"bypasses"`
	} `json:"cache"`
	SingleflightDedups int64 `json:"singleflight_dedups"`
	Generations        int64 `json:"generations"`
	// Scenarios reports the named-scenario surface (registry contents,
	// submit-by-name traffic, sweep expansion). All zero with Enabled
	// false when the service runs without a scenario directory.
	Scenarios struct {
		Enabled  bool `json:"enabled"`
		Count    int  `json:"count"`
		Versions int  `json:"versions"`
		// Puts counts committed new versions (idempotent re-puts of the
		// latest text are not version churn and not counted).
		Puts    int64 `json:"puts"`
		Deletes int64 `json:"deletes"`
		// Quarantined counts torn registry entries the startup sweep
		// moved aside.
		Quarantined int64 `json:"quarantined"`
		// NamedSubmits / AnonymousSubmits split submissions by whether
		// they arrived as a scenario ref or as schema text. Sweep points
		// count as named submissions and additionally in SweepPoints.
		NamedSubmits     int64 `json:"named_submits"`
		AnonymousSubmits int64 `json:"anonymous_submits"`
		Sweeps           int64 `json:"sweeps"`
		SweepPoints      int64 `json:"sweep_points"`
		ActiveSweeps     int   `json:"active_sweeps"`
	} `json:"scenarios"`
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	var st Stats
	st.UptimeSeconds = time.Since(s.start).Seconds()
	st.QueueCapacity = s.cfg.queueDepth()
	st.JobWorkers = s.cfg.jobWorkers()
	st.InFlight = s.inFlight.Load()

	s.mu.Lock()
	st.QueueDepth = len(s.queue)
	st.Draining = s.draining
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		switch j.status {
		case StatusQueued:
			st.Jobs.Queued++
		case StatusRunning:
			st.Jobs.Running++
		case StatusDone:
			st.Jobs.Done++
		case StatusFailed:
			st.Jobs.Failed++
		}
		j.mu.Unlock()
	}

	st.Cache.Entries, st.Cache.Bytes = s.cache.stats()
	st.Cache.MaxBytes = s.cfg.CacheMaxBytes
	st.Cache.LRUEvictions = s.cache.lruEvictions()
	st.Cache.Hits = s.cacheHits.Load()
	st.Cache.Misses = s.cacheMisses.Load()
	if total := st.Cache.Hits + st.Cache.Misses; total > 0 {
		st.Cache.HitRate = float64(st.Cache.Hits) / float64(total)
	}
	st.Jobs.Evicted = s.jobEvictions.Load()
	st.Jobs.Panics = s.panics.Load()
	st.Cache.Evictions = s.evictions.Load()
	st.Cache.Quarantined, st.Cache.CleanupFailures = s.cache.recoveryStats()
	st.Cache.StoreRetries = s.storeRetries.Load()
	st.Cache.Bypasses = s.bypasses.Load()
	st.Degraded = s.degraded.Load()
	st.SingleflightDedups = s.dedupHits.Load()
	st.Generations = s.generations.Load()
	if s.scen != nil {
		st.Scenarios.Enabled = true
		st.Scenarios.Count, st.Scenarios.Versions = s.scen.Counts()
		st.Scenarios.Quarantined = s.scen.Quarantined()
	}
	st.Scenarios.Puts = s.scenarioPuts.Load()
	st.Scenarios.Deletes = s.scenarioDels.Load()
	st.Scenarios.NamedSubmits = s.namedSubmits.Load()
	st.Scenarios.AnonymousSubmits = s.anonSubmits.Load()
	st.Scenarios.Sweeps = s.sweepSubmits.Load()
	st.Scenarios.SweepPoints = s.sweepPoints.Load()
	s.sweepMu.Lock()
	st.Scenarios.ActiveSweeps = len(s.sweeps)
	s.sweepMu.Unlock()
	return st
}

// Generations reports how many engine runs the service has started —
// the observable the singleflight tests pin.
func (s *Service) Generations() int64 { return s.generations.Load() }

func (s *Service) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// shortKey abbreviates a cache key for log lines.
func shortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}
