package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// promScrape is a parsed Prometheus text exposition: sample values
// keyed by "name{labels}", plus the HELP/TYPE declarations seen.
type promScrape struct {
	samples map[string]float64
	help    map[string]bool
	typ     map[string]string
}

var promSampleRE = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (-?[0-9.eE+-]+|[+-]Inf|NaN)$`)

// parseProm parses a scrape body strictly enough to catch exposition-
// format bugs: every non-comment line must be a well-formed sample,
// every sample must follow a TYPE declaration for its family.
func parseProm(t *testing.T, body string) *promScrape {
	t.Helper()
	p := &promScrape{
		samples: map[string]float64{},
		help:    map[string]bool{},
		typ:     map[string]string{},
	}
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			f := strings.Fields(line)
			if len(f) < 4 {
				t.Fatalf("malformed HELP line: %q", line)
			}
			p.help[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			p.typ[f[2]] = f[3]
			continue
		}
		m := promSampleRE.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line: %q", line)
		}
		name := m[1]
		family := strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum")
		family = strings.TrimSuffix(family, "_count")
		if _, ok := p.typ[family]; !ok {
			if _, ok := p.typ[name]; !ok {
				t.Fatalf("sample %q has no TYPE declaration", name)
			}
		}
		var v float64
		switch m[3] {
		case "+Inf":
			v = math.Inf(1)
		case "-Inf":
			v = math.Inf(-1)
		default:
			var err error
			v, err = strconv.ParseFloat(m[3], 64)
			if err != nil {
				t.Fatalf("unparseable sample value in %q: %v", line, err)
			}
		}
		if _, dup := p.samples[name+m[2]]; dup {
			t.Fatalf("duplicate sample %q", name+m[2])
		}
		p.samples[name+m[2]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return p
}

func (p *promScrape) get(t *testing.T, key string) float64 {
	t.Helper()
	v, ok := p.samples[key]
	if !ok {
		keys := make([]string, 0, len(p.samples))
		for k := range p.samples {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		t.Fatalf("sample %q missing from scrape; have:\n  %s", key, strings.Join(keys, "\n  "))
	}
	return v
}

// TestMetricsScrapeShape drives the service through a cold submit, a
// warm hit, and an LRU eviction, then checks that /v1/metrics emits
// valid Prometheus text whose counters agree with /v1/stats and whose
// histograms are internally consistent (cumulative buckets, +Inf bucket
// equal to the count).
func TestMetricsScrapeShape(t *testing.T) {
	size := probeEntryBytes(t, 1)
	svc := newTestService(t, Config{CacheMaxBytes: size + size/2})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	submitAndWait(t, svc, 1) // cold: generate + export + hash
	submitAndWait(t, svc, 1) // warm: cache hit
	submitAndWait(t, svc, 2) // evicts seed 1

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/metrics status %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metricsContentType {
		t.Fatalf("content type %q, want %q", ct, metricsContentType)
	}
	p := parseProm(t, string(body))

	// The scrape and the stats snapshot are taken with the service
	// quiescent, so they must agree exactly.
	st := svc.Stats()
	checks := []struct {
		key  string
		want float64
	}{
		{"datasynthd_submits_total", 3},
		{"datasynthd_cache_hits_total", float64(st.Cache.Hits)},
		{"datasynthd_cache_misses_total", float64(st.Cache.Misses)},
		{`datasynthd_cache_evictions_total{reason="corrupt"}`, float64(st.Cache.Evictions)},
		{`datasynthd_cache_evictions_total{reason="lru"}`, float64(st.Cache.LRUEvictions)},
		{"datasynthd_cache_entries", float64(st.Cache.Entries)},
		{"datasynthd_cache_bytes", float64(st.Cache.Bytes)},
		{"datasynthd_cache_max_bytes", float64(st.Cache.MaxBytes)},
		{"datasynthd_generations_total", float64(st.Generations)},
		{"datasynthd_singleflight_dedups_total", float64(st.SingleflightDedups)},
		{"datasynthd_queue_depth", float64(st.QueueDepth)},
		{`datasynthd_jobs{status="done"}`, float64(st.Jobs.Done)},
		{"datasynthd_response_write_failures_total", 0},
		// Scenario families are present even with the registry disabled
		// (this service has no ScenarioDir): all-zero except the
		// anonymous submit counter, which counts the three submits above.
		{"datasynthd_scenarios", 0},
		{"datasynthd_scenario_versions", 0},
		{`datasynthd_scenario_submits_total{by="name"}`, 0},
		{`datasynthd_scenario_submits_total{by="anonymous"}`, 3},
		{"datasynthd_sweeps_total", 0},
		{"datasynthd_sweep_points_total", 0},
	}
	for _, c := range checks {
		if got := p.get(t, c.key); got != c.want {
			t.Errorf("%s = %v, want %v", c.key, got, c.want)
		}
	}
	if st.Cache.Hits < 1 || st.Cache.LRUEvictions < 1 {
		t.Fatalf("workload did not exercise hits/evictions: %+v", st.Cache)
	}

	// Phase histograms: two generations ran, so generate/export/hash
	// observed twice; buckets must be cumulative with +Inf == count.
	for _, phase := range []string{"generate", "match", "export", "hash"} {
		count := p.get(t, fmt.Sprintf(`datasynthd_phase_latency_seconds_count{phase=%q}`, phase))
		sum := p.get(t, fmt.Sprintf(`datasynthd_phase_latency_seconds_sum{phase=%q}`, phase))
		if phase != "match" && count != 2 {
			t.Errorf("phase %s: count %v, want 2", phase, count)
		}
		if count > 0 && sum <= 0 {
			t.Errorf("phase %s: %v observations but sum %v", phase, count, sum)
		}
		prev := -1.0
		for _, le := range latencyBuckets {
			v := p.get(t, fmt.Sprintf(`datasynthd_phase_latency_seconds_bucket{phase=%q,le=%q}`, phase, formatFloat(le)))
			if v < prev {
				t.Fatalf("phase %s: bucket le=%v (%v) below previous (%v) — not cumulative", phase, le, v, prev)
			}
			prev = v
		}
		inf := p.get(t, fmt.Sprintf(`datasynthd_phase_latency_seconds_bucket{phase=%q,le="+Inf"}`, phase))
		if inf != count {
			t.Fatalf("phase %s: +Inf bucket %v != count %v", phase, inf, count)
		}
		if inf < prev {
			t.Fatalf("phase %s: +Inf bucket %v below last finite bucket %v", phase, inf, prev)
		}
	}

	// Every emitted family carries HELP text.
	for fam := range p.typ {
		if !p.help[fam] {
			t.Errorf("family %s has TYPE but no HELP", fam)
		}
	}
}

// TestMetricsScenarioFamilies drives the scenario surface (register,
// submit-by-name, sweep) and checks the scenario metric families agree
// with the stats snapshot.
func TestMetricsScenarioFamilies(t *testing.T) {
	_, ts := newScenarioServer(t)
	putScenario(t, ts, "panel", scenSchema(42))
	putScenario(t, ts, "panel", scenSchema(43))

	if code, _, out := submitJSON(t, ts, map[string]any{"scenario": "panel"}); code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("named submit: %d %s", code, out)
	}
	resp, raw := doReq(t, http.MethodPost, ts.URL+"/v1/sweeps", "application/json",
		`{"scenario":"panel","sweep":{"knows.mu":[0.1, 0.2]}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep: %d %s", resp.StatusCode, raw)
	}
	var sw SweepView
	if err := json.Unmarshal(raw, &sw); err != nil {
		t.Fatal(err)
	}
	waitSweepDone(t, ts, sw.ID)

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	p := parseProm(t, string(body))
	for key, want := range map[string]float64{
		"datasynthd_scenarios":                              1,
		"datasynthd_scenario_versions":                      2,
		`datasynthd_scenario_submits_total{by="name"}`:      3, // 1 named + 2 sweep points
		`datasynthd_scenario_submits_total{by="anonymous"}`: 0,
		"datasynthd_sweeps_total":                           1,
		"datasynthd_sweep_points_total":                     2,
	} {
		if got := p.get(t, key); got != want {
			t.Errorf("%s = %v, want %v", key, got, want)
		}
	}
}
