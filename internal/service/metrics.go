package service

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// GET /v1/metrics: a dependency-free Prometheus text-format exporter
// (exposition format 0.0.4). Every sample is derived from the same
// counters /v1/stats serves, so the two surfaces always agree; the
// histograms add what JSON stats cannot express — per-phase latency
// distributions (generate / match / export / hash) fed from the
// timings the engine's RunReport already computes per job.

// metricsContentType is the Prometheus text exposition content type.
const metricsContentType = "text/plain; version=0.0.4; charset=utf-8"

// phase indexes one stage of the job pipeline in the latency
// histograms.
type phase int

const (
	phaseGenerate phase = iota // engine GenerateCtx wall time
	phaseMatch                 // summed match-task durations from the RunReport
	phaseExport                // engine ExportCtx wall time
	phaseHash                  // cache store (hash + manifest + commit) wall time
	numPhases
)

var phaseNames = [numPhases]string{"generate", "match", "export", "hash"}

// latencyBuckets are the histogram upper bounds in seconds:
// exponential-ish from 1ms to 60s, matching the spread between a tiny
// schema's export and a paper-scale generation.
var latencyBuckets = [...]float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// latencyHist is a fixed-bucket histogram safe for concurrent observe.
type latencyHist struct {
	buckets  [len(latencyBuckets) + 1]atomic.Int64 // last slot is +Inf
	sumNanos atomic.Int64
	count    atomic.Int64
}

func (h *latencyHist) observe(d time.Duration) {
	sec := d.Seconds()
	idx := len(latencyBuckets)
	for i, ub := range latencyBuckets {
		if sec <= ub {
			idx = i
			break
		}
	}
	h.buckets[idx].Add(1)
	h.sumNanos.Add(int64(d))
	h.count.Add(1)
}

// phaseHistograms holds one latency histogram per pipeline phase.
type phaseHistograms struct {
	hist [numPhases]latencyHist
}

func (p *phaseHistograms) observe(ph phase, d time.Duration) {
	p.hist[ph].observe(d)
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b bytes.Buffer
	s.writeMetrics(&b)
	w.Header().Set("Content-Type", metricsContentType)
	if _, err := w.Write(b.Bytes()); err != nil {
		s.writeFailures.Add(1)
	}
}

// writeMetrics renders the full exposition. The counters come from one
// Stats snapshot so a scrape is internally consistent.
func (s *Service) writeMetrics(w io.Writer) {
	st := s.Stats()

	counter(w, "datasynthd_submits_total", "Schema submissions received (including rejected ones).",
		sample{v: float64(s.submits.Load())})
	counter(w, "datasynthd_cache_hits_total", "Submissions served from the dataset cache without a new generation.",
		sample{v: float64(st.Cache.Hits)})
	counter(w, "datasynthd_cache_misses_total", "Admitted submissions that required a generation.",
		sample{v: float64(st.Cache.Misses)})
	counter(w, "datasynthd_cache_evictions_total", "Cache entries evicted, by reason: corrupt (failed integrity check) or lru (size bound).",
		sample{labels: `reason="corrupt"`, v: float64(st.Cache.Evictions)},
		sample{labels: `reason="lru"`, v: float64(st.Cache.LRUEvictions)})
	counter(w, "datasynthd_singleflight_dedups_total", "Submissions collapsed onto an identical queued or running job.",
		sample{v: float64(st.SingleflightDedups)})
	counter(w, "datasynthd_generations_total", "Engine runs started.",
		sample{v: float64(st.Generations)})
	counter(w, "datasynthd_job_evictions_total", "Finished jobs evicted from the in-memory job map.",
		sample{v: float64(st.Jobs.Evicted)})
	counter(w, "datasynthd_response_write_failures_total", "HTTP responses that failed mid-write (client gone or I/O error).",
		sample{v: float64(s.writeFailures.Load())})
	counter(w, "datasynthd_panics_total", "Worker panics recovered into failed jobs instead of crashing the daemon.",
		sample{v: float64(st.Jobs.Panics)})
	counter(w, "datasynthd_store_retries_total", "Cache-store attempts beyond each job's first try (transient disk faults retried).",
		sample{v: float64(st.Cache.StoreRetries)})
	counter(w, "datasynthd_cache_bypass_total", "Jobs completed in degraded cache-bypass mode after store retries were exhausted.",
		sample{v: float64(st.Cache.Bypasses)})
	counter(w, "datasynthd_cache_quarantined_total", "Debris directories (orphaned temps, torn entries) quarantined by the startup recovery sweep.",
		sample{v: float64(st.Cache.Quarantined)})
	counter(w, "datasynthd_cache_cleanup_failures_total", "Cache directory removals that failed and were logged.",
		sample{v: float64(st.Cache.CleanupFailures)})
	counter(w, "datasynthd_scenario_submits_total", "Job submissions by recipe source: a registered scenario name or an anonymous schema body.",
		sample{labels: `by="name"`, v: float64(st.Scenarios.NamedSubmits)},
		sample{labels: `by="anonymous"`, v: float64(st.Scenarios.AnonymousSubmits)})
	counter(w, "datasynthd_sweeps_total", "Accepted sweep requests.",
		sample{v: float64(st.Scenarios.Sweeps)})
	counter(w, "datasynthd_sweep_points_total", "Individual grid points submitted through sweeps.",
		sample{v: float64(st.Scenarios.SweepPoints)})

	gauge(w, "datasynthd_queue_depth", "Jobs waiting for a worker.",
		sample{v: float64(st.QueueDepth)})
	gauge(w, "datasynthd_queue_capacity", "Job queue bound; a full queue rejects submissions.",
		sample{v: float64(st.QueueCapacity)})
	gauge(w, "datasynthd_inflight_engines", "Generation jobs currently running.",
		sample{v: float64(st.InFlight)})
	gauge(w, "datasynthd_jobs", "Jobs in the in-memory job map, by status.",
		sample{labels: `status="queued"`, v: float64(st.Jobs.Queued)},
		sample{labels: `status="running"`, v: float64(st.Jobs.Running)},
		sample{labels: `status="done"`, v: float64(st.Jobs.Done)},
		sample{labels: `status="failed"`, v: float64(st.Jobs.Failed)})
	gauge(w, "datasynthd_cache_entries", "Committed cache entries in the index.",
		sample{v: float64(st.Cache.Entries)})
	gauge(w, "datasynthd_cache_bytes", "Total bytes of committed cache entries (manifest file sizes).",
		sample{v: float64(st.Cache.Bytes)})
	gauge(w, "datasynthd_cache_max_bytes", "Configured cache size bound; 0 means unbounded.",
		sample{v: float64(st.Cache.MaxBytes)})
	draining := 0.0
	if st.Draining {
		draining = 1
	}
	gauge(w, "datasynthd_draining", "1 while the service is draining and rejecting submissions.",
		sample{v: draining})
	degraded := 0.0
	if st.Degraded {
		degraded = 1
	}
	gauge(w, "datasynthd_degraded", "1 while cache stores are failing and completed jobs are served cache-bypass (/v1/readyz answers 503).",
		sample{v: degraded})
	gauge(w, "datasynthd_uptime_seconds", "Seconds since the service started.",
		sample{v: st.UptimeSeconds})
	// Scenario families are emitted (at zero) even with the registry
	// disabled, so dashboards never see a family appear and vanish.
	gauge(w, "datasynthd_scenarios", "Registered scenario names.",
		sample{v: float64(st.Scenarios.Count)})
	gauge(w, "datasynthd_scenario_versions", "Registered scenario versions across all names.",
		sample{v: float64(st.Scenarios.Versions)})

	s.writePhaseHistograms(w)
}

func (s *Service) writePhaseHistograms(w io.Writer) {
	const name = "datasynthd_phase_latency_seconds"
	fmt.Fprintf(w, "# HELP %s Per-job pipeline phase latency, from the engine's run report.\n", name)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	for ph := phase(0); ph < numPhases; ph++ {
		h := &s.phases.hist[ph]
		var cum int64
		for i, ub := range latencyBuckets {
			cum += h.buckets[i].Load()
			fmt.Fprintf(w, "%s_bucket{phase=%q,le=%q} %d\n", name, phaseNames[ph], formatFloat(ub), cum)
		}
		cum += h.buckets[len(latencyBuckets)].Load()
		fmt.Fprintf(w, "%s_bucket{phase=%q,le=\"+Inf\"} %d\n", name, phaseNames[ph], cum)
		fmt.Fprintf(w, "%s_sum{phase=%q} %s\n", name, phaseNames[ph],
			formatFloat(time.Duration(h.sumNanos.Load()).Seconds()))
		fmt.Fprintf(w, "%s_count{phase=%q} %d\n", name, phaseNames[ph], h.count.Load())
	}
}

// sample is one sample line of a metric family.
type sample struct {
	labels string // rendered label pairs without braces, may be empty
	v      float64
}

func counter(w io.Writer, name, help string, samples ...sample) {
	family(w, name, "counter", help, samples)
}

func gauge(w io.Writer, name, help string, samples ...sample) {
	family(w, name, "gauge", help, samples)
}

func family(w io.Writer, name, typ, help string, samples []sample) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	// Label sets render in a fixed order so scrapes diff cleanly.
	sort.SliceStable(samples, func(a, b int) bool { return samples[a].labels < samples[b].labels })
	for _, sm := range samples {
		if sm.labels == "" {
			fmt.Fprintf(w, "%s %s\n", name, formatFloat(sm.v))
		} else {
			fmt.Fprintf(w, "%s{%s} %s\n", name, sm.labels, formatFloat(sm.v))
		}
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
