package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"datasynth/internal/core"
	"datasynth/internal/dsl"
	"datasynth/internal/scenario"
	"datasynth/internal/schema"
	"datasynth/internal/table"
)

// Named submissions and server-side sweeps. A scenario ref
// ("name" or "name@version") resolves against the registry to the
// version's canonical DSL text; optional flat parameter overrides
// (dsl.Override's whitelist) are applied to a fresh parse of that
// text and the result is re-validated and re-canonicalised. The
// resolved schema then rides the exact same submission tail as an
// anonymous schema body — same admission limits, same bounded queue,
// same content-hash cache key, same singleflight group — so naming is
// purely a resolution layer: it can never make the cache serve bytes
// an anonymous submit of the resolved text would not.
//
// Jobs record the resolved schema and hash, never the scenario name,
// which is what makes DELETE /v1/scenarios safe: deleting a name
// orphans no cache entries and aborts no in-flight jobs or sweeps.

// ErrScenariosDisabled: the service was started without -scenariodir.
var ErrScenariosDisabled = errors.New("service: scenario registry disabled (start datasynthd with -scenariodir)")

// ErrSweepUnknown reports an unknown sweep id.
var ErrSweepUnknown = errors.New("service: unknown sweep")

// BadParamsError reports scenario parameters or a sweep grid the
// whitelist or validation pipeline rejected (422).
type BadParamsError struct{ err error }

func (e *BadParamsError) Error() string { return e.err.Error() }
func (e *BadParamsError) Unwrap() error { return e.err }

// maxSweeps bounds the in-memory sweep map. Past the bound, sweeps
// whose points have all settled (no live queued/running job) are
// evicted first, oldest-first, falling back to the globally oldest
// only when every record still has in-flight points. Eviction drops
// bookkeeping only — jobs and cache entries are untouched, and a
// re-POST of the same grid rebuilds the record and collapses onto the
// cached points.
const maxSweeps = 256

// Scenarios returns the registry, or nil when the surface is disabled.
func (s *Service) Scenarios() *scenario.Registry { return s.scen }

// PutScenario registers a new scenario version (validation-first; an
// invalid schema writes nothing).
func (s *Service) PutScenario(name, src, description string, labels map[string]string) (*scenario.Version, bool, error) {
	if s.scen == nil {
		return nil, false, ErrScenariosDisabled
	}
	v, created, err := s.scen.Put(name, src, description, labels)
	if err != nil {
		return nil, false, err
	}
	if created {
		s.scenarioPuts.Add(1)
	}
	return v, created, nil
}

// DeleteScenario unregisters a name. Cached datasets and jobs that
// were submitted through it are unaffected: they are keyed by resolved
// content hash, not by name.
func (s *Service) DeleteScenario(name string) (int, error) {
	if s.scen == nil {
		return 0, ErrScenariosDisabled
	}
	n, err := s.scen.Delete(name)
	if err == nil {
		s.scenarioDels.Add(1)
	}
	return n, err
}

// parseScenarioRef splits "name", "name@latest" or "name@<version>".
func parseScenarioRef(ref string) (name string, version int, err error) {
	name, verStr, hasVer := strings.Cut(ref, "@")
	if name == "" {
		return "", 0, &BadParamsError{fmt.Errorf("empty scenario name in ref %q", ref)}
	}
	if !hasVer || verStr == "latest" {
		return name, 0, nil
	}
	v, err := strconv.Atoi(strings.TrimPrefix(verStr, "v"))
	if err != nil || v <= 0 {
		return "", 0, &BadParamsError{fmt.Errorf("scenario ref %q: version must be a positive integer or \"latest\"", ref)}
	}
	return name, v, nil
}

// resolveScenario turns (ref, params) into a validated schema plus the
// resolved "name@v<N>" it came from. The registry invariant guarantees
// the stored text parses; overrides re-run the full validation
// pipeline because they can change the count-inference graph.
func (s *Service) resolveScenario(ref string, params map[string]string) (*schema.Schema, string, error) {
	if s.scen == nil {
		return nil, "", ErrScenariosDisabled
	}
	name, version, err := parseScenarioRef(ref)
	if err != nil {
		return nil, "", err
	}
	v, err := s.scen.Get(name, version)
	if err != nil {
		return nil, "", err
	}
	sch, err := dsl.Parse(v.DSL)
	if err != nil {
		return nil, "", &internalError{fmt.Errorf("registry entry %s@v%d failed to parse: %w", v.Name, v.Version, err)}
	}
	if len(params) > 0 {
		if err := dsl.Override(sch, params); err != nil {
			return nil, "", &BadParamsError{err}
		}
		if err := sch.Validate(); err != nil {
			return nil, "", &BadParamsError{err}
		}
		if err := core.ValidateSchema(sch); err != nil {
			return nil, "", &BadParamsError{err}
		}
	}
	return sch, fmt.Sprintf("%s@v%d", v.Name, v.Version), nil
}

// SubmitScenario resolves a scenario ref with optional overrides and
// submits the resolved schema through the normal admission path.
// resolved reports the pinned "name@v<N>" the ref landed on.
func (s *Service) SubmitScenario(ref string, params map[string]string, format table.Format) (res SubmitResult, resolved string, err error) {
	s.submits.Add(1)
	sch, resolved, err := s.resolveScenario(ref, params)
	if err != nil {
		return SubmitResult{}, "", err
	}
	s.namedSubmits.Add(1)
	res, err = s.submitSchema(sch, format)
	return res, resolved, err
}

// SweepRequest is a decoded POST /v1/sweeps body: one scenario ref, a
// set of fixed parameter overrides, and a grid of swept axes. Each
// axis is either an explicit value list or a {from,to,step} range; the
// expanded grid is the cross product of all axes.
type SweepRequest struct {
	Scenario string                     `json:"scenario"`
	Params   map[string]string          `json:"params,omitempty"`
	Sweep    map[string]json.RawMessage `json:"sweep"`
	Format   string                     `json:"format,omitempty"`
}

// sweepRange is the {from,to,step} axis form.
type sweepRange struct {
	From float64 `json:"from"`
	To   float64 `json:"to"`
	Step float64 `json:"step"`
}

// sweepPoint is one expanded grid point of a sweep.
type sweepPoint struct {
	params map[string]string // full override set (fixed + axis values)
	key    string            // job id / cache key of the resolved schema
}

// Sweep aggregates one expanded parameter grid. It holds only point
// params and cache keys — job state is looked up live, and nothing
// references the scenario name after expansion.
type Sweep struct {
	id       string
	scenario string // resolved name@v<N>
	format   table.Format
	created  time.Time
	points   []sweepPoint
}

// SweepPointView is one point in a sweep status response.
type SweepPointView struct {
	Params map[string]string `json:"params"`
	// Job is the point's job id — the pure content hash of its resolved
	// schema plus format, so it doubles as the cache key.
	Job    string `json:"job"`
	Status string `json:"status"`
}

// SweepView is the GET /v1/sweeps/{id} payload.
type SweepView struct {
	ID       string           `json:"id"`
	Scenario string           `json:"scenario"`
	Format   string           `json:"format"`
	Created  time.Time        `json:"created"`
	Points   []SweepPointView `json:"points"`
	Counts   map[string]int   `json:"counts"`
	// Done: every point's dataset is generated and downloadable.
	Done bool `json:"done"`
}

// expandAxis turns one sweep axis into its ordered value strings.
// Numeric values are normalised through formatSweepValue so that a
// grid point and a hand-written override of the same number spell —
// and therefore hash — identically. maxPoints bounds the axis length
// *before* anything is allocated: an axis that alone exceeds the sweep
// cap necessarily makes the whole grid exceed it, and rejecting it
// here keeps a tiny {from:0,to:1e9,step:1} request from materialising
// a multi-GB slice (or overflowing the float→int length conversion)
// inside the handler.
func expandAxis(name string, raw json.RawMessage, maxPoints int) ([]string, error) {
	axisTooBig := func() error {
		return &BadParamsError{fmt.Errorf("sweep axis %q alone expands to more than %d points", name, maxPoints)}
	}
	var list []any
	if err := json.Unmarshal(raw, &list); err == nil {
		if len(list) == 0 {
			return nil, &BadParamsError{fmt.Errorf("sweep axis %q: empty value list", name)}
		}
		if len(list) > maxPoints {
			return nil, axisTooBig()
		}
		vals := make([]string, len(list))
		for i, v := range list {
			switch v := v.(type) {
			case string:
				vals[i] = v
			case float64:
				vals[i] = formatSweepValue(v)
			default:
				return nil, &BadParamsError{fmt.Errorf("sweep axis %q: values must be numbers or strings", name)}
			}
		}
		return vals, nil
	}
	var rng sweepRange
	if err := json.Unmarshal(raw, &rng); err != nil {
		return nil, &BadParamsError{fmt.Errorf("sweep axis %q: want a value array or {from,to,step}", name)}
	}
	if rng.Step <= 0 || rng.To < rng.From {
		return nil, &BadParamsError{fmt.Errorf("sweep axis %q: need step > 0 and to >= from", name)}
	}
	// Checked before converting to int or allocating: span can be huge
	// or non-finite for extreme from/to/step combinations.
	span := math.Floor((rng.To-rng.From)/rng.Step + 1e-9)
	if math.IsNaN(span) || span >= float64(maxPoints) {
		return nil, axisTooBig()
	}
	n := int(span) + 1
	vals := make([]string, 0, n)
	for i := 0; i < n; i++ {
		vals = append(vals, formatSweepValue(rng.From+float64(i)*rng.Step))
	}
	return vals, nil
}

// formatSweepValue renders a grid number canonically: rounded to 9
// decimals to absorb binary-float drift in range expansion (0.05+5×
// 0.05 must print "0.3", not "0.30000000000000004"), then shortest
// round-trip formatting. Integral values print without an exponent
// ("1000000", never "1e+06") — count overrides go through ParseInt,
// and the grid value must spell identically to a hand-written
// override of the same number or the normalisation contract (equal
// spelling ⇒ equal hash) breaks.
func formatSweepValue(v float64) string {
	v = math.Round(v*1e9) / 1e9
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', 0, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// expandSweep resolves and validates every point of a sweep before
// anything is submitted (validation-first: a bad grid rejects the
// whole request with no side effects). Points come back in
// deterministic order: axes sorted by name, each axis in declared
// value order, last axis fastest.
func (s *Service) expandSweep(req SweepRequest, format table.Format) (resolved string, points []sweepPoint, schemas []*schema.Schema, err error) {
	if len(req.Sweep) == 0 {
		return "", nil, nil, &BadParamsError{errors.New("sweep: no axes given")}
	}
	axes := make([]string, 0, len(req.Sweep))
	for name := range req.Sweep {
		axes = append(axes, name)
	}
	sort.Strings(axes)
	values := make([][]string, len(axes))
	total := 1
	for i, name := range axes {
		if _, fixed := req.Params[name]; fixed {
			return "", nil, nil, &BadParamsError{fmt.Errorf("sweep axis %q also appears in fixed params", name)}
		}
		vals, err := expandAxis(name, req.Sweep[name], s.cfg.maxSweepPoints())
		if err != nil {
			return "", nil, nil, err
		}
		values[i] = vals
		total *= len(vals)
		if total > s.cfg.maxSweepPoints() {
			return "", nil, nil, &BadParamsError{fmt.Errorf("sweep expands to more than %d points", s.cfg.maxSweepPoints())}
		}
	}
	// Cross product, odometer-style: last axis increments fastest.
	idx := make([]int, len(axes))
	for {
		params := make(map[string]string, len(req.Params)+len(axes))
		for k, v := range req.Params {
			params[k] = v
		}
		for i, name := range axes {
			params[name] = values[i][idx[i]]
		}
		sch, ref, err := s.resolveScenario(req.Scenario, params)
		if err != nil {
			return "", nil, nil, fmt.Errorf("point %v: %w", params, err)
		}
		if err := s.checkDeclaredLimits(sch); err != nil {
			return "", nil, nil, fmt.Errorf("point %v: %w", params, err)
		}
		resolved = ref
		points = append(points, sweepPoint{params: params, key: CacheKey(sch, format)})
		schemas = append(schemas, sch)
		pos := len(idx) - 1
		for pos >= 0 {
			idx[pos]++
			if idx[pos] < len(values[pos]) {
				break
			}
			idx[pos] = 0
			pos--
		}
		if pos < 0 {
			return resolved, points, schemas, nil
		}
	}
}

// sweepID derives a deterministic id from the point keys and format,
// so re-POSTing an identical grid addresses the same sweep instead of
// growing the map — sweep submission is idempotent the same way job
// submission is.
func sweepID(format table.Format, points []sweepPoint) string {
	h := sha256.New()
	fmt.Fprintf(h, "sweep-%s\n", format)
	for _, p := range points {
		fmt.Fprintln(h, p.key)
	}
	return "sw-" + hex.EncodeToString(h.Sum(nil))[:24]
}

// SubmitSweep expands a parameter grid into one job per point and
// submits every point through the normal bounded-queue path. All
// points are resolved and validated before the first submission; a
// full queue mid-expansion fails the request (503) — already-enqueued
// points keep running as ordinary jobs and collapse by singleflight
// when the client retries.
func (s *Service) SubmitSweep(req SweepRequest) (*SweepView, error) {
	format := table.FormatCSV
	if req.Format != "" {
		f, err := table.ParseFormat(req.Format)
		if err != nil {
			return nil, &BadParamsError{err}
		}
		format = f
	}
	resolved, points, schemas, err := s.expandSweep(req, format)
	if err != nil {
		return nil, err
	}
	for i := range points {
		s.submits.Add(1)
		s.namedSubmits.Add(1)
		s.sweepPoints.Add(1)
		if _, err := s.submitSchema(schemas[i], format); err != nil {
			return nil, fmt.Errorf("sweep point %v: %w", points[i].params, err)
		}
	}
	s.sweepSubmits.Add(1)
	id := sweepID(format, points)
	s.sweepMu.Lock()
	sw := s.sweeps[id]
	if sw == nil {
		sw = &Sweep{id: id, scenario: resolved, format: format, created: time.Now(), points: points}
		s.sweeps[id] = sw
		s.pruneSweepsLocked()
	}
	s.sweepMu.Unlock()
	return s.sweepView(sw), nil
}

// pruneSweepsLocked evicts sweep records past the bound: settled
// sweeps (no point with a live queued/running job) go first,
// oldest-first, so an in-flight sweep's status endpoint keeps working
// under churn; only when every record is still in flight does the
// globally oldest go. Only bookkeeping goes either way: the points'
// jobs and cache entries live their own lives. Caller holds sweepMu
// (lock order is sweepMu → s.mu, matching Stats; sweepSettled takes
// s.mu per point via s.Job).
func (s *Service) pruneSweepsLocked() {
	for len(s.sweeps) > maxSweeps {
		victimID := ""
		var victimAt time.Time
		victimSettled := false
		ids := make([]string, 0, len(s.sweeps))
		for id := range s.sweeps {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			sw := s.sweeps[id]
			settled := s.sweepSettled(sw)
			better := victimID == "" ||
				(settled && !victimSettled) ||
				(settled == victimSettled && sw.created.Before(victimAt))
			if better {
				victimID, victimAt, victimSettled = id, sw.created, settled
			}
		}
		delete(s.sweeps, victimID)
	}
}

// sweepSettled reports whether no point of sw still has a live job in
// a non-terminal state — i.e. evicting the sweep record cannot hide
// in-flight work. Points whose job records were GC'd count as settled
// (their datasets are cached or evicted; either way nothing is
// running).
func (s *Service) sweepSettled(sw *Sweep) bool {
	for _, p := range sw.points {
		if j := s.Job(p.key); j != nil {
			j.mu.Lock()
			terminal := j.status == StatusDone || j.status == StatusFailed
			j.mu.Unlock()
			if !terminal {
				return false
			}
		}
	}
	return true
}

// SweepStatus returns the aggregated view of a sweep.
func (s *Service) SweepStatus(id string) (*SweepView, error) {
	s.sweepMu.Lock()
	sw := s.sweeps[id]
	s.sweepMu.Unlock()
	if sw == nil {
		return nil, ErrSweepUnknown
	}
	return s.sweepView(sw), nil
}

// sweepView snapshots per-point job states. A point whose job record
// was GC'd reports "done" while its dataset is still cached, and
// "evicted" once both are gone (re-POST the sweep to regenerate —
// byte-identically, per the determinism contract).
func (s *Service) sweepView(sw *Sweep) *SweepView {
	v := &SweepView{
		ID:       sw.id,
		Scenario: sw.scenario,
		Format:   sw.format.String(),
		Created:  sw.created,
		Points:   make([]SweepPointView, len(sw.points)),
		Counts:   map[string]int{},
	}
	done := 0
	for i, p := range sw.points {
		status := "evicted"
		if j := s.Job(p.key); j != nil {
			status = string(j.View().Status)
		} else if s.cache.has(p.key) {
			status = string(StatusDone)
		}
		if status == string(StatusDone) {
			done++
		}
		v.Points[i] = SweepPointView{Params: p.params, Job: p.key, Status: status}
		v.Counts[status]++
	}
	v.Done = done == len(sw.points)
	return v
}
