package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"datasynth/internal/dsl"
	"datasynth/internal/scenario"
)

// HTTP handlers for the scenario registry and sweep surface. When the
// daemon runs without -scenariodir every endpoint here answers 404
// with a pointer at the flag, so a misconfigured client gets told why
// the surface is missing instead of a bare not-found.

// scenarioPutRequest is the PUT /v1/scenarios/{name} body.
type scenarioPutRequest struct {
	Schema      string            `json:"schema"`
	Description string            `json:"description,omitempty"`
	Labels      map[string]string `json:"labels,omitempty"`
}

// writeSubmitErr maps a submission-path error onto its status code.
// Shared by anonymous submits, named submits and sweep expansion so
// the three surfaces cannot drift apart in how they classify faults.
func (s *Service) writeSubmitErr(w http.ResponseWriter, err error) {
	var le *LimitError
	var ie *internalError
	var ve *scenario.ValidationError
	var oe *dsl.OverrideError
	var bp *BadParamsError
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "1")
		s.writeErr(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrScenariosDisabled), errors.Is(err, scenario.ErrNotFound):
		s.writeErr(w, http.StatusNotFound, err)
	case errors.As(err, &le), errors.As(err, &ve), errors.As(err, &oe), errors.As(err, &bp):
		// The recipe is well-formed transport-wise but semantically
		// unprocessable: declared limits, invalid DSL, or a rejected
		// override/grid.
		s.writeErr(w, http.StatusUnprocessableEntity, err)
	case errors.As(err, &ie):
		// Cache or registry I/O fault — the server's problem, not the
		// request's.
		s.writeErr(w, http.StatusInternalServerError, err)
	default:
		// Parse or validation failure.
		s.writeErr(w, http.StatusBadRequest, err)
	}
}

func (s *Service) handleScenarioList(w http.ResponseWriter, r *http.Request) {
	if s.scen == nil {
		s.writeErr(w, http.StatusNotFound, ErrScenariosDisabled)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"scenarios": s.scen.List()})
}

func (s *Service) handleScenarioPut(w http.ResponseWriter, r *http.Request) {
	if s.scen == nil {
		s.writeErr(w, http.StatusNotFound, ErrScenariosDisabled)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSchemaBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.writeErr(w, http.StatusRequestEntityTooLarge, fmt.Errorf("scenario body exceeds %d bytes", maxSchemaBytes))
		} else {
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("reading scenario body: %w", err))
		}
		return
	}
	req := scenarioPutRequest{Schema: string(body)}
	if isJSONContentType(r.Header.Get("Content-Type")) {
		req = scenarioPutRequest{}
		if err := json.Unmarshal(body, &req); err != nil {
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid JSON body: %w", err))
			return
		}
	}
	v, created, err := s.PutScenario(r.PathValue("name"), req.Schema, req.Description, req.Labels)
	if err != nil {
		var ve *scenario.ValidationError
		switch {
		case errors.As(err, &ve):
			// Validation-first: nothing was written.
			s.writeErr(w, http.StatusUnprocessableEntity, err)
		case errors.Is(err, ErrScenariosDisabled):
			s.writeErr(w, http.StatusNotFound, err)
		default:
			s.writeErr(w, http.StatusInternalServerError, err)
		}
		return
	}
	code := http.StatusCreated
	if !created {
		// Idempotent re-PUT of the latest version's canonical text.
		code = http.StatusOK
	}
	s.writeJSON(w, code, v)
}

func (s *Service) handleScenarioGet(w http.ResponseWriter, r *http.Request) {
	if s.scen == nil {
		s.writeErr(w, http.StatusNotFound, ErrScenariosDisabled)
		return
	}
	name := r.PathValue("name")
	if verStr := r.URL.Query().Get("version"); verStr != "" {
		version := 0
		if verStr != "latest" {
			v, err := strconv.Atoi(verStr)
			if err != nil || v <= 0 {
				s.writeErr(w, http.StatusBadRequest, fmt.Errorf("version must be a positive integer or \"latest\", got %q", verStr))
				return
			}
			version = v
		}
		v, err := s.scen.Get(name, version)
		if err != nil {
			s.writeErr(w, http.StatusNotFound, err)
			return
		}
		s.writeJSON(w, http.StatusOK, v)
		return
	}
	versions, err := s.scen.Versions(name)
	if err != nil {
		s.writeErr(w, http.StatusNotFound, err)
		return
	}
	// The bare GET is a catalogue view: full records minus the DSL
	// text, which clients fetch per-version.
	type versionMeta struct {
		Version      int               `json:"version"`
		CanonicalSHA string            `json:"canonical_sha256"`
		Created      any               `json:"created"`
		Description  string            `json:"description,omitempty"`
		Labels       map[string]string `json:"labels,omitempty"`
	}
	metas := make([]versionMeta, len(versions))
	for i, v := range versions {
		metas[i] = versionMeta{
			Version:      v.Version,
			CanonicalSHA: v.CanonicalSHA,
			Created:      v.Created,
			Description:  v.Description,
			Labels:       v.Labels,
		}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"name": name, "versions": metas})
}

func (s *Service) handleScenarioDelete(w http.ResponseWriter, r *http.Request) {
	if s.scen == nil {
		s.writeErr(w, http.StatusNotFound, ErrScenariosDisabled)
		return
	}
	n, err := s.DeleteScenario(r.PathValue("name"))
	if err != nil {
		if errors.Is(err, scenario.ErrNotFound) {
			s.writeErr(w, http.StatusNotFound, err)
			return
		}
		s.writeErr(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"deleted": r.PathValue("name"), "versions": n})
}

func (s *Service) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	if s.scen == nil {
		s.writeErr(w, http.StatusNotFound, ErrScenariosDisabled)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSchemaBytes))
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("reading sweep body: %w", err))
		return
	}
	var req SweepRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid JSON body: %w", err))
		return
	}
	if req.Scenario == "" {
		s.writeErr(w, http.StatusBadRequest, errors.New(`sweep needs a "scenario" ref`))
		return
	}
	view, err := s.SubmitSweep(req)
	if err != nil {
		s.writeSubmitErr(w, err)
		return
	}
	s.writeJSON(w, http.StatusAccepted, view)
}

func (s *Service) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	view, err := s.SweepStatus(r.PathValue("id"))
	if err != nil {
		s.writeErr(w, http.StatusNotFound, err)
		return
	}
	s.writeJSON(w, http.StatusOK, view)
}
