package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// Content-addressable dataset cache. An entry is a directory
// cacheDir/<key> holding the exported table files plus manifest.json;
// the key is the canonical schema hash (which embeds the seed and the
// schema version, see core.CanonicalHash) joined with the export
// format. The cache is sound *only because* of the engine's
// determinism contract — a dataset is a pure function of (schema
// version, canonical schema, format), byte-identical at any worker
// count — so serving cached bytes is provably indistinguishable from
// regenerating them.
//
// Integrity: the manifest records the size and SHA-256 of every file.
// An entry is validated (every hash re-checked) the first time this
// process touches it; a corrupted entry — truncated file, flipped
// bytes, missing manifest — is evicted on the spot and the lookup
// reports a miss, so the job layer regenerates instead of serving bad
// bytes. Validated keys are memoized in memory, keeping the hash check
// off the hot hit path.

// manifestName is the per-entry metadata file; it is never served as a
// table.
const manifestName = "manifest.json"

// cacheTempPrefix marks in-progress entry directories; a crash leaves
// at worst a temp directory that a fresh store of the same key sweeps
// away.
const cacheTempPrefix = ".tmp-"

// ManifestFile describes one exported table file of a cache entry.
type ManifestFile struct {
	Name   string `json:"name"`
	Bytes  int64  `json:"bytes"`
	SHA256 string `json:"sha256"`
}

// Manifest is the metadata of one cache entry.
type Manifest struct {
	Version       int             `json:"version"`
	SchemaVersion int             `json:"schema_version"`
	Key           string          `json:"key"`
	Graph         string          `json:"graph"`
	Seed          uint64          `json:"seed"`
	Format        string          `json:"format"`
	CanonicalSHA  string          `json:"canonical_sha256"`
	Created       time.Time       `json:"created"`
	Nodes         int64           `json:"nodes"`
	Edges         int64           `json:"edges"`
	Files         []ManifestFile  `json:"files"`
	Report        json.RawMessage `json:"report,omitempty"`
}

// File returns the manifest entry for a table file, matching either
// the exact file name or the name without its extension.
func (m *Manifest) File(name string) *ManifestFile {
	for i := range m.Files {
		f := &m.Files[i]
		if f.Name == name || strings.TrimSuffix(f.Name, filepath.Ext(f.Name)) == name {
			return f
		}
	}
	return nil
}

// diskCache is the on-disk entry store.
type diskCache struct {
	root string

	mu        sync.Mutex
	validated map[string]*Manifest     // keys hash-verified this process
	inflight  map[string]chan struct{} // keys being verified right now
}

func newDiskCache(root string) (*diskCache, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, err
	}
	return &diskCache{
		root:      root,
		validated: map[string]*Manifest{},
		inflight:  map[string]chan struct{}{},
	}, nil
}

func (c *diskCache) entryDir(key string) string { return filepath.Join(c.root, key) }

// lookup returns the manifest of a valid cache entry, or nil on miss.
// evicted reports that an entry existed but failed integrity checks
// and was removed. Validation (the full per-file re-hash) is
// singleflighted per key: concurrent lookups of the same unvalidated
// entry wait for one verifier instead of each re-hashing the files —
// the same herd-collapse discipline the job layer applies to
// generation.
func (c *diskCache) lookup(key string) (*Manifest, bool, error) {
	for {
		c.mu.Lock()
		if m, ok := c.validated[key]; ok {
			c.mu.Unlock()
			return m, false, nil
		}
		if ch, busy := c.inflight[key]; busy {
			c.mu.Unlock()
			<-ch
			// The verifier finished: either the key is validated now
			// (next iteration hits the memo) or the entry was bad and
			// evicted (next iteration finds no manifest — a cheap stat).
			continue
		}
		ch := make(chan struct{})
		c.inflight[key] = ch
		c.mu.Unlock()

		m, evicted, err := c.verifyEntry(key)
		c.mu.Lock()
		delete(c.inflight, key)
		if err == nil && m != nil {
			c.validated[key] = m
		}
		close(ch)
		c.mu.Unlock()
		return m, evicted, err
	}
}

// verifyEntry reads and integrity-checks one entry off disk.
func (c *diskCache) verifyEntry(key string) (m *Manifest, evicted bool, err error) {
	dir := c.entryDir(key)
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	m = new(Manifest)
	if verr := c.verify(dir, raw, m, key); verr != nil {
		// Corrupted entry: evict so the caller regenerates. The removal
		// itself failing is fatal — we must never serve from a directory
		// we know is bad.
		if rerr := os.RemoveAll(dir); rerr != nil {
			return nil, false, fmt.Errorf("service: evicting corrupt cache entry %s: %w (cause: %v)", key, rerr, verr)
		}
		return nil, true, nil
	}
	return m, false, nil
}

// verify parses a manifest and re-checks every file's size and SHA-256.
func (c *diskCache) verify(dir string, raw []byte, m *Manifest, key string) error {
	if err := json.Unmarshal(raw, m); err != nil {
		return fmt.Errorf("manifest unparseable: %w", err)
	}
	if m.Key != key {
		return fmt.Errorf("manifest key %q does not match entry %q", m.Key, key)
	}
	if len(m.Files) == 0 {
		return fmt.Errorf("manifest lists no files")
	}
	for _, f := range m.Files {
		sum, n, err := hashFile(filepath.Join(dir, f.Name))
		if err != nil {
			return fmt.Errorf("file %s: %w", f.Name, err)
		}
		if n != f.Bytes {
			return fmt.Errorf("file %s is %d bytes, manifest says %d", f.Name, n, f.Bytes)
		}
		if sum != f.SHA256 {
			return fmt.Errorf("file %s fails its checksum", f.Name)
		}
	}
	return nil
}

// store commits a freshly exported entry: the caller has already
// exported the table files into a temp directory (stageDir, obtained
// from stage); store hashes them, writes the manifest, and renames the
// directory to its final key — the same two-phase commit discipline as
// table.Export, so a crash or failure never leaves a half-entry under
// the key. The hash pass honours ctx between files, so a job deadline
// covers manifest hashing too; once the hashes are in, the commit
// itself (write + rename) runs to completion — aborting between those
// two steps buys nothing and risks more cleanup states.
func (c *diskCache) store(ctx context.Context, key string, stageDir string, m *Manifest) (*Manifest, error) {
	names, err := exportedFiles(stageDir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("service: staged entry %s has no files", key)
	}
	m.Files = make([]ManifestFile, len(names))
	for i, name := range names {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sum, n, err := hashFile(filepath.Join(stageDir, name))
		if err != nil {
			return nil, err
		}
		m.Files[i] = ManifestFile{Name: name, Bytes: n, SHA256: sum}
	}
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(stageDir, manifestName), raw, 0o644); err != nil {
		return nil, err
	}
	final := c.entryDir(key)
	// The key cannot be concurrently stored (singleflight), but a stale
	// or previously evicted directory may linger; sweep it before the
	// rename.
	if err := os.RemoveAll(final); err != nil {
		return nil, err
	}
	if err := os.Rename(stageDir, final); err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.validated[key] = m
	c.mu.Unlock()
	return m, nil
}

// stage returns the staging directory for a key, guaranteed empty.
func (c *diskCache) stage(key string) (string, error) {
	dir := filepath.Join(c.root, cacheTempPrefix+key)
	if err := os.RemoveAll(dir); err != nil {
		return "", err
	}
	return dir, nil
}

// discard removes a staging directory after a failed store.
func (c *diskCache) discard(stageDir string) { os.RemoveAll(stageDir) }

// open opens a committed entry file for streaming.
func (c *diskCache) open(key, name string) (*os.File, error) {
	return os.Open(filepath.Join(c.entryDir(key), name))
}

// entries counts committed entries on disk (for /v1/stats).
func (c *diskCache) entries() int {
	des, err := os.ReadDir(c.root)
	if err != nil {
		return 0
	}
	n := 0
	for _, de := range des {
		if de.IsDir() && !strings.HasPrefix(de.Name(), cacheTempPrefix) {
			n++
		}
	}
	return n
}

// exportedFiles lists the table files of a staged export directory in
// sorted order (ReadDir sorts), excluding the manifest and any temp
// debris.
func exportedFiles(dir string) ([]string, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, de := range des {
		if de.IsDir() || de.Name() == manifestName || strings.HasPrefix(de.Name(), ".") {
			continue
		}
		names = append(names, de.Name())
	}
	return names, nil
}

// hashFile returns the hex SHA-256 and length of a file.
func hashFile(path string) (string, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	h := sha256.New()
	n, err := io.Copy(h, f)
	if err != nil {
		return "", 0, err
	}
	return hex.EncodeToString(h.Sum(nil)), n, nil
}
