package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"datasynth/internal/faultfs"
)

// Content-addressable dataset cache. An entry is a directory
// cacheDir/<key> holding the exported table files plus manifest.json;
// the key is the canonical schema hash (which embeds the seed and the
// schema version, see core.CanonicalHash) joined with the export
// format. The cache is sound *only because* of the engine's
// determinism contract — a dataset is a pure function of (schema
// version, canonical schema, format), byte-identical at any worker
// count — so serving cached bytes is provably indistinguishable from
// regenerating them.
//
// Integrity: the manifest records the size and SHA-256 of every file.
// An entry is validated (every hash re-checked) the first time this
// process touches it; a corrupted entry — truncated file, flipped
// bytes, missing manifest — is evicted on the spot and the lookup
// reports a miss, so the job layer regenerates instead of serving bad
// bytes. Validated keys are memoized in memory, keeping the hash check
// off the hot hit path.
//
// Size bound: the cache keeps an in-memory index of every committed
// entry — its byte size (sum of the manifest's per-file sizes) in
// last-access order — rebuilt from the manifests on startup. When
// maxBytes > 0, each store evicts cold entries (least recently used
// first) until the total fits. An entry with open readers is never
// deleted mid-stream: eviction marks it dead and the directory is
// removed when the last reader releases it (evict-after-close). If the
// key is regenerated and re-committed before that happens, the store
// supersedes the pending removal so the fresh entry survives. The
// determinism contract makes all of this invisible to clients: an
// evicted entry regenerates to the same bytes, so a resubmit is merely
// slower, never different.

// manifestName is the per-entry metadata file; it is never served as a
// table.
const manifestName = "manifest.json"

// cacheTempPrefix marks in-progress entry directories; a crash leaves
// at worst a temp directory that startup or a fresh store of the same
// key sweeps away.
const cacheTempPrefix = ".tmp-"

// quarantineDirName is where the startup sweep moves crash debris —
// orphaned temp directories and torn entries — instead of deleting it
// outright. Quarantining is a rename (cheap, atomic, works even when
// deletion is what's failing) and preserves the evidence for
// post-mortem inspection; anything already in quarantine from a
// previous run is removed first.
const quarantineDirName = ".quarantine"

// ManifestFile describes one exported table file of a cache entry.
type ManifestFile struct {
	Name   string `json:"name"`
	Bytes  int64  `json:"bytes"`
	SHA256 string `json:"sha256"`
}

// Manifest is the metadata of one cache entry.
type Manifest struct {
	Version       int             `json:"version"`
	SchemaVersion int             `json:"schema_version"`
	Key           string          `json:"key"`
	Graph         string          `json:"graph"`
	Seed          uint64          `json:"seed"`
	Format        string          `json:"format"`
	CanonicalSHA  string          `json:"canonical_sha256"`
	Created       time.Time       `json:"created"`
	Nodes         int64           `json:"nodes"`
	Edges         int64           `json:"edges"`
	Files         []ManifestFile  `json:"files"`
	Report        json.RawMessage `json:"report,omitempty"`
}

// File returns the manifest entry for a table file, matching either
// the exact file name or the name without its extension.
func (m *Manifest) File(name string) *ManifestFile {
	for i := range m.Files {
		f := &m.Files[i]
		if f.Name == name || strings.TrimSuffix(f.Name, filepath.Ext(f.Name)) == name {
			return f
		}
	}
	return nil
}

// totalBytes sums the manifest's per-file sizes — the entry's charge
// against the cache bound (manifest.json itself is noise and excluded).
func (m *Manifest) totalBytes() int64 {
	var n int64
	for i := range m.Files {
		n += m.Files[i].Bytes
	}
	return n
}

// cacheEntry is one committed entry in the in-memory LRU index.
type cacheEntry struct {
	key   string
	bytes int64
	refs  int  // open readers streaming from the entry directory
	dead  bool // evicted from the index; directory removal may be deferred

	prev, next *cacheEntry // LRU list; head = most recently used
}

// diskCache is the on-disk entry store.
type diskCache struct {
	root     string
	maxBytes int64      // 0 or negative = unbounded
	fsys     faultfs.FS // all disk I/O goes through this (OS in production)
	logf     func(format string, args ...any)

	quarantined  atomic.Int64 // debris dirs quarantined by the startup sweep
	cleanupFails atomic.Int64 // directory removals that failed (logged, not fatal)

	mu        sync.Mutex
	validated map[string]*Manifest     // keys hash-verified this process
	inflight  map[string]chan struct{} // keys being verified right now
	index     map[string]*cacheEntry   // committed entries, by key
	dying     map[string]*cacheEntry   // evicted with open readers; dir removal deferred
	lruHead   *cacheEntry              // most recently used
	lruTail   *cacheEntry              // coldest
	total     int64                    // sum of index entry bytes
	lruEvicts int64                    // entries evicted to satisfy the bound
}

func newDiskCache(root string, maxBytes int64, fsys faultfs.FS, logf func(format string, args ...any)) (*diskCache, error) {
	fsys = faultfs.OrOS(fsys)
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if err := fsys.MkdirAll(root, 0o755); err != nil {
		return nil, err
	}
	c := &diskCache{
		root:      root,
		maxBytes:  maxBytes,
		fsys:      fsys,
		logf:      logf,
		validated: map[string]*Manifest{},
		inflight:  map[string]chan struct{}{},
		index:     map[string]*cacheEntry{},
		dying:     map[string]*cacheEntry{},
	}
	if err := c.rebuildIndex(); err != nil {
		return nil, err
	}
	return c, nil
}

// removeDir deletes a directory tree, logging and counting a failure
// instead of dropping it on the floor (eviction and discard used to
// ignore RemoveAll errors silently, so a cache on a sick disk leaked
// space with no trace). Callers that must not proceed on failure —
// evicting a provably corrupt entry — still check errors themselves.
func (c *diskCache) removeDir(dir string) {
	if err := c.fsys.RemoveAll(dir); err != nil {
		c.cleanupFails.Add(1)
		c.logf("cache: removing %s failed: %v", dir, err)
	}
}

// quarantine moves root/name into the quarantine directory under a
// unique name, falling back to outright removal if the rename fails.
func (c *diskCache) quarantine(name string) {
	src := filepath.Join(c.root, name)
	qdir := filepath.Join(c.root, quarantineDirName)
	if err := c.fsys.MkdirAll(qdir, 0o755); err != nil {
		c.logf("cache: quarantine dir: %v; removing %s instead", err, name)
		c.removeDir(src)
		return
	}
	dst := filepath.Join(qdir, name)
	for i := 1; ; i++ {
		if _, err := c.fsys.Stat(dst); err != nil {
			break
		}
		dst = filepath.Join(qdir, fmt.Sprintf("%s-%d", name, i))
	}
	if err := c.fsys.Rename(src, dst); err != nil {
		c.logf("cache: quarantining %s failed: %v; removing instead", name, err)
		c.removeDir(src)
		return
	}
	c.quarantined.Add(1)
	c.logf("cache: quarantined %s -> %s", name, dst)
}

// rebuildIndex is the crash-recovery sweep, run once at startup. It
// scans the cache root and sorts every directory into one of three
// fates: crash debris — orphaned temp directories from a store that
// died between export and commit, and torn entries whose manifest is
// missing, truncated, or names the wrong key — is *quarantined* (moved
// aside, counted, kept for inspection) rather than deleted; leftovers
// from the previous run's quarantine are removed; and intact entries
// seed the LRU index ordered by manifest creation time — with no
// access history to go on, oldest-created is the best stand-in for
// coldest. (The full hash check still happens lazily on first
// lookup.) If the directory already exceeds the bound (say, the
// daemon restarted with a smaller -cachemaxbytes), the excess is
// evicted immediately. Because a quarantined key is simply a cache
// miss, the next lookup regenerates it — the determinism contract
// guarantees byte-identical bytes, so recovery is invisible to
// clients beyond latency.
func (c *diskCache) rebuildIndex() error {
	des, err := c.fsys.ReadDir(c.root)
	if err != nil {
		return err
	}
	type seedEntry struct {
		key     string
		bytes   int64
		created time.Time
	}
	var seeds []seedEntry
	for _, de := range des {
		if !de.IsDir() {
			continue
		}
		name := de.Name()
		if name == quarantineDirName {
			// Previous run's quarantine: its post-mortem window is over.
			c.removeDir(filepath.Join(c.root, name))
			continue
		}
		if strings.HasPrefix(name, cacheTempPrefix) {
			c.quarantine(name)
			continue
		}
		raw, err := c.fsys.ReadFile(filepath.Join(c.root, name, manifestName))
		if err != nil {
			c.quarantine(name)
			continue
		}
		var m Manifest
		if err := json.Unmarshal(raw, &m); err != nil || m.Key != name {
			c.quarantine(name)
			continue
		}
		seeds = append(seeds, seedEntry{key: name, bytes: m.totalBytes(), created: m.Created})
	}
	sort.Slice(seeds, func(a, b int) bool {
		if !seeds[a].created.Equal(seeds[b].created) {
			return seeds[a].created.Before(seeds[b].created)
		}
		return seeds[a].key < seeds[b].key
	})
	c.mu.Lock()
	for _, s := range seeds {
		e := &cacheEntry{key: s.key, bytes: s.bytes}
		c.index[s.key] = e
		c.pushFrontLocked(e)
		c.total += s.bytes
	}
	victims := c.evictToFitLocked("")
	c.mu.Unlock()
	for _, dir := range victims {
		c.removeDir(dir)
	}
	return nil
}

func (c *diskCache) entryDir(key string) string { return filepath.Join(c.root, key) }

// LRU list plumbing; all callers hold c.mu.

func (c *diskCache) pushFrontLocked(e *cacheEntry) {
	e.prev = nil
	e.next = c.lruHead
	if c.lruHead != nil {
		c.lruHead.prev = e
	}
	c.lruHead = e
	if c.lruTail == nil {
		c.lruTail = e
	}
}

func (c *diskCache) unlinkLocked(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.lruHead = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.lruTail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *diskCache) touchLocked(e *cacheEntry) {
	if c.lruHead == e {
		return
	}
	c.unlinkLocked(e)
	c.pushFrontLocked(e)
}

// dropLocked removes an entry from the index and accounting. The
// caller decides what happens to the directory.
func (c *diskCache) dropLocked(e *cacheEntry) {
	c.unlinkLocked(e)
	delete(c.index, e.key)
	delete(c.validated, e.key)
	c.total -= e.bytes
	e.dead = true
}

// evictToFitLocked evicts least-recently-used entries until the total
// fits the bound, never touching exclude (the entry just stored — a
// single entry larger than the whole bound is admitted oversize rather
// than thrashing). Entries with open readers are parked in dying for
// removal at last release; the returned directories are for the caller
// to remove outside the lock.
func (c *diskCache) evictToFitLocked(exclude string) []string {
	if c.maxBytes <= 0 {
		return nil
	}
	var victims []string
	for c.total > c.maxBytes {
		e := c.lruTail
		for e != nil && e.key == exclude {
			e = e.prev
		}
		if e == nil {
			break
		}
		c.dropLocked(e)
		c.lruEvicts++
		if e.refs > 0 {
			c.dying[e.key] = e
		} else {
			victims = append(victims, c.entryDir(e.key))
		}
	}
	return victims
}

// lookup returns the manifest of a valid cache entry, or nil on miss.
// evicted reports that an entry existed but failed integrity checks
// and was removed. Validation (the full per-file re-hash) is
// singleflighted per key: concurrent lookups of the same unvalidated
// entry wait for one verifier instead of each re-hashing the files —
// the same herd-collapse discipline the job layer applies to
// generation.
func (c *diskCache) lookup(key string) (*Manifest, bool, error) {
	for {
		c.mu.Lock()
		if _, isDying := c.dying[key]; isDying {
			// The directory on disk belongs to an evicted entry whose
			// removal waits on open readers; it must not be re-adopted.
			c.mu.Unlock()
			return nil, false, nil
		}
		if m, ok := c.validated[key]; ok {
			if e := c.index[key]; e != nil {
				c.touchLocked(e)
			}
			c.mu.Unlock()
			return m, false, nil
		}
		if ch, busy := c.inflight[key]; busy {
			c.mu.Unlock()
			<-ch
			// The verifier finished: either the key is validated now
			// (next iteration hits the memo) or the entry was bad and
			// evicted (next iteration finds no manifest — a cheap stat).
			continue
		}
		ch := make(chan struct{})
		c.inflight[key] = ch
		c.mu.Unlock()

		m, evicted, err := c.verifyEntry(key)
		c.mu.Lock()
		delete(c.inflight, key)
		if err == nil && m != nil {
			c.validated[key] = m
			// Index the entry if the startup scan missed it (e.g. the
			// directory appeared after this process started).
			e := c.index[key]
			if e == nil {
				e = &cacheEntry{key: key, bytes: m.totalBytes()}
				c.index[key] = e
				c.pushFrontLocked(e)
				c.total += e.bytes
			} else {
				c.touchLocked(e)
			}
		}
		if evicted {
			// Corrupt entry: the directory is already gone; drop any
			// index record so accounting follows.
			if e := c.index[key]; e != nil {
				c.dropLocked(e)
			}
		}
		close(ch)
		c.mu.Unlock()
		return m, evicted, err
	}
}

// verifyEntry reads and integrity-checks one entry off disk.
func (c *diskCache) verifyEntry(key string) (m *Manifest, evicted bool, err error) {
	dir := c.entryDir(key)
	raw, err := c.fsys.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	m = new(Manifest)
	if verr := c.verify(dir, raw, m, key); verr != nil {
		// Corrupted entry: evict so the caller regenerates. The removal
		// itself failing is fatal — we must never serve from a directory
		// we know is bad.
		if rerr := c.fsys.RemoveAll(dir); rerr != nil {
			c.cleanupFails.Add(1)
			return nil, false, fmt.Errorf("service: evicting corrupt cache entry %s: %w (cause: %v)", key, rerr, verr)
		}
		return nil, true, nil
	}
	return m, false, nil
}

// verify parses a manifest and re-checks every file's size and SHA-256.
func (c *diskCache) verify(dir string, raw []byte, m *Manifest, key string) error {
	if err := json.Unmarshal(raw, m); err != nil {
		return fmt.Errorf("manifest unparseable: %w", err)
	}
	if m.Key != key {
		return fmt.Errorf("manifest key %q does not match entry %q", m.Key, key)
	}
	if len(m.Files) == 0 {
		return fmt.Errorf("manifest lists no files")
	}
	for _, f := range m.Files {
		sum, n, err := hashFile(c.fsys, filepath.Join(dir, f.Name))
		if err != nil {
			return fmt.Errorf("file %s: %w", f.Name, err)
		}
		if n != f.Bytes {
			return fmt.Errorf("file %s is %d bytes, manifest says %d", f.Name, n, f.Bytes)
		}
		if sum != f.SHA256 {
			return fmt.Errorf("file %s fails its checksum", f.Name)
		}
	}
	return nil
}

// store commits a freshly exported entry: the caller has already
// exported the table files into a temp directory (stageDir, obtained
// from stage); store hashes them, writes the manifest, and renames the
// directory to its final key — the same two-phase commit discipline as
// table.Export, so a crash or failure never leaves a half-entry under
// the key. The hash pass honours ctx between files, so a job deadline
// covers manifest hashing too; once the hashes are in, the commit
// itself (write + rename) runs to completion — aborting between those
// two steps buys nothing and risks more cleanup states. After the
// commit the entry is indexed most-recently-used and cold entries are
// evicted until the cache fits its bound again.
func (c *diskCache) store(ctx context.Context, key string, stageDir string, m *Manifest) (*Manifest, error) {
	files, err := manifestFiles(ctx, c.fsys, stageDir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("service: staged entry %s has no files", key)
	}
	m.Files = files
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := c.fsys.WriteFile(filepath.Join(stageDir, manifestName), raw, 0o644); err != nil {
		return nil, err
	}
	final := c.entryDir(key)
	// The key cannot be concurrently stored (singleflight), but a stale
	// or previously evicted directory may linger; sweep it before the
	// rename.
	if err := c.fsys.RemoveAll(final); err != nil {
		return nil, err
	}
	if err := c.fsys.Rename(stageDir, final); err != nil {
		return nil, err
	}
	bytes := m.totalBytes()
	c.mu.Lock()
	c.validated[key] = m
	// A dying entry under this key points at the directory we just
	// replaced; supersede its deferred removal or the last reader's
	// release would delete the fresh entry.
	delete(c.dying, key)
	if e := c.index[key]; e != nil {
		c.total += bytes - e.bytes
		e.bytes = bytes
		c.touchLocked(e)
	} else {
		e := &cacheEntry{key: key, bytes: bytes}
		c.index[key] = e
		c.pushFrontLocked(e)
		c.total += bytes
	}
	victims := c.evictToFitLocked(key)
	c.mu.Unlock()
	for _, dir := range victims {
		c.removeDir(dir)
	}
	return m, nil
}

// stage returns the staging directory for a key, guaranteed empty.
func (c *diskCache) stage(key string) (string, error) {
	dir := filepath.Join(c.root, cacheTempPrefix+key)
	if err := c.fsys.RemoveAll(dir); err != nil {
		return "", err
	}
	return dir, nil
}

// discard removes a staging directory after a failed store; a removal
// failure is logged and counted, not swallowed.
func (c *diskCache) discard(stageDir string) { c.removeDir(stageDir) }

// open opens a committed entry file for streaming and pins the entry
// against eviction: release (always non-nil, idempotent) drops the pin
// and performs the deferred directory removal if the entry was evicted
// while being read.
func (c *diskCache) open(key, name string) (faultfs.File, func(), error) {
	c.mu.Lock()
	e := c.index[key]
	if e != nil {
		e.refs++
		c.touchLocked(e)
	}
	c.mu.Unlock()
	f, err := c.fsys.Open(filepath.Join(c.entryDir(key), name))
	if err != nil {
		if e != nil {
			c.release(e)
		}
		return nil, func() {}, err
	}
	if e == nil {
		// Untracked directory (e.g. a dying entry still streaming to
		// other readers); the open fd is all the protection needed.
		return f, func() {}, nil
	}
	var once sync.Once
	return f, func() { once.Do(func() { c.release(e) }) }, nil
}

// release unpins an entry; the last release of a dying entry removes
// its directory (evict-after-close), unless a fresh store superseded
// it in the meantime.
func (c *diskCache) release(e *cacheEntry) {
	c.mu.Lock()
	e.refs--
	var dir string
	if e.refs == 0 && e.dead && c.dying[e.key] == e {
		delete(c.dying, e.key)
		dir = c.entryDir(e.key)
	}
	c.mu.Unlock()
	if dir != "" {
		c.removeDir(dir)
	}
}

// has reports whether key is committed in the index, without
// validating it. Submit uses this to notice that LRU eviction has
// invalidated a completed job's dataset.
func (c *diskCache) has(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.index[key]
	return ok
}

// stats reports committed entry count and total bytes from the
// in-memory index — no directory scan (/v1/stats used to re-read the
// whole cache root on every call).
func (c *diskCache) stats() (entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.index), c.total
}

// entries counts committed entries (from the index).
func (c *diskCache) entries() int {
	n, _ := c.stats()
	return n
}

// lruEvictions reports how many entries were evicted to keep the cache
// under its byte bound.
func (c *diskCache) lruEvictions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lruEvicts
}

// recoveryStats reports the startup sweep's quarantine count and the
// running total of failed directory cleanups.
func (c *diskCache) recoveryStats() (quarantined, cleanupFailures int64) {
	return c.quarantined.Load(), c.cleanupFails.Load()
}

// manifestFiles hashes every exported table file under dir into
// manifest entries, honouring ctx between files. Both the commit path
// (store) and the degraded cache-bypass path use it, so a bypassed
// job's manifest carries the same integrity metadata as a cached one.
func manifestFiles(ctx context.Context, fsys faultfs.FS, dir string) ([]ManifestFile, error) {
	names, err := exportedFiles(fsys, dir)
	if err != nil {
		return nil, err
	}
	files := make([]ManifestFile, len(names))
	for i, name := range names {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sum, n, err := hashFile(fsys, filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		files[i] = ManifestFile{Name: name, Bytes: n, SHA256: sum}
	}
	return files, nil
}

// exportedFiles lists the table files of a staged export directory in
// sorted order (ReadDir sorts), excluding the manifest and any temp
// debris.
func exportedFiles(fsys faultfs.FS, dir string) ([]string, error) {
	des, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, de := range des {
		if de.IsDir() || de.Name() == manifestName || strings.HasPrefix(de.Name(), ".") {
			continue
		}
		names = append(names, de.Name())
	}
	return names, nil
}

// hashFile returns the hex SHA-256 and length of a file.
func hashFile(fsys faultfs.FS, path string) (string, int64, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	h := sha256.New()
	n, err := io.Copy(h, f)
	if err != nil {
		return "", 0, err
	}
	return hex.EncodeToString(h.Sum(nil)), n, nil
}
