package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// Service-path benchmarks, recorded by bench.sh into BENCH_pr<N>.json:
//
//   - ColdSubmit:       full submit→generate→export→commit per op
//   - WarmCacheHit:     submit of an already cached schema + one table
//     download — the steady-state serving cost
//   - SingleflightStorm: 16 concurrent identical cold submits; the
//     whole storm costs one generation
//
// Each runs over real HTTP (httptest) so the measured path includes
// routing, JSON, and streaming — what a client actually pays.

const benchStormWidth = 16

func newBenchService(b *testing.B) (*Service, *httptest.Server) {
	b.Helper()
	svc, err := New(Config{CacheDir: b.TempDir(), JobWorkers: 4, EngineWorkers: 2})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	b.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		svc.Drain(ctx)
	})
	return svc, ts
}

func benchSubmitAndWait(b *testing.B, ts *httptest.Server, src string) string {
	b.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "text/plain", strings.NewReader(src))
	if err != nil {
		b.Fatal(err)
	}
	id := decodeSubmit(b, resp)
	resp, err = http.Get(ts.URL + "/v1/jobs/" + id + "?wait=60s")
	if err != nil {
		b.Fatal(err)
	}
	var view JobView
	decodeJSON(b, resp, &view)
	if view.Status != StatusDone {
		b.Fatalf("job %s: %s", view.Status, view.Error)
	}
	return id
}

func decodeSubmit(b *testing.B, resp *http.Response) string {
	b.Helper()
	var sub submitResponse
	decodeJSON(b, resp, &sub)
	return sub.ID
}

func decodeJSON(b *testing.B, resp *http.Response, v any) {
	b.Helper()
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		body, _ := io.ReadAll(resp.Body)
		b.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	if err := jsonDecode(resp.Body, v); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkServiceColdSubmit(b *testing.B) {
	_, ts := newBenchService(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// A unique seed per iteration forces a cache miss every time.
		benchSubmitAndWait(b, ts, testSchema(1000+i))
	}
}

func BenchmarkServiceWarmCacheHit(b *testing.B) {
	_, ts := newBenchService(b)
	src := testSchema(500)
	id := benchSubmitAndWait(b, ts, src)
	tableURL := ts.URL + "/v1/jobs/" + id + "/tables/edges_knows"
	var bytes int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/jobs", "text/plain", strings.NewReader(src))
		if err != nil {
			b.Fatal(err)
		}
		if got := decodeSubmit(b, resp); got != id {
			b.Fatalf("warm submit keyed %s, want %s", got, id)
		}
		resp, err = http.Get(tableURL)
		if err != nil {
			b.Fatal(err)
		}
		n, err := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		bytes = n
	}
	b.SetBytes(bytes)
}

func BenchmarkServiceSingleflightStorm(b *testing.B) {
	svc, ts := newBenchService(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src := testSchema(2000 + i)
		before := svc.Generations()
		var wg sync.WaitGroup
		errs := make([]error, benchStormWidth)
		for c := 0; c < benchStormWidth; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				resp, err := http.Post(ts.URL+"/v1/jobs", "text/plain", strings.NewReader(src))
				if err != nil {
					errs[c] = err
					return
				}
				var sub submitResponse
				err = jsonDecode(resp.Body, &sub)
				resp.Body.Close()
				if err != nil {
					errs[c] = err
					return
				}
				resp, err = http.Get(ts.URL + "/v1/jobs/" + sub.ID + "?wait=60s")
				if err != nil {
					errs[c] = err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}(c)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
		if got := svc.Generations() - before; got != 1 {
			b.Fatalf("storm %d ran %d generations, want 1", i, got)
		}
	}
	b.ReportMetric(benchStormWidth, "submits/gen")
}

// BenchmarkServiceWarmHitUnderEviction measures the warm-hit serving
// path while LRU eviction churns the cache around it: the byte bound
// admits the hot entry plus roughly one cold one, every iteration
// stores a fresh cold dataset (evicting the previous iteration's), and
// only the hot submit + table download is on the timer. The gap vs
// BenchmarkServiceWarmCacheHit bounds the tax that eviction
// bookkeeping puts on the hit path (the per-iteration timer restarts
// and churn-generation GC pressure inflate it; the index operations
// themselves are O(1)).
func BenchmarkServiceWarmHitUnderEviction(b *testing.B) {
	// Probe the per-entry size with an unbounded throwaway service.
	probe, probeTS := newBenchService(b)
	benchSubmitAndWait(b, probeTS, testSchema(500))
	_, entryBytes := probe.cache.stats()

	svc, err := New(Config{
		CacheDir: b.TempDir(), JobWorkers: 4, EngineWorkers: 2,
		CacheMaxBytes: 2*entryBytes + entryBytes/2,
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	b.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		svc.Drain(ctx)
	})

	src := testSchema(500)
	id := benchSubmitAndWait(b, ts, src)
	tableURL := ts.URL + "/v1/jobs/" + id + "/tables/edges_knows"
	var bytes int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		benchSubmitAndWait(b, ts, testSchema(3000+i)) // churn: evicts the previous cold entry
		b.StartTimer()
		resp, err := http.Post(ts.URL+"/v1/jobs", "text/plain", strings.NewReader(src))
		if err != nil {
			b.Fatal(err)
		}
		if got := decodeSubmit(b, resp); got != id {
			b.Fatalf("warm submit keyed %s, want %s", got, id)
		}
		resp, err = http.Get(tableURL)
		if err != nil {
			b.Fatal(err)
		}
		n, err := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		bytes = n
	}
	b.SetBytes(bytes)
	// The first churn entry still fits beside the hot one; pressure
	// starts on the second iteration.
	if b.N > 1 && svc.Stats().Cache.LRUEvictions == 0 {
		b.Fatal("benchmark applied no eviction pressure")
	}
}

func jsonDecode(r io.Reader, v any) error {
	return json.NewDecoder(r).Decode(v)
}
