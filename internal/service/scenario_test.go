package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"datasynth/internal/core"
	"datasynth/internal/dsl"
	"datasynth/internal/table"
)

// scenDSL is a small schema whose lfr call spells mu explicitly, so
// both override and sweep tests can vary it. The seed is substituted
// per test.
const scenDSL = `
graph scen {
  seed = %d
  node Person {
    count = 200
    property country : string = categorical(dict="countries")
  }
  edge knows : Person *-* Person {
    structure = lfr(avgDegree=4, maxDegree=10, mu=0.2)
  }
}
`

func scenSchema(seed int) string { return fmt.Sprintf(scenDSL, seed) }

func newScenarioServer(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	svc := newTestService(t, Config{ScenarioDir: t.TempDir()})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return svc, ts
}

func doReq(t *testing.T, method, url, contentType string, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func putScenario(t *testing.T, ts *httptest.Server, name, src string) submitScenarioRecord {
	t.Helper()
	resp, raw := doReq(t, http.MethodPut, ts.URL+"/v1/scenarios/"+name, "text/plain", src)
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT scenario %s: %d %s", name, resp.StatusCode, raw)
	}
	var rec submitScenarioRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatal(err)
	}
	return rec
}

// submitScenarioRecord mirrors the scenario.Version JSON the PUT and
// GET endpoints return.
type submitScenarioRecord struct {
	Name         string `json:"name"`
	Version      int    `json:"version"`
	DSL          string `json:"dsl"`
	CanonicalSHA string `json:"canonical_sha256"`
}

func TestScenarioHTTPSurface(t *testing.T) {
	svc, ts := newScenarioServer(t)

	// PUT with a raw DSL body mints v1; re-PUT is idempotent (200, same
	// version); a changed recipe appends v2.
	v1 := putScenario(t, ts, "panel", scenSchema(1))
	if v1.Version != 1 || v1.CanonicalSHA == "" || v1.DSL == "" {
		t.Fatalf("v1: %+v", v1)
	}
	resp, raw := doReq(t, http.MethodPut, ts.URL+"/v1/scenarios/panel", "text/plain", scenSchema(1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("idempotent re-PUT: %d %s", resp.StatusCode, raw)
	}
	// PUT with a JSON body carries description and labels.
	body, _ := json.Marshal(map[string]any{
		"schema":      scenSchema(2),
		"description": "second recipe",
		"labels":      map[string]string{"fig": "3"},
	})
	resp, raw = doReq(t, http.MethodPut, ts.URL+"/v1/scenarios/panel", "application/json", string(body))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT v2: %d %s", resp.StatusCode, raw)
	}
	var v2 submitScenarioRecord
	json.Unmarshal(raw, &v2)
	if v2.Version != 2 {
		t.Fatalf("v2: %+v", v2)
	}

	// GET /v1/scenarios lists; GET {name} lists versions without DSL
	// text; ?version= returns the full record.
	resp, raw = doReq(t, http.MethodGet, ts.URL+"/v1/scenarios", "", "")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(raw, []byte(`"panel"`)) {
		t.Fatalf("list: %d %s", resp.StatusCode, raw)
	}
	resp, raw = doReq(t, http.MethodGet, ts.URL+"/v1/scenarios/panel", "", "")
	if resp.StatusCode != http.StatusOK || bytes.Contains(raw, []byte(`"dsl"`)) {
		t.Fatalf("version list should omit DSL text: %d %s", resp.StatusCode, raw)
	}
	resp, raw = doReq(t, http.MethodGet, ts.URL+"/v1/scenarios/panel?version=1", "", "")
	var got submitScenarioRecord
	json.Unmarshal(raw, &got)
	if resp.StatusCode != http.StatusOK || got.CanonicalSHA != v1.CanonicalSHA || got.DSL != v1.DSL {
		t.Fatalf("GET v1: %d %+v", resp.StatusCode, got)
	}
	resp, raw = doReq(t, http.MethodGet, ts.URL+"/v1/scenarios/panel?version=latest", "", "")
	json.Unmarshal(raw, &got)
	if resp.StatusCode != http.StatusOK || got.Version != 2 {
		t.Fatalf("GET latest: %d %+v", resp.StatusCode, got)
	}
	if resp, _ = doReq(t, http.MethodGet, ts.URL+"/v1/scenarios/panel?version=9", "", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET missing version: %d", resp.StatusCode)
	}
	if resp, _ = doReq(t, http.MethodGet, ts.URL+"/v1/scenarios/ghost", "", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET missing name: %d", resp.StatusCode)
	}

	// Invalid DSL: 422 and nothing written (validation-first).
	resp, _ = doReq(t, http.MethodPut, ts.URL+"/v1/scenarios/broken", "text/plain", "graph nope {")
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("invalid DSL: %d", resp.StatusCode)
	}
	if _, err := os.Stat(svc.cfg.ScenarioDir + "/broken"); !os.IsNotExist(err) {
		t.Fatalf("rejected PUT left a trace: %v", err)
	}

	// DELETE unregisters; a second DELETE is 404.
	resp, raw = doReq(t, http.MethodDelete, ts.URL+"/v1/scenarios/panel", "", "")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(raw, []byte(`"versions": 2`)) {
		t.Fatalf("DELETE: %d %s", resp.StatusCode, raw)
	}
	if resp, _ = doReq(t, http.MethodDelete, ts.URL+"/v1/scenarios/panel", "", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double DELETE: %d", resp.StatusCode)
	}

	st := svc.Stats()
	if !st.Scenarios.Enabled || st.Scenarios.Puts != 2 || st.Scenarios.Deletes != 1 {
		t.Fatalf("stats: %+v", st.Scenarios)
	}
}

func TestScenarioSurfaceDisabled(t *testing.T) {
	svc := newTestService(t, Config{}) // no ScenarioDir
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	for _, probe := range []struct{ method, path, body string }{
		{http.MethodGet, "/v1/scenarios", ""},
		{http.MethodPut, "/v1/scenarios/x", scenSchema(1)},
		{http.MethodGet, "/v1/scenarios/x", ""},
		{http.MethodDelete, "/v1/scenarios/x", ""},
		{http.MethodPost, "/v1/sweeps", `{"scenario":"x","sweep":{"seed":[1]}}`},
	} {
		resp, raw := doReq(t, probe.method, ts.URL+probe.path, "text/plain", probe.body)
		if resp.StatusCode != http.StatusNotFound || !bytes.Contains(raw, []byte("scenariodir")) {
			t.Errorf("%s %s with registry off: %d %s", probe.method, probe.path, resp.StatusCode, raw)
		}
	}
	// Named job submission is equally unavailable.
	resp, raw := doReq(t, http.MethodPost, ts.URL+"/v1/jobs", "application/json", `{"scenario":"x"}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("named submit with registry off: %d %s", resp.StatusCode, raw)
	}
	if st := svc.Stats(); st.Scenarios.Enabled {
		t.Fatal("stats claim the registry is enabled")
	}
}

// submitJSON posts a JSON submission body and decodes the response.
func submitJSON(t *testing.T, ts *httptest.Server, body map[string]any) (int, submitResponse, []byte) {
	t.Helper()
	raw, _ := json.Marshal(body)
	resp, out := doReq(t, http.MethodPost, ts.URL+"/v1/jobs", "application/json", string(raw))
	var sub submitResponse
	json.Unmarshal(out, &sub)
	return resp.StatusCode, sub, out
}

// downloadAll fetches every table of a done job: name -> sha256.
func downloadAll(t *testing.T, ts *httptest.Server, jobID string) map[string]string {
	t.Helper()
	resp, raw := doReq(t, http.MethodGet, ts.URL+"/v1/jobs/"+jobID+"?wait=60s", "", "")
	var view JobView
	if err := json.Unmarshal(raw, &view); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || view.Status != StatusDone {
		t.Fatalf("job %s: %d %s (%s)", jobID, resp.StatusCode, view.Status, view.Error)
	}
	hashes := map[string]string{}
	for _, f := range view.Files {
		resp, body := doReq(t, http.MethodGet, ts.URL+"/v1/jobs/"+jobID+"/tables/"+f.Name, "", "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("table %s: %d", f.Name, resp.StatusCode)
		}
		hashes[f.Name] = sha256Hex(body)
	}
	return hashes
}

// TestSubmitByNameByteIdentity is the acceptance-criteria core: for a
// registered scenario, submit-by-name — with and without overrides —
// produces downloads SHA-256-identical to an anonymous submit of the
// resolved canonical DSL, cold and warm, collapsing onto the same job
// id and cache entry.
func TestSubmitByNameByteIdentity(t *testing.T) {
	svc, ts := newScenarioServer(t)
	rec := putScenario(t, ts, "panel", scenSchema(42))

	// Without overrides: the named submit's job id must BE the content
	// hash of the registered canonical text, so anonymous and named
	// submissions of the same recipe are the same cache entry.
	code, named, out := submitJSON(t, ts, map[string]any{"scenario": "panel"})
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("named submit: %d %s", code, out)
	}
	if named.Scenario != "panel@v1" {
		t.Fatalf("resolved ref %q, want panel@v1", named.Scenario)
	}
	if !strings.HasPrefix(named.ID, rec.CanonicalSHA) {
		t.Fatalf("named job id %s does not start with the registered hash %s", named.ID, rec.CanonicalSHA)
	}
	namedHashes := downloadAll(t, ts, named.ID)

	resp, raw := doReq(t, http.MethodPost, ts.URL+"/v1/jobs", "text/plain", rec.DSL)
	var anon submitResponse
	json.Unmarshal(raw, &anon)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Fatalf("anonymous submit: %d %s", resp.StatusCode, raw)
	}
	if anon.ID != named.ID {
		t.Fatalf("anonymous submit of resolved DSL keyed %s, named keyed %s", anon.ID, named.ID)
	}
	anonHashes := downloadAll(t, ts, anon.ID)
	if len(anonHashes) != len(namedHashes) {
		t.Fatalf("file sets differ: %v vs %v", anonHashes, namedHashes)
	}
	for name, h := range namedHashes {
		if anonHashes[name] != h {
			t.Errorf("table %s: named %s, anonymous %s", name, h, anonHashes[name])
		}
	}

	// With overrides: resolve by hand (parse canonical text, apply the
	// same override helper, re-canonicalise) and check the named submit
	// keys identically — cold, then warm.
	params := map[string]string{"knows.mu": "0.35", "seed": "7"}
	resolvedSchema, err := dsl.Parse(rec.DSL)
	if err != nil {
		t.Fatal(err)
	}
	if err := dsl.Override(resolvedSchema, params); err != nil {
		t.Fatal(err)
	}
	resolvedText := core.CanonicalSchema(resolvedSchema)

	var overrideID string
	for _, pass := range []string{"cold", "warm"} {
		code, sub, out := submitJSON(t, ts, map[string]any{"scenario": "panel@v1", "params": params})
		if code != http.StatusAccepted && code != http.StatusOK {
			t.Fatalf("override submit (%s): %d %s", pass, code, out)
		}
		if pass == "warm" && sub.ID != overrideID {
			t.Fatalf("warm override submit keyed %s, cold keyed %s", sub.ID, overrideID)
		}
		overrideID = sub.ID
		got := downloadAll(t, ts, sub.ID)

		resp, raw := doReq(t, http.MethodPost, ts.URL+"/v1/jobs", "text/plain", resolvedText)
		var anonO submitResponse
		json.Unmarshal(raw, &anonO)
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
			t.Fatalf("anonymous resolved submit (%s): %d %s", pass, resp.StatusCode, raw)
		}
		if anonO.ID != sub.ID {
			t.Fatalf("(%s) anonymous resolved text keyed %s, named+params keyed %s", pass, anonO.ID, sub.ID)
		}
		want := downloadAll(t, ts, anonO.ID)
		for name, h := range want {
			if got[name] != h {
				t.Errorf("(%s) table %s: named+params %s, anonymous resolved %s", pass, name, got[name], h)
			}
		}
	}
	if overrideID == named.ID {
		t.Fatal("override produced the same cache key as the base recipe")
	}

	// The base recipe and the override are two schemas: two generations
	// total, everything else cache hits or dedups.
	if g := svc.Generations(); g != 2 {
		t.Errorf("%d generations, want 2", g)
	}
	st := svc.Stats()
	if st.Scenarios.NamedSubmits != 3 || st.Scenarios.AnonymousSubmits != 3 {
		t.Errorf("submit counters: %+v", st.Scenarios)
	}

	// Bad refs and bad params are client errors, not server faults.
	if code, _, out := submitJSON(t, ts, map[string]any{"scenario": "ghost"}); code != http.StatusNotFound {
		t.Errorf("unknown scenario: %d %s", code, out)
	}
	if code, _, out := submitJSON(t, ts, map[string]any{"scenario": "panel@v9"}); code != http.StatusNotFound {
		t.Errorf("unknown version: %d %s", code, out)
	}
	if code, _, out := submitJSON(t, ts, map[string]any{"scenario": "panel", "params": map[string]string{"knows.gamma": "2"}}); code != http.StatusUnprocessableEntity {
		t.Errorf("bad override: %d %s", code, out)
	}
	if code, _, out := submitJSON(t, ts, map[string]any{"scenario": "panel", "schema": scenSchema(1)}); code != http.StatusBadRequest {
		t.Errorf("schema+scenario: %d %s", code, out)
	}
	if code, _, out := submitJSON(t, ts, map[string]any{"schema": scenSchema(1), "params": map[string]string{"seed": "1"}}); code != http.StatusBadRequest {
		t.Errorf("params without scenario: %d %s", code, out)
	}
}

// waitSweepDone polls the sweep status endpoint until Done.
func waitSweepDone(t *testing.T, ts *httptest.Server, id string) SweepView {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, raw := doReq(t, http.MethodGet, ts.URL+"/v1/sweeps/"+id, "", "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET sweep %s: %d %s", id, resp.StatusCode, raw)
		}
		var view SweepView
		if err := json.Unmarshal(raw, &view); err != nil {
			t.Fatal(err)
		}
		if view.Done {
			return view
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s never finished: %s", id, raw)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestSweepTenPointMu is the acceptance-criteria sweep: a 10-point mu
// grid creates exactly 10 cache entries, the status endpoint reports
// all points done, and each point is byte-identical to its individual
// submit-by-name.
func TestSweepTenPointMu(t *testing.T) {
	svc, ts := newScenarioServer(t)
	putScenario(t, ts, "panel", scenSchema(42))

	body := `{"scenario":"panel","sweep":{"knows.mu":{"from":0.05,"to":0.5,"step":0.05}}}`
	resp, raw := doReq(t, http.MethodPost, ts.URL+"/v1/sweeps", "application/json", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST sweep: %d %s", resp.StatusCode, raw)
	}
	var sw SweepView
	if err := json.Unmarshal(raw, &sw); err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) != 10 {
		t.Fatalf("expanded to %d points, want 10", len(sw.Points))
	}
	if sw.Scenario != "panel@v1" {
		t.Fatalf("sweep resolved %q", sw.Scenario)
	}
	seen := map[string]bool{}
	for _, p := range sw.Points {
		if seen[p.Job] {
			t.Fatalf("duplicate cache key %s in grid", p.Job)
		}
		seen[p.Job] = true
	}

	view := waitSweepDone(t, ts, sw.ID)
	if view.Counts[string(StatusDone)] != 10 {
		t.Fatalf("counts: %+v", view.Counts)
	}
	if st := svc.Stats(); st.Cache.Entries != 10 {
		t.Fatalf("%d cache entries after the sweep, want 10", st.Cache.Entries)
	}

	// Spot-check two points against their individual submit-by-name:
	// the job ids must coincide (same cache entry, hence same bytes).
	for _, mu := range []string{"0.05", "0.3"} {
		code, sub, out := submitJSON(t, ts, map[string]any{
			"scenario": "panel", "params": map[string]string{"knows.mu": mu},
		})
		if code != http.StatusOK {
			t.Fatalf("individual mu=%s submit after sweep: %d %s (want a cache hit)", mu, code, out)
		}
		if !seen[sub.ID] {
			t.Fatalf("individual mu=%s submit keyed %s, not a sweep point", mu, sub.ID)
		}
		downloadAll(t, ts, sub.ID)
	}

	// Re-POSTing the identical grid is idempotent: same sweep id, no
	// new generations (all 10 points cache-hit).
	gens := svc.Generations()
	resp, raw = doReq(t, http.MethodPost, ts.URL+"/v1/sweeps", "application/json", body)
	var sw2 SweepView
	json.Unmarshal(raw, &sw2)
	if resp.StatusCode != http.StatusAccepted || sw2.ID != sw.ID {
		t.Fatalf("re-POST: %d id %s (first %s)", resp.StatusCode, sw2.ID, sw.ID)
	}
	if g := svc.Generations(); g != gens {
		t.Fatalf("re-POST regenerated: %d -> %d", gens, g)
	}

	st := svc.Stats()
	if st.Scenarios.Sweeps != 2 || st.Scenarios.SweepPoints != 20 || st.Scenarios.ActiveSweeps != 1 {
		t.Errorf("sweep stats: %+v", st.Scenarios)
	}
	if resp, _ := doReq(t, http.MethodGet, ts.URL+"/v1/sweeps/sw-nope", "", ""); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown sweep id: %d", resp.StatusCode)
	}
}

func TestSweepDuplicatePointsDedup(t *testing.T) {
	svc, ts := newScenarioServer(t)
	putScenario(t, ts, "panel", scenSchema(42))

	// An explicit value list with duplicates expands to two points with
	// the same cache key; singleflight collapses them to one generation.
	body := `{"scenario":"panel","sweep":{"knows.mu":[0.1, 0.1]}}`
	resp, raw := doReq(t, http.MethodPost, ts.URL+"/v1/sweeps", "application/json", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST sweep: %d %s", resp.StatusCode, raw)
	}
	var sw SweepView
	json.Unmarshal(raw, &sw)
	if len(sw.Points) != 2 || sw.Points[0].Job != sw.Points[1].Job {
		t.Fatalf("points: %+v", sw.Points)
	}
	waitSweepDone(t, ts, sw.ID)
	if g := svc.Generations(); g != 1 {
		t.Fatalf("%d generations for a duplicate pair, want 1", g)
	}
}

func TestSweepValidationFirst(t *testing.T) {
	svc, ts := newScenarioServer(t)
	putScenario(t, ts, "panel", scenSchema(42))

	for name, body := range map[string]string{
		"unknown param":   `{"scenario":"panel","sweep":{"knows.gamma":[1,2]}}`,
		"empty axis":      `{"scenario":"panel","sweep":{"knows.mu":[]}}`,
		"no axes":         `{"scenario":"panel","sweep":{}}`,
		"bad range":       `{"scenario":"panel","sweep":{"knows.mu":{"from":0.5,"to":0.1,"step":0.05}}}`,
		"zero step":       `{"scenario":"panel","sweep":{"knows.mu":{"from":0.1,"to":0.5,"step":0}}}`,
		"axis also fixed": `{"scenario":"panel","params":{"knows.mu":"0.1"},"sweep":{"knows.mu":[0.2]}}`,
		"too many points": `{"scenario":"panel","sweep":{"seed":{"from":1,"to":1000,"step":1}}}`,
		"huge range axis": `{"scenario":"panel","sweep":{"seed":{"from":0,"to":1000000000,"step":1}}}`,
		"overflow range":  `{"scenario":"panel","sweep":{"seed":{"from":0,"to":1e18,"step":1}}}`,
	} {
		resp, raw := doReq(t, http.MethodPost, ts.URL+"/v1/sweeps", "application/json", body)
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Errorf("%s: %d %s", name, resp.StatusCode, raw)
		}
	}
	// Validation-first: none of the rejected grids submitted anything.
	if n := svc.submits.Load(); n != 0 {
		t.Fatalf("rejected sweeps submitted %d jobs", n)
	}
	if st := svc.Stats(); st.Scenarios.SweepPoints != 0 || st.Scenarios.Sweeps != 0 {
		t.Fatalf("rejected sweeps counted: %+v", st.Scenarios)
	}
}

// TestDeleteScenarioMidSweep pins the small-fix regression: deleting a
// scenario does not invalidate cached datasets or in-flight jobs that
// were submitted through it — a delete mid-sweep leaves every point
// completing and downloadable.
func TestDeleteScenarioMidSweep(t *testing.T) {
	_, ts := newScenarioServer(t)
	putScenario(t, ts, "doomed", scenSchema(42))

	body := `{"scenario":"doomed","sweep":{"knows.mu":[0.1, 0.2, 0.3]}}`
	resp, raw := doReq(t, http.MethodPost, ts.URL+"/v1/sweeps", "application/json", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST sweep: %d %s", resp.StatusCode, raw)
	}
	var sw SweepView
	json.Unmarshal(raw, &sw)

	// Delete the scenario while the sweep's jobs are queued or running.
	if resp, raw := doReq(t, http.MethodDelete, ts.URL+"/v1/scenarios/doomed", "", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE mid-sweep: %d %s", resp.StatusCode, raw)
	}

	// Every point still completes and every table still downloads.
	view := waitSweepDone(t, ts, sw.ID)
	for _, p := range view.Points {
		if p.Status != string(StatusDone) {
			t.Fatalf("point %v: %s after delete", p.Params, p.Status)
		}
		if hashes := downloadAll(t, ts, p.Job); len(hashes) == 0 {
			t.Fatalf("point %v: no tables", p.Params)
		}
	}
	// New submissions by the deleted name are 404 — the name is gone,
	// the data is not.
	if code, _, out := submitJSON(t, ts, map[string]any{"scenario": "doomed"}); code != http.StatusNotFound {
		t.Fatalf("submit after delete: %d %s", code, out)
	}
}

// TestExpandAxisBoundedBeforeAllocation pins the fast-fail contract:
// the point cap is enforced before any value slice is allocated.
// Pre-fix, a small {"from":0,"to":1e9,"step":1} body materialised a
// ~1e9-entry slice (multi-GB) before expandSweep's total-points check
// ran, and larger ranges overflowed the float→int length conversion
// into a negative make() argument, panicking inside the handler.
func TestExpandAxisBoundedBeforeAllocation(t *testing.T) {
	for name, raw := range map[string]string{
		"huge range":     `{"from":0,"to":1e9,"step":1}`,
		"int overflow":   `{"from":0,"to":1e18,"step":1}`,
		"float overflow": `{"from":-1e308,"to":1e308,"step":1e-300}`,
	} {
		_, err := expandAxis("seed", json.RawMessage(raw), 256)
		if err == nil {
			t.Errorf("%s: expanded instead of failing fast", name)
			continue
		}
		var bad *BadParamsError
		if !errors.As(err, &bad) {
			t.Errorf("%s: %v, want *BadParamsError", name, err)
		}
	}

	// An explicit value list longer than the cap fails the same way.
	long := "[" + strings.Repeat("1,", 300) + "1]"
	if _, err := expandAxis("seed", json.RawMessage(long), 256); err == nil {
		t.Error("301-value list passed a 256-point cap")
	}

	// Boundary: exactly the cap is allowed, one more is not.
	vals, err := expandAxis("seed", json.RawMessage(`{"from":1,"to":4,"step":1}`), 4)
	if err != nil || len(vals) != 4 {
		t.Fatalf("4-point axis under cap 4: %v err=%v", vals, err)
	}
	if _, err := expandAxis("seed", json.RawMessage(`{"from":1,"to":5,"step":1}`), 4); err == nil {
		t.Fatal("5-point axis passed a 4-point cap")
	}
}

// TestFormatSweepValue pins the normalisation contract: a grid number
// must spell exactly like the hand-written override of the same value.
// Integral values print without an exponent ("1000000", never "1e+06",
// which dsl.Override's ParseInt rejects for count params and which
// hashes differently from "1000000" for edge params).
func TestFormatSweepValue(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{
		{1000000, "1000000"},
		{1234567, "1234567"},
		{0, "0"},
		{-3, "-3"},
		{0.05, "0.05"},
		{0.125, "0.125"},
		// Binary-float drift from range expansion is absorbed.
		{0.05 + 5*0.05, "0.3"},
		{0.30000000000000004, "0.3"},
	} {
		if got := formatSweepValue(tc.in); got != tc.want {
			t.Errorf("formatSweepValue(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestSweepIntegerCountAxis pins the formatting fix at the expansion
// layer: a count axis value of 1e6 must expand to "1000000" so the
// override whitelist accepts it, and the grid point's cache key must
// equal a hand-written override of the same number.
func TestSweepIntegerCountAxis(t *testing.T) {
	svc := newTestService(t, Config{ScenarioDir: t.TempDir()})
	if _, _, err := svc.PutScenario("panel", scenSchema(42), "", nil); err != nil {
		t.Fatal(err)
	}
	req := SweepRequest{
		Scenario: "panel",
		Sweep:    map[string]json.RawMessage{"Person.count": json.RawMessage(`[1000000, 2000000]`)},
	}
	_, points, _, err := svc.expandSweep(req, table.FormatCSV)
	if err != nil {
		t.Fatalf("integer count axis rejected: %v", err)
	}
	if got := points[0].params["Person.count"]; got != "1000000" {
		t.Fatalf("count spelled %q, want \"1000000\"", got)
	}
	sch, _, err := svc.resolveScenario("panel", map[string]string{"Person.count": "1000000"})
	if err != nil {
		t.Fatal(err)
	}
	if key := CacheKey(sch, table.FormatCSV); key != points[0].key {
		t.Fatalf("grid key %s != hand-written override key %s", points[0].key, key)
	}
}

// TestPrunePrefersSettledSweeps pins the eviction policy: past the
// bound, sweeps whose points have all settled go before a sweep with a
// live queued/running job, even when the in-flight sweep is the
// globally oldest record. Pre-fix, oldest-first eviction made an
// in-flight sweep's GET /v1/sweeps/{id} return 404 under churn while
// its points were still running.
func TestPrunePrefersSettledSweeps(t *testing.T) {
	svc := newTestService(t, Config{ScenarioDir: t.TempDir()})

	live := &Job{id: "k-live", status: StatusQueued, done: make(chan struct{})}
	svc.mu.Lock()
	svc.jobs[live.id] = live
	svc.mu.Unlock()

	base := time.Now()
	svc.sweepMu.Lock()
	svc.sweeps["sw-live"] = &Sweep{id: "sw-live", created: base.Add(-time.Hour),
		points: []sweepPoint{{key: "k-live"}}}
	for i := 0; i <= maxSweeps; i++ {
		// No job record and no cache entry: settled ("evicted" state).
		id := fmt.Sprintf("sw-settled-%03d", i)
		svc.sweeps[id] = &Sweep{id: id, created: base.Add(time.Duration(i) * time.Second),
			points: []sweepPoint{{key: fmt.Sprintf("k-%03d", i)}}}
	}
	svc.pruneSweepsLocked()
	_, liveKept := svc.sweeps["sw-live"]
	_, oldestSettledKept := svc.sweeps["sw-settled-000"]
	_, nextSettledKept := svc.sweeps["sw-settled-001"]
	n := len(svc.sweeps)
	svc.sweepMu.Unlock()

	if !liveKept {
		t.Fatal("prune evicted the in-flight sweep while settled sweeps existed")
	}
	if oldestSettledKept || nextSettledKept {
		t.Fatal("prune kept the oldest settled sweeps instead of evicting them")
	}
	if n != maxSweeps {
		t.Fatalf("%d sweeps after prune, want %d", n, maxSweeps)
	}
}
