package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"datasynth/internal/table"
)

// HTTP surface of the service:
//
//	POST /v1/jobs                       submit a schema; returns the job (id = cache key)
//	GET  /v1/jobs/{id}                  job status + timing report (?wait=30s blocks)
//	GET  /v1/jobs/{id}/tables/{table}   stream one exported table file
//	GET  /v1/healthz                    liveness
//	GET  /v1/stats                      queue depth, cache hit rate, in-flight engines
//
// Submission bodies: raw DSL text (any non-JSON content type; the
// format comes from the ?format= query parameter), or a JSON object
// {"schema": "...", "format": "csv|jsonl|columnar"}. Table files
// stream verbatim from the committed cache entry — no re-encoding —
// with the manifest's SHA-256 as a strong ETag, so clients can
// revalidate a download for free.

// maxSchemaBytes bounds a submitted schema body; DSL schemas are
// kilobytes, so anything near this is a mistake or abuse.
const maxSchemaBytes = 1 << 20

// maxWait bounds the ?wait= long poll on the job-status endpoint.
const maxWait = 5 * time.Minute

// submitRequest is the JSON submission body.
type submitRequest struct {
	Schema string `json:"schema"`
	Format string `json:"format,omitempty"`
}

// submitResponse extends the job view with the submission outcome.
type submitResponse struct {
	JobView
	Deduped bool `json:"deduped,omitempty"`
}

// Handler returns the service's HTTP handler.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/tables/{table}", s.handleTable)
	return mux
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSchemaBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeErr(w, http.StatusRequestEntityTooLarge, fmt.Errorf("schema body exceeds %d bytes", maxSchemaBytes))
		} else {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("reading schema body: %w", err))
		}
		return
	}
	src := string(body)
	formatName := r.URL.Query().Get("format")
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		var req submitRequest
		if err := json.Unmarshal(body, &req); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid JSON body: %w", err))
			return
		}
		src = req.Schema
		if req.Format != "" {
			formatName = req.Format
		}
	}
	if strings.TrimSpace(src) == "" {
		writeErr(w, http.StatusBadRequest, errors.New("empty schema"))
		return
	}
	if formatName == "" {
		formatName = "csv"
	}
	format, err := table.ParseFormat(formatName)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}

	res, err := s.Submit(src, format)
	if err != nil {
		var le *LimitError
		var ie *internalError
		switch {
		case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining):
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusServiceUnavailable, err)
		case errors.As(err, &le):
			writeErr(w, http.StatusUnprocessableEntity, err)
		case errors.As(err, &ie):
			// Cache I/O fault — the server's problem, not the schema's.
			writeErr(w, http.StatusInternalServerError, err)
		default:
			// Parse or validation failure.
			writeErr(w, http.StatusBadRequest, err)
		}
		return
	}
	code := http.StatusAccepted
	if res.CacheHit {
		code = http.StatusOK
	}
	sr := submitResponse{JobView: res.Job.View(), Deduped: res.Deduped}
	// cache_hit in the submit response is submission-level: true
	// whenever this request was served without a new generation —
	// from the disk cache or from an already completed identical job.
	if res.CacheHit {
		sr.CacheHit = true
	}
	writeJSON(w, code, sr)
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.Job(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		wait, err := time.ParseDuration(waitStr)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid wait duration: %w", err))
			return
		}
		if wait > maxWait {
			wait = maxWait
		}
		select {
		case <-j.Done():
		case <-time.After(wait):
		case <-s.drainCh:
			// Shutting down: answer with the current status so the
			// connection frees and the HTTP drain can complete.
		case <-r.Context().Done():
			return
		}
	}
	writeJSON(w, http.StatusOK, j.View())
}

func (s *Service) handleTable(w http.ResponseWriter, r *http.Request) {
	j := s.Job(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	m := j.Manifest()
	if m == nil {
		v := j.View()
		if v.Status == StatusFailed {
			writeErr(w, http.StatusConflict, fmt.Errorf("job failed: %s", v.Error))
			return
		}
		writeErr(w, http.StatusConflict, fmt.Errorf("job is %s; tables stream once it is done", v.Status))
		return
	}
	// Only manifest-listed names resolve, so a crafted path can never
	// escape the entry directory.
	mf := m.File(r.PathValue("table"))
	if mf == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no table file %q in this dataset", r.PathValue("table")))
		return
	}
	f, err := s.cache.open(j.ID(), mf.Name)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("cache entry unreadable: %w", err))
		return
	}
	defer f.Close()
	format, _ := table.ParseFormat(m.Format)
	w.Header().Set("Content-Type", format.ContentType())
	w.Header().Set("ETag", `"`+mf.SHA256+`"`)
	w.Header().Set("X-Datasynth-Cache-Key", j.ID())
	http.ServeContent(w, r, mf.Name, m.Created, f)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
