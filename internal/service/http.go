package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"datasynth/internal/table"
)

// HTTP surface of the service:
//
//	POST /v1/jobs                       submit a schema; returns the job (id = cache key)
//	GET  /v1/jobs/{id}                  job status + timing report (?wait=30s blocks)
//	GET  /v1/jobs/{id}/tables/{table}   stream one exported table file
//	GET  /v1/healthz                    liveness
//	GET  /v1/readyz                     readiness (503 while degraded or draining)
//	GET  /v1/stats                      queue depth, cache hit rate, in-flight engines
//	GET  /v1/metrics                    Prometheus text-format telemetry
//	GET  /v1/scenarios                  list registered scenarios
//	PUT  /v1/scenarios/{name}           append an immutable new version (validation-first)
//	GET  /v1/scenarios/{name}           version list, or one version (?version=N|latest)
//	DELETE /v1/scenarios/{name}         unregister a name (cached datasets unaffected)
//	POST /v1/sweeps                     expand a scenario × parameter grid into jobs
//	GET  /v1/sweeps/{id}                aggregated per-point sweep status
//
// Submission bodies: raw DSL text (any non-JSON content type; the
// format comes from the ?format= query parameter), or a JSON object
// {"schema": "...", "format": "csv|jsonl|columnar"} — or, with a
// populated registry, {"scenario": "name@version", "params": {...}}.
// Table files
// stream verbatim from the committed cache entry — no re-encoding —
// with the manifest's SHA-256 as a strong ETag, so clients can
// revalidate a download for free.

// maxSchemaBytes bounds a submitted schema body; DSL schemas are
// kilobytes, so anything near this is a mistake or abuse.
const maxSchemaBytes = 1 << 20

// maxWait bounds the ?wait= long poll on the job-status endpoint.
const maxWait = 5 * time.Minute

// submitRequest is the JSON submission body. Exactly one of Schema
// (anonymous DSL text) or Scenario (a registered "name" /
// "name@version" ref, with optional flat parameter overrides) names
// the recipe.
type submitRequest struct {
	Schema   string            `json:"schema,omitempty"`
	Scenario string            `json:"scenario,omitempty"`
	Params   map[string]string `json:"params,omitempty"`
	Format   string            `json:"format,omitempty"`
}

// submitResponse extends the job view with the submission outcome.
type submitResponse struct {
	JobView
	Deduped bool `json:"deduped,omitempty"`
	// Scenario is the pinned "name@v<N>" a named submit resolved to —
	// informational only; the job id is still the content hash.
	Scenario string `json:"scenario,omitempty"`
}

// Handler returns the service's HTTP handler.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/readyz", s.handleReadyz)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/tables/{table}", s.handleTable)
	mux.HandleFunc("GET /v1/scenarios", s.handleScenarioList)
	mux.HandleFunc("PUT /v1/scenarios/{name}", s.handleScenarioPut)
	mux.HandleFunc("GET /v1/scenarios/{name}", s.handleScenarioGet)
	mux.HandleFunc("DELETE /v1/scenarios/{name}", s.handleScenarioDelete)
	mux.HandleFunc("POST /v1/sweeps", s.handleSweepSubmit)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweepStatus)
	return mux
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness, distinct from liveness: a daemon whose
// cache stores are failing keeps serving (healthz stays 200, jobs
// complete cache-bypass) but answers 503 here so an orchestrator can
// steer new traffic to a healthier replica.
func (s *Service) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	switch {
	case draining:
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case s.Degraded():
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"status": "degraded",
			"reason": "cache store failing; completed jobs served cache-bypass",
		})
	default:
		s.writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSchemaBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.writeErr(w, http.StatusRequestEntityTooLarge, fmt.Errorf("schema body exceeds %d bytes", maxSchemaBytes))
		} else {
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("reading schema body: %w", err))
		}
		return
	}
	src := string(body)
	scenarioRef := ""
	var params map[string]string
	formatName := r.URL.Query().Get("format")
	if isJSONContentType(r.Header.Get("Content-Type")) {
		var req submitRequest
		if err := json.Unmarshal(body, &req); err != nil {
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid JSON body: %w", err))
			return
		}
		if req.Schema != "" && req.Scenario != "" {
			s.writeErr(w, http.StatusBadRequest, errors.New(`give "schema" or "scenario", not both`))
			return
		}
		src = req.Schema
		scenarioRef = req.Scenario
		params = req.Params
		if req.Format != "" {
			formatName = req.Format
		}
	}
	if scenarioRef == "" && strings.TrimSpace(src) == "" {
		s.writeErr(w, http.StatusBadRequest, errors.New("empty schema"))
		return
	}
	if len(params) > 0 && scenarioRef == "" {
		s.writeErr(w, http.StatusBadRequest, errors.New(`"params" overrides need a "scenario" ref`))
		return
	}
	if formatName == "" {
		formatName = "csv"
	}
	format, err := table.ParseFormat(formatName)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}

	var res SubmitResult
	var resolved string
	if scenarioRef != "" {
		res, resolved, err = s.SubmitScenario(scenarioRef, params, format)
	} else {
		res, err = s.Submit(src, format)
	}
	if err != nil {
		s.writeSubmitErr(w, err)
		return
	}
	code := http.StatusAccepted
	if res.CacheHit {
		code = http.StatusOK
	}
	sr := submitResponse{JobView: res.Job.View(), Deduped: res.Deduped, Scenario: resolved}
	// cache_hit in the submit response is submission-level: true
	// whenever this request was served without a new generation —
	// from the disk cache or from an already completed identical job.
	if res.CacheHit {
		sr.CacheHit = true
	}
	s.writeJSON(w, code, sr)
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.Job(r.PathValue("id"))
	if j == nil {
		s.writeErr(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		wait, err := time.ParseDuration(waitStr)
		if err != nil {
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid wait duration: %w", err))
			return
		}
		if wait <= 0 {
			// A zero or negative wait would fall straight through the
			// select (or never fire), silently behaving like no wait at
			// all; reject it so clients learn their mistake.
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("wait must be positive, got %q", waitStr))
			return
		}
		if wait > maxWait {
			wait = maxWait
		}
		select {
		case <-j.Done():
		case <-time.After(wait):
		case <-s.drainCh:
			// Shutting down: answer with the current status so the
			// connection frees and the HTTP drain can complete.
		case <-r.Context().Done():
			return
		}
	}
	s.writeJSON(w, http.StatusOK, j.View())
}

func (s *Service) handleTable(w http.ResponseWriter, r *http.Request) {
	j := s.Job(r.PathValue("id"))
	if j == nil {
		s.writeErr(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	m := j.Manifest()
	if m == nil {
		v := j.View()
		if v.Status == StatusFailed {
			s.writeErr(w, http.StatusConflict, fmt.Errorf("job failed: %s", v.Error))
			return
		}
		s.writeErr(w, http.StatusConflict, fmt.Errorf("job is %s; tables stream once it is done", v.Status))
		return
	}
	// Only manifest-listed names resolve, so a crafted path can never
	// escape the entry directory.
	mf := m.File(r.PathValue("table"))
	if mf == nil {
		s.writeErr(w, http.StatusNotFound, fmt.Errorf("no table file %q in this dataset", r.PathValue("table")))
		return
	}
	// A degraded job's files never made it into the cache; they stream
	// straight from the job's staging directory (cache-bypass). No pin
	// is needed — the directory lives exactly as long as the job record,
	// and an open fd survives the eventual removal mid-stream.
	if dir := j.BypassDir(); dir != "" {
		f, err := s.cache.fsys.Open(filepath.Join(dir, mf.Name))
		if err != nil {
			s.writeErr(w, http.StatusNotFound, fmt.Errorf("degraded dataset no longer available (%v); resubmit the schema to regenerate it", err))
			return
		}
		defer f.Close()
		format, _ := table.ParseFormat(m.Format)
		w.Header().Set("Content-Type", format.ContentType())
		w.Header().Set("ETag", `"`+mf.SHA256+`"`)
		w.Header().Set("X-Datasynth-Cache-Key", j.ID())
		w.Header().Set("X-Datasynth-Degraded", "1")
		http.ServeContent(w, r, mf.Name, m.Created, f)
		return
	}
	// open pins the cache entry against LRU eviction for the duration
	// of the stream: an evicted-while-streaming entry is only removed
	// from disk after release (evict-after-close).
	f, release, err := s.cache.open(j.ID(), mf.Name)
	if err != nil {
		release()
		if os.IsNotExist(err) {
			// The entry was evicted by the size bound after the job
			// completed; the dataset regenerates deterministically, so
			// this is a cache miss to resubmit through, not a fault.
			s.writeErr(w, http.StatusNotFound, errors.New("dataset evicted from cache; resubmit the schema to regenerate it"))
			return
		}
		s.writeErr(w, http.StatusInternalServerError, fmt.Errorf("cache entry unreadable: %w", err))
		return
	}
	defer release()
	defer f.Close()
	format, _ := table.ParseFormat(m.Format)
	w.Header().Set("Content-Type", format.ContentType())
	w.Header().Set("ETag", `"`+mf.SHA256+`"`)
	w.Header().Set("X-Datasynth-Cache-Key", j.ID())
	http.ServeContent(w, r, mf.Name, m.Created, f)
}

// isJSONContentType reports whether a Content-Type header names the
// JSON media type proper. Parsing (rather than a prefix match) keeps
// parameterized forms like "application/json; charset=utf-8" routing
// as JSON while look-alikes like "application/jsonlines" stay raw DSL.
func isJSONContentType(ct string) bool {
	if ct == "" {
		return false
	}
	mt, _, err := mime.ParseMediaType(ct)
	return err == nil && mt == "application/json"
}

// writeJSON encodes a response body. The status line is already on the
// wire when encoding starts, so a mid-stream failure can't be turned
// into an error status — but it must not pass silently either
// (truncated JSON under a 200 status looks like a server bug): it is
// counted (response_write_failures_total) and logged.
func (s *Service) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.writeFailures.Add(1)
		s.logf("response write failed: %v", err)
	}
}

func (s *Service) writeErr(w http.ResponseWriter, code int, err error) {
	s.writeJSON(w, code, map[string]string{"error": err.Error()})
}
