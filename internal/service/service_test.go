package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"datasynth/internal/core"
	"datasynth/internal/dsl"
	"datasynth/internal/table"
)

// testDSL is a small two-type schema: fast to generate, but with a
// correlated edge so the full generate→structure→match→export pipeline
// runs. The seed is substituted per test via fmt.Sprintf.
const testDSL = `
graph svc {
  seed = %d
  node Person {
    count = 600
    property country : string = categorical(dict="countries")
    property creationDate : date = uniform-date(from="2015-01-01", to="2020-01-01")
  }
  node Message {
    property topic : string = categorical(dict="topics")
  }
  edge knows : Person *-* Person {
    structure = lfr(avgDegree=6, maxDegree=20)
    correlate country homophily 0.7
  }
  edge creates : Person 1-* Message {
    structure = powerlaw-out(min=1, max=4, gamma=2.0)
  }
}
`

func testSchema(seed int) string { return fmt.Sprintf(testDSL, seed) }

func newTestService(t testing.TB, cfg Config) *Service {
	t.Helper()
	if cfg.CacheDir == "" {
		cfg.CacheDir = t.TempDir()
	}
	if cfg.EngineWorkers == 0 {
		cfg.EngineWorkers = 2
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		svc.Drain(ctx)
	})
	return svc
}

func waitDone(t testing.TB, j *Job) JobView {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s did not finish", j.ID())
	}
	v := j.View()
	if v.Status != StatusDone {
		t.Fatalf("job %s finished %s: %s", j.ID(), v.Status, v.Error)
	}
	return v
}

func sha256Hex(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// directExport reproduces exactly what `datasynth -schema ... -format f`
// does: parse, generate, export. Returns file name -> SHA-256.
func directExport(t testing.TB, src string, format table.Format) map[string]string {
	t.Helper()
	s, err := dsl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.New(s)
	eng.ExportFormat = format
	d, err := eng.Generate()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := eng.Export(d, dir); err != nil {
		t.Fatal(err)
	}
	hashes := map[string]string{}
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		raw, err := os.ReadFile(filepath.Join(dir, de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		hashes[de.Name()] = sha256Hex(raw)
	}
	return hashes
}

// TestServiceEndToEndByteIdentical is the acceptance-criteria test: a
// cached GET /v1/jobs/{id}/tables/{name} response must be
// byte-identical (SHA-256) to a fresh direct `datasynth` export of the
// same schema + seed + format — for every table, in every format, both
// on the cold (freshly generated) and warm (cache hit) path.
func TestServiceEndToEndByteIdentical(t *testing.T) {
	svc := newTestService(t, Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	src := testSchema(42)
	for _, format := range []table.Format{table.FormatCSV, table.FormatJSONL, table.FormatColumnar} {
		want := directExport(t, src, format)

		for _, pass := range []string{"cold", "warm"} {
			wantHit := pass == "warm"
			resp, err := http.Post(ts.URL+"/v1/jobs?format="+format.String(), "text/plain", strings.NewReader(src))
			if err != nil {
				t.Fatal(err)
			}
			var sub submitResponse
			if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if pass == "cold" && resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
				t.Fatalf("%s %s: submit status %d", format, pass, resp.StatusCode)
			}

			// Long-poll until done.
			resp, err = http.Get(ts.URL + "/v1/jobs/" + sub.ID + "?wait=60s")
			if err != nil {
				t.Fatal(err)
			}
			var view JobView
			if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if view.Status != StatusDone {
				t.Fatalf("%s %s: job %s: %s", format, pass, view.Status, view.Error)
			}
			if wantHit && !view.CacheHit && !sub.Deduped {
				t.Errorf("%s warm pass was not a cache hit", format)
			}
			if len(view.Files) != len(want) {
				t.Fatalf("%s: job lists %d files, direct export wrote %d", format, len(view.Files), len(want))
			}

			for _, f := range view.Files {
				resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/tables/" + f.Name)
				if err != nil {
					t.Fatal(err)
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Fatal(err)
				}
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("%s %s: GET table %s: status %d", format, pass, f.Name, resp.StatusCode)
				}
				got := sha256Hex(body)
				if got != want[f.Name] {
					t.Errorf("%s %s: table %s: served sha256 %s, direct datasynth export %s",
						format, pass, f.Name, got, want[f.Name])
				}
				if got != f.SHA256 {
					t.Errorf("%s: table %s: served sha256 %s, manifest says %s", format, f.Name, got, f.SHA256)
				}
				if etag := resp.Header.Get("ETag"); etag != `"`+f.SHA256+`"` {
					t.Errorf("%s: table %s: ETag %s", format, f.Name, etag)
				}
				if ct := resp.Header.Get("Content-Type"); ct != format.ContentType() {
					t.Errorf("%s: table %s: Content-Type %s", format, f.Name, ct)
				}
			}
		}
	}
	// Three formats, each generated exactly once: the warm passes must
	// all have been served from the cache.
	if g := svc.Generations(); g != 3 {
		t.Errorf("%d generations for 3 formats × 2 passes, want 3", g)
	}
}

// TestSingleflightStorm: N concurrent identical submissions cost
// exactly one Engine.Generate, and every caller downloads byte-
// identical table bytes.
func TestSingleflightStorm(t *testing.T) {
	svc := newTestService(t, Config{JobWorkers: 4})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	const stormN = 16
	src := testSchema(7)

	type result struct {
		sub  submitResponse
		body []byte
		err  error
	}
	results := make([]result, stormN)
	var wg sync.WaitGroup
	for i := 0; i < stormN; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := &results[i]
			resp, err := http.Post(ts.URL+"/v1/jobs", "text/plain", strings.NewReader(src))
			if err != nil {
				r.err = err
				return
			}
			err = json.NewDecoder(resp.Body).Decode(&r.sub)
			resp.Body.Close()
			if err != nil {
				r.err = err
				return
			}
			// Wait for completion, then download the same table.
			resp, err = http.Get(ts.URL + "/v1/jobs/" + r.sub.ID + "?wait=60s")
			if err != nil {
				r.err = err
				return
			}
			var view JobView
			if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
				r.err = err
				resp.Body.Close()
				return
			}
			resp.Body.Close()
			if view.Status != StatusDone {
				r.err = fmt.Errorf("job %s: %s", view.Status, view.Error)
				return
			}
			resp, err = http.Get(ts.URL + "/v1/jobs/" + r.sub.ID + "/tables/edges_knows")
			if err != nil {
				r.err = err
				return
			}
			r.body, r.err = io.ReadAll(resp.Body)
			resp.Body.Close()
		}(i)
	}
	wg.Wait()

	deduped := 0
	for i := range results {
		if results[i].err != nil {
			t.Fatalf("storm caller %d: %v", i, results[i].err)
		}
		if results[i].sub.ID != results[0].sub.ID {
			t.Fatalf("storm produced distinct job ids %s and %s", results[0].sub.ID, results[i].sub.ID)
		}
		if !bytes.Equal(results[i].body, results[0].body) {
			t.Fatalf("storm caller %d downloaded different bytes", i)
		}
		if results[i].sub.Deduped {
			deduped++
		}
	}
	if g := svc.Generations(); g != 1 {
		t.Errorf("storm of %d identical submits ran %d generations, want exactly 1", stormN, g)
	}
	if deduped != stormN-1 {
		t.Errorf("%d of %d submissions deduped, want %d", deduped, stormN, stormN-1)
	}
	if len(results[0].body) == 0 {
		t.Fatal("downloaded table is empty")
	}
}

// TestCorruptedCacheEntryEvicted: a cache entry whose file bytes no
// longer match the manifest checksum is evicted on lookup and the
// dataset regenerated — never served corrupt.
func TestCorruptedCacheEntryEvicted(t *testing.T) {
	cacheDir := t.TempDir()
	svc := newTestService(t, Config{CacheDir: cacheDir})

	src := testSchema(11)
	res, err := svc.Submit(src, table.FormatCSV)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, res.Job)
	key := res.Job.ID()

	// Corrupt one table file in place: flip a byte, same size, so only
	// the checksum can catch it.
	victim := filepath.Join(cacheDir, key, res.Job.Manifest().Files[0].Name)
	raw, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(victim, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh service (no in-memory validation memo, no live job)
	// must detect the corruption at lookup, evict, and regenerate.
	svc2 := newTestService(t, Config{CacheDir: cacheDir})
	res2, err := svc2.Submit(src, table.FormatCSV)
	if err != nil {
		t.Fatal(err)
	}
	if res2.CacheHit {
		t.Fatal("corrupted entry served as a cache hit")
	}
	waitDone(t, res2.Job)
	if g := svc2.Generations(); g != 1 {
		t.Errorf("regeneration after eviction ran %d generations, want 1", g)
	}
	if ev := svc2.Stats().Cache.Evictions; ev != 1 {
		t.Errorf("stats report %d evictions, want 1", ev)
	}
	// The regenerated bytes must match the manifest again.
	fixed, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	if sha256Hex(fixed) != res2.Job.Manifest().Files[0].SHA256 {
		t.Error("regenerated file does not match its manifest checksum")
	}
}

// TestCacheHitAcrossRestart: a second service over the same cache dir
// serves the dataset without generating at all.
func TestCacheHitAcrossRestart(t *testing.T) {
	cacheDir := t.TempDir()
	svc := newTestService(t, Config{CacheDir: cacheDir})
	src := testSchema(13)
	res, err := svc.Submit(src, table.FormatJSONL)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, res.Job)

	svc2 := newTestService(t, Config{CacheDir: cacheDir})
	// A surface-syntax variant of the same schema must hit too: the
	// cache key is the canonical hash, not the source text.
	variant := strings.Replace(src, "count = 600", "count    = 600", 1)
	res2, err := svc2.Submit(variant, table.FormatJSONL)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.CacheHit {
		t.Fatal("restarted service missed the disk cache")
	}
	if res2.Job.ID() != res.Job.ID() {
		t.Fatalf("surface variant keyed %s, original %s", res2.Job.ID(), res.Job.ID())
	}
	waitDone(t, res2.Job)
	if g := svc2.Generations(); g != 0 {
		t.Errorf("cache hit ran %d generations", g)
	}
}

// TestAdmissionLimits: declared counts beyond MaxNodes/MaxEdges are
// rejected at submit with a LimitError (HTTP 422), before any work.
func TestAdmissionLimits(t *testing.T) {
	svc := newTestService(t, Config{MaxNodes: 100})
	_, err := svc.Submit(testSchema(1), table.FormatCSV)
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("600-node schema against a 100-node limit: %v", err)
	}
	if g := svc.Generations(); g != 0 {
		t.Errorf("rejected schema still generated")
	}

	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/jobs", "text/plain", strings.NewReader(testSchema(1)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("limit violation returned HTTP %d, want 422", resp.StatusCode)
	}
}

// TestAdmissionInferredLimits: the admission check also catches sizes
// the schema never declares. The test schema declares only 600 Persons;
// the Message count (~1.5 per Person via powerlaw-out) and both edge
// counts (LFR's degree model, the 1→* out-degrees) are inferred from
// generator parameters — and still rejected at submit with 422, before
// any generation.
func TestAdmissionInferredLimits(t *testing.T) {
	var le *LimitError
	// 600 declared nodes pass a 700-node limit on declared counts alone;
	// the inferred Messages push the estimate past it.
	svc := newTestService(t, Config{MaxNodes: 700})
	if _, err := svc.Submit(testSchema(11), table.FormatCSV); !errors.As(err, &le) {
		t.Fatalf("schema with ~1500 implied nodes against a 700-node limit: %v", err)
	}
	if g := svc.Generations(); g != 0 {
		t.Errorf("rejected schema still generated (%d)", g)
	}

	// No edge count is declared anywhere in the schema; the LFR estimate
	// (600 nodes x avgDegree 6 / 2 = 1800) must trip a 1000-edge limit.
	svc = newTestService(t, Config{MaxEdges: 1000})
	if _, err := svc.Submit(testSchema(12), table.FormatCSV); !errors.As(err, &le) {
		t.Fatalf("schema with ~1800 implied edges against a 1000-edge limit: %v", err)
	}
	if g := svc.Generations(); g != 0 {
		t.Errorf("rejected schema still generated (%d)", g)
	}

	// Sanity: the same schema is admitted under generous limits, so the
	// estimator is not just rejecting everything.
	svc = newTestService(t, Config{MaxNodes: 100000, MaxEdges: 100000})
	res, err := svc.Submit(testSchema(13), table.FormatCSV)
	if err != nil {
		t.Fatalf("generous limits rejected the schema: %v", err)
	}
	waitDone(t, res.Job)
}

// TestJobTimeout: a job that cannot finish within JobTimeout fails and
// releases its worker; it is not cached.
func TestJobTimeout(t *testing.T) {
	svc := newTestService(t, Config{JobTimeout: time.Nanosecond})
	res, err := svc.Submit(testSchema(3), table.FormatCSV)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-res.Job.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("timed-out job never finished")
	}
	v := res.Job.View()
	if v.Status != StatusFailed {
		t.Fatalf("job with 1ns timeout finished %s", v.Status)
	}
	if !strings.Contains(v.Error, "deadline") && !strings.Contains(v.Error, "cancel") {
		t.Errorf("failure is not a cancellation: %s", v.Error)
	}
	if n := svc.cache.entries(); n != 0 {
		t.Errorf("failed job left %d cache entries", n)
	}
}

// TestDrainRejectsSubmissions: after Drain starts, submissions fail
// with ErrDraining; queued work still completes.
func TestDrainRejectsSubmissions(t *testing.T) {
	svc := newTestService(t, Config{})
	res, err := svc.Submit(testSchema(5), table.FormatCSV)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	waitDone(t, res.Job) // accepted work finished despite the drain
	if _, err := svc.Submit(testSchema(6), table.FormatCSV); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain = %v, want ErrDraining", err)
	}
}

// TestDrainWakesLongPolls: a ?wait long-poll parked on an unfinished
// job must return as soon as Drain starts (with the job's current
// status), so an HTTP shutdown is never stuck behind pollers for the
// whole drain budget.
func TestDrainWakesLongPolls(t *testing.T) {
	svc := newTestService(t, Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// A job that never completes: registered but never enqueued, so
	// only the drain signal can wake its pollers.
	s, err := dsl.Parse(testSchema(91))
	if err != nil {
		t.Fatal(err)
	}
	j := newJob(CacheKey(s, table.FormatCSV), s, table.FormatCSV)
	svc.mu.Lock()
	svc.jobs[j.ID()] = j
	svc.mu.Unlock()

	type pollResult struct {
		view    JobView
		elapsed time.Duration
		err     error
	}
	res := make(chan pollResult, 1)
	go func() {
		start := time.Now()
		resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID() + "?wait=60s")
		if err != nil {
			res <- pollResult{err: err}
			return
		}
		var v JobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		res <- pollResult{view: v, elapsed: time.Since(start), err: err}
	}()

	time.Sleep(100 * time.Millisecond) // let the poll park
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-res:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.view.Status != StatusQueued {
			t.Errorf("woken poll reported %s, want queued", r.view.Status)
		}
		if r.elapsed > 10*time.Second {
			t.Errorf("poll held %v past the drain signal", r.elapsed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("long-poll still parked 10s after Drain — shutdown would hang behind it")
	}
}

// TestHTTPErrors covers the non-happy-path status codes.
func TestHTTPErrors(t *testing.T) {
	svc := newTestService(t, Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/v1/jobs/nonexistent"); code != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", code)
	}
	if code := get("/v1/jobs/nonexistent/tables/nodes_Person.csv"); code != http.StatusNotFound {
		t.Errorf("table of unknown job: %d, want 404", code)
	}

	post := func(body, ct, query string) int {
		resp, err := http.Post(ts.URL+"/v1/jobs"+query, ct, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("not a schema", "text/plain", ""); code != http.StatusBadRequest {
		t.Errorf("unparseable schema: %d, want 400", code)
	}
	if code := post("", "text/plain", ""); code != http.StatusBadRequest {
		t.Errorf("empty schema: %d, want 400", code)
	}
	if code := post(testSchema(1), "text/plain", "?format=parquet"); code != http.StatusBadRequest {
		t.Errorf("unknown format: %d, want 400", code)
	}
	if code := post(`{"schema": 42}`, "application/json", ""); code != http.StatusBadRequest {
		t.Errorf("bad JSON body: %d, want 400", code)
	}

	// A completed job must not serve paths outside its manifest.
	res, err := svc.Submit(testSchema(21), table.FormatCSV)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, res.Job)
	if code := get("/v1/jobs/" + res.Job.ID() + "/tables/manifest.json"); code != http.StatusNotFound {
		t.Errorf("manifest served as a table: %d, want 404", code)
	}
	if code := get("/v1/jobs/" + res.Job.ID() + "/tables/..%2Fmanifest.json"); code != http.StatusNotFound {
		t.Errorf("traversal name: %d, want 404", code)
	}

	// Healthz and stats respond.
	if code := get("/v1/healthz"); code != http.StatusOK {
		t.Errorf("healthz: %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Generations < 1 || st.Cache.Entries < 1 {
		t.Errorf("stats implausible after a completed job: %+v", st)
	}
}

// TestJobMapEviction: the in-memory job map is bounded — once MaxJobs
// is reached, the oldest finished jobs are evicted on the next submit,
// /v1/stats reports the eviction, and resubmitting an evicted schema is
// served from the disk cache (no regeneration).
func TestJobMapEviction(t *testing.T) {
	svc := newTestService(t, Config{MaxJobs: 2})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	first, err := svc.Submit(testSchema(41), table.FormatCSV)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, first.Job)
	for _, seed := range []int{42, 43} {
		res, err := svc.Submit(testSchema(seed), table.FormatCSV)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, res.Job)
	}

	// The third submit pushed the map past MaxJobs=2; the oldest
	// finished job (seed 41) must be gone.
	if svc.Job(first.Job.ID()) != nil {
		t.Errorf("oldest finished job still in the map after eviction")
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Jobs.Evicted < 1 {
		t.Errorf("stats report %d evicted jobs, want >= 1", st.Jobs.Evicted)
	}
	if total := st.Jobs.Queued + st.Jobs.Running + st.Jobs.Done + st.Jobs.Failed; total > 2 {
		t.Errorf("job map holds %d jobs, MaxJobs is 2", total)
	}

	// The evicted job's dataset persists in the disk cache: the same
	// schema comes back as a hit without a new generation.
	gens := svc.Generations()
	again, err := svc.Submit(testSchema(41), table.FormatCSV)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Errorf("resubmit of evicted schema was not a cache hit")
	}
	if g := svc.Generations(); g != gens {
		t.Errorf("resubmit of evicted schema regenerated (%d -> %d)", gens, g)
	}
}

// TestJobRetention: finished jobs older than JobRetention are evicted
// on the next submission even when the map is far below MaxJobs.
func TestJobRetention(t *testing.T) {
	svc := newTestService(t, Config{JobRetention: time.Nanosecond})
	first, err := svc.Submit(testSchema(44), table.FormatCSV)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, first.Job)
	time.Sleep(10 * time.Millisecond) // age the finished job past retention
	res, err := svc.Submit(testSchema(45), table.FormatCSV)
	if err != nil {
		t.Fatal(err)
	}
	if svc.Job(first.Job.ID()) != nil {
		t.Errorf("finished job outlived JobRetention")
	}
	if st := svc.Stats(); st.Jobs.Evicted < 1 {
		t.Errorf("stats report %d evicted jobs, want >= 1", st.Jobs.Evicted)
	}
	waitDone(t, res.Job)
}

// TestJSONSubmitBody: the JSON submission shape works end to end.
func TestJSONSubmitBody(t *testing.T) {
	svc := newTestService(t, Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	body, _ := json.Marshal(submitRequest{Schema: testSchema(31), Format: "columnar"})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sub.Format != "columnar" {
		t.Errorf("JSON-declared format lost: %s", sub.Format)
	}
	j := svc.Job(sub.ID)
	if j == nil {
		t.Fatal("submitted job not registered")
	}
	waitDone(t, j)
}
