package service

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"datasynth/internal/table"
)

// probeEntryBytes generates one dataset in a throwaway unbounded
// service and reports its cache charge — the per-entry size the
// bounded-cache tests calibrate against (entries of neighbouring seeds
// have near-identical sizes).
func probeEntryBytes(t *testing.T, seed int) int64 {
	t.Helper()
	svc := newTestService(t, Config{})
	res, err := svc.Submit(testSchema(seed), table.FormatCSV)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, res.Job)
	_, bytes := svc.cache.stats()
	if bytes <= 0 {
		t.Fatalf("probe entry has %d bytes", bytes)
	}
	return bytes
}

func submitAndWait(t *testing.T, svc *Service, seed int) *Job {
	t.Helper()
	res, err := svc.Submit(testSchema(seed), table.FormatCSV)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, res.Job)
	return res.Job
}

// entryDirs counts committed entry directories on disk.
func entryDirs(t *testing.T, root string) int {
	t.Helper()
	des, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, de := range des {
		if de.IsDir() && !strings.HasPrefix(de.Name(), ".") {
			n++
		}
	}
	return n
}

// TestCacheBoundUnderSubmitMix: with CacheMaxBytes below the total
// dataset size, a sustained mix of distinct submissions must keep the
// cache under the bound (LRU evicting the cold entries), and an
// evicted-then-resubmitted schema must regenerate and download cleanly
// — never a 5xx.
func TestCacheBoundUnderSubmitMix(t *testing.T) {
	size := probeEntryBytes(t, 1)
	bound := size + size/2 // two entries never fit, one always does

	dir := t.TempDir()
	svc := newTestService(t, Config{CacheDir: dir, CacheMaxBytes: bound})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	firstKey := ""
	for seed := 1; seed <= 5; seed++ {
		j := submitAndWait(t, svc, seed)
		if seed == 1 {
			firstKey = j.ID()
		}
		entries, bytes := svc.cache.stats()
		if bytes > bound {
			t.Fatalf("after seed %d: cache holds %d bytes, bound %d", seed, bytes, bound)
		}
		if got := entryDirs(t, dir); got != entries {
			t.Fatalf("after seed %d: %d entry dirs on disk, index says %d", seed, got, entries)
		}
	}
	st := svc.Stats()
	if st.Cache.LRUEvictions < 4 {
		t.Fatalf("expected >= 4 LRU evictions, got %d", st.Cache.LRUEvictions)
	}
	if st.Cache.Evictions != 0 {
		t.Fatalf("LRU eviction leaked into the integrity-eviction counter: %d", st.Cache.Evictions)
	}

	// Seed 1 was evicted long ago: its table download must answer 404
	// (a cache miss to resubmit through), never a 5xx.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + firstKey + "/tables/nodes_Person.csv")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted entry download: status %d, want 404", resp.StatusCode)
	}

	// Resubmitting regenerates it (determinism makes the bytes
	// identical), and the download must succeed end to end.
	j := submitAndWait(t, svc, 1)
	if j.ID() != firstKey {
		t.Fatalf("resubmit produced key %s, want %s", j.ID(), firstKey)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs/" + firstKey + "/tables/nodes_Person.csv")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evicted-then-regenerated download: status %d, want 200", resp.StatusCode)
	}
	want := directExport(t, testSchema(1), table.FormatCSV)["nodes_Person.csv"]
	if got := sha256Hex(body); got != want {
		t.Fatalf("regenerated table hash %s, want %s", got, want)
	}
}

// TestEvictionDuringStream: an entry pinned by an open reader survives
// LRU eviction until the reader releases it — the directory stays
// readable mid-stream and is removed only after the last release
// (evict-after-close). A store of the same key before that release
// supersedes the deferred removal.
func TestEvictionDuringStream(t *testing.T) {
	size := probeEntryBytes(t, 1)
	bound := size + size/2

	dir := t.TempDir()
	svc := newTestService(t, Config{CacheDir: dir, CacheMaxBytes: bound})

	j1 := submitAndWait(t, svc, 1)
	key1 := j1.ID()

	// Pin entry 1 as a streaming download would.
	f, release, err := svc.cache.open(key1, j1.Manifest().Files[0].Name)
	if err != nil {
		t.Fatal(err)
	}

	// Entry 2 forces entry 1 out of the index...
	submitAndWait(t, svc, 2)
	svc.cache.mu.Lock()
	_, indexed := svc.cache.index[key1]
	svc.cache.mu.Unlock()
	if indexed {
		t.Fatal("entry 1 still in the index after eviction")
	}
	if svc.cache.lruEvictions() != 1 {
		t.Fatalf("lru evictions = %d, want 1", svc.cache.lruEvictions())
	}
	// ...but its directory must survive while the reader is open.
	if _, err := os.Stat(filepath.Join(dir, key1)); err != nil {
		t.Fatalf("evicted entry removed mid-stream: %v", err)
	}
	body, err := io.ReadAll(f)
	if err != nil {
		t.Fatalf("reading evicted-while-open entry: %v", err)
	}
	want := directExport(t, testSchema(1), table.FormatCSV)[j1.Manifest().Files[0].Name]
	if got := sha256Hex(body); got != want {
		t.Fatalf("mid-eviction stream hash %s, want %s", got, want)
	}
	f.Close()
	release()
	// Last release performs the deferred removal.
	if _, err := os.Stat(filepath.Join(dir, key1)); !os.IsNotExist(err) {
		t.Fatalf("evicted entry not removed after release: %v", err)
	}

	// Same dance, but the key is regenerated before the reader lets go:
	// the fresh entry must survive the stale release.
	j1 = submitAndWait(t, svc, 1) // evicts entry 2, regenerates entry 1
	f2, release2, err := svc.cache.open(key1, j1.Manifest().Files[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	submitAndWait(t, svc, 3) // evicts entry 1 while pinned
	submitAndWait(t, svc, 1) // regenerates entry 1: supersedes the deferred removal
	f2.Close()
	release2()
	if _, err := os.Stat(filepath.Join(dir, key1)); err != nil {
		t.Fatalf("stale release removed the regenerated entry: %v", err)
	}
	res, err := svc.Submit(testSchema(1), table.FormatCSV)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Fatal("regenerated entry not served as a cache hit")
	}
}

// TestCacheIndexRebuildAcrossRestart: a fresh service adopts committed
// entries into its LRU index (count and bytes) and enforces a smaller
// bound at startup by evicting the oldest entries.
func TestCacheIndexRebuildAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	svc := newTestService(t, Config{CacheDir: dir})
	submitAndWait(t, svc, 1)
	submitAndWait(t, svc, 2)
	entries, bytes := svc.cache.stats()
	if entries != 2 || bytes <= 0 {
		t.Fatalf("seed service: %d entries, %d bytes", entries, bytes)
	}

	// Restart with the same bound: both entries adopted.
	svc2 := newTestService(t, Config{CacheDir: dir})
	e2, b2 := svc2.cache.stats()
	if e2 != entries || b2 != bytes {
		t.Fatalf("rebuilt index has %d entries / %d bytes, want %d / %d", e2, b2, entries, bytes)
	}

	// Restart with a bound below the total: the excess is evicted
	// immediately, keeping the newest-created entry.
	svc3 := newTestService(t, Config{CacheDir: dir, CacheMaxBytes: bytes - 1})
	e3, b3 := svc3.cache.stats()
	if e3 != 1 {
		t.Fatalf("restart under bound kept %d entries, want 1", e3)
	}
	if b3 > bytes-1 {
		t.Fatalf("restart under bound holds %d bytes, bound %d", b3, bytes-1)
	}
	if got := entryDirs(t, dir); got != 1 {
		t.Fatalf("%d entry dirs on disk after startup eviction, want 1", got)
	}
}

// failingWriter errors on every body write, standing in for a client
// that vanished mid-response.
type failingWriter struct{ header http.Header }

func (f *failingWriter) Header() http.Header {
	if f.header == nil {
		f.header = http.Header{}
	}
	return f.header
}
func (f *failingWriter) WriteHeader(int)           {}
func (f *failingWriter) Write([]byte) (int, error) { return 0, errors.New("peer vanished") }

// TestWriteJSONFailureCounted: a mid-stream encode failure must not
// pass silently — it increments the write-failure counter (it used to
// be dropped on the floor, leaving truncated JSON under a 200 with no
// trace).
func TestWriteJSONFailureCounted(t *testing.T) {
	svc := newTestService(t, Config{})
	svc.writeJSON(&failingWriter{}, http.StatusOK, map[string]string{"status": "ok"})
	if got := svc.writeFailures.Load(); got != 1 {
		t.Fatalf("write failures = %d, want 1", got)
	}
}

// TestWaitParamValidation: non-positive ?wait= durations are client
// errors — they used to slip through the clamp and behave like no wait
// at all.
func TestWaitParamValidation(t *testing.T) {
	svc := newTestService(t, Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	j := submitAndWait(t, svc, 1)

	for _, wait := range []string{"0s", "-5s", "-1ns"} {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID() + "?wait=" + wait)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("wait=%s: status %d, want 400", wait, resp.StatusCode)
		}
	}
	// A positive wait still long-polls fine.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID() + "?wait=1s")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wait=1s: status %d, want 200", resp.StatusCode)
	}
}

// TestSubmitContentTypeRouting: only the application/json media type
// proper routes through the JSON submission body. Parameterized JSON
// still parses as JSON; look-alikes such as application/jsonlines are
// raw DSL (a prefix match used to mis-route them).
func TestSubmitContentTypeRouting(t *testing.T) {
	svc := newTestService(t, Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	src := testSchema(9)

	post := func(ct, body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/jobs?format=csv", ct, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	expect := func(resp *http.Response, want ...int) {
		t.Helper()
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		for _, w := range want {
			if resp.StatusCode == w {
				return
			}
		}
		t.Fatalf("status %d, want one of %v", resp.StatusCode, want)
	}

	// A look-alike media type carries raw DSL; routing it as JSON
	// would 400 on "invalid JSON body".
	expect(post("application/jsonlines", src), http.StatusAccepted, http.StatusOK)
	// Parameterized JSON is still JSON.
	jsonBody, _ := json.Marshal(submitRequest{Schema: src, Format: "csv"})
	expect(post("application/json; charset=utf-8", string(jsonBody)), http.StatusAccepted, http.StatusOK)
	// Plain JSON media type with a non-JSON body stays an error.
	expect(post("application/json", src), http.StatusBadRequest)
}

// TestStatsServedFromIndex: /v1/stats reports entry count and bytes
// without touching the directory — remove the directory out from under
// the service and the index still answers (the old implementation
// re-scanned the root on every call).
func TestStatsServedFromIndex(t *testing.T) {
	dir := t.TempDir()
	svc := newTestService(t, Config{CacheDir: dir})
	submitAndWait(t, svc, 1)
	entries, bytes := svc.cache.stats()
	if entries != 1 || bytes <= 0 {
		t.Fatalf("index: %d entries, %d bytes", entries, bytes)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.Cache.Entries != entries || st.Cache.Bytes != bytes {
		t.Fatalf("stats after dir removal: %d entries / %d bytes, want %d / %d",
			st.Cache.Entries, st.Cache.Bytes, entries, bytes)
	}
}
