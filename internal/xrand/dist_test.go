package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDiscreteValidation(t *testing.T) {
	cases := []struct {
		name    string
		weights []float64
		wantErr bool
	}{
		{"empty", nil, true},
		{"all zero", []float64{0, 0}, true},
		{"negative", []float64{1, -1}, true},
		{"nan", []float64{1, math.NaN()}, true},
		{"inf", []float64{1, math.Inf(1)}, true},
		{"ok", []float64{1, 2, 3}, false},
		{"single", []float64{5}, false},
		{"with zeros", []float64{0, 1, 0}, false},
	}
	for _, c := range cases {
		_, err := NewDiscrete(c.weights)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: err = %v, wantErr = %v", c.name, err, c.wantErr)
		}
	}
}

func TestDiscreteProbs(t *testing.T) {
	d := MustDiscrete([]float64{1, 2, 1})
	want := []float64{0.25, 0.5, 0.25}
	for k, w := range want {
		if math.Abs(d.Prob(k)-w) > 1e-12 {
			t.Errorf("Prob(%d) = %v, want %v", k, d.Prob(k), w)
		}
	}
}

func TestDiscreteSamplingFrequencies(t *testing.T) {
	d := MustDiscrete([]float64{1, 2, 7})
	s := NewStream(100)
	counts := make([]int, 3)
	n := 100000
	for i := 0; i < n; i++ {
		counts[d.Sample(s, int64(i))]++
	}
	for k := 0; k < 3; k++ {
		got := float64(counts[k]) / float64(n)
		if math.Abs(got-d.Prob(k)) > 0.01 {
			t.Errorf("category %d frequency %v, want %v", k, got, d.Prob(k))
		}
	}
}

func TestDiscreteZeroWeightNeverSampled(t *testing.T) {
	d := MustDiscrete([]float64{1, 0, 1})
	s := NewStream(4)
	for i := 0; i < 10000; i++ {
		if d.Sample(s, int64(i)) == 1 {
			t.Fatal("zero-weight category was sampled")
		}
	}
}

func TestDiscreteSampleUBoundaries(t *testing.T) {
	d := MustDiscrete([]float64{1, 1})
	if d.SampleU(0) != 0 {
		t.Errorf("SampleU(0) = %d, want 0", d.SampleU(0))
	}
	if d.SampleU(0.999999) != 1 {
		t.Errorf("SampleU(~1) = %d, want 1", d.SampleU(0.999999))
	}
}

func TestZipfShape(t *testing.T) {
	z, err := NewZipf(100, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// P(0)/P(1) must be 2 for theta = 1.
	if r := z.Prob(0) / z.Prob(1); math.Abs(r-2) > 1e-9 {
		t.Errorf("zipf ratio P(0)/P(1) = %v, want 2", r)
	}
	// Monotone decreasing.
	for k := 1; k < z.N(); k++ {
		if z.Prob(k) > z.Prob(k-1) {
			t.Fatalf("zipf not monotone at %d", k)
		}
	}
}

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Error("NewZipf(0,·) should fail")
	}
	if _, err := NewZipf(10, 0); err == nil {
		t.Error("NewZipf(·,0) should fail")
	}
	if _, err := NewZipf(10, -1); err == nil {
		t.Error("NewZipf(·,-1) should fail")
	}
}

func TestGeometricPMFSums(t *testing.T) {
	g, err := NewGeometric(0.4)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for k := 0; k < 200; k++ {
		sum += g.PMF(k)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("geometric PMF sums to %v, want 1", sum)
	}
	if g.PMF(-1) != 0 {
		t.Error("PMF(-1) should be 0")
	}
}

func TestGeometricSampleMean(t *testing.T) {
	g, _ := NewGeometric(0.4)
	s := NewStream(8)
	sum := 0.0
	n := 100000
	for i := 0; i < n; i++ {
		sum += float64(g.Sample(s, int64(i)))
	}
	mean := sum / float64(n)
	want := (1 - 0.4) / 0.4 // E[geom(p)] on {0,1,…} = (1-p)/p
	if math.Abs(mean-want) > 0.05 {
		t.Errorf("geometric mean = %v, want %v", mean, want)
	}
}

func TestGeometricEdgeCases(t *testing.T) {
	if _, err := NewGeometric(0); err == nil {
		t.Error("p=0 should fail")
	}
	if _, err := NewGeometric(1.5); err == nil {
		t.Error("p>1 should fail")
	}
	g, err := NewGeometric(1)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStream(1)
	for i := 0; i < 100; i++ {
		if g.Sample(s, int64(i)) != 0 {
			t.Fatal("geometric(1) must always sample 0")
		}
	}
}

func TestPowerLawIntBoundsAndMean(t *testing.T) {
	p, err := NewPowerLawInt(5, 50, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStream(23)
	sum := 0.0
	n := 50000
	for i := 0; i < n; i++ {
		v := p.Sample(s, int64(i))
		if v < 5 || v > 50 {
			t.Fatalf("power law sample %d out of [5,50]", v)
		}
		sum += float64(v)
	}
	empirical := sum / float64(n)
	if math.Abs(empirical-p.Mean()) > 0.15 {
		t.Errorf("power law empirical mean %v vs analytic %v", empirical, p.Mean())
	}
}

func TestPowerLawIntValidation(t *testing.T) {
	if _, err := NewPowerLawInt(0, 10, 2); err == nil {
		t.Error("min=0 should fail")
	}
	if _, err := NewPowerLawInt(10, 5, 2); err == nil {
		t.Error("max<min should fail")
	}
	if _, err := NewPowerLawInt(1, 10, 0); err == nil {
		t.Error("gamma=0 should fail")
	}
}

func TestGroupSizesExactSum(t *testing.T) {
	for _, tc := range []struct {
		n int64
		k int
	}{{100, 4}, {1000, 16}, {999983, 64}, {10, 10}, {17, 3}} {
		sizes, err := GroupSizes(tc.n, tc.k, 0.4)
		if err != nil {
			t.Fatalf("GroupSizes(%d,%d): %v", tc.n, tc.k, err)
		}
		var sum int64
		for i, s := range sizes {
			if s <= 0 {
				t.Fatalf("GroupSizes(%d,%d): group %d has size %d", tc.n, tc.k, i, s)
			}
			sum += s
		}
		if sum != tc.n {
			t.Fatalf("GroupSizes(%d,%d) sums to %d", tc.n, tc.k, sum)
		}
	}
}

func TestGroupSizesShape(t *testing.T) {
	// With geo(0.4), early groups should be larger, and the tail should
	// flatten at the 1/k floor.
	sizes, err := GroupSizes(100000, 16, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if sizes[0] <= sizes[1] || sizes[1] <= sizes[2] {
		t.Errorf("head of group sizes not decreasing: %v", sizes[:4])
	}
	// Tail groups hit the 1/k floor so they should be nearly equal.
	last, prev := sizes[15], sizes[14]
	if math.Abs(float64(last-prev)) > float64(last)/10 {
		t.Errorf("tail groups differ too much: %d vs %d", prev, last)
	}
}

func TestGroupSizesErrors(t *testing.T) {
	if _, err := GroupSizes(0, 4, 0.4); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := GroupSizes(10, 0, 0.4); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := GroupSizes(3, 5, 0.4); err == nil {
		t.Error("k>n should fail")
	}
}

func TestGroupSizesProperty(t *testing.T) {
	f := func(nRaw uint32, kRaw uint8) bool {
		n := int64(nRaw%100000) + 1
		k := int(kRaw%64) + 1
		if int64(k) > n {
			k = int(n)
		}
		sizes, err := GroupSizes(n, k, 0.4)
		if err != nil {
			return false
		}
		var sum int64
		for _, s := range sizes {
			if s <= 0 {
				return false
			}
			sum += s
		}
		return sum == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDiscreteSampleProperty(t *testing.T) {
	// Property: samples are always within range for arbitrary weights.
	f := func(ws []float64, seed uint64) bool {
		clean := make([]float64, 0, len(ws))
		for _, w := range ws {
			if w > 0 && !math.IsInf(w, 0) && !math.IsNaN(w) {
				clean = append(clean, w)
			}
		}
		if len(clean) == 0 {
			return true
		}
		d, err := NewDiscrete(clean)
		if err != nil {
			return false
		}
		s := NewStream(seed)
		for i := int64(0); i < 100; i++ {
			k := d.Sample(s, i)
			if k < 0 || k >= len(clean) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
