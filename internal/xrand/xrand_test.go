package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestU64Deterministic(t *testing.T) {
	s := NewStream(42)
	for i := int64(0); i < 1000; i++ {
		if s.U64(i) != s.U64(i) {
			t.Fatalf("U64(%d) not deterministic", i)
		}
	}
}

func TestU64DistinctSeeds(t *testing.T) {
	a, b := NewStream(1), NewStream(2)
	same := 0
	for i := int64(0); i < 1000; i++ {
		if a.U64(i) == b.U64(i) {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds collided %d/1000 times", same)
	}
}

func TestU64Avalanche(t *testing.T) {
	// Adjacent counters should differ in roughly half the bits.
	s := NewStream(7)
	totalBits := 0
	n := 2000
	for i := 0; i < n; i++ {
		d := s.U64(int64(i)) ^ s.U64(int64(i+1))
		totalBits += popcount(d)
	}
	avg := float64(totalBits) / float64(n)
	if avg < 28 || avg > 36 {
		t.Fatalf("avalanche average bit flips = %.2f, want ~32", avg)
	}
}

func popcount(x uint64) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

func TestFloat64Range(t *testing.T) {
	s := NewStream(3)
	for i := int64(0); i < 10000; i++ {
		v := s.Float64(i)
		if v < 0 || v >= 1 {
			t.Fatalf("Float64(%d) = %v out of [0,1)", i, v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := NewStream(11)
	sum := 0.0
	n := int64(200000)
	for i := int64(0); i < n; i++ {
		sum += s.Float64(i)
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := NewStream(5)
	for _, n := range []int64{1, 2, 3, 7, 100, 1 << 40} {
		for i := int64(0); i < 2000; i++ {
			v := s.Intn(i, n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d, %d) = %d out of range", i, n, v)
			}
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	s := NewStream(9)
	const n = 10
	counts := make([]int, n)
	draws := 100000
	for i := 0; i < draws; i++ {
		counts[s.Intn(int64(i), n)]++
	}
	want := float64(draws) / n
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 0.08*want {
			t.Fatalf("bucket %d has %d draws, want ~%.0f", k, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	NewStream(0).Intn(0, 0)
}

func TestNormFloat64Moments(t *testing.T) {
	s := NewStream(13)
	n := int64(200000)
	sum, sumSq := 0.0, 0.0
	for i := int64(0); i < n; i++ {
		v := s.NormFloat64(i)
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := NewStream(17)
	n := int64(200000)
	sum := 0.0
	for i := int64(0); i < n; i++ {
		v := s.ExpFloat64(i)
		if v < 0 {
			t.Fatalf("exponential draw %d negative: %v", i, v)
		}
		sum += v
	}
	if mean := sum / float64(n); math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestDeriveStreamIndependence(t *testing.T) {
	master := NewStream(99)
	a := master.DeriveStream("Person.country")
	b := master.DeriveStream("Person.sex")
	if a.Seed() == b.Seed() {
		t.Fatal("derived streams share a seed")
	}
	c := master.DeriveStream("Person.country")
	if a.Seed() != c.Seed() {
		t.Fatal("DeriveStream not deterministic")
	}
}

func TestPermIsBijection(t *testing.T) {
	s := NewStream(21)
	for _, n := range []int64{1, 2, 5, 16, 17, 100, 1000} {
		seen := make(map[int64]bool, n)
		for p := int64(0); p < n; p++ {
			v := s.Perm(p, n)
			if v < 0 || v >= n {
				t.Fatalf("Perm(%d, %d) = %d out of range", p, n, v)
			}
			if seen[v] {
				t.Fatalf("Perm over n=%d repeats value %d", n, v)
			}
			seen[v] = true
		}
	}
}

func TestPermBijectionProperty(t *testing.T) {
	// Property: for random n and seeds, Perm is a bijection on [0,n).
	f := func(seed uint64, nRaw uint16) bool {
		n := int64(nRaw%500) + 1
		s := NewStream(seed)
		seen := make(map[int64]bool, n)
		for p := int64(0); p < n; p++ {
			v := s.Perm(p, n)
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	s := NewStream(31)
	out := s.Shuffle(0, 1000)
	seen := make([]bool, 1000)
	for _, v := range out {
		if v < 0 || v >= 1000 || seen[v] {
			t.Fatalf("Shuffle produced invalid permutation at value %d", v)
		}
		seen[v] = true
	}
	// Different indices must give different shuffles (overwhelmingly).
	out2 := s.Shuffle(1, 1000)
	same := 0
	for i := range out {
		if out[i] == out2[i] {
			same++
		}
	}
	if same > 50 {
		t.Fatalf("two shuffles agree on %d/1000 positions, expected ~1", same)
	}
}

func TestShuffleUniformFirstElement(t *testing.T) {
	s := NewStream(37)
	const n = 6
	counts := make([]int, n)
	draws := 30000
	for i := 0; i < draws; i++ {
		counts[s.Shuffle(int64(i), n)[0]]++
	}
	want := float64(draws) / n
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 0.1*want {
			t.Fatalf("first element %d appeared %d times, want ~%.0f", k, c, want)
		}
	}
}

func BenchmarkU64(b *testing.B) {
	s := NewStream(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= s.U64(int64(i))
	}
	_ = sink
}

func BenchmarkPerm(b *testing.B) {
	s := NewStream(1)
	var sink int64
	for i := 0; i < b.N; i++ {
		sink ^= s.Perm(int64(i)%1000000, 1000000)
	}
	_ = sink
}

func TestDeriveNIndependentChildren(t *testing.T) {
	base := NewStream(7)
	seen := map[uint64]bool{base.Seed(): true}
	for i := uint64(0); i < 1000; i++ {
		c := base.DeriveN(i)
		if seen[c.Seed()] {
			t.Fatalf("child %d collides", i)
		}
		seen[c.Seed()] = true
		if c.Seed() != base.DeriveN(i).Seed() {
			t.Fatalf("child %d not deterministic", i)
		}
	}
	// Children of different parents must differ too.
	if NewStream(7).DeriveN(3).Seed() == NewStream(8).DeriveN(3).Seed() {
		t.Fatal("children of different parents collide")
	}
}

func TestSeqDeterministicAndBounded(t *testing.T) {
	a, b := NewSeq(11), NewSeq(11)
	for i := 0; i < 1000; i++ {
		va, vb := a.U64(), b.U64()
		if va != vb {
			t.Fatalf("draw %d differs", i)
		}
	}
	q := NewSeq(5)
	for i := 0; i < 1000; i++ {
		if v := q.Intn(17); v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := q.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestSeqShuffleIsPermutation(t *testing.T) {
	q := NewSeq(3)
	xs := make([]int64, 500)
	for i := range xs {
		xs[i] = int64(i)
	}
	q.ShuffleInt64(xs)
	seen := make([]bool, len(xs))
	moved := 0
	for i, v := range xs {
		if v < 0 || v >= int64(len(xs)) || seen[v] {
			t.Fatalf("not a permutation at %d: %d", i, v)
		}
		seen[v] = true
		if v != int64(i) {
			moved++
		}
	}
	if moved < len(xs)/2 {
		t.Fatalf("shuffle barely moved anything (%d/%d)", moved, len(xs))
	}
}

func TestSeqUniformitySmoke(t *testing.T) {
	q := NewSeq(9)
	const n, draws = 16, 64000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[q.Intn(n)]++
	}
	want := float64(draws) / n
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 0.1*want {
			t.Fatalf("value %d drawn %d times, want ~%.0f", k, c, want)
		}
	}
}
