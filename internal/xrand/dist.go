package xrand

import (
	"fmt"
	"math"
	"sort"
)

// This file implements the distribution samplers used by property and
// structure generators. All samplers are driven by a (Stream, index)
// pair, so sampling the same index always yields the same value — the
// invariant behind DataSynth's in-place regeneration.

// Discrete is a finite discrete distribution sampled by inverse
// transform over the cumulative weights. It is the workhorse behind
// categorical property generators and the paper's
// "Inverse Transform Sampling" remark in Section 4.1.
type Discrete struct {
	cum []float64 // cumulative probabilities, cum[len-1] == 1
}

// NewDiscrete builds a discrete distribution from non-negative weights.
// Weights need not be normalised. At least one weight must be positive.
func NewDiscrete(weights []float64) (*Discrete, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("xrand: discrete distribution needs at least one weight")
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("xrand: weight %d is invalid (%v)", i, w)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("xrand: discrete distribution needs positive total weight")
	}
	cum := make([]float64, len(weights))
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cum[i] = acc
	}
	cum[len(cum)-1] = 1
	return &Discrete{cum: cum}, nil
}

// MustDiscrete is NewDiscrete that panics on error; for literals.
func MustDiscrete(weights []float64) *Discrete {
	d, err := NewDiscrete(weights)
	if err != nil {
		panic(err)
	}
	return d
}

// N returns the number of categories.
func (d *Discrete) N() int { return len(d.cum) }

// Sample returns the category for the index-th draw of stream s.
func (d *Discrete) Sample(s Stream, i int64) int {
	return d.SampleU(s.Float64(i))
}

// SampleU inverts the CDF at u in [0,1).
func (d *Discrete) SampleU(u float64) int {
	return sort.SearchFloat64s(d.cum, u)
}

// Prob returns the probability of category k.
func (d *Discrete) Prob(k int) float64 {
	if k == 0 {
		return d.cum[0]
	}
	return d.cum[k] - d.cum[k-1]
}

// Zipf is a Zipf(s, v, imax) sampler over {0, …, n-1} with exponent
// theta: P(k) ∝ 1/(k+1)^theta. Sampling uses a precomputed CDF for
// small n and is exact.
type Zipf struct {
	d *Discrete
}

// NewZipf builds a Zipf distribution with n categories and exponent
// theta > 0.
func NewZipf(n int, theta float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("xrand: zipf needs n > 0, got %d", n)
	}
	if theta <= 0 || math.IsNaN(theta) {
		return nil, fmt.Errorf("xrand: zipf needs theta > 0, got %v", theta)
	}
	w := make([]float64, n)
	for k := range w {
		w[k] = math.Pow(float64(k+1), -theta)
	}
	d, err := NewDiscrete(w)
	if err != nil {
		return nil, err
	}
	return &Zipf{d: d}, nil
}

// Sample draws the i-th Zipf value from stream s.
func (z *Zipf) Sample(s Stream, i int64) int { return z.d.Sample(s, i) }

// N returns the number of categories.
func (z *Zipf) N() int { return z.d.N() }

// Prob returns P(k).
func (z *Zipf) Prob(k int) float64 { return z.d.Prob(k) }

// Geometric samples from a geometric distribution with success
// probability p: P(k) = (1-p)^k · p for k = 0, 1, 2, …
// The paper's evaluation sizes ground-truth groups with geo(0.4).
type Geometric struct {
	p float64
}

// NewGeometric builds the distribution; p must be in (0, 1].
func NewGeometric(p float64) (*Geometric, error) {
	if !(p > 0 && p <= 1) {
		return nil, fmt.Errorf("xrand: geometric needs p in (0,1], got %v", p)
	}
	return &Geometric{p: p}, nil
}

// PMF returns P(k) = (1-p)^k · p.
func (g *Geometric) PMF(k int) float64 {
	if k < 0 {
		return 0
	}
	return math.Pow(1-g.p, float64(k)) * g.p
}

// Sample draws the i-th geometric value by CDF inversion.
func (g *Geometric) Sample(s Stream, i int64) int {
	u := s.Float64(i)
	if g.p == 1 {
		return 0
	}
	return int(math.Floor(math.Log1p(-u) / math.Log(1-g.p)))
}

// PowerLawInt samples integers in [min, max] from a truncated discrete
// power law P(k) ∝ k^(-gamma). LFR uses it for both degree sequences
// and community sizes.
type PowerLawInt struct {
	min, max int
	d        *Discrete
}

// NewPowerLawInt builds the distribution. Requires 1 <= min <= max and
// gamma > 0.
func NewPowerLawInt(min, max int, gamma float64) (*PowerLawInt, error) {
	if min < 1 || max < min {
		return nil, fmt.Errorf("xrand: power law needs 1 <= min <= max, got [%d,%d]", min, max)
	}
	if gamma <= 0 || math.IsNaN(gamma) {
		return nil, fmt.Errorf("xrand: power law needs gamma > 0, got %v", gamma)
	}
	w := make([]float64, max-min+1)
	for k := range w {
		w[k] = math.Pow(float64(min+k), -gamma)
	}
	d, err := NewDiscrete(w)
	if err != nil {
		return nil, err
	}
	return &PowerLawInt{min: min, max: max, d: d}, nil
}

// Sample draws the i-th value in [min, max].
func (p *PowerLawInt) Sample(s Stream, i int64) int {
	return p.min + p.d.Sample(s, i)
}

// Mean returns the expectation of the distribution.
func (p *PowerLawInt) Mean() float64 {
	m := 0.0
	for k := 0; k < p.d.N(); k++ {
		m += float64(p.min+k) * p.d.Prob(k)
	}
	return m
}

// Bounds returns (min, max).
func (p *PowerLawInt) Bounds() (int, int) { return p.min, p.max }

// GroupSizes implements the paper's ground-truth group sizing rule
// (Section 4.2, evaluation): the i-th of k groups over n nodes has size
//
//	n · max(geo(p, i), 1/k) / Σ_j max(geo(p, j), 1/k)
//
// with geo the geometric PMF. It returns exact integer sizes summing to
// n (largest-remainder rounding).
func GroupSizes(n int64, k int, p float64) ([]int64, error) {
	if n <= 0 || k <= 0 {
		return nil, fmt.Errorf("xrand: group sizes need n > 0 and k > 0, got n=%d k=%d", n, k)
	}
	if k > int(n) {
		return nil, fmt.Errorf("xrand: more groups (%d) than nodes (%d)", k, n)
	}
	g, err := NewGeometric(p)
	if err != nil {
		return nil, err
	}
	raw := make([]float64, k)
	total := 0.0
	floor := 1.0 / float64(k)
	for i := 0; i < k; i++ {
		raw[i] = math.Max(g.PMF(i), floor)
		total += raw[i]
	}
	sizes := make([]int64, k)
	fracs := make([]struct {
		idx  int
		frac float64
	}, k)
	var assigned int64
	for i := 0; i < k; i++ {
		exact := float64(n) * raw[i] / total
		sizes[i] = int64(math.Floor(exact))
		fracs[i].idx = i
		fracs[i].frac = exact - float64(sizes[i])
		assigned += sizes[i]
	}
	sort.Slice(fracs, func(a, b int) bool {
		if fracs[a].frac != fracs[b].frac {
			return fracs[a].frac > fracs[b].frac
		}
		return fracs[a].idx < fracs[b].idx
	})
	for i := 0; assigned < n; i++ {
		sizes[fracs[i%k].idx]++
		assigned++
	}
	// Guarantee non-empty groups so every property value occurs.
	for i := 0; i < k; i++ {
		if sizes[i] == 0 {
			// Steal from the largest group.
			maxJ := 0
			for j := 1; j < k; j++ {
				if sizes[j] > sizes[maxJ] {
					maxJ = j
				}
			}
			sizes[maxJ]--
			sizes[i]++
		}
	}
	return sizes, nil
}
