// Package xrand implements the deterministic, randomly addressable
// pseudo-random number generation substrate that DataSynth's in-place
// data generation relies on.
//
// The paper (Section 4.1) requires a PRNG with "skip seed": a function
//
//	r : (i : Long) -> Long
//
// returning the i-th number of a reproducible sequence in O(1), so that
// the property value of any row can be regenerated on any worker by
// knowing only its id. We implement r as a counter-based generator: the
// i-th output is a strong 64-bit mix of (seed, i). This gives O(1)
// random access, no shared state, and therefore embarrassingly parallel
// generation.
//
// Streams are identified by a Stream value; DataSynth builds a distinct
// stream for every property table to keep properties independent
// (Section 4.1: "DataSynth builds a different r() for each PT").
package xrand

import "math"

// Stream is a randomly addressable pseudo-random sequence. The zero
// value is a valid stream (seed 0); distinct seeds yield statistically
// independent sequences.
type Stream struct {
	seed uint64
}

// NewStream returns the stream identified by seed.
func NewStream(seed uint64) Stream { return Stream{seed: seed} }

// DeriveStream returns a child stream deterministically derived from s
// and a label hash. It is used to build one independent stream per
// property table from a single master seed.
func (s Stream) DeriveStream(label string) Stream {
	h := s.seed ^ 0x9e3779b97f4a7c15
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 0x100000001b3
		h ^= h >> 29
	}
	return Stream{seed: mix64(h)}
}

// DeriveN returns the i-th numbered child stream — the integer
// analogue of DeriveStream, without the label-hashing cost. It is the
// substrate for per-shard RNG streams (e.g. one stream per LFR
// community keyed off (schema seed, task id, community id)): children
// are statistically independent of each other and of the parent, and
// the derivation is a pure function of (seed, i), so shards can be
// processed in any order — or concurrently — with identical results.
func (s Stream) DeriveN(i uint64) Stream {
	return Stream{seed: mix64(s.seed ^ (i+1)*0x9e3779b97f4a7c15)}
}

// Seed returns the stream's seed.
func (s Stream) Seed() uint64 { return s.seed }

// mix64 is the SplitMix64 finalizer (Steele et al.), a bijective mixing
// of 64-bit values with full avalanche. It is the core of the
// counter-based generator.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// U64 returns the i-th 64-bit value of the stream in O(1).
func (s Stream) U64(i int64) uint64 {
	// Two rounds of mixing over (seed, counter) pass PractRand-style
	// smoke tests and are plenty for synthetic data generation.
	return mix64(mix64(uint64(i)+0x632be59bd9b4e019) ^ s.seed)
}

// U64n returns the i-th value reduced to [0, n) without modulo bias,
// using Lemire's multiply-shift reduction with rejection.
func (s Stream) U64n(i int64, n uint64) uint64 {
	if n == 0 {
		panic("xrand: U64n with n == 0")
	}
	v := s.U64(i)
	hi, lo := mul64(v, n)
	if lo < n {
		// Rejection zone: re-draw from decorrelated substreams.
		thresh := -n % n
		for j := int64(1); lo < thresh; j++ {
			v = mix64(s.U64(i) ^ uint64(j)*0xd1342543de82ef95)
			hi, lo = mul64(v, n)
		}
	}
	return hi
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Int63 returns the i-th non-negative int64 of the stream.
func (s Stream) Int63(i int64) int64 {
	return int64(s.U64(i) >> 1)
}

// Intn returns the i-th value uniform in [0, n). n must be positive.
func (s Stream) Intn(i int64, n int64) int64 {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int64(s.U64n(i, uint64(n)))
}

// Float64 returns the i-th value uniform in [0, 1).
func (s Stream) Float64(i int64) float64 {
	return float64(s.U64(i)>>11) / (1 << 53)
}

// Float64Range returns the i-th value uniform in [lo, hi).
func (s Stream) Float64Range(i int64, lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64(i)
}

// NormFloat64 returns the i-th standard-normal value, computed with the
// Box-Muller transform over two decorrelated uniforms derived from the
// same index (so one index still maps to one deterministic value).
func (s Stream) NormFloat64(i int64) float64 {
	u1 := float64(s.U64(i)>>11)/(1<<53) + 0.5/(1<<53) // avoid log(0)
	u2 := float64(mix64(s.U64(i)^0xa0761d6478bd642f)>>11) / (1 << 53)
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// ExpFloat64 returns the i-th unit-rate exponential value.
func (s Stream) ExpFloat64(i int64) float64 {
	u := s.Float64(i)
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -math.Log(1 - u)
}

// Perm applies the i-th deterministic pseudo-random permutation pick:
// it returns position p's element of a Fisher-Yates-free "cipher"
// permutation of [0,n). It uses a format-preserving 4-round Feistel
// network over the index domain, so Perm is a bijection on [0, n) for
// every stream — the basis of in-place random assignment without
// materialising a permutation array.
func (s Stream) Perm(p, n int64) int64 {
	if n <= 0 {
		panic("xrand: Perm with non-positive n")
	}
	if p < 0 || p >= n {
		panic("xrand: Perm position out of range")
	}
	// Cycle-walking Feistel over the smallest power-of-4-ish domain >= n.
	bits := uint(1)
	for int64(1)<<bits < n {
		bits++
	}
	if bits%2 == 1 {
		bits++
	}
	half := bits / 2
	mask := int64(1)<<half - 1
	x := p
	for {
		l, r := x>>half, x&mask
		for round := uint64(0); round < 4; round++ {
			f := int64(mix64(uint64(r)^s.seed^round*0x9e3779b97f4a7c15)) & mask
			l, r = r, (l^f)&mask
		}
		x = l<<half | r
		if x < n {
			return x
		}
	}
}

// Seq is a sequential splitmix64 generator (Steele et al., the
// algorithm behind Java's SplittableRandom) for inherently sequential
// batch algorithms: configuration-model shuffles, rejection loops,
// attachment walks. Where the addressable Stream pays two mix64 rounds
// per draw to make every index independently addressable, Seq advances
// a Weyl state and finalises once — half the mixing work on paths that
// consume numbers strictly in order. The zero value is a valid
// generator (seed 0).
type Seq struct {
	state uint64
}

// NewSeq returns a sequential generator; use a Stream-derived seed
// (e.g. NewStream(seed).DeriveN(shard).Seed()) to key one Seq per
// shard.
func NewSeq(seed uint64) *Seq { return &Seq{state: seed} }

// U64 returns the next 64-bit value.
func (q *Seq) U64() uint64 {
	q.state += 0x9e3779b97f4a7c15
	return mix64(q.state)
}

// U64n returns the next value reduced to [0, n) without modulo bias
// (Lemire multiply-shift with rejection).
func (q *Seq) U64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Seq.U64n with n == 0")
	}
	hi, lo := mul64(q.U64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = mul64(q.U64(), n)
		}
	}
	return hi
}

// Intn returns the next value uniform in [0, n). n must be positive.
func (q *Seq) Intn(n int64) int64 {
	if n <= 0 {
		panic("xrand: Seq.Intn with non-positive n")
	}
	return int64(q.U64n(uint64(n)))
}

// Float64 returns the next value uniform in [0, 1).
func (q *Seq) Float64() float64 {
	return float64(q.U64()>>11) / (1 << 53)
}

// ShuffleInt64 permutes xs in place (Fisher–Yates).
func (q *Seq) ShuffleInt64(xs []int64) {
	for i := len(xs) - 1; i > 0; i-- {
		j := q.Intn(int64(i + 1))
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// Shuffle fills dst with a uniformly shuffled copy of [0, n) using the
// stream's index i as the shuffle identity. Unlike Perm it materialises
// the permutation (O(n) memory) but guarantees exact uniformity.
func (s Stream) Shuffle(i int64, n int) []int64 {
	out := make([]int64, n)
	for j := range out {
		out[j] = int64(j)
	}
	sub := Stream{seed: mix64(s.seed ^ uint64(i)*0x8bb84b93962eacc9)}
	for j := n - 1; j > 0; j-- {
		k := sub.Intn(int64(j), int64(j)+1)
		out[j], out[k] = out[k], out[j]
	}
	return out
}
