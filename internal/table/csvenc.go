package table

import (
	"strconv"
	"strings"
	"sync"
	"time"
	"unicode"
	"unicode/utf8"
)

// Pooled append-based CSV encoding. The original writers rendered every
// cell through fmt.Sprintf and encoding/csv, which allocates one string
// per cell; at export scale (millions of rows) the formatting dominated
// export wall time. This encoder appends cells directly into a pooled
// byte buffer with strconv's append family instead, producing output
// byte-identical to encoding/csv (UseCRLF = false): the quoting rules
// below mirror csv.Writer.fieldNeedsQuotes, so any parser that accepted
// the old files accepts the new ones, bit for bit.

// encBufPool recycles row/flush buffers across exported tables; a
// concurrent Export borrows one buffer per worker.
var encBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 64<<10)
	return &b
}}

func getEncBuf() *[]byte  { return encBufPool.Get().(*[]byte) }
func putEncBuf(b *[]byte) { *b = (*b)[:0]; encBufPool.Put(b) }

// csvFieldNeedsQuotes replicates encoding/csv's quoting decision for a
// separator rune: quote when the field contains the separator, a quote
// or a line break, starts with a space, or is the Postgres end-of-data
// marker `\.`. This mirrors go1.24's fieldNeedsQuotes byte for byte —
// an earlier revision kept the pre-1.24 special case for
// space-separated files (quote on any interior space), which the fuzz
// cross-check against encoding/csv flagged as a divergence.
func csvFieldNeedsQuotes(field string, comma rune) bool {
	if field == "" {
		return false
	}
	if field == `\.` {
		return true
	}
	if comma < utf8.RuneSelf {
		for i := 0; i < len(field); i++ {
			c := field[i]
			if c == '\n' || c == '\r' || c == '"' || c == byte(comma) {
				return true
			}
		}
	} else {
		if strings.ContainsRune(field, comma) || strings.ContainsAny(field, "\"\r\n") {
			return true
		}
	}
	r1, _ := utf8.DecodeRuneInString(field)
	return unicode.IsSpace(r1)
}

// appendCSVField appends one string cell, quoted exactly as
// encoding/csv (UseCRLF = false) would emit it: embedded quotes double,
// everything else passes through verbatim inside the quotes.
func appendCSVField(dst []byte, field string, comma rune) []byte {
	if !csvFieldNeedsQuotes(field, comma) {
		return append(dst, field...)
	}
	dst = append(dst, '"')
	for i := 0; i < len(field); i++ {
		if c := field[i]; c == '"' {
			dst = append(dst, '"', '"')
		} else {
			dst = append(dst, c)
		}
	}
	return append(dst, '"')
}

// appendDate appends the ISO rendering of a days-since-epoch value,
// matching FormatDate.
func appendDate(dst []byte, days int64) []byte {
	return time.Unix(days*86400, 0).UTC().AppendFormat(dst, dateLayout)
}

// appendCSV appends row id's CSV rendering. Numeric and date cells
// never need quoting; string cells go through the csv quoting rules.
func (pt *PropertyTable) appendCSV(dst []byte, id int64, comma rune) []byte {
	switch pt.Kind {
	case KindString:
		return appendCSVField(dst, pt.strs[id], comma)
	case KindFloat:
		return strconv.AppendFloat(dst, pt.floats[id], 'g', -1, 64)
	case KindDate:
		return appendDate(dst, pt.ints[id])
	default:
		return strconv.AppendInt(dst, pt.ints[id], 10)
	}
}
