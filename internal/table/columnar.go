package table

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"path/filepath"
	"sort"
	"strings"

	"datasynth/internal/faultfs"
)

// Binary columnar export (.dsc — "DataSynth columns"): the bulk-load
// format the CSV connector is too slow for. One file per table, typed
// column blocks, no per-row framing, so a loader can mmap or stream a
// column straight into an array. The layout (all integers
// little-endian, uvarint = unsigned LEB128):
//
//	file   := magic "DSC1" | kind (1 byte: 'N' node, 'E' edge)
//	        | typeName (uvarint len + bytes) | rows uvarint
//	        | ncols uvarint
//	        | [kind=='E': block(tail int64s) block(head int64s)]
//	        | ncols × column
//	column := name (uvarint len + bytes, the full "<Type>.<prop>" name)
//	        | valueKind (1 byte: ValueKind)
//	        | block
//	block  := payload length uvarint | payload | crc32c(payload) uint32
//	payload:
//	  int/date: rows × int64
//	  float:    rows × IEEE-754 bits
//	  string:   (rows+1) × uint64 cumulative byte offsets, then the
//	            concatenated UTF-8 bytes (value i spans
//	            [offset[i], offset[i+1]))
//
// Every block carries a CRC-32C trailer so a truncated or corrupted
// file is detected at load, and the whole format round-trips exactly:
// OpenColumnar(WriteDirColumnar(d)) reproduces every value bit for bit
// (floats travel as raw bits, not decimal text).

// ColumnarExt is the file extension of the columnar format.
const ColumnarExt = ".dsc"

const columnarMagic = "DSC1"

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// columnar block encoding ----------------------------------------------------

// blockWriter streams one block: payload length first, then payload
// bytes through a running CRC, then the CRC trailer.
type blockWriter struct {
	w   io.Writer
	crc uint32
}

func newBlock(w io.Writer, payloadLen uint64) (*blockWriter, error) {
	var scratch [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(scratch[:], payloadLen)
	if _, err := w.Write(scratch[:n]); err != nil {
		return nil, err
	}
	return &blockWriter{w: w}, nil
}

func (b *blockWriter) Write(p []byte) (int, error) {
	b.crc = crc32.Update(b.crc, castagnoli, p)
	return b.w.Write(p)
}

func (b *blockWriter) close() error {
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], b.crc)
	_, err := b.w.Write(tail[:])
	return err
}

// writeIntBlock emits vals as a raw little-endian int64 block.
func writeIntBlock(w io.Writer, vals []int64) error {
	b, err := newBlock(w, uint64(8*len(vals)))
	if err != nil {
		return err
	}
	bp := getEncBuf()
	defer putEncBuf(bp)
	buf := (*bp)[:0]
	for _, v := range vals {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
		if len(buf) >= csvFlushAt {
			if _, err := b.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if _, err := b.Write(buf); err != nil {
		return err
	}
	return b.close()
}

// writeFloatBlock emits vals as raw IEEE-754 bit patterns.
func writeFloatBlock(w io.Writer, vals []float64) error {
	b, err := newBlock(w, uint64(8*len(vals)))
	if err != nil {
		return err
	}
	bp := getEncBuf()
	defer putEncBuf(bp)
	buf := (*bp)[:0]
	for _, v := range vals {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		if len(buf) >= csvFlushAt {
			if _, err := b.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if _, err := b.Write(buf); err != nil {
		return err
	}
	return b.close()
}

// writeStringBlock emits the offsets array followed by the
// concatenated bytes.
func writeStringBlock(w io.Writer, vals []string) error {
	var total uint64
	for _, s := range vals {
		total += uint64(len(s))
	}
	b, err := newBlock(w, uint64(8*(len(vals)+1))+total)
	if err != nil {
		return err
	}
	bp := getEncBuf()
	defer putEncBuf(bp)
	buf := (*bp)[:0]
	var off uint64
	buf = binary.LittleEndian.AppendUint64(buf, 0)
	for _, s := range vals {
		off += uint64(len(s))
		buf = binary.LittleEndian.AppendUint64(buf, off)
		if len(buf) >= csvFlushAt {
			if _, err := b.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	for _, s := range vals {
		buf = append(buf, s...)
		if len(buf) >= csvFlushAt {
			if _, err := b.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if _, err := b.Write(buf); err != nil {
		return err
	}
	return b.close()
}

func writeColumn(w io.Writer, pt *PropertyTable) error {
	if err := writeName(w, pt.Name); err != nil {
		return err
	}
	if _, err := w.Write([]byte{byte(pt.Kind)}); err != nil {
		return err
	}
	switch pt.Kind {
	case KindString:
		return writeStringBlock(w, pt.strs)
	case KindFloat:
		return writeFloatBlock(w, pt.floats)
	default:
		return writeIntBlock(w, pt.ints)
	}
}

func writeName(w io.Writer, name string) error {
	var scratch [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(scratch[:], uint64(len(name)))
	if _, err := w.Write(scratch[:n]); err != nil {
		return err
	}
	_, err := io.WriteString(w, name)
	return err
}

func writeHeader(w io.Writer, kind byte, typeName string, rows int64, ncols int) error {
	if _, err := io.WriteString(w, columnarMagic); err != nil {
		return err
	}
	if _, err := w.Write([]byte{kind}); err != nil {
		return err
	}
	if err := writeName(w, typeName); err != nil {
		return err
	}
	var scratch [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(scratch[:], uint64(rows))
	n += binary.PutUvarint(scratch[n:], uint64(ncols))
	_, err := w.Write(scratch[:n])
	return err
}

// WriteNodeColumnar writes one node type as a columnar file. count is
// the instance count (property tables, if any, must match it).
func WriteNodeColumnar(w io.Writer, typeName string, count int64, props []*PropertyTable) error {
	for _, pt := range props {
		if pt.Len() != count {
			return fmt.Errorf("table: property %s has %d rows, expected %d", pt.Name, pt.Len(), count)
		}
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if err := writeHeader(bw, 'N', typeName, count, len(props)); err != nil {
		return err
	}
	for _, pt := range props {
		if err := writeColumn(bw, pt); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteEdgeColumnar writes one edge type as a columnar file: tail and
// head blocks, then the edge property columns.
func WriteEdgeColumnar(w io.Writer, et *EdgeTable, props []*PropertyTable) error {
	for _, pt := range props {
		if pt.Len() != et.Len() {
			return fmt.Errorf("table: edge property %s has %d rows, edge table has %d", pt.Name, pt.Len(), et.Len())
		}
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if err := writeHeader(bw, 'E', et.Name, et.Len(), len(props)); err != nil {
		return err
	}
	if err := writeIntBlock(bw, et.Tail); err != nil {
		return err
	}
	if err := writeIntBlock(bw, et.Head); err != nil {
		return err
	}
	for _, pt := range props {
		if err := writeColumn(bw, pt); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteDirColumnar exports the dataset as nodes_<Type>.dsc and
// edges_<Type>.dsc files. Tables are written concurrently and
// committed atomically; see Export.
func (d *Dataset) WriteDirColumnar(dir string) error {
	_, err := d.Export(dir, ExportOptions{Format: FormatColumnar})
	return err
}

// columnar decoding ----------------------------------------------------------

// ColumnarTable is one decoded columnar file.
type ColumnarTable struct {
	// TypeName is the node or edge type the file holds.
	TypeName string
	// Rows is the instance (or edge) count.
	Rows int64
	// Edges holds the structure for edge tables; nil for node tables.
	Edges *EdgeTable
	// Props are the property columns in file order.
	Props []*PropertyTable
}

// maxColumnarName, maxColumnarBlock and maxColumnarRows bound decoded
// lengths as a corruption guard, so a garbled header fails cleanly
// instead of panicking or attempting an absurd allocation.
const (
	maxColumnarName  = 1 << 16
	maxColumnarBlock = 1 << 34
	// maxColumnarRows keeps every fixed-width block under
	// maxColumnarBlock and, crucially, rows well inside int64, so
	// derived sizes (8*(rows+1), make lengths) cannot wrap negative.
	maxColumnarRows = maxColumnarBlock / 8
)

func readName(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > maxColumnarName {
		return "", fmt.Errorf("table: columnar name length %d exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// readBlock reads one block's payload, verifying length and CRC.
func readBlock(r *bufio.Reader, wantLen uint64, what string) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if wantLen != 0 && n != wantLen {
		return nil, fmt.Errorf("table: columnar %s block is %d bytes, want %d", what, n, wantLen)
	}
	if n > maxColumnarBlock {
		return nil, fmt.Errorf("table: columnar %s block length %d exceeds limit (file corrupt)", what, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("table: columnar %s block truncated: %w", what, err)
	}
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return nil, fmt.Errorf("table: columnar %s block missing checksum: %w", what, err)
	}
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(tail[:]); got != want {
		return nil, fmt.Errorf("table: columnar %s block checksum mismatch (file corrupt)", what)
	}
	return payload, nil
}

func readIntBlock(r *bufio.Reader, rows int64, what string) ([]int64, error) {
	payload, err := readBlock(r, uint64(8*rows), what)
	if err != nil {
		return nil, err
	}
	vals := make([]int64, rows)
	for i := range vals {
		vals[i] = int64(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	return vals, nil
}

func readFloatBlock(r *bufio.Reader, rows int64, what string) ([]float64, error) {
	payload, err := readBlock(r, uint64(8*rows), what)
	if err != nil {
		return nil, err
	}
	vals := make([]float64, rows)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	return vals, nil
}

func readStringBlock(r *bufio.Reader, rows int64, what string) ([]string, error) {
	payload, err := readBlock(r, 0, what)
	if err != nil {
		return nil, err
	}
	offBytes := uint64(8 * (rows + 1))
	if uint64(len(payload)) < offBytes {
		return nil, fmt.Errorf("table: columnar %s block too short for %d offsets", what, rows+1)
	}
	data := payload[offBytes:]
	vals := make([]string, rows)
	prev := binary.LittleEndian.Uint64(payload)
	if prev != 0 {
		return nil, fmt.Errorf("table: columnar %s block has non-zero base offset", what)
	}
	for i := int64(0); i < rows; i++ {
		next := binary.LittleEndian.Uint64(payload[8*(i+1):])
		if next < prev || next > uint64(len(data)) {
			return nil, fmt.Errorf("table: columnar %s block has invalid offset %d at row %d", what, next, i)
		}
		vals[i] = string(data[prev:next])
		prev = next
	}
	return vals, nil
}

// ReadColumnarTable decodes one columnar file from r.
func ReadColumnarTable(r io.Reader) (*ColumnarTable, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(columnarMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("table: reading columnar magic: %w", err)
	}
	if string(magic) != columnarMagic {
		return nil, fmt.Errorf("table: bad columnar magic %q", magic)
	}
	kind, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if kind != 'N' && kind != 'E' {
		return nil, fmt.Errorf("table: unknown columnar table kind %q", kind)
	}
	typeName, err := readName(br)
	if err != nil {
		return nil, err
	}
	rowsU, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if rowsU > maxColumnarRows {
		return nil, fmt.Errorf("table: columnar row count %d exceeds limit (file corrupt)", rowsU)
	}
	rows := int64(rowsU)
	ncols, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if ncols > maxColumnarName {
		return nil, fmt.Errorf("table: columnar column count %d exceeds limit", ncols)
	}
	ct := &ColumnarTable{TypeName: typeName, Rows: rows}
	if kind == 'E' {
		tail, err := readIntBlock(br, rows, typeName+".tail")
		if err != nil {
			return nil, err
		}
		head, err := readIntBlock(br, rows, typeName+".head")
		if err != nil {
			return nil, err
		}
		ct.Edges = &EdgeTable{Name: typeName, Tail: tail, Head: head}
	}
	for c := uint64(0); c < ncols; c++ {
		name, err := readName(br)
		if err != nil {
			return nil, err
		}
		kb, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		pt := &PropertyTable{Name: name, Kind: ValueKind(kb)}
		switch pt.Kind {
		case KindString:
			if pt.strs, err = readStringBlock(br, rows, name); err != nil {
				return nil, err
			}
		case KindFloat:
			if pt.floats, err = readFloatBlock(br, rows, name); err != nil {
				return nil, err
			}
		case KindInt, KindDate:
			if pt.ints, err = readIntBlock(br, rows, name); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("table: columnar column %s has unknown kind %d", name, kb)
		}
		ct.Props = append(ct.Props, pt)
	}
	// Trailing garbage means the file was not produced by this writer.
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("table: columnar file has trailing bytes after last column")
	}
	return ct, nil
}

// ReadColumnarFile decodes the columnar file at path on the real
// filesystem. Fault-injection tests use ReadColumnarFileFS.
func ReadColumnarFile(path string) (*ColumnarTable, error) {
	return ReadColumnarFileFS(faultfs.OS, path)
}

// ReadColumnarFileFS decodes the columnar file at path through fsys,
// so injected open/read faults exercise the load path like real I/O
// errors would.
func ReadColumnarFileFS(fsys faultfs.FS, path string) (*ColumnarTable, error) {
	f, err := faultfs.OrOS(fsys).Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ct, err := ReadColumnarTable(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return ct, nil
}

// OpenColumnar loads every *.dsc file in dir back into a Dataset — the
// read side of WriteDirColumnar — on the real filesystem.
func OpenColumnar(dir string) (*Dataset, error) {
	return OpenColumnarFS(faultfs.OS, dir)
}

// OpenColumnarFS is OpenColumnar through fsys. File kind and type come
// from the file headers, not the names.
func OpenColumnarFS(fsys faultfs.FS, dir string) (*Dataset, error) {
	fsys = faultfs.OrOS(fsys)
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, ent := range entries {
		if !ent.IsDir() && strings.HasSuffix(ent.Name(), ColumnarExt) {
			names = append(names, ent.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("table: no %s files in %s", ColumnarExt, dir)
	}
	d := NewDataset()
	for _, name := range names {
		ct, err := ReadColumnarFileFS(fsys, filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if ct.Edges != nil {
			if _, dup := d.Edges[ct.TypeName]; dup {
				return nil, fmt.Errorf("table: duplicate edge type %q in %s", ct.TypeName, dir)
			}
			d.Edges[ct.TypeName] = ct.Edges
			d.EdgeProps[ct.TypeName] = ct.Props
		} else {
			if _, dup := d.NodeCounts[ct.TypeName]; dup {
				return nil, fmt.Errorf("table: duplicate node type %q in %s", ct.TypeName, dir)
			}
			d.NodeCounts[ct.TypeName] = ct.Rows
			d.NodeProps[ct.TypeName] = ct.Props
		}
	}
	return d, nil
}
