package table

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"datasynth/internal/faultfs"
)

func floatBits(f float64) uint64 { return math.Float64bits(f) }

func putUvarintLen(buf []byte, v uint64) int {
	i := 0
	for v >= 0x80 {
		buf[i] = byte(v) | 0x80
		v >>= 7
		i++
	}
	buf[i] = byte(v)
	return i + 1
}

// Columnar round-trip fidelity, mirroring roundtrip_test.go: writing
// with WriteDirColumnar and loading with OpenColumnar must reproduce
// every in-memory value exactly. Unlike the text formats there is no
// formatting layer at all — ints, dates and float bit patterns travel
// raw — so equality here is bit-for-bit by construction, and the test
// pins that contract.

// assertDatasetsEqual deep-compares two datasets value by value.
func assertDatasetsEqual(t *testing.T, want, got *Dataset) {
	t.Helper()
	if len(got.NodeCounts) != len(want.NodeCounts) {
		t.Fatalf("node types = %d, want %d", len(got.NodeCounts), len(want.NodeCounts))
	}
	for typ, n := range want.NodeCounts {
		if got.NodeCounts[typ] != n {
			t.Errorf("NodeCounts[%s] = %d, want %d", typ, got.NodeCounts[typ], n)
		}
		wantProps, gotProps := want.NodeProps[typ], got.NodeProps[typ]
		if len(gotProps) != len(wantProps) {
			t.Fatalf("%s has %d props, want %d", typ, len(gotProps), len(wantProps))
		}
		for i, wpt := range wantProps {
			assertPTEqual(t, wpt, gotProps[i])
		}
	}
	if len(got.Edges) != len(want.Edges) {
		t.Fatalf("edge types = %d, want %d", len(got.Edges), len(want.Edges))
	}
	for typ, wet := range want.Edges {
		get := got.Edges[typ]
		if get == nil {
			t.Fatalf("edge type %s missing", typ)
		}
		if get.Name != wet.Name || get.Len() != wet.Len() {
			t.Fatalf("edge %s: name/len %q/%d, want %q/%d", typ, get.Name, get.Len(), wet.Name, wet.Len())
		}
		for i := range wet.Tail {
			if get.Tail[i] != wet.Tail[i] || get.Head[i] != wet.Head[i] {
				t.Errorf("edge %s row %d: (%d,%d), want (%d,%d)",
					typ, i, get.Tail[i], get.Head[i], wet.Tail[i], wet.Head[i])
			}
		}
		wantProps, gotProps := want.EdgeProps[typ], got.EdgeProps[typ]
		if len(gotProps) != len(wantProps) {
			t.Fatalf("%s has %d edge props, want %d", typ, len(gotProps), len(wantProps))
		}
		for i, wpt := range wantProps {
			assertPTEqual(t, wpt, gotProps[i])
		}
	}
}

func assertPTEqual(t *testing.T, want, got *PropertyTable) {
	t.Helper()
	if got.Name != want.Name || got.Kind != want.Kind || got.Len() != want.Len() {
		t.Fatalf("PT %s: name/kind/len %q/%v/%d, want %q/%v/%d",
			want.Name, got.Name, got.Kind, got.Len(), want.Name, want.Kind, want.Len())
	}
	for id := int64(0); id < want.Len(); id++ {
		switch want.Kind {
		case KindString:
			if got.String(id) != want.String(id) {
				t.Errorf("%s row %d: %q, want %q", want.Name, id, got.String(id), want.String(id))
			}
		case KindFloat:
			// Bit equality, not ==: the format must preserve NaNs and
			// signed zeros exactly.
			if gotBits, wantBits := floatBits(got.Float(id)), floatBits(want.Float(id)); gotBits != wantBits {
				t.Errorf("%s row %d: %v (bits %x), want %v (bits %x)",
					want.Name, id, got.Float(id), gotBits, want.Float(id), wantBits)
			}
		default:
			if got.Int(id) != want.Int(id) {
				t.Errorf("%s row %d: %d, want %d", want.Name, id, got.Int(id), want.Int(id))
			}
		}
	}
}

func TestColumnarRoundTrip(t *testing.T) {
	d := roundTripDataset()
	dir := t.TempDir()
	if err := d.WriteDirColumnar(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"nodes_User.dsc", "edges_follows.dsc"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("expected %s: %v", name, err)
		}
	}
	got, err := OpenColumnar(dir)
	if err != nil {
		t.Fatal(err)
	}
	assertDatasetsEqual(t, d, got)
}

// TestColumnarReadFaultInjection pins the read path to faultfs: both
// the directory scan and every per-file open must go through the
// caller's FS, so injected faults surface as load errors instead of
// silently bypassing the harness via direct os calls.
func TestColumnarReadFaultInjection(t *testing.T) {
	d := roundTripDataset()
	dir := t.TempDir()
	if err := d.WriteDirColumnar(dir); err != nil {
		t.Fatal(err)
	}

	fsys := faultfs.NewInject(1, &faultfs.Rule{Ops: faultfs.OpReadDir, Nth: 1})
	if _, err := OpenColumnarFS(fsys, dir); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("OpenColumnarFS with ReadDir fault = %v, want ErrInjected", err)
	}

	// Nth=2 proves the second file's open is routed through fsys too,
	// not just the first.
	fsys = faultfs.NewInject(1, &faultfs.Rule{Ops: faultfs.OpOpen, Nth: 2})
	if _, err := OpenColumnarFS(fsys, dir); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("OpenColumnarFS with Open fault = %v, want ErrInjected", err)
	}

	// A rule-free injected FS must behave exactly like the real one.
	got, err := OpenColumnarFS(faultfs.NewInject(1), dir)
	if err != nil {
		t.Fatal(err)
	}
	assertDatasetsEqual(t, d, got)
}

func TestColumnarZeroPropertyNodeType(t *testing.T) {
	// A bare join type has a count but no columns; the header alone
	// must carry it through the round trip.
	d := NewDataset()
	d.NodeCounts["Bare"] = 7
	et := NewEdgeTable("self", 1)
	et.Add(0, 6)
	d.Edges["self"] = et
	dir := t.TempDir()
	if err := d.WriteDirColumnar(dir); err != nil {
		t.Fatal(err)
	}
	got, err := OpenColumnar(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.NodeCounts["Bare"] != 7 {
		t.Errorf("Bare count = %d, want 7", got.NodeCounts["Bare"])
	}
	if len(got.NodeProps["Bare"]) != 0 {
		t.Errorf("Bare has %d props", len(got.NodeProps["Bare"]))
	}
}

func TestColumnarSingleTableWriters(t *testing.T) {
	d := roundTripDataset()
	var buf bytes.Buffer
	if err := WriteNodeColumnar(&buf, "User", 5, d.NodeProps["User"]); err != nil {
		t.Fatal(err)
	}
	ct, err := ReadColumnarTable(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if ct.TypeName != "User" || ct.Rows != 5 || ct.Edges != nil || len(ct.Props) != 4 {
		t.Fatalf("decoded node table wrong: %+v", ct)
	}
	buf.Reset()
	if err := WriteEdgeColumnar(&buf, d.Edges["follows"], d.EdgeProps["follows"]); err != nil {
		t.Fatal(err)
	}
	ct, err = ReadColumnarTable(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if ct.Edges == nil || ct.Edges.Len() != 3 || len(ct.Props) != 1 {
		t.Fatalf("decoded edge table wrong: %+v", ct)
	}
}

func TestColumnarWriterValidatesLengths(t *testing.T) {
	short := NewPropertyTable("T.x", KindInt, 2)
	if err := WriteNodeColumnar(&bytes.Buffer{}, "T", 3, []*PropertyTable{short}); err == nil {
		t.Error("ragged node props should fail")
	}
	et := NewEdgeTable("e", 1)
	et.Add(0, 1)
	if err := WriteEdgeColumnar(&bytes.Buffer{}, et, []*PropertyTable{short}); err == nil {
		t.Error("ragged edge props should fail")
	}
}

func TestColumnarDetectsCorruption(t *testing.T) {
	d := roundTripDataset()
	dir := t.TempDir()
	if err := d.WriteDirColumnar(dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "nodes_User.dsc")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte deep in the file: the block CRC must catch it.
	flipped := bytes.Clone(raw)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := ReadColumnarTable(bytes.NewReader(flipped)); err == nil {
		t.Error("bit flip not detected")
	}

	// Truncation must fail cleanly, not hang or panic.
	for _, cut := range []int{3, len(raw) / 3, len(raw) - 2} {
		if _, err := ReadColumnarTable(bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}

	// Wrong magic.
	bad := bytes.Clone(raw)
	copy(bad, "NOPE")
	if _, err := ReadColumnarTable(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic error = %v", err)
	}

	// Trailing garbage.
	if _, err := ReadColumnarTable(bytes.NewReader(append(bytes.Clone(raw), 0x00))); err == nil {
		t.Error("trailing bytes not detected")
	}
}

// TestColumnarRejectsAbsurdRowCount: a crafted header whose rows field
// is 2^64-1 (int64 -1) must return a corruption error, not panic in
// make() or attempt a giant allocation.
func TestColumnarRejectsAbsurdRowCount(t *testing.T) {
	craft := func(rows uint64) []byte {
		var buf bytes.Buffer
		buf.WriteString("DSC1")
		buf.WriteByte('N')
		buf.Write([]byte{1, 'T'}) // type name "T"
		var scratch [10]byte
		buf.Write(scratch[:putUvarintLen(scratch[:], rows)])
		buf.WriteByte(1)                    // ncols = 1
		buf.Write([]byte{3, 'T', '.', 'x'}) // column name "T.x"
		buf.WriteByte(byte(KindString))
		buf.Write([]byte{0})          // empty block payload length
		buf.Write([]byte{0, 0, 0, 0}) // CRC of empty payload
		return buf.Bytes()
	}
	for _, rows := range []uint64{^uint64(0), maxColumnarRows + 1} {
		if _, err := ReadColumnarTable(bytes.NewReader(craft(rows))); err == nil {
			t.Errorf("rows=%d accepted", rows)
		} else if !strings.Contains(err.Error(), "row count") {
			t.Errorf("rows=%d: error %v is not the row-count guard", rows, err)
		}
	}
}
