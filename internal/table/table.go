// Package table implements DataSynth's tabular data model (paper
// Section 4.1): Property Tables and Edge Tables stored as typed columns.
//
// A Property Table (PT) is a 2-column table [id:int64, value:T] holding
// one property for one node or edge type; ids are dense in [0, n).
// An Edge Table (ET) is a 3-column table [id:int64, tail:int64,
// head:int64] holding the structure of one edge type; edge ids are dense
// in [0, m) and endpoint ids are dense per endpoint type.
//
// Tables are append-oriented and chunked so generation can proceed in
// parallel: each worker fills its own id range and the chunks are then
// stitched without copying.
//
// # Export
//
// A generated Dataset exports through one pipeline, Dataset.Export,
// in three formats: CSV (bulk-loader layout, rows rendered by a pooled
// append encoder byte-identical to encoding/csv), JSON-lines, and a
// binary columnar format (.dsc, see columnar.go) whose typed column
// blocks round-trip every value bit for bit and load back with
// OpenColumnar. Tables are independent, so Export writes one file per
// table on a bounded worker pool (ExportOptions.Workers) and commits
// the directory atomically — every file stages as a temp file and the
// set renames into place only after all tables encoded, so a failed
// export never leaves a partial directory. File bytes are identical at
// every worker count.
package table

import "fmt"

// ValueKind enumerates the value types a Property Table can hold.
type ValueKind int

// Supported property value kinds.
const (
	KindString ValueKind = iota
	KindInt
	KindFloat
	KindDate // days since Unix epoch, stored as int64
)

// String returns the DSL spelling of the kind.
func (k ValueKind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindDate:
		return "date"
	default:
		return fmt.Sprintf("ValueKind(%d)", int(k))
	}
}

// ParseValueKind parses a DSL type name.
func ParseValueKind(s string) (ValueKind, error) {
	switch s {
	case "string":
		return KindString, nil
	case "int", "long":
		return KindInt, nil
	case "float", "double":
		return KindFloat, nil
	case "date":
		return KindDate, nil
	default:
		return 0, fmt.Errorf("table: unknown value kind %q", s)
	}
}

// PropertyTable is a dense [id, value] table for one <type, property>
// pair. Row i holds the value of instance id i, so the id column is
// implicit. Exactly one of the value slices is non-nil, matching Kind.
type PropertyTable struct {
	Name string // "<TypeName>.<property>"
	Kind ValueKind

	strs   []string
	ints   []int64
	floats []float64
}

// NewPropertyTable allocates a PT with capacity for n rows.
func NewPropertyTable(name string, kind ValueKind, n int64) *PropertyTable {
	pt := &PropertyTable{Name: name, Kind: kind}
	switch kind {
	case KindString:
		pt.strs = make([]string, n)
	case KindFloat:
		pt.floats = make([]float64, n)
	default:
		pt.ints = make([]int64, n)
	}
	return pt
}

// Len returns the number of rows.
func (pt *PropertyTable) Len() int64 {
	switch pt.Kind {
	case KindString:
		return int64(len(pt.strs))
	case KindFloat:
		return int64(len(pt.floats))
	default:
		return int64(len(pt.ints))
	}
}

// SetString sets row id. Panics if the kind is not string.
func (pt *PropertyTable) SetString(id int64, v string) {
	if pt.Kind != KindString {
		panic(fmt.Sprintf("table: %s is %v, not string", pt.Name, pt.Kind))
	}
	pt.strs[id] = v
}

// SetInt sets row id for int and date tables.
func (pt *PropertyTable) SetInt(id int64, v int64) {
	if pt.Kind != KindInt && pt.Kind != KindDate {
		panic(fmt.Sprintf("table: %s is %v, not int/date", pt.Name, pt.Kind))
	}
	pt.ints[id] = v
}

// SetFloat sets row id. Panics if the kind is not float.
func (pt *PropertyTable) SetFloat(id int64, v float64) {
	if pt.Kind != KindFloat {
		panic(fmt.Sprintf("table: %s is %v, not float", pt.Name, pt.Kind))
	}
	pt.floats[id] = v
}

// String returns the string value of row id.
func (pt *PropertyTable) String(id int64) string { return pt.strs[id] }

// Int returns the int/date value of row id.
func (pt *PropertyTable) Int(id int64) int64 { return pt.ints[id] }

// Float returns the float value of row id.
func (pt *PropertyTable) Float(id int64) float64 { return pt.floats[id] }

// Value returns row id boxed as any, independent of kind.
func (pt *PropertyTable) Value(id int64) any {
	switch pt.Kind {
	case KindString:
		return pt.strs[id]
	case KindFloat:
		return pt.floats[id]
	default:
		return pt.ints[id]
	}
}

// Format renders row id as its CSV representation.
func (pt *PropertyTable) Format(id int64) string {
	switch pt.Kind {
	case KindString:
		return pt.strs[id]
	case KindFloat:
		return fmt.Sprintf("%g", pt.floats[id])
	case KindDate:
		return FormatDate(pt.ints[id])
	default:
		return fmt.Sprintf("%d", pt.ints[id])
	}
}

// Ints exposes the raw int column (int and date kinds). Callers must
// not resize it.
func (pt *PropertyTable) Ints() []int64 { return pt.ints }

// Strings exposes the raw string column.
func (pt *PropertyTable) Strings() []string { return pt.strs }

// Floats exposes the raw float column.
func (pt *PropertyTable) Floats() []float64 { return pt.floats }

// EdgeTable is the dense [id, tail, head] table of one edge type. Edge
// id i connects Tail[i] -> Head[i]; ids are implicit row numbers.
type EdgeTable struct {
	Name string // edge type name
	Tail []int64
	Head []int64
}

// NewEdgeTable allocates an ET with capacity hint m.
func NewEdgeTable(name string, m int64) *EdgeTable {
	return &EdgeTable{
		Name: name,
		Tail: make([]int64, 0, m),
		Head: make([]int64, 0, m),
	}
}

// Len returns the number of edges.
func (et *EdgeTable) Len() int64 { return int64(len(et.Tail)) }

// Add appends the edge tail -> head and returns its id.
func (et *EdgeTable) Add(tail, head int64) int64 {
	et.Tail = append(et.Tail, tail)
	et.Head = append(et.Head, head)
	return int64(len(et.Tail) - 1)
}

// MaxNode returns the largest endpoint id plus one (i.e. the implied
// node-domain size), or 0 for an empty table.
func (et *EdgeTable) MaxNode() int64 {
	var max int64 = -1
	for i := range et.Tail {
		if et.Tail[i] > max {
			max = et.Tail[i]
		}
		if et.Head[i] > max {
			max = et.Head[i]
		}
	}
	return max + 1
}

// Validate checks structural invariants: endpoints within [0, nTail)
// and [0, nHead), and parallel column lengths. Pass nTail/nHead <= 0 to
// skip the respective bound check.
func (et *EdgeTable) Validate(nTail, nHead int64) error {
	if len(et.Tail) != len(et.Head) {
		return fmt.Errorf("table: %s has ragged columns (%d tails, %d heads)", et.Name, len(et.Tail), len(et.Head))
	}
	for i := range et.Tail {
		if et.Tail[i] < 0 || (nTail > 0 && et.Tail[i] >= nTail) {
			return fmt.Errorf("table: %s edge %d has tail %d outside [0,%d)", et.Name, i, et.Tail[i], nTail)
		}
		if et.Head[i] < 0 || (nHead > 0 && et.Head[i] >= nHead) {
			return fmt.Errorf("table: %s edge %d has head %d outside [0,%d)", et.Name, i, et.Head[i], nHead)
		}
	}
	return nil
}

// RemapTails rewrites every tail id through f. Used by the matching
// step to substitute structure-node ids with property-row ids.
func (et *EdgeTable) RemapTails(f []int64) {
	for i, t := range et.Tail {
		et.Tail[i] = f[t]
	}
}

// RemapHeads rewrites every head id through f.
func (et *EdgeTable) RemapHeads(f []int64) {
	for i, h := range et.Head {
		et.Head[i] = f[h]
	}
}

// Remap rewrites both endpoints through f (monopartite matching).
func (et *EdgeTable) Remap(f []int64) {
	et.RemapTails(f)
	et.RemapHeads(f)
}

// Clone returns a deep copy of the table.
func (et *EdgeTable) Clone() *EdgeTable {
	c := &EdgeTable{
		Name: et.Name,
		Tail: make([]int64, len(et.Tail)),
		Head: make([]int64, len(et.Head)),
	}
	copy(c.Tail, et.Tail)
	copy(c.Head, et.Head)
	return c
}
