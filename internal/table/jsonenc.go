package table

import (
	"fmt"
	"math"
	"strconv"
	"unicode/utf8"
)

// Pooled append-based JSON encoding primitives. The original JSONL
// writers boxed every row into a map[string]any and ran encoding/json
// over it — one map churn plus reflection-driven encoding per row,
// ~20x slower than the CSV path. These helpers append values directly
// into the shared encoder buffers, producing output byte-identical to
// encoding/json's default configuration (HTML escaping on, map keys
// sorted): the escape tables and float formatting below mirror the
// stdlib encoder exactly, so any consumer that accepted the old files
// accepts the new ones, bit for bit. The fuzz tests in
// enc_fuzz_test.go hold both encoders side by side.

const jsonHexDigits = "0123456789abcdef"

// jsonSafeSet marks the ASCII bytes encoding/json (with its default
// HTML escaping) emits verbatim inside a string literal: the printable
// range except the JSON metacharacters '"' and '\\' and the
// HTML-sensitive '<', '>' and '&'.
var jsonSafeSet [utf8.RuneSelf]bool

func init() {
	for c := 0x20; c < utf8.RuneSelf; c++ {
		switch c {
		case '"', '\\', '<', '>', '&':
		default:
			jsonSafeSet[c] = true
		}
	}
}

// appendJSONString appends s as a JSON string literal exactly as
// encoding/json renders it: two-character escapes for quote,
// backslash, BS, FF, LF, CR and TAB, a six-character escape for other
// control bytes and the HTML-escaped set, U+FFFD for invalid UTF-8,
// and six-character escapes for the JS line separators U+2028/U+2029.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if jsonSafeSet[b] {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', jsonHexDigits[b>>4], jsonHexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', jsonHexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// appendJSONFloat appends f exactly as encoding/json renders a
// float64: shortest representation, 'f' format except for magnitudes
// outside [1e-6, 1e21), and the stdlib's exponent cleanup (e-09 →
// e-9). NaN and ±Inf have no JSON encoding — the stdlib errors on
// them, and so does this encoder.
func appendJSONFloat(dst []byte, f float64) ([]byte, error) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return dst, fmt.Errorf("unsupported JSON value %v", f)
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst, nil
}

// appendJSON appends row id's JSON rendering, matching encoding/json:
// strings escaped, dates as ISO string literals, floats through the
// stdlib float formatting.
func (pt *PropertyTable) appendJSON(dst []byte, id int64) ([]byte, error) {
	switch pt.Kind {
	case KindString:
		return appendJSONString(dst, pt.strs[id]), nil
	case KindFloat:
		out, err := appendJSONFloat(dst, pt.floats[id])
		if err != nil {
			return out, fmt.Errorf("table: property %s row %d: %w", pt.Name, id, err)
		}
		return out, nil
	case KindDate:
		dst = append(dst, '"')
		dst = appendDate(dst, pt.ints[id])
		return append(dst, '"'), nil
	default:
		return strconv.AppendInt(dst, pt.ints[id], 10), nil
	}
}
