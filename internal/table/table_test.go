package table

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestValueKindRoundTrip(t *testing.T) {
	for _, k := range []ValueKind{KindString, KindInt, KindFloat, KindDate} {
		parsed, err := ParseValueKind(k.String())
		if err != nil {
			t.Fatalf("ParseValueKind(%v): %v", k, err)
		}
		if parsed != k {
			t.Errorf("round trip %v -> %v", k, parsed)
		}
	}
	if _, err := ParseValueKind("bogus"); err == nil {
		t.Error("ParseValueKind(bogus) should fail")
	}
	if got := ParseValueKindAliases(t); got != nil {
		t.Error(got)
	}
}

// ParseValueKindAliases checks the long/double aliases.
func ParseValueKindAliases(t *testing.T) error {
	t.Helper()
	if k, err := ParseValueKind("long"); err != nil || k != KindInt {
		t.Errorf("long -> %v, %v", k, err)
	}
	if k, err := ParseValueKind("double"); err != nil || k != KindFloat {
		t.Errorf("double -> %v, %v", k, err)
	}
	return nil
}

func TestPropertyTableTypedAccess(t *testing.T) {
	pt := NewPropertyTable("Person.name", KindString, 3)
	pt.SetString(0, "alice")
	pt.SetString(2, "carol")
	if pt.String(0) != "alice" || pt.String(1) != "" || pt.String(2) != "carol" {
		t.Errorf("string column wrong: %v", pt.Strings())
	}
	if pt.Len() != 3 {
		t.Errorf("Len = %d", pt.Len())
	}
	if v, ok := pt.Value(0).(string); !ok || v != "alice" {
		t.Errorf("Value(0) = %v", pt.Value(0))
	}

	pi := NewPropertyTable("Person.age", KindInt, 2)
	pi.SetInt(1, 42)
	if pi.Int(1) != 42 {
		t.Error("int column wrong")
	}
	pf := NewPropertyTable("Person.score", KindFloat, 2)
	pf.SetFloat(0, 1.5)
	if pf.Float(0) != 1.5 {
		t.Error("float column wrong")
	}
}

func TestPropertyTableKindMismatchPanics(t *testing.T) {
	pt := NewPropertyTable("x", KindInt, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("SetString on int table should panic")
		}
	}()
	pt.SetString(0, "boom")
}

func TestPropertyTableFormat(t *testing.T) {
	pd := NewPropertyTable("p.d", KindDate, 1)
	pd.SetInt(0, MustParseDate("2017-04-03"))
	if got := pd.Format(0); got != "2017-04-03" {
		t.Errorf("date format = %q", got)
	}
	pf := NewPropertyTable("p.f", KindFloat, 1)
	pf.SetFloat(0, 0.25)
	if got := pf.Format(0); got != "0.25" {
		t.Errorf("float format = %q", got)
	}
}

func TestDateRoundTrip(t *testing.T) {
	for _, s := range []string{"1970-01-01", "2010-06-15", "2026-06-12", "1969-12-31"} {
		d, err := ParseDate(s)
		if err != nil {
			t.Fatalf("ParseDate(%s): %v", s, err)
		}
		if got := FormatDate(d); got != s {
			t.Errorf("date round trip %s -> %s", s, got)
		}
	}
	if _, err := ParseDate("junk"); err == nil {
		t.Error("ParseDate(junk) should fail")
	}
}

func TestDateOrdering(t *testing.T) {
	a := MustParseDate("2010-01-01")
	b := MustParseDate("2010-01-02")
	if b != a+1 {
		t.Errorf("consecutive days differ by %d", b-a)
	}
}

func TestEdgeTableBasics(t *testing.T) {
	et := NewEdgeTable("knows", 4)
	if id := et.Add(0, 1); id != 0 {
		t.Errorf("first edge id = %d", id)
	}
	et.Add(1, 2)
	et.Add(2, 0)
	if et.Len() != 3 {
		t.Errorf("Len = %d", et.Len())
	}
	if et.MaxNode() != 3 {
		t.Errorf("MaxNode = %d", et.MaxNode())
	}
	if err := et.Validate(3, 3); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if err := et.Validate(2, 3); err == nil {
		t.Error("Validate should reject tail out of range")
	}
}

func TestEdgeTableEmpty(t *testing.T) {
	et := NewEdgeTable("e", 0)
	if et.MaxNode() != 0 {
		t.Errorf("empty MaxNode = %d", et.MaxNode())
	}
	if err := et.Validate(0, 0); err != nil {
		t.Errorf("empty Validate: %v", err)
	}
}

func TestEdgeTableRemap(t *testing.T) {
	et := NewEdgeTable("e", 2)
	et.Add(0, 1)
	et.Add(1, 2)
	f := []int64{10, 20, 30}
	et.Remap(f)
	if et.Tail[0] != 10 || et.Head[0] != 20 || et.Tail[1] != 20 || et.Head[1] != 30 {
		t.Errorf("remap wrong: %v %v", et.Tail, et.Head)
	}
}

func TestEdgeTableRemapBipartite(t *testing.T) {
	et := NewEdgeTable("creates", 2)
	et.Add(0, 0)
	et.Add(1, 1)
	et.RemapTails([]int64{5, 6})
	et.RemapHeads([]int64{7, 8})
	if et.Tail[0] != 5 || et.Head[0] != 7 || et.Tail[1] != 6 || et.Head[1] != 8 {
		t.Errorf("bipartite remap wrong: %v %v", et.Tail, et.Head)
	}
}

func TestEdgeTableCloneIsDeep(t *testing.T) {
	et := NewEdgeTable("e", 1)
	et.Add(1, 2)
	c := et.Clone()
	c.Tail[0] = 99
	if et.Tail[0] == 99 {
		t.Error("Clone shares storage")
	}
}

func TestWriteNodeCSV(t *testing.T) {
	name := NewPropertyTable("Person.name", KindString, 2)
	name.SetString(0, "alice")
	name.SetString(1, "bob")
	age := NewPropertyTable("Person.age", KindInt, 2)
	age.SetInt(0, 30)
	age.SetInt(1, 40)
	var buf bytes.Buffer
	if err := WriteNodeCSV(&buf, "Person", []*PropertyTable{name, age}, NodeCSVOptions{}); err != nil {
		t.Fatal(err)
	}
	want := "id,name,age\n0,alice,30\n1,bob,40\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestWriteNodeCSVRaggedFails(t *testing.T) {
	a := NewPropertyTable("T.a", KindInt, 2)
	b := NewPropertyTable("T.b", KindInt, 3)
	if err := WriteNodeCSV(&bytes.Buffer{}, "T", []*PropertyTable{a, b}, NodeCSVOptions{}); err == nil {
		t.Error("ragged PTs should fail")
	}
}

func TestWriteEdgeCSV(t *testing.T) {
	et := NewEdgeTable("knows", 1)
	et.Add(3, 4)
	d := NewPropertyTable("knows.creationDate", KindDate, 1)
	d.SetInt(0, MustParseDate("2015-05-05"))
	var buf bytes.Buffer
	if err := WriteEdgeCSV(&buf, et, []*PropertyTable{d}, NodeCSVOptions{}); err != nil {
		t.Fatal(err)
	}
	want := "id,tail,head,creationDate\n0,3,4,2015-05-05\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestWriteEdgeCSVPropLenMismatch(t *testing.T) {
	et := NewEdgeTable("e", 1)
	et.Add(0, 0)
	p := NewPropertyTable("e.x", KindInt, 2)
	if err := WriteEdgeCSV(&bytes.Buffer{}, et, []*PropertyTable{p}, NodeCSVOptions{}); err == nil {
		t.Error("mismatched edge props should fail")
	}
}

func TestDatasetWriteDir(t *testing.T) {
	dir := t.TempDir()
	d := NewDataset()
	name := NewPropertyTable("Person.name", KindString, 1)
	name.SetString(0, "x")
	d.NodeProps["Person"] = []*PropertyTable{name}
	d.NodeCounts["Person"] = 1
	et := NewEdgeTable("knows", 1)
	et.Add(0, 0)
	d.Edges["knows"] = et
	d.EdgeProps["knows"] = nil
	if err := d.WriteDir(filepath.Join(dir, "out")); err != nil {
		t.Fatal(err)
	}
	nodes, err := os.ReadFile(filepath.Join(dir, "out", "nodes_Person.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(nodes), "id,name\n") {
		t.Errorf("nodes CSV = %q", nodes)
	}
	edges, err := os.ReadFile(filepath.Join(dir, "out", "edges_knows.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(edges), "id,tail,head\n") {
		t.Errorf("edges CSV = %q", edges)
	}
	if s := d.Stats(); !strings.Contains(s, "1 node types") {
		t.Errorf("Stats = %q", s)
	}
}

func TestRemapPreservesLengthProperty(t *testing.T) {
	f := func(pairs []uint8) bool {
		et := NewEdgeTable("e", int64(len(pairs)))
		for _, p := range pairs {
			et.Add(int64(p%16), int64(p/16))
		}
		mapping := make([]int64, 16)
		for i := range mapping {
			mapping[i] = int64(15 - i)
		}
		before := et.Len()
		et.Remap(mapping)
		return et.Len() == before && et.Validate(16, 16) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
