package table

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// Round-trip fidelity: writing a dataset with WriteDir / WriteDirJSONL
// and parsing the files back must reproduce every in-memory value
// exactly — strings verbatim, ints and dates losslessly, floats
// through Go's shortest-round-trip formatting. The formatting tests
// elsewhere in this package only check the emitted text; these tests
// close the loop through a real parser, the way a bulk loader would.

// roundTripDataset builds a dataset covering all four value kinds,
// including CSV-hostile strings (separators, quotes, newlines,
// unicode) and float edge cases.
func roundTripDataset() *Dataset {
	name := NewPropertyTable("User.name", KindString, 5)
	name.SetString(0, "alice")
	name.SetString(1, "bob,the,builder") // embedded separators
	name.SetString(2, `quote"inside`)    // embedded quote
	name.SetString(3, "multi\nline")     // embedded newline
	name.SetString(4, "ünïcødé ✓")

	karma := NewPropertyTable("User.karma", KindInt, 5)
	for i := int64(0); i < 5; i++ {
		karma.SetInt(i, (i-2)*1234567890123)
	}

	score := NewPropertyTable("User.score", KindFloat, 5)
	score.SetFloat(0, 0)
	score.SetFloat(1, -1.5)
	score.SetFloat(2, 1.0/3.0)
	score.SetFloat(3, math.MaxFloat64)
	score.SetFloat(4, 5e-324) // smallest denormal

	joined := NewPropertyTable("User.joined", KindDate, 5)
	for i := int64(0); i < 5; i++ {
		joined.SetInt(i, MustParseDate("2015-06-01")+i*400)
	}

	et := NewEdgeTable("follows", 3)
	et.Add(0, 1)
	et.Add(3, 4)
	et.Add(2, 2)
	weight := NewPropertyTable("follows.weight", KindFloat, 3)
	weight.SetFloat(0, 0.25)
	weight.SetFloat(1, 2.0/7.0)
	weight.SetFloat(2, -0)

	d := NewDataset()
	d.NodeCounts["User"] = 5
	d.NodeProps["User"] = []*PropertyTable{name, karma, score, joined}
	d.Edges["follows"] = et
	d.EdgeProps["follows"] = []*PropertyTable{weight}
	return d
}

// parseCell checks one parsed string cell against the PT value.
func assertCell(t *testing.T, pt *PropertyTable, id int64, cell string) {
	t.Helper()
	switch pt.Kind {
	case KindString:
		if cell != pt.String(id) {
			t.Errorf("%s row %d: %q, want %q", pt.Name, id, cell, pt.String(id))
		}
	case KindInt:
		v, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			t.Fatalf("%s row %d: %v", pt.Name, id, err)
		}
		if v != pt.Int(id) {
			t.Errorf("%s row %d: %d, want %d", pt.Name, id, v, pt.Int(id))
		}
	case KindFloat:
		v, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			t.Fatalf("%s row %d: %v", pt.Name, id, err)
		}
		if v != pt.Float(id) {
			t.Errorf("%s row %d: %v, want %v", pt.Name, id, v, pt.Float(id))
		}
	case KindDate:
		v, err := ParseDate(cell)
		if err != nil {
			t.Fatalf("%s row %d: %v", pt.Name, id, err)
		}
		if v != pt.Int(id) {
			t.Errorf("%s row %d: day %d, want %d", pt.Name, id, v, pt.Int(id))
		}
	}
}

func TestWriteDirCSVRoundTrip(t *testing.T) {
	d := roundTripDataset()
	dir := t.TempDir()
	if err := d.WriteDir(dir); err != nil {
		t.Fatal(err)
	}

	// Nodes.
	f, err := os.Open(filepath.Join(dir, "nodes_User.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	props := d.NodeProps["User"]
	if len(rows) != 6 {
		t.Fatalf("nodes_User.csv has %d rows, want header+5", len(rows))
	}
	wantHeader := []string{"id", "name", "karma", "score", "joined"}
	for i, h := range wantHeader {
		if rows[0][i] != h {
			t.Fatalf("header = %v, want %v", rows[0], wantHeader)
		}
	}
	for r := 1; r < len(rows); r++ {
		id, err := strconv.ParseInt(rows[r][0], 10, 64)
		if err != nil || id != int64(r-1) {
			t.Fatalf("row %d id = %q", r, rows[r][0])
		}
		for j, pt := range props {
			assertCell(t, pt, id, rows[r][j+1])
		}
	}

	// Edges.
	ef, err := os.Open(filepath.Join(dir, "edges_follows.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer ef.Close()
	erows, err := csv.NewReader(ef).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	et := d.Edges["follows"]
	if len(erows) != int(et.Len())+1 {
		t.Fatalf("edges_follows.csv has %d rows", len(erows))
	}
	for r := 1; r < len(erows); r++ {
		id := int64(r - 1)
		tail, _ := strconv.ParseInt(erows[r][1], 10, 64)
		head, _ := strconv.ParseInt(erows[r][2], 10, 64)
		if tail != et.Tail[id] || head != et.Head[id] {
			t.Errorf("edge %d: (%d,%d), want (%d,%d)", id, tail, head, et.Tail[id], et.Head[id])
		}
		assertCell(t, d.EdgeProps["follows"][0], id, erows[r][3])
	}
}

func TestWriteDirJSONLRoundTrip(t *testing.T) {
	d := roundTripDataset()
	dir := t.TempDir()
	if err := d.WriteDirJSONL(dir); err != nil {
		t.Fatal(err)
	}

	readLines := func(name string) []map[string]any {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		var rows []map[string]any
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			var row map[string]any
			dec := json.NewDecoder(bytes.NewReader(sc.Bytes()))
			dec.UseNumber() // keep int64s exact
			if err := dec.Decode(&row); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			rows = append(rows, row)
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		return rows
	}

	rows := readLines("nodes_User.jsonl")
	if len(rows) != 5 {
		t.Fatalf("nodes_User.jsonl has %d rows", len(rows))
	}
	for id, row := range rows {
		if row["label"] != "User" {
			t.Fatalf("row %d label = %v", id, row["label"])
		}
		gotID, err := row["id"].(json.Number).Int64()
		if err != nil || gotID != int64(id) {
			t.Fatalf("row %d id = %v", id, row["id"])
		}
		for _, pt := range d.NodeProps["User"] {
			val := row[shortName(pt.Name)]
			switch pt.Kind {
			case KindString:
				if val != pt.String(int64(id)) {
					t.Errorf("%s row %d: %v, want %q", pt.Name, id, val, pt.String(int64(id)))
				}
			case KindInt:
				v, err := val.(json.Number).Int64()
				if err != nil || v != pt.Int(int64(id)) {
					t.Errorf("%s row %d: %v, want %d", pt.Name, id, val, pt.Int(int64(id)))
				}
			case KindFloat:
				v, err := val.(json.Number).Float64()
				if err != nil || v != pt.Float(int64(id)) {
					t.Errorf("%s row %d: %v, want %v", pt.Name, id, val, pt.Float(int64(id)))
				}
			case KindDate:
				v, err := ParseDate(val.(string))
				if err != nil || v != pt.Int(int64(id)) {
					t.Errorf("%s row %d: %v, want day %d", pt.Name, id, val, pt.Int(int64(id)))
				}
			}
		}
	}

	erows := readLines("edges_follows.jsonl")
	et := d.Edges["follows"]
	if len(erows) != int(et.Len()) {
		t.Fatalf("edges_follows.jsonl has %d rows", len(erows))
	}
	for id, row := range erows {
		tail, _ := row["tail"].(json.Number).Int64()
		head, _ := row["head"].(json.Number).Int64()
		if tail != et.Tail[id] || head != et.Head[id] {
			t.Errorf("edge %d: (%d,%d), want (%d,%d)", id, tail, head, et.Tail[id], et.Head[id])
		}
		w, err := row["weight"].(json.Number).Float64()
		if err != nil || w != d.EdgeProps["follows"][0].Float(int64(id)) {
			t.Errorf("edge %d weight = %v", id, row["weight"])
		}
	}
}
