package table

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"datasynth/internal/faultfs"
	"datasynth/internal/par"
)

// Concurrent, atomic dataset export. Tables are independent once
// generated, so the export fan-out writes one file per table on a
// bounded worker pool. Every file is staged as a hidden temp file and
// the whole directory commits with a rename pass only after every
// table succeeded — a failed export never leaves a partial directory,
// and the bytes of every file are identical at any worker count (each
// worker owns its file end to end; no output interleaves).

// Format selects the on-disk dataset encoding.
type Format int

// Supported export formats.
const (
	// FormatCSV writes one CSV per type (nodes_<T>.csv, edges_<T>.csv),
	// the bulk-loader layout. The zero value, so it is the default.
	FormatCSV Format = iota
	// FormatJSONL writes one JSON object per row (*.jsonl).
	FormatJSONL
	// FormatColumnar writes the binary columnar format (*.dsc) for bulk
	// loads; see columnar.go for the layout.
	FormatColumnar
)

// String returns the CLI spelling of the format.
func (f Format) String() string {
	switch f {
	case FormatCSV:
		return "csv"
	case FormatJSONL:
		return "jsonl"
	case FormatColumnar:
		return "columnar"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// Ext returns the file extension of the format, dot included.
func (f Format) Ext() string {
	switch f {
	case FormatJSONL:
		return ".jsonl"
	case FormatColumnar:
		return ".dsc"
	default:
		return ".csv"
	}
}

// ContentType returns the HTTP media type a file of the format should
// be served under. The generation service streams committed export
// files verbatim — no re-encoding on the serve path — so the media
// type is the only transformation between cache dir and response.
func (f Format) ContentType() string {
	switch f {
	case FormatJSONL:
		// The de-facto JSON-lines type; one JSON object per line.
		return "application/jsonl; charset=utf-8"
	case FormatColumnar:
		return "application/octet-stream"
	default:
		return "text/csv; charset=utf-8"
	}
}

// NodeFileName returns the file name a node type exports to in the
// given format — the single source of naming truth shared by the
// export pipeline and anything serving a committed export directory.
func NodeFileName(typeName string, f Format) string {
	return "nodes_" + typeName + f.Ext()
}

// EdgeFileName returns the file name an edge type exports to.
func EdgeFileName(typeName string, f Format) string {
	return "edges_" + typeName + f.Ext()
}

// ParseFormat parses a CLI format name.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "csv":
		return FormatCSV, nil
	case "jsonl":
		return FormatJSONL, nil
	case "columnar", "dsc":
		return FormatColumnar, nil
	default:
		return 0, fmt.Errorf("table: unknown export format %q (want csv, jsonl or columnar)", s)
	}
}

// ExportOptions configures Dataset.Export.
type ExportOptions struct {
	// Format selects the encoding (default CSV).
	Format Format
	// Workers bounds how many tables are written concurrently:
	// 0 = NumCPU, 1 = one table at a time. File bytes are identical at
	// every worker count.
	Workers int
	// FS abstracts the filesystem for fault-injection tests; nil means
	// the real one. Every disk touch of the export (create, write,
	// stat, rename, cleanup) goes through it, so tests can crash the
	// two-phase commit at any step.
	FS faultfs.FS
}

// FileStat reports one exported file.
type FileStat struct {
	// Name is the file name within the export directory.
	Name string
	// Bytes is the final file size.
	Bytes int64
	// Duration is the wall time spent encoding and writing the file.
	Duration time.Duration
}

// exportJob is one file of an export: a name plus a writer closure.
type exportJob struct {
	file  string
	write func(io.Writer) error
}

// exportJobs enumerates the dataset's files in deterministic order:
// node types sorted by name, then edge types sorted by name.
func (d *Dataset) exportJobs(f Format) []exportJob {
	nodeTypes := make([]string, 0, len(d.NodeCounts))
	for t := range d.NodeCounts {
		nodeTypes = append(nodeTypes, t)
	}
	sort.Strings(nodeTypes)
	edgeTypes := make([]string, 0, len(d.Edges))
	for t := range d.Edges {
		edgeTypes = append(edgeTypes, t)
	}
	sort.Strings(edgeTypes)

	jobs := make([]exportJob, 0, len(nodeTypes)+len(edgeTypes))
	for _, t := range nodeTypes {
		t, props, count := t, d.NodeProps[t], d.NodeCounts[t]
		var write func(io.Writer) error
		switch f {
		case FormatJSONL:
			write = func(w io.Writer) error { return WriteNodeJSONL(w, t, props) }
		case FormatColumnar:
			write = func(w io.Writer) error { return WriteNodeColumnar(w, t, count, props) }
		default:
			write = func(w io.Writer) error { return WriteNodeCSV(w, t, props, NodeCSVOptions{}) }
		}
		jobs = append(jobs, exportJob{file: NodeFileName(t, f), write: write})
	}
	for _, t := range edgeTypes {
		t, et, props := t, d.Edges[t], d.EdgeProps[t]
		// The dataset key is the authoritative edge type; if the table
		// still carries its generator-internal name, export a renamed
		// shallow view so formats that embed the name (JSONL labels,
		// the columnar header) agree with the file name and the key
		// survives an OpenColumnar round trip.
		if et.Name != t {
			et = &EdgeTable{Name: t, Tail: et.Tail, Head: et.Head}
		}
		var write func(io.Writer) error
		switch f {
		case FormatJSONL:
			write = func(w io.Writer) error { return WriteEdgeJSONL(w, et, props) }
		case FormatColumnar:
			write = func(w io.Writer) error { return WriteEdgeColumnar(w, et, props) }
		default:
			write = func(w io.Writer) error { return WriteEdgeCSV(w, et, props, NodeCSVOptions{}) }
		}
		jobs = append(jobs, exportJob{file: EdgeFileName(t, f), write: write})
	}
	return jobs
}

// exportTempName is the staging name of a file during export; the dot
// prefix keeps half-written files visibly temporary.
func exportTempName(file string) string { return "." + file + ".tmp" }

// Export writes the dataset into dir in the requested format, one
// worker per table up to opt.Workers. The export is all-or-nothing:
// every file is staged as a temp file first and the set renames into
// place only after all tables encoded successfully, so an encoding or
// write error — ragged property columns, a full disk — leaves no
// partial files behind. Returns one FileStat per file in deterministic
// (sorted nodes, then sorted edges) order.
func (d *Dataset) Export(dir string, opt ExportOptions) ([]FileStat, error) {
	return d.ExportCtx(context.Background(), dir, opt)
}

// ExportCtx is Export with cooperative cancellation: ctx is checked
// before the directory is touched, before each file job starts, and
// before the commit phase — a canceled or expired context aborts with
// every temp file removed and (if ExportCtx created it) the directory
// gone, exactly like any other export failure. The all-or-nothing
// guarantee is unchanged: cancellation never commits a partial set.
func (d *Dataset) ExportCtx(ctx context.Context, dir string, opt ExportOptions) ([]FileStat, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	fsys := faultfs.OrOS(opt.FS)
	jobs := d.exportJobs(opt.Format)
	if len(jobs) == 0 {
		return nil, fsys.MkdirAll(dir, 0o755)
	}
	_, statErr := fsys.Stat(dir)
	createdDir := os.IsNotExist(statErr)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	cleanupDir := func() {
		if createdDir {
			fsys.Remove(dir) // best effort; fails (harmlessly) if non-empty
		}
	}

	stats := make([]FileStat, len(jobs))
	err := par.ForEachCtx(ctx, len(jobs), opt.Workers, func(i int) error {
		j := jobs[i]
		start := time.Now()
		tmp := filepath.Join(dir, exportTempName(j.file))
		f, err := fsys.Create(tmp)
		if err != nil {
			return err
		}
		err = j.write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("table: writing %s: %w", j.file, err)
		}
		fi, err := fsys.Stat(tmp)
		if err != nil {
			return err
		}
		stats[i] = FileStat{Name: j.file, Bytes: fi.Size(), Duration: time.Since(start)}
		return nil
	})
	if err == nil {
		// A deadline that expired after the last file finished but before
		// the commit must still abort: committing past the deadline would
		// make the cancellation guarantee depend on scheduling luck.
		err = ctx.Err()
	}
	if err != nil {
		for _, j := range jobs {
			fsys.Remove(filepath.Join(dir, exportTempName(j.file)))
		}
		cleanupDir()
		return nil, err
	}
	// Commit phase: every table encoded cleanly; rename the staged set
	// into place. Should a rename itself fail (exotic: the target name
	// is occupied by a directory, the dir entry cannot be written),
	// already-committed files stay — they may be the only remaining
	// copy of their table when re-exporting over an existing dataset —
	// and only the unrenamed temps are dropped.
	for i, j := range jobs {
		if err := fsys.Rename(filepath.Join(dir, exportTempName(j.file)), filepath.Join(dir, j.file)); err != nil {
			for k := i; k < len(jobs); k++ {
				fsys.Remove(filepath.Join(dir, exportTempName(jobs[k].file)))
			}
			cleanupDir()
			return nil, fmt.Errorf("table: committing %s: %w", j.file, err)
		}
	}
	return stats, nil
}
