package table

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteNodeJSONL(t *testing.T) {
	name := NewPropertyTable("Person.name", KindString, 2)
	name.SetString(0, "alice")
	name.SetString(1, "bob")
	date := NewPropertyTable("Person.joined", KindDate, 2)
	date.SetInt(0, MustParseDate("2020-02-02"))
	var buf bytes.Buffer
	if err := WriteNodeJSONL(&buf, "Person", []*PropertyTable{name, date}); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var rows []map[string]any
	for sc.Scan() {
		var row map[string]any
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("invalid JSON line: %v", err)
		}
		rows = append(rows, row)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0]["name"] != "alice" || rows[0]["label"] != "Person" {
		t.Errorf("row 0 = %v", rows[0])
	}
	if rows[0]["joined"] != "2020-02-02" {
		t.Errorf("date not ISO: %v", rows[0]["joined"])
	}
}

func TestWriteEdgeJSONL(t *testing.T) {
	et := NewEdgeTable("knows", 1)
	et.Add(3, 4)
	w := NewPropertyTable("knows.weight", KindFloat, 1)
	w.SetFloat(0, 0.5)
	var buf bytes.Buffer
	if err := WriteEdgeJSONL(&buf, et, []*PropertyTable{w}); err != nil {
		t.Fatal(err)
	}
	var row map[string]any
	if err := json.Unmarshal(buf.Bytes(), &row); err != nil {
		t.Fatal(err)
	}
	if row["tail"] != float64(3) || row["head"] != float64(4) || row["weight"] != 0.5 {
		t.Errorf("row = %v", row)
	}
}

func TestJSONLValidationErrors(t *testing.T) {
	a := NewPropertyTable("T.a", KindInt, 2)
	b := NewPropertyTable("T.b", KindInt, 3)
	if err := WriteNodeJSONL(&bytes.Buffer{}, "T", []*PropertyTable{a, b}); err == nil {
		t.Error("ragged PTs should fail")
	}
	et := NewEdgeTable("e", 1)
	et.Add(0, 0)
	p := NewPropertyTable("e.x", KindInt, 2)
	if err := WriteEdgeJSONL(&bytes.Buffer{}, et, []*PropertyTable{p}); err == nil {
		t.Error("mismatched edge props should fail")
	}
}

func TestDatasetWriteDirJSONL(t *testing.T) {
	d := NewDataset()
	name := NewPropertyTable("Person.name", KindString, 1)
	name.SetString(0, "x")
	d.NodeProps["Person"] = []*PropertyTable{name}
	d.NodeCounts["Person"] = 1
	et := NewEdgeTable("knows", 1)
	et.Add(0, 0)
	d.Edges["knows"] = et
	dir := t.TempDir()
	if err := d.WriteDirJSONL(dir); err != nil {
		t.Fatal(err)
	}
	nodes, err := os.ReadFile(filepath.Join(dir, "nodes_Person.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	var row map[string]any
	if err := json.Unmarshal(nodes, &row); err != nil {
		t.Fatal(err)
	}
	if row["name"] != "x" {
		t.Errorf("row = %v", row)
	}
	if _, err := os.Stat(filepath.Join(dir, "edges_knows.jsonl")); err != nil {
		t.Error("edges file missing")
	}
}
