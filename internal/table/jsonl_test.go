package table

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteNodeJSONL(t *testing.T) {
	name := NewPropertyTable("Person.name", KindString, 2)
	name.SetString(0, "alice")
	name.SetString(1, "bob")
	date := NewPropertyTable("Person.joined", KindDate, 2)
	date.SetInt(0, MustParseDate("2020-02-02"))
	var buf bytes.Buffer
	if err := WriteNodeJSONL(&buf, "Person", []*PropertyTable{name, date}); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var rows []map[string]any
	for sc.Scan() {
		var row map[string]any
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("invalid JSON line: %v", err)
		}
		rows = append(rows, row)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0]["name"] != "alice" || rows[0]["label"] != "Person" {
		t.Errorf("row 0 = %v", rows[0])
	}
	if rows[0]["joined"] != "2020-02-02" {
		t.Errorf("date not ISO: %v", rows[0]["joined"])
	}
}

func TestWriteEdgeJSONL(t *testing.T) {
	et := NewEdgeTable("knows", 1)
	et.Add(3, 4)
	w := NewPropertyTable("knows.weight", KindFloat, 1)
	w.SetFloat(0, 0.5)
	var buf bytes.Buffer
	if err := WriteEdgeJSONL(&buf, et, []*PropertyTable{w}); err != nil {
		t.Fatal(err)
	}
	var row map[string]any
	if err := json.Unmarshal(buf.Bytes(), &row); err != nil {
		t.Fatal(err)
	}
	if row["tail"] != float64(3) || row["head"] != float64(4) || row["weight"] != 0.5 {
		t.Errorf("row = %v", row)
	}
}

func TestJSONLValidationErrors(t *testing.T) {
	a := NewPropertyTable("T.a", KindInt, 2)
	b := NewPropertyTable("T.b", KindInt, 3)
	if err := WriteNodeJSONL(&bytes.Buffer{}, "T", []*PropertyTable{a, b}); err == nil {
		t.Error("ragged PTs should fail")
	}
	et := NewEdgeTable("e", 1)
	et.Add(0, 0)
	p := NewPropertyTable("e.x", KindInt, 2)
	if err := WriteEdgeJSONL(&bytes.Buffer{}, et, []*PropertyTable{p}); err == nil {
		t.Error("mismatched edge props should fail")
	}
}

// stdNodeJSONL is the old map[string]any + encoding/json node writer,
// kept as the reference the pooled append encoder must match byte for
// byte (keys sorted, HTML escaping, stdlib float formatting).
func stdNodeJSONL(t *testing.T, typeName string, props []*PropertyTable, n int64) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for id := int64(0); id < n; id++ {
		row := map[string]any{"id": id, "label": typeName}
		for _, pt := range props {
			row[shortName(pt.Name)] = stdJSONValue(pt, id)
		}
		if err := enc.Encode(row); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// stdEdgeJSONL is the old map-based edge writer, reference only.
func stdEdgeJSONL(t *testing.T, et *EdgeTable, props []*PropertyTable) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for id := int64(0); id < et.Len(); id++ {
		row := map[string]any{"id": id, "label": et.Name, "tail": et.Tail[id], "head": et.Head[id]}
		for _, pt := range props {
			row[shortName(pt.Name)] = stdJSONValue(pt, id)
		}
		if err := enc.Encode(row); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func stdJSONValue(pt *PropertyTable, id int64) any {
	switch pt.Kind {
	case KindString:
		return pt.String(id)
	case KindFloat:
		return pt.Float(id)
	case KindDate:
		return FormatDate(pt.Int(id))
	default:
		return pt.Int(id)
	}
}

// TestJSONLByteIdenticalToStdlib: the pooled append encoder must emit
// exactly the bytes of the old per-row map + encoding/json path — key
// order, HTML escaping, invalid UTF-8 replacement, float formatting —
// across every value kind and a battery of hostile strings.
func TestJSONLByteIdenticalToStdlib(t *testing.T) {
	const n = 9
	name := NewPropertyTable("User.name", KindString, n)
	name.SetString(0, "plain")
	name.SetString(1, `quote " backslash \`)
	name.SetString(2, "html <a href=\"x\">&amp;</a>")
	name.SetString(3, "ctrl \x00\x01\x1f tab\t nl\n cr\r")
	name.SetString(4, "unicode ünïcødé ✓ 𝄞")
	name.SetString(5, "line seps \u2028 and \u2029")
	name.SetString(6, "invalid \xff\xfe utf8 \xc3")
	name.SetString(7, "")
	name.SetString(8, "\x7f del")
	karma := NewPropertyTable("User.karma", KindInt, n)
	score := NewPropertyTable("User.score", KindFloat, n)
	joined := NewPropertyTable("User.joined", KindDate, n)
	floats := []float64{0, -0.0, 1.0 / 3.0, math.MaxFloat64, 5e-324, 1e-7, 1e21, -2.5e-9, 12345.6789}
	for i := int64(0); i < n; i++ {
		karma.SetInt(i, (i-4)*987654321098)
		score.SetFloat(i, floats[i])
		joined.SetInt(i, MustParseDate("2012-03-04")+i*311)
	}
	props := []*PropertyTable{name, karma, score, joined}

	var got bytes.Buffer
	if err := WriteNodeJSONL(&got, "Usér<&>", props); err != nil {
		t.Fatal(err)
	}
	want := stdNodeJSONL(t, "Usér<&>", props, n)
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("node JSONL differs from stdlib encoder:\n got: %q\nwant: %q", got.Bytes(), want)
	}

	et := NewEdgeTable("knows & <tells>", n)
	weight := NewPropertyTable("knows.weight", KindFloat, n)
	for i := int64(0); i < n; i++ {
		et.Add(i, (i*7)%n)
		weight.SetFloat(i, floats[i])
	}
	got.Reset()
	if err := WriteEdgeJSONL(&got, et, []*PropertyTable{weight}); err != nil {
		t.Fatal(err)
	}
	wantEdges := stdEdgeJSONL(t, et, []*PropertyTable{weight})
	if !bytes.Equal(got.Bytes(), wantEdges) {
		t.Fatalf("edge JSONL differs from stdlib encoder:\n got: %q\nwant: %q", got.Bytes(), wantEdges)
	}
}

// TestJSONLReservedKeyCollision: a property short name equal to a
// structural key used to silently overwrite that field in the row map;
// it must now fail loudly, for nodes and edges alike.
func TestJSONLReservedKeyCollision(t *testing.T) {
	for _, reserved := range []string{"id", "label"} {
		pt := NewPropertyTable("User."+reserved, KindInt, 1)
		err := WriteNodeJSONL(&bytes.Buffer{}, "User", []*PropertyTable{pt})
		if err == nil {
			t.Fatalf("node property %q did not collide", reserved)
		}
		if !strings.Contains(err.Error(), reserved) {
			t.Errorf("collision error does not name the key: %v", err)
		}
	}
	et := NewEdgeTable("knows", 1)
	et.Add(0, 0)
	for _, reserved := range []string{"id", "label", "tail", "head"} {
		pt := NewPropertyTable("knows."+reserved, KindFloat, 1)
		if err := WriteEdgeJSONL(&bytes.Buffer{}, et, []*PropertyTable{pt}); err == nil {
			t.Fatalf("edge property %q did not collide", reserved)
		}
	}
	// Two properties sharing a short name collide with each other too.
	a := NewPropertyTable("User.x", KindInt, 1)
	b := NewPropertyTable("Other.x", KindInt, 1)
	if err := WriteNodeJSONL(&bytes.Buffer{}, "User", []*PropertyTable{a, b}); err == nil {
		t.Fatal("duplicate property short names did not collide")
	}
	// The collision must also surface through the export pipeline.
	d := NewDataset()
	bad := NewPropertyTable("User.label", KindString, 1)
	bad.SetString(0, "x")
	d.NodeProps["User"] = []*PropertyTable{bad}
	d.NodeCounts["User"] = 1
	if err := d.WriteDirJSONL(t.TempDir()); err == nil {
		t.Fatal("WriteDirJSONL accepted a reserved-key collision")
	}
}

// TestCSVHeaderCollision: the shared collision check protects the CSV
// connector too — a property short-named "id" (or two properties
// sharing a short name) used to silently emit an ambiguous duplicate
// header column. "label" stays legal in CSV: it is only a structural
// key in JSONL rows.
func TestCSVHeaderCollision(t *testing.T) {
	id := NewPropertyTable("User.id", KindInt, 1)
	if err := WriteNodeCSV(&bytes.Buffer{}, "User", []*PropertyTable{id}, NodeCSVOptions{}); err == nil {
		t.Fatal("node property \"id\" did not collide with the CSV id column")
	}
	a := NewPropertyTable("User.x", KindInt, 1)
	b := NewPropertyTable("Other.x", KindInt, 1)
	if err := WriteNodeCSV(&bytes.Buffer{}, "User", []*PropertyTable{a, b}, NodeCSVOptions{}); err == nil {
		t.Fatal("duplicate CSV headers did not collide")
	}
	label := NewPropertyTable("User.label", KindString, 1)
	label.SetString(0, "x")
	if err := WriteNodeCSV(&bytes.Buffer{}, "User", []*PropertyTable{label}, NodeCSVOptions{}); err != nil {
		t.Fatalf("\"label\" must stay legal in CSV: %v", err)
	}
	et := NewEdgeTable("knows", 1)
	et.Add(0, 0)
	for _, reserved := range []string{"id", "tail", "head"} {
		pt := NewPropertyTable("knows."+reserved, KindFloat, 1)
		if err := WriteEdgeCSV(&bytes.Buffer{}, et, []*PropertyTable{pt}, NodeCSVOptions{}); err == nil {
			t.Fatalf("edge property %q did not collide with the CSV structural columns", reserved)
		}
	}
}

// TestJSONLUnsupportedFloat: NaN and ±Inf have no JSON encoding — the
// stdlib errored on them, and the append encoder must too, naming the
// property and row.
func TestJSONLUnsupportedFloat(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		pt := NewPropertyTable("User.score", KindFloat, 2)
		pt.SetFloat(1, v)
		err := WriteNodeJSONL(&bytes.Buffer{}, "User", []*PropertyTable{pt})
		if err == nil {
			t.Fatalf("value %v encoded without error", v)
		}
		if !strings.Contains(err.Error(), "User.score") || !strings.Contains(err.Error(), "row 1") {
			t.Errorf("error does not locate the bad cell: %v", err)
		}
	}
}

func TestDatasetWriteDirJSONL(t *testing.T) {
	d := NewDataset()
	name := NewPropertyTable("Person.name", KindString, 1)
	name.SetString(0, "x")
	d.NodeProps["Person"] = []*PropertyTable{name}
	d.NodeCounts["Person"] = 1
	et := NewEdgeTable("knows", 1)
	et.Add(0, 0)
	d.Edges["knows"] = et
	dir := t.TempDir()
	if err := d.WriteDirJSONL(dir); err != nil {
		t.Fatal(err)
	}
	nodes, err := os.ReadFile(filepath.Join(dir, "nodes_Person.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	var row map[string]any
	if err := json.Unmarshal(nodes, &row); err != nil {
		t.Fatal(err)
	}
	if row["name"] != "x" {
		t.Errorf("row = %v", row)
	}
	if _, err := os.Stat(filepath.Join(dir, "edges_knows.jsonl")); err != nil {
		t.Error("edges file missing")
	}
}
