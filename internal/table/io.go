package table

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
)

// This file implements the output connectors required by the paper's
// "others" requirement (Section 2): integration with downstream tooling
// via portable formats. We write one CSV file per node type and per edge
// type, the layout used by most property-graph bulk loaders
// (Neo4j-style node/relationship files).

// NodeCSVOptions configures WriteNodeCSV.
type NodeCSVOptions struct {
	Comma rune // field separator; 0 means ','
}

// WriteNodeCSV writes a node-type file with header "id,prop1,prop2,…"
// joining the given PTs on the implicit id column. All PTs must have
// the same length. Property columns are emitted in the order given.
func WriteNodeCSV(w io.Writer, typeName string, props []*PropertyTable, opt NodeCSVOptions) error {
	var n int64 = -1
	for _, pt := range props {
		if n == -1 {
			n = pt.Len()
		} else if pt.Len() != n {
			return fmt.Errorf("table: property %s has %d rows, expected %d", pt.Name, pt.Len(), n)
		}
	}
	if n == -1 {
		n = 0
	}
	cw := csv.NewWriter(bufio.NewWriterSize(w, 1<<16))
	if opt.Comma != 0 {
		cw.Comma = opt.Comma
	}
	header := make([]string, 0, len(props)+1)
	header = append(header, "id")
	for _, pt := range props {
		header = append(header, shortName(pt.Name))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for id := int64(0); id < n; id++ {
		row[0] = strconv.FormatInt(id, 10)
		for j, pt := range props {
			row[j+1] = pt.Format(id)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteEdgeCSV writes an edge-type file with header
// "id,tail,head,prop1,…". Edge PTs must have one row per edge.
func WriteEdgeCSV(w io.Writer, et *EdgeTable, props []*PropertyTable, opt NodeCSVOptions) error {
	for _, pt := range props {
		if pt.Len() != et.Len() {
			return fmt.Errorf("table: edge property %s has %d rows, edge table has %d", pt.Name, pt.Len(), et.Len())
		}
	}
	cw := csv.NewWriter(bufio.NewWriterSize(w, 1<<16))
	if opt.Comma != 0 {
		cw.Comma = opt.Comma
	}
	header := make([]string, 0, len(props)+3)
	header = append(header, "id", "tail", "head")
	for _, pt := range props {
		header = append(header, shortName(pt.Name))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for id := int64(0); id < et.Len(); id++ {
		row[0] = strconv.FormatInt(id, 10)
		row[1] = strconv.FormatInt(et.Tail[id], 10)
		row[2] = strconv.FormatInt(et.Head[id], 10)
		for j, pt := range props {
			row[j+3] = pt.Format(id)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// shortName strips the "Type." prefix from a PT name for CSV headers.
func shortName(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '.' {
			return name[i+1:]
		}
	}
	return name
}

// Dataset is an in-memory generated property graph: the output of the
// DataSynth engine, ready to be exported.
type Dataset struct {
	// NodeProps maps node type -> ordered property tables.
	NodeProps map[string][]*PropertyTable
	// NodeCounts maps node type -> instance count (needed for types
	// with zero properties).
	NodeCounts map[string]int64
	// Edges maps edge type -> edge table.
	Edges map[string]*EdgeTable
	// EdgeProps maps edge type -> ordered property tables.
	EdgeProps map[string][]*PropertyTable
}

// NewDataset returns an empty dataset.
func NewDataset() *Dataset {
	return &Dataset{
		NodeProps:  map[string][]*PropertyTable{},
		NodeCounts: map[string]int64{},
		Edges:      map[string]*EdgeTable{},
		EdgeProps:  map[string][]*PropertyTable{},
	}
}

// WriteDir exports the dataset as one CSV per type into dir, creating
// it if necessary. Files are named nodes_<Type>.csv / edges_<Type>.csv.
func (d *Dataset) WriteDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	types := make([]string, 0, len(d.NodeCounts))
	for t := range d.NodeCounts {
		types = append(types, t)
	}
	sort.Strings(types)
	for _, t := range types {
		f, err := os.Create(filepath.Join(dir, "nodes_"+t+".csv"))
		if err != nil {
			return err
		}
		err = WriteNodeCSV(f, t, d.NodeProps[t], NodeCSVOptions{})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("table: writing nodes of %s: %w", t, err)
		}
	}
	edgeTypes := make([]string, 0, len(d.Edges))
	for t := range d.Edges {
		edgeTypes = append(edgeTypes, t)
	}
	sort.Strings(edgeTypes)
	for _, t := range edgeTypes {
		f, err := os.Create(filepath.Join(dir, "edges_"+t+".csv"))
		if err != nil {
			return err
		}
		err = WriteEdgeCSV(f, d.Edges[t], d.EdgeProps[t], NodeCSVOptions{})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("table: writing edges of %s: %w", t, err)
		}
	}
	return nil
}

// Stats summarises the dataset for logging.
func (d *Dataset) Stats() string {
	var nodes, edges int64
	for _, n := range d.NodeCounts {
		nodes += n
	}
	for _, et := range d.Edges {
		edges += et.Len()
	}
	return fmt.Sprintf("%d node types / %d nodes, %d edge types / %d edges",
		len(d.NodeCounts), nodes, len(d.Edges), edges)
}
